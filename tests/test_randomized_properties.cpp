// Randomized property tests: arbitrary inverse-closed generator sets fed
// to the generic IPG engine must produce undirected, deterministic,
// group-consistent graphs; higher-dimensional tori must stay deadlock-free
// under the dateline scheme; random capacity-model weights must conserve
// chip budgets.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/ipg.hpp"
#include "metrics/bisection.hpp"
#include "sim/wormhole.hpp"
#include "topology/graph.hpp"
#include "topology/named.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

core::Permutation random_permutation_gen(std::size_t n, util::Xoshiro256& rng) {
  std::vector<core::Permutation::Pos> m(n);
  for (std::size_t i = 0; i < n; ++i) m[i] = static_cast<core::Permutation::Pos>(i);
  for (std::size_t i = n; i > 1; --i) std::swap(m[i - 1], m[rng.below(i)]);
  return core::Permutation(std::move(m));
}

TEST(RandomizedIpg, InverseClosedGeneratorsGiveUndirectedGraphs) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 5 + rng.below(3);  // 5..7 symbols
    std::vector<core::Permutation> gens;
    for (int g = 0; g < 2; ++g) {
      auto p = random_permutation_gen(n, rng);
      if (p.is_identity()) continue;
      auto inv = p.inverse();
      gens.push_back(p);
      if (!(inv == p)) gens.push_back(std::move(inv));
    }
    if (gens.empty()) continue;
    // Seed with a repeated symbol to exercise the non-Cayley case.
    std::vector<core::Label::Symbol> syms(n);
    for (std::size_t i = 0; i < n; ++i) syms[i] = static_cast<core::Label::Symbol>(i % (n - 1));
    const core::Label seed{std::span<const core::Label::Symbol>(syms)};
    const auto ipg = core::build_ipg(seed, gens, 200'000);
    EXPECT_TRUE(ipg.is_undirected()) << "trial " << trial;
    // Deterministic: rebuilding gives the identical node order.
    const auto again = core::build_ipg(seed, gens, 200'000);
    ASSERT_EQ(again.num_nodes(), ipg.num_nodes());
    for (core::NodeId v = 0; v < ipg.num_nodes(); ++v) {
      ASSERT_TRUE(again.labels[v] == ipg.labels[v]);
    }
    // Orbit sizes divide n! (labels are cosets of the generated group).
    std::size_t fact = 1;
    for (std::size_t i = 2; i <= n; ++i) fact *= i;
    EXPECT_EQ(fact % ipg.num_nodes(), 0u) << "trial " << trial;
  }
}

TEST(RandomizedIpg, GeneratorActionIsFreeOnLabels) {
  // Applying a generator twice along with its inverse must always return
  // to the start, for every node of every random IPG.
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 6;
    auto p = random_permutation_gen(n, rng);
    if (p.is_identity()) continue;
    std::vector<core::Permutation> gens{p, p.inverse()};
    const auto ipg = core::build_ipg(core::Label::from_string("112233"), gens,
                                     200'000);
    for (core::NodeId v = 0; v < ipg.num_nodes(); ++v) {
      EXPECT_EQ(ipg.neighbor[ipg.neighbor[v][0]][1], v);
    }
  }
}

TEST(RandomizedWormhole, Torus3dWithDatelineVcsIsDeadlockFree) {
  using namespace topology;
  using namespace sim;
  const std::size_t k = 4, n = 3;
  auto net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(k, n), Clustering::blocks(64, 4), 1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.num_vcs = 2;
  cfg.vc_buffer_flits = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Xoshiro256 rng(seed);
    const auto perm = random_permutation(net.num_nodes(), rng);
    const auto r = run_wormhole_batch(net, kary_router(k, n), perm, cfg,
                                      torus_dateline_vc_classes(k, n));
    EXPECT_GE(r.packets_delivered, net.num_nodes() - 2) << seed;
  }
}

TEST(RandomizedCapacity, ChipBudgetsAreConserved) {
  // For random clusterings of a random-ish graph, the unit-chip weights of
  // the arcs leaving any chip never exceed its budget.
  using namespace topology;
  util::Xoshiro256 rng(13);
  const Graph g = kary_ncube_graph(6, 2);
  for (int trial = 0; trial < 4; ++trial) {
    // Random equal-size clustering via shuffled blocks.
    std::vector<std::uint32_t> assign(g.num_nodes());
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      assign[order[i]] = static_cast<std::uint32_t>(i / 6);
    }
    const Clustering chips(assign, 6);
    const double w_node = 1.0;
    const auto weights = metrics::unit_chip_arc_weights(g, chips, w_node);
    std::map<std::uint32_t, double> out_bw;
    std::size_t arc_index = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const auto& arc : g.arcs_of(v)) {
        if (chips.is_intercluster(v, arc.to)) {
          out_bw[chips.cluster_of(v)] += weights[arc_index];
        }
        ++arc_index;
      }
    }
    for (const auto& [chip, bw] : out_bw) {
      EXPECT_LE(bw, 6.0 * w_node + 1e-9) << "chip " << chip;
    }
  }
}

}  // namespace
}  // namespace ipg
