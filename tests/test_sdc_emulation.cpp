// Tests for SDC emulation (Theorem 3.1, Corollaries 3.2/3.3) and the
// induced embedding metrics, plus the lock-step data machine they rely on.
#include "emulation/sdc.hpp"

#include <gtest/gtest.h>

#include "emulation/embedding.hpp"
#include "emulation/machine.hpp"
#include "topology/nucleus.hpp"

namespace ipg::emulation {
namespace {

using namespace topology;

std::shared_ptr<const Nucleus> q(unsigned n) {
  return std::make_shared<HypercubeNucleus>(n);
}

TEST(SdcEmulation, Corollary32_SlowdownIsThree) {
  // HSN, complete-CN, SFN emulate HPN(l,G) with slowdown t+1 = 3.
  EXPECT_EQ(SdcEmulation(make_hsn(4, q(2))).slowdown(), 3u);
  EXPECT_EQ(SdcEmulation(make_complete_cn(4, q(2))).slowdown(), 3u);
  EXPECT_EQ(SdcEmulation(make_sfn(4, q(2))).slowdown(), 3u);
}

TEST(SdcEmulation, RingCnSlowdownGrowsWithL) {
  // ring-CN needs 2*floor(l/2) shifts for the farthest super-symbol.
  EXPECT_EQ(SdcEmulation(make_ring_cn(4, q(2))).slowdown(), 5u);  // 2*2+1
  EXPECT_EQ(SdcEmulation(make_ring_cn(6, q(2))).slowdown(), 7u);
}

TEST(SdcEmulation, WordsRealizeTheirHpnDimension) {
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kRingCN,
                            SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    const SuperIpg s(q(2), 3, family);
    const SdcEmulation emu(s);
    EXPECT_NO_THROW(emu.verify()) << family_name(family);
  }
}

TEST(SdcEmulation, LevelZeroDimsAreDirect) {
  const SdcEmulation emu(make_hsn(3, q(4)));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(emu.word_for_dim(j).size(), 1u);
    EXPECT_EQ(emu.word_for_dim(j)[0], j);
  }
  EXPECT_EQ(emu.num_dims(), 12u);
}

TEST(Embedding, Corollary33_DilationThreeCongestionTwo) {
  for (const auto family :
       {SuperFamily::kHSN, SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    const SuperIpg s(q(2), 3, family);
    const SdcEmulation emu(s);
    const auto m = measure_embedding(emu);
    EXPECT_EQ(m.dilation, 3u) << family_name(family);
    // The paper's "congestion is only 2" counts undirected links, with each
    // HPN edge embedded once. It is an upper bound: HSN/SFN reach it (bring
    // and restore share a link), while complete-CN(3,G) achieves 1 because
    // L_1 and L_2 links are disjoint families.
    EXPECT_LE(m.per_dim_link_congestion, 2u) << family_name(family);
    if (family != SuperFamily::kCompleteCN) {
      EXPECT_EQ(m.per_dim_link_congestion, 2u) << family_name(family);
    }
    EXPECT_LE(m.per_dim_congestion, 2u) << family_name(family);
    EXPECT_GE(m.total_congestion, m.per_dim_congestion);
  }
}

TEST(Machine, GeneratorStepMovesDataConsistently) {
  const SuperIpg s = make_hsn(2, q(2));
  std::vector<int> init(s.num_nodes());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = static_cast<int>(i * 10);
  SuperIpgMachine<int> m(s, init);
  const std::size_t t1 = s.num_nucleus_generators();  // the swap generator
  m.step_generator(t1);
  // Item from node v lives at apply(v, T): value_at_node(apply(v,T)) == 10v.
  for (NodeId v = 0; v < s.num_nodes(); ++v) {
    EXPECT_EQ(m.value_at_node(s.apply(v, t1)), static_cast<int>(v) * 10);
  }
  m.step_generator(t1);  // involution: everything returns home
  EXPECT_TRUE(m.is_home());
  EXPECT_EQ(m.counts().comm_steps, 2u);
  EXPECT_EQ(m.counts().offchip_steps, 2u);
  EXPECT_EQ(m.counts().onchip_steps, 0u);
}

TEST(Machine, BaseDimensionGathersSortedOrigins) {
  const SuperIpg s = make_hsn(2, q(2));
  std::vector<int> init(s.num_nodes(), 0);
  SuperIpgMachine<int> m(s, init);
  // Sum-exchange along base dimension 0: both partners end with the sum of
  // their original indices.
  m.step_base_dimension(0, [](std::span<const std::size_t> origs,
                              std::span<int> values) {
    ASSERT_EQ(origs.size(), 2u);
    ASSERT_LT(origs[0], origs[1]);
    const int sum = static_cast<int>(origs[0] + origs[1]);
    values[0] = sum;
    values[1] = sum;
  });
  for (NodeId v = 0; v < s.num_nodes(); ++v) {
    const NodeId partner = v ^ 1u;  // base dim 0 flips bit 0 of digit 0
    EXPECT_EQ(m.value_at_node(v), static_cast<int>(v + partner));
  }
  EXPECT_EQ(m.counts().onchip_steps, 1u);
  EXPECT_EQ(m.counts().compute_steps, 1u);
}

TEST(Machine, ValuesByOriginTracksMigration) {
  const SuperIpg s = make_sfn(3, q(2));
  std::vector<int> init(s.num_nodes());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = static_cast<int>(i);
  SuperIpgMachine<int> m(s, init);
  m.step_generator(s.num_nucleus_generators());      // F_2
  m.step_generator(s.num_nucleus_generators() + 1);  // F_3
  const auto by_origin = m.values_by_origin();
  for (std::size_t i = 0; i < by_origin.size(); ++i) {
    EXPECT_EQ(by_origin[i], static_cast<int>(i));
  }
  EXPECT_FALSE(m.is_home());
}

TEST(Machine, HpnMachineCountsOffchipByClustering) {
  const Hpn h(q(2), 2);  // Q_4 as HPN(2, Q_2)
  // Chips = factor-0 subcubes (4 nodes): level-0 dims on-chip, level-1 off.
  HpnMachine<int> m(h, Clustering::blocks(h.num_nodes(), 4),
                    std::vector<int>(h.num_nodes(), 1));
  auto sum = [](std::span<const std::size_t>, std::span<int> values) {
    const int s0 = values[0] + values[1];
    values[0] = s0;
    values[1] = s0;
  };
  m.step_dimension(0, 0, sum);
  m.step_dimension(0, 1, sum);
  m.step_dimension(1, 0, sum);
  m.step_dimension(1, 1, sum);
  EXPECT_EQ(m.counts().onchip_steps, 2u);
  EXPECT_EQ(m.counts().offchip_steps, 2u);
  // After summing over all 4 dimensions every node holds 2^4.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    EXPECT_EQ(m.value_at_node(v), 16);
  }
}

}  // namespace
}  // namespace ipg::emulation
