// Unit tests for core::Permutation — the generator primitive of the IPG
// model. Conventions are checked against the worked example in §2.
#include "core/permutation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ipg::core {
namespace {

TEST(Permutation, IdentityFixesEverything) {
  const auto id = Permutation::identity(6);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.is_involution());
  EXPECT_EQ(id.order(), 1u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(id[i], i);
}

TEST(Permutation, RejectsNonPermutations) {
  EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, 3, 1}), std::invalid_argument);
}

TEST(Permutation, Paper_Section2_GeneratorActions) {
  // Seed Y = 123321; pi_1 = 213456, pi_2 = 321456, pi_3 = 456123 (§2).
  const std::vector<std::uint8_t> y{1, 2, 3, 3, 2, 1};
  auto apply = [&](const Permutation& p) {
    std::vector<std::uint8_t> out(6);
    p.apply(std::span<const std::uint8_t>(y), std::span<std::uint8_t>(out));
    return out;
  };
  EXPECT_EQ(apply(Permutation::from_digits("213456")),
            (std::vector<std::uint8_t>{2, 1, 3, 3, 2, 1}));
  EXPECT_EQ(apply(Permutation::from_digits("321456")),
            (std::vector<std::uint8_t>{3, 2, 1, 3, 2, 1}));
  EXPECT_EQ(apply(Permutation::from_digits("456123")),
            (std::vector<std::uint8_t>{3, 2, 1, 1, 2, 3}));
}

TEST(Permutation, TranspositionIsInvolution) {
  const auto t = Permutation::transposition(5, 1, 3);
  EXPECT_TRUE(t.is_involution());
  EXPECT_FALSE(t.is_identity());
  EXPECT_EQ(t.order(), 2u);
  EXPECT_TRUE(t.then(t).is_identity());
}

TEST(Permutation, RotationComposesAdditively) {
  const auto r1 = Permutation::rotation(6, 1);
  const auto r2 = Permutation::rotation(6, 2);
  EXPECT_EQ(r1.then(r1), r2);
  EXPECT_EQ(r1.order(), 6u);
  EXPECT_EQ(Permutation::rotation(6, 3).order(), 2u);
}

TEST(Permutation, ThenMatchesSequentialApplication) {
  const auto p = Permutation::from_digits("23154");
  const auto q = Permutation::from_digits("52341");
  const std::vector<int> x{10, 20, 30, 40, 50};
  const auto via_compose = p.then(q).apply_copy(x);
  const auto via_steps = q.apply_copy(p.apply_copy(x));
  EXPECT_EQ(via_compose, via_steps);
}

TEST(Permutation, InverseUndoesAction) {
  const auto p = Permutation::from_digits("456123");
  EXPECT_TRUE(p.then(p.inverse()).is_identity());
  EXPECT_TRUE(p.inverse().then(p).is_identity());
}

TEST(Permutation, PrefixReversalFlipsOnlyPrefix) {
  const auto f = Permutation::prefix_reversal(6, 4);
  const std::vector<int> x{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(f.apply_copy(x), (std::vector<int>{4, 3, 2, 1, 5, 6}));
  EXPECT_TRUE(f.is_involution());
}

TEST(Permutation, OrderOfThreeCycle) {
  // 0 -> 1 -> 2 -> 0 three-cycle extended by a fixed point.
  const Permutation p({1, 2, 0, 3});
  EXPECT_EQ(p.order(), 3u);
  EXPECT_FALSE(p.is_involution());
}

TEST(Permutation, ToStringRendersOneLine) {
  EXPECT_EQ(Permutation::from_digits("312").to_string(), "[2 0 1]");
}

}  // namespace
}  // namespace ipg::core
