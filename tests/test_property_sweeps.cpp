// Property-style sweeps across (family x nucleus x levels): structural
// invariants, routing correctness, SDC emulation validity, intercluster
// diameters, plan homecoming, and FFT correctness — each checked on every
// combination rather than a single hand-picked instance.
#include <gtest/gtest.h>

#include "algorithms/allgather.hpp"
#include "algorithms/fft.hpp"
#include "emulation/sdc.hpp"
#include "metrics/distances.hpp"
#include "sim/routers.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

using namespace topology;

struct SweepCase {
  SuperFamily family;
  std::size_t levels;
  enum class Nuc { kQ2, kQ3, kK4, kGhc42, kS3 } nucleus;
};

std::shared_ptr<const Nucleus> make_nucleus(SweepCase::Nuc n) {
  switch (n) {
    case SweepCase::Nuc::kQ2: return std::make_shared<HypercubeNucleus>(2);
    case SweepCase::Nuc::kQ3: return std::make_shared<HypercubeNucleus>(3);
    case SweepCase::Nuc::kK4: return std::make_shared<CompleteNucleus>(4);
    case SweepCase::Nuc::kGhc42:
      return std::make_shared<GeneralizedHypercubeNucleus>(
          std::vector<std::size_t>{4, 2});
    case SweepCase::Nuc::kS3: return std::make_shared<StarNucleus>(3);
  }
  return nullptr;
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string s = family_name(info.param.family) + "_l" +
                  std::to_string(info.param.levels) + "_n" +
                  std::to_string(static_cast<int>(info.param.nucleus));
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kRingCN,
                            SuperFamily::kCompleteCN, SuperFamily::kSFN,
                            SuperFamily::kDirectedRingCN}) {
    for (const std::size_t l : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
      for (const auto nuc :
           {SweepCase::Nuc::kQ2, SweepCase::Nuc::kQ3, SweepCase::Nuc::kK4,
            SweepCase::Nuc::kGhc42, SweepCase::Nuc::kS3}) {
        // Keep instance sizes moderate.
        if (l == 4 && (nuc == SweepCase::Nuc::kQ3 || nuc == SweepCase::Nuc::kGhc42 ||
                       nuc == SweepCase::Nuc::kS3)) {
          continue;
        }
        cases.push_back({family, l, nuc});
      }
    }
  }
  return cases;
}

class FamilySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  SuperIpg build() const {
    const auto& p = GetParam();
    return SuperIpg(make_nucleus(p.nucleus), p.levels, p.family);
  }
};

TEST_P(FamilySweep, StructuralInvariants) {
  const SuperIpg s = build();
  // N = M^l.
  std::size_t expect = 1;
  for (std::size_t i = 0; i < s.levels(); ++i) expect *= s.nucleus_size();
  EXPECT_EQ(s.num_nodes(), expect);
  // apply/inverse round-trip (directed CN has no inverse in its set, so
  // only for families closed under inversion).
  if (GetParam().family != SuperFamily::kDirectedRingCN) {
    util::Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
      const auto v = static_cast<NodeId>(rng.below(s.num_nodes()));
      const std::size_t g = rng.below(s.num_generators());
      EXPECT_EQ(s.apply(s.apply(v, g), s.inverse_generator(g)), v);
    }
  }
  // Cluster structure: nucleus generators stay on-chip, supers leave.
  const auto chips = s.nucleus_clustering();
  for (std::size_t g = 0; g < s.num_generators(); ++g) {
    const NodeId v = static_cast<NodeId>(s.num_nodes() / 2);
    const NodeId u = s.apply(v, g);
    if (g < s.num_nucleus_generators()) {
      EXPECT_EQ(chips.cluster_of(v), chips.cluster_of(u));
    }
  }
}

TEST_P(FamilySweep, RoutingReachesRandomPairs) {
  const SuperIpg s = build();
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<NodeId>(rng.below(s.num_nodes()));
    const auto to = static_cast<NodeId>(rng.below(s.num_nodes()));
    NodeId v = from;
    for (const auto g : s.route(from, to)) v = s.apply(v, g);
    ASSERT_EQ(v, to) << s.name() << " " << from << "->" << to;
  }
}

TEST_P(FamilySweep, RouteInterclusterHopsBounded) {
  const SuperIpg s = build();
  const auto chips = s.nucleus_clustering();
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto from = static_cast<NodeId>(rng.below(s.num_nodes()));
    const auto to = static_cast<NodeId>(rng.below(s.num_nodes()));
    NodeId v = from;
    std::size_t hops = 0;
    for (const auto g : s.route(from, to)) {
      const NodeId u = s.apply(v, g);
      if (chips.is_intercluster(v, u)) ++hops;
      v = u;
    }
    EXPECT_LE(hops, s.levels()) << s.name();
  }
}

TEST_P(FamilySweep, SdcEmulationVerifies) {
  const SuperIpg s = build();
  const emulation::SdcEmulation emu(s);
  EXPECT_NO_THROW(emu.verify()) << s.name();
  EXPECT_GE(emu.slowdown(), 3u);
}

TEST_P(FamilySweep, InterclusterDiameterIsLMinus1) {
  const SuperIpg s = build();
  if (s.num_nodes() > 40'000) GTEST_SKIP();
  const auto stats =
      metrics::intercluster_stats(s.to_graph(), s.nucleus_clustering(), 8);
  EXPECT_EQ(stats.diameter, s.levels() - 1) << s.name();
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FamilySweep,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- FFT across families and power-of-two nuclei ---------------------------

struct FftCase {
  SuperFamily family;
  std::size_t levels;
};

class FftSweep : public ::testing::TestWithParam<FftCase> {};

TEST_P(FftSweep, MatchesReferenceOnQ2) {
  const auto [family, levels] = GetParam();
  const SuperIpg s(std::make_shared<HypercubeNucleus>(2), levels, family);
  util::Xoshiro256 rng(4);
  std::vector<algorithms::Complex> x(s.num_nodes());
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto run = algorithms::fft_on_super_ipg(s, x);
  const auto ref = algorithms::dft_reference(x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(run.output[i] - ref[i]), 0.0, 1e-8)
        << family_name(family) << " l=" << levels << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FftSweep,
    ::testing::Values(FftCase{SuperFamily::kHSN, 2}, FftCase{SuperFamily::kHSN, 4},
                      FftCase{SuperFamily::kRingCN, 4},
                      FftCase{SuperFamily::kCompleteCN, 4},
                      FftCase{SuperFamily::kSFN, 4}),
    [](const ::testing::TestParamInfo<FftCase>& p) {
      std::string s =
          family_name(p.param.family) + "_l" + std::to_string(p.param.levels);
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

// --- all-gather (MNB data movement) ------------------------------------------

TEST(AllGather, EveryNodeGathersEverything) {
  for (const auto family :
       {SuperFamily::kHSN, SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    const SuperIpg s(std::make_shared<HypercubeNucleus>(2), 3, family);
    const auto run = algorithms::allgather_on_super_ipg(s);
    for (std::uint32_t v = 0; v < s.num_nodes(); ++v) {
      ASSERT_EQ(run.tokens[v].size(), s.num_nodes()) << family_name(family);
      for (std::uint32_t i = 0; i < s.num_nodes(); ++i) {
        ASSERT_EQ(run.tokens[v][i], i);
      }
    }
    // Volume doubles per step: the last base-dim step moves N/2 * 2 items
    // per group pair -> total N * previous... just check monotone growth.
    EXPECT_GT(run.volume_per_step.back(), run.volume_per_step.front());
  }
}

// --- fault injection: a dead link leaves the network routable ---------------

TEST(FaultInjection, TableRouterRoutesAroundDeadLink) {
  const SuperIpg s = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  const Graph g = s.to_graph();
  // Remove one super link (both directions) and rebuild.
  NodeId dead_a = 1;
  const std::size_t t1 = s.num_nucleus_generators();
  const NodeId dead_b = s.apply(dead_a, t1);
  GraphBuilder b("faulty", g.num_nodes(), g.num_dims());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if ((v == dead_a && arc.to == dead_b) || (v == dead_b && arc.to == dead_a)) {
        continue;
      }
      b.add_arc(v, arc.to, arc.dim);
    }
  }
  auto faulty = std::make_shared<Graph>(std::move(b).build());
  // Still connected (super-IPGs have plenty of redundancy)...
  EXPECT_NO_THROW(metrics::distance_stats(*faulty));
  // ...and the table router finds paths between all pairs.
  const auto router = sim::table_router(faulty);
  for (NodeId from = 0; from < faulty->num_nodes(); from += 3) {
    for (NodeId to = 0; to < faulty->num_nodes(); to += 5) {
      NodeId v = from;
      for (const auto d : router(from, to)) {
        v = faulty->neighbor(v, static_cast<std::uint16_t>(d));
      }
      ASSERT_EQ(v, to);
    }
  }
}

}  // namespace
}  // namespace ipg
