// Tests for the Petersen nucleus and the cyclic Petersen networks ([31],
// cited by the paper as a CN-family member).
#include <gtest/gtest.h>

#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::topology {
namespace {

TEST(PetersenNucleus, GeneratorActionsMatchThePetersenGraph) {
  const PetersenNucleus p;
  const Graph direct = petersen_graph();
  // Every generator move must be a Petersen edge, and together they cover
  // all 15 edges.
  std::set<std::pair<NodeId, NodeId>> covered;
  for (NodeId v = 0; v < 10; ++v) {
    for (std::size_t g = 0; g < 3; ++g) {
      const NodeId u = p.apply(v, g);
      ASSERT_NE(u, v);
      ASSERT_NE(direct.neighbor(v, 0) == u || direct.neighbor(v, 1) == u ||
                    direct.neighbor(v, 2) == u,
                false)
          << v << "->" << u << " is not a Petersen edge";
      covered.insert({std::min(v, u), std::max(v, u)});
      // Inverse round-trips.
      EXPECT_EQ(p.apply(u, p.inverse_generator(g)), v);
    }
  }
  EXPECT_EQ(covered.size(), 15u);
}

TEST(PetersenNucleus, GraphMatchesDirectConstruction) {
  const auto g = PetersenNucleus().to_graph();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  const auto a = metrics::distance_stats(g);
  const auto b = metrics::distance_stats(petersen_graph());
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_DOUBLE_EQ(a.average, b.average);
}

TEST(CyclicPetersen, RingCnOverPetersen) {
  // ring-CN(3, Petersen): 1000 nodes, intercluster diameter l-1 = 2.
  const SuperIpg cpn = make_ring_cn(3, std::make_shared<PetersenNucleus>());
  EXPECT_EQ(cpn.num_nodes(), 1000u);
  EXPECT_EQ(cpn.name(), "ring-CN(3,Petersen)");
  const auto stats =
      metrics::intercluster_stats(cpn.to_graph(), cpn.nucleus_clustering());
  EXPECT_EQ(stats.diameter, 2u);
  // Routing across Petersen chips works.
  for (NodeId from = 0; from < cpn.num_nodes(); from += 97) {
    for (NodeId to = 0; to < cpn.num_nodes(); to += 89) {
      NodeId v = from;
      for (const auto g : cpn.route(from, to)) v = cpn.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

TEST(CyclicPetersen, HsnOverPetersenToo) {
  const SuperIpg hsn = make_hsn(2, std::make_shared<PetersenNucleus>());
  EXPECT_EQ(hsn.num_nodes(), 100u);
  EXPECT_TRUE(hsn.to_graph().is_undirected());
  const auto stats = metrics::distance_stats(hsn.to_graph());
  EXPECT_GE(stats.diameter, 2u);
}

}  // namespace
}  // namespace ipg::topology
