// Tests for the multi-level packaging hierarchy (§4's "more than two
// levels" extension): link-level classification, budget-constrained
// bandwidths, per-level traffic, and the three-level simulation.
#include "mcmp/hierarchy.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::mcmp {
namespace {

using namespace topology;

TEST(Hierarchy, ValidatesModuleSizes) {
  EXPECT_NO_THROW(PackagingHierarchy(256, {16, 64}));
  EXPECT_THROW(PackagingHierarchy(256, {16, 24}), std::invalid_argument);
  EXPECT_THROW(PackagingHierarchy(256, {16, 8}), std::invalid_argument);
  EXPECT_THROW(PackagingHierarchy(100, {16}), std::invalid_argument);
}

TEST(Hierarchy, LinkLevelIsCoarsestBoundaryCrossed) {
  const PackagingHierarchy h(64, {4, 16});
  EXPECT_EQ(h.link_level(0, 1), 0u);    // same chip
  EXPECT_EQ(h.link_level(0, 5), 1u);    // chip boundary, same board
  EXPECT_EQ(h.link_level(0, 17), 2u);   // board boundary
  EXPECT_EQ(h.link_level(15, 16), 2u);
}

TEST(Hierarchy, BandwidthsRespectEveryLevelBudget) {
  // HSN(3,Q2): 64 nodes; chips = 4 (nucleus), boards = 16 (two digits).
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const Graph g = hsn.to_graph();
  const PackagingHierarchy h(64, {4, 16});
  const double chip_budget = 4.0, board_budget = 8.0;
  const auto bw = hierarchical_arc_bandwidths(g, h, {chip_budget, board_budget},
                                              64.0);
  // Sum of bandwidths of arcs leaving any board must be <= its budget.
  std::vector<double> board_out(h.level(1).num_clusters(), 0.0);
  std::vector<double> chip_out(h.level(0).num_clusters(), 0.0);
  std::size_t arc_index = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (h.level(1).is_intercluster(v, arc.to)) {
        board_out[h.level(1).cluster_of(v)] += bw[arc_index];
      }
      if (h.level(0).is_intercluster(v, arc.to)) {
        chip_out[h.level(0).cluster_of(v)] += bw[arc_index];
      }
      ++arc_index;
    }
  }
  for (const double x : board_out) EXPECT_LE(x, board_budget + 1e-9);
  for (const double x : chip_out) EXPECT_LE(x, chip_budget + 1e-9);
}

TEST(Hierarchy, LevelTrafficMatchesSuperIpgStructure) {
  // HSN(3,Q2) with chips = digit 0 and boards = digits 0..1: the board
  // boundary is crossed only by super-generators touching digit 2; the
  // inter-board diameter is 1 (bring digit 2's symbol to the front once).
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const PackagingHierarchy h(64, {4, 16});
  const auto t = level_traffic(hsn.to_graph(), h);
  EXPECT_EQ(t.diameter[0], 2u);  // l - 1 chip crossings
  EXPECT_EQ(t.diameter[1], 1u);  // one board crossing suffices
  EXPECT_LT(t.avg_crossings[1], t.avg_crossings[0]);
}

TEST(Hierarchy, ThreeLevelSimulationRuns) {
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const PackagingHierarchy h(64, {4, 16});
  auto net = make_hierarchical_network(hsn.to_graph(), h, {4.0, 8.0}, 64.0);
  auto router = [&hsn](NodeId s, NodeId d) { return hsn.route(s, d); };
  util::Xoshiro256 rng(5);
  const auto perm = sim::random_permutation(net.num_nodes(), rng);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 8;
  const auto r = sim::run_batch(net, router, perm, cfg);
  EXPECT_GE(r.packets_delivered, 60u);
  EXPECT_GT(r.throughput_flits_per_node_cycle, 0.0);
}

TEST(Hierarchy, TighterBoardBudgetSlowsTheNetwork) {
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const PackagingHierarchy h(64, {4, 16});
  auto roomy = make_hierarchical_network(hsn.to_graph(), h, {4.0, 16.0}, 64.0);
  auto tight = make_hierarchical_network(hsn.to_graph(), h, {4.0, 1.0}, 64.0);
  auto router = [&hsn](NodeId s, NodeId d) { return hsn.route(s, d); };
  util::Xoshiro256 rng(7);
  const auto perm = sim::random_permutation(64, rng);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 8;
  const auto a = sim::run_batch(roomy, router, perm, cfg);
  const auto b = sim::run_batch(tight, router, perm, cfg);
  EXPECT_GT(b.makespan_cycles, a.makespan_cycles);
}

}  // namespace
}  // namespace ipg::mcmp
