// Observability layer (sim/observer.hpp, docs/OBSERVABILITY.md):
//  - observer-on vs observer-off bit-identity of every SimResult field on
//    fixed-seed runs (hooks are pure notifications — the pinned contract);
//  - MetricsObserver counters reconciling against the SimResult;
//  - ChromeTraceObserver producing parseable trace_event JSON with the
//    documented tracks, and honoring its event cap;
//  - LatencyHistogram: exact nearest-rank percentiles below kExactCap,
//    bucket-midpoint estimates within the documented error bound above it;
//  - StreamSweepProgress reporting every job exactly once without changing
//    sweep outcomes.
#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

void expect_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle, b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

struct TestNet {
  SimNetwork net;
  Router router;
};

TestNet hsn_q3() {
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  return {mcmp::make_unit_chip_network(hsn->to_graph(),
                                       hsn->nucleus_clustering(), 1.0),
          [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }};
}

SimConfig open_cfg() {
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  return cfg;
}

SimConfig faulty_cfg(const SimNetwork& net) {
  SimConfig cfg = open_cfg();
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan::random_link_faults(net.graph(), nullptr, 3, 40.0, 30.0, 11));
  return cfg;
}

// --- bit-identity: observers never change results ---------------------------

TEST(SimObserver, ObserverOnOffBitIdenticalHealthy) {
  const TestNet t = hsn_q3();
  const auto pattern = uniform_traffic(t.net.num_nodes());
  for (const Engine engine : {Engine::kArena, Engine::kReference}) {
    SimConfig cfg = open_cfg();
    cfg.engine = engine;
    const auto plain = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    MetricsObserver metrics;
    cfg.observer = &metrics;
    const auto observed = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    ChromeTraceObserver trace;
    cfg.observer = &trace;
    const auto traced = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    EXPECT_GT(plain.packets_delivered, 0u);
    expect_identical(plain, observed);
    expect_identical(plain, traced);
  }
}

TEST(SimObserver, ObserverOnOffBitIdenticalFaulty) {
  const TestNet t = hsn_q3();
  const auto pattern = uniform_traffic(t.net.num_nodes());
  for (const Engine engine : {Engine::kArena, Engine::kReference}) {
    SimConfig cfg = faulty_cfg(t.net);
    cfg.engine = engine;
    const auto plain = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    MetricsObserver metrics;
    cfg.observer = &metrics;
    const auto observed = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    EXPECT_GT(plain.packets_delivered, 0u);
    expect_identical(plain, observed);
  }
}

// --- MetricsObserver reconciles with the SimResult --------------------------

TEST(SimObserver, MetricsObserverMatchesHealthyResult) {
  const TestNet t = hsn_q3();
  const auto pattern = uniform_traffic(t.net.num_nodes());
  SimConfig cfg = open_cfg();
  MetricsObserver metrics;
  cfg.observer = &metrics;
  const auto r = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  const auto& c = metrics.counters();
  EXPECT_EQ(c.runs, 1u);
  EXPECT_EQ(c.injected, r.packets_injected);
  EXPECT_EQ(c.delivered, r.packets_delivered);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.detours, 0u);
  EXPECT_EQ(c.faults_applied, 0u);
  const auto delivered = static_cast<double>(r.packets_delivered);
  EXPECT_DOUBLE_EQ(static_cast<double>(c.hops) / delivered, r.avg_hops);
  EXPECT_DOUBLE_EQ(static_cast<double>(c.offchip_hops) / delivered,
                   r.avg_offchip_hops);
  // Latency histogram reconciles with the result's statistics.
  EXPECT_EQ(metrics.latencies().count(), r.packets_delivered);
  EXPECT_DOUBLE_EQ(metrics.latencies().sum() / delivered, r.avg_latency_cycles);
  expect_bits(metrics.latencies().max(), r.max_latency_cycles);
  expect_bits(metrics.latencies().percentile(50.0), r.p50_latency_cycles);
  expect_bits(metrics.latencies().percentile(99.0), r.p99_latency_cycles);
  // Per-link busy time is exactly what the engine accumulated, so the
  // busiest off-chip link recomputes the utilization (healthy run: horizon
  // is the last delivery = makespan).
  double max_busy = 0;
  for (LinkId l = 0; l < t.net.num_links(); ++l) {
    if (!t.net.is_offchip(l)) continue;
    max_busy = std::max(max_busy, metrics.link_busy_time()[l]);
  }
  EXPECT_DOUBLE_EQ(max_busy / r.makespan_cycles, r.max_offchip_utilization);
}

TEST(SimObserver, MetricsObserverCountsFaultEvents) {
  const TestNet t = hsn_q3();
  const auto pattern = uniform_traffic(t.net.num_nodes());
  SimConfig cfg = faulty_cfg(t.net);
  MetricsObserver metrics;
  cfg.observer = &metrics;
  const auto r = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  const auto& c = metrics.counters();
  EXPECT_EQ(c.injected, r.packets_injected);
  EXPECT_EQ(c.delivered, r.packets_delivered);
  EXPECT_EQ(c.dropped, r.packets_dropped);
  EXPECT_EQ(c.retries, r.packets_retransmitted);
  EXPECT_EQ(c.faults_applied, 3u);  // the plan's three link failures
}

// --- ChromeTraceObserver ----------------------------------------------------

TEST(SimObserver, ChromeTraceEmitsDocumentedTracks) {
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      ring_graph(6), Clustering::blocks(6, 1), 1.0);
  const Router route = table_router(std::make_shared<const Graph>(ring_graph(6)));
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.max_retries = 1;
  cfg.retry_backoff_cycles = 16;
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail_link(5.0, 0, 5).repair_link(100.0, 0, 5));
  ChromeTraceObserver trace;
  cfg.observer = &trace;
  const std::vector<Injection> in{{1, 5, 0.0}, {2, 4, 0.0}};
  const auto r = run_trace(net, route, in, cfg);
  EXPECT_EQ(r.packets_delivered, 2u);
  EXPECT_GT(trace.num_events(), 0u);
  EXPECT_FALSE(trace.truncated());
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  // Envelope and both process tracks.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"links\""), std::string::npos);
  // Hop intervals are complete events; lifecycle markers are instants.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("inject p0"), std::string::npos);
  EXPECT_NE(json.find("deliver p0"), std::string::npos);
  // The applied fault shows up by name; the trace ends well-formed.
  EXPECT_NE(json.find("link 0-5 down"), std::string::npos);
  EXPECT_NE(json.find("(off-chip)"), std::string::npos);
  EXPECT_EQ(json.rfind("]}\n"), json.size() - 3);
}

TEST(SimObserver, ChromeTraceHonorsEventCap) {
  const TestNet t = hsn_q3();
  const auto pattern = uniform_traffic(t.net.num_nodes());
  SimConfig cfg = open_cfg();
  ChromeTraceObserver trace(/*max_events=*/16);
  cfg.observer = &trace;
  (void)run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_EQ(trace.num_events(), 16u);
  EXPECT_TRUE(trace.truncated());
  std::ostringstream os;
  trace.write_json(os);  // still valid JSON with a truncated recording
  EXPECT_EQ(os.str().rfind("]}\n"), os.str().size() - 3);
}

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, ExactModeMatchesNearestRank) {
  LatencyHistogram h;
  std::vector<double> samples;
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double v = 1.0 + static_cast<double>(rng() % (1u << 20));
    samples.push_back(v);
    h.record(v);
  }
  EXPECT_TRUE(h.exact());
  EXPECT_EQ(h.count(), samples.size());
  for (const double pct : {1.0, 50.0, 75.0, 99.0, 100.0}) {
    std::vector<double> copy = samples;
    EXPECT_EQ(h.percentile(pct), percentile_nearest_rank(copy, pct));
  }
}

TEST(LatencyHistogram, EstimateWithinDocumentedBoundPastCap) {
  LatencyHistogram h;
  std::vector<double> samples;
  util::Xoshiro256 rng(321);
  const std::size_t n = LatencyHistogram::kExactCap + 5000;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Latency-shaped values spanning several octaves.
    const double v = 4.0 + static_cast<double>(rng() % (1u << 16)) / 16.0;
    samples.push_back(v);
    h.record(v);
  }
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), n);
  double sum = 0, max = 0;
  for (const double v : samples) {
    sum += v;
    max = std::max(max, v);
  }
  EXPECT_DOUBLE_EQ(h.sum(), sum);  // sum/max stay exact in histogram mode
  EXPECT_EQ(h.max(), max);
  for (const double pct : {50.0, 99.0}) {
    std::vector<double> copy = samples;
    const double exact = percentile_nearest_rank(copy, pct);
    const double est = h.percentile(pct);
    EXPECT_LE(std::abs(est - exact) / exact,
              LatencyHistogram::relative_error_bound())
        << "pct " << pct << ": " << est << " vs " << exact;
  }
}

TEST(LatencyHistogram, SwitchoverBoundary) {
  // Pin the exact -> bucketed transition sample by sample: the histogram
  // is exact at kExactCap - 1 and kExactCap samples, and folds exactly one
  // sample later, where every percentile must still agree with the
  // nearest-rank truth within the documented 1/128 relative bound.
  constexpr std::size_t cap = LatencyHistogram::kExactCap;
  for (const std::size_t n : {cap - 1, cap, cap + 1}) {
    LatencyHistogram h;
    std::vector<double> samples;
    samples.reserve(n);
    util::Xoshiro256 rng(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = 2.0 + rng.uniform() * 4096.0;
      samples.push_back(v);
      h.record(v);
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.exact(), n <= cap) << "n = " << n;
    for (const double pct : {1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      std::vector<double> copy = samples;
      const double exact = percentile_nearest_rank(copy, pct);
      const double est = h.percentile(pct);
      if (n <= cap) {
        EXPECT_EQ(est, exact) << "n = " << n << ", pct " << pct;
      } else {
        EXPECT_LE(std::abs(est - exact) / exact,
                  LatencyHistogram::relative_error_bound())
            << "n = " << n << ", pct " << pct;
      }
    }
  }
}

TEST(LatencyHistogram, HugeRunKeepsResultPercentilesWithinBound) {
  // End to end: a total exchange big enough to overflow the exact buffer
  // (512 nodes -> 261k packets) must still report sane percentiles.
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(8, 3), Clustering::blocks(512, 64), 1.0);
  const Router route = kary_router(8, 3);
  SimConfig cfg;
  cfg.packet_length_flits = 1;
  const auto r = run_total_exchange(net, route, cfg);
  EXPECT_EQ(r.packets_delivered, 512u * 511u);
  EXPECT_GT(r.p50_latency_cycles, 0.0);
  EXPECT_GE(r.p99_latency_cycles, r.p50_latency_cycles);
  EXPECT_LE(r.p99_latency_cycles,
            r.max_latency_cycles * (1.0 + LatencyHistogram::relative_error_bound()));
}

// --- StreamSweepProgress ----------------------------------------------------

TEST(SweepProgress, ReportsEveryJobWithoutChangingOutcomes) {
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(4, 2), kary2_block_clustering(4, 2), 1.0);
  const Router route = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  const std::vector<double> rates{0.02, 0.04, 0.06};
  const auto jobs = open_rate_sweep(net, route,
                                    uniform_traffic(net.num_nodes()), rates,
                                    100, cfg);
  util::ThreadPool pool(2);
  const auto plain = run_sweep(jobs, pool);
  std::ostringstream os;
  StreamSweepProgress progress(os);
  const auto reported = run_sweep(jobs, pool, &progress);
  ASSERT_EQ(plain.size(), reported.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].label, reported[i].label);
    expect_identical(plain[i].result, reported[i].result);
  }
  const std::string log = os.str();
  EXPECT_NE(log.find("starting 3 jobs"), std::string::npos);
  for (const auto& job : jobs) {
    EXPECT_NE(log.find(job.label), std::string::npos) << log;
  }
  EXPECT_NE(log.find("[sweep 3/3]"), std::string::npos);
  EXPECT_NE(log.find("[sweep] done:"), std::string::npos);
}

}  // namespace
}  // namespace ipg::sim
