// Tests for homogeneous product networks HPN(p,G) (§3.1): the hypercube,
// generalized hypercube, and k-ary n-cube arise as powers of small factors.
#include "topology/hpn.hpp"

#include <gtest/gtest.h>

#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::topology {
namespace {

TEST(Hpn, PowerOfQ2IsHypercube) {
  // HPN(3, Q_2) = Q_6 (the pk-dimensional hypercube as p-th power of Q_k).
  const Hpn h(std::make_shared<HypercubeNucleus>(2), 3);
  EXPECT_EQ(h.num_nodes(), 64u);
  EXPECT_EQ(h.num_dims(), 6u);
  const Graph g = h.to_graph();
  const Graph q6 = hypercube_graph(6);
  ASSERT_EQ(g.num_nodes(), q6.num_nodes());
  ASSERT_EQ(g.num_edges(), q6.num_edges());
  // Same neighbour sets node-by-node (coordinates coincide bitwise).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_EQ(h.apply(v, d), v ^ (NodeId{1} << d));
    }
  }
}

TEST(Hpn, PowerOfCompleteGraphIsGeneralizedHypercube) {
  // HPN(2, K_4) = 2-dimensional generalized hypercube of radix 4.
  const Hpn h(std::make_shared<CompleteNucleus>(4), 2);
  const GeneralizedHypercubeNucleus ghc({4, 4});
  ASSERT_EQ(h.num_nodes(), ghc.num_nodes());
  const auto hs = metrics::distance_stats(h.to_graph());
  const auto gs = metrics::distance_stats(ghc.to_graph());
  EXPECT_EQ(hs.diameter, gs.diameter);
  EXPECT_DOUBLE_EQ(hs.average, gs.average);
}

TEST(Hpn, PowerOfRingIsKaryNCube) {
  // HPN(2, C_5) = 5-ary 2-cube.
  const Hpn h(std::make_shared<RingNucleus>(5), 2);
  const Graph g = h.to_graph();
  const Graph torus = kary_ncube_graph(5, 2);
  ASSERT_EQ(g.num_nodes(), torus.num_nodes());
  EXPECT_EQ(g.num_edges(), torus.num_edges());
  const auto hs = metrics::distance_stats(g);
  const auto ts = metrics::distance_stats(torus);
  EXPECT_EQ(hs.diameter, ts.diameter);
  EXPECT_DOUBLE_EQ(hs.average, ts.average);
}

TEST(Hpn, DimensionGroupingMatchesPaper) {
  // Dimension j acts on coordinate j / n_G with factor generator j % n_G.
  const Hpn h(std::make_shared<HypercubeNucleus>(3), 2);
  const NodeId v = 0;
  EXPECT_EQ(h.apply(v, 0), 1u);        // level 0, bit 0
  EXPECT_EQ(h.apply(v, 2), 4u);        // level 0, bit 2
  EXPECT_EQ(h.apply(v, 3), 8u);        // level 1, bit 0
  EXPECT_EQ(h.coordinate(h.apply(v, 5), 1), 4u);
}

TEST(Hpn, InverseDimUndoesApply) {
  const Hpn h(std::make_shared<CompleteNucleus>(5), 3);
  for (std::size_t j = 0; j < h.num_dims(); ++j) {
    const NodeId v = 77;
    EXPECT_EQ(h.apply(h.apply(v, j), h.inverse_dim(j)), v);
  }
}

}  // namespace
}  // namespace ipg::topology
