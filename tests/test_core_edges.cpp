// Edge-case coverage pass: Label limits and rendering, GraphBuilder and
// Clustering validation, machine counter consistency, pattern off-chip
// accounting, and large-instance structural checks.
#include <gtest/gtest.h>

#include "algorithms/comm_tasks.hpp"
#include "core/label.hpp"
#include "emulation/machine.hpp"
#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg {
namespace {

using namespace topology;

// --- Label ---------------------------------------------------------------

TEST(LabelEdges, MaxLengthEnforced) {
  std::vector<core::Label::Symbol> syms(core::Label::kMaxSymbols, 1);
  EXPECT_NO_THROW(core::Label(std::span<const core::Label::Symbol>(syms)));
  syms.push_back(1);
  EXPECT_THROW(core::Label(std::span<const core::Label::Symbol>(syms)),
               std::invalid_argument);
  EXPECT_THROW(core::Label::repeated(core::Label::from_string("0123456789"), 5),
               std::invalid_argument);
}

TEST(LabelEdges, FromStringSkipsSpaces) {
  const auto l = core::Label::from_string("01 01 01");
  EXPECT_EQ(l.size(), 6u);
  EXPECT_EQ(l.to_string(2), "01 01 01");
  EXPECT_EQ(l.to_string(), "010101");
}

TEST(LabelEdges, HashDistinguishesLengthAndContent) {
  const auto a = core::Label::from_string("11");
  const auto b = core::Label::from_string("111");
  const auto c = core::Label::from_string("12");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == core::Label::from_string("11"));
}

TEST(LabelEdges, EmptyLabelIsValid) {
  const core::Label l;
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.to_string(), "");
}

// --- Graph / Clustering ----------------------------------------------------

TEST(GraphEdges, ClusteringRejectsOutOfRangeIds) {
  EXPECT_THROW(Clustering({0, 2}, 2), std::invalid_argument);
  EXPECT_NO_THROW(Clustering({0, 1}, 2));
}

TEST(GraphEdges, EmptyGraphBasics) {
  GraphBuilder b("empty", 3, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  EXPECT_TRUE(g.is_undirected());
}

TEST(GraphEdges, CensusOnSingleCluster) {
  const Graph g = ring_graph(4);
  const auto census = census_links(g, Clustering::single(4));
  EXPECT_EQ(census.offchip_edges, 0u);
  EXPECT_EQ(census.onchip_edges, 4u);
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 0.0);
}

// --- machine counters --------------------------------------------------------

TEST(MachineCounters, StepsPartitionIntoOnAndOffChip) {
  const SuperIpg s = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  emulation::SuperIpgMachine<int> m(s, std::vector<int>(s.num_nodes(), 0));
  m.step_generator(0);                          // nucleus: on-chip
  m.step_generator(s.num_nucleus_generators()); // super: off-chip
  m.step_base_dimension(1, [](std::span<const std::size_t>, std::span<int>) {});
  const auto& c = m.counts();
  EXPECT_EQ(c.comm_steps, 3u);
  EXPECT_EQ(c.onchip_steps + c.offchip_steps, c.comm_steps);
  EXPECT_EQ(c.onchip_steps, 2u);
  EXPECT_EQ(c.offchip_steps, 1u);
  EXPECT_GT(c.onchip_transmissions, 0u);
  EXPECT_GT(c.offchip_transmissions, 0u);
  EXPECT_EQ(c.compute_steps, 1u);
}

TEST(MachineCounters, SelfLoopGeneratorMovesNothingButCountsStep) {
  // On HSN(2,G), nodes (x,x) are fixed by the swap; the wave still counts
  // as one step, but those nodes transmit nothing.
  const SuperIpg s = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  emulation::SuperIpgMachine<int> m(s, std::vector<int>(s.num_nodes(), 0));
  m.step_generator(s.num_nucleus_generators());
  // 16 nodes, 4 fixed points -> 12 items moved.
  EXPECT_EQ(m.counts().offchip_transmissions, 12u);
}

// --- pattern off-chip accounting ---------------------------------------------

TEST(PatternOffchip, TransposeOnHsn2IsOneSwapHop) {
  // On HSN(2,Q4) the transpose partner of (a,b) is (b,a): exactly the swap
  // link — one off-chip hop for every node off the diagonal.
  const SuperIpg s = make_hsn(2, std::make_shared<HypercubeNucleus>(4));
  const Graph g = s.to_graph();
  const auto chips = s.nucleus_clustering();
  const double hops = algorithms::pattern_offchip_hops(
      g, chips, [&s](NodeId v) {
        return s.make_node(std::vector<NodeId>{
            static_cast<NodeId>(s.group(v, 1)), static_cast<NodeId>(s.group(v, 0))});
      });
  // 16 diagonal nodes of 256 stay put: average = 240/256.
  EXPECT_DOUBLE_EQ(hops, 240.0 / 256.0);
}

TEST(PatternOffchip, TransposeOnHypercubeCrossesHalfTheOffchipDims) {
  // Q8, 16-node chips (low 4 dims on-chip): transpose swaps the two bytes'
  // halves; expected off-chip hops = expected differing high bits = 2.
  const Graph g = hypercube_graph(8);
  const auto chips = hypercube_subcube_clustering(8, 16);
  const double hops = algorithms::pattern_offchip_hops(
      g, chips, [](NodeId v) {
        return static_cast<NodeId>(((v & 0x0f) << 4) | (v >> 4));
      });
  EXPECT_DOUBLE_EQ(hops, 2.0);
}

// --- scale ---------------------------------------------------------------------

TEST(Scale, HSN2Q7With16kNodes) {
  const SuperIpg s = make_hsn(2, std::make_shared<HypercubeNucleus>(7));
  EXPECT_EQ(s.num_nodes(), 16384u);
  const Graph g = s.to_graph();
  const auto stats =
      metrics::intercluster_stats(g, s.nucleus_clustering(), 8);
  EXPECT_EQ(stats.diameter, 1u);
  // Route across the whole machine still lands.
  NodeId v = 5;
  const auto to = static_cast<NodeId>(s.num_nodes() - 3);
  for (const auto gen : s.route(5, to)) v = s.apply(v, gen);
  EXPECT_EQ(v, to);
}

TEST(Scale, RhsnThreeDeepStructure) {
  // RHSN(3, 2, Q2): ((4^2)^2)^2 = 65536 nodes, three recursion levels.
  const SuperIpg r = make_rhsn(3, 2, std::make_shared<HypercubeNucleus>(2));
  EXPECT_EQ(r.num_nodes(), 65536u);
  EXPECT_EQ(base_nucleus(r).num_nodes(), 4u);
  EXPECT_EQ(num_base_nucleus_generators(r), 2u);
  NodeId v = 11;
  for (const auto gen : r.route(11, 54321)) v = r.apply(v, gen);
  EXPECT_EQ(v, 54321u);
}

}  // namespace
}  // namespace ipg
