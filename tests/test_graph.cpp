// Tests for the CSR Graph, GraphBuilder, Clustering, and link census.
#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include "core/ipg.hpp"

namespace ipg::topology {
namespace {

Graph triangle() {
  GraphBuilder b("triangle", 3, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(2, 0, 0);
  return std::move(b).build();
}

TEST(Graph, BuilderProducesSortedCsr) {
  GraphBuilder b("g", 3, 2);
  b.add_arc(0, 2, 1);
  b.add_arc(0, 1, 0);
  b.add_arc(2, 0, 1);
  const Graph g = std::move(b).build();
  ASSERT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.arcs_of(0)[0].dim, 0);
  EXPECT_EQ(g.arcs_of(0)[1].dim, 1);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
  EXPECT_EQ(g.neighbor(1, 0), kInvalidNode);
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, DirectedDetection) {
  GraphBuilder b("d", 2, 1);
  b.add_arc(0, 1, 0);
  EXPECT_FALSE(std::move(b).build().is_undirected());
}

TEST(Clustering, BlocksPartitionEvenly) {
  const auto c = Clustering::blocks(12, 4);
  EXPECT_EQ(c.num_clusters(), 3u);
  EXPECT_EQ(c.cluster_of(0), 0u);
  EXPECT_EQ(c.cluster_of(11), 2u);
  for (const auto s : c.cluster_sizes()) EXPECT_EQ(s, 4u);
  EXPECT_THROW(Clustering::blocks(10, 4), std::invalid_argument);
}

TEST(Clustering, SinglePutsEverythingTogether) {
  const auto c = Clustering::single(5);
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_FALSE(c.is_intercluster(0, 4));
}

TEST(LinkCensus, CountsOnAndOffChipLinks) {
  // Path 0-1-2-3 clustered as {0,1} {2,3}: one off-chip link (1-2).
  GraphBuilder b("path", 4, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(2, 3, 0);
  const Graph g = std::move(b).build();
  const auto census = census_links(g, Clustering::blocks(4, 2));
  EXPECT_EQ(census.onchip_edges, 2u);
  EXPECT_EQ(census.offchip_edges, 1u);
  EXPECT_DOUBLE_EQ(census.max_offchip_per_cluster, 1.0);
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 0.5);
}

TEST(FromIpg, ConvertsSection2Example) {
  const auto ipg = core::section2_example();
  const Graph g = from_ipg(ipg, "section2");
  EXPECT_EQ(g.num_nodes(), 36u);
  EXPECT_EQ(g.num_dims(), 3u);
  EXPECT_TRUE(g.is_undirected());
  // pi_3 fixes the six labels whose halves are equal (self-loops dropped),
  // so degrees are 2 or 3.
  EXPECT_EQ(g.max_degree(), 3u);
  std::size_t degree2 = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 2) ++degree2;
  }
  EXPECT_EQ(degree2, 6u);
}

}  // namespace
}  // namespace ipg::topology
