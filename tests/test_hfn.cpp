// Tests for hierarchical folded-hypercube networks (HFN, one of the §1
// subclass list): structure, SDC emulation (including the complement
// generators), the FFT through the folded nucleus, and the diameter
// benefit of the complement links.
#include <gtest/gtest.h>

#include "algorithms/fft.hpp"
#include "emulation/sdc.hpp"
#include "metrics/distances.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

using namespace topology;

TEST(Hfn, StructureAndDiameter) {
  const SuperIpg hfn = make_hfn(3);
  EXPECT_EQ(hfn.name(), "HSN(2,FQ3)");
  EXPECT_EQ(hfn.num_nodes(), 64u);
  // The folded nucleus has diameter 2 instead of 3; the two-level network
  // is strictly smaller in diameter than the plain HCN(3,3).
  const auto hfn_stats = metrics::distance_stats(hfn.to_graph());
  const auto hcn_stats = metrics::distance_stats(make_hcn(3).to_graph());
  EXPECT_LT(hfn_stats.diameter, hcn_stats.diameter);
  EXPECT_LT(hfn_stats.average, hcn_stats.average);
}

TEST(Hfn, SdcEmulationCoversComplementDimensions) {
  // HFN emulates HPN(2, FQ3): 2 * 4 = 8 dimensions (3 cube + 1 complement
  // per level), slowdown 3, all words verified.
  const SuperIpg hfn = make_hfn(3);
  const emulation::SdcEmulation emu(hfn);
  EXPECT_EQ(emu.num_dims(), 8u);
  EXPECT_EQ(emu.slowdown(), 3u);
  EXPECT_NO_THROW(emu.verify());
}

TEST(Hfn, FftRunsOnTheFoldedNucleus) {
  const SuperIpg hfn = make_hfn(3);
  util::Xoshiro256 rng(9);
  std::vector<algorithms::Complex> x(hfn.num_nodes());
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto run = algorithms::fft_on_super_ipg(hfn, x);
  const auto ref = algorithms::dft_reference(x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(run.output[i] - ref[i]), 0.0, 1e-8);
  }
  // Ascend uses the 3 cube dimensions per level: l(k+2)-2 = 2*5-2 = 8.
  EXPECT_EQ(run.counts.comm_steps, 8u);
}

TEST(Hfn, RoutingUsesComplementShortcuts) {
  const SuperIpg hfn = make_hfn(4);
  // Nucleus route 0 -> 15 (all bits differ): one complement hop.
  EXPECT_EQ(hfn.nucleus().route(0, 15).size(), 1u);
  EXPECT_EQ(hfn.nucleus().route(0, 7).size(), 2u);  // complement + one flip
  // End-to-end routes still land.
  for (NodeId from = 0; from < hfn.num_nodes(); from += 13) {
    for (NodeId to = 0; to < hfn.num_nodes(); to += 11) {
      NodeId v = from;
      for (const auto g : hfn.route(from, to)) v = hfn.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

}  // namespace
}  // namespace ipg
