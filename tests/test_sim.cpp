// Tests for the event-driven simulator: timing semantics of the switching
// modes, bandwidth sharing, routing adapters, and traffic patterns.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

SimNetwork line_network(double bandwidth) {
  // 0 - 1 - 2 - 3 path, each node its own chip (all links off-chip).
  // Dimension labels must be unambiguous per node: 0 = toward 3, 1 = toward 0.
  GraphBuilder b("line", 4, 2);
  for (NodeId v = 0; v < 3; ++v) {
    b.add_arc(v, v + 1, 0);
    b.add_arc(v + 1, v, 1);
  }
  Graph g = std::move(b).build();
  // Every node has at most 2 off-chip links; give each chip budget so each
  // link ends up with exactly `bandwidth`: budget = 2 * bandwidth.
  return SimNetwork(std::move(g), Clustering::blocks(4, 1), 2 * bandwidth,
                    1000.0);
}

Router line_router() {
  return [](NodeId src, NodeId dst) {
    return std::vector<std::size_t>(
        static_cast<std::size_t>(src < dst ? dst - src : src - dst),
        src < dst ? 0 : 1);
  };
}

TEST(Simulator, StoreAndForwardLatencyIsPerHopSerial) {
  const SimNetwork net = line_network(1.0);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.link_latency_cycles = 1;
  std::vector<NodeId> dst{3, 1, 2, 3};  // only node 0 sends (0 -> 3)
  const auto r = run_batch(net, line_router(), dst, cfg);
  EXPECT_EQ(r.packets_delivered, 1u);
  // 3 hops, each 8 cycles transfer + 1 latency.
  EXPECT_DOUBLE_EQ(r.avg_latency_cycles, 3 * (8 + 1));
  EXPECT_DOUBLE_EQ(r.avg_hops, 3.0);
  EXPECT_DOUBLE_EQ(r.avg_offchip_hops, 3.0);
}

TEST(Simulator, CutThroughPipelinesHops) {
  const SimNetwork net = line_network(1.0);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.link_latency_cycles = 1;
  cfg.switching = Switching::kVirtualCutThrough;
  std::vector<NodeId> dst{3, 1, 2, 3};
  const auto r = run_batch(net, line_router(), dst, cfg);
  // Head moves 1 flit-time + latency per hop; tail arrives len after the
  // last head: 2 * (1+1) + (8+1) = 13.
  EXPECT_DOUBLE_EQ(r.avg_latency_cycles, 2 * 2 + 9);
  EXPECT_LT(r.avg_latency_cycles, 27);  // strictly better than SAF
}

TEST(Simulator, WormholeMatchesVctAtFlowLevel) {
  const SimNetwork net = line_network(1.0);
  SimConfig vct, worm;
  vct.switching = Switching::kVirtualCutThrough;
  worm.switching = Switching::kWormhole;
  std::vector<NodeId> dst{3, 2, 3, 3};
  const auto a = run_batch(net, line_router(), dst, vct);
  const auto b = run_batch(net, line_router(), dst, worm);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

TEST(Simulator, LinkContentionSerializes) {
  const SimNetwork net = line_network(1.0);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.link_latency_cycles = 0;
  // Nodes 0 and 1 both send to 2: the 1->2 link carries both packets.
  std::vector<NodeId> dst{2, 2, 2, 3};
  const auto r = run_batch(net, line_router(), dst, cfg);
  EXPECT_EQ(r.packets_delivered, 2u);
  // Packet B (1->2): 4 cycles. Packet A (0->2): arrives at 1 at t=4, but
  // link 1->2 is free then: done at 8. Makespan 8.
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 8.0);
}

TEST(Simulator, FractionalBandwidthSlowsTransfers) {
  const SimNetwork net = line_network(0.5);  // half a flit per cycle
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.link_latency_cycles = 0;
  std::vector<NodeId> dst{1, 1, 2, 3};
  const auto r = run_batch(net, line_router(), dst, cfg);
  EXPECT_DOUBLE_EQ(r.avg_latency_cycles, 16.0);
}

TEST(Simulator, HypercubeRouterRoutesCorrectly) {
  const auto router = hypercube_router(4);
  const auto dims = router(0b0000, 0b1010);
  EXPECT_EQ(dims, (std::vector<std::size_t>{1, 3}));
  EXPECT_TRUE(router(5, 5).empty());
}

TEST(Simulator, KaryRouterTakesShortWrap) {
  const auto router = kary_router(8, 2);
  // 0 -> 6 in dimension 0: two -1 hops (labels 1) beat six +1 hops.
  const auto dims = router(0, 6);
  EXPECT_EQ(dims, (std::vector<std::size_t>{1, 1}));
  // 0 -> 2 in dimension 1: two +1 hops (label 2).
  EXPECT_EQ(router(0, 16), (std::vector<std::size_t>{2, 2}));
}

TEST(Simulator, TableRouterFindsShortestPaths) {
  auto g = std::make_shared<Graph>(ring_graph(8));
  const auto router = table_router(g);
  EXPECT_EQ(router(0, 3).size(), 3u);
  EXPECT_EQ(router(0, 6).size(), 2u);
  // Following the dims reaches the destination.
  NodeId cur = 0;
  for (const auto d : router(0, 5)) cur = g->neighbor(cur, static_cast<std::uint16_t>(d));
  EXPECT_EQ(cur, 5u);
}

TEST(Simulator, BatchUniformOnHypercubeDeliversAll) {
  Graph g = hypercube_graph(6);
  SimNetwork net(std::move(g), hypercube_subcube_clustering(6, 8), 8.0, 512.0);
  util::Xoshiro256 rng(3);
  const auto perm = random_permutation(net.num_nodes(), rng);
  SimConfig cfg;
  const auto r = run_batch(net, hypercube_router(6), perm, cfg);
  EXPECT_GE(r.packets_delivered, net.num_nodes() - 1);  // fixed points skipped
  EXPECT_GT(r.throughput_flits_per_node_cycle, 0.0);
  EXPECT_NEAR(r.avg_hops, 3.0, 0.5);  // ~n/2 for random pairs
  EXPECT_LE(r.max_offchip_utilization, 1.0 + 1e-9);
}

TEST(Simulator, OpenLoopLatencyGrowsWithLoad) {
  Graph g = hypercube_graph(5);
  SimNetwork net(std::move(g), Clustering::blocks(32, 4), 4.0, 256.0);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  const auto lo = run_open(net, hypercube_router(5), uniform_traffic(32), 0.01,
                           400, cfg);
  const auto hi = run_open(net, hypercube_router(5), uniform_traffic(32), 0.2,
                           400, cfg);
  EXPECT_GT(lo.packets_delivered, 0u);
  EXPECT_GT(hi.avg_latency_cycles, lo.avg_latency_cycles);
}

TEST(Traffic, PatternsAreValidDestinations) {
  util::Xoshiro256 rng(9);
  const auto uni = uniform_traffic(64);
  for (int i = 0; i < 100; ++i) {
    const auto d = uni(7, rng);
    EXPECT_LT(d, 64u);
    EXPECT_NE(d, 7u);
  }
  EXPECT_EQ(bit_complement_traffic(16)(0b0101, rng), 0b1010u);
  EXPECT_EQ(transpose_traffic(16)(0b0111, rng), 0b1101u);
  EXPECT_EQ(bit_reversal_traffic(16)(0b0010, rng), 0b0100u);
}

TEST(Traffic, HotspotBiasesTowardHotNode) {
  util::Xoshiro256 rng(11);
  const auto pat = hotspot_traffic(64, 5, 0.5);
  std::size_t hot = 0;
  for (int i = 0; i < 2000; ++i) {
    if (pat(9, rng) == 5) ++hot;
  }
  EXPECT_GT(hot, 800u);
}

TEST(Traffic, ShiftAndTornadoPatterns) {
  util::Xoshiro256 rng(3);
  EXPECT_EQ(shift_traffic(10, 3)(8, rng), 1u);
  EXPECT_EQ(tornado_traffic(10)(2, rng), 7u);
  EXPECT_EQ(tornado_traffic(9)(8, rng), 3u);  // N/2 = 4 for odd N
}

TEST(Traffic, GeneratorsValidateNodeCounts) {
  // Every generator must reject degenerate node counts up front, at
  // construction — not by handing out out-of-range destinations later.
  EXPECT_THROW(uniform_traffic(0), std::invalid_argument);
  EXPECT_THROW(uniform_traffic(1), std::invalid_argument);
  EXPECT_THROW(tornado_traffic(1), std::invalid_argument);
  EXPECT_THROW(shift_traffic(8, 0), std::invalid_argument);
  EXPECT_THROW(shift_traffic(8, 8), std::invalid_argument);
  // The bit-pattern permutations additionally need a power-of-two count
  // (transpose: an even number of address bits).
  EXPECT_THROW(bit_complement_traffic(0), std::invalid_argument);
  EXPECT_THROW(bit_complement_traffic(12), std::invalid_argument);
  EXPECT_THROW(transpose_traffic(12), std::invalid_argument);
  EXPECT_THROW(transpose_traffic(8), std::invalid_argument);  // 3 bits
  EXPECT_THROW(bit_reversal_traffic(12), std::invalid_argument);
}

TEST(Traffic, HotspotValidatesHotNodeAndFraction) {
  EXPECT_THROW(hotspot_traffic(1, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(64, 64, 0.5), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(64, 5, -0.1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(64, 5, 1.5), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(64, 5, std::nan("")), std::invalid_argument);
  // The boundary fractions are legal.
  util::Xoshiro256 rng(1);
  EXPECT_EQ(hotspot_traffic(64, 5, 1.0)(9, rng), 5u);
  EXPECT_LT(hotspot_traffic(64, 5, 0.0)(9, rng), 64u);
}

TEST(Traffic, RandomPermutationIsPermutation) {
  util::Xoshiro256 rng(13);
  const auto p = random_permutation(100, rng);
  std::vector<bool> seen(100, false);
  for (const auto v : p) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace ipg::sim
