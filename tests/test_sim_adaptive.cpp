// Congestion-aware adaptive routing (sim/adaptive.hpp): CongestionMonitor
// accounting, UgalPlanner decisions, run_routed preset validation, and —
// the load-bearing contract — bit-identical adaptive results across
// Engine::kArena / kReference / kSharded for every domain count, with the
// monitor attached, healthy and under fault plans, including inside
// thread-pool workers. The §4-style adversarial payoff is pinned too: UGAL
// must strictly beat minimal routing on at least one adversarial pattern.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/adaptive.hpp"
#include "sim/simulator.hpp"
#include "topology/graph.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

void expect_latency_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_latency_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_latency_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_latency_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_latency_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle,
            b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

struct TestNet {
  SimNetwork net;
  Router router;
  std::size_t intermediate_nodes = 0;  ///< UGAL pool bound (0 = all)
};

TestNet q6_net() {
  return {mcmp::make_unit_chip_network(hypercube_graph(6),
                                       hypercube_subcube_clustering(6, 8),
                                       1.0),
          hypercube_router(6)};
}

TestNet dragonfly_net() {
  return {mcmp::make_unit_chip_network(dragonfly_graph(4, 2),
                                       dragonfly_group_clustering(4, 2), 1.0),
          dragonfly_router(4, 2)};
}

TestNet fat_tree_net() {
  // Only host ids are routable endpoints, so the Valiant pool must stay
  // within the host prefix [0, 16).
  return {mcmp::make_unit_chip_network(fat_tree_graph(4),
                                       fat_tree_pod_clustering(4), 1.0),
          fat_tree_router(4), 16};
}

/// Tornado over the routable prefix (hosts for the fat-tree), identity
/// elsewhere.
std::vector<NodeId> tornado_perm(std::size_t num_nodes, std::size_t prefix) {
  std::vector<NodeId> dst(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) dst[v] = v;
  for (NodeId v = 0; v < prefix; ++v) {
    dst[v] = static_cast<NodeId>((v + prefix / 2) % prefix);
  }
  return dst;
}

// ---------------------------------------------------------------------------
// CongestionMonitor
// ---------------------------------------------------------------------------

TEST(AdaptiveMonitor, MeasuresLoadsWithoutChangingResults) {
  const TestNet t = q6_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  SimConfig cfg;
  const SimResult plain = run_batch(t.net, t.router, dst, cfg);

  CongestionMonitor monitor;
  cfg.observer = &monitor;
  const SimResult observed = run_batch(t.net, t.router, dst, cfg);
  expect_identical(plain, observed);

  ASSERT_EQ(monitor.runs_observed(), 1u);
  ASSERT_EQ(monitor.loads().size(), t.net.num_links());
  double max_load = 0;
  for (const double l : monitor.loads()) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
    max_load = std::max(max_load, l);
  }
  EXPECT_GT(max_load, 0.0);
}

TEST(AdaptiveMonitor, EwmaFoldsAcrossRuns) {
  const TestNet t = q6_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  SimConfig cfg;
  CongestionMonitor last_run(1.0);
  CongestionMonitor ewma(0.5);
  for (CongestionMonitor* m : {&last_run, &ewma}) {
    cfg.observer = m;
    run_batch(t.net, t.router, dst, cfg);
    run_batch(t.net, t.router, dst, cfg);
    EXPECT_EQ(m->runs_observed(), 2u);
  }
  // Identical runs: alpha = 1 tracks the run exactly and the EWMA of two
  // equal samples equals the sample.
  for (LinkId l = 0; l < t.net.num_links(); ++l) {
    EXPECT_NEAR(last_run.load(l), ewma.load(l), 1e-12);
  }
}

TEST(AdaptiveMonitor, RejectsBadAlpha) {
  EXPECT_THROW(CongestionMonitor(0.0), std::invalid_argument);
  EXPECT_THROW(CongestionMonitor(1.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// UgalPlanner
// ---------------------------------------------------------------------------

TEST(AdaptivePlanner, ZeroCandidatesDegeneratesToMinimal) {
  const TestNet t = q6_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  UgalConfig ugal;
  ugal.candidates = 0;
  SimConfig cfg;
  const AdaptiveResult a =
      run_adaptive_batch(t.net, t.router, dst, ugal, cfg, nullptr);
  EXPECT_EQ(a.packets_nonminimal, 0u);
  EXPECT_EQ(a.packets_minimal, a.sim.packets_injected);
  const SimResult plain = run_batch(t.net, t.router, dst, cfg);
  expect_identical(a.sim, plain);
}

/// Neighbor-group shift on DF(a, h): dst = (src + a) mod N. Every node in
/// group G targets group G + 1, and each group pair shares exactly one
/// global link, so minimal routing serializes all a packets of a group on
/// that link — the canonical dragonfly adversary.
std::vector<NodeId> dragonfly_shift(std::size_t num_nodes, std::size_t a) {
  std::vector<NodeId> dst(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    dst[v] = static_cast<NodeId>((v + a) % num_nodes);
  }
  return dst;
}

TEST(AdaptivePlanner, SpreadsAdversarialBatchOffTheMinimalPath) {
  // Neighbor-group shift on the dragonfly: the planner's own
  // committed-load term must push part of the batch onto Valiant routes
  // once the shared global link fills up.
  const TestNet t = dragonfly_net();
  const auto dst = dragonfly_shift(t.net.num_nodes(), 4);
  UgalConfig ugal;
  ugal.planned_weight = 4.0;
  SimConfig cfg;
  const AdaptiveResult a =
      run_adaptive_batch(t.net, t.router, dst, ugal, cfg, nullptr);
  EXPECT_GT(a.packets_nonminimal, 0u);
  EXPECT_EQ(a.packets_minimal + a.packets_nonminimal, a.sim.packets_injected);
  EXPECT_EQ(a.sim.delivered_fraction, 1.0);
}

TEST(AdaptivePlanner, UgalBeatsMinimalOnAdversarialTraffic) {
  // The §4-style payoff the bench reports, pinned as a test: strictly
  // better makespan than minimal routing on an adversarial permutation.
  const TestNet t = dragonfly_net();
  const auto dst = dragonfly_shift(t.net.num_nodes(), 4);
  SimConfig cfg;
  const SimResult minimal = run_batch(t.net, t.router, dst, cfg);
  UgalConfig ugal;
  ugal.planned_weight = 4.0;
  const AdaptiveResult adaptive =
      run_adaptive_batch(t.net, t.router, dst, ugal, cfg, nullptr);
  EXPECT_LT(adaptive.sim.makespan_cycles, minimal.makespan_cycles);
}

TEST(AdaptivePlanner, RejectsBadConfigs) {
  const TestNet t = q6_net();
  UgalConfig bad;
  bad.monitor_weight = -1.0;
  EXPECT_THROW(UgalPlanner(t.net, t.router, bad, nullptr),
               std::invalid_argument);
  bad = UgalConfig{};
  bad.intermediate_nodes = t.net.num_nodes() + 1;
  EXPECT_THROW(UgalPlanner(t.net, t.router, bad, nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// run_routed preset validation
// ---------------------------------------------------------------------------

TEST(AdaptiveRoutedRun, RejectsRoutesThatMissTheDestination) {
  const TestNet t = q6_net();
  const std::vector<std::uint16_t> ports = {0};  // one hop along dim 0
  SimConfig cfg;
  // 0 -> 1 along dimension 0 is a valid walk but ends at 1, not 3.
  const std::vector<RoutedInjection> bad = {{0, 3, 0.0, 0, 1}};
  EXPECT_THROW(run_routed(t.net, t.router, bad, ports, cfg),
               std::invalid_argument);
  const std::vector<RoutedInjection> good = {{0, 1, 0.0, 0, 1}};
  const SimResult r = run_routed(t.net, t.router, good, ports, cfg);
  EXPECT_EQ(r.packets_delivered, 1u);
}

TEST(AdaptiveRoutedRun, RejectsOutOfBufferAndBadPorts) {
  const TestNet t = q6_net();
  const std::vector<std::uint16_t> ports = {0, 99};
  SimConfig cfg;
  // A preset reaching past the buffer, then one naming port 99 on a
  // degree-6 node.
  const std::vector<RoutedInjection> past = {{0, 1, 0.0, 1, 5}};
  EXPECT_THROW(run_routed(t.net, t.router, past, ports, cfg),
               std::invalid_argument);
  const std::vector<RoutedInjection> badport = {{0, 1, 0.0, 1, 1}};
  EXPECT_THROW(run_routed(t.net, t.router, badport, ports, cfg),
               std::invalid_argument);
}

TEST(AdaptiveRoutedRun, FallbackRouterServesZeroLengthPresets) {
  const TestNet t = q6_net();
  SimConfig cfg;
  const std::vector<RoutedInjection> routed_inj = {{3, 60, 0.0, 0, 0}};
  const SimResult routed = run_routed(t.net, t.router, routed_inj, {}, cfg);
  const std::vector<Injection> plain = {{3, 60, 0.0}};
  const SimResult traced = run_trace(t.net, t.router, plain, cfg);
  expect_identical(routed, traced);
}

// ---------------------------------------------------------------------------
// Cross-engine determinism
// ---------------------------------------------------------------------------

/// Full adaptive pipeline on one engine: minimal warm-up observed by a
/// fresh monitor, then the UGAL run with the monitor attached — both on
/// @p engine. Engine-independence of the whole pipeline implies the
/// monitor states agree, so any divergence shows up in the final result.
AdaptiveResult adaptive_pipeline(const TestNet& t,
                                 const std::vector<NodeId>& dst,
                                 SimConfig cfg, Engine engine,
                                 std::uint32_t domains) {
  cfg.engine = engine;
  cfg.shard_domains = domains;
  CongestionMonitor monitor;
  cfg.observer = &monitor;
  run_batch(t.net, t.router, dst, cfg);
  UgalConfig ugal;
  ugal.intermediate_nodes = t.intermediate_nodes;
  return run_adaptive_batch(t.net, t.router, dst, ugal, cfg, &monitor);
}

TEST(AdaptiveDeterminism, BitIdenticalAcrossEnginesAndDomainCounts) {
  for (const TestNet& t : {q6_net(), dragonfly_net(), fat_tree_net()}) {
    const auto dst = tornado_perm(
        t.net.num_nodes(),
        t.intermediate_nodes > 0 ? t.intermediate_nodes : t.net.num_nodes());
    SimConfig cfg;
    cfg.packet_length_flits = 8;
    const AdaptiveResult oracle =
        adaptive_pipeline(t, dst, cfg, Engine::kReference, 0);
    const AdaptiveResult arena =
        adaptive_pipeline(t, dst, cfg, Engine::kArena, 0);
    expect_identical(arena.sim, oracle.sim);
    EXPECT_EQ(arena.packets_nonminimal, oracle.packets_nonminimal);
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      const AdaptiveResult sharded =
          adaptive_pipeline(t, dst, cfg, Engine::kSharded, k);
      expect_identical(sharded.sim, oracle.sim);
      EXPECT_EQ(sharded.packets_nonminimal, oracle.packets_nonminimal);
    }
  }
}

TEST(AdaptiveDeterminism, OpenLoopBitIdenticalAcrossEngines) {
  const TestNet t = dragonfly_net();
  const auto pattern = tornado_traffic(t.net.num_nodes());
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  UgalConfig ugal;
  auto run_on = [&](Engine e, std::uint32_t k) {
    SimConfig c = cfg;
    c.engine = e;
    c.shard_domains = k;
    return run_adaptive_open(t.net, t.router, pattern, 0.1, 200, ugal, c,
                             nullptr);
  };
  const AdaptiveResult oracle = run_on(Engine::kReference, 0);
  expect_identical(run_on(Engine::kArena, 0).sim, oracle.sim);
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    expect_identical(run_on(Engine::kSharded, k).sim, oracle.sim);
  }
  EXPECT_GT(oracle.sim.packets_injected, 0u);
}

TEST(AdaptiveDeterminism, FaultPlansPreserveCrossEngineIdentity) {
  // Preset routes meeting dead links must detour/retry identically on all
  // engines: fail a dragonfly global link mid-run, with retries enabled.
  const TestNet t = dragonfly_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  auto plan = std::make_shared<FaultPlan>();
  // Fail node 0's last arc (a global link out of group 0) and a local one.
  plan->fail_link(2.0, 0, t.net.graph().arcs_of(0).back().to);
  plan->fail_link(3.0, 5, 6);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.fault_plan = plan;
  cfg.max_retries = 2;
  const AdaptiveResult oracle =
      adaptive_pipeline(t, dst, cfg, Engine::kReference, 0);
  expect_identical(adaptive_pipeline(t, dst, cfg, Engine::kArena, 0).sim,
                   oracle.sim);
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    expect_identical(adaptive_pipeline(t, dst, cfg, Engine::kSharded, k).sim,
                     oracle.sim);
  }
}

TEST(AdaptiveDeterminism, ShardedRunInsidePoolWorkerUnchanged) {
  const TestNet t = dragonfly_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  const AdaptiveResult direct =
      adaptive_pipeline(t, dst, cfg, Engine::kSharded, 4);
  AdaptiveResult from_worker;
  util::ThreadPool pool(2);
  pool.submit([&] {
    ASSERT_TRUE(util::ThreadPool::in_worker());
    from_worker = adaptive_pipeline(t, dst, cfg, Engine::kSharded, 4);
  });
  pool.wait();
  expect_identical(from_worker.sim, direct.sim);
  EXPECT_EQ(from_worker.packets_nonminimal, direct.packets_nonminimal);
}

TEST(AdaptiveDeterminism, SameSeedSameResult) {
  const TestNet t = q6_net();
  const auto dst = tornado_perm(t.net.num_nodes(), t.net.num_nodes());
  SimConfig cfg;
  const AdaptiveResult a =
      run_adaptive_batch(t.net, t.router, dst, UgalConfig{}, cfg, nullptr);
  const AdaptiveResult b =
      run_adaptive_batch(t.net, t.router, dst, UgalConfig{}, cfg, nullptr);
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.packets_nonminimal, b.packets_nonminimal);
}

}  // namespace
}  // namespace ipg::sim
