// End-to-end algorithm tests: FFT, bitonic sort, prefix scan, and DNS
// matrix multiplication executed through the Theorem 3.5 machinery on
// several super-IPG families, verified against references.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "algorithms/bitonic.hpp"
#include "algorithms/comm_tasks.hpp"
#include "algorithms/fft.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/scan.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/rng.hpp"

namespace ipg::algorithms {
namespace {

using namespace topology;

std::shared_ptr<const Nucleus> q(unsigned n) {
  return std::make_shared<HypercubeNucleus>(n);
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  return x;
}

void expect_close(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-9) << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-9) << i;
  }
}

class FftFamilies : public ::testing::TestWithParam<SuperFamily> {};

TEST_P(FftFamilies, MatchesReferenceDft) {
  const SuperIpg s(q(2), 3, GetParam());  // 64 points
  const auto x = random_signal(s.num_nodes(), 17);
  const auto run = fft_on_super_ipg(s, x);
  expect_close(run.output, dft_reference(x));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FftFamilies,
                         ::testing::Values(SuperFamily::kHSN,
                                           SuperFamily::kRingCN,
                                           SuperFamily::kCompleteCN,
                                           SuperFamily::kSFN));

TEST(Fft, WorksOnGhcNucleus) {
  // Radix-4 digits exercise the multi-stage group butterfly.
  const auto ghc = std::make_shared<GeneralizedHypercubeNucleus>(
      std::vector<std::size_t>{4, 2});
  const SuperIpg s = make_complete_cn(2, ghc);  // 64 points
  const auto x = random_signal(s.num_nodes(), 23);
  expect_close(fft_on_super_ipg(s, x).output, dft_reference(x));
}

TEST(Fft, WorksOnRecursiveRcc) {
  const SuperIpg s = make_rcc(2, q(2));  // 256 points
  const auto x = random_signal(s.num_nodes(), 29);
  expect_close(fft_on_super_ipg(s, x).output, dft_reference(x));
}

TEST(Fft, HpnBaselineMatchesAndCountsOffchip) {
  const Hpn h(q(2), 3);  // Q_6, 64 points
  const auto x = random_signal(h.num_nodes(), 31);
  // Chips = 16-node subcubes: 2 of 6 dimensions off-chip.
  const auto run = fft_on_hpn(h, Clustering::blocks(h.num_nodes(), 16), x);
  expect_close(run.output, dft_reference(x));
  EXPECT_EQ(run.counts.comm_steps, 6u);
  EXPECT_EQ(run.counts.offchip_steps, 2u);
}

TEST(Fft, SuperIpgOffchipStepsAreSuperSteps) {
  // §4.1: FFT needs only the super-generator steps off-chip — l(k+2)-2
  // total steps but just 2l-2 off-chip, vs log2 N - log2 M on a hypercube.
  const SuperIpg s = make_hsn(3, q(2));
  const auto run = fft_on_super_ipg(s, random_signal(s.num_nodes(), 37));
  EXPECT_EQ(run.counts.comm_steps, 3u * 4u - 2u);
  EXPECT_EQ(run.counts.offchip_steps, 2u * 3u - 2u);
  EXPECT_EQ(run.counts.onchip_steps, 6u);
}

class SortFamilies : public ::testing::TestWithParam<SuperFamily> {};

TEST_P(SortFamilies, SortsRandomKeys) {
  const SuperIpg s(q(2), 3, GetParam());
  util::Xoshiro256 rng(41);
  std::vector<double> keys(s.num_nodes());
  for (auto& k : keys) k = rng.uniform();
  const auto run = bitonic_sort_on_super_ipg(s, keys);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(run.output.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.output[i], expected[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SortFamilies,
                         ::testing::Values(SuperFamily::kHSN,
                                           SuperFamily::kCompleteCN,
                                           SuperFamily::kSFN));

TEST(Sort, SortsOnHpnBaseline) {
  const Hpn h(q(3), 2);  // Q_6
  util::Xoshiro256 rng(43);
  std::vector<double> keys(h.num_nodes());
  for (auto& k : keys) k = rng.uniform();
  const auto run =
      bitonic_sort_on_hpn(h, Clustering::blocks(h.num_nodes(), 8), keys);
  EXPECT_TRUE(std::is_sorted(run.output.begin(), run.output.end()));
}

TEST(Sort, AlreadySortedStaysSorted) {
  const SuperIpg s = make_hsn(2, q(2));
  std::vector<double> keys(s.num_nodes());
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<double>(i);
  const auto run = bitonic_sort_on_super_ipg(s, keys);
  EXPECT_EQ(run.output, keys);
}

TEST(Sort, HandlesDuplicateKeys) {
  const SuperIpg s = make_sfn(2, q(2));
  std::vector<double> keys(s.num_nodes(), 1.0);
  keys[3] = 0.0;
  keys[7] = 2.0;
  const auto run = bitonic_sort_on_super_ipg(s, keys);
  EXPECT_TRUE(std::is_sorted(run.output.begin(), run.output.end()));
}

TEST(Scan, InclusivePrefixSums) {
  const SuperIpg s = make_complete_cn(3, q(2));
  std::vector<double> x(s.num_nodes());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7) + 1;
  const auto run = prefix_sum_on_super_ipg(s, x);
  double acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    EXPECT_DOUBLE_EQ(run.prefix[i], acc) << i;
  }
}

TEST(Matmul, DnsMatchesReference) {
  const SuperIpg s = make_hsn(3, q(2));  // 64 = 4^3 nodes
  const std::size_t n = 4;
  util::Xoshiro256 rng(47);
  std::vector<double> a(n * n), b(n * n);
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  const auto run = dns_matmul_on_super_ipg(s, a, b);
  const auto ref = matmul_reference(n, a, b);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(run.c[i], ref[i], 1e-9) << i;
  }
  EXPECT_GT(run.counts.comm_steps, 0u);
}

TEST(Matmul, RejectsNonCubeNodeCounts) {
  const SuperIpg s = make_hsn(2, q(2));  // 16 nodes, not a cube
  EXPECT_THROW(
      dns_matmul_on_super_ipg(s, std::vector<double>(4), std::vector<double>(4)),
      std::invalid_argument);
}

TEST(CommTasks, Corollary310_311_EmulatedTimes) {
  // HSN(l, Q_n) with l = n: MNB ~ N/sqrt(log N) * const, TE ~ N sqrt(log N).
  const auto hsn = make_hsn(3, q(3));  // 512 nodes, emulates Q_9
  const double mnb_cube = mnb_steps_hypercube(9);
  const double te_cube = te_steps_hypercube(9);
  EXPECT_DOUBLE_EQ(mnb_steps_super_ipg(hsn), mnb_cube * 6);  // max(6, 4) = 6
  EXPECT_DOUBLE_EQ(te_steps_super_ipg(hsn), te_cube * 6);
}

TEST(CommTasks, TeOffchipThetaN2OnSuperIpgVsN2LogNOnHypercube) {
  // §3.3: TE needs Theta(N^2) intercluster transmissions on super-IPGs
  // (l = O(1)) vs Theta(N^2 log N) on hypercubes.
  const auto hsn = make_hsn(2, q(4));  // 256 nodes, M = 16
  const auto ipg_counts = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering());
  const Graph cube = hypercube_graph(8);
  const auto cube_counts =
      offchip_counts(cube, hypercube_subcube_clustering(8, 16));
  // Per-packet off-chip hops: < 1 for the HSN, = 2 for the hypercube.
  EXPECT_LT(ipg_counts.avg_intercluster_distance, 1.0);
  EXPECT_DOUBLE_EQ(cube_counts.avg_intercluster_distance, 2.0);
  EXPECT_LT(ipg_counts.te_offchip_transmissions,
            cube_counts.te_offchip_transmissions / 2);
}

}  // namespace
}  // namespace ipg::algorithms
