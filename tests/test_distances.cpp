// Tests for the distance engine — including the paper's intercluster
// distance checks: Corollary 4.2 (intercluster diameter l-1) and the §4.2
// remark that a 12-cube with 16-node chips has average intercluster
// distance exactly 4 (self pairs included).
#include "metrics/distances.hpp"

#include <gtest/gtest.h>

#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::metrics {
namespace {

using namespace topology;

TEST(Distances, BfsOnRing) {
  const Graph g = ring_graph(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
}

TEST(Distances, HypercubeAverageIncludesSelf) {
  // Average distance of Q_n over ordered pairs incl. self = n/2.
  for (unsigned n : {3u, 5u, 7u}) {
    const auto stats = distance_stats(hypercube_graph(n));
    EXPECT_DOUBLE_EQ(stats.average, n / 2.0) << n;
    EXPECT_EQ(stats.diameter, n);
  }
}

TEST(Distances, SampledSweepMatchesExactOnVertexTransitiveGraph) {
  const Graph g = hypercube_graph(7);
  const auto exact = distance_stats(g);
  const auto sampled = distance_stats(g, 8);
  EXPECT_EQ(sampled.sources_used, 8u);
  EXPECT_EQ(sampled.diameter, exact.diameter);
  EXPECT_DOUBLE_EQ(sampled.average, exact.average);
}

TEST(Distances, DisconnectedGraphThrows) {
  GraphBuilder b("two islands", 4, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(2, 3, 0);
  const Graph g = std::move(b).build();
  EXPECT_THROW(distance_stats(g), std::invalid_argument);
}

TEST(Intercluster, PaperExample_12CubeWith16NodeChips) {
  // §4.2: "the average intercluster distance of a 12-cube is exactly 4
  // when a cluster has 16 nodes" (self pairs included).
  const Graph g = hypercube_graph(12);
  const auto c = hypercube_subcube_clustering(12, 16);
  const auto stats = intercluster_stats(g, c, 4);  // vertex-transitive
  EXPECT_DOUBLE_EQ(stats.average, 4.0);
  EXPECT_EQ(stats.diameter, 8u);  // 12 - log2(16) off-chip dimensions
}

TEST(Intercluster, Corollary42_InterclusterDiameterIsLMinus1) {
  // HSN, CN (ring and complete), SFN: intercluster diameter l-1.
  const auto nuc = std::make_shared<HypercubeNucleus>(2);
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kRingCN,
                            SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    for (std::size_t l = 2; l <= 4; ++l) {
      const SuperIpg s(nuc, l, family);
      const auto stats =
          intercluster_stats(s.to_graph(), s.nucleus_clustering());
      EXPECT_EQ(stats.diameter, l - 1)
          << family_name(family) << " l=" << l;
    }
  }
}

TEST(Intercluster, Corollary42_RecursiveFamilies) {
  // RCC(2,Q2): N = 256, base nucleus M = 4, l_flat = log_M N = 4 -> 3.
  const SuperIpg rcc = make_rcc(2, std::make_shared<HypercubeNucleus>(2));
  const auto stats = intercluster_stats(rcc.to_graph(),
                                        Clustering::blocks(rcc.num_nodes(), 4));
  EXPECT_EQ(stats.diameter, 3u);
}

TEST(Intercluster, ZeroInsideCluster) {
  const SuperIpg s = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const Graph g = s.to_graph();
  const auto c = s.nucleus_clustering();
  const auto d = intercluster_distances(g, c, 0);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(d[v], 0u);  // same chip
}

TEST(Intercluster, LowerBoundsAreSane) {
  // HSN(3,Q4): N=4096, M=16, intercluster degree l-1=2 (times (M-1)/M).
  const double lb =
      intercluster_diameter_lower_bound(4096, 16, 2.0 * 15 / 16);
  EXPECT_GT(lb, 0.5);
  EXPECT_LE(lb, 2.0);  // actual intercluster diameter of HSN(3,Q4) is 2
  const double alb =
      avg_intercluster_distance_lower_bound(4096, 16, 2.0 * 15 / 16);
  EXPECT_GT(alb, 0.5);
  EXPECT_LE(alb, 2.0);
}

}  // namespace
}  // namespace ipg::metrics
