// Tests for the distance engine — including the paper's intercluster
// distance checks: Corollary 4.2 (intercluster diameter l-1) and the §4.2
// remark that a 12-cube with 16-node chips has average intercluster
// distance exactly 4 (self pairs included).
#include "metrics/distances.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::metrics {
namespace {

using namespace topology;

TEST(Distances, BfsOnRing) {
  const Graph g = ring_graph(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
}

TEST(Distances, HypercubeAverageIncludesSelf) {
  // Average distance of Q_n over ordered pairs incl. self = n/2.
  for (unsigned n : {3u, 5u, 7u}) {
    const auto stats = distance_stats(hypercube_graph(n));
    EXPECT_DOUBLE_EQ(stats.average, n / 2.0) << n;
    EXPECT_EQ(stats.diameter, n);
  }
}

TEST(Distances, SampledSweepMatchesExactOnVertexTransitiveGraph) {
  const Graph g = hypercube_graph(7);
  const auto exact = distance_stats(g);
  const auto sampled = distance_stats(g, 8);
  EXPECT_EQ(sampled.sources_used, 8u);
  EXPECT_EQ(sampled.diameter, exact.diameter);
  EXPECT_DOUBLE_EQ(sampled.average, exact.average);
}

TEST(Distances, SampledSweepUsesTheExactPairConvention) {
  // Audit pin: the sampled path divides by sources * n, the exact path by
  // n * n — both the ordered-pairs-with-self convention. On a vertex-
  // transitive graph every source row sums alike, so the two divisions
  // evaluate the same rational and the doubles are bit-identical for any
  // sample count, not just the one the sweep test above uses.
  const Graph g = hypercube_graph(6);
  const auto exact = distance_stats(g);
  for (const std::size_t sample : {1u, 2u, 3u, 5u, 16u, 63u, 64u, 1000u}) {
    const auto sampled = distance_stats(g, sample);
    EXPECT_EQ(sampled.sources_used, std::min<std::size_t>(sample, 64u));
    EXPECT_EQ(sampled.diameter, exact.diameter) << sample;
    EXPECT_DOUBLE_EQ(sampled.average, exact.average) << sample;
  }
}

TEST(Intercluster, SampledSweepMatchesExactOnSubcubeChips) {
  // Same audit for the intercluster sweep (previously uncovered): subcube
  // chips are cosets of a linear subspace, so XOR automorphisms act
  // transitively and sampling is exact here too.
  const Graph g = hypercube_graph(6);
  const auto chips = hypercube_subcube_clustering(6, 4);
  const auto exact = intercluster_stats(g, chips);
  for (const std::size_t sample : {1u, 2u, 5u, 32u, 64u, 100u}) {
    const auto sampled = intercluster_stats(g, chips, sample);
    EXPECT_EQ(sampled.diameter, exact.diameter) << sample;
    EXPECT_DOUBLE_EQ(sampled.average, exact.average) << sample;
  }
}

TEST(Intercluster, FullCoverSampleIsExactOnNonTransitiveGraphs) {
  // Super-IPGs are NOT vertex-transitive (a super-generator fixes nodes
  // whose groups hold equal contents, so degrees differ) and partial
  // sampling is only an estimate there — but any sample count covering
  // every node must reproduce the exact sweep.
  const auto q2 = std::make_shared<HypercubeNucleus>(2);
  const SuperIpg sfn = make_sfn(3, q2);
  const Graph g = sfn.to_graph();
  const auto chips = sfn.nucleus_clustering();
  const auto exact = distance_stats(g);
  const auto exact_ic = intercluster_stats(g, chips);
  for (const std::size_t sample : {g.num_nodes(), 10 * g.num_nodes()}) {
    const auto s_all = distance_stats(g, sample);
    EXPECT_EQ(s_all.sources_used, g.num_nodes());
    EXPECT_EQ(s_all.diameter, exact.diameter);
    EXPECT_DOUBLE_EQ(s_all.average, exact.average);
    const auto s_ic = intercluster_stats(g, chips, sample);
    EXPECT_EQ(s_ic.diameter, exact_ic.diameter);
    EXPECT_DOUBLE_EQ(s_ic.average, exact_ic.average);
  }
}

TEST(Distances, DisconnectedGraphThrows) {
  GraphBuilder b("two islands", 4, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(2, 3, 0);
  const Graph g = std::move(b).build();
  EXPECT_THROW(distance_stats(g), std::invalid_argument);
}

TEST(Intercluster, PaperExample_12CubeWith16NodeChips) {
  // §4.2: "the average intercluster distance of a 12-cube is exactly 4
  // when a cluster has 16 nodes" (self pairs included).
  const Graph g = hypercube_graph(12);
  const auto c = hypercube_subcube_clustering(12, 16);
  const auto stats = intercluster_stats(g, c, 4);  // vertex-transitive
  EXPECT_DOUBLE_EQ(stats.average, 4.0);
  EXPECT_EQ(stats.diameter, 8u);  // 12 - log2(16) off-chip dimensions
}

TEST(Intercluster, Corollary42_InterclusterDiameterIsLMinus1) {
  // HSN, CN (ring and complete), SFN: intercluster diameter l-1.
  const auto nuc = std::make_shared<HypercubeNucleus>(2);
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kRingCN,
                            SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    for (std::size_t l = 2; l <= 4; ++l) {
      const SuperIpg s(nuc, l, family);
      const auto stats =
          intercluster_stats(s.to_graph(), s.nucleus_clustering());
      EXPECT_EQ(stats.diameter, l - 1)
          << family_name(family) << " l=" << l;
    }
  }
}

TEST(Intercluster, Corollary42_RecursiveFamilies) {
  // RCC(2,Q2): N = 256, base nucleus M = 4, l_flat = log_M N = 4 -> 3.
  const SuperIpg rcc = make_rcc(2, std::make_shared<HypercubeNucleus>(2));
  const auto stats = intercluster_stats(rcc.to_graph(),
                                        Clustering::blocks(rcc.num_nodes(), 4));
  EXPECT_EQ(stats.diameter, 3u);
}

TEST(Intercluster, ZeroInsideCluster) {
  const SuperIpg s = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const Graph g = s.to_graph();
  const auto c = s.nucleus_clustering();
  const auto d = intercluster_distances(g, c, 0);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(d[v], 0u);  // same chip
}

TEST(Intercluster, LowerBoundsAreSane) {
  // HSN(3,Q4): N=4096, M=16, intercluster degree l-1=2 (times (M-1)/M).
  const double lb =
      intercluster_diameter_lower_bound(4096, 16, 2.0 * 15 / 16);
  EXPECT_GT(lb, 0.5);
  EXPECT_LE(lb, 2.0);  // actual intercluster diameter of HSN(3,Q4) is 2
  const double alb =
      avg_intercluster_distance_lower_bound(4096, 16, 2.0 * 15 / 16);
  EXPECT_GT(alb, 0.5);
  EXPECT_LE(alb, 2.0);
}

}  // namespace
}  // namespace ipg::metrics
