// Tests for the util layer: bit helpers, RNG determinism, thread pool, and
// table rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ipg::util {
namespace {

TEST(Bits, PowersOfTwo) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(255), 7u);
  EXPECT_EQ(ceil_log2(255), 8u);
  EXPECT_EQ(ceil_log2(256), 8u);
  EXPECT_EQ(ceil_log2(1), 0u);
}

TEST(Bits, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(bit_reverse(12345, 14), 14), 12345u);
}

TEST(Bits, IpowAndRadixDigits) {
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(radix_digit(81, 3, 4), 1u);
  EXPECT_EQ(radix_digit(7, 4, 0), 3u);
  EXPECT_EQ(with_radix_digit(7, 4, 0, 0), 4u);
  EXPECT_EQ(with_radix_digit(0, 5, 2, 3), 75u);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(42);
  (void)c();
  EXPECT_NE(a2(), c());
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&hits](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(5, 5, [](std::size_t) { FAIL(); }, pool);
}

TEST(Check, ThrowsWithContext) {
  try {
    IPG_CHECK(1 == 2, "math is broken");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

TEST(Table, RendersAlignedAscii) {
  Table t("title");
  t.header({"net", "N"});
  t.add("HSN(3,Q4)", 4096);
  t.add("Q12", 4096);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("HSN(3,Q4)"), std::string::npos);
  EXPECT_NE(s.find("| net"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t;
  t.header({"a", "b"});
  t.add(1, 2.5);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, RatioFormatting) {
  EXPECT_EQ(format_ratio(2.0), "2.00x");
  EXPECT_EQ(format_ratio(0.333), "0.33x");
}

}  // namespace
}  // namespace ipg::util
