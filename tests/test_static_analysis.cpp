// Tests for the static load analyzer: exact probabilities on symmetric
// topologies, bottleneck identification under unit chip capacity, and
// cross-validation against the event-driven simulator.
#include "sim/static_analysis.hpp"

#include <gtest/gtest.h>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

TEST(StaticAnalysis, HypercubeLinkProbabilityMatchesTheory) {
  // E-cube on Q_n under uniform traffic: every directed link is used by
  // exactly N/4 * N/(N-1)-ish pairs: p_L = (N/4) / (N(N-1)/ ... compute:
  // pairs crossing a given dim-d link (v, v^2^d): src/dst agreeing with v
  // below d fixed... By symmetry all n*N directed links carry equal load:
  // total hops = N(N-1) * n/2 * N/(N-1)/N ... simpler: expected hops per
  // packet = n/2 * N/(N-1); p_L = hops_total / (pairs * links).
  const unsigned n = 5;
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(n), Clustering::blocks(32, 4), 1.0);
  const auto a = analyze_uniform_load(net, hypercube_router(n));
  const double pairs = 32.0 * 31.0;
  // Sum of Hamming distances over ordered pairs: N * n * 2^(n-1).
  const double total_hops = 32.0 * 5.0 * 16.0;
  const double p_expected = total_hops / pairs / static_cast<double>(net.num_links());
  EXPECT_NEAR(a.bottleneck_probability, p_expected, 1e-12);
}

TEST(StaticAnalysis, BottleneckIsOffchipUnderUnitChip) {
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                          hsn->nucleus_clustering(), 1.0);
  const auto a = analyze_uniform_load(net, super_ipg_router(*hsn));
  EXPECT_TRUE(a.bottleneck_offchip);
  EXPECT_GT(a.predicted_saturation_throughput, 0.0);
}

TEST(StaticAnalysis, PredictionOrdersNetworksLikeTheSimulator) {
  // The §4 claim chain: static analysis predicts HSN > torus > hypercube
  // saturation under unit chip capacity, and the simulator agrees.
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto hnet = mcmp::make_unit_chip_network(hsn->to_graph(),
                                           hsn->nucleus_clustering(), 1.0);
  auto qnet = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);

  const auto ha = analyze_uniform_load(hnet, super_ipg_router(*hsn));
  const auto qa = analyze_uniform_load(qnet, hypercube_router(6));
  EXPECT_GT(ha.predicted_saturation_throughput,
            qa.predicted_saturation_throughput);

  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(13);
  const auto perm = random_permutation(64, rng);
  const auto hs = run_batch(hnet, super_ipg_router(*hsn), perm, cfg);
  const auto qs = run_batch(qnet, hypercube_router(6), perm, cfg);
  EXPECT_GT(hs.throughput_flits_per_node_cycle, qs.throughput_flits_per_node_cycle);
}

TEST(StaticAnalysis, OverloadedOpenLoopSustainsPredictedSaturation) {
  // Drive the network well past the predicted saturation point with
  // uniform traffic; the sustained delivered rate should sit near the
  // static bound (it cannot exceed it, and unfairness/queueing keeps it
  // from falling far below).
  auto net = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  const auto a = analyze_uniform_load(net, hypercube_router(6));
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  const double inject_rate =
      std::min(0.9, 2.0 * a.predicted_saturation_throughput /
                        cfg.packet_length_flits);
  const auto r = run_open(net, hypercube_router(6), uniform_traffic(64),
                          inject_rate, 3000, cfg);
  EXPECT_LT(r.throughput_flits_per_node_cycle,
            a.predicted_saturation_throughput * 1.2);
  EXPECT_GT(r.throughput_flits_per_node_cycle,
            a.predicted_saturation_throughput * 0.4);
}

TEST(StaticAnalysis, SamplingAgreesWithExactOnSmallNet) {
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(5), Clustering::blocks(32, 4), 1.0);
  const auto exact = analyze_uniform_load(net, hypercube_router(5), 512);
  const auto sampled =
      analyze_uniform_load(net, hypercube_router(5), /*exact_limit=*/2,
                           /*samples=*/200'000);
  EXPECT_NEAR(sampled.predicted_saturation_throughput,
              exact.predicted_saturation_throughput,
              exact.predicted_saturation_throughput * 0.1);
}

}  // namespace
}  // namespace ipg::sim
