// Checked numeric parsing shared by the CLI tools (util/cli.hpp): the
// helpers must parse the whole string or fail — no silent truncation of
// "4x" to 4, no reinterpreting "-1" as a huge unsigned — and the
// flag-aware wrapper must name the offending flag in its error message.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace ipg::util {
namespace {

TEST(CliParse, UnsignedAcceptsPlainDecimals) {
  EXPECT_EQ(parse_unsigned<std::size_t>("0"), std::size_t{0});
  EXPECT_EQ(parse_unsigned<std::size_t>("42"), std::size_t{42});
  EXPECT_EQ(parse_unsigned<unsigned>("4294967295"),
            std::numeric_limits<unsigned>::max());
}

TEST(CliParse, UnsignedRejectsPartialAndMalformedInput) {
  EXPECT_FALSE(parse_unsigned<std::size_t>("").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("4x").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("x4").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("-1").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("+1").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>(" 1").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("1 ").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("1.5").has_value());
  EXPECT_FALSE(parse_unsigned<std::size_t>("0x10").has_value());
}

TEST(CliParse, UnsignedRejectsOverflow) {
  EXPECT_FALSE(parse_unsigned<std::uint8_t>("256").has_value());
  EXPECT_EQ(parse_unsigned<std::uint8_t>("255"), std::uint8_t{255});
  EXPECT_FALSE(
      parse_unsigned<std::uint64_t>("99999999999999999999999").has_value());
}

TEST(CliParse, DoubleParsesWholeStringOnly) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("-2"), -2.0);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("nope").has_value());
}

TEST(CliParse, CheckedFlagValueNamesTheFlagOnMissingValue) {
  std::ostringstream err;
  const auto v = checked_flag_value<std::size_t>("--seeds", nullptr, err);
  EXPECT_FALSE(v.has_value());
  EXPECT_NE(err.str().find("--seeds"), std::string::npos);
  EXPECT_NE(err.str().find("needs a value"), std::string::npos);
}

TEST(CliParse, CheckedFlagValueNamesTheFlagAndTextOnBadParse) {
  std::ostringstream err;
  const auto v = checked_flag_value<std::size_t>("--trials", "12q", err);
  EXPECT_FALSE(v.has_value());
  EXPECT_NE(err.str().find("--trials"), std::string::npos);
  EXPECT_NE(err.str().find("'12q'"), std::string::npos);
}

TEST(CliParse, CheckedFlagValuePassesGoodInputSilently) {
  std::ostringstream err;
  const auto v = checked_flag_value<unsigned>("--levels", "3", err);
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(err.str().empty());
}

}  // namespace
}  // namespace ipg::util
