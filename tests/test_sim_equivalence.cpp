// Engine equivalence: the arena/heap data plane (Engine::kArena) must
// reproduce the reference engine's SimResult bit-for-bit on fixed seeds.
// Both engines order events canonically by (time, push sequence), so every
// field — including the FP-summation-order-sensitive averages — is a pure
// function of the inputs; any drift here means the fast path changed the
// simulation, not just its speed. Percentile edge cases for summarize()
// ride along at the bottom.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

/// Latency fields compare bitwise: zero-delivery runs report NaN (which
/// operator== would fail on itself) and the contract is bit-identity.
void expect_latency_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_latency_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_latency_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_latency_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_latency_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle, b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

void expect_conserved(const SimResult& r) {
  EXPECT_EQ(r.packets_injected,
            r.packets_delivered + r.packets_dropped + r.packets_in_flight);
}

struct TestNet {
  SimNetwork net;
  Router router;
};

TestNet hsn_q3() {
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  return {mcmp::make_unit_chip_network(hsn->to_graph(),
                                       hsn->nucleus_clustering(), 1.0),
          [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }};
}

TestNet kary42() {
  return {mcmp::make_unit_chip_network(kary_ncube_graph(4, 2),
                                       kary2_block_clustering(4, 2), 1.0),
          kary_router(4, 2)};
}

/// Non-dyadic bandwidth: transfer times don't land on a binary grid, which
/// forces the arena engine off the tick calendar and onto the radix-banded
/// EventQueue — the other queue implementation must match too.
TestNet kary42_nondyadic() {
  return {SimNetwork::with_uniform_bandwidth(kary_ncube_graph(4, 2),
                                             kary2_block_clustering(4, 2), 0.3),
          kary_router(4, 2)};
}

class EngineEquivalence : public ::testing::TestWithParam<int> {
 protected:
  TestNet make_net() const {
    switch (GetParam()) {
      case 0: return hsn_q3();
      case 1: return kary42();
      default: return kary42_nondyadic();
    }
  }
};

TEST_P(EngineEquivalence, Batch) {
  const TestNet t = make_net();
  for (const Switching mode :
       {Switching::kStoreAndForward, Switching::kVirtualCutThrough}) {
    SimConfig cfg;
    cfg.packet_length_flits = 8;
    cfg.switching = mode;
    util::Xoshiro256 rng(42);
    const auto perm = random_permutation(t.net.num_nodes(), rng);
    cfg.engine = Engine::kArena;
    const auto fast = run_batch(t.net, t.router, perm, cfg);
    cfg.engine = Engine::kReference;
    const auto oracle = run_batch(t.net, t.router, perm, cfg);
    expect_identical(fast, oracle);
  }
}

TEST_P(EngineEquivalence, Open) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kArena;
  const auto fast = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(fast.packets_delivered, 0u);
  expect_identical(fast, oracle);
}

TEST_P(EngineEquivalence, TotalExchange) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.engine = Engine::kArena;
  const auto fast = run_total_exchange(t.net, t.router, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_total_exchange(t.net, t.router, cfg);
  const std::size_t n = t.net.num_nodes();
  EXPECT_EQ(fast.packets_delivered, n * (n - 1));
  expect_identical(fast, oracle);
}

TEST_P(EngineEquivalence, BatchBoundedBuffers) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  // Backpressure path. The HSN's hierarchical routes need more slack than
  // the dimension-ordered tori to stay deadlock-free at this load.
  cfg.node_buffer_packets = GetParam() == 0 ? 6 : 2;
  util::Xoshiro256 rng(9);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  cfg.engine = Engine::kArena;
  const auto fast = run_batch(t.net, t.router, perm, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_batch(t.net, t.router, perm, cfg);
  expect_identical(fast, oracle);
}

TEST_P(EngineEquivalence, EmptyFaultPlanBitIdentical) {
  // PR-1 contract carried forward: an absent plan and an empty plan both
  // take the healthy fast path, so every SimResult field is bit-identical.
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  cfg.max_retries = 3;  // retry knobs are inert without faults
  const auto pattern = uniform_traffic(t.net.num_nodes());
  const auto healthy = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  cfg.fault_plan = std::make_shared<const FaultPlan>();
  const auto with_empty_plan = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  expect_identical(healthy, with_empty_plan);
  EXPECT_EQ(with_empty_plan.packets_dropped, 0u);
  EXPECT_EQ(with_empty_plan.delivered_fraction, 1.0);
  expect_conserved(with_empty_plan);
}

TEST_P(EngineEquivalence, FaultPlanBitIdenticalAcrossEngines) {
  // Degraded mode: links die mid-run, packets detour and retry. The two
  // engines must still agree on every field, and packet conservation
  // (injected = delivered + dropped + in-flight) must hold.
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;  // bound the run even if a fault strands packets
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan::random_link_faults(t.net.graph(), nullptr, 3, 40.0, 30.0, 11));
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kArena;
  const auto fast = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(fast.packets_delivered, 0u);
  expect_identical(fast, oracle);
  expect_conserved(fast);
  expect_conserved(oracle);
}

INSTANTIATE_TEST_SUITE_P(Networks, EngineEquivalence, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return "HsnQ3";
                             case 1: return "Kary4Cube2";
                             default: return "Kary4Cube2NonDyadic";
                           }
                         });

// --- summarize() percentile edge cases (nearest-rank) ---

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (const double pct : {1.0, 50.0, 99.0, 100.0}) {
    std::vector<double> v{5.0};
    EXPECT_EQ(percentile_nearest_rank(v, pct), 5.0);
  }
}

TEST(Percentile, TwoSamples) {
  std::vector<double> v{2.0, 1.0};
  EXPECT_EQ(percentile_nearest_rank(v, 50), 1.0);  // rank ceil(1) = 1st
  v = {2.0, 1.0};
  EXPECT_EQ(percentile_nearest_rank(v, 99), 2.0);  // rank ceil(1.98) = 2nd
  v = {2.0, 1.0};
  EXPECT_EQ(percentile_nearest_rank(v, 1), 1.0);
}

TEST(Percentile, RepeatedValuesReturnTheValue) {
  // Ties must never interpolate: whatever the rank, the answer is one of
  // the two distinct values actually present.
  std::vector<double> base{3.0, 3.0, 3.0, 3.0, 7.0, 7.0, 3.0, 3.0};
  std::vector<double> v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 50), 3.0);  // rank 4 of 8
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 75), 3.0);  // rank 6 = last 3.0
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 90), 7.0);  // rank ceil(7.2) = 8
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 100), 7.0);
  std::vector<double> all_same(16, 4.5);
  EXPECT_EQ(percentile_nearest_rank(all_same, 1), 4.5);
  EXPECT_EQ(percentile_nearest_rank(all_same, 99), 4.5);
}

TEST(Percentile, HundredSamplesMatchRanksExactly) {
  std::vector<double> base(100);
  for (std::size_t i = 0; i < 100; ++i) base[i] = static_cast<double>(100 - i);
  std::vector<double> v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 50), 50.0);
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 99), 99.0);
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 100), 100.0);
  v = base;
  EXPECT_EQ(percentile_nearest_rank(v, 1), 1.0);
}

TEST(Percentile, SingleDeliveredPacketEndToEnd) {
  // One packet: p50 = p99 = max = avg.
  GraphBuilder b("pair", 2, 2);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 0, 1);
  SimNetwork net(std::move(b).build(), Clustering::blocks(2, 1), 2.0, 1000.0);
  const Router route = [](NodeId s, NodeId d) {
    return std::vector<std::size_t>(s == d ? 0 : 1, s < d ? 0 : 1);
  };
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  const std::vector<NodeId> dst{1, 1};  // only node 0 sends
  const auto r = run_batch(net, route, dst, cfg);
  ASSERT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.p50_latency_cycles, r.avg_latency_cycles);
  EXPECT_EQ(r.p99_latency_cycles, r.avg_latency_cycles);
  EXPECT_EQ(r.max_latency_cycles, r.avg_latency_cycles);
}

}  // namespace
}  // namespace ipg::sim
