// Tests for the unit chip capacity model: the §4.2 closed forms, the
// paper's worked numeric examples, and measured-vs-formula agreement.
#include "mcmp/capacity.hpp"

#include <gtest/gtest.h>

#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::mcmp {
namespace {

using namespace topology;

TEST(Capacity, PaperExample_12CubeBisectionBandwidth256w) {
  // §4.2: a 12-cube with 16-node chips has bisection bandwidth 256 w.
  EXPECT_DOUBLE_EQ(hypercube_bisection_bandwidth(1.0, 4096, 16), 256.0);
  // And a 10-cube built from the SAME chips (256 chips, budget 16w each):
  // its per-node w is 16w/4 = 4w, and the bisection bandwidth is again
  // 256 w — "the bisection bandwidths of different-size hypercubes are the
  // same when the same number of chips are used".
  EXPECT_DOUBLE_EQ(hypercube_bisection_bandwidth(4.0, 1024, 4), 256.0);
}

TEST(Capacity, PaperExample_Hsn3Q4BisectionBandwidth) {
  // §4.2: HSN(3,Q4) with 16-node chips has bisection bandwidth
  // 8192 w / 15 > 512 w — more than double the hypercube's.
  const double bb = hsn_bisection_bandwidth(1.0, 4096, 16, 3);
  EXPECT_DOUBLE_EQ(bb, 8192.0 / 15.0);
  EXPECT_GT(bb, 512.0);
  EXPECT_GT(bb / hypercube_bisection_bandwidth(1.0, 4096, 16), 2.0);
}

TEST(Capacity, PaperExample_OffChipLinkWidthRatio) {
  // §4: HSN(3,Q4)'s off-chip links are 8w/15 wide vs w/8 for the 12-cube.
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(4));
  const auto hs = chip_link_stats(hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
  EXPECT_EQ(hs.offchip_links_per_chip, 30u);
  EXPECT_DOUBLE_EQ(hs.offchip_link_bandwidth, 16.0 / 30.0);

  const Graph cube = hypercube_graph(12);
  const auto cs =
      chip_link_stats(cube, hypercube_subcube_clustering(12, 16), 1.0);
  EXPECT_EQ(cs.offchip_links_per_chip, 128u);
  EXPECT_DOUBLE_EQ(cs.offchip_link_bandwidth, 1.0 / 8.0);
  EXPECT_NEAR(hs.offchip_link_bandwidth / cs.offchip_link_bandwidth, 4.27, 0.01);
}

TEST(Capacity, MeasuredHsnBisectionMatchesCorollary48) {
  // Small instances where the heuristic reliably finds the optimum.
  struct Case {
    std::size_t l;
    unsigned k;
  };
  for (const auto [l, k] : {Case{2, 2}, Case{2, 3}, Case{3, 2}}) {
    const SuperIpg hsn = make_hsn(l, std::make_shared<HypercubeNucleus>(k));
    const double measured = measured_bisection_bandwidth(
        hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
    const double formula =
        hsn_bisection_bandwidth(1.0, hsn.num_nodes(), hsn.nucleus_size(), l);
    EXPECT_NEAR(measured, formula, formula * 0.05) << hsn.name();
  }
}

TEST(Capacity, MeasuredHypercubeBisectionMatchesCorollary49) {
  for (const unsigned n : {4u, 6u}) {
    const std::size_t chip = n == 4 ? 4 : 16;
    const Graph g = hypercube_graph(n);
    const auto c = hypercube_subcube_clustering(n, chip);
    const double measured = measured_bisection_bandwidth(g, c, 1.0);
    const double formula =
        hypercube_bisection_bandwidth(1.0, g.num_nodes(), chip);
    EXPECT_NEAR(measured, formula, formula * 0.05) << n;
  }
}

TEST(Capacity, MeasuredKary2BisectionMatchesCorollary410) {
  // 8-ary 2-cube with 2x2 chips: B_B = w sqrt(64*4)/2 = 8 w.
  const Graph g = kary_ncube_graph(8, 2);
  const auto c = kary2_block_clustering(8, 2);
  const double formula = kary2_bisection_bandwidth(1.0, 64, 4);
  EXPECT_DOUBLE_EQ(formula, 8.0);
  const double measured = measured_bisection_bandwidth(g, c, 1.0, 24);
  EXPECT_NEAR(measured, formula, formula * 0.1);
}

TEST(Capacity, Theorem47LowerBoundHolds) {
  // B_B >= wN/(4a) for measured a; check on HSN(2,Q3) and the hypercube.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const Graph g = hsn.to_graph();
  const auto chips = hsn.nucleus_clustering();
  const auto stats = metrics::intercluster_stats(g, chips);
  const double lb = bb_lower_bound(1.0, g.num_nodes(), stats.average);
  const double measured = measured_bisection_bandwidth(g, chips, 1.0);
  EXPECT_GE(measured + 1e-9, lb);
}

TEST(Capacity, Corollary411_SmallScaleAdvantageAtLeast33Percent) {
  // "As long as a chip has at least 4 nodes, and there are 4, 16, 64, or
  // more chips, the bisection bandwidths of these super-IPGs will be
  // higher than that of a hypercube by at least 33%."
  struct Case {
    std::size_t l;
    unsigned k;  // nucleus Q_k, chip size 2^k
  };
  for (const auto [l, k] : {Case{2, 2}, Case{3, 2}, Case{2, 4}}) {
    const std::size_t n_nodes = std::size_t{1} << (l * k);
    const double hsn = hsn_bisection_bandwidth(1.0, n_nodes, std::size_t{1} << k, l);
    const double cube =
        hypercube_bisection_bandwidth(1.0, n_nodes, std::size_t{1} << k);
    EXPECT_GE(hsn / cube, 4.0 / 3.0 - 1e-9)
        << "l=" << l << " k=" << k << " ratio " << hsn / cube;
  }
}

TEST(Capacity, UnitChipNetworkProvisionsLinks) {
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  const auto net = make_unit_chip_network(hsn.to_graph(),
                                          hsn.nucleus_clustering(), 1.0);
  // Off-chip links: 4 nodes/chip * w=1 budget over 3 links = 4/3 each.
  double min_off = 1e9, max_off = 0;
  for (sim::LinkId l = 0; l < net.num_links(); ++l) {
    if (net.is_offchip(l)) {
      min_off = std::min(min_off, net.bandwidth(l));
      max_off = std::max(max_off, net.bandwidth(l));
    } else {
      EXPECT_GT(net.bandwidth(l), 4.0);  // on-chip much faster
    }
  }
  EXPECT_DOUBLE_EQ(min_off, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(max_off, 4.0 / 3.0);
}

}  // namespace
}  // namespace ipg::mcmp
