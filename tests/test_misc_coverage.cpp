// Miscellaneous coverage: wormhole credit exactness on fast links, MNB
// queue statistics, layout determinism, DOT with hierarchies, cost metrics
// on tori, HPN apply identities, and large-graph materialization smoke.
#include <gtest/gtest.h>

#include "metrics/costs.hpp"
#include "metrics/layout.hpp"
#include "mcmp/hierarchy.hpp"
#include "sim/mnb.hpp"
#include "sim/static_analysis.hpp"
#include "sim/wormhole.hpp"
#include "topology/dot.hpp"
#include "topology/hpn.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include <sstream>

namespace ipg {
namespace {

using namespace topology;

TEST(MiscWormhole, FastLinksMoveMultipleFlitsPerCycle) {
  // A bandwidth-4 single link moves a 16-flit worm in ~4 cycles.
  GraphBuilder b("pair", 2, 2);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 0, 1);
  auto net = sim::SimNetwork::with_uniform_bandwidth(
      std::move(b).build(), Clustering::blocks(2, 1), 4.0);
  sim::WormholeConfig cfg;
  cfg.packet_length_flits = 16;
  std::vector<NodeId> dst{1, 1};
  const auto r = sim::run_wormhole_batch(
      net, [](NodeId, NodeId) { return std::vector<std::size_t>{0}; }, dst, cfg);
  EXPECT_LE(r.makespan_cycles, 5.0);
  EXPECT_GE(r.makespan_cycles, 4.0);
}

TEST(MiscMnb, QueueStatisticsAreReported) {
  auto net = sim::SimNetwork::with_uniform_bandwidth(
      hypercube_graph(4), Clustering::blocks(16, 4), 1.0);
  const auto r = sim::run_mnb(net);
  EXPECT_GT(r.avg_link_queue_max, 0.0);
  EXPECT_EQ(r.deliveries, 16u * 15u);
}

TEST(MiscLayout, DeterministicForSeed) {
  const Graph g = hypercube_graph(5);
  const auto a = metrics::recursive_bisection_layout(g, 3, 42);
  const auto b = metrics::recursive_bisection_layout(g, 3, 42);
  EXPECT_EQ(a.position, b.position);
  EXPECT_DOUBLE_EQ(a.total_wire_length, b.total_wire_length);
}

TEST(MiscDot, WorksWithHierarchyChipLevel) {
  const SuperIpg s = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  const mcmp::PackagingHierarchy h(16, {4});
  const Graph g = s.to_graph();
  const Clustering chips = h.chips();
  const std::string dot = to_dot(g, &chips);
  EXPECT_NE(dot.find("cluster_3"), std::string::npos);
}

TEST(MiscCosts, TorusCostsBetweenSuperIpgAndHypercube) {
  const auto tc = metrics::compute_costs(kary_ncube_graph(16, 2),
                                         kary2_block_clustering(16, 4), 16);
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(4));
  const auto hc = metrics::compute_costs(hsn.to_graph(), hsn.nucleus_clustering(), 16);
  const auto qc = metrics::compute_costs(hypercube_graph(8),
                                         hypercube_subcube_clustering(8, 16), 16);
  EXPECT_LT(hc.ii_cost, tc.ii_cost);
  EXPECT_LT(tc.id_cost, qc.id_cost);  // torus beats the hypercube on ID-cost
}

TEST(MiscHpn, ApplyIsInvolutiveForHypercubeFactors) {
  const Hpn h(std::make_shared<HypercubeNucleus>(3), 3);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 64; ++i) {
    const auto v = static_cast<NodeId>(rng.below(h.num_nodes()));
    const std::size_t j = rng.below(h.num_dims());
    EXPECT_EQ(h.apply(h.apply(v, j), j), v);
  }
}

TEST(MiscScale, MaterializeHsn3Q5Quickly) {
  // 32768 nodes x 8 generators: the parallel materializer handles it.
  const SuperIpg s = make_hsn(3, std::make_shared<HypercubeNucleus>(5));
  const Graph g = s.to_graph();
  EXPECT_EQ(g.num_nodes(), 32768u);
  EXPECT_GT(g.num_arcs(), 200'000u);
  EXPECT_TRUE(g.is_undirected());
}

TEST(MiscStaticAnalysis, BottleneckLinkIdIsValid) {
  auto net = sim::SimNetwork::with_uniform_bandwidth(
      hypercube_graph(5), Clustering::blocks(32, 4), 1.0);
  const auto a = sim::analyze_uniform_load(net, sim::hypercube_router(5));
  EXPECT_LT(a.bottleneck, net.num_links());
  EXPECT_GT(a.avg_offchip_probability, 0.0);
}

TEST(MiscTable, HeaderlessAndRaggedRowsRender) {
  util::Table t;
  t.row({"a", "b", "c"});
  t.row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace ipg
