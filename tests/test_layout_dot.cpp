// Tests for the VLSI layout estimator (refs [29]/[33]: super-IPGs lay out
// smaller than hypercubes), the DOT exporter, the generic-IPG nucleus
// adapter, the extra named graphs (de Bruijn, Petersen), and the latency
// percentile statistics.
#include <gtest/gtest.h>

#include "metrics/bisection.hpp"
#include "metrics/distances.hpp"
#include "metrics/layout.hpp"
#include "sim/simulator.hpp"
#include "topology/dot.hpp"
#include "topology/generic_nucleus.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg {
namespace {

using namespace topology;
using namespace metrics;

TEST(Layout, PlacesEveryNodeOnDistinctCells) {
  const Graph g = hypercube_graph(6);
  const auto l = recursive_bisection_layout(g);
  EXPECT_EQ(l.width * l.height, 64u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& p : l.position) {
    EXPECT_LT(p.first, l.width);
    EXPECT_LT(p.second, l.height);
    EXPECT_TRUE(seen.insert(p).second) << "cell reused";
  }
}

TEST(Layout, RingLaysOutWithShortWires) {
  // A ring is nearly planar: recursive bisection keeps wires short.
  const auto l = recursive_bisection_layout(ring_graph(16));
  EXPECT_LT(l.avg_wire_length, 3.0);
}

TEST(Layout, SuperIpgWiresShorterThanHypercube) {
  // The [29]/[33] claim, in wire-length form: HSN(2,Q3) (degree 4) lays
  // out with less total wire than the same-size Q6 (degree 6).
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const auto lh = recursive_bisection_layout(hsn.to_graph(), 6, 1);
  const auto lq = recursive_bisection_layout(hypercube_graph(6), 6, 1);
  EXPECT_LT(lh.total_wire_length, lq.total_wire_length);
}

TEST(Layout, ThompsonBoundOrdersWithBisection) {
  // Q6 bisection width 32 vs HSN(2,Q3) width ~16 (one swap link between
  // every pair of chips across the cut): the hypercube needs measurably
  // more layout area by Thompson's bound — the [29]/[33] story.
  const auto qb = bisection_width_heuristic(hypercube_graph(6), 8);
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const auto hb = bisection_width_heuristic(hsn.to_graph(), 16);
  EXPECT_DOUBLE_EQ(qb.cut, 32.0);
  EXPECT_LT(hb.cut, qb.cut);
  EXPECT_GT(thompson_area_lower_bound(qb.cut),
            thompson_area_lower_bound(hb.cut) * 2);
}

TEST(Layout, RejectsNonPowerOfTwo) {
  EXPECT_THROW(recursive_bisection_layout(petersen_graph()),
               std::invalid_argument);
}

TEST(Dot, ContainsClustersAndBoldOffchipEdges) {
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  const Graph g = hsn.to_graph();
  const auto chips = hsn.nucleus_clustering();
  const std::string dot = to_dot(g, &chips);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_3"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  EXPECT_NE(dot.find("graph \"HSN(2,Q2)\""), std::string::npos);
}

TEST(Dot, DirectedArcsGetArrows) {
  const SuperIpg dcn = make_directed_cn(3, std::make_shared<HypercubeNucleus>(2));
  const std::string dot = to_dot(dcn.to_graph());
  EXPECT_NE(dot.find("dir=forward"), std::string::npos);
}

TEST(GenericNucleus, Section2ExampleAsNucleus) {
  // HSN(2, 36-node example): 1296 nodes, routing and metrics work.
  const auto nuc = section2_example_nucleus();
  EXPECT_EQ(nuc->num_nodes(), 36u);
  const SuperIpg s = make_hsn(2, nuc);
  EXPECT_EQ(s.num_nodes(), 1296u);
  const auto stats = intercluster_stats(s.to_graph(), s.nucleus_clustering());
  EXPECT_EQ(stats.diameter, 1u);  // l - 1
  for (NodeId from = 0; from < s.num_nodes(); from += 113) {
    for (NodeId to = 0; to < s.num_nodes(); to += 97) {
      NodeId v = from;
      for (const auto g : s.route(from, to)) v = s.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

TEST(GenericNucleus, InverseGeneratorsResolved) {
  const auto nuc = section2_example_nucleus();
  for (std::size_t g = 0; g < nuc->num_generators(); ++g) {
    for (NodeId v = 0; v < nuc->num_nodes(); ++v) {
      EXPECT_EQ(nuc->apply(nuc->apply(v, g), nuc->inverse_generator(g)), v);
    }
  }
}

TEST(GenericNucleus, RejectsNonClosedGeneratorSets) {
  // A single 4-cycle rotation has no inverse in the set.
  const auto ipg = core::build_ipg(core::Label::from_string("1234"),
                                   {core::Permutation::rotation(4, 1)});
  EXPECT_THROW(GenericIpgNucleus(core::Ipg(ipg), "rot4"), std::invalid_argument);
}

TEST(Named, DeBruijnBasics) {
  const Graph g = de_bruijn_graph(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_TRUE(g.is_undirected());
  // Diameter of DB(n) is n.
  EXPECT_EQ(distance_stats(g).diameter, 4u);
}

TEST(Named, PetersenBasics) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 3u);
  const auto stats = distance_stats(g);
  EXPECT_EQ(stats.diameter, 2u);
  EXPECT_TRUE(g.is_undirected());
}

TEST(SimStats, LatencyPercentilesOrdered) {
  Graph g = hypercube_graph(6);
  sim::SimNetwork net = sim::SimNetwork::with_uniform_bandwidth(
      std::move(g), Clustering::blocks(64, 8), 1.0);
  util::Xoshiro256 rng(7);
  const auto perm = sim::random_permutation(64, rng);
  sim::SimConfig cfg;
  const auto r = sim::run_batch(net, sim::hypercube_router(6), perm, cfg);
  EXPECT_LE(r.p50_latency_cycles, r.avg_latency_cycles * 1.5);
  EXPECT_LE(r.p50_latency_cycles, r.p99_latency_cycles);
  EXPECT_LE(r.p99_latency_cycles, r.max_latency_cycles);
  EXPECT_GT(r.p50_latency_cycles, 0.0);
}

}  // namespace
}  // namespace ipg
