// Sweep-driver determinism: each SweepJob is a closed function of its own
// config, so outcomes must be identical for any thread count and identical
// to running each point directly. This is what makes the parallel driver a
// pure wall-clock optimization.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "mcmp/capacity.hpp"
#include "topology/named.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

SimNetwork test_net() {
  return mcmp::make_unit_chip_network(kary_ncube_graph(4, 2),
                                      kary2_block_clustering(4, 2), 1.0);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.p50_latency_cycles, b.p50_latency_cycles);
  EXPECT_EQ(a.p99_latency_cycles, b.p99_latency_cycles);
  EXPECT_EQ(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle, b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
}

TEST(SweepDriver, RateSweepIdenticalAcrossThreadCounts) {
  const SimNetwork net = test_net();
  const Router router = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  std::vector<double> rates;
  for (int i = 1; i <= 16; ++i) rates.push_back(0.01 * i);
  const auto jobs = open_rate_sweep(net, router, uniform_traffic(net.num_nodes()),
                                    rates, 100, cfg);
  util::ThreadPool pool1(1);
  util::ThreadPool pool4(4);
  const auto serial = run_sweep(jobs, pool1);
  const auto parallel = run_sweep(jobs, pool4);
  ASSERT_EQ(serial.size(), rates.size());
  ASSERT_EQ(parallel.size(), rates.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    expect_identical(serial[i].result, parallel[i].result);
  }
}

TEST(SweepDriver, RateSweepPointsMatchDirectRuns) {
  const SimNetwork net = test_net();
  const Router router = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  const std::array<double, 3> rates{0.02, 0.05, 0.10};
  const auto pattern = uniform_traffic(net.num_nodes());
  const auto outcomes =
      run_sweep(open_rate_sweep(net, router, pattern, rates, 100, cfg));
  ASSERT_EQ(outcomes.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto direct = run_open(net, router, pattern, rates[i], 100, cfg);
    expect_identical(outcomes[i].result, direct);
  }
}

TEST(SweepDriver, BatchReplicatesIdenticalAcrossThreadCounts) {
  const SimNetwork net = test_net();
  const Router router = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  const std::array<std::uint64_t, 8> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  const auto jobs = batch_replicate_sweep(net, router, seeds, cfg);
  util::ThreadPool pool1(1);
  util::ThreadPool pool4(4);
  const auto serial = run_sweep(jobs, pool1);
  const auto parallel = run_sweep(jobs, pool4);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    expect_identical(serial[i].result, parallel[i].result);
  // Replicates with distinct seeds should not all coincide.
  bool any_different = false;
  for (std::size_t i = 1; i < seeds.size(); ++i)
    any_different |= serial[i].result.makespan_cycles !=
                     serial[0].result.makespan_cycles;
  EXPECT_TRUE(any_different);
}

TEST(SweepDriver, SwitchingSweepMatchesDirectRuns) {
  const SimNetwork net = test_net();
  const Router router = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(3);
  const auto dst = random_permutation(net.num_nodes(), rng);
  const std::array<Switching, 2> modes{Switching::kStoreAndForward,
                                       Switching::kVirtualCutThrough};
  const auto outcomes = run_sweep(switching_sweep(net, router, dst, modes, cfg));
  ASSERT_EQ(outcomes.size(), 2u);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    SimConfig direct = cfg;
    direct.switching = modes[i];
    expect_identical(outcomes[i].result, run_batch(net, router, dst, direct));
  }
}

TEST(SweepDriver, MeanOfAveragesField) {
  std::vector<SweepOutcome> outcomes(2);
  outcomes[0].result.makespan_cycles = 10;
  outcomes[1].result.makespan_cycles = 30;
  EXPECT_EQ(mean_of(outcomes, &SimResult::makespan_cycles), 20.0);
}

}  // namespace
}  // namespace ipg::sim
