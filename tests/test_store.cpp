// Content-addressed result store (src/store): canonical fingerprints,
// record (de)serialization, on-disk corruption drills, and the cached
// run_sweep bit-identity pin. The fingerprint-stability test drives the
// whole seeded conformance family sweep through a store and asserts both
// bit-identical round-trips and zero key collisions — including the l = 2
// super families whose *graphs* coincide and are disambiguated only by the
// router tag.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "conformance/families.hpp"
#include "mcmp/capacity.hpp"
#include "sim/fault_plan.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/traffic.hpp"
#include "store/fingerprint.hpp"
#include "store/result_store.hpp"
#include "topology/named.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ipg::store {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test; removed up front so reruns start cold.
fs::path fresh_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("ipg_store_test_" + name);
  fs::remove_all(p);
  return p;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Every SimResult field, compared bitwise (NaN == NaN, -0.0 != 0.0).
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a.packets_delivered == b.packets_delivered &&
         bits_equal(a.makespan_cycles, b.makespan_cycles) &&
         bits_equal(a.avg_latency_cycles, b.avg_latency_cycles) &&
         bits_equal(a.p50_latency_cycles, b.p50_latency_cycles) &&
         bits_equal(a.p99_latency_cycles, b.p99_latency_cycles) &&
         bits_equal(a.max_latency_cycles, b.max_latency_cycles) &&
         bits_equal(a.avg_hops, b.avg_hops) &&
         bits_equal(a.avg_offchip_hops, b.avg_offchip_hops) &&
         bits_equal(a.throughput_flits_per_node_cycle,
                    b.throughput_flits_per_node_cycle) &&
         bits_equal(a.max_offchip_utilization, b.max_offchip_utilization) &&
         bits_equal(a.avg_offchip_utilization, b.avg_offchip_utilization) &&
         a.packets_injected == b.packets_injected &&
         a.packets_dropped == b.packets_dropped &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_in_flight == b.packets_in_flight &&
         a.reroute_hops == b.reroute_hops &&
         bits_equal(a.delivered_fraction, b.delivered_fraction);
}

// A result with every awkward bit pattern serialization must preserve:
// NaN, infinity, negative zero, and a magnitude near the double limit.
sim::SimResult odd_result() {
  sim::SimResult r;
  r.packets_delivered = 12345;
  r.makespan_cycles = 678.25;
  r.avg_latency_cycles = std::numeric_limits<double>::quiet_NaN();
  r.p50_latency_cycles = -0.0;
  r.p99_latency_cycles = std::numeric_limits<double>::infinity();
  r.max_latency_cycles = 1e300;
  r.avg_hops = 3.5;
  r.avg_offchip_hops = 0.125;
  r.throughput_flits_per_node_cycle = 0.001953125;
  r.max_offchip_utilization = 0.75;
  r.avg_offchip_utilization = 0.25;
  r.packets_injected = 99999;
  r.packets_dropped = 7;
  r.packets_retransmitted = 11;
  r.packets_in_flight = 3;
  r.reroute_hops = 42;
  r.delivered_fraction = 0.875;
  return r;
}

sim::SimNetwork q4_network(double bandwidth = 1.0) {
  return mcmp::make_unit_chip_network(topology::hypercube_graph(4),
                                      topology::hypercube_subcube_clustering(4, 4),
                                      bandwidth);
}

// --- fingerprints -----------------------------------------------------------

TEST(Fingerprint, CanonicalFormStartsWithSchemaSalt) {
  Fingerprint fp;
  EXPECT_EQ(fp.canonical(), "schema=" + std::to_string(kSchemaVersion));
  fp.field("net", "abc").field("n", std::uint64_t{7});
  EXPECT_EQ(fp.canonical(),
            "schema=" + std::to_string(kSchemaVersion) + "|net=abc|n=7");
}

TEST(Fingerprint, DoublesAreBitPatternsNotDecimals) {
  const auto key_of = [](double v) {
    return Fingerprint().field("d", v).canonical();
  };
  // Last-ulp and sign-of-zero differences must produce distinct keys —
  // decimal formatting would merge them.
  EXPECT_NE(key_of(0.0), key_of(-0.0));
  EXPECT_NE(key_of(1.0), key_of(std::nextafter(1.0, 2.0)));
  EXPECT_EQ(key_of(0.25), key_of(0.25));
}

TEST(Fingerprint, RejectsDelimitersInNamesAndValues) {
  Fingerprint fp;
  EXPECT_THROW(fp.field("bad|name", "v"), std::invalid_argument);
  EXPECT_THROW(fp.field("bad=name", "v"), std::invalid_argument);
  EXPECT_THROW(fp.field("name", "bad|value"), std::invalid_argument);
  EXPECT_THROW(fp.field("name", "bad=value"), std::invalid_argument);
}

TEST(Fingerprint, Hash128IsDeterministicAndInputSensitive) {
  const Hash128 a = hash128("schema=1|net=abc");
  const Hash128 b = hash128("schema=1|net=abc");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, hash128("schema=1|net=abd"));
  EXPECT_NE(a, hash128("schema=1|net=abc "));  // length-salted
  const std::string hex = a.hex();
  EXPECT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

// Any single knob change — engine, switching, every numeric SimConfig
// field, the fault plan, the router tag, the workload, or the network —
// must produce a distinct canonical key AND a distinct 128-bit address.
TEST(Fingerprint, EverySingleKnobChangesTheKey) {
  const topology::Graph g = topology::hypercube_graph(4);
  const topology::Clustering chips =
      topology::hypercube_subcube_clustering(4, 4);
  const sim::SimNetwork net = q4_network();

  const sim::SimConfig base;
  const std::string workload = workload_batch_perm(1);
  const auto key = [&](const sim::SimConfig& cfg) {
    return sim_cache_key(net, "ecube", workload, cfg);
  };

  std::vector<std::string> keys;
  keys.push_back(key(base));
  EXPECT_EQ(keys.back().rfind("schema=" + std::to_string(kSchemaVersion) + "|",
                              0),
            0u);

  const auto with = [&](auto&& mutate) {
    sim::SimConfig cfg = base;
    mutate(cfg);
    keys.push_back(key(cfg));
  };
  with([](sim::SimConfig& c) { c.engine = sim::Engine::kReference; });
  with([](sim::SimConfig& c) { c.engine = sim::Engine::kSharded; });
  with([](sim::SimConfig& c) { c.switching = sim::Switching::kVirtualCutThrough; });
  with([](sim::SimConfig& c) { c.switching = sim::Switching::kWormhole; });
  with([](sim::SimConfig& c) { c.packet_length_flits = 17; });
  with([](sim::SimConfig& c) { c.link_latency_cycles = 2; });
  with([](sim::SimConfig& c) { c.node_buffer_packets = 4; });
  with([](sim::SimConfig& c) { c.seed = 2; });
  with([](sim::SimConfig& c) { c.shard_domains = 2; });
  with([](sim::SimConfig& c) { c.max_retries = 1; });
  with([](sim::SimConfig& c) { c.retry_backoff_cycles = 64; });
  with([](sim::SimConfig& c) { c.misroute_budget = 9; });
  with([](sim::SimConfig& c) { c.max_cycles = 100; });
  with([&](sim::SimConfig& c) {
    c.fault_plan = std::make_shared<const sim::FaultPlan>(
        sim::FaultPlan::random_link_faults(g, &chips, 2, 0.0, 0.0, 7));
  });

  // Router tag, workload, and network perturbations.
  keys.push_back(sim_cache_key(net, "other-router", workload, base));
  keys.push_back(sim_cache_key(net, "ecube", workload_batch_perm(2), base));
  keys.push_back(sim_cache_key(net, "ecube", workload_open(0.05, 200, "uniform"),
                               base));
  keys.push_back(sim_cache_key(net, "ecube", workload_total_exchange(), base));
  const sim::SimNetwork wider = q4_network(2.0);  // bandwidths are keyed
  keys.push_back(sim_cache_key(wider, "ecube", workload, base));

  std::set<std::string> canonicals;
  std::set<std::string> addresses;
  for (const std::string& k : keys) {
    EXPECT_TRUE(canonicals.insert(k).second) << "canonical collision: " << k;
    EXPECT_TRUE(addresses.insert(hash128(k).hex()).second)
        << "hash collision: " << k;
  }
  EXPECT_EQ(canonicals.size(), keys.size());
}

TEST(Fingerprint, WorkloadDescriptorsRejectDelimiterTags) {
  EXPECT_THROW(workload_open(0.05, 200, "bad|tag"), std::invalid_argument);
  EXPECT_THROW(workload_open(0.05, 200, "bad=tag"), std::invalid_argument);
}

// The ISSUE's fingerprint-stability satellite: serialize -> key -> load
// round-trips bit-identical SimResults across every seeded conformance
// family, with zero canonical or address collisions across the grid. The
// l = 2 instances of distinct super families share byte-identical graphs
// (every l = 2 family is the same swap construction) — the family-specific
// router tag is what keeps their keys apart, so this doubles as a
// regression test for that soundness requirement.
TEST(Fingerprint, StableAcrossConformanceFamilies) {
  const auto sweep = conformance::plain_family_sweep(3, false, false);
  ASSERT_FALSE(sweep.empty());

  ResultStore st(fresh_dir("families"));
  std::set<std::string> canonicals;
  std::set<std::string> addresses;
  std::size_t instances_used = 0;
  for (const auto& inst : sweep) {
    if (inst.ipg->num_nodes() > 512) continue;  // keep the test fast
    ++instances_used;
    const sim::SimNetwork net = mcmp::make_unit_chip_network(
        inst.ipg->to_graph(), conformance::chips_of(inst), 1.0);
    const auto ipg = inst.ipg;
    const sim::Router router = [ipg](topology::NodeId s, topology::NodeId d) {
      return ipg->route(s, d);
    };
    for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}}) {
      sim::SimConfig cfg;
      cfg.seed = seed;
      util::Xoshiro256 rng(seed);
      const auto dst = sim::random_permutation(net.num_nodes(), rng);
      const sim::SimResult ran = sim::run_batch(net, router, dst, cfg);

      const std::string key = sim_cache_key(net, "canonical:" + inst.name,
                                            workload_batch_perm(seed), cfg);
      EXPECT_TRUE(canonicals.insert(key).second)
          << "canonical collision at " << inst.name << " seed " << seed;
      EXPECT_TRUE(addresses.insert(hash128(key).hex()).second)
          << "address collision at " << inst.name << " seed " << seed;

      st.store(key, ran);
      sim::SimResult back;
      ASSERT_TRUE(st.lookup(key, back)) << inst.name;
      EXPECT_TRUE(results_identical(ran, back))
          << inst.name << " seed " << seed
          << ": stored result not bit-identical";
    }
  }
  EXPECT_GE(instances_used, 8u);  // the sweep actually covered the families
  EXPECT_EQ(st.stats().corrupt, 0u);
  fs::remove_all(st.root());
}

// --- record format ----------------------------------------------------------

TEST(RecordFormat, RoundTripIsBitIdenticalIncludingExtras) {
  const std::string key = "schema=1|test=roundtrip";
  Record rec;
  rec.result = odd_result();
  rec.extras = {{"alpha", 1.5},
                {"beta", std::numeric_limits<double>::quiet_NaN()},
                {"gamma", -0.0}};
  const std::string bytes = serialize_record(key, rec);
  const auto back = parse_record(key, bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(results_identical(rec.result, back->result));
  ASSERT_EQ(back->extras.size(), rec.extras.size());
  for (std::size_t i = 0; i < rec.extras.size(); ++i) {
    EXPECT_EQ(back->extras[i].first, rec.extras[i].first);
    EXPECT_TRUE(bits_equal(back->extras[i].second, rec.extras[i].second));
  }
}

TEST(RecordFormat, RejectsEveryMalformedVariant) {
  const std::string key = "schema=1|test=malformed";
  Record rec;
  rec.result = odd_result();
  rec.extras = {{"x", 2.0}};
  const std::string bytes = serialize_record(key, rec);

  // Key mismatch: a 128-bit address collision must degrade to a miss.
  EXPECT_FALSE(parse_record("schema=1|test=other", bytes).has_value());

  // Every truncation length, from empty to one-byte-short.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(parse_record(key, std::string_view(bytes).substr(0, len))
                     .has_value())
        << "truncation to " << len << " bytes parsed";
  }

  // Trailing garbage.
  EXPECT_FALSE(parse_record(key, bytes + "x").has_value());

  // Every single-byte corruption: flipping any byte must hit the magic,
  // version, a length bound, the embedded key, or the checksum.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    EXPECT_FALSE(parse_record(key, flipped).has_value())
        << "byte flip at offset " << i << " parsed";
  }

  // All zeros of the right length.
  EXPECT_FALSE(parse_record(key, std::string(bytes.size(), '\0')).has_value());
}

// --- store behavior ---------------------------------------------------------

TEST(ResultStore, MissThenHitWithStatsAndShardedLayout) {
  ResultStore st(fresh_dir("basic"));
  const std::string key = "schema=1|test=basic";
  sim::SimResult out;
  EXPECT_FALSE(st.lookup(key, out));
  EXPECT_EQ(st.stats().misses, 1u);
  EXPECT_EQ(st.entry_count(), 0u);

  const sim::SimResult r = odd_result();
  st.store(key, r);
  EXPECT_EQ(st.stats().writes, 1u);
  EXPECT_EQ(st.entry_count(), 1u);
  ASSERT_TRUE(st.lookup(key, out));
  EXPECT_TRUE(results_identical(r, out));
  EXPECT_EQ(st.stats().hits, 1u);
  EXPECT_GT(st.stats().bytes_written, 0u);
  EXPECT_GT(st.stats().bytes_read, 0u);

  // Layout: <root>/<first two hex chars>/<32 hex>.ipgr.
  const fs::path p = st.path_of(key);
  EXPECT_TRUE(fs::exists(p));
  const std::string hex = hash128(key).hex();
  EXPECT_EQ(p.parent_path().filename().string(), hex.substr(0, 2));
  EXPECT_EQ(p.filename().string(), hex + ".ipgr");
  fs::remove_all(st.root());
}

TEST(ResultStore, PutAndLoadCarryExtras) {
  ResultStore st(fresh_dir("extras"));
  const std::string key = "schema=1|test=extras";
  EXPECT_FALSE(st.load(key).has_value());
  Record rec;
  rec.result = odd_result();
  rec.extras = {{"bisection", 64.0}, {"diameter", 5.0}};
  st.put(key, rec);
  const auto back = st.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(results_identical(rec.result, back->result));
  ASSERT_EQ(back->extras.size(), 2u);
  EXPECT_EQ(back->extras[0].first, "bisection");
  EXPECT_TRUE(bits_equal(back->extras[1].second, 5.0));
  fs::remove_all(st.root());
}

// The ISSUE's corruption-drill satellite: truncate, bit-flip, zero, and
// empty out entries on disk; every drill must be a logged miss followed by
// a clean recompute-and-restore — never a crash, never a stale result.
TEST(ResultStore, CorruptionDrillsRecomputeNeverCrashOrGoStale) {
  ResultStore st(fresh_dir("drills"));
  const sim::SimResult r = odd_result();

  enum class Drill { kTruncate, kBitFlip, kZero, kEmpty };
  const std::vector<std::pair<Drill, std::string>> drills = {
      {Drill::kTruncate, "truncate"},
      {Drill::kBitFlip, "bitflip"},
      {Drill::kZero, "zero"},
      {Drill::kEmpty, "empty"}};

  std::uint64_t corrupt_before = 0;
  for (const auto& [drill, name] : drills) {
    const std::string key = "schema=1|drill=" + name;
    st.store(key, r);
    const fs::path p = st.path_of(key);
    ASSERT_TRUE(fs::exists(p)) << name;

    // Corrupt the entry on disk.
    std::string bytes;
    {
      std::ifstream in(p, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = buf.str();
    }
    switch (drill) {
      case Drill::kTruncate:
        bytes.resize(bytes.size() / 2);
        break;
      case Drill::kBitFlip:
        bytes[bytes.size() / 2] =
            static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
        break;
      case Drill::kZero:
        bytes.assign(bytes.size(), '\0');
        break;
      case Drill::kEmpty:
        bytes.clear();
        break;
    }
    {
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    // The corrupt entry is a logged miss...
    std::ostringstream log;
    st.set_log(&log);
    sim::SimResult out;
    EXPECT_FALSE(st.lookup(key, out)) << name << ": stale result served";
    EXPECT_EQ(st.stats().corrupt, corrupt_before + 1) << name;
    corrupt_before = st.stats().corrupt;
    EXPECT_NE(log.str().find("corrupt entry"), std::string::npos) << name;
    st.set_log(nullptr);

    // ...and a recompute re-stores cleanly.
    st.store(key, r);
    ASSERT_TRUE(st.lookup(key, out)) << name;
    EXPECT_TRUE(results_identical(r, out)) << name;
  }

  // A record filed under the wrong address (simulated hash collision) is
  // also a corrupt miss, thanks to the embedded canonical key.
  const std::string key_a = "schema=1|drill=collision-a";
  const std::string key_b = "schema=1|drill=collision-b";
  st.store(key_a, r);
  fs::create_directories(st.path_of(key_b).parent_path());
  fs::copy_file(st.path_of(key_a), st.path_of(key_b),
                fs::copy_options::overwrite_existing);
  sim::SimResult out;
  EXPECT_FALSE(st.lookup(key_b, out));
  EXPECT_EQ(st.stats().corrupt, corrupt_before + 1);
  fs::remove_all(st.root());
}

TEST(ResultStore, InvalidateRemovesOnlyRecordFiles) {
  ResultStore st(fresh_dir("invalidate"));
  st.store("schema=1|inv=a", odd_result());
  st.store("schema=1|inv=b", odd_result());
  EXPECT_EQ(st.entry_count(), 2u);

  // A bystander file in the root (mistyped --cache-dir) must survive.
  const fs::path bystander = st.root() / "README.txt";
  {
    std::ofstream out(bystander);
    out << "not a record\n";
  }

  EXPECT_EQ(st.invalidate(), 2u);
  EXPECT_EQ(st.entry_count(), 0u);
  EXPECT_TRUE(fs::exists(bystander));
  sim::SimResult out;
  EXPECT_FALSE(st.lookup("schema=1|inv=a", out));
  st.store("schema=1|inv=a", odd_result());  // store still writable
  EXPECT_TRUE(st.lookup("schema=1|inv=a", out));
  fs::remove_all(st.root());
}

// --- cached sweeps ----------------------------------------------------------

// The acceptance pin: cached execution is bit-identical to uncached, and a
// warm second pass is served entirely from the store.
TEST(ResultStore, CachedSweepBitIdenticalAndWarmPassAllHits) {
  const sim::SimNetwork net = q4_network();
  const sim::Router router = sim::hypercube_router(4);

  std::vector<sim::SweepJob> jobs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::SimConfig cfg;
    cfg.seed = seed;
    jobs.push_back({"seed " + std::to_string(seed),
                    [&net, router, cfg, seed] {
                      util::Xoshiro256 rng(seed);
                      const auto dst =
                          sim::random_permutation(net.num_nodes(), rng);
                      return sim::run_batch(net, router, dst, cfg);
                    },
                    sim_cache_key(net, "ecube", workload_batch_perm(seed),
                                  cfg)});
  }

  const auto uncached = sim::run_sweep(jobs);

  ResultStore st(fresh_dir("sweep"));
  const auto cold =
      sim::run_sweep(jobs, util::ThreadPool::global(), nullptr, &st);
  const auto warm =
      sim::run_sweep(jobs, util::ThreadPool::global(), nullptr, &st);

  ASSERT_EQ(cold.size(), jobs.size());
  ASSERT_EQ(warm.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_FALSE(cold[i].from_cache) << i;
    EXPECT_TRUE(warm[i].from_cache) << i;
    EXPECT_TRUE(results_identical(uncached[i].result, cold[i].result)) << i;
    EXPECT_TRUE(results_identical(uncached[i].result, warm[i].result)) << i;
  }
  EXPECT_EQ(st.stats().hits, jobs.size());
  EXPECT_EQ(st.stats().writes, jobs.size());
  fs::remove_all(st.root());
}

}  // namespace
}  // namespace ipg::store
