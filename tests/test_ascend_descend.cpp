// Tests for the Theorem 3.5 ascend/descend plans — in particular the
// communication-step counts of Corollaries 3.6 and 3.7.
#include "algorithms/ascend_descend.hpp"

#include <gtest/gtest.h>

#include "topology/nucleus.hpp"

namespace ipg::algorithms {
namespace {

using namespace topology;

std::shared_ptr<const Nucleus> q(unsigned n) {
  return std::make_shared<HypercubeNucleus>(n);
}

TEST(AscendPlan, Corollary36_CnTakesLTimesKPlus1) {
  // CN based on a k-cube: l(k+1) = (1 + 1/k) log2 N communication steps.
  for (std::size_t l = 2; l <= 4; ++l) {
    for (unsigned k = 2; k <= 3; ++k) {
      const auto cn = make_complete_cn(l, q(k));
      const auto plan = build_ascend_plan(cn);
      EXPECT_EQ(plan.comm_steps(), l * (k + 1)) << cn.name();
      EXPECT_EQ(plan.base_dim_steps(), l * k);
      EXPECT_EQ(plan.super_steps(), l);
      // ring-CN achieves the same counts (§3.2: "any CN").
      const auto ring = make_ring_cn(l, q(k));
      EXPECT_EQ(build_ascend_plan(ring).comm_steps(), l * (k + 1)) << ring.name();
    }
  }
}

TEST(AscendPlan, Corollary36_HsnSfnTakeLTimesKPlus2Minus2) {
  // HSN/SFN based on a k-cube: l(k+2) - 2 communication steps.
  for (std::size_t l = 2; l <= 4; ++l) {
    for (unsigned k = 2; k <= 3; ++k) {
      const auto hsn = make_hsn(l, q(k));
      EXPECT_EQ(build_ascend_plan(hsn).comm_steps(), l * (k + 2) - 2) << hsn.name();
      const auto sfn = make_sfn(l, q(k));
      EXPECT_EQ(build_ascend_plan(sfn).comm_steps(), l * (k + 2) - 2) << sfn.name();
    }
  }
}

TEST(AscendPlan, Corollary36_RecursiveRcc) {
  // RCC(r, Q_k) has L = 2^r leaf levels; the recursion T(r) = 2 T(r-1) + 2
  // gives L(k+2) - 2 total steps, matching the corollary with l = L.
  const auto rcc = make_rcc(2, q(2));
  const std::size_t leaves = 4;  // 2^2
  EXPECT_EQ(build_ascend_plan(rcc).comm_steps(), leaves * (2 + 2) - 2);
}

TEST(AscendPlan, Corollary37_GeneralizedHypercubeNucleus) {
  // The paper's example: m_i = 4, n = 3 dims -> CN does (2/3) log2 N comm
  // steps, HSN (5/6) log2 N - 2; log2 N = 6l bits for GHC(4,4,4).
  const auto ghc = std::make_shared<GeneralizedHypercubeNucleus>(
      std::vector<std::size_t>{4, 4, 4});
  for (std::size_t l = 2; l <= 3; ++l) {
    const auto cn = make_complete_cn(l, ghc);
    const auto plan = build_ascend_plan(cn);
    EXPECT_EQ(plan.comm_steps(), l * (3 + 1)) << cn.name();  // l(n+1)
    const double log2n = static_cast<double>(6 * l);
    EXPECT_DOUBLE_EQ(static_cast<double>(plan.comm_steps()), (2.0 / 3.0) * log2n);
    const auto hsn = make_hsn(l, ghc);
    EXPECT_EQ(build_ascend_plan(hsn).comm_steps(), l * (3 + 2) - 2);  // l(n+2)-2
  }
}

TEST(AscendPlan, DescendMatchesAscendCost) {
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kCompleteCN,
                            SuperFamily::kSFN, SuperFamily::kRingCN}) {
    const SuperIpg s(q(2), 3, family);
    EXPECT_EQ(build_ascend_plan(s, false).comm_steps(),
              build_ascend_plan(s, true).comm_steps())
        << family_name(family);
  }
}

TEST(AscendPlan, PlanReturnsDataHome) {
  // Executing a full plan must leave every item at its original node
  // (the final rearrangement of Theorem 3.5).
  const auto hsn = make_hsn(3, q(2));
  SuperIpgMachine<int> m(hsn, std::vector<int>(hsn.num_nodes(), 0));
  run_plan(m, build_ascend_plan(hsn),
           [](std::span<const std::size_t>, std::span<int>) {});
  EXPECT_TRUE(m.is_home());
}

TEST(AscendPlan, BitRestrictionSkipsWholeLevels) {
  // Bits [0, k) only touch level 0: no super steps at all.
  const auto hsn = make_hsn(3, q(2));
  const auto plan = build_ascend_plan(hsn, false, 0, 2);
  EXPECT_EQ(plan.super_steps(), 0u);
  EXPECT_EQ(plan.base_dim_steps(), 2u);
  // Bits [2, 4) live in level 1: bring + restore + 2 dims.
  const auto plan2 = build_ascend_plan(hsn, false, 2, 4);
  EXPECT_EQ(plan2.base_dim_steps(), 2u);
  EXPECT_EQ(plan2.super_steps(), 2u);
}

TEST(AscendPlan, EmptyRangeYieldsEmptyPlan) {
  const auto hsn = make_hsn(2, q(2));
  EXPECT_EQ(build_ascend_plan(hsn, false, 3, 3).comm_steps(), 0u);
}

TEST(AscendPlan, ReorderFreeDropsTheRestoreWord) {
  // §3.2: "if reordering of the results is not required, then the number
  // of communication steps can be further reduced." HSN saves l-1 steps
  // (the restore), CN saves 1.
  const auto hsn = make_hsn(3, q(2));
  const auto full = build_ascend_plan(hsn);
  const auto loose = build_ascend_plan(hsn, false, 0,
                                       std::numeric_limits<std::size_t>::max(),
                                       /*restore_order=*/false);
  EXPECT_EQ(full.comm_steps() - loose.comm_steps(), hsn.levels() - 1);
  const auto cn = make_complete_cn(3, q(2));
  const auto cn_full = build_ascend_plan(cn);
  const auto cn_loose = build_ascend_plan(cn, false, 0,
                                          std::numeric_limits<std::size_t>::max(),
                                          false);
  EXPECT_EQ(cn_full.comm_steps() - cn_loose.comm_steps(), 1u);
  // Results stay correct when read by origin (the machine tracks homes).
  SuperIpgMachine<int> m(hsn, [] {
    std::vector<int> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
    return v;
  }());
  run_plan(m, loose, [](std::span<const std::size_t>, std::span<int>) {});
  EXPECT_FALSE(m.is_home());
  const auto by_origin = m.values_by_origin();
  for (std::size_t i = 0; i < by_origin.size(); ++i) {
    EXPECT_EQ(by_origin[i], static_cast<int>(i));
  }
  EXPECT_THROW(build_ascend_plan(hsn, true, 0,
                                 std::numeric_limits<std::size_t>::max(), false),
               std::invalid_argument);
}

TEST(AscendPlan, AddressBits) {
  EXPECT_EQ(address_bits(make_hsn(3, q(2))), 6u);
  EXPECT_EQ(address_bits(make_complete_cn(2, q(4))), 8u);
}

}  // namespace
}  // namespace ipg::algorithms
