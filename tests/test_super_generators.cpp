// Tests for super-generator permutation builders (§2): transpositions
// T_{i,m}, cyclic shifts L/R_{i,m}, flips F_{i,m}, and nucleus lifting.
#include "core/super_generators.hpp"

#include <gtest/gtest.h>

namespace ipg::core {
namespace {

std::vector<int> groups(std::size_t l, std::size_t m) {
  // Label where every symbol of group g has value g: exposes group moves.
  std::vector<int> x(l * m);
  for (std::size_t g = 0; g < l; ++g) {
    for (std::size_t s = 0; s < m; ++s) x[g * m + s] = static_cast<int>(g);
  }
  return x;
}

TEST(SuperGenerators, TranspositionSwapsGroups) {
  const auto t = super_transposition(4, 3, 2);  // swap group 0 and group 2
  const auto out = t.apply_copy(groups(4, 3));
  EXPECT_EQ(out, (std::vector<int>{2, 2, 2, 1, 1, 1, 0, 0, 0, 3, 3, 3}));
  EXPECT_TRUE(t.is_involution());
}

TEST(SuperGenerators, CyclicLeftMatchesPaperDefinition) {
  // L_{1,m}(X1 X2 X3 X4) = X2 X3 X4 X1 (§2).
  const auto left = super_cyclic_left(4, 2, 1);
  const auto out = left.apply_copy(groups(4, 2));
  EXPECT_EQ(out, (std::vector<int>{1, 1, 2, 2, 3, 3, 0, 0}));
}

TEST(SuperGenerators, CyclicRightInvertsLeft) {
  const auto left = super_cyclic_left(5, 2, 2);
  const auto right = super_cyclic_right(5, 2, 2);
  EXPECT_TRUE(left.then(right).is_identity());
  EXPECT_EQ(left.inverse(), right);
}

TEST(SuperGenerators, FlipMatchesPaperDefinition) {
  // F_2(X1 X2 X3 X4) = X2 X1 X3 X4; F_3(X1 X2 X3 X4) = X3 X2 X1 X4 (§2).
  const auto f2 = super_flip(4, 2, 2);
  EXPECT_EQ(f2.apply_copy(groups(4, 2)),
            (std::vector<int>{1, 1, 0, 0, 2, 2, 3, 3}));
  const auto f3 = super_flip(4, 2, 3);
  EXPECT_EQ(f3.apply_copy(groups(4, 2)),
            (std::vector<int>{2, 2, 1, 1, 0, 0, 3, 3}));
  EXPECT_TRUE(f3.is_involution());
}

TEST(SuperGenerators, LiftedNucleusActsOnlyOnLeftmostGroup) {
  const auto lifted = lift_nucleus_generator(Permutation::transposition(3, 0, 2), 3);
  std::vector<int> x{10, 11, 12, 20, 21, 22, 30, 31, 32};
  EXPECT_EQ(lifted.apply_copy(x),
            (std::vector<int>{12, 11, 10, 20, 21, 22, 30, 31, 32}));
}

TEST(SuperGenerators, GeneratorSetSizes) {
  EXPECT_EQ(make_super_generators(SuperGenKind::kTranspositions, 5, 2).size(), 4u);
  EXPECT_EQ(make_super_generators(SuperGenKind::kRingShifts, 5, 2).size(), 2u);
  EXPECT_EQ(make_super_generators(SuperGenKind::kRingShifts, 2, 2).size(), 1u);
  EXPECT_EQ(make_super_generators(SuperGenKind::kCompleteShifts, 5, 2).size(), 4u);
  EXPECT_EQ(make_super_generators(SuperGenKind::kFlips, 5, 2).size(), 4u);
}

TEST(SuperGenerators, GenericHsnOnQ2HasRightSize) {
  // HSN(2, Q_2): nucleus 4 nodes, 2 levels -> 16 nodes.
  const Ipg g = build_generic_super_ipg(hypercube_seed(2), hypercube_generators(2),
                                        2, SuperGenKind::kTranspositions);
  EXPECT_EQ(g.num_nodes(), 16u);
}

TEST(SuperGenerators, GenericFamiliesAgreeOnNodeCount) {
  // All four families over the same nucleus have M^l nodes.
  for (const auto kind :
       {SuperGenKind::kTranspositions, SuperGenKind::kRingShifts,
        SuperGenKind::kCompleteShifts, SuperGenKind::kFlips}) {
    const Ipg g = build_generic_super_ipg(hypercube_seed(2), hypercube_generators(2),
                                          3, kind);
    EXPECT_EQ(g.num_nodes(), 64u) << static_cast<int>(kind);
  }
}

TEST(SuperGenerators, InvalidArgumentsThrow) {
  EXPECT_THROW(super_transposition(3, 2, 0), std::invalid_argument);
  EXPECT_THROW(super_transposition(3, 2, 3), std::invalid_argument);
  EXPECT_THROW(super_flip(3, 2, 1), std::invalid_argument);
  EXPECT_THROW(super_cyclic_left(3, 2, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ipg::core
