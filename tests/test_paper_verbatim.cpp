// Paper-verbatim checks: §3.1 lists the exact generator sequences that
// emulate the dimension-11 links of a 16-cube on several super-IPGs
// (assuming the 32-symbol seed 01 01 ... 01). We reproduce each word.
//
//   paper (1-based)                          here (0-based dim j = 10)
//   T_{2,16}, (5,6), T_{2,16}  in HCN(8,8)   = HSN(2, Q8)
//   T_{3,8},  (5,6), T_{3,8}   in HSN(4,Q4)
//   R R, (5,6), L L            in ring-CN(4,Q4)
//   (->2)_8, (5,6), (<-2)_8    in complete-CN(4,Q4)
//
// (5,6) transposes symbol positions 5,6 of the front 8-symbol group: in
// the paired-bit hypercube encoding that is nucleus generator index 2 —
// bit 2 of the front Q4 coordinate.
#include <gtest/gtest.h>

#include "core/super_generators.hpp"
#include "emulation/sdc.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg {
namespace {

using namespace topology;

TEST(PaperVerbatim, Section31_Dimension11_OnHcn88) {
  // HCN(8,8) = HSN(2, Q8): word = T_2, nucleus gen 2, T_2.
  const SuperIpg hcn = make_hcn(8);
  const emulation::SdcEmulation emu(hcn);
  const std::size_t n = hcn.num_nucleus_generators();  // 8
  const auto& word = emu.word_for_dim(10);
  ASSERT_EQ(word.size(), 3u);
  EXPECT_EQ(word[0], n + 0);  // T_2 (the only super-generator)
  EXPECT_EQ(word[1], 2u);     // (5,6) = bit 2 of the front group
  EXPECT_EQ(word[2], n + 0);  // T_2 again (involution)
}

TEST(PaperVerbatim, Section31_Dimension11_OnHsn4Q4) {
  // HSN(4,Q4): word = T_3, nucleus gen 2, T_3 (T_3 interchanges the first
  // and third super-symbols; dim 10 lives in level j1 = 2, 0-based).
  const SuperIpg hsn = make_hsn(4, std::make_shared<HypercubeNucleus>(4));
  const emulation::SdcEmulation emu(hsn);
  const std::size_t n = hsn.num_nucleus_generators();  // 4
  const auto& word = emu.word_for_dim(10);
  ASSERT_EQ(word.size(), 3u);
  EXPECT_EQ(word[0], n + 1);  // T_3: local super index 1 (groups 0 <-> 2)
  EXPECT_EQ(word[1], 2u);     // (5,6)
  EXPECT_EQ(word[2], n + 1);
}

TEST(PaperVerbatim, Section31_Dimension11_OnRingCn4Q4) {
  // ring-CN(4,Q4): two unit shifts out, nucleus gen 2, two unit shifts
  // back — 5 steps (the paper's R_{1,8} R_{1,8}, (5,6), L_{1,8} L_{1,8}).
  const SuperIpg cn = make_ring_cn(4, std::make_shared<HypercubeNucleus>(4));
  const emulation::SdcEmulation emu(cn);
  const std::size_t n = cn.num_nucleus_generators();
  const auto& word = emu.word_for_dim(10);
  ASSERT_EQ(word.size(), 5u);
  EXPECT_EQ(word[2], 2u);  // the nucleus step in the middle
  // The two shifts out are one direction, the two back restore the order:
  // for l = 4 either the inverse direction (the paper's R R ... L L) or
  // two more of the same shift (a full rotation) — both are shortest.
  EXPECT_EQ(word[0], word[1]);
  EXPECT_EQ(word[3], word[4]);
  EXPECT_TRUE(word[3] == cn.inverse_generator(word[0]) || word[3] == word[0]);
  EXPECT_GE(word[0], n);
  emu.verify();
}

TEST(PaperVerbatim, Section31_Dimension11_OnCompleteCn4Q4) {
  // complete-CN(4,Q4): a single 2-shift out, nucleus gen 2, 2-shift back.
  const SuperIpg cn = make_complete_cn(4, std::make_shared<HypercubeNucleus>(4));
  const emulation::SdcEmulation emu(cn);
  const std::size_t n = cn.num_nucleus_generators();
  const auto& word = emu.word_for_dim(10);
  ASSERT_EQ(word.size(), 3u);
  EXPECT_EQ(word[0], n + 1);  // L_2
  EXPECT_EQ(word[1], 2u);     // (5,6)
  EXPECT_EQ(word[2], cn.inverse_generator(n + 1));  // L_2^{-1} = L_2 for l=4
}

TEST(PaperVerbatim, Section31_SeedShapeMatches) {
  // The paper's setting: a 16-cube has 32-symbol labels 01 01 ... 01; the
  // generic encoding here produces exactly that seed.
  const auto seed = core::hypercube_seed(16);
  EXPECT_EQ(seed.size(), 32u);
  EXPECT_EQ(seed.to_string(2), "01 01 01 01 01 01 01 01 01 01 01 01 01 01 01 01");
  // Dimension-11 (1-based) link = generator transposing positions (21,22)
  // 1-based = (20,21) 0-based.
  const auto gens = core::hypercube_generators(16);
  EXPECT_EQ(gens[10][20], 21u);
  EXPECT_EQ(gens[10][21], 20u);
}

}  // namespace
}  // namespace ipg
