// Tests for the extension layer: star nuclei, the directed CN family,
// capacity-model weight variants, ID/II-cost metrics, circular convolution,
// executed total exchange, and bounded-buffer backpressure.
#include <gtest/gtest.h>

#include "algorithms/convolution.hpp"
#include "metrics/costs.hpp"
#include "metrics/distances.hpp"
#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

using namespace topology;

// --- StarNucleus -----------------------------------------------------------

TEST(StarNucleus, BasicStructure) {
  const StarNucleus s4(4);
  EXPECT_EQ(s4.num_nodes(), 24u);
  EXPECT_EQ(s4.num_generators(), 3u);
  // All generators are involutions (transpositions with position 0).
  for (std::size_t g = 0; g < 3; ++g) {
    EXPECT_EQ(s4.inverse_generator(g), g);
    for (NodeId v = 0; v < 24; ++v) {
      EXPECT_EQ(s4.apply(s4.apply(v, g), g), v);
      EXPECT_NE(s4.apply(v, g), v);
    }
  }
}

TEST(StarNucleus, LehmerRoundTrip) {
  const StarNucleus s5(5);
  for (NodeId v = 0; v < s5.num_nodes(); v += 7) {
    EXPECT_EQ(s5.encode(s5.decode(v)), v);
  }
  // Identity permutation is node 0.
  EXPECT_EQ(s5.decode(0), (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(StarNucleus, StarGraphDiameter) {
  // Diameter of S_n is floor(3(n-1)/2): S_4 -> 4, S_5 -> 6.
  EXPECT_EQ(metrics::distance_stats(StarNucleus(4).to_graph()).diameter, 4u);
  EXPECT_EQ(metrics::distance_stats(StarNucleus(5).to_graph()).diameter, 6u);
}

TEST(StarNucleus, MacroStarStyleSuperIpg) {
  // HSN(2, S_4): 576 nodes, a macro-star-flavoured super-IPG.
  const SuperIpg ms = make_hsn(2, std::make_shared<StarNucleus>(4));
  EXPECT_EQ(ms.num_nodes(), 576u);
  const auto stats =
      metrics::intercluster_stats(ms.to_graph(), ms.nucleus_clustering());
  EXPECT_EQ(stats.diameter, 1u);  // l - 1
  // Routing works across the star nucleus.
  for (NodeId from = 0; from < ms.num_nodes(); from += 101) {
    for (NodeId to = 0; to < ms.num_nodes(); to += 97) {
      NodeId v = from;
      for (const auto g : ms.route(from, to)) v = ms.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

// --- Directed CN -----------------------------------------------------------

TEST(DirectedCn, HasOnlyForwardShift) {
  const SuperIpg dcn = make_directed_cn(4, std::make_shared<HypercubeNucleus>(2));
  EXPECT_EQ(dcn.num_super_generators(), 1u);
  EXPECT_EQ(dcn.name(), "directed-CN(4,Q2)");
  EXPECT_FALSE(dcn.to_graph().is_undirected());
}

TEST(DirectedCn, Corollary42_InterclusterDiameterLMinus1) {
  for (std::size_t l = 2; l <= 5; ++l) {
    const SuperIpg dcn =
        make_directed_cn(l, std::make_shared<HypercubeNucleus>(2));
    const auto stats =
        metrics::intercluster_stats(dcn.to_graph(), dcn.nucleus_clustering());
    EXPECT_EQ(stats.diameter, l - 1) << l;
  }
}

TEST(DirectedCn, RoutesReachDestinations) {
  const SuperIpg dcn = make_directed_cn(3, std::make_shared<HypercubeNucleus>(2));
  for (NodeId from = 0; from < dcn.num_nodes(); from += 3) {
    for (NodeId to = 0; to < dcn.num_nodes(); to += 5) {
      NodeId v = from;
      for (const auto g : dcn.route(from, to)) v = dcn.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

// --- capacity-model weights --------------------------------------------------

TEST(CapacityModels, UnitNodeWeightsSplitDegree) {
  const Graph g = hypercube_graph(3);  // regular degree 3
  const auto w = metrics::unit_node_arc_weights(g, 1.0);
  for (const double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 3.0);
}

TEST(CapacityModels, UnitNodeWeightsTakeMinAcrossEndpoints) {
  GraphBuilder b("path", 3, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);  // node 1 has degree 2, ends degree 1
  const Graph g = std::move(b).build();
  const auto w = metrics::unit_node_arc_weights(g, 1.0);
  for (const double x : w) EXPECT_DOUBLE_EQ(x, 0.5);
}

TEST(CapacityModels, UnitBisectionEqualizesNetworks) {
  // Under unit bisection capacity every network has the same bisection
  // bandwidth by construction (§4.2 / Dally).
  const Graph q = hypercube_graph(4);
  const auto wq = metrics::unit_bisection_arc_weights(q, 8.0, 64.0);
  EXPECT_DOUBLE_EQ(wq[0] * 8.0, 64.0);
  const Graph torus = kary_ncube_graph(4, 2);
  const auto wt = metrics::unit_bisection_arc_weights(torus, 8.0, 64.0);
  EXPECT_DOUBLE_EQ(wt[0] * 8.0, 64.0);
}

// --- ID / II costs ------------------------------------------------------------

TEST(Costs, ComputesPaperProducts) {
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const auto c = metrics::compute_costs(hsn.to_graph(), hsn.nucleus_clustering());
  EXPECT_DOUBLE_EQ(c.ii_cost,
                   c.intercluster_degree * static_cast<double>(c.intercluster_diameter));
  EXPECT_DOUBLE_EQ(c.id_cost,
                   c.intercluster_degree * static_cast<double>(c.diameter));
  EXPECT_EQ(c.intercluster_diameter, 2u);
  EXPECT_GT(c.diameter, c.intercluster_diameter);
}

TEST(Costs, SuperIpgBeatsHypercubeOnIICost) {
  // The §4.2 comparison metric: HSN's II-cost is far below the hypercube's.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(4));
  const auto hc = metrics::compute_costs(hsn.to_graph(), hsn.nucleus_clustering());
  const Graph q8 = hypercube_graph(8);
  const auto qc = metrics::compute_costs(q8, hypercube_subcube_clustering(8, 16));
  EXPECT_LT(hc.ii_cost, qc.ii_cost / 4);
}

// --- convolution ---------------------------------------------------------------

TEST(Convolution, MatchesReference) {
  const SuperIpg cn = make_complete_cn(3, std::make_shared<HypercubeNucleus>(2));
  util::Xoshiro256 rng(91);
  std::vector<algorithms::Complex> a(cn.num_nodes()), b(cn.num_nodes());
  for (auto& v : a) v = {rng.uniform() - 0.5, 0.0};
  for (auto& v : b) v = {rng.uniform() - 0.5, 0.0};
  const auto run = algorithms::circular_convolution_on_super_ipg(cn, a, b);
  const auto ref = algorithms::convolution_reference(a, b);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(std::abs(run.output[i] - ref[i]), 0.0, 1e-8) << i;
  }
  // Three ascend passes: 3 * l(k+1).
  EXPECT_EQ(run.counts.comm_steps, 3u * 9u);
}

// --- executed total exchange -----------------------------------------------------

TEST(TotalExchange, DeliversAllPairsAndBeatsHypercube) {
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto hnet = mcmp::make_unit_chip_network(hsn->to_graph(),
                                           hsn->nucleus_clustering(), 1.0);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 4;
  const auto hres = sim::run_total_exchange(
      hnet, [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }, cfg);
  EXPECT_EQ(hres.packets_delivered, 64u * 63u);

  auto qnet = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  const auto qres = sim::run_total_exchange(qnet, sim::hypercube_router(6), cfg);
  EXPECT_EQ(qres.packets_delivered, 64u * 63u);
  // §3.3/§4: the super-IPG finishes the TE faster under unit chip capacity.
  EXPECT_LT(hres.makespan_cycles, qres.makespan_cycles);
}

// --- bounded buffers -----------------------------------------------------------

TEST(BoundedBuffers, BackpressureSerializesThroughTightBuffers) {
  // 0 -> 1 -> 2 -> 3 chain with node buffers of one packet: two packets
  // from 0 and the makespan must exceed the unbuffered case's.
  GraphBuilder b("line", 4, 2);
  for (NodeId v = 0; v < 3; ++v) {
    b.add_arc(v, v + 1, 0);
    b.add_arc(v + 1, v, 1);
  }
  Graph g = std::move(b).build();
  sim::SimNetwork net = sim::SimNetwork::with_uniform_bandwidth(
      std::move(g), Clustering::blocks(4, 1), 1.0);
  const sim::Router router = [](NodeId s, NodeId d) {
    return std::vector<std::size_t>(static_cast<std::size_t>(d - s), 0);
  };
  // Two packets 0->3 and 1->3 share the tail of the path.
  std::vector<NodeId> dst{3, 3, 2, 3};
  sim::SimConfig unbounded;
  unbounded.packet_length_flits = 8;
  const auto a = sim::run_batch(net, router, dst, unbounded);
  sim::SimConfig bounded = unbounded;
  bounded.node_buffer_packets = 1;
  const auto c = sim::run_batch(net, router, dst, bounded);
  EXPECT_EQ(c.packets_delivered, 2u);
  EXPECT_GE(c.makespan_cycles, a.makespan_cycles);
}

TEST(BoundedBuffers, UnboundedMatchesDefault) {
  Graph g = hypercube_graph(4);
  sim::SimNetwork net = sim::SimNetwork::with_uniform_bandwidth(
      std::move(g), Clustering::blocks(16, 4), 1.0);
  util::Xoshiro256 rng(17);
  const auto perm = sim::random_permutation(16, rng);
  sim::SimConfig a, c;
  c.node_buffer_packets = 1000;  // effectively unbounded
  const auto ra = sim::run_batch(net, sim::hypercube_router(4), perm, a);
  const auto rc = sim::run_batch(net, sim::hypercube_router(4), perm, c);
  EXPECT_DOUBLE_EQ(ra.makespan_cycles, rc.makespan_cycles);
}

TEST(BoundedBuffers, DimensionOrderWithBuffersDeliversEverything) {
  Graph g = hypercube_graph(6);
  sim::SimNetwork net = sim::SimNetwork::with_uniform_bandwidth(
      std::move(g), Clustering::blocks(64, 8), 1.0);
  util::Xoshiro256 rng(19);
  const auto perm = sim::random_permutation(64, rng);
  sim::SimConfig cfg;
  cfg.node_buffer_packets = 2;
  const auto r = sim::run_batch(net, sim::hypercube_router(6), perm, cfg);
  EXPECT_GE(r.packets_delivered, 60u);
}

// --- uniform bandwidth (unit link) ----------------------------------------------

TEST(UnitLink, HypercubeCompetitiveUnderUnitLinkCapacity) {
  // §4: under *unit link* capacity the hypercube and super-IPGs are
  // comparable — the hypercube should not lose badly (its thin-link
  // penalty disappears).
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto hnet = sim::SimNetwork::with_uniform_bandwidth(
      hsn->to_graph(), hsn->nucleus_clustering(), 1.0);
  auto qnet = sim::SimNetwork::with_uniform_bandwidth(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(23);
  const auto perm = sim::random_permutation(64, rng);
  const auto hres = sim::run_batch(
      hnet, [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }, perm, cfg);
  const auto qres = sim::run_batch(qnet, sim::hypercube_router(6), perm, cfg);
  EXPECT_LT(qres.makespan_cycles, hres.makespan_cycles * 2.0);
}

}  // namespace
}  // namespace ipg
