// Tests for the generic IPG engine (core::build_ipg) — including the
// paper's §2 worked example, which must produce exactly 36 distinct nodes.
#include "core/ipg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/super_generators.hpp"

namespace ipg::core {
namespace {

TEST(IpgCore, Section2ExampleHas36Nodes) {
  const Ipg g = section2_example();
  EXPECT_EQ(g.num_nodes(), 36u);
  EXPECT_EQ(g.num_generators(), 3u);
  EXPECT_TRUE(g.is_undirected());  // two involutions + order-2 rotation
}

TEST(IpgCore, Section2ExampleNeighborsOfSeed) {
  const Ipg g = section2_example();
  const NodeId seed = g.node_of(Label::from_string("123321"));
  ASSERT_EQ(seed, 0u);
  // The three neighbours listed in §2: 213321, 321321, 321123.
  EXPECT_EQ(g.labels[g.neighbor[seed][0]].to_string(), "213321");
  EXPECT_EQ(g.labels[g.neighbor[seed][1]].to_string(), "321321");
  EXPECT_EQ(g.labels[g.neighbor[seed][2]].to_string(), "321123");
}

TEST(IpgCore, LabelsAreAllDistinct) {
  const Ipg g = section2_example();
  std::set<std::string> seen;
  for (const auto& l : g.labels) seen.insert(l.to_string());
  EXPECT_EQ(seen.size(), g.num_nodes());
}

TEST(IpgCore, CayleySpecialCase_AllSymbolsDistinct) {
  // With distinct symbols the IPG is a Cayley graph: seed 1234 under the
  // star-graph generators (transpose position 0 with i) gives S_4 = 24.
  std::vector<Permutation> gens;
  for (std::size_t i = 1; i < 4; ++i) gens.push_back(Permutation::transposition(4, 0, i));
  const Ipg g = build_ipg(Label::from_string("1234"), gens);
  EXPECT_EQ(g.num_nodes(), 24u);  // the star graph S_4
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t k = 0; k < g.num_generators(); ++k) {
      EXPECT_NE(g.neighbor[v][k], v);  // Cayley graphs have no self-loops
    }
  }
}

TEST(IpgCore, RepeatedSymbolsShrinkTheOrbit) {
  // Same generators, seed with repeats: 1123 has orbit 4!/2! = 12.
  std::vector<Permutation> gens;
  for (std::size_t i = 1; i < 4; ++i) gens.push_back(Permutation::transposition(4, 0, i));
  const Ipg g = build_ipg(Label::from_string("1123"), gens);
  EXPECT_EQ(g.num_nodes(), 12u);
}

TEST(IpgCore, HypercubeEncodingGivesQn) {
  // Q_3 in IPG form: 8 nodes, 3 generators, all involutions.
  const Ipg g = build_ipg(hypercube_seed(3), hypercube_generators(3));
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.is_undirected());
}

TEST(IpgCore, CompleteGraphEncodingGivesKm) {
  const Ipg g = build_ipg(complete_graph_seed(5), complete_graph_generators(5));
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 10u);  // K_5
  EXPECT_TRUE(g.is_undirected());
}

TEST(IpgCore, RingEncodingGivesCm) {
  const Ipg g = build_ipg(ring_seed(7), ring_generators(7));
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 7u);
}

TEST(IpgCore, MaxNodesGuardThrows) {
  std::vector<Permutation> gens;
  for (std::size_t i = 1; i < 8; ++i) gens.push_back(Permutation::transposition(8, 0, i));
  EXPECT_THROW(build_ipg(Label::from_string("12345678"), gens, 100),
               std::invalid_argument);
}

TEST(IpgCore, GeneratorSizeMismatchThrows) {
  EXPECT_THROW(build_ipg(Label::from_string("123"),
                         {Permutation::transposition(4, 0, 1)}),
               std::invalid_argument);
}

TEST(IpgCore, NodeOfUnknownLabelIsInvalid) {
  const Ipg g = section2_example();
  EXPECT_EQ(g.node_of(Label::from_string("999999")), kInvalidNode);
}

}  // namespace
}  // namespace ipg::core
