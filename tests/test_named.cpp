// Tests for the comparison topologies of §4 and their chip partitions.
#include "topology/named.hpp"

#include <gtest/gtest.h>

#include "metrics/distances.hpp"

namespace ipg::topology {
namespace {

TEST(Named, HypercubeBasics) {
  const Graph g = hypercube_graph(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(g.num_edges(), 80u);
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 5u);
}

TEST(Named, FoldedHypercube) {
  const Graph g = folded_hypercube_graph(3);
  EXPECT_EQ(g.num_edges(), 12u + 4u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 2u);
}

TEST(Named, CompleteAndRing) {
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(ring_graph(9).num_edges(), 9u);
  EXPECT_EQ(metrics::distance_stats(ring_graph(9)).diameter, 4u);
}

TEST(Named, KaryNCube) {
  const Graph g = kary_ncube_graph(4, 3);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_edges(), 64u * 3);  // degree 6, k > 2
  EXPECT_EQ(metrics::distance_stats(g).diameter, 6u);  // 3 * floor(4/2)
  // k = 2 degenerates to the hypercube.
  const Graph q = kary_ncube_graph(2, 4);
  EXPECT_EQ(q.num_edges(), hypercube_graph(4).num_edges());
}

TEST(Named, Mesh) {
  const Graph g = mesh_graph(3, 2);
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 4u);
}

TEST(Named, CccStructure) {
  const Graph g = ccc_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.is_undirected());
  // CCC(3) is vertex-transitive with diameter 6.
  EXPECT_EQ(metrics::distance_stats(g).diameter, 6u);
}

TEST(Named, ButterflyStructure) {
  const Graph g = butterfly_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.is_undirected());
}

TEST(Named, ShuffleExchange) {
  const Graph g = shuffle_exchange_graph(3);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_LE(g.max_degree(), 3u);
}

TEST(Clusterings, HypercubeSubcubes) {
  const auto c = hypercube_subcube_clustering(6, 16);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(hypercube_graph(6), c);
  // Each node has 2 off-chip dimensions: 64 * 2 / 2 = 64 off-chip links.
  EXPECT_EQ(census.offchip_edges, 64u);
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 2.0);
}

TEST(Clusterings, Kary2Blocks) {
  const auto c = kary2_block_clustering(8, 4);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(kary_ncube_graph(8, 2), c);
  // Each 4x4 block has 4 links out per side: 16 off-chip links per chip,
  // shared between two chips: 4 chips * 16 / 2 = 32.
  EXPECT_EQ(census.offchip_edges, 32u);
}

TEST(Clusterings, CccCycles) {
  const auto c = ccc_cycle_clustering(4);
  EXPECT_EQ(c.num_clusters(), 16u);
  const auto census = census_links(ccc_graph(4), c);
  // Exactly the cube links are off-chip: one per node / 2.
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 1.0);
}

TEST(Clusterings, ButterflyPartition) {
  const auto c = butterfly_clustering(4, 2);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(butterfly_graph(4), c);
  // Cross links at levels whose bit lies outside the low-r rows are
  // off-chip; straight links stay on-chip.
  EXPECT_GT(census.onchip_edges, census.offchip_edges);
}

}  // namespace
}  // namespace ipg::topology
