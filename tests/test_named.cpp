// Tests for the comparison topologies of §4 and their chip partitions.
#include "topology/named.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/distances.hpp"
#include "sim/routers.hpp"

namespace ipg::topology {
namespace {

/// Walks @p dims from @p src with Graph::neighbor and returns the hop
/// count, failing the test if any dimension has no link.
std::size_t walk(const Graph& g, NodeId src, NodeId dst,
                 const std::vector<std::size_t>& dims) {
  NodeId at = src;
  for (const std::size_t d : dims) {
    const NodeId next = g.neighbor(at, static_cast<std::uint16_t>(d));
    EXPECT_NE(next, kInvalidNode) << "no dim " << d << " at " << at;
    at = next;
  }
  EXPECT_EQ(at, dst);
  return dims.size();
}

TEST(Named, HypercubeBasics) {
  const Graph g = hypercube_graph(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(g.num_edges(), 80u);
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 5u);
}

TEST(Named, FoldedHypercube) {
  const Graph g = folded_hypercube_graph(3);
  EXPECT_EQ(g.num_edges(), 12u + 4u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 2u);
}

TEST(Named, CompleteAndRing) {
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(ring_graph(9).num_edges(), 9u);
  EXPECT_EQ(metrics::distance_stats(ring_graph(9)).diameter, 4u);
}

TEST(Named, KaryNCube) {
  const Graph g = kary_ncube_graph(4, 3);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_edges(), 64u * 3);  // degree 6, k > 2
  EXPECT_EQ(metrics::distance_stats(g).diameter, 6u);  // 3 * floor(4/2)
  // k = 2 degenerates to the hypercube.
  const Graph q = kary_ncube_graph(2, 4);
  EXPECT_EQ(q.num_edges(), hypercube_graph(4).num_edges());
}

TEST(Named, Mesh) {
  const Graph g = mesh_graph(3, 2);
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 4u);
}

TEST(Named, CccStructure) {
  const Graph g = ccc_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.is_undirected());
  // CCC(3) is vertex-transitive with diameter 6.
  EXPECT_EQ(metrics::distance_stats(g).diameter, 6u);
}

TEST(Named, ButterflyStructure) {
  const Graph g = butterfly_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.is_undirected());
}

TEST(Named, ShuffleExchange) {
  const Graph g = shuffle_exchange_graph(3);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_LE(g.max_degree(), 3u);
}

TEST(Named, DragonflyStructure) {
  // DF(a, h): g = a*h + 1 groups of a routers; every router has a - 1
  // local ports and h global ports, and every group pair shares exactly
  // one global link.
  const Graph g = dragonfly_graph(4, 2);
  EXPECT_EQ(g.num_nodes(), 36u);  // 9 groups * 4 routers
  EXPECT_TRUE(g.is_undirected());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 5u);  // (a - 1) + h
  }
  // local: 9 * C(4,2) = 54; global: C(9,2) = 36.
  EXPECT_EQ(g.num_edges(), 90u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 3u);  // l-g-l
  EXPECT_THROW(dragonfly_graph(1, 2), std::invalid_argument);
  EXPECT_THROW(dragonfly_graph(4, 0), std::invalid_argument);
}

TEST(Named, DragonflyRouterReachesEveryPair) {
  const Graph g = dragonfly_graph(4, 2);
  const auto route = sim::dragonfly_router(4, 2);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_LE(walk(g, s, d, route(s, d)), 3u);
    }
  }
  // Same group: one local hop.
  EXPECT_EQ(route(0, 1).size(), 1u);
}

TEST(Named, FatTreeStructure) {
  // FT(k): k^3/4 hosts, k^2 edge+aggregation switches, (k/2)^2 cores.
  const Graph g = fat_tree_graph(4);
  EXPECT_EQ(g.num_nodes(), 36u);  // 16 hosts + 8 edge + 8 agg + 4 core
  EXPECT_TRUE(g.is_undirected());
  for (NodeId host = 0; host < 16; ++host) {
    EXPECT_EQ(g.degree(host), 1u);
  }
  for (NodeId core = 32; core < 36; ++core) {
    EXPECT_EQ(g.degree(core), 4u);  // one link per pod
  }
  // host-edge 16 + edge-agg 16 + agg-core 16.
  EXPECT_EQ(g.num_edges(), 48u);
  EXPECT_THROW(fat_tree_graph(3), std::invalid_argument);  // k must be even
  EXPECT_THROW(fat_tree_graph(0), std::invalid_argument);
}

TEST(Named, FatTreeRouterHopCounts) {
  const Graph g = fat_tree_graph(4);
  const auto route = sim::fat_tree_router(4);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto dims = route(s, d);
      const std::size_t hops = walk(g, s, d, dims);
      // Up/down: 2 same-edge, 4 same-pod, 6 cross-pod.
      if (s / 2 == d / 2) {
        EXPECT_EQ(hops, 2u);
      } else if (s / 4 == d / 4) {
        EXPECT_EQ(hops, 4u);
      } else {
        EXPECT_EQ(hops, 6u);
      }
    }
  }
  // Only hosts are routable endpoints.
  EXPECT_THROW(route(0, 20), std::invalid_argument);
}

TEST(Clusterings, DragonflyGroups) {
  const auto c = dragonfly_group_clustering(4, 2);
  EXPECT_EQ(c.num_clusters(), 9u);
  const auto census = census_links(dragonfly_graph(4, 2), c);
  // Exactly the global links cross chips: C(9, 2).
  EXPECT_EQ(census.offchip_edges, 36u);
}

TEST(Clusterings, FatTreePods) {
  const auto c = fat_tree_pod_clustering(4);
  EXPECT_EQ(c.num_clusters(), 5u);  // 4 pods + the core chip
  const auto census = census_links(fat_tree_graph(4), c);
  // Exactly the agg-core links cross chips.
  EXPECT_EQ(census.offchip_edges, 16u);
}

TEST(Clusterings, HypercubeSubcubes) {
  const auto c = hypercube_subcube_clustering(6, 16);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(hypercube_graph(6), c);
  // Each node has 2 off-chip dimensions: 64 * 2 / 2 = 64 off-chip links.
  EXPECT_EQ(census.offchip_edges, 64u);
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 2.0);
}

TEST(Clusterings, Kary2Blocks) {
  const auto c = kary2_block_clustering(8, 4);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(kary_ncube_graph(8, 2), c);
  // Each 4x4 block has 4 links out per side: 16 off-chip links per chip,
  // shared between two chips: 4 chips * 16 / 2 = 32.
  EXPECT_EQ(census.offchip_edges, 32u);
}

TEST(Clusterings, CccCycles) {
  const auto c = ccc_cycle_clustering(4);
  EXPECT_EQ(c.num_clusters(), 16u);
  const auto census = census_links(ccc_graph(4), c);
  // Exactly the cube links are off-chip: one per node / 2.
  EXPECT_DOUBLE_EQ(census.avg_offchip_per_node, 1.0);
}

TEST(Clusterings, ButterflyPartition) {
  const auto c = butterfly_clustering(4, 2);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto census = census_links(butterfly_graph(4), c);
  // Cross links at levels whose bit lies outside the low-r rows are
  // off-chip; straight links stay on-chip.
  EXPECT_GT(census.onchip_edges, census.offchip_edges);
}

}  // namespace
}  // namespace ipg::topology
