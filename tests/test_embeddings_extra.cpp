// Corollary 3.4 in action: constant-dilation hypercube embeddings compose
// with the dilation-3 HPN -> super-IPG embedding. Plus two demonstrations
// of the IPG model's expressive power from §1/§2: the shuffle-exchange
// network and the star graph as index-permutation graphs.
#include <gtest/gtest.h>

#include "algorithms/fft.hpp"
#include "core/super_generators.hpp"
#include "emulation/sdc.hpp"
#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

using namespace topology;

// Gray code: consecutive ring nodes differ in one hypercube bit.
NodeId gray(std::size_t i) { return static_cast<NodeId>(i ^ (i >> 1)); }

TEST(Corollary34, RingEmbedsInHsnWithDilationThree) {
  // Ring C_64 -> Q6 via Gray code (dilation 1), Q6 = HPN(3, Q2) ->
  // HSN(3, Q2) via the SDC words (dilation 3): composite dilation <= 3.
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const emulation::SdcEmulation emu(hsn);
  const Graph g = hsn.to_graph();

  std::size_t max_dilation = 0;
  const std::size_t n = hsn.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId a = gray(i);
    const NodeId b = gray((i + 1) % n);
    // The ring edge maps to the HPN dimension where a and b differ...
    const auto diff = static_cast<NodeId>(a ^ b);
    ASSERT_TRUE(util::is_pow2(diff));
    const auto dim = util::exact_log2(diff);
    // ...whose embedded path is the SDC word from a.
    max_dilation = std::max(max_dilation, emu.word_for_dim(dim).size());
    // The path is a real path in the HSN graph ending at b's image.
    NodeId v = a;
    for (const auto gen : emu.word_for_dim(dim)) {
      const NodeId u = hsn.apply(v, gen);
      if (u != v) {  // generator fixing the node = zero-length hop
        ASSERT_NE(g.neighbor(v, static_cast<std::uint16_t>(gen)), kInvalidNode);
      }
      v = u;
    }
    ASSERT_EQ(v, b);
  }
  EXPECT_EQ(max_dilation, 3u);
}

TEST(Corollary34, MeshEmbedsInCompleteCnWithDilationThree) {
  // An 8x8 mesh embeds in Q6 with dilation 1 (row-Gray x column-Gray),
  // hence in complete-CN(3,Q2) with dilation 3.
  const SuperIpg cn = make_complete_cn(3, std::make_shared<HypercubeNucleus>(2));
  const emulation::SdcEmulation emu(cn);
  auto node_of = [](std::size_t r, std::size_t c) {
    return static_cast<NodeId>((gray(r) << 3) | gray(c));
  };
  std::size_t max_dilation = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c + 1 < 8; ++c) {
      const auto diff = static_cast<NodeId>(node_of(r, c) ^ node_of(r, c + 1));
      ASSERT_TRUE(util::is_pow2(diff));
      max_dilation = std::max(
          max_dilation, emu.word_for_dim(util::exact_log2(diff)).size());
    }
  }
  EXPECT_EQ(max_dilation, 3u);
}

TEST(IpgExpressiveness, ShuffleExchangeIsAnIpg) {
  // SE(n) as an IPG with the paired-bit encoding: seed (01)^n, generators
  // rotate-by-2 (shuffle), rotate-by-(2n-2) (unshuffle), swap of pair 0
  // (exchange). Node count 2^n, degree <= 3.
  const unsigned n = 4;
  const auto ipg = core::build_ipg(
      core::hypercube_seed(n),
      {core::Permutation::rotation(2 * n, 2),
       core::Permutation::rotation(2 * n, 2 * n - 2),
       core::Permutation::transposition(2 * n, 0, 1)});
  EXPECT_EQ(ipg.num_nodes(), 16u);
  const Graph g = from_ipg(ipg, "SE4-as-IPG");
  EXPECT_TRUE(g.is_undirected());
  EXPECT_LE(g.max_degree(), 3u);
  // Same diameter as the directly-constructed shuffle-exchange graph.
  EXPECT_EQ(metrics::distance_stats(g).diameter,
            metrics::distance_stats(shuffle_exchange_graph(n)).diameter);
}

TEST(IpgExpressiveness, StarGraphIsACayleyIpg) {
  // S_4 via distinct symbols (the Cayley special case) matches StarNucleus.
  std::vector<core::Permutation> gens;
  for (std::size_t i = 1; i < 4; ++i) {
    gens.push_back(core::Permutation::transposition(4, 0, i));
  }
  const auto ipg = core::build_ipg(core::Label::from_string("1234"), gens);
  const Graph g = from_ipg(ipg, "S4-as-IPG");
  const Graph s = StarNucleus(4).to_graph();
  EXPECT_EQ(g.num_nodes(), s.num_nodes());
  EXPECT_EQ(g.num_edges(), s.num_edges());
  EXPECT_EQ(metrics::distance_stats(g).diameter,
            metrics::distance_stats(s).diameter);
  const auto ga = metrics::distance_stats(g);
  const auto sa = metrics::distance_stats(s);
  EXPECT_DOUBLE_EQ(ga.average, sa.average);
}

TEST(IpgExpressiveness, RhsnNestedTwiceStillComputesFft) {
  // RHSN(2, 2, Q2): HSN(2, HSN(2, Q2)) nested again — 2 levels of
  // recursion through SuperIpgNucleus; the Theorem 3.5 plan still runs.
  const SuperIpg rhsn = make_rhsn(2, 2, std::make_shared<HypercubeNucleus>(2));
  EXPECT_EQ(rhsn.num_nodes(), 256u);
  util::Xoshiro256 rng(3);
  std::vector<algorithms::Complex> x(rhsn.num_nodes());
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto run = algorithms::fft_on_super_ipg(rhsn, x);
  const auto ref = algorithms::dft_reference(x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(run.output[i] - ref[i]), 0.0, 1e-8);
  }
}

}  // namespace
}  // namespace ipg
