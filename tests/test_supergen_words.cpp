// Tests for the Theorem 4.1 / 4.3 word analysis: t (plain intercluster
// diameter) and t_S (symmetric-variant intercluster diameter), checked
// against Corollaries 4.2 and 4.4.
#include "metrics/supergen_words.hpp"

#include <gtest/gtest.h>

#include "topology/nucleus.hpp"

namespace ipg::metrics {
namespace {

using namespace topology;

std::shared_ptr<const Nucleus> q2() {
  return std::make_shared<HypercubeNucleus>(2);
}

TEST(SuperGenWords, Corollary42_PlainFamiliesHaveTEqualLMinus1) {
  for (std::size_t l = 2; l <= 6; ++l) {
    EXPECT_EQ(analyze_supergen_words(make_hsn(l, q2())).t_visit_all, l - 1)
        << "HSN l=" << l;
    EXPECT_EQ(analyze_supergen_words(make_ring_cn(l, q2())).t_visit_all, l - 1)
        << "ring-CN l=" << l;
    EXPECT_EQ(analyze_supergen_words(make_complete_cn(l, q2())).t_visit_all, l - 1)
        << "complete-CN l=" << l;
    EXPECT_EQ(analyze_supergen_words(make_sfn(l, q2())).t_visit_all, l - 1)
        << "SFN l=" << l;
  }
}

TEST(SuperGenWords, Corollary44_SymmetricCompleteCN) {
  // Symmetric complete-CN(l,G) has intercluster diameter l.
  for (std::size_t l = 2; l <= 6; ++l) {
    EXPECT_EQ(analyze_supergen_words(make_complete_cn(l, q2())).t_symmetric, l)
        << l;
  }
}

TEST(SuperGenWords, Corollary44_SymmetricHsnAndSfn) {
  // Symmetric HSN(l,G) and SFN(l,G) have intercluster diameter 2l-2.
  for (std::size_t l = 2; l <= 6; ++l) {
    EXPECT_EQ(analyze_supergen_words(make_hsn(l, q2())).t_symmetric, 2 * l - 2)
        << "HSN l=" << l;
  }
  // SFN: the paper states 2l-2 for the symmetric SFN as well, but exact BFS
  // shows that is an upper bound only — prefix reversals rearrange faster
  // than transpositions for l >= 6 (t_S = 8 < 10 at l = 6, pancake-style).
  for (std::size_t l = 2; l <= 6; ++l) {
    const auto ts = analyze_supergen_words(make_sfn(l, q2())).t_symmetric;
    EXPECT_LE(ts, 2 * l - 2) << "SFN l=" << l;
    if (l <= 5) {
      EXPECT_EQ(ts, 2 * l - 2) << "SFN l=" << l;
    }
  }
}

TEST(SuperGenWords, Corollary44_SymmetricRingCN) {
  // Symmetric ring-CN: 2 for l=2, 3 for l=3, floor(1.5 l) - 2 for l >= 4.
  EXPECT_EQ(analyze_supergen_words(make_ring_cn(2, q2())).t_symmetric, 2u);
  EXPECT_EQ(analyze_supergen_words(make_ring_cn(3, q2())).t_symmetric, 3u);
  for (std::size_t l = 4; l <= 8; ++l) {
    EXPECT_EQ(analyze_supergen_words(make_ring_cn(l, q2())).t_symmetric,
              (3 * l) / 2 - 2)
        << "ring-CN l=" << l;
  }
}

TEST(SuperGenWords, LargeLevelsRejected) {
  EXPECT_THROW(analyze_supergen_words(make_hsn(9, q2())),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipg::metrics
