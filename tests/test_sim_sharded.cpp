// Engine::kSharded bit-identity: the domain-decomposed parallel engine must
// reproduce the sequential engines' SimResult bit-for-bit — for every domain
// count K, healthy and degraded, with and without an observer attached — and
// its observer stream must replay the sequential event order exactly. Bounded
// node buffers are covered too: the credit protocol must reproduce the
// sequential occupancy/waiting evolution verbatim, including routing-deadlock
// diagnostics. Domain cut unit tests ride along.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "topology/domain_cut.hpp"
#include "topology/graph.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

void expect_latency_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_latency_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_latency_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_latency_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_latency_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle,
            b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

/// Result of a run that may legitimately end in a bounded-buffer routing
/// deadlock: either the SimResult or the thrown diagnostic. Bit-identity
/// under bounded buffers means the engines agree on the outcome *kind* too —
/// if one deadlocks they all must, with byte-identical messages.
struct Outcome {
  bool ok = false;
  SimResult res;
  std::string error;
};

template <typename Fn>
Outcome run_outcome(Fn&& fn) {
  Outcome o;
  try {
    o.res = fn();
    o.ok = true;
  } catch (const std::invalid_argument& e) {
    o.error = e.what();
  }
  return o;
}

void expect_same_outcome(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.ok, b.ok) << (a.ok ? b.error : a.error);
  if (a.ok) {
    expect_identical(a.res, b.res);
  } else {
    EXPECT_EQ(a.error, b.error);
  }
}

struct TestNet {
  SimNetwork net;
  Router router;
};

TestNet hsn_q3() {
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  return {mcmp::make_unit_chip_network(hsn->to_graph(),
                                       hsn->nucleus_clustering(), 1.0),
          [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }};
}

TestNet kary42() {
  return {mcmp::make_unit_chip_network(kary_ncube_graph(4, 2),
                                       kary2_block_clustering(4, 2), 1.0),
          kary_router(4, 2)};
}

/// Non-dyadic bandwidth forces the engines off the tick calendar onto the
/// radix-banded EventQueue — the sharded engine's per-domain copies of that
/// queue must agree too.
TestNet kary42_nondyadic() {
  return {SimNetwork::with_uniform_bandwidth(kary_ncube_graph(4, 2),
                                             kary2_block_clustering(4, 2), 0.3),
          kary_router(4, 2)};
}

/// Records every observer hook with full bit patterns, so two streams
/// compare equal only if the engines fired identical hooks in identical
/// order with bit-identical arguments.
class RecordingObserver final : public SimObserver {
 public:
  std::vector<std::string> log;

 private:
  static std::string bits(double v) {
    std::ostringstream os;
    os << std::hex << std::bit_cast<std::uint64_t>(v);
    return os.str();
  }
  void on_inject(std::uint32_t p, NodeId s, NodeId d, double t) override {
    log.push_back("inject " + std::to_string(p) + " " + std::to_string(s) +
                  " " + std::to_string(d) + " " + bits(t));
  }
  void on_hop(const HopRecord& h) override {
    log.push_back("hop " + std::to_string(h.packet) + " " +
                  std::to_string(h.from) + " " + std::to_string(h.to) + " " +
                  std::to_string(h.link) + " " + bits(h.start) + " " +
                  bits(h.tail_departure) + " " + bits(h.arrival) + " " +
                  std::to_string(h.offchip));
  }
  void on_detour(std::uint32_t p, NodeId at, double t,
                 std::uint16_t hops) override {
    log.push_back("detour " + std::to_string(p) + " " + std::to_string(at) +
                  " " + bits(t) + " " + std::to_string(hops));
  }
  void on_retry(std::uint32_t p, std::uint32_t attempt, NodeId src, double t,
                double resume) override {
    log.push_back("retry " + std::to_string(p) + " " +
                  std::to_string(attempt) + " " + std::to_string(src) + " " +
                  bits(t) + " " + bits(resume));
  }
  void on_drop(std::uint32_t p, NodeId at, double t) override {
    log.push_back("drop " + std::to_string(p) + " " + std::to_string(at) +
                  " " + bits(t));
  }
  void on_deliver(std::uint32_t p, NodeId dst, double t,
                  double latency) override {
    log.push_back("deliver " + std::to_string(p) + " " + std::to_string(dst) +
                  " " + bits(t) + " " + bits(latency));
  }
  void on_fault(const FaultEvent& e) override {
    log.push_back("fault " + std::to_string(static_cast<int>(e.kind)) + " " +
                  std::to_string(e.a) + " " + std::to_string(e.b) + " " +
                  bits(e.time));
  }
};

std::shared_ptr<const FaultPlan> drill_plan(const TestNet& t) {
  return std::make_shared<const FaultPlan>(
      FaultPlan::random_link_faults(t.net.graph(), nullptr, 3, 40.0, 30.0, 11));
}

SimConfig degraded_cfg(const TestNet& t) {
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;
  cfg.fault_plan = drill_plan(t);
  return cfg;
}

class ShardedEquivalence : public ::testing::TestWithParam<int> {
 protected:
  TestNet make_net() const {
    switch (GetParam()) {
      case 0: return hsn_q3();
      case 1: return kary42();
      default: return kary42_nondyadic();
    }
  }
  static constexpr std::uint32_t kDomainCounts[] = {1, 2, 4, 8};
};

TEST_P(ShardedEquivalence, BatchHealthy) {
  const TestNet t = make_net();
  for (const Switching mode :
       {Switching::kStoreAndForward, Switching::kVirtualCutThrough}) {
    SimConfig cfg;
    cfg.packet_length_flits = 8;
    cfg.switching = mode;
    util::Xoshiro256 rng(42);
    const auto perm = random_permutation(t.net.num_nodes(), rng);
    cfg.engine = Engine::kReference;
    const auto oracle = run_batch(t.net, t.router, perm, cfg);
    cfg.engine = Engine::kArena;
    const auto arena = run_batch(t.net, t.router, perm, cfg);
    cfg.engine = Engine::kSharded;
    for (const std::uint32_t k : kDomainCounts) {
      cfg.shard_domains = k;
      const auto sharded = run_batch(t.net, t.router, perm, cfg);
      expect_identical(sharded, oracle);
      expect_identical(sharded, arena);
    }
  }
}

TEST_P(ShardedEquivalence, OpenHealthy) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(oracle.packets_delivered, 0u);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    expect_identical(run_open(t.net, t.router, pattern, 0.08, 200, cfg),
                     oracle);
  }
}

TEST_P(ShardedEquivalence, TotalExchange) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.engine = Engine::kArena;
  const auto arena = run_total_exchange(t.net, t.router, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_total_exchange(t.net, t.router, cfg);
    const std::size_t n = t.net.num_nodes();
    EXPECT_EQ(sharded.packets_delivered, n * (n - 1));
    expect_identical(sharded, arena);
  }
}

TEST_P(ShardedEquivalence, DegradedWithFaultsRetriesAndCutoff) {
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(oracle.packets_delivered, 0u);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    expect_identical(sharded, oracle);
    EXPECT_EQ(sharded.packets_injected,
              sharded.packets_delivered + sharded.packets_dropped +
                  sharded.packets_in_flight);
  }
}

TEST_P(ShardedEquivalence, ObserverStreamMatchesArenaHealthy) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(42);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena = run_batch(t.net, t.router, perm, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded = run_batch(t.net, t.router, perm, cfg);
    expect_identical(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

TEST_P(ShardedEquivalence, ObserverStreamMatchesArenaDegraded) {
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  const auto pattern = uniform_traffic(t.net.num_nodes());
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    expect_identical(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

TEST_P(ShardedEquivalence, BatchBoundedBuffers) {
  // Bounded node buffers under kSharded: the credit protocol must reproduce
  // the sequential occupancy/waiting evolution verbatim for every cap —
  // including caps tight enough to park packets (or deadlock: then every
  // engine must throw the same diagnostic).
  const TestNet t = make_net();
  util::Xoshiro256 rng(42);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  for (const std::size_t cap : {std::size_t{1}, std::size_t{2}}) {
    SimConfig cfg;
    cfg.packet_length_flits = 8;
    cfg.node_buffer_packets = cap;
    cfg.engine = Engine::kReference;
    const auto oracle =
        run_outcome([&] { return run_batch(t.net, t.router, perm, cfg); });
    cfg.engine = Engine::kArena;
    const auto arena =
        run_outcome([&] { return run_batch(t.net, t.router, perm, cfg); });
    expect_same_outcome(arena, oracle);
    cfg.engine = Engine::kSharded;
    for (const std::uint32_t k : kDomainCounts) {
      cfg.shard_domains = k;
      const auto sharded =
          run_outcome([&] { return run_batch(t.net, t.router, perm, cfg); });
      expect_same_outcome(sharded, oracle);
    }
  }
}

TEST_P(ShardedEquivalence, OpenBoundedBuffers) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  cfg.node_buffer_packets = 2;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_outcome(
      [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
  if (oracle.ok) {
    EXPECT_GT(oracle.res.packets_delivered, 0u);
  }
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_outcome(
        [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
    expect_same_outcome(sharded, oracle);
  }
}

TEST_P(ShardedEquivalence, TotalExchangeBoundedBuffers) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.node_buffer_packets = 2;
  cfg.engine = Engine::kArena;
  const auto arena =
      run_outcome([&] { return run_total_exchange(t.net, t.router, cfg); });
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded =
        run_outcome([&] { return run_total_exchange(t.net, t.router, cfg); });
    expect_same_outcome(sharded, arena);
  }
}

TEST_P(ShardedEquivalence, DegradedBoundedBuffers) {
  // Faults + retries + cutoff with bounded buffers: the faulty sharded loop
  // routes frees/stalls through the same credit protocol.
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  cfg.node_buffer_packets = 2;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_outcome(
      [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_outcome(
        [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
    expect_same_outcome(sharded, oracle);
    if (sharded.ok) {
      EXPECT_EQ(sharded.res.packets_injected,
                sharded.res.packets_delivered + sharded.res.packets_dropped +
                    sharded.res.packets_in_flight);
    }
  }
}

TEST_P(ShardedEquivalence, ObserverStreamBoundedHealthy) {
  // Observer hooks must fire in the exact sequential order even when the
  // replay merge interleaves free_buffer wakeups with packet moves.
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.node_buffer_packets = 2;
  util::Xoshiro256 rng(42);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena =
      run_outcome([&] { return run_batch(t.net, t.router, perm, cfg); });
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded =
        run_outcome([&] { return run_batch(t.net, t.router, perm, cfg); });
    expect_same_outcome(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

TEST_P(ShardedEquivalence, ObserverStreamBoundedDegraded) {
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  cfg.node_buffer_packets = 2;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena = run_outcome(
      [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded = run_outcome(
        [&] { return run_open(t.net, t.router, pattern, 0.08, 200, cfg); });
    expect_same_outcome(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Networks, ShardedEquivalence,
                         ::testing::Values(0, 1, 2), [](const auto& param_info) {
                           switch (param_info.param) {
                             case 0: return "HsnQ3";
                             case 1: return "Kary4Cube2";
                             default: return "Kary4Cube2NonDyadic";
                           }
                         });

TEST(Sharded, AutoDomainCountMatchesExplicit) {
  // shard_domains == 0 picks a machine-dependent K; the result must still
  // be bit-identical to any explicit K (the contract is K-independence).
  const TestNet t = hsn_q3();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(3);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 0;
  const auto automatic = run_batch(t.net, t.router, perm, cfg);
  cfg.shard_domains = 3;
  expect_identical(automatic, run_batch(t.net, t.router, perm, cfg));
}

TEST(Sharded, RunsInsidePoolWorkerUnchanged) {
  // A sharded run inside a thread-pool worker (a sweep job, say) must fall
  // back to inline domain execution — same bits, no deadlock on the pool.
  const TestNet t = hsn_q3();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 4;
  util::Xoshiro256 rng(5);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  const auto direct = run_batch(t.net, t.router, perm, cfg);
  SimResult from_worker;
  util::ThreadPool pool(2);
  pool.submit([&] {
    ASSERT_TRUE(util::ThreadPool::in_worker());
    from_worker = run_batch(t.net, t.router, perm, cfg);
  });
  pool.wait();
  expect_identical(from_worker, direct);
}

TEST(Sharded, MoreDomainsThanNodesClampsAndRuns) {
  const TestNet t = kary42();  // 16 nodes
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.engine = Engine::kArena;
  const auto arena = run_total_exchange(t.net, t.router, cfg);
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 1000;
  expect_identical(run_total_exchange(t.net, t.router, cfg), arena);
}

TEST(Sharded, BoundedBuffersAcceptedAndBitIdentical) {
  // Regression for the removed UnsupportedSimConfig rejection: kSharded now
  // runs bounded-buffer configs instead of throwing, and the result matches
  // the reference engine bit-for-bit.
  const TestNet t = kary42();
  SimConfig cfg;
  cfg.node_buffer_packets = 2;
  util::Xoshiro256 rng(9);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  cfg.engine = Engine::kReference;
  const auto oracle = run_batch(t.net, t.router, perm, cfg);
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 4;
  SimResult sharded;
  ASSERT_NO_THROW(sharded = run_batch(t.net, t.router, perm, cfg));
  expect_identical(sharded, oracle);
}

/// Directed 4-ring 0->1->2->3->0 with a spur 4->1; every ring node sends
/// three hops ahead and the spur node sends into the ring. With one-packet
/// buffers the ring packets wait on each other in a cycle while the spur
/// packet waits on the jammed ring — a genuine deadlock whose cycle is
/// {0,1,2,3} with node 4 as a non-cycle lead-in the reporter must not name.
struct DeadlockNet {
  SimNetwork net;
  Router router;
  std::vector<NodeId> dst;
};

DeadlockNet deadlock_ring_with_spur() {
  GraphBuilder b("ring4spur", 5, 1);
  for (NodeId v = 0; v < 4; ++v) b.add_arc(v, (v + 1) % 4, 0);
  b.add_arc(4, 1, 0);
  SimNetwork net = SimNetwork::with_uniform_bandwidth(
      std::move(b).build(), Clustering::blocks(5, 1), 1.0);
  Router router = [](NodeId s, NodeId d) {
    const std::size_t hops =
        s == 4 ? 1 + ((d + 4 - 1) % 4) : (d + 4 - s) % 4;
    return std::vector<std::size_t>(hops, 0);
  };
  return {std::move(net), std::move(router), {3, 0, 1, 2, 3}};
}

TEST(Sharded, DeadlockCycleMessageIdenticalAcrossEngines) {
  const DeadlockNet t = deadlock_ring_with_spur();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.node_buffer_packets = 1;
  std::vector<std::string> messages;
  for (const Engine engine :
       {Engine::kReference, Engine::kArena, Engine::kSharded}) {
    cfg.engine = engine;
    const std::uint32_t max_k = engine == Engine::kSharded ? 4u : 1u;
    for (std::uint32_t k = 1; k <= max_k; ++k) {
      cfg.shard_domains = k;
      const auto out =
          run_outcome([&] { return run_batch(t.net, t.router, t.dst, cfg); });
      ASSERT_FALSE(out.ok) << "engine " << static_cast<int>(engine)
                           << " K=" << k << " did not deadlock";
      messages.push_back(out.error);
    }
  }
  for (const std::string& msg : messages) {
    EXPECT_EQ(msg, messages.front());
    // The report is trimmed to the actual cycle: the spur node 4 hosts a
    // parked packet but is not deadlocked, so it must not be named.
    EXPECT_NE(msg.find("waiting cycle: 0 -> 1 -> 2 -> 3 -> 0"),
              std::string::npos)
        << msg;
    EXPECT_EQ(msg.find('4'), std::string::npos) << msg;
  }
}

TEST(Sharded, CreditStarvationStallsAndStaysBitIdentical) {
  // Two source nodes in different domains funnel into one single-slot
  // bottleneck node: at most one domain can hold the buffer credit, so the
  // other must stall whole windows waiting for a remote free — exercising
  // the stall/regrant path. Results must still match the reference engine.
  GraphBuilder b("funnel", 4, 1);
  b.add_arc(0, 2, 0);
  b.add_arc(1, 2, 0);
  b.add_arc(2, 3, 0);
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      std::move(b).build(), Clustering::blocks(4, 1), 1.0);
  const Router router = [](NodeId s, NodeId) {
    return std::vector<std::size_t>(s == 2 ? 1 : 2, 0);
  };
  std::vector<Injection> injections;
  for (std::uint32_t i = 0; i < 8; ++i) {
    injections.push_back({0, 3, static_cast<double>(i)});
    injections.push_back({1, 3, static_cast<double>(i)});
  }
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.node_buffer_packets = 1;
  cfg.engine = Engine::kReference;
  const auto oracle = run_trace(net, router, injections, cfg);
  EXPECT_EQ(oracle.packets_delivered, injections.size());
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    cfg.shard_domains = k;
    expect_identical(run_trace(net, router, injections, cfg), oracle);
  }
}

// --- topology::make_domain_cut unit tests ---

TEST(DomainCut, ChipAlignedWhenChipsSuffice) {
  // 8 chips of 8 nodes: every domain must be a union of whole chips, and a
  // 4-way cut of equal chips must balance exactly.
  const TestNet t = hsn_q3();
  const Clustering& chips = t.net.chips();
  const DomainCut cut = make_domain_cut(chips, 4);
  ASSERT_EQ(cut.num_domains, 4u);
  ASSERT_EQ(cut.domain_of.size(), t.net.num_nodes());
  for (NodeId v = 0; v < t.net.num_nodes(); ++v) {
    for (NodeId u = 0; u < t.net.num_nodes(); ++u) {
      if (chips.cluster_of(v) == chips.cluster_of(u)) {
        EXPECT_EQ(cut.domain_of[v], cut.domain_of[u]);
      }
    }
  }
  std::vector<std::size_t> count(4, 0);
  for (const std::uint32_t d : cut.domain_of) ++count[d];
  for (const std::size_t c : count) EXPECT_EQ(c, t.net.num_nodes() / 4);
}

TEST(DomainCut, FallsBackWhenFewerChipsThanDomains) {
  // 4 chips, 8 domains: chips must split, but every domain stays non-empty.
  const TestNet t = kary42();
  const DomainCut cut = make_domain_cut(t.net.chips(), 8);
  ASSERT_EQ(cut.num_domains, 8u);
  std::vector<std::size_t> count(8, 0);
  for (const std::uint32_t d : cut.domain_of) {
    ASSERT_LT(d, 8u);
    ++count[d];
  }
  for (const std::size_t c : count) EXPECT_GT(c, 0u);
}

TEST(DomainCut, EveryDomainNonEmptyForAllK) {
  const TestNet t = hsn_q3();
  for (std::size_t k = 1; k <= t.net.num_nodes(); k += 7) {
    const DomainCut cut = make_domain_cut(t.net.chips(), k);
    std::vector<std::size_t> count(k, 0);
    for (const std::uint32_t d : cut.domain_of) {
      ASSERT_LT(d, k);
      ++count[d];
    }
    for (const std::size_t c : count) EXPECT_GT(c, 0u) << "k=" << k;
  }
}

TEST(DomainCut, RejectsZeroAndOversizedK) {
  const TestNet t = kary42();
  EXPECT_THROW(make_domain_cut(t.net.chips(), 0), std::invalid_argument);
  EXPECT_THROW(make_domain_cut(t.net.chips(), t.net.num_nodes() + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipg::sim
