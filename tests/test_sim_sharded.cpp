// Engine::kSharded bit-identity: the domain-decomposed parallel engine must
// reproduce the sequential engines' SimResult bit-for-bit — for every domain
// count K, healthy and degraded, with and without an observer attached — and
// its observer stream must replay the sequential event order exactly. Domain
// cut unit tests and the bounded-buffer rejection ride along.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "topology/domain_cut.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

void expect_latency_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_latency_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_latency_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_latency_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_latency_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_offchip_hops, b.avg_offchip_hops);
  EXPECT_EQ(a.throughput_flits_per_node_cycle,
            b.throughput_flits_per_node_cycle);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

struct TestNet {
  SimNetwork net;
  Router router;
};

TestNet hsn_q3() {
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  return {mcmp::make_unit_chip_network(hsn->to_graph(),
                                       hsn->nucleus_clustering(), 1.0),
          [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }};
}

TestNet kary42() {
  return {mcmp::make_unit_chip_network(kary_ncube_graph(4, 2),
                                       kary2_block_clustering(4, 2), 1.0),
          kary_router(4, 2)};
}

/// Non-dyadic bandwidth forces the engines off the tick calendar onto the
/// radix-banded EventQueue — the sharded engine's per-domain copies of that
/// queue must agree too.
TestNet kary42_nondyadic() {
  return {SimNetwork::with_uniform_bandwidth(kary_ncube_graph(4, 2),
                                             kary2_block_clustering(4, 2), 0.3),
          kary_router(4, 2)};
}

/// Records every observer hook with full bit patterns, so two streams
/// compare equal only if the engines fired identical hooks in identical
/// order with bit-identical arguments.
class RecordingObserver final : public SimObserver {
 public:
  std::vector<std::string> log;

 private:
  static std::string bits(double v) {
    std::ostringstream os;
    os << std::hex << std::bit_cast<std::uint64_t>(v);
    return os.str();
  }
  void on_inject(std::uint32_t p, NodeId s, NodeId d, double t) override {
    log.push_back("inject " + std::to_string(p) + " " + std::to_string(s) +
                  " " + std::to_string(d) + " " + bits(t));
  }
  void on_hop(const HopRecord& h) override {
    log.push_back("hop " + std::to_string(h.packet) + " " +
                  std::to_string(h.from) + " " + std::to_string(h.to) + " " +
                  std::to_string(h.link) + " " + bits(h.start) + " " +
                  bits(h.tail_departure) + " " + bits(h.arrival) + " " +
                  std::to_string(h.offchip));
  }
  void on_detour(std::uint32_t p, NodeId at, double t,
                 std::uint16_t hops) override {
    log.push_back("detour " + std::to_string(p) + " " + std::to_string(at) +
                  " " + bits(t) + " " + std::to_string(hops));
  }
  void on_retry(std::uint32_t p, std::uint32_t attempt, NodeId src, double t,
                double resume) override {
    log.push_back("retry " + std::to_string(p) + " " +
                  std::to_string(attempt) + " " + std::to_string(src) + " " +
                  bits(t) + " " + bits(resume));
  }
  void on_drop(std::uint32_t p, NodeId at, double t) override {
    log.push_back("drop " + std::to_string(p) + " " + std::to_string(at) +
                  " " + bits(t));
  }
  void on_deliver(std::uint32_t p, NodeId dst, double t,
                  double latency) override {
    log.push_back("deliver " + std::to_string(p) + " " + std::to_string(dst) +
                  " " + bits(t) + " " + bits(latency));
  }
  void on_fault(const FaultEvent& e) override {
    log.push_back("fault " + std::to_string(static_cast<int>(e.kind)) + " " +
                  std::to_string(e.a) + " " + std::to_string(e.b) + " " +
                  bits(e.time));
  }
};

std::shared_ptr<const FaultPlan> drill_plan(const TestNet& t) {
  return std::make_shared<const FaultPlan>(
      FaultPlan::random_link_faults(t.net.graph(), nullptr, 3, 40.0, 30.0, 11));
}

SimConfig degraded_cfg(const TestNet& t) {
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;
  cfg.fault_plan = drill_plan(t);
  return cfg;
}

class ShardedEquivalence : public ::testing::TestWithParam<int> {
 protected:
  TestNet make_net() const {
    switch (GetParam()) {
      case 0: return hsn_q3();
      case 1: return kary42();
      default: return kary42_nondyadic();
    }
  }
  static constexpr std::uint32_t kDomainCounts[] = {1, 2, 4, 8};
};

TEST_P(ShardedEquivalence, BatchHealthy) {
  const TestNet t = make_net();
  for (const Switching mode :
       {Switching::kStoreAndForward, Switching::kVirtualCutThrough}) {
    SimConfig cfg;
    cfg.packet_length_flits = 8;
    cfg.switching = mode;
    util::Xoshiro256 rng(42);
    const auto perm = random_permutation(t.net.num_nodes(), rng);
    cfg.engine = Engine::kReference;
    const auto oracle = run_batch(t.net, t.router, perm, cfg);
    cfg.engine = Engine::kArena;
    const auto arena = run_batch(t.net, t.router, perm, cfg);
    cfg.engine = Engine::kSharded;
    for (const std::uint32_t k : kDomainCounts) {
      cfg.shard_domains = k;
      const auto sharded = run_batch(t.net, t.router, perm, cfg);
      expect_identical(sharded, oracle);
      expect_identical(sharded, arena);
    }
  }
}

TEST_P(ShardedEquivalence, OpenHealthy) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.seed = 7;
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(oracle.packets_delivered, 0u);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    expect_identical(run_open(t.net, t.router, pattern, 0.08, 200, cfg),
                     oracle);
  }
}

TEST_P(ShardedEquivalence, TotalExchange) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.engine = Engine::kArena;
  const auto arena = run_total_exchange(t.net, t.router, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_total_exchange(t.net, t.router, cfg);
    const std::size_t n = t.net.num_nodes();
    EXPECT_EQ(sharded.packets_delivered, n * (n - 1));
    expect_identical(sharded, arena);
  }
}

TEST_P(ShardedEquivalence, DegradedWithFaultsRetriesAndCutoff) {
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  const auto pattern = uniform_traffic(t.net.num_nodes());
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  EXPECT_GT(oracle.packets_delivered, 0u);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    cfg.shard_domains = k;
    const auto sharded = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    expect_identical(sharded, oracle);
    EXPECT_EQ(sharded.packets_injected,
              sharded.packets_delivered + sharded.packets_dropped +
                  sharded.packets_in_flight);
  }
}

TEST_P(ShardedEquivalence, ObserverStreamMatchesArenaHealthy) {
  const TestNet t = make_net();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(42);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena = run_batch(t.net, t.router, perm, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded = run_batch(t.net, t.router, perm, cfg);
    expect_identical(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

TEST_P(ShardedEquivalence, ObserverStreamMatchesArenaDegraded) {
  const TestNet t = make_net();
  SimConfig cfg = degraded_cfg(t);
  const auto pattern = uniform_traffic(t.net.num_nodes());
  RecordingObserver arena_obs;
  cfg.engine = Engine::kArena;
  cfg.observer = &arena_obs;
  const auto arena = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
  cfg.engine = Engine::kSharded;
  for (const std::uint32_t k : kDomainCounts) {
    RecordingObserver sharded_obs;
    cfg.shard_domains = k;
    cfg.observer = &sharded_obs;
    const auto sharded = run_open(t.net, t.router, pattern, 0.08, 200, cfg);
    expect_identical(sharded, arena);
    EXPECT_EQ(sharded_obs.log, arena_obs.log) << "K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Networks, ShardedEquivalence,
                         ::testing::Values(0, 1, 2), [](const auto& param_info) {
                           switch (param_info.param) {
                             case 0: return "HsnQ3";
                             case 1: return "Kary4Cube2";
                             default: return "Kary4Cube2NonDyadic";
                           }
                         });

TEST(Sharded, AutoDomainCountMatchesExplicit) {
  // shard_domains == 0 picks a machine-dependent K; the result must still
  // be bit-identical to any explicit K (the contract is K-independence).
  const TestNet t = hsn_q3();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  util::Xoshiro256 rng(3);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 0;
  const auto automatic = run_batch(t.net, t.router, perm, cfg);
  cfg.shard_domains = 3;
  expect_identical(automatic, run_batch(t.net, t.router, perm, cfg));
}

TEST(Sharded, RunsInsidePoolWorkerUnchanged) {
  // A sharded run inside a thread-pool worker (a sweep job, say) must fall
  // back to inline domain execution — same bits, no deadlock on the pool.
  const TestNet t = hsn_q3();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 4;
  util::Xoshiro256 rng(5);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  const auto direct = run_batch(t.net, t.router, perm, cfg);
  SimResult from_worker;
  util::ThreadPool pool(2);
  pool.submit([&] {
    ASSERT_TRUE(util::ThreadPool::in_worker());
    from_worker = run_batch(t.net, t.router, perm, cfg);
  });
  pool.wait();
  expect_identical(from_worker, direct);
}

TEST(Sharded, MoreDomainsThanNodesClampsAndRuns) {
  const TestNet t = kary42();  // 16 nodes
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.engine = Engine::kArena;
  const auto arena = run_total_exchange(t.net, t.router, cfg);
  cfg.engine = Engine::kSharded;
  cfg.shard_domains = 1000;
  expect_identical(run_total_exchange(t.net, t.router, cfg), arena);
}

TEST(Sharded, BoundedBuffersRejected) {
  const TestNet t = kary42();
  SimConfig cfg;
  cfg.engine = Engine::kSharded;
  cfg.node_buffer_packets = 2;
  util::Xoshiro256 rng(9);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  EXPECT_THROW(run_batch(t.net, t.router, perm, cfg), std::invalid_argument);
}

TEST(Sharded, BoundedBuffersRejectedWithStructuredError) {
  // The rejection is a named type (so callers can branch on it, not parse
  // prose) whose message explains the why and names the engines that do
  // support bounded buffers.
  const TestNet t = kary42();
  SimConfig cfg;
  cfg.engine = Engine::kSharded;
  cfg.node_buffer_packets = 2;
  util::Xoshiro256 rng(9);
  const auto perm = random_permutation(t.net.num_nodes(), rng);
  try {
    (void)run_batch(t.net, t.router, perm, cfg);
    FAIL() << "expected UnsupportedSimConfig";
  } catch (const UnsupportedSimConfig& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kSharded"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node_buffer_packets"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kArena"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kReference"), std::string::npos) << msg;
  }
  // Other engines accept the same config unchanged.
  cfg.engine = Engine::kArena;
  EXPECT_NO_THROW((void)run_batch(t.net, t.router, perm, cfg));
}

// --- topology::make_domain_cut unit tests ---

TEST(DomainCut, ChipAlignedWhenChipsSuffice) {
  // 8 chips of 8 nodes: every domain must be a union of whole chips, and a
  // 4-way cut of equal chips must balance exactly.
  const TestNet t = hsn_q3();
  const Clustering& chips = t.net.chips();
  const DomainCut cut = make_domain_cut(chips, 4);
  ASSERT_EQ(cut.num_domains, 4u);
  ASSERT_EQ(cut.domain_of.size(), t.net.num_nodes());
  for (NodeId v = 0; v < t.net.num_nodes(); ++v) {
    for (NodeId u = 0; u < t.net.num_nodes(); ++u) {
      if (chips.cluster_of(v) == chips.cluster_of(u)) {
        EXPECT_EQ(cut.domain_of[v], cut.domain_of[u]);
      }
    }
  }
  std::vector<std::size_t> count(4, 0);
  for (const std::uint32_t d : cut.domain_of) ++count[d];
  for (const std::size_t c : count) EXPECT_EQ(c, t.net.num_nodes() / 4);
}

TEST(DomainCut, FallsBackWhenFewerChipsThanDomains) {
  // 4 chips, 8 domains: chips must split, but every domain stays non-empty.
  const TestNet t = kary42();
  const DomainCut cut = make_domain_cut(t.net.chips(), 8);
  ASSERT_EQ(cut.num_domains, 8u);
  std::vector<std::size_t> count(8, 0);
  for (const std::uint32_t d : cut.domain_of) {
    ASSERT_LT(d, 8u);
    ++count[d];
  }
  for (const std::size_t c : count) EXPECT_GT(c, 0u);
}

TEST(DomainCut, EveryDomainNonEmptyForAllK) {
  const TestNet t = hsn_q3();
  for (std::size_t k = 1; k <= t.net.num_nodes(); k += 7) {
    const DomainCut cut = make_domain_cut(t.net.chips(), k);
    std::vector<std::size_t> count(k, 0);
    for (const std::uint32_t d : cut.domain_of) {
      ASSERT_LT(d, k);
      ++count[d];
    }
    for (const std::size_t c : count) EXPECT_GT(c, 0u) << "k=" << k;
  }
}

TEST(DomainCut, RejectsZeroAndOversizedK) {
  const TestNet t = kary42();
  EXPECT_THROW(make_domain_cut(t.net.chips(), 0), std::invalid_argument);
  EXPECT_THROW(make_domain_cut(t.net.chips(), t.net.num_nodes() + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipg::sim
