// Resilience layer: Monte Carlo percolation sweeps (deterministic sampling,
// survivor components, thread-count-invariant curves) and k-fault-tolerant
// supergraph augmentation (circulant widening, universal spares, and the
// from-scratch containment verifier, including a negative control).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "mcmp/capacity.hpp"
#include "resilience/percolation.hpp"
#include "resilience/supergraph.hpp"
#include "sim/routers.hpp"
#include "sim/traffic.hpp"
#include "store/result_store.hpp"
#include "topology/named.hpp"
#include "util/thread_pool.hpp"

namespace ipg::resilience {
namespace {

using namespace topology;

// --- Bernoulli failure sampling ---------------------------------------------

TEST(Percolation, SamplingIsAPureFunctionOfSeed) {
  const Graph g = kary_ncube_graph(4, 2);
  const auto a = sample_bernoulli_failures(g, nullptr, false,
                                           FailureMode::kLinks, 0.3, 42);
  const auto b = sample_bernoulli_failures(g, nullptr, false,
                                           FailureMode::kLinks, 0.3, 42);
  EXPECT_EQ(a.dead_links, b.dead_links);
  const auto c = sample_bernoulli_failures(g, nullptr, false,
                                           FailureMode::kLinks, 0.3, 43);
  EXPECT_NE(a.dead_links, c.dead_links);  // 32 links, p=0.3: collision ~ never
}

TEST(Percolation, SamplingEndpoints) {
  const Graph g = ring_graph(8);
  const auto none = sample_bernoulli_failures(g, nullptr, false,
                                              FailureMode::kLinks, 0.0, 1);
  EXPECT_TRUE(none.dead_links.empty());
  const auto all = sample_bernoulli_failures(g, nullptr, false,
                                             FailureMode::kLinks, 1.0, 1);
  EXPECT_EQ(all.dead_links.size(), 8u);  // every undirected ring link
  const auto nodes = sample_bernoulli_failures(g, nullptr, false,
                                               FailureMode::kNodes, 1.0, 1);
  EXPECT_EQ(nodes.dead_nodes.size(), 8u);
  EXPECT_TRUE(nodes.dead_links.empty());
}

TEST(Percolation, OffchipOnlyFilterSparesChipInternalLinks) {
  // 4-ary 2-cube in 4 chips of 4: only inter-chip links are eligible, so
  // p = 1 kills exactly the off-chip links and no chip-internal ones.
  const Graph g = kary_ncube_graph(4, 2);
  const Clustering chips = kary2_block_clustering(4, 2);
  const auto all = sample_bernoulli_failures(g, &chips, true,
                                             FailureMode::kLinks, 1.0, 1);
  EXPECT_FALSE(all.dead_links.empty());
  for (const auto& [a, b] : all.dead_links) {
    EXPECT_TRUE(chips.is_intercluster(a, b)) << a << "-" << b;
  }
}

// --- survivor components ----------------------------------------------------

TEST(Percolation, SurvivorComponentsOnTheRing) {
  const Graph g = ring_graph(6);
  {  // One dead link cannot split a cycle.
    FailureSample s;
    s.dead_links = {{0, 1}};
    const SurvivorComponents comps(g, s);
    EXPECT_TRUE(comps.all_alive_connected());
    EXPECT_EQ(comps.largest_component(), 6u);
    EXPECT_TRUE(comps.same_component(0, 1));
  }
  {  // Two dead links split it: {1,2,3} | {4,5,0}.
    FailureSample s;
    s.dead_links = {{0, 1}, {3, 4}};
    const SurvivorComponents comps(g, s);
    EXPECT_FALSE(comps.all_alive_connected());
    EXPECT_EQ(comps.largest_component(), 3u);
    EXPECT_TRUE(comps.same_component(1, 3));
    EXPECT_FALSE(comps.same_component(1, 4));
  }
  {  // A dead node takes its links with it and is in no component.
    FailureSample s;
    s.dead_nodes = {0};
    const SurvivorComponents comps(g, s);
    EXPECT_EQ(comps.num_alive(), 5u);
    EXPECT_TRUE(comps.all_alive_connected());
    EXPECT_EQ(comps.largest_component(), 5u);
    EXPECT_FALSE(comps.same_component(0, 1));
    EXPECT_FALSE(comps.alive(0));
  }
  {  // Nothing alive: no components, not "connected".
    FailureSample s;
    s.dead_nodes = {0, 1, 2, 3, 4, 5};
    const SurvivorComponents comps(g, s);
    EXPECT_EQ(comps.num_alive(), 0u);
    EXPECT_EQ(comps.largest_component(), 0u);
    EXPECT_FALSE(comps.all_alive_connected());
  }
}

// --- percolation sweep ------------------------------------------------------

struct TestNet {
  sim::SimNetwork net;
  sim::Router router;
};

TestNet kary42() {
  return {mcmp::make_unit_chip_network(kary_ncube_graph(4, 2),
                                       kary2_block_clustering(4, 2), 1.0),
          sim::kary_router(4, 2)};
}

PercolationConfig small_config() {
  PercolationConfig cfg;
  cfg.probabilities = {0.0, 0.2, 0.5};
  cfg.trials = 3;
  cfg.seed = 7;
  cfg.st_samples = 8;
  cfg.rate = 0.05;
  cfg.inject_cycles = 50;
  cfg.sim.packet_length_flits = 4;
  cfg.sim.max_retries = 1;
  cfg.sim.retry_backoff_cycles = 16;
  return cfg;
}

void expect_point_bits(const PercolationPoint& a, const PercolationPoint& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  EXPECT_EQ(bits(a.p), bits(b.p));
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(bits(a.connected_fraction), bits(b.connected_fraction));
  EXPECT_EQ(bits(a.largest_component_fraction),
            bits(b.largest_component_fraction));
  EXPECT_EQ(bits(a.st_reachability), bits(b.st_reachability));
  EXPECT_EQ(bits(a.delivered_fraction), bits(b.delivered_fraction));
  EXPECT_EQ(bits(a.latency_inflation), bits(b.latency_inflation));
  EXPECT_EQ(bits(a.reroute_hops_per_delivered),
            bits(b.reroute_hops_per_delivered));
  EXPECT_EQ(bits(a.retransmits_per_injected), bits(b.retransmits_per_injected));
}

TEST(Percolation, SweepBitIdenticalAcrossThreadCounts) {
  const TestNet t = kary42();
  const auto pattern = sim::uniform_traffic(t.net.num_nodes());
  const PercolationConfig cfg = small_config();
  util::ThreadPool pool1(1);
  util::ThreadPool pool4(4);
  const PercolationCurve serial =
      percolation_sweep(t.net, t.router, pattern, cfg, pool1);
  const PercolationCurve parallel =
      percolation_sweep(t.net, t.router, pattern, cfg, pool4);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.healthy_avg_latency),
            std::bit_cast<std::uint64_t>(parallel.healthy_avg_latency));
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    expect_point_bits(serial.points[i], parallel.points[i]);
  }
}

TEST(Percolation, ZeroProbabilityPointMatchesHealthyService) {
  // p = 0 samples an empty failure set: structure is perfect and every
  // trial delivers everything at the healthy latency (inflation exactly 1).
  const TestNet t = kary42();
  const auto pattern = sim::uniform_traffic(t.net.num_nodes());
  PercolationConfig cfg = small_config();
  cfg.probabilities = {0.0};
  const PercolationCurve curve =
      percolation_sweep(t.net, t.router, pattern, cfg);
  ASSERT_EQ(curve.points.size(), 1u);
  const PercolationPoint& pt = curve.points[0];
  EXPECT_EQ(pt.connected_fraction, 1.0);
  EXPECT_EQ(pt.largest_component_fraction, 1.0);
  EXPECT_EQ(pt.st_reachability, 1.0);
  EXPECT_EQ(pt.delivered_fraction, 1.0);
  EXPECT_EQ(pt.reroute_hops_per_delivered, 0.0);
  EXPECT_EQ(pt.retransmits_per_injected, 0.0);
}

TEST(Percolation, CertainFailureDisconnectsEverything) {
  // p = 1 with unrestricted link deaths: every link is dead, the largest
  // component is a single node and no sampled pair is reachable.
  const TestNet t = kary42();
  const auto pattern = sim::uniform_traffic(t.net.num_nodes());
  PercolationConfig cfg = small_config();
  cfg.probabilities = {1.0};
  cfg.offchip_only = false;
  cfg.with_simulation = false;  // structure-only
  const PercolationCurve curve =
      percolation_sweep(t.net, t.router, pattern, cfg);
  ASSERT_EQ(curve.points.size(), 1u);
  const PercolationPoint& pt = curve.points[0];
  EXPECT_EQ(pt.connected_fraction, 0.0);
  EXPECT_EQ(pt.largest_component_fraction, 1.0 / 16.0);
  EXPECT_EQ(pt.st_reachability, 0.0);
  EXPECT_TRUE(std::isnan(pt.delivered_fraction));
  EXPECT_TRUE(std::isnan(curve.healthy_avg_latency));
}

TEST(Percolation, StructureMetricsDegradeMonotonicallyInP) {
  // Not a theorem per-sample, but with the same trial count the averaged
  // largest-component fraction should not *increase* as p rises across the
  // whole range — a coarse sanity net for the aggregation plumbing.
  const TestNet t = kary42();
  const auto pattern = sim::uniform_traffic(t.net.num_nodes());
  PercolationConfig cfg = small_config();
  cfg.probabilities = {0.0, 0.3, 1.0};
  cfg.trials = 8;
  cfg.with_simulation = false;
  const PercolationCurve curve =
      percolation_sweep(t.net, t.router, pattern, cfg);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_GE(curve.points[0].largest_component_fraction,
            curve.points[1].largest_component_fraction - 0.2);
  EXPECT_GE(curve.points[1].largest_component_fraction,
            curve.points[2].largest_component_fraction);
}

// --- circulant detection ----------------------------------------------------

TEST(Supergraph, CirculantSpecDetection) {
  const auto ring = circulant_spec(ring_graph(6));
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->n, 6u);
  EXPECT_EQ(ring->offsets, (std::vector<std::size_t>{1}));

  const auto complete = circulant_spec(complete_graph(5));
  ASSERT_TRUE(complete.has_value());
  EXPECT_EQ(complete->offsets, (std::vector<std::size_t>{1, 2}));

  // Q3 under the binary labelling is not circulant.
  EXPECT_FALSE(circulant_spec(hypercube_graph(3)).has_value());
}

// --- k-fault supergraphs ----------------------------------------------------

TEST(Supergraph, CirculantWideningShapes) {
  const Supergraph sg = k_fault_supergraph(ring_graph(6), 1);
  EXPECT_EQ(sg.method, "circulant");
  EXPECT_EQ(sg.graph.num_nodes(), 7u);
  EXPECT_EQ(sg.spares, 1u);
  EXPECT_EQ(sg.original_edges, 6u);
  // C7(1,2): 2 offsets x 7 nodes = 14 edges, 8 beyond the ring's 6.
  EXPECT_EQ(sg.graph.num_edges(), 14u);
  EXPECT_EQ(sg.extra_edges, 8u);
  EXPECT_EQ(sg.max_degree, 4u);
}

TEST(Supergraph, UniversalSparesShapes) {
  const Supergraph sg = k_fault_supergraph(hypercube_graph(3), 2);
  EXPECT_EQ(sg.method, "universal-spares");
  EXPECT_EQ(sg.graph.num_nodes(), 10u);
  EXPECT_EQ(sg.extra_edges, 2u * 8u + 1u);  // k*n + C(k,2)
  EXPECT_EQ(sg.max_degree, 9u);             // each spare sees all 9 others
}

TEST(Supergraph, ContainmentHoldsForSmallNuclei) {
  const std::vector<std::pair<const char*, Graph>> nuclei = []() {
    std::vector<std::pair<const char*, Graph>> v;
    v.emplace_back("C6", ring_graph(6));
    v.emplace_back("C8", ring_graph(8));
    v.emplace_back("K4", complete_graph(4));
    v.emplace_back("Q3", hypercube_graph(3));
    return v;
  }();
  for (const auto& [name, g] : nuclei) {
    for (const std::size_t k : {1u, 2u}) {
      const Supergraph sg = k_fault_supergraph(g, k);
      const ContainmentReport report = verify_k_containment(g, sg, k);
      EXPECT_TRUE(report.passed())
          << name << " k=" << k << " " << report.first_failure;
      EXPECT_TRUE(report.exhaustive) << name << " k=" << k;
      EXPECT_GT(report.subsets_checked, 0u);
    }
  }
}

TEST(Supergraph, BoundedDegreeBeatsUniversalSparesOnRings) {
  // The point of the circulant construction: tolerance without hub nodes.
  // Edge counts can go either way at tiny n, but the universal-spare node
  // is adjacent to *everything* while the circulant degree stays flat.
  const Supergraph circ = k_fault_supergraph(ring_graph(8), 1);
  const Supergraph univ = k_fault_universal(ring_graph(8), 1);
  EXPECT_EQ(circ.method, "circulant");
  EXPECT_LT(circ.max_degree, univ.max_degree);  // 4 vs 8
}

TEST(Supergraph, VerifierCatchesAnInsufficientSupergraph) {
  // Negative control: C7 with the *unwidened* offset set {1} is just a
  // bigger ring; deleting one node leaves a path, which cannot contain C6.
  // The verifier must prove that, not assume the construction was right.
  Supergraph bogus;
  bogus.graph = ring_graph(7);
  bogus.original_nodes = 6;
  bogus.spares = 1;
  bogus.original_edges = 6;
  bogus.extra_edges = 1;
  bogus.max_degree = 2;
  bogus.method = "bogus";
  const ContainmentReport report =
      verify_k_containment(ring_graph(6), bogus, 1);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.exhaustive);      // C(7,1) = 7 subsets
  EXPECT_EQ(report.failures, 7u);      // every deletion breaks the cycle
  EXPECT_FALSE(report.first_failure.empty());
}

TEST(Supergraph, SampledVerificationWhenSubsetsExplode) {
  // Force the sampled path with a tiny budget; it must still pass and be
  // flagged non-exhaustive with exactly the budgeted subset count.
  const Graph g = hypercube_graph(3);
  const Supergraph sg = k_fault_supergraph(g, 2);
  const ContainmentReport report =
      verify_k_containment(g, sg, 2, /*max_subsets=*/10, /*seed=*/3);
  EXPECT_TRUE(report.passed());
  EXPECT_FALSE(report.exhaustive);  // C(10,2) = 45 > 10
  EXPECT_EQ(report.subsets_checked, 10u);
}

// --- cached percolation sweeps ----------------------------------------------

// The store-adoption pin: replaying an identical percolation sweep against
// a warm content-addressed cache performs ZERO simulator invocations — the
// router is never called — and yields a bit-identical curve. Trial seeds
// and fault plans are pure functions of the config, so every job's key
// matches on the second run.
TEST(Percolation, WarmCacheReplaysSweepWithZeroRouterInvocations) {
  namespace fs = std::filesystem;
  const TestNet t = kary42();
  const auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  const sim::Router inner = t.router;
  const sim::Router counting = [calls, inner](NodeId s, NodeId d) {
    calls->fetch_add(1, std::memory_order_relaxed);
    return inner(s, d);
  };
  const auto pattern = sim::uniform_traffic(t.net.num_nodes());

  const fs::path root =
      fs::temp_directory_path() / "ipg_resilience_cache_test";
  fs::remove_all(root);
  store::ResultStore st(root);

  PercolationConfig cfg = small_config();
  cfg.cache = &st;
  cfg.router_tag = "canonical:kary42";
  cfg.pattern_tag = "uniform";

  const PercolationCurve cold =
      percolation_sweep(t.net, counting, pattern, cfg);
  EXPECT_GT(calls->load(), 0u);  // the cold pass actually simulated
  const store::StoreStats after_cold = st.stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GT(after_cold.writes, 0u);

  calls->store(0);
  const PercolationCurve warm =
      percolation_sweep(t.net, counting, pattern, cfg);
  EXPECT_EQ(calls->load(), 0u) << "warm replay invoked the simulator";
  const store::StoreStats after_warm = st.stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);  // every job keyed identically
  EXPECT_EQ(after_warm.hits, after_cold.writes);    // one hit per stored job

  EXPECT_EQ(std::bit_cast<std::uint64_t>(cold.healthy_avg_latency),
            std::bit_cast<std::uint64_t>(warm.healthy_avg_latency));
  ASSERT_EQ(cold.points.size(), warm.points.size());
  for (std::size_t i = 0; i < cold.points.size(); ++i) {
    expect_point_bits(cold.points[i], warm.points[i]);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace ipg::resilience
