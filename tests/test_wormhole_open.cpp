// Tests for the open-loop wormhole mode: latency grows with load, the
// engine drains completely, and batch/open agree in the light-load limit.
#include <gtest/gtest.h>

#include "mcmp/capacity.hpp"
#include "sim/wormhole.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

TEST(WormholeOpen, DeliversEverythingAndMeasuresLatency) {
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(5), Clustering::blocks(32, 4), 1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.num_vcs = 2;
  const auto r = run_wormhole_open(net, hypercube_router(5),
                                   uniform_traffic(32), 0.02, 500, cfg);
  EXPECT_GT(r.packets_delivered, 100u);
  EXPECT_GT(r.avg_latency_cycles, 0.0);
  EXPECT_LT(r.avg_latency_cycles, 100.0);  // light load: near-uncontended
}

TEST(WormholeOpen, LatencyGrowsWithLoad) {
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(5), Clustering::blocks(32, 4), 1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.num_vcs = 2;
  const auto lo = run_wormhole_open(net, hypercube_router(5),
                                    uniform_traffic(32), 0.01, 500, cfg);
  const auto hi = run_wormhole_open(net, hypercube_router(5),
                                    uniform_traffic(32), 0.15, 500, cfg);
  EXPECT_GT(hi.avg_latency_cycles, lo.avg_latency_cycles);
}

TEST(WormholeOpen, SuperIpgUnderUnitChipBeatsHypercubeAtEqualLoad) {
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto hnet = mcmp::make_unit_chip_network(hsn->to_graph(),
                                           hsn->nucleus_clustering(), 1.0);
  auto qnet = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.num_vcs = 4;
  const auto h = run_wormhole_open(
      hnet, super_ipg_router(*hsn), uniform_traffic(64), 0.05, 400, cfg,
      super_ipg_vc_classes(hsn->num_nucleus_generators()));
  const auto q = run_wormhole_open(qnet, hypercube_router(6),
                                   uniform_traffic(64), 0.05, 400, cfg);
  EXPECT_LT(h.avg_latency_cycles, q.avg_latency_cycles);
}

}  // namespace
}  // namespace ipg::sim
