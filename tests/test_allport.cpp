// Tests for the all-port emulation scheduler (Theorem 3.8, Figure 1):
// the bound max(2n, l+1) is met across a parameter sweep, schedules
// verify, and the Figure 1b utilization figure (~93%) is reproduced.
#include "emulation/allport.hpp"

#include <gtest/gtest.h>

namespace ipg::emulation {
namespace {

struct LN {
  std::size_t l, n;
};

class AllPortSweep : public ::testing::TestWithParam<LN> {};

TEST_P(AllPortSweep, MeetsTheorem38Bound) {
  const auto [l, n] = GetParam();
  const AllPortSchedule s = build_allport_schedule(l, n);
  EXPECT_EQ(s.makespan, allport_bound(l, n));
  EXPECT_NO_THROW(verify_allport_schedule(s));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPortSweep,
    ::testing::Values(LN{2, 2}, LN{3, 2}, LN{4, 2}, LN{5, 2}, LN{7, 2},
                      LN{9, 2}, LN{2, 3}, LN{3, 3}, LN{4, 3}, LN{5, 3},
                      LN{6, 3}, LN{7, 3}, LN{10, 3}, LN{3, 4}, LN{4, 4},
                      LN{5, 4}, LN{8, 4}, LN{9, 4}, LN{2, 5}, LN{6, 5},
                      LN{11, 5}, LN{12, 6}),
    [](const ::testing::TestParamInfo<LN>& p) {
      return "l" + std::to_string(p.param.l) + "n" + std::to_string(p.param.n);
    });

TEST(AllPort, Figure1a_TwelveDimHpnOn4x3) {
  // Figure 1a: 12-dimensional HPN on a super-IPG with l=4, n=3: 6 steps.
  const AllPortSchedule s = build_allport_schedule(4, 3);
  EXPECT_EQ(s.makespan, 6u);
  EXPECT_EQ(s.num_dims(), 12u);
}

TEST(AllPort, Figure1b_FifteenDimHpnOn5x3_Utilization93Percent) {
  // Figure 1b: 15-dimensional HPN on l=5, n=3: 6 steps; links are "93%
  // used on the average": 39 tasks / (7 link-resources * 6 steps).
  const AllPortSchedule s = build_allport_schedule(5, 3);
  EXPECT_EQ(s.makespan, 6u);
  EXPECT_EQ(s.num_dims(), 15u);
  // Pinned exactly: 39 tasks over 7 resources * 6 rows is representable,
  // so the report must be the paper's figure bit for bit.
  EXPECT_DOUBLE_EQ(s.utilization(), 39.0 / 42.0);
  EXPECT_NEAR(s.utilization(), 0.93, 0.01);
}

TEST(AllPort, SeparateInversesAlsoMeetBound) {
  // complete-CN style: L_i and L_{l-i} are distinct links.
  const AllPortSchedule s = build_allport_schedule(5, 3, /*shared_inverse=*/false);
  EXPECT_EQ(s.makespan, 6u);
  EXPECT_NO_THROW(verify_allport_schedule(s));
}

TEST(AllPort, VerifierCatchesResourceConflicts) {
  AllPortSchedule s = build_allport_schedule(3, 2);
  // Force two nucleus steps of the same generator into one row.
  s.dims[0].nucleus = s.dims[2].nucleus;
  EXPECT_THROW(verify_allport_schedule(s), std::invalid_argument);
}

TEST(AllPort, VerifierCatchesSharedInverseDoubleBooking) {
  // With shared_inverse, S_i and S_i^{-1} are the same physical link, so a
  // row holding both a bring and a restore of the same level double-books
  // it. Hand-build that conflict while keeping every chain constraint
  // (bring < nucleus < restore) intact, so the only violation left is the
  // shared resource.
  AllPortSchedule s = build_allport_schedule(5, 3, /*shared_inverse=*/true);
  ASSERT_TRUE(s.shared_inverse);
  const std::size_t n = s.nucleus_gens;
  bool mutated = false;
  for (std::size_t level = 1; !mutated && level < s.levels; ++level) {
    for (std::size_t i = level * n; !mutated && i < (level + 1) * n; ++i) {
      for (std::size_t j = level * n; !mutated && j < (level + 1) * n; ++j) {
        if (i == j) continue;
        if (s.dims[j].restore < s.dims[i].nucleus &&
            s.dims[j].restore != s.dims[i].bring) {
          s.dims[i].bring = s.dims[j].restore;
          mutated = true;
        }
      }
    }
  }
  ASSERT_TRUE(mutated) << "no row available to stage the conflict";
  EXPECT_THROW(verify_allport_schedule(s), std::invalid_argument);
}

TEST(AllPort, VerifierCatchesChainViolations) {
  AllPortSchedule s = build_allport_schedule(3, 2);
  auto& d = s.dims[3];  // a level-1 dimension
  std::swap(d.bring, d.restore);
  EXPECT_THROW(verify_allport_schedule(s), std::invalid_argument);
}

TEST(AllPort, FigureRenderingContainsAllSteps) {
  const AllPortSchedule s = build_allport_schedule(4, 3);
  const std::string fig = s.to_figure();
  EXPECT_NE(fig.find("N1"), std::string::npos);
  EXPECT_NE(fig.find("S2"), std::string::npos);
  EXPECT_NE(fig.find("S2'"), std::string::npos);
}

TEST(AllPort, RejectsDegenerateParameters) {
  EXPECT_THROW(build_allport_schedule(1, 3), std::invalid_argument);
  EXPECT_THROW(build_allport_schedule(3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ipg::emulation
