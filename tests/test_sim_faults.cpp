// Degraded-mode data plane: live fault injection, fault-aware rerouting,
// retry-with-backoff, drop accounting, and the deadlock-cycle diagnostic.
// Scenarios are small enough to hand-compute: a 6-ring with unit bandwidth
// and 8-flit packets makes every store-and-forward hop cost exactly
// 8 (transfer) + 1 (latency) = 9 cycles. Every run is executed on both
// engines and checked for bit-identical results and packet conservation
// (injected = delivered + dropped + in-flight).
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine_internal.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

/// Bitwise double equality: the engines' contract is bit-identity, and
/// zero-delivery runs legitimately report NaN latencies (NaN != NaN under
/// operator==, but the bit patterns match — both engines produce the same
/// quiet_NaN constant).
void expect_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_same(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_in_flight, b.packets_in_flight);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  expect_bits(a.avg_latency_cycles, b.avg_latency_cycles);
  expect_bits(a.p50_latency_cycles, b.p50_latency_cycles);
  expect_bits(a.p99_latency_cycles, b.p99_latency_cycles);
  expect_bits(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.max_offchip_utilization, b.max_offchip_utilization);
  EXPECT_EQ(a.avg_offchip_utilization, b.avg_offchip_utilization);
  EXPECT_EQ(a.throughput_flits_per_node_cycle, b.throughput_flits_per_node_cycle);
}

void expect_conserved(const SimResult& r) {
  EXPECT_EQ(r.packets_injected,
            r.packets_delivered + r.packets_dropped + r.packets_in_flight);
}

SimNetwork ring_net() {
  return SimNetwork::with_uniform_bandwidth(ring_graph(6),
                                            Clustering::single(6), 1.0);
}

Router ring_router() {
  return table_router(std::make_shared<const Graph>(ring_graph(6)));
}

/// Runs the trace on both engines, checks equivalence + conservation, and
/// returns the arena result for scenario-specific assertions.
SimResult run_both(const SimNetwork& net, const Router& route,
                   std::span<const Injection> trace, SimConfig cfg) {
  cfg.engine = Engine::kArena;
  const auto fast = run_trace(net, route, trace, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_trace(net, route, trace, cfg);
  expect_same(fast, oracle);
  expect_conserved(fast);
  return fast;
}

TEST(SimFaults, MidFlightLinkDeathDetoursWithoutDrops) {
  // Ring is 2-connected, so one dead link can never strand a packet. The
  // packet takes the short way (1 -> 0 -> 5); link (0,5) dies at t=5 while
  // the packet is in flight on its first hop, so it discovers the failure
  // on arrival at node 0 and detours the long way round: 0 -> 1 -> 2 -> 3
  // -> 4 -> 5. Total 6 hops, 4 more than the 1 remaining hop it replaced.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan().fail_link(5.0, 0, 5));
  const std::vector<Injection> trace{{1, 5, 0.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_injected, 1u);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_EQ(r.packets_retransmitted, 0u);
  EXPECT_EQ(r.reroute_hops, 4u);
  EXPECT_EQ(r.avg_hops, 6.0);
  EXPECT_EQ(r.makespan_cycles, 6 * 9.0);
  EXPECT_EQ(r.delivered_fraction, 1.0);
}

TEST(SimFaults, PartitionDropsThenRepairRestoresDelivery) {
  // Killing (0,1) and (3,4) at t=0 splits the ring into {1,2,3} | {4,5,0}.
  // A 1 -> 5 packet at t=1 has no live route and no retry budget: dropped.
  // The (0,1) repair at t=100 reconnects the ring, so the t=200 packet
  // sails through. Exactly half the traffic survives.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.fault_plan = std::make_shared<const FaultPlan>(FaultPlan()
                                                         .fail_link(0.0, 0, 1)
                                                         .fail_link(0.0, 3, 4)
                                                         .repair_link(100.0, 0, 1));
  const std::vector<Injection> trace{{1, 5, 1.0}, {1, 5, 200.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_injected, 2u);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.packets_dropped, 1u);
  EXPECT_EQ(r.delivered_fraction, 0.5);
}

TEST(SimFaults, RetryWithBackoffDeliversAfterTransientFault) {
  // Same partition, repaired at t=64. The packet injects at t=1 and finds
  // no route; with backoff 16 the retries land at t=17 (+16), t=49 (+32),
  // and t=113 (+64). The first two still see the partition, the third runs
  // after the repair and delivers: 3 retransmissions, 0 drops.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.max_retries = 5;
  cfg.retry_backoff_cycles = 16;
  cfg.fault_plan = std::make_shared<const FaultPlan>(FaultPlan()
                                                         .fail_link(0.0, 0, 1)
                                                         .fail_link(0.0, 3, 4)
                                                         .repair_link(64.0, 0, 1)
                                                         .repair_link(64.0, 3, 4));
  const std::vector<Injection> trace{{1, 5, 1.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_injected, 1u);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_EQ(r.packets_retransmitted, 3u);
  EXPECT_EQ(r.delivered_fraction, 1.0);
}

TEST(SimFaults, ExhaustedRetriesDrop) {
  // No repair ever comes: the retry ladder runs dry and the packet drops.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.max_retries = 3;
  cfg.retry_backoff_cycles = 16;
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail_link(0.0, 0, 1).fail_link(0.0, 3, 4));
  const std::vector<Injection> trace{{1, 5, 1.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_dropped, 1u);
  EXPECT_EQ(r.packets_retransmitted, 3u);
  EXPECT_EQ(r.delivered_fraction, 0.0);
  // Nothing was delivered, so every latency statistic must read NaN — a 0
  // would look like perfect latency on a degraded-run curve.
  EXPECT_TRUE(std::isnan(r.avg_latency_cycles));
  EXPECT_TRUE(std::isnan(r.p50_latency_cycles));
  EXPECT_TRUE(std::isnan(r.p99_latency_cycles));
  EXPECT_TRUE(std::isnan(r.max_latency_cycles));
}

TEST(SimFaults, NodeDeathAndRepairRoundTrip) {
  // Killing node 0 severs both its links; a 1 -> 5 packet must go the long
  // way (4 hops). After the node repairs, the same packet takes the short
  // way again (2 hops).
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail_node(0.0, 0).repair_node(500.0, 0));
  const std::vector<Injection> trace{{1, 5, 1.0}, {1, 5, 600.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_delivered, 2u);
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_EQ(r.avg_hops, (4.0 + 2.0) / 2.0);
}

// --- repair paths: back to the healthy arena --------------------------------

TEST(SimFaults, FullyRepairedPlanMatchesHealthyRunOnAllEngines) {
  // The plan's whole drama (kill (0,5), repair it) resolves at t=50, before
  // any packet injects at t >= 60. The memo shards invalidated by the
  // *repair* must hand back the healthy arena's routes: every engine's
  // result is bit-identical to the same trace run with no plan at all.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  const std::vector<Injection> trace{{1, 5, 60.0}, {4, 1, 75.0}, {2, 0, 90.0}};
  const auto healthy = run_trace(net, route, trace, cfg);
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail_link(1.0, 0, 5).repair_link(50.0, 0, 5));
  for (const Engine engine :
       {Engine::kArena, Engine::kReference, Engine::kSharded}) {
    cfg.engine = engine;
    const auto repaired = run_trace(net, route, trace, cfg);
    expect_same(repaired, healthy);
    expect_conserved(repaired);
    // Short-way routes restored: 1->5 and 2->0 are 2 hops, 4->1 is 3.
    EXPECT_EQ(repaired.avg_hops, (2.0 + 3.0 + 2.0) / 3.0);
    EXPECT_EQ(repaired.reroute_hops, 0u);
  }
}

TEST(SimFaults, MidRunFailAndRepairBitIdenticalAcrossEngines) {
  // A link dies mid-run and comes back later, with open-loop traffic
  // straddling both transitions — the memo invalidation on *repair* (not
  // just failure) must replay identically on all three engines.
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(4, 2), kary2_block_clustering(4, 2), 1.0);
  const Router route = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;
  cfg.fault_plan = std::make_shared<const FaultPlan>(FaultPlan()
                                                         .fail_link(40.0, 0, 1)
                                                         .fail_node(60.0, 5)
                                                         .repair_link(120.0, 0, 1)
                                                         .repair_node(160.0, 5));
  const auto pattern = uniform_traffic(net.num_nodes());
  cfg.engine = Engine::kArena;
  const auto arena = run_open(net, route, pattern, 0.08, 250, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(net, route, pattern, 0.08, 250, cfg);
  cfg.engine = Engine::kSharded;
  const auto sharded = run_open(net, route, pattern, 0.08, 250, cfg);
  expect_same(arena, oracle);
  expect_same(sharded, oracle);
  expect_conserved(arena);
  // The fault window must actually have bitten (otherwise this tests
  // nothing): some packet detoured or retried or dropped.
  EXPECT_GT(arena.reroute_hops + arena.packets_retransmitted +
                arena.packets_dropped,
            0u);
}

// --- retry backoff at the overflow frontier ---------------------------------

TEST(SimFaults, RetryBackoffDelayDoublesThenCaps) {
  // Exact doubling up to the exponent cap, then flat.
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 1), 32.0);
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 2), 64.0);
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 3), 128.0);
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 17), 32.0 * 65536.0);
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 18), 32.0 * 65536.0);
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 0xffffffffu), 32.0 * 65536.0);
  // attempt == 0 is treated as the first attempt, not an underflow.
  EXPECT_EQ(detail::retry_backoff_delay(32.0, 0), 32.0);
}

TEST(SimFaults, RetryBackoffDelayStaysFiniteAtExtremes) {
  // A huge base backoff used to overflow to +inf once scaled 2^16-fold
  // (inf event times wedge the queue); the delay now saturates finite.
  const double huge = 1e300;
  for (const std::uint32_t attempt : {1u, 2u, 17u, 1000000u}) {
    const double d = detail::retry_backoff_delay(huge, attempt);
    EXPECT_TRUE(std::isfinite(d)) << attempt;
    EXPECT_EQ(d, detail::kRetryDelayCapCycles);
  }
  EXPECT_TRUE(std::isfinite(
      detail::retry_backoff_delay(std::numeric_limits<double>::max(), 0xffffffffu)));
}

TEST(SimFaults, HugeBackoffAndRetryCountTerminates) {
  // Permanent partition, a retry ladder far past the exponent cap, and a
  // pathological base delay: the run must still terminate with the packet
  // dropped after exactly max_retries finite-time retransmissions.
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.max_retries = 40;  // past detail::kRetryBackoffExpCap = 16
  cfg.retry_backoff_cycles = 1e300;
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan().fail_link(0.0, 0, 1).fail_link(0.0, 3, 4));
  const std::vector<Injection> trace{{1, 5, 1.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_dropped, 1u);
  EXPECT_EQ(r.packets_retransmitted, 40u);
}

TEST(SimFaults, RetriesPastExpCapBitIdenticalAcrossEngines) {
  // Attempts beyond the exponent cap all reuse the same saturated delay;
  // the three engines must agree bit-for-bit on the resulting schedule.
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(4, 2), kary2_block_clustering(4, 2), 1.0);
  const Router route = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.max_retries = 24;
  cfg.retry_backoff_cycles = 2.0;
  // Node 5's corner stays dark the whole run: its packets climb the full
  // retry ladder and drop.
  cfg.fault_plan = std::make_shared<const FaultPlan>(FaultPlan().fail_node(0.0, 5));
  const auto pattern = uniform_traffic(net.num_nodes());
  cfg.engine = Engine::kArena;
  const auto arena = run_open(net, route, pattern, 0.08, 120, cfg);
  cfg.engine = Engine::kReference;
  const auto oracle = run_open(net, route, pattern, 0.08, 120, cfg);
  cfg.engine = Engine::kSharded;
  const auto sharded = run_open(net, route, pattern, 0.08, 120, cfg);
  expect_same(arena, oracle);
  expect_same(sharded, oracle);
  expect_conserved(arena);
  EXPECT_GT(arena.packets_dropped, 0u);
}

// --- deadlock diagnostic ---------------------------------------------------

/// Forces every packet clockwise (ring label 0 = +1), the classic cyclic-
/// wait construction once buffers are bounded.
Router clockwise_router(std::size_t m) {
  return [m](NodeId s, NodeId d) {
    return std::vector<std::size_t>((d + m - s) % m, 0);
  };
}

void expect_deadlock_cycle_message(const std::function<void()>& run) {
  try {
    run();
    FAIL() << "expected a routing-deadlock diagnostic";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("waiting cycle:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("->"), std::string::npos) << msg;
  }
}

TEST(SimFaults, DeadlockDiagnosticNamesTheCycleHealthy) {
  // Six clockwise 3-hop packets with one buffer slot per node: every
  // packet parks waiting for its successor's slot, a full-ring cycle.
  const SimNetwork net = ring_net();
  const Router route = clockwise_router(6);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.node_buffer_packets = 1;
  const std::vector<NodeId> dst{3, 4, 5, 0, 1, 2};
  for (const Engine engine : {Engine::kArena, Engine::kReference}) {
    cfg.engine = engine;
    expect_deadlock_cycle_message(
        [&] { (void)run_batch(net, route, dst, cfg); });
  }
}

TEST(SimFaults, DeadlockDiagnosticNamesTheCycleDegraded) {
  // The fault-aware loop reports the same diagnostic (the plan's only
  // event fires long after the deadlock forms).
  const SimNetwork net = ring_net();
  const Router route = clockwise_router(6);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.node_buffer_packets = 1;
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan().fail_link(1e6, 0, 1));
  const std::vector<NodeId> dst{3, 4, 5, 0, 1, 2};
  for (const Engine engine : {Engine::kArena, Engine::kReference}) {
    cfg.engine = engine;
    expect_deadlock_cycle_message(
        [&] { (void)run_batch(net, route, dst, cfg); });
  }
}

TEST(SimFaults, MaxCyclesCutoffCountsInFlightInsteadOfThrowing) {
  // With a cutoff the same deadlocked run ends cleanly: nothing delivered,
  // nothing dropped, six packets still in flight — conservation holds.
  const SimNetwork net = ring_net();
  const Router route = clockwise_router(6);
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.node_buffer_packets = 1;
  cfg.max_cycles = 5;
  const std::vector<NodeId> dst{3, 4, 5, 0, 1, 2};
  for (const Engine engine : {Engine::kArena, Engine::kReference}) {
    cfg.engine = engine;
    const auto r = run_batch(net, route, dst, cfg);
    EXPECT_EQ(r.packets_delivered, 0u);
    EXPECT_EQ(r.packets_dropped, 0u);
    EXPECT_EQ(r.packets_in_flight, 6u);
    EXPECT_EQ(r.delivered_fraction, 0.0);
    expect_conserved(r);
  }
}

TEST(SimFaults, CutoffUtilizationClampedToOne) {
  // Five identical 1 -> 2 packets injected at t=0 on a 6-ring clustered one
  // node per chip (every link off-chip). All five transfers are scheduled
  // on link (1,2) back to back at t=0 — busy through t=40 — but the run is
  // cut off at max_cycles=10 after a single delivery (t=9). The old
  // summarize() divided the full 40 cycles of busy time by the last
  // delivery (9), reporting a utilization of 40/9 > 4; clamping busy time
  // to the horizon max(9, 10) = 10 yields exactly 1.0 — the link really is
  // saturated for the whole reporting window.
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      ring_graph(6), Clustering::blocks(6, 1), 1.0);
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.max_cycles = 10;
  const std::vector<Injection> trace{
      {1, 2, 0.0}, {1, 2, 0.0}, {1, 2, 0.0}, {1, 2, 0.0}, {1, 2, 0.0}};
  const auto r = run_both(net, route, trace, cfg);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.packets_in_flight, 4u);
  EXPECT_EQ(r.makespan_cycles, 9.0);
  EXPECT_EQ(r.max_offchip_utilization, 1.0);
  EXPECT_LE(r.avg_offchip_utilization, 1.0);
}

// --- sweep determinism under fault plans ------------------------------------

TEST(SimFaults, FaultPlanSweepIdenticalAcrossThreadCounts) {
  const SimNetwork net = SimNetwork::with_uniform_bandwidth(
      kary_ncube_graph(4, 2), kary2_block_clustering(4, 2), 1.0);
  const Router route = kary_router(4, 2);
  SimConfig cfg;
  cfg.packet_length_flits = 4;
  cfg.max_retries = 2;
  cfg.retry_backoff_cycles = 16;
  cfg.max_cycles = 4000;
  std::vector<std::shared_ptr<const FaultPlan>> plans;
  plans.push_back(std::make_shared<const FaultPlan>());  // healthy baseline
  for (const std::uint64_t seed : {3u, 4u}) {
    plans.push_back(std::make_shared<const FaultPlan>(
        FaultPlan::random_link_faults(net.graph(), nullptr, 4, 50.0, 25.0, seed)));
  }
  const auto jobs = fault_plan_sweep(net, route, uniform_traffic(net.num_nodes()),
                                     0.05, 150, plans, cfg);
  util::ThreadPool pool1(1);
  util::ThreadPool pool4(4);
  const auto serial = run_sweep(jobs, pool1);
  const auto parallel = run_sweep(jobs, pool4);
  ASSERT_EQ(serial.size(), plans.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    expect_same(serial[i].result, parallel[i].result);
    expect_conserved(serial[i].result);
  }
}

// --- input validation (fail fast with a clear message) ----------------------

TEST(SimValidation, RejectsBadOpenRates) {
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  const auto pattern = uniform_traffic(net.num_nodes());
  SimConfig cfg;
  EXPECT_THROW((void)run_open(net, route, pattern, -0.1, 10, cfg),
               std::invalid_argument);
  EXPECT_THROW((void)run_open(net, route, pattern,
                              std::numeric_limits<double>::quiet_NaN(), 10, cfg),
               std::invalid_argument);
}

TEST(SimValidation, RejectsZeroPacketLength) {
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  cfg.packet_length_flits = 0;
  const std::vector<NodeId> dst{1, 2, 3, 4, 5, 0};
  EXPECT_THROW((void)run_batch(net, route, dst, cfg), std::invalid_argument);
}

TEST(SimValidation, RejectsZeroBandwidthLinks) {
  EXPECT_THROW(SimNetwork::with_uniform_bandwidth(ring_graph(6),
                                                  Clustering::single(6), 0.0),
               std::invalid_argument);
}

TEST(SimValidation, RejectsOutOfRangeDestinations) {
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  const std::vector<NodeId> dst{1, 2, 3, 4, 5, 99};
  EXPECT_THROW((void)run_batch(net, route, dst, cfg), std::invalid_argument);
}

TEST(SimValidation, RejectsBadTraces) {
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  const std::vector<Injection> self{{2, 2, 0.0}};
  EXPECT_THROW((void)run_trace(net, route, self, cfg), std::invalid_argument);
  const std::vector<Injection> past{{1, 2, -1.0}};
  EXPECT_THROW((void)run_trace(net, route, past, cfg), std::invalid_argument);
}

TEST(SimValidation, RejectsBadFaultPlans) {
  const SimNetwork net = ring_net();
  const Router route = ring_router();
  SimConfig cfg;
  const std::vector<Injection> trace{{1, 5, 0.0}};
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan().fail_link(-1.0, 0, 1));
  EXPECT_THROW((void)run_trace(net, route, trace, cfg), std::invalid_argument);
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan().fail_node(0.0, 99));
  EXPECT_THROW((void)run_trace(net, route, trace, cfg), std::invalid_argument);
  // A link the (6-node ring) network simply doesn't have.
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan().fail_link(0.0, 0, 3));
  EXPECT_THROW((void)run_trace(net, route, trace, cfg), std::invalid_argument);
}

TEST(SimValidation, RandomFaultsRejectOversampling) {
  // The 6-ring has 6 undirected links; asking for 7 must throw.
  EXPECT_THROW(FaultPlan::random_link_faults(ring_graph(6), nullptr, 7, 0.0,
                                             10.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipg::sim
