// Tests for the executed multinode broadcast (Corollary 3.10): delivery
// completeness, the binomial-tree timing on an uncontended hypercube, the
// unit-link-capacity ordering (higher degree wins) and the unit-chip
// reversal (the §4 story, executed).
#include "sim/mnb.hpp"

#include <gtest/gtest.h>

#include "mcmp/capacity.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

TEST(MnbExecution, DeliversAllPairsOnRing) {
  auto net = SimNetwork::with_uniform_bandwidth(ring_graph(8),
                                                Clustering::blocks(8, 1), 1.0);
  const auto r = run_mnb(net);
  EXPECT_EQ(r.deliveries, 8u * 7u);
  // Ring MNB: each directed link carries ~N/2 messages in each direction,
  // plus pipeline depth; makespan is Theta(N).
  EXPECT_GE(r.makespan_cycles, 4.0);
  EXPECT_LE(r.makespan_cycles, 16.0);
}

TEST(MnbExecution, HypercubeScalesAsNOverLogN) {
  // Cor 3.10's ingredient: MNB on Q_n takes Theta(N / n) under unit link
  // capacity with all-port communication.
  double prev_ratio = 0;
  for (unsigned n : {4u, 6u, 8u}) {
    auto net = SimNetwork::with_uniform_bandwidth(
        hypercube_graph(n), Clustering::blocks(std::size_t{1} << n, 1), 1.0);
    const auto r = run_mnb(net);
    const double num_nodes = static_cast<double>(std::size_t{1} << n);
    const double ratio = r.makespan_cycles / (num_nodes / n);
    EXPECT_GT(ratio, 0.5) << n;
    EXPECT_LT(ratio, 8.0) << n;  // bounded constant => Theta(N/n)
    prev_ratio = ratio;
  }
  (void)prev_ratio;
}

TEST(MnbExecution, UnitLinkFavoursTheHypercube) {
  // Under unit link capacity the hypercube's log N ports beat the
  // super-IPG's sqrt(log N) ports — the Cor 3.10 slowdown direction.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  auto hnet = SimNetwork::with_uniform_bandwidth(
      hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
  auto qnet = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  const auto h = run_mnb(hnet);
  const auto q = run_mnb(qnet);
  EXPECT_LT(q.makespan_cycles, h.makespan_cycles);
}

TEST(MnbExecution, UnitChipReversesTheOrdering) {
  // Under unit chip capacity the hypercube's thin off-chip links lose —
  // the §4 headline, executed as an MNB.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  auto hnet = mcmp::make_unit_chip_network(hsn.to_graph(),
                                           hsn.nucleus_clustering(), 1.0);
  auto qnet = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  const auto h = run_mnb(hnet);
  const auto q = run_mnb(qnet);
  EXPECT_LT(h.makespan_cycles, q.makespan_cycles);
}

TEST(MnbExecution, RejectsOversizedNetworks) {
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(11), Clustering::blocks(2048, 2), 1.0);
  EXPECT_THROW(run_mnb(net), std::invalid_argument);
}

}  // namespace
}  // namespace ipg::sim
