// Tier-1 pin of the paper-conformance checker: the full registry must run
// green (any FAIL here is a real divergence between the analytic, the
// constructive, and the measured layer — fix it at the root, never waive
// it), plus pinned regressions for the bugs the checker has caught.
#include "conformance/conformance.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "conformance/families.hpp"
#include "sim/network.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg::conformance {
namespace {

TEST(Conformance, RegistryHasTheDocumentedChecks) {
  const auto& specs = registry();
  ASSERT_EQ(specs.size(), 11u);
  const std::vector<std::string> ids = {
      "intercluster-diameter", "intercluster-average", "bisection-bandwidth",
      "allport-schedule",      "embedding-dilation",   "ascend-descend-steps",
      "sim-latency",           "latency-histogram",    "adaptive-routing",
      "distance-sampling",     "percolation-threshold"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(specs[i].id, ids[i]);
    EXPECT_FALSE(specs[i].claim.empty());
    EXPECT_FALSE(specs[i].theorems.empty());
    EXPECT_TRUE(specs[i].run != nullptr);
  }
}

TEST(Conformance, AllChecksPassAtOneSeed) {
  RunOptions opts;
  opts.seeds = 1;
  const auto results = run_all(opts);
  ASSERT_EQ(results.size(), registry().size());
  for (const auto& r : results) {
    EXPECT_GT(r.instances, 0u) << r.id;
    EXPECT_TRUE(r.passed())
        << r.id << " failed on " << r.failures.front().instance << ": "
        << r.failures.front().detail;
  }
}

TEST(Conformance, SelectedRunAndReportRoundTrip) {
  RunOptions opts;
  opts.seeds = 1;
  const auto results = run_selected({"allport-schedule"}, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, "allport-schedule");

  std::ostringstream report;
  EXPECT_TRUE(print_report(report, results));
  EXPECT_NE(report.str().find("PASS  allport-schedule"), std::string::npos);

  std::ostringstream json;
  write_json(json, results, opts);
  EXPECT_NE(json.str().find("\"schema\": \"ipg-conformance-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"passed\": true"), std::string::npos);

  EXPECT_THROW(run_selected({"no-such-check"}, opts), std::invalid_argument);
}

TEST(Conformance, FailureReportNamesTheMinimalInstance) {
  std::vector<CheckResult> results(1);
  results[0].id = "synthetic";
  results[0].theorems = "Thm 0.0";
  results[0].instances = 3;
  results[0].failures.push_back({"TINY(2)", 1, "value 1 != 2"});
  results[0].failures.push_back({"BIG(9)", 2, "value 3 != 4"});
  std::ostringstream report;
  EXPECT_FALSE(print_report(report, results));
  EXPECT_NE(report.str().find("minimal failing instance: TINY(2)"),
            std::string::npos);
  std::ostringstream json;
  write_json(json, results, RunOptions{});
  EXPECT_NE(json.str().find("\"passed\": false"), std::string::npos);
  EXPECT_NE(json.str().find("TINY(2)"), std::string::npos);
}

// Regression (found by the sim-latency conformance check): SuperIpg::route
// used to emit super-generator steps that fix the current node — an SFN
// flip over equal prefix groups, a rotation of equal remaining groups.
// Such a step is a self-loop, not an arc of to_graph(), so expanding the
// route in the simulator threw "node has no link with the requested
// dimension label". Every routed step must move the walk.
TEST(Conformance, RoutedWordsNeverFixTheCurrentNode) {
  for (const auto& inst :
       plain_family_sweep(3, /*with_directed=*/true,
                          /*with_two_level_classics=*/false)) {
    const auto& s = *inst.ipg;
    if (s.num_nodes() > 64) continue;
    for (topology::NodeId from = 0; from < s.num_nodes(); ++from) {
      for (topology::NodeId to = 0; to < s.num_nodes(); ++to) {
        topology::NodeId cur = from;
        for (const std::size_t g : s.route(from, to)) {
          const topology::NodeId nxt = s.apply(cur, g);
          ASSERT_NE(nxt, cur)
              << inst.name << ": route " << from << "->" << to
              << " applies generator " << g << " as a self-loop at " << cur;
          cur = nxt;
        }
        ASSERT_EQ(cur, to) << inst.name;
      }
    }
  }
}

TEST(Conformance, SfnBatchSimulationAcceptsEveryRoutedWord) {
  // The concrete crasher: SFN routes over equal-content nodes. A full
  // permutation batch through the simulator exercises the dim -> port
  // expansion for every routed word.
  const auto q2 = std::make_shared<topology::HypercubeNucleus>(2);
  const topology::SuperIpg sfn = topology::make_sfn(3, q2);
  const auto net = sim::SimNetwork::with_uniform_bandwidth(
      sfn.to_graph(), sfn.nucleus_clustering(), 1.0);
  util::Xoshiro256 rng(7);
  const auto dst = sim::random_permutation(sfn.num_nodes(), rng);
  sim::SimConfig cfg;
  const auto res =
      sim::run_batch(net, sim::super_ipg_router(sfn), dst, cfg);
  std::size_t expected = 0;
  for (std::size_t v = 0; v < dst.size(); ++v) expected += dst[v] != v;
  EXPECT_EQ(res.packets_delivered, expected);
}

}  // namespace
}  // namespace ipg::conformance
