// Tests for bisection heuristics and the capacity-model link weights that
// feed the §4.2 bisection-bandwidth comparisons.
#include "metrics/bisection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::metrics {
namespace {

using namespace topology;

std::size_t side_count(const std::vector<std::uint8_t>& side, std::uint8_t s) {
  return static_cast<std::size_t>(std::count(side.begin(), side.end(), s));
}

TEST(Bisection, HeuristicFindsHypercubeWidth) {
  // Bisection width of Q_n is 2^(n-1); the heuristic is an upper bound and
  // reliably reaches the optimum on small cubes.
  for (unsigned n : {3u, 4u, 5u}) {
    const Graph g = hypercube_graph(n);
    const auto r = bisection_width_heuristic(g, 12);
    EXPECT_EQ(side_count(r.side, 0), g.num_nodes() / 2);
    EXPECT_DOUBLE_EQ(r.cut, static_cast<double>(1u << (n - 1))) << n;
  }
}

TEST(Bisection, HeuristicFindsRingWidth) {
  const auto r = bisection_width_heuristic(ring_graph(12), 12);
  EXPECT_DOUBLE_EQ(r.cut, 2.0);
}

TEST(Bisection, HeuristicOnTorusMatchesFormula) {
  // k-ary 2-cube bisection width = 2k (k even).
  const auto r = bisection_width_heuristic(kary_ncube_graph(4, 2), 16);
  EXPECT_DOUBLE_EQ(r.cut, 8.0);
}

TEST(Bisection, BalancedSidesAlways) {
  const Graph g = hypercube_graph(5);
  const auto r = bisection_width_heuristic(g, 2);
  EXPECT_EQ(side_count(r.side, 0), 16u);
  EXPECT_EQ(side_count(r.side, 1), 16u);
}

TEST(UnitChipWeights, UniformPerChipBudget) {
  // Q_4 with 4-node chips: each node has 2 off-chip links, each chip has
  // 8 off-chip link-endpoints; per-link bandwidth = 4*w / 8 = w/2.
  const Graph g = hypercube_graph(4);
  const auto c = hypercube_subcube_clustering(4, 4);
  const auto w = unit_chip_arc_weights(g, c, 1.0);
  ASSERT_EQ(w.size(), g.num_arcs());
  std::size_t arc_index = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (c.is_intercluster(v, arc.to)) {
        EXPECT_DOUBLE_EQ(w[arc_index], 0.5);
      } else {
        EXPECT_DOUBLE_EQ(w[arc_index], 0.0);
      }
      ++arc_index;
    }
  }
}

TEST(UnitChipWeights, HsnOffChipLinksAreWiderThanHypercubes) {
  // §4: a 16-node cluster of HSN(3,Q4) has 30 intercluster links vs 128
  // for a 12-cube cluster, so HSN off-chip links are ~4x wider.
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(4));
  const Graph hg = hsn.to_graph();
  const auto hc = hsn.nucleus_clustering();
  const auto hw = unit_chip_arc_weights(hg, hc, 1.0);
  const double hsn_link = *std::max_element(hw.begin(), hw.end());

  const Graph qg = hypercube_graph(12);
  const auto qc = hypercube_subcube_clustering(12, 16);
  const auto qw = unit_chip_arc_weights(qg, qc, 1.0);
  const double q_link = *std::max_element(qw.begin(), qw.end());

  EXPECT_DOUBLE_EQ(hsn_link, 16.0 / 30.0);  // 8w/15 in the paper
  EXPECT_DOUBLE_EQ(q_link, 16.0 / 128.0);   // w/8 in the paper
  EXPECT_NEAR(hsn_link / q_link, 4.27, 0.01);
}

TEST(ClusterBisection, HsnQ2MatchesClosedForm) {
  // HSN(2,Q2): N=16, M=4, l=2. Corollary 4.8: B_B = wNM/(4(l-1)(M-1)) =
  // 16*4/(4*1*3) = 16/3 with w = 1.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(2));
  const Graph g = hsn.to_graph();
  const auto c = hsn.nucleus_clustering();
  const auto w = unit_chip_arc_weights(g, c, 1.0);
  const auto r = cluster_bisection_heuristic(g, c, w, 16);
  EXPECT_NEAR(r.cut, 16.0 / 3.0, 1e-9);
}

TEST(ClusterBisection, RequiresEqualSizeClusters) {
  GraphBuilder b("bad", 3, 1);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  const Graph g = std::move(b).build();
  Clustering c({0, 0, 1}, 2);
  EXPECT_THROW(
      cluster_bisection_heuristic(g, c, unit_link_arc_weights(g)),
      std::invalid_argument);
}

TEST(ClusterBisection, RequiresAtLeastTwoClusters) {
  // A single cluster has no cut at all; reject up front instead of
  // returning a meaningless empty bisection.
  const Graph g = ring_graph(4);
  const Clustering c = Clustering::single(4);
  EXPECT_THROW(
      cluster_bisection_heuristic(g, c, unit_link_arc_weights(g)),
      std::invalid_argument);
}

TEST(ClusterBisection, RequiresEvenClusterCount) {
  // Three equal-size clusters: balanced cluster-respecting halves do not
  // exist, so the heuristic must refuse rather than silently unbalance.
  const Graph g = ring_graph(6);
  const Clustering c({0, 0, 1, 1, 2, 2}, 3);
  EXPECT_THROW(
      cluster_bisection_heuristic(g, c, unit_link_arc_weights(g)),
      std::invalid_argument);
}

TEST(UnitChipWeights, RejectsClusterWithoutOffChipLinks) {
  // Clusters 0 and 1 are joined; cluster 2 is an island with no off-chip
  // link, so its per-link bandwidth share is undefined (division by its
  // zero off-chip link count). Must throw, not divide.
  GraphBuilder b("island", 6, 2);
  b.add_edge(0, 1, 0);  // inside cluster 0
  b.add_edge(2, 3, 0);  // inside cluster 1
  b.add_edge(1, 2, 1);  // cluster 0 <-> cluster 1
  b.add_edge(4, 5, 0);  // inside cluster 2 — never leaves it
  const Graph g = std::move(b).build();
  const Clustering c({0, 0, 1, 1, 2, 2}, 3);
  EXPECT_THROW(unit_chip_arc_weights(g, c, 1.0), std::invalid_argument);
}

TEST(UnitChipWeights, SingleClusterHasNoOffChipLinksAndIsFine) {
  // With one cluster there are no intercluster arcs to weight; the
  // all-zero weight vector is the correct degenerate answer.
  const Graph g = ring_graph(4);
  const auto w = unit_chip_arc_weights(g, Clustering::single(4), 1.0);
  EXPECT_EQ(w.size(), g.num_arcs());
  for (const double x : w) EXPECT_EQ(x, 0.0);
}

TEST(UnitLinkWeights, AllOnes) {
  const Graph g = ring_graph(5);
  const auto w = unit_link_arc_weights(g);
  EXPECT_EQ(w.size(), g.num_arcs());
  for (const double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

}  // namespace
}  // namespace ipg::metrics
