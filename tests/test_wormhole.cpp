// Tests for the flit-level wormhole engine: timing on an uncontended path,
// VC blocking behaviour, buffer limits, fractional bandwidths, deadlock
// freedom of the phase-indexed VC classes on super-IPG routes, and
// agreement with the flow-level engines on aggregate rankings.
#include "sim/wormhole.hpp"

#include <gtest/gtest.h>

#include "mcmp/capacity.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::sim {
namespace {

using namespace topology;

SimNetwork line(double bandwidth, std::size_t nodes = 4) {
  GraphBuilder b("line", nodes, 2);
  for (NodeId v = 0; v + 1 < nodes; ++v) {
    b.add_arc(v, v + 1, 0);
    b.add_arc(v + 1, v, 1);
  }
  return SimNetwork::with_uniform_bandwidth(std::move(b).build(),
                                            Clustering::blocks(nodes, 1),
                                            bandwidth);
}

Router forward_router() {
  return [](NodeId s, NodeId d) {
    return std::vector<std::size_t>(static_cast<std::size_t>(d - s), 0);
  };
}

TEST(Wormhole, UncontendedLatencyIsPipelineDepth) {
  // len flits over k hops at 1 flit/cycle: head takes k cycles, tail
  // arrives at k + len - 1.
  const SimNetwork net = line(1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  std::vector<NodeId> dst{3, 1, 2, 3};
  const auto r = run_wormhole_batch(net, forward_router(), dst, cfg);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_DOUBLE_EQ(r.avg_latency_cycles, 3 + 8 - 1);
  EXPECT_DOUBLE_EQ(r.avg_hops, 3.0);
}

TEST(Wormhole, SingleHopTakesLengthCycles) {
  const SimNetwork net = line(1.0, 2);
  WormholeConfig cfg;
  cfg.packet_length_flits = 5;
  std::vector<NodeId> dst{1, 1};
  const auto r = run_wormhole_batch(net, forward_router(), dst, cfg);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 5.0);
}

TEST(Wormhole, FractionalBandwidthHalvesRate) {
  const SimNetwork net = line(0.5, 2);
  WormholeConfig cfg;
  cfg.packet_length_flits = 4;
  std::vector<NodeId> dst{1, 1};
  const auto r = run_wormhole_batch(net, forward_router(), dst, cfg);
  // One flit every two cycles: tail at ~8.
  EXPECT_NEAR(r.makespan_cycles, 8.0, 1.0);
}

TEST(Wormhole, ContendedLinkSerializesWorms) {
  // Both 0->3 and 1->3 squeeze through links 1->2 and 2->3.
  const SimNetwork net = line(1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  std::vector<NodeId> dst{3, 3, 2, 3};
  const auto r = run_wormhole_batch(net, forward_router(), dst, cfg);
  EXPECT_EQ(r.packets_delivered, 2u);
  // Lower bound: 16 flits over the final link + pipeline fill.
  EXPECT_GE(r.makespan_cycles, 16.0);
}

TEST(Wormhole, TinyBuffersThrottleButDeliver) {
  const SimNetwork net = line(1.0, 6);
  WormholeConfig roomy, tight;
  roomy.packet_length_flits = tight.packet_length_flits = 16;
  roomy.vc_buffer_flits = 16;
  tight.vc_buffer_flits = 1;
  std::vector<NodeId> dst{5, 5, 2, 3, 4, 5};
  const auto a = run_wormhole_batch(net, forward_router(), dst, roomy);
  const auto b = run_wormhole_batch(net, forward_router(), dst, tight);
  EXPECT_EQ(a.packets_delivered, 2u);
  EXPECT_EQ(b.packets_delivered, 2u);
  EXPECT_GE(b.makespan_cycles, a.makespan_cycles);
}

TEST(Wormhole, HypercubePermutationDeliversAll) {
  auto net = SimNetwork::with_uniform_bandwidth(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  util::Xoshiro256 rng(3);
  const auto perm = random_permutation(net.num_nodes(), rng);
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.num_vcs = 2;
  const auto r = run_wormhole_batch(net, hypercube_router(6), perm, cfg);
  EXPECT_GE(r.packets_delivered, 60u);
  EXPECT_GT(r.throughput_flits_per_node_cycle, 0.0);
}

TEST(Wormhole, SuperIpgRoutesWithPhaseVcsAreDeadlockFree) {
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(3, std::make_shared<HypercubeNucleus>(2)));
  auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                          hsn->nucleus_clustering(), 1.0);
  const std::size_t n_nuc = hsn->num_nucleus_generators();
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.num_vcs = 4;  // > l-1 off-chip hops
  cfg.vc_buffer_flits = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Xoshiro256 rng(seed);
    const auto perm = random_permutation(net.num_nodes(), rng);
    const auto r = run_wormhole_batch(net, super_ipg_router(*hsn), perm, cfg,
                                      super_ipg_vc_classes(n_nuc));
    EXPECT_GE(r.packets_delivered, net.num_nodes() - 2);
  }
}

TEST(Wormhole, TooFewVcsIsRejected) {
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(4, std::make_shared<HypercubeNucleus>(2)));
  auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                          hsn->nucleus_clustering(), 1.0);
  const std::size_t n_nuc = hsn->num_nucleus_generators();
  WormholeConfig cfg;
  cfg.num_vcs = 2;  // l-1 = 3 off-chip hops possible
  std::vector<NodeId> dst(net.num_nodes());
  for (NodeId v = 0; v < dst.size(); ++v) {
    dst[v] = static_cast<NodeId>(net.num_nodes() - 1 - v);
  }
  EXPECT_THROW(run_wormhole_batch(net, super_ipg_router(*hsn), dst, cfg,
                                  super_ipg_vc_classes(n_nuc)),
               std::invalid_argument);
}

TEST(Wormhole, RankingMatchesFlowLevelUnderUnitChip) {
  // §1: the super-IPG advantage is switching-independent — the flit-level
  // wormhole ranking agrees with the flow-level SAF ranking.
  const auto hsn = std::make_shared<SuperIpg>(
      make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
  auto hnet = mcmp::make_unit_chip_network(hsn->to_graph(),
                                           hsn->nucleus_clustering(), 1.0);
  auto qnet = mcmp::make_unit_chip_network(
      hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
  WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  cfg.num_vcs = 2;
  const std::size_t n_nuc = hsn->num_nucleus_generators();
  util::Xoshiro256 rng(9);
  const auto perm = random_permutation(64, rng);
  const auto h = run_wormhole_batch(hnet, super_ipg_router(*hsn), perm, cfg,
                                    super_ipg_vc_classes(n_nuc));
  const auto q = run_wormhole_batch(qnet, hypercube_router(6), perm, cfg);
  EXPECT_LT(h.makespan_cycles, q.makespan_cycles);
}

}  // namespace
}  // namespace ipg::sim
