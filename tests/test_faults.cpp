// Tests for fault injection and connectivity analysis (§5's reliability
// virtue): known connectivities of the classic graphs, super-IPG
// survivability under link kills, and disjoint-path counts.
#include "topology/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/distances.hpp"
#include "sim/routers.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg::topology {
namespace {

TEST(Faults, RemoveLinksDropsBothDirections) {
  const Graph g = ring_graph(6);
  const Graph d = remove_links(g, {{0, 1}});
  EXPECT_EQ(d.num_edges(), 5u);
  EXPECT_EQ(d.neighbor(0, 0), kInvalidNode);  // +1 arc gone
  EXPECT_TRUE(is_connected_ignoring_isolated(d));  // still a path
}

TEST(Faults, RemoveNodesIsolates) {
  const Graph g = hypercube_graph(3);
  const Graph d = remove_nodes(g, {0});
  EXPECT_EQ(d.degree(0), 0u);
  EXPECT_TRUE(is_connected_ignoring_isolated(d));  // Q3 minus a vertex
}

TEST(Faults, DisconnectionDetected) {
  const Graph g = ring_graph(6);
  const Graph d = remove_links(g, {{0, 1}, {3, 4}});
  EXPECT_FALSE(is_connected_ignoring_isolated(d));
}

TEST(Faults, HypercubeConnectivityIsN) {
  // Q_n is n-connected: n edge- and node-disjoint paths between any pair.
  for (unsigned n : {3u, 4u}) {
    const Graph g = hypercube_graph(n);
    EXPECT_EQ(edge_disjoint_paths(g, 0, (1u << n) - 1), n) << n;
    EXPECT_EQ(node_disjoint_paths(g, 0, (1u << n) - 1), n) << n;
    EXPECT_EQ(node_disjoint_paths(g, 0, 1), n) << n;  // adjacent pair too
  }
}

TEST(Faults, StarGraphConnectivity) {
  // S_n is (n-1)-connected.
  const Graph g = StarNucleus(4).to_graph();
  EXPECT_EQ(node_disjoint_paths(g, 0, 7), 3u);
}

TEST(Faults, PetersenIsThreeConnected) {
  const Graph g = petersen_graph();
  EXPECT_EQ(node_disjoint_paths(g, 0, 7), 3u);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 7), 3u);
}

TEST(Faults, HsnConnectivityMatchesDegreeBetweenRemoteNodes) {
  // HSN(2,Q3): nodes with distinct super-symbols have degree 4 (nucleus 3
  // + swap) and remote pairs of them enjoy 4 disjoint paths. Nodes with
  // equal super-symbols (x,x) lose the swap link to a self-loop, so pairs
  // involving them cap at 3 — the IPG analogue of corner nodes.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const Graph g = hsn.to_graph();
  const NodeId a = hsn.make_node(std::vector<NodeId>{1, 2});
  const NodeId b = hsn.make_node(std::vector<NodeId>{5, 6});
  EXPECT_EQ(node_disjoint_paths(g, a, b), 4u);
  EXPECT_EQ(node_disjoint_paths(g, 0, static_cast<NodeId>(g.num_nodes() - 1)),
            3u);  // (0,0) and (7,7) both have the self-loop swap
}

TEST(Faults, HsnSurvivesDegreeMinusOneLinkKills) {
  // Kill 3 of node 0's 4 links: the network must stay connected and the
  // table router must still reach every destination from node 0.
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const Graph g = hsn.to_graph();
  std::vector<std::pair<NodeId, NodeId>> dead;
  const auto arcs = g.arcs_of(0);
  for (std::size_t i = 0; i + 1 < arcs.size(); ++i) dead.push_back({0, arcs[i].to});
  auto degraded = std::make_shared<Graph>(remove_links(g, dead));
  EXPECT_TRUE(is_connected_ignoring_isolated(*degraded));
  const auto router = sim::table_router(degraded);
  for (NodeId to = 1; to < degraded->num_nodes(); to += 7) {
    NodeId v = 0;
    for (const auto d : router(0, to)) {
      v = degraded->neighbor(v, static_cast<std::uint16_t>(d));
    }
    ASSERT_EQ(v, to);
  }
}

TEST(Faults, RandomLinkFailuresRarelyDisconnect) {
  // Property sweep: kill 5 random links of HSN(3,Q2) (240 links) 20 times;
  // the graph stays connected every time (connectivity 4 >> 1 fault).
  const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(2));
  const Graph g = hsn.to_graph();
  util::Xoshiro256 rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<NodeId, NodeId>> dead;
    for (int k = 0; k < 5; ++k) {
      const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
      if (g.degree(v) == 0) continue;
      const auto& arc = g.arcs_of(v)[rng.below(g.degree(v))];
      dead.push_back({v, arc.to});
    }
    EXPECT_TRUE(is_connected_ignoring_isolated(remove_links(g, dead)))
        << "trial " << trial;
  }
}

TEST(Faults, MaxKCapsTheSearch) {
  const Graph g = hypercube_graph(4);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 15, 2), 2u);
}

TEST(Faults, KaryTorusConnectivityIsTwoN) {
  // The 4-ary 2-cube is 4-regular and 4-connected (2n for k > 2): the two
  // wrap directions per dimension give four disjoint escapes everywhere.
  const Graph g = kary_ncube_graph(4, 2);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 10), 4u);  // (0,0) -> (2,2), antipodal
  EXPECT_EQ(node_disjoint_paths(g, 0, 10), 4u);
  EXPECT_EQ(node_disjoint_paths(g, 0, 1), 4u);  // adjacent pair too
}

TEST(Faults, CompleteCnConnectivityIsThrottledByClusterExits) {
  // CCN(2, K4): distinct-symbol nodes have degree 4 (3 nucleus generators
  // + one inter-cluster generator), but cluster s contains node (s,s)
  // whose inter-cluster link degenerates to a self-loop, leaving every
  // cluster exactly 3 live exits. Inter-cluster pairs therefore cap at 3
  // disjoint paths — one below the degree.
  const SuperIpg ccn = make_complete_cn(2, std::make_shared<CompleteNucleus>(4));
  const Graph g = ccn.to_graph();
  const NodeId a = ccn.make_node(std::vector<NodeId>{0, 1});
  const NodeId b = ccn.make_node(std::vector<NodeId>{2, 3});
  EXPECT_EQ(g.degree(a), 4u);
  EXPECT_EQ(node_disjoint_paths(g, a, b), 3u);
  EXPECT_EQ(edge_disjoint_paths(g, a, b), 3u);
  const NodeId xx = ccn.make_node(std::vector<NodeId>{2, 2});
  EXPECT_EQ(g.degree(xx), 3u);  // (x,x): the self-loop exit
  EXPECT_EQ(node_disjoint_paths(g, a, xx), 3u);
}

TEST(Faults, IsolatedNodeHasZeroDisjointPaths) {
  const Graph d = remove_nodes(hypercube_graph(3), {0});
  EXPECT_EQ(edge_disjoint_paths(d, 0, 7), 0u);
  EXPECT_EQ(node_disjoint_paths(d, 0, 7), 0u);
}

TEST(Faults, SampleLinksIsDeterministicAndDistinct) {
  const Graph g = kary_ncube_graph(4, 2);
  const auto a = sample_links(g, nullptr, 8, 77);
  const auto b = sample_links(g, nullptr, 8, 77);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(a[i].first, a[i].second);  // canonical orientation
    // The pair is a real edge of the graph.
    bool found = false;
    for (const auto& arc : g.arcs_of(a[i].first)) found |= arc.to == a[i].second;
    EXPECT_TRUE(found) << a[i].first << "-" << a[i].second;
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
}

TEST(Faults, SampleLinksCanRestrictToOffchip) {
  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
  const Graph g = hsn.to_graph();
  const Clustering chips = hsn.nucleus_clustering();
  const auto links = sample_links(g, &chips, 6, 5);
  ASSERT_EQ(links.size(), 6u);
  for (const auto& [u, v] : links) {
    EXPECT_TRUE(chips.is_intercluster(u, v)) << u << "-" << v;
  }
}

TEST(Faults, SampleLinksRejectsOversampling) {
  EXPECT_THROW(sample_links(ring_graph(6), nullptr, 7, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ipg::topology
