// Tests for the concrete nucleus graphs and their generator/dimension
// structure, which everything above (super-IPGs, HPNs, emulation) rests on.
#include "topology/nucleus.hpp"

#include <gtest/gtest.h>

#include "metrics/distances.hpp"

namespace ipg::topology {
namespace {

TEST(HypercubeNucleus, BasicStructure) {
  const HypercubeNucleus q4(4);
  EXPECT_EQ(q4.num_nodes(), 16u);
  EXPECT_EQ(q4.num_generators(), 4u);
  EXPECT_EQ(q4.apply(0b0101, 1), 0b0111u);
  EXPECT_EQ(q4.inverse_generator(2), 2u);
  EXPECT_EQ(q4.num_dimensions(), 4u);
  EXPECT_EQ(q4.radix(0), 2u);
  EXPECT_EQ(q4.digit(0b0100, 2), 1u);
  EXPECT_EQ(q4.with_digit(0b0100, 2, 0), 0u);
  EXPECT_EQ(q4.dim_generator(3, 1), 3u);
}

TEST(HypercubeNucleus, GraphIsQn) {
  const Graph g = HypercubeNucleus(3).to_graph();
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.is_undirected());
  const auto stats = metrics::distance_stats(g);
  EXPECT_EQ(stats.diameter, 3u);
  // Average over ordered pairs incl. self: sum_d d*C(3,d)/8 = 12/8.
  EXPECT_DOUBLE_EQ(stats.average, 1.5);
}

TEST(FoldedHypercubeNucleus, ComplementLinkHalvesDiameter) {
  const FoldedHypercubeNucleus fq4(4);
  EXPECT_EQ(fq4.num_generators(), 5u);
  EXPECT_EQ(fq4.apply(0b0000, 4), 0b1111u);
  const auto stats = metrics::distance_stats(fq4.to_graph());
  EXPECT_EQ(stats.diameter, 2u);  // folded Q_n has diameter ceil(n/2)
}

TEST(CompleteNucleus, EveryPairAdjacent) {
  const CompleteNucleus k5(5);
  EXPECT_EQ(k5.num_generators(), 4u);
  const Graph g = k5.to_graph();
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(metrics::distance_stats(g).diameter, 1u);
  // Generator/inverse pairing: +1 <-> +4, +2 <-> +3.
  EXPECT_EQ(k5.inverse_generator(0), 3u);
  EXPECT_EQ(k5.inverse_generator(1), 2u);
  EXPECT_EQ(k5.apply(k5.apply(2, 0), k5.inverse_generator(0)), 2u);
}

TEST(RingNucleus, CycleStructure) {
  const RingNucleus c6(6);
  EXPECT_EQ(c6.apply(5, 0), 0u);
  EXPECT_EQ(c6.apply(0, 1), 5u);
  EXPECT_EQ(metrics::distance_stats(c6.to_graph()).diameter, 3u);
}

TEST(RingNucleus, TwoNodeRingHasSingleGenerator) {
  const RingNucleus c2(2);
  EXPECT_EQ(c2.num_generators(), 1u);
  EXPECT_EQ(c2.apply(0, 0), 1u);
  EXPECT_EQ(c2.inverse_generator(0), 0u);
}

TEST(GeneralizedHypercube, MixedRadixStructure) {
  // GHC(4,2,3): 24 nodes, generators 3 + 1 + 2 = 6.
  const GeneralizedHypercubeNucleus ghc({4, 2, 3});
  EXPECT_EQ(ghc.num_nodes(), 24u);
  EXPECT_EQ(ghc.num_generators(), 6u);
  EXPECT_EQ(ghc.num_dimensions(), 3u);
  EXPECT_EQ(ghc.radix(0), 4u);
  EXPECT_EQ(ghc.radix(2), 3u);
  // Node 0: add 2 in dimension 0 -> node 2; add 1 in dimension 2 -> +8.
  EXPECT_EQ(ghc.apply(0, ghc.dim_generator(0, 2)), 2u);
  EXPECT_EQ(ghc.apply(0, ghc.dim_generator(2, 1)), 8u);
  // Diameter = number of dimensions (one hop fixes a digit).
  EXPECT_EQ(metrics::distance_stats(ghc.to_graph()).diameter, 3u);
}

TEST(GeneralizedHypercube, InverseGeneratorsRoundTrip) {
  const GeneralizedHypercubeNucleus ghc({4, 8});
  for (std::size_t g = 0; g < ghc.num_generators(); ++g) {
    const NodeId v = 13;
    EXPECT_EQ(ghc.apply(ghc.apply(v, g), ghc.inverse_generator(g)), v) << g;
  }
}

TEST(GeneralizedHypercube, Radix2IsHypercube) {
  const GeneralizedHypercubeNucleus ghc({2, 2, 2});
  const HypercubeNucleus q3(3);
  for (NodeId v = 0; v < 8; ++v) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(ghc.apply(v, ghc.dim_generator(d, 1)), q3.apply(v, d));
    }
  }
}

TEST(Nucleus, RouteReturnsShortestWord) {
  const HypercubeNucleus q4(4);
  const auto word = q4.route(0b0000, 0b1011);
  EXPECT_EQ(word.size(), 3u);  // Hamming distance
  NodeId v = 0;
  for (const auto g : word) v = q4.apply(v, g);
  EXPECT_EQ(v, 0b1011u);
  EXPECT_TRUE(q4.route(5, 5).empty());
}

TEST(Nucleus, RouteOnRingTakesShortSide) {
  const RingNucleus c8(8);
  EXPECT_EQ(c8.route(0, 3).size(), 3u);
  EXPECT_EQ(c8.route(0, 6).size(), 2u);  // wraps backwards
}

}  // namespace
}  // namespace ipg::topology
