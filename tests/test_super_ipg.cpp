// Tests for the tuple-coded SuperIpg — including the proof (by exhaustive
// check on small instances) that it is isomorphic to the generic
// symbol-label IPG of §2, generator by generator.
#include "topology/super_ipg.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/super_generators.hpp"

namespace ipg::topology {
namespace {

std::shared_ptr<const Nucleus> q(unsigned n) {
  return std::make_shared<HypercubeNucleus>(n);
}

// Decodes a generic-IPG label group into a nucleus vertex id, for the two
// nucleus encodings used by core::super_generators.
NodeId decode_hypercube_group(const core::Label& label, std::size_t group,
                              unsigned n) {
  NodeId v = 0;
  for (unsigned b = 0; b < n; ++b) {
    const auto sym = label[group * 2 * n + 2 * b];
    if (sym == 1) v |= NodeId{1} << b;
  }
  return v;
}

NodeId decode_rotation_group(const core::Label& label, std::size_t group,
                             std::size_t m) {
  return static_cast<NodeId>(label[group * m] - 1);
}

struct IsoCase {
  core::SuperGenKind kind;
  SuperFamily family;
};

class SuperIpgIso : public ::testing::TestWithParam<IsoCase> {};

TEST_P(SuperIpgIso, TupleCodingMatchesGenericIpg_HypercubeNucleus) {
  const auto [kind, family] = GetParam();
  const unsigned n = 2;
  const std::size_t l = 3;
  const auto generic = core::build_generic_super_ipg(
      core::hypercube_seed(n), core::hypercube_generators(n), l, kind);
  const SuperIpg tuple(q(n), l, family);
  ASSERT_EQ(generic.num_nodes(), tuple.num_nodes());

  std::unordered_set<NodeId> mapped;
  for (core::NodeId v = 0; v < generic.num_nodes(); ++v) {
    std::vector<NodeId> groups(l);
    for (std::size_t i = 0; i < l; ++i) {
      groups[i] = decode_hypercube_group(generic.labels[v], i, n);
    }
    const NodeId tv = tuple.make_node(groups);
    EXPECT_TRUE(mapped.insert(tv).second) << "mapping not injective";
    for (std::size_t g = 0; g < generic.num_generators(); ++g) {
      const core::NodeId u = generic.neighbor[v][g];
      std::vector<NodeId> ug(l);
      for (std::size_t i = 0; i < l; ++i) {
        ug[i] = decode_hypercube_group(generic.labels[u], i, n);
      }
      EXPECT_EQ(tuple.make_node(ug), tuple.apply(tv, g))
          << "generator " << g << " disagrees at node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SuperIpgIso,
    ::testing::Values(
        IsoCase{core::SuperGenKind::kTranspositions, SuperFamily::kHSN},
        IsoCase{core::SuperGenKind::kRingShifts, SuperFamily::kRingCN},
        IsoCase{core::SuperGenKind::kCompleteShifts, SuperFamily::kCompleteCN},
        IsoCase{core::SuperGenKind::kFlips, SuperFamily::kSFN}));

TEST(SuperIpg, TupleCodingMatchesGenericIpg_CompleteNucleus) {
  // complete-CN(3, K_4) against the generic rotation encoding of K_4.
  const std::size_t m = 4, l = 3;
  const auto generic = core::build_generic_super_ipg(
      core::complete_graph_seed(m), core::complete_graph_generators(m), l,
      core::SuperGenKind::kCompleteShifts);
  const SuperIpg tuple(std::make_shared<CompleteNucleus>(m), l,
                       SuperFamily::kCompleteCN);
  ASSERT_EQ(generic.num_nodes(), tuple.num_nodes());
  for (core::NodeId v = 0; v < generic.num_nodes(); ++v) {
    std::vector<NodeId> groups(l);
    for (std::size_t i = 0; i < l; ++i) {
      groups[i] = decode_rotation_group(generic.labels[v], i, m);
    }
    const NodeId tv = tuple.make_node(groups);
    for (std::size_t g = 0; g < generic.num_generators(); ++g) {
      const core::NodeId u = generic.neighbor[v][g];
      std::vector<NodeId> ug(l);
      for (std::size_t i = 0; i < l; ++i) {
        ug[i] = decode_rotation_group(generic.labels[u], i, m);
      }
      EXPECT_EQ(tuple.make_node(ug), tuple.apply(tv, g));
    }
  }
}

TEST(SuperIpg, NodeCountsAreMPowerL) {
  EXPECT_EQ(make_hsn(3, q(4)).num_nodes(), 4096u);       // HSN(3,Q4)
  EXPECT_EQ(make_hcn(4).num_nodes(), 256u);              // HCN(4,4)
  EXPECT_EQ(make_complete_cn(4, q(2)).num_nodes(), 256u);
  EXPECT_EQ(make_sfn(3, q(3)).num_nodes(), 512u);
  EXPECT_EQ(make_ring_cn(4, q(2)).num_nodes(), 256u);
}

TEST(SuperIpg, RecursiveFamiliesMultiplySizes) {
  // RCC(2, Q_2): (4^2)^2 = 256 nodes. RHSN(2, 3, Q_2): (4^3)^3.
  EXPECT_EQ(make_rcc(2, q(2)).num_nodes(), 256u);
  EXPECT_EQ(make_rhsn(2, 3, q(2)).num_nodes(), 262144u);
}

TEST(SuperIpg, GroupsRoundTripThroughMakeNode) {
  const SuperIpg s = make_hsn(3, q(3));
  const std::vector<NodeId> groups{5, 0, 7};
  const NodeId v = s.make_node(groups);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(s.group(v, i), groups[i]);
  EXPECT_EQ(s.cluster_of(v), v / 8);
}

TEST(SuperIpg, GeneratorsAreInvertible) {
  const SuperIpg s = make_sfn(4, q(2));
  for (std::size_t g = 0; g < s.num_generators(); ++g) {
    const std::size_t inv = s.inverse_generator(g);
    for (NodeId v = 0; v < s.num_nodes(); v += 7) {
      EXPECT_EQ(s.apply(s.apply(v, g), inv), v);
    }
  }
}

TEST(SuperIpg, GraphIsUndirectedForAllFamilies) {
  for (const auto family : {SuperFamily::kHSN, SuperFamily::kRingCN,
                            SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    const SuperIpg s(q(2), 3, family);
    EXPECT_TRUE(s.to_graph().is_undirected()) << family_name(family);
  }
}

TEST(SuperIpg, TSingleDimensionIsTwoForPaperFamilies) {
  // Corollary 3.2: HSN, complete-CN, SFN have t = 2 (slowdown 3).
  EXPECT_EQ(make_hsn(4, q(2)).t_single_dimension(), 2u);
  EXPECT_EQ(make_complete_cn(4, q(2)).t_single_dimension(), 2u);
  EXPECT_EQ(make_sfn(4, q(2)).t_single_dimension(), 2u);
  // ring-CN must walk: worst group is l/2 away, both directions counted.
  EXPECT_EQ(make_ring_cn(4, q(2)).t_single_dimension(), 4u);
}

class SuperIpgRoute : public ::testing::TestWithParam<SuperFamily> {};

TEST_P(SuperIpgRoute, RouteLandsOnDestination) {
  const SuperIpg s(q(2), 3, GetParam());
  // Exhaustive over a deterministic sample of pairs.
  for (NodeId from = 0; from < s.num_nodes(); from += 3) {
    for (NodeId to = 0; to < s.num_nodes(); to += 5) {
      NodeId v = from;
      for (const auto g : s.route(from, to)) v = s.apply(v, g);
      ASSERT_EQ(v, to) << family_name(GetParam()) << " " << from << "->" << to;
    }
  }
}

TEST_P(SuperIpgRoute, RouteInterclusterHopsWithinDiameterBound) {
  const SuperIpg s(q(2), 4, GetParam());
  const auto c = s.nucleus_clustering();
  std::size_t max_hops = 0;
  for (NodeId from = 0; from < s.num_nodes(); from += 17) {
    for (NodeId to = 0; to < s.num_nodes(); to += 13) {
      NodeId v = from;
      std::size_t hops = 0;
      for (const auto g : s.route(from, to)) {
        const NodeId u = s.apply(v, g);
        if (c.is_intercluster(v, u)) ++hops;
        v = u;
      }
      max_hops = std::max(max_hops, hops);
    }
  }
  // The canonical router uses at most l-1 intercluster hops for HSN/SFN
  // and at most l for the CNs (cycle closure).
  EXPECT_LE(max_hops, s.levels());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuperIpgRoute,
                         ::testing::Values(SuperFamily::kHSN,
                                           SuperFamily::kRingCN,
                                           SuperFamily::kCompleteCN,
                                           SuperFamily::kSFN));

TEST(SuperIpg, RouteOfRecursiveFamilyWorks) {
  const SuperIpg s = make_rcc(2, q(2));
  for (NodeId from = 0; from < s.num_nodes(); from += 31) {
    for (NodeId to = 0; to < s.num_nodes(); to += 29) {
      NodeId v = from;
      for (const auto g : s.route(from, to)) v = s.apply(v, g);
      ASSERT_EQ(v, to);
    }
  }
}

TEST(SuperIpg, NamesAreDescriptive) {
  EXPECT_EQ(make_hsn(3, q(4)).name(), "HSN(3,Q4)");
  EXPECT_EQ(make_complete_cn(4, q(2)).name(), "complete-CN(4,Q2)");
  EXPECT_EQ(make_rcc(2, q(2)).name(), "HSN(2,HSN(2,Q2))");
}

TEST(SuperIpg, RejectsBadArguments) {
  EXPECT_THROW(SuperIpg(nullptr, 3, SuperFamily::kHSN), std::invalid_argument);
  EXPECT_THROW(SuperIpg(q(2), 1, SuperFamily::kHSN), std::invalid_argument);
  EXPECT_THROW(SuperIpg(q(4), 16, SuperFamily::kHSN), std::invalid_argument);
}

}  // namespace
}  // namespace ipg::topology
