// Capstone integration test: the paper's full §4 comparison executed on
// one pair of machines built from identical chips — HSN(2,Q4) vs Q8 with
// 16-node chips — asserting every axis the paper claims, end to end:
// fewer off-chip links per node, wider links, shorter intercluster
// distances, higher bisection bandwidth, fewer off-chip FFT steps, higher
// simulated throughput (all three switching models), faster executed MNB
// and TE. Plus small coverage gaps: FFT on the directed CN and the
// GHC-factor HPN baseline machine.
#include <gtest/gtest.h>

#include "algorithms/fft.hpp"
#include "mcmp/capacity.hpp"
#include "metrics/costs.hpp"
#include "metrics/distances.hpp"
#include "sim/mnb.hpp"
#include "sim/simulator.hpp"
#include "sim/wormhole.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"

namespace ipg {
namespace {

using namespace topology;

class Paper44Story : public ::testing::Test {
 protected:
  void SetUp() override {
    hsn = std::make_shared<SuperIpg>(
        make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
    hsn_graph = std::make_shared<Graph>(hsn->to_graph());
    hsn_chips = hsn->nucleus_clustering();
    q_graph = std::make_shared<Graph>(hypercube_graph(8));
    q_chips = hypercube_subcube_clustering(8, 16);
  }

  std::shared_ptr<SuperIpg> hsn;
  std::shared_ptr<Graph> hsn_graph;
  Clustering hsn_chips;
  std::shared_ptr<Graph> q_graph;
  Clustering q_chips;
};

TEST_F(Paper44Story, StructuralAxes) {
  const auto hc = metrics::compute_costs(*hsn_graph, hsn_chips);
  const auto qc = metrics::compute_costs(*q_graph, q_chips);
  EXPECT_LT(hc.intercluster_degree, qc.intercluster_degree / 3);
  EXPECT_LT(hc.intercluster_diameter, qc.intercluster_diameter);
  EXPECT_LT(hc.avg_intercluster_distance, qc.avg_intercluster_distance / 2);
  EXPECT_LT(hc.ii_cost, qc.ii_cost / 4);

  const auto hl = mcmp::chip_link_stats(*hsn_graph, hsn_chips, 1.0);
  const auto ql = mcmp::chip_link_stats(*q_graph, q_chips, 1.0);
  EXPECT_GT(hl.offchip_link_bandwidth, ql.offchip_link_bandwidth * 3);

  const double hbb = mcmp::hsn_bisection_bandwidth(1.0, 256, 16, 2);
  const double qbb = mcmp::hypercube_bisection_bandwidth(1.0, 256, 16);
  EXPECT_GT(hbb, qbb * 2);
}

TEST_F(Paper44Story, AlgorithmAxes) {
  util::Xoshiro256 rng(123);
  std::vector<algorithms::Complex> x(256);
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto hrun = algorithms::fft_on_super_ipg(*hsn, x);
  const Hpn q8(std::make_shared<HypercubeNucleus>(4), 2);
  const auto qrun = algorithms::fft_on_hpn(q8, q_chips, x);
  // Both correct...
  const auto ref = algorithms::dft_reference(x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(hrun.output[i] - ref[i]), 0.0, 1e-7);
    ASSERT_NEAR(std::abs(qrun.output[i] - ref[i]), 0.0, 1e-7);
  }
  // ...and the HSN pays half the off-chip steps (2 vs 4).
  EXPECT_EQ(hrun.counts.offchip_steps, 2u);
  EXPECT_EQ(qrun.counts.offchip_steps, 4u);
}

TEST_F(Paper44Story, SimulatedAxes) {
  auto hnet = mcmp::make_unit_chip_network(Graph(*hsn_graph), hsn_chips, 1.0);
  auto qnet = mcmp::make_unit_chip_network(Graph(*q_graph), q_chips, 1.0);
  const auto hrouter = sim::super_ipg_router(*hsn);
  const auto qrouter = sim::hypercube_router(8);

  util::Xoshiro256 rng(321);
  const auto perm = sim::random_permutation(256, rng);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 16;

  // Store-and-forward.
  const auto hs = sim::run_batch(hnet, hrouter, perm, cfg);
  const auto qs = sim::run_batch(qnet, qrouter, perm, cfg);
  EXPECT_GT(hs.throughput_flits_per_node_cycle,
            qs.throughput_flits_per_node_cycle * 2);

  // Cut-through.
  sim::SimConfig vct = cfg;
  vct.switching = sim::Switching::kVirtualCutThrough;
  const auto hv = sim::run_batch(hnet, hrouter, perm, vct);
  const auto qv = sim::run_batch(qnet, qrouter, perm, vct);
  EXPECT_GT(hv.throughput_flits_per_node_cycle,
            qv.throughput_flits_per_node_cycle * 2);

  // Flit-level wormhole.
  sim::WormholeConfig wc;
  wc.packet_length_flits = 16;
  const auto hw = sim::run_wormhole_batch(
      hnet, hrouter, perm, wc,
      sim::super_ipg_vc_classes(hsn->num_nucleus_generators()));
  const auto qw = sim::run_wormhole_batch(qnet, qrouter, perm, wc);
  EXPECT_GT(hw.throughput_flits_per_node_cycle,
            qw.throughput_flits_per_node_cycle * 1.5);

  // Executed MNB and TE.
  EXPECT_LT(sim::run_mnb(hnet).makespan_cycles,
            sim::run_mnb(qnet).makespan_cycles);
  sim::SimConfig te = cfg;
  te.packet_length_flits = 4;
  EXPECT_LT(sim::run_total_exchange(hnet, hrouter, te).makespan_cycles,
            sim::run_total_exchange(qnet, qrouter, te).makespan_cycles);
}

// --- small coverage gaps -----------------------------------------------------

TEST(CoverageGaps, FftOnDirectedCn) {
  const SuperIpg dcn = make_directed_cn(3, std::make_shared<HypercubeNucleus>(2));
  util::Xoshiro256 rng(5);
  std::vector<algorithms::Complex> x(dcn.num_nodes());
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto run = algorithms::fft_on_super_ipg(dcn, x);
  const auto ref = algorithms::dft_reference(x);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(std::abs(run.output[i] - ref[i]), 0.0, 1e-8);
  }
  // Directed CN: one forward shift per level + one to close = l supers.
  EXPECT_EQ(run.counts.offchip_steps, dcn.levels());
}

TEST(CoverageGaps, HpnMachineWithGhcFactor) {
  // HPN(2, K_4) baseline machine: radix-4 dimension gathers.
  const Hpn h(std::make_shared<CompleteNucleus>(4), 2);
  emulation::HpnMachine<int> m(h, Clustering::blocks(16, 4),
                               std::vector<int>(16, 1));
  auto sum_all = [](std::span<const std::size_t>, std::span<int> v) {
    int total = 0;
    for (const int x : v) total += x;
    for (int& x : v) x = total;
  };
  m.step_dimension(0, 0, sum_all);
  m.step_dimension(1, 0, sum_all);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(m.value_at_node(v), 16);
  EXPECT_EQ(m.counts().compute_steps, 6u);  // (4-1) per dimension step
}

}  // namespace
}  // namespace ipg
