// Command-line topology explorer: build any of the paper's families and
// print its structural and MCMP metrics.
//
//   topology_explorer <family> <levels> <nucleus> [--dot]
//     family:  hsn | ring-cn | complete-cn | sfn | rcc | hcn
//     nucleus: q<k> (hypercube) | fq<k> (folded) | k<m> (complete) |
//              c<m> (ring) | s<n> (star)
//     --dot:   also print a Graphviz rendering with chip clusters
//   e.g.  topology_explorer hsn 3 q4
//         topology_explorer complete-cn 4 k5
//         topology_explorer rcc 2 q3
//         topology_explorer hsn 2 s4 --dot | dot -Tsvg > net.svg
#include <iostream>
#include <memory>
#include <string>

#include "metrics/distances.hpp"
#include "metrics/supergen_words.hpp"
#include "topology/dot.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg::topology;

std::shared_ptr<const Nucleus> parse_nucleus(const std::string& spec) {
  if (spec.size() < 2) throw std::invalid_argument("bad nucleus spec: " + spec);
  if (spec.rfind("fq", 0) == 0) {
    return std::make_shared<FoldedHypercubeNucleus>(
        static_cast<unsigned>(std::stoul(spec.substr(2))));
  }
  const auto arg = std::stoul(spec.substr(1));
  switch (spec[0]) {
    case 'q': return std::make_shared<HypercubeNucleus>(static_cast<unsigned>(arg));
    case 'k': return std::make_shared<CompleteNucleus>(arg);
    case 'c': return std::make_shared<RingNucleus>(arg);
    case 's': return std::make_shared<StarNucleus>(static_cast<unsigned>(arg));
    default: throw std::invalid_argument("bad nucleus spec: " + spec);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "hsn", nucleus_spec = "q3";
  std::size_t levels = 3;
  if (argc >= 4) {
    family = argv[1];
    levels = std::stoul(argv[2]);
    nucleus_spec = argv[3];
  } else {
    std::cout << "usage: " << (argc ? argv[0] : "topology_explorer")
              << " <hsn|ring-cn|complete-cn|sfn|rcc|hcn> <levels> "
                 "<q4|fq3|k5|c6>\n(showing the default hsn 3 q3)\n\n";
  }

  std::shared_ptr<const Nucleus> nucleus = parse_nucleus(nucleus_spec);
  std::unique_ptr<SuperIpg> net;
  if (family == "hsn") {
    net = std::make_unique<SuperIpg>(make_hsn(levels, nucleus));
  } else if (family == "ring-cn") {
    net = std::make_unique<SuperIpg>(make_ring_cn(levels, nucleus));
  } else if (family == "complete-cn") {
    net = std::make_unique<SuperIpg>(make_complete_cn(levels, nucleus));
  } else if (family == "sfn") {
    net = std::make_unique<SuperIpg>(make_sfn(levels, nucleus));
  } else if (family == "rcc") {
    net = std::make_unique<SuperIpg>(make_rcc(levels, nucleus));
  } else if (family == "hcn") {
    net = std::make_unique<SuperIpg>(make_hsn(2, nucleus));
  } else {
    std::cerr << "unknown family: " << family << '\n';
    return 1;
  }

  const Graph g = net->to_graph();
  const Clustering chips = base_nucleus_clustering(*net);
  const auto census = census_links(g, chips);
  const bool small = g.num_nodes() <= 100'000;
  const auto stats = ipg::metrics::distance_stats(g, small ? 0 : 32);
  const auto ic = ipg::metrics::intercluster_stats(g, chips, small ? 0 : 32);

  ipg::util::Table t(net->name());
  t.header({"metric", "value"});
  t.add("nodes", net->num_nodes());
  t.add("generators / node", net->num_generators());
  t.add("max degree", g.max_degree());
  t.add("edges", g.num_edges());
  t.add("chips (base nuclei)", chips.num_clusters());
  t.add("off-chip links per node", census.avg_offchip_per_node);
  t.add("diameter", stats.diameter);
  t.add("average distance", stats.average);
  t.add("intercluster diameter", ic.diameter);
  t.add("average intercluster distance", ic.average);
  if (net->levels() <= 7 && !net->nucleus().as_super_ipg()) {
    const auto words = ipg::metrics::analyze_supergen_words(*net);
    t.add("t (Thm 4.1)", words.t_visit_all);
    t.add("t_S (Thm 4.3, symmetric)", words.t_symmetric);
  }
  t.print(std::cout);

  if (argc >= 5 && std::string(argv[4]) == "--dot") {
    if (g.num_nodes() <= 2000) {
      std::cout << '\n' << to_dot(g, &chips);
    } else {
      std::cerr << "(graph too large for DOT output)\n";
    }
  }
  return 0;
}
