// Scenario: a network architect explores the MCMP design space — given a
// chip that can hold M nodes, which interconnect should tie the chips
// together? Sweeps families and chip sizes, reporting the §4 decision
// metrics (pins, off-chip link width, intercluster distance, bisection
// bandwidth) plus simulated random-routing throughput.
#include <array>
#include <cstdint>
#include <iostream>
#include <memory>

#include "mcmp/capacity.hpp"
#include "metrics/distances.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;

double simulate_throughput(const Graph& g, const Clustering& chips,
                           const sim::Router& router) {
  auto net = mcmp::make_unit_chip_network(Graph(g), Clustering(chips), 1.0);
  sim::SimConfig cfg;
  cfg.packet_length_flits = 16;
  constexpr std::array<std::uint64_t, 4> kSeeds{501, 502, 503, 504};
  // Replicate progress on stderr; the design-space table owns stdout.
  sim::StreamSweepProgress progress(std::cerr);
  const auto outcomes =
      sim::run_sweep(sim::batch_replicate_sweep(net, router, kSeeds, cfg),
                     util::ThreadPool::global(), &progress);
  return sim::mean_of(outcomes,
                      &sim::SimResult::throughput_flits_per_node_cycle);
}

}  // namespace

int main() {
  std::cout << "MCMP design-space sweep: 256 nodes from 16-node chips, "
               "per-node off-chip budget w = 1.\n\n";

  util::Table t;
  t.header({"design", "off-chip links/node", "link width", "avg IC distance",
            "bisection BW", "sim throughput"});

  const auto q4 = std::make_shared<HypercubeNucleus>(4);

  // Candidate 1: HSN(2, Q4).
  {
    auto s = std::make_shared<SuperIpg>(make_hsn(2, q4));
    const Graph g = s->to_graph();
    const auto chips = s->nucleus_clustering();
    const auto census = census_links(g, chips);
    const auto stats = metrics::intercluster_stats(g, chips);
    const auto link = mcmp::chip_link_stats(g, chips, 1.0);
    t.add(s->name(), census.avg_offchip_per_node, link.offchip_link_bandwidth,
          stats.average, mcmp::hsn_bisection_bandwidth(1.0, 256, 16, 2),
          simulate_throughput(g, chips, sim::super_ipg_router(*s)));
  }
  // Candidate 2: SFN(2, Q4) (same two-level shape, flip links).
  {
    auto s = std::make_shared<SuperIpg>(make_sfn(2, q4));
    const Graph g = s->to_graph();
    const auto chips = s->nucleus_clustering();
    const auto census = census_links(g, chips);
    const auto stats = metrics::intercluster_stats(g, chips);
    const auto link = mcmp::chip_link_stats(g, chips, 1.0);
    t.add(s->name(), census.avg_offchip_per_node, link.offchip_link_bandwidth,
          stats.average, mcmp::hsn_bisection_bandwidth(1.0, 256, 16, 2),
          simulate_throughput(g, chips, sim::super_ipg_router(*s)));
  }
  // Candidate 3: 8-dimensional hypercube.
  {
    const Graph g = hypercube_graph(8);
    const auto chips = hypercube_subcube_clustering(8, 16);
    const auto census = census_links(g, chips);
    const auto stats = metrics::intercluster_stats(g, chips);
    const auto link = mcmp::chip_link_stats(g, chips, 1.0);
    t.add("Q8", census.avg_offchip_per_node, link.offchip_link_bandwidth,
          stats.average, mcmp::hypercube_bisection_bandwidth(1.0, 256, 16),
          simulate_throughput(g, chips, sim::hypercube_router(8)));
  }
  // Candidate 4: 16-ary 2-cube.
  {
    const Graph g = kary_ncube_graph(16, 2);
    const auto chips = kary2_block_clustering(16, 4);
    const auto census = census_links(g, chips);
    const auto stats = metrics::intercluster_stats(g, chips);
    const auto link = mcmp::chip_link_stats(g, chips, 1.0);
    t.add("16-ary 2-cube", census.avg_offchip_per_node,
          link.offchip_link_bandwidth, stats.average,
          mcmp::kary2_bisection_bandwidth(1.0, 256, 16),
          simulate_throughput(g, chips, sim::kary_router(16, 2)));
  }
  t.print(std::cout);

  std::cout << "\nReading the table the paper's way (§4.2): fewer off-chip "
               "links per node -> wider links and fewer pins; lower average "
               "intercluster distance -> fewer off-chip transmissions; both "
               "drive the throughput column. The two-level super-IPGs "
               "dominate every column.\n";
  return 0;
}
