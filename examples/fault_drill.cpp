// Scenario: an operator's fault drill. Links of an HSN(2,Q4) MCMP die one
// by one; after each failure we re-measure connectivity, reroute around
// the damage with shortest-path tables, and re-run the random-routing
// workload to quantify the degradation — exercising the reliability
// properties §5 credits to these topologies.
#include <iostream>
#include <memory>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "topology/faults.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;

  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(4));
  const Graph healthy = hsn.to_graph();
  const Clustering chips = hsn.nucleus_clustering();

  std::cout << "Fault drill on " << hsn.name() << " (" << healthy.num_nodes()
            << " nodes, " << healthy.num_edges() << " links).\n";
  {
    const NodeId a = hsn.make_node(std::vector<NodeId>{3, 9});
    const NodeId b = hsn.make_node(std::vector<NodeId>{12, 6});
    std::cout << "Baseline connectivity between two remote nodes: "
              << node_disjoint_paths(healthy, a, b)
              << " node-disjoint paths.\n\n";
  }

  util::Table t;
  t.header({"dead links", "connected", "avg latency (cycles)",
            "throughput (flits/node/cyc)", "delivered"});

  util::Xoshiro256 rng(99);
  std::vector<std::pair<NodeId, NodeId>> dead;
  for (int round = 0; round <= 4; ++round) {
    if (round > 0) {
      // Kill two more random links per round — prefer off-chip ones, the
      // scarce resource.
      for (int k = 0; k < 2; ++k) {
        for (int attempts = 0; attempts < 100; ++attempts) {
          const auto v = static_cast<NodeId>(rng.below(healthy.num_nodes()));
          const auto& arcs = healthy.arcs_of(v);
          if (arcs.empty()) continue;
          const auto& arc = arcs[rng.below(arcs.size())];
          if (chips.is_intercluster(v, arc.to)) {
            dead.push_back({v, arc.to});
            break;
          }
        }
      }
    }
    auto degraded = std::make_shared<Graph>(remove_links(healthy, dead));
    const bool connected = is_connected_ignoring_isolated(*degraded);
    if (!connected) {
      t.add(dead.size(), false, "-", "-", "-");
      continue;
    }
    auto net = mcmp::make_unit_chip_network(Graph(*degraded),
                                            Clustering(chips), 1.0);
    const auto router = sim::table_router(degraded);
    util::Xoshiro256 perm_rng(7);
    const auto perm = sim::random_permutation(net.num_nodes(), perm_rng);
    sim::SimConfig cfg;
    cfg.packet_length_flits = 16;
    const auto r = sim::run_batch(net, router, perm, cfg);
    t.add(dead.size(), true, r.avg_latency_cycles,
          r.throughput_flits_per_node_cycle, r.packets_delivered);
  }
  t.print(std::cout);
  std::cout << "\nThe network absorbs several off-chip link failures with "
               "graceful throughput degradation — the redundancy of the "
               "super-generator links plus the nucleus connectivity.\n";
  return 0;
}
