// Scenario: an operator's fault drill, live edition. One continuous
// open-loop workload runs on an HSN(2,Q4) MCMP while a scripted FaultPlan
// kills an off-chip link every 400 cycles — packets already in flight
// discover the failures at the hop that died and detour over the live
// subgraph, and packets stranded by a partition retry from their source
// with exponential backoff. The table snapshots the same continuous run at
// each epoch boundary (runs are deterministic, so each row is a prefix of
// the next) to show the degradation unfolding: delivered fraction, drops,
// retransmissions, and extra reroute hops — the reliability properties §5
// credits to these topologies, now measured in motion.
//
// Pass `--trace out.json` to record the full-drain run as Chrome
// trace_event JSON (docs/OBSERVABILITY.md) — load the file in
// chrome://tracing or https://ui.perfetto.dev to scrub through every hop,
// detour, retry, and fault on per-node/per-link tracks.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/fault_plan.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "topology/faults.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ipg;
  using namespace ipg::topology;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: fault_drill [--trace out.json]\n";
      return 2;
    }
  }

  const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(4));
  const Graph g = hsn.to_graph();
  const Clustering chips = hsn.nucleus_clustering();
  const auto net = mcmp::make_unit_chip_network(Graph(g), Clustering(chips), 1.0);
  const sim::Router router = [&hsn](NodeId s, NodeId d) {
    return hsn.route(s, d);
  };

  // One off-chip link (the scarce resource) dies at t=400, 800, ..., 3200.
  constexpr double kEpoch = 400;
  constexpr std::size_t kKills = 8;
  const auto plan = std::make_shared<const sim::FaultPlan>(
      sim::FaultPlan::random_link_faults(g, &chips, kKills, kEpoch, kEpoch, 99));

  std::cout << "Live fault drill on " << hsn.name() << " (" << g.num_nodes()
            << " nodes, " << g.num_edges() << " links, "
            << chips.num_clusters() << " chips).\n"
            << "An off-chip link dies every " << kEpoch
            << " cycles while a uniform open-loop load runs; stranded "
               "packets retry from source with exponential backoff.\n\n";

  sim::SimConfig cfg;
  cfg.packet_length_flits = 16;
  cfg.max_retries = 3;
  cfg.retry_backoff_cycles = 32;
  cfg.fault_plan = plan;
  const auto pattern = sim::uniform_traffic(net.num_nodes());
  constexpr double kRate = 0.05;
  constexpr std::size_t kInjectCycles = 3200;

  util::Table t;
  t.header({"t (cycles)", "dead links", "delivered", "dropped", "retx",
            "reroute hops", "in flight", "delivered frac"});
  for (std::size_t epoch = 1; epoch <= kKills + 1; ++epoch) {
    sim::SimConfig snap = cfg;
    snap.max_cycles = kEpoch * static_cast<double>(epoch);
    const auto r =
        sim::run_open(net, router, pattern, kRate, kInjectCycles, snap);
    std::size_t dead = 0;
    for (const auto& e : plan->events()) dead += e.time <= snap.max_cycles;
    t.add(snap.max_cycles, dead, r.packets_delivered, r.packets_dropped,
          r.packets_retransmitted, r.reroute_hops, r.packets_in_flight,
          r.delivered_fraction);
  }
  // Full drain: no cutoff — every packet either delivers or exhausts its
  // retries. This is the run the optional Chrome trace records.
  sim::ChromeTraceObserver trace;
  if (!trace_path.empty()) cfg.observer = &trace;
  const auto final =
      sim::run_open(net, router, pattern, kRate, kInjectCycles, cfg);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 1;
    }
    trace.write_json(out);
    std::cerr << "wrote " << trace.num_events() << " trace events to "
              << trace_path << (trace.truncated() ? " (truncated)" : "")
              << "\n";
  }
  t.add("drain", kKills, final.packets_delivered, final.packets_dropped,
        final.packets_retransmitted, final.reroute_hops,
        final.packets_in_flight, final.delivered_fraction);
  t.print(std::cout);

  sim::SimConfig healthy_cfg;
  healthy_cfg.packet_length_flits = 16;
  const auto healthy =
      sim::run_open(net, router, pattern, kRate, kInjectCycles, healthy_cfg);
  std::cout << "\nHealthy baseline: " << healthy.packets_delivered
            << " delivered, avg latency " << healthy.avg_latency_cycles
            << " cycles.\nDegraded drain:   " << final.packets_delivered
            << " delivered, avg latency " << final.avg_latency_cycles
            << " cycles, " << final.reroute_hops << " detour hops.\n"
            << "The super-generator redundancy keeps the delivered fraction "
            << "near 1 while routes bend around " << kKills
            << " dead off-chip links.\n";
  return 0;
}
