// Quickstart: the public API in one file.
//
// Builds an index-permutation graph from scratch (the paper's §2 example),
// then a hierarchical swap network HSN(3,Q4) in the scalable tuple coding,
// inspects its MCMP properties, routes a packet, and runs a 4096-point FFT
// on it via the Theorem 3.5 ascend plan.
#include <iostream>

#include "algorithms/fft.hpp"
#include "core/ipg.hpp"
#include "metrics/distances.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

int main() {
  using namespace ipg;

  // --- 1. A generic IPG: seed label + permutation generators. -------------
  const core::Ipg small = core::build_ipg(
      core::Label::from_string("123321"),
      {core::Permutation::from_digits("213456"),   // swap symbols 1,2
       core::Permutation::from_digits("321456"),   // swap symbols 1,3
       core::Permutation::from_digits("456123")}); // swap the halves
  std::cout << "Generic IPG from seed 123321: " << small.num_nodes()
            << " nodes (paper: 36).\n";

  // --- 2. A super-IPG: nucleus + super-generators. ------------------------
  const auto nucleus = std::make_shared<topology::HypercubeNucleus>(4);
  const topology::SuperIpg hsn = topology::make_hsn(3, nucleus);
  std::cout << hsn.name() << ": " << hsn.num_nodes() << " nodes, "
            << hsn.num_generators() << " generators per node.\n";

  // --- 3. MCMP view: one chip per nucleus. ---------------------------------
  const auto graph = hsn.to_graph();
  const auto chips = hsn.nucleus_clustering();
  const auto census = topology::census_links(graph, chips);
  const auto icstats = metrics::intercluster_stats(graph, chips, 16);
  std::cout << "Chips: " << chips.num_clusters() << " x " << hsn.nucleus_size()
            << " nodes; off-chip links/node = " << census.avg_offchip_per_node
            << "; intercluster diameter = " << icstats.diameter
            << " (paper: l-1 = 2); average = " << icstats.average << ".\n";

  // --- 4. Routing: generator word from node to node. -----------------------
  const topology::NodeId src = 0;
  const auto dst = static_cast<topology::NodeId>(hsn.num_nodes() - 1);
  const auto word = hsn.route(src, dst);
  topology::NodeId at = src;
  std::size_t offchip = 0;
  for (const auto g : word) {
    const auto next = hsn.apply(at, g);
    if (chips.is_intercluster(at, next)) ++offchip;
    at = next;
  }
  std::cout << "Route " << src << " -> " << dst << ": " << word.size()
            << " hops, " << offchip << " off-chip.\n";

  // --- 5. An ascend/descend algorithm: FFT over all 4096 nodes. ------------
  std::vector<algorithms::Complex> x(hsn.num_nodes());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = {std::cos(0.1 * static_cast<double>(i)), 0.0};
  }
  const auto run = algorithms::fft_on_super_ipg(hsn, x);
  std::cout << "FFT(" << x.size() << " points): " << run.counts.comm_steps
            << " communication steps, " << run.counts.offchip_steps
            << " off-chip (paper: l(k+2)-2 = 16 total, 2l-2 = 4 off-chip); "
            << "X[0] = " << run.output[0].real() << ".\n";
  return 0;
}
