// Scenario: a signal-processing pipeline (filter in the frequency domain)
// on an MCMP built from 16-node chips — the communication-intensive
// workload class the paper's introduction motivates.
//
// The pipeline computes y = IFFT(H . FFT(x)) across all nodes of a
// complete-CN(3,Q4) and compares the communication bill with a
// 12-dimensional hypercube of the same size built from the same chips.
#include <cmath>
#include <iostream>

#include "algorithms/fft.hpp"
#include "topology/hpn.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

namespace {

using ipg::algorithms::Complex;

// Conjugate trick: IFFT(x) = conj(FFT(conj(x))) / N.
std::vector<Complex> conj_scale(const std::vector<Complex>& v, double scale) {
  std::vector<Complex> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::conj(v[i]) * scale;
  return out;
}

}  // namespace

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::algorithms;

  const auto q4 = std::make_shared<HypercubeNucleus>(4);
  const SuperIpg cn = make_complete_cn(3, q4);  // 4096 nodes
  const std::size_t n = cn.num_nodes();

  // A noisy two-tone signal; the "filter" keeps the 64 lowest frequencies.
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = {std::sin(2 * std::numbers::pi * 3 * t / static_cast<double>(n)) +
                0.5 * std::sin(2 * std::numbers::pi * 40 * t / static_cast<double>(n)) +
                0.1 * std::cos(7.7 * t),
            0.0};
  }

  // Forward transform on the CN.
  const auto fwd = fft_on_super_ipg(cn, x);
  // Apply the low-pass mask locally (no communication).
  std::vector<Complex> spectrum = fwd.output;
  for (std::size_t k = 64; k + 64 < n; ++k) spectrum[k] = 0;
  // Inverse transform via the conjugate trick: one more ascend pass.
  const auto inv = fft_on_super_ipg(cn, conj_scale(spectrum, 1.0));
  const auto y = conj_scale(inv.output, 1.0 / static_cast<double>(n));

  double residual_hf = 0;
  for (std::size_t i = 0; i < n; ++i) {
    residual_hf += std::abs(y[i] - x[i]);
  }
  std::cout << "Low-pass filtered " << n << " samples; mean |y - x| = "
            << residual_hf / static_cast<double>(n)
            << " (the removed high-frequency content).\n\n";

  // Communication bill vs a 12-cube made of the same chips.
  const Hpn q12(q4, 3);
  const auto baseline =
      fft_on_hpn(q12, Clustering::blocks(q12.num_nodes(), 16), x);

  util::Table t("Per-FFT communication (4096 points, 16-node chips)");
  t.header({"network", "comm steps", "off-chip steps",
            "off-chip transmissions/node"});
  auto row = [&t, n](const std::string& name, const emulation::StepCounts& c) {
    t.add(name, c.comm_steps, c.offchip_steps,
          static_cast<double>(c.offchip_transmissions) / static_cast<double>(n));
  };
  row(cn.name(), fwd.counts);
  row("Q12 (HPN(3,Q4))", baseline.counts);
  t.print(std::cout);
  std::cout << "\nThe CN pays " << fwd.counts.offchip_steps
            << " off-chip steps per transform vs " << baseline.counts.offchip_steps
            << " for the hypercube — the Theta(sqrt(log N)) advantage of "
               "§4.1, and why the paper targets MCMPs.\n";
  return 0;
}
