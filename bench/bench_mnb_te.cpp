// COR-3.10 / COR-3.11: multinode broadcast and total exchange. Times from
// the all-port emulation (Theorem 3.8 applied to optimal hypercube
// algorithms), plus the §3.3 off-chip transmission comparison: TE needs
// Theta(N^2) intercluster transmissions on super-IPGs with l = O(1) vs
// Theta(N^2 log N) on hypercubes — verified with exact 0-1-BFS counts.
#include <cmath>
#include <iostream>

#include "algorithms/comm_tasks.hpp"
#include "mcmp/capacity.hpp"
#include "sim/mnb.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::algorithms;

  std::cout << "=== COR-3.10/3.11: MNB and TE completion times ===\n";
  std::cout << "paper: with degree Theta(sqrt(log N)) (l = n), HSN does MNB "
               "in Theta(N/sqrt(log N)) and TE in Theta(N sqrt(log N)).\n\n";
  util::Table t;
  t.header({"network", "N", "emulates", "slowdown", "MNB steps", "TE steps",
            "MNB/(N/sqrt(logN))", "TE/(N sqrt(logN))"});
  for (unsigned n = 2; n <= 4; ++n) {
    const auto hsn = make_hsn(n, std::make_shared<HypercubeNucleus>(n));  // l = n
    const double num_nodes = static_cast<double>(hsn.num_nodes());
    const double logn = std::log2(num_nodes);
    const double mnb = mnb_steps_super_ipg(hsn);
    const double te = te_steps_super_ipg(hsn);
    t.add(hsn.name(), hsn.num_nodes(),
          "Q" + std::to_string(n * n),
          std::max<std::size_t>(2 * n, n + 1),
          mnb, te, mnb / (num_nodes / std::sqrt(logn)),
          te / (num_nodes * std::sqrt(logn)));
  }
  t.print(std::cout);
  std::cout << "(The last two columns stay bounded as N grows: the Theta "
               "bounds hold.)\n";

  std::cout << "\n=== §3.3 end: TE intercluster transmissions ===\n";
  std::cout << "paper: Theta(N^2) on super-IPGs vs Theta(N^2 log N) on "
               "hypercubes; ratio grows with N.\n\n";
  util::Table t2;
  t2.header({"N", "chips", "HSN offchip/packet", "Q offchip/packet",
             "HSN TE offchip", "Q TE offchip", "Q/HSN"});
  struct Case {
    std::size_t l;
    unsigned k;
    unsigned cube;
  };
  for (const auto [l, k, cube] : {Case{2, 3, 6}, Case{2, 4, 8}, Case{2, 5, 10}}) {
    const auto hsn = make_hsn(l, std::make_shared<HypercubeNucleus>(k));
    const auto hc = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering(), 16);
    const Graph q = hypercube_graph(cube);
    const auto qc = offchip_counts(
        q, hypercube_subcube_clustering(cube, std::size_t{1} << k), 16);
    t2.add(hsn.num_nodes(), hsn.num_nodes() / hsn.nucleus_size(),
           hc.avg_intercluster_distance, qc.avg_intercluster_distance,
           hc.te_offchip_transmissions, qc.te_offchip_transmissions,
           util::format_ratio(qc.te_offchip_transmissions /
                              hc.te_offchip_transmissions));
  }
  t2.print(std::cout);
  std::cout << "(HSN per-packet off-chip hops stay < 1 (l = 2): TE is "
               "Theta(N^2); the hypercube's grow as (log N)/2.)\n";

  std::cout << "\n=== Executed TE on the simulator (unit chip capacity, "
               "N = 64, 8 nodes/chip, 4-flit packets) ===\n\n";
  {
    util::Table t3;
    t3.header({"network", "packets", "makespan (cycles)",
               "throughput (flits/node/cyc)", "avg off-chip hops"});
    sim::SimConfig cfg;
    cfg.packet_length_flits = 4;
    // The three exchanges are independent — fan them across the sweep pool.
    struct TeNet {
      std::string name;
      sim::SimNetwork net;
      sim::Router router;
    };
    std::vector<TeNet> nets;
    {
      const auto hsn = std::make_shared<topology::SuperIpg>(
          make_hsn(2, std::make_shared<HypercubeNucleus>(3)));
      nets.push_back(
          {hsn->name(),
           mcmp::make_unit_chip_network(hsn->to_graph(),
                                        hsn->nucleus_clustering(), 1.0),
           [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }});
    }
    nets.push_back({"Q6",
                    mcmp::make_unit_chip_network(
                        hypercube_graph(6), hypercube_subcube_clustering(6, 8),
                        1.0),
                    sim::hypercube_router(6)});
    nets.push_back({"8-ary 2-cube",
                    mcmp::make_unit_chip_network(kary_ncube_graph(8, 2),
                                                 kary2_block_clustering(8, 2),
                                                 1.0),
                    sim::kary_router(8, 2)});
    std::vector<sim::SweepJob> jobs;
    for (const TeNet& n : nets)
      jobs.push_back({n.name,
                      [&n, cfg]() {
                        return sim::run_total_exchange(n.net, n.router, cfg);
                      },
                      {}});
    for (const sim::SweepOutcome& o : sim::run_sweep(jobs))
      t3.add(o.label, o.result.packets_delivered, o.result.makespan_cycles,
             o.result.throughput_flits_per_node_cycle,
             o.result.avg_offchip_hops);
    t3.print(std::cout);
    std::cout << "(The executed makespans follow the off-chip transmission "
               "counts — the §4.1 throughput argument, end to end.)\n";
  }

  std::cout << "\n=== Executed MNB: unit link vs unit chip capacity "
               "(N = 64, BFS broadcast trees, FIFO links) ===\n";
  std::cout << "paper: under unit link capacity the hypercube's log N ports "
               "win (Cor 3.10's slowdown direction); under unit chip "
               "capacity the ordering reverses (§4).\n\n";
  {
    util::Table t4;
    t4.header({"network", "unit-link makespan", "unit-chip makespan"});
    const auto hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
    {
      auto uni = sim::SimNetwork::with_uniform_bandwidth(
          hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
      auto chip = mcmp::make_unit_chip_network(hsn.to_graph(),
                                               hsn.nucleus_clustering(), 1.0);
      t4.add(hsn.name(), sim::run_mnb(uni).makespan_cycles,
             sim::run_mnb(chip).makespan_cycles);
    }
    {
      auto uni = sim::SimNetwork::with_uniform_bandwidth(
          hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
      auto chip = mcmp::make_unit_chip_network(
          hypercube_graph(6), hypercube_subcube_clustering(6, 8), 1.0);
      t4.add("Q6", sim::run_mnb(uni).makespan_cycles,
             sim::run_mnb(chip).makespan_cycles);
    }
    t4.print(std::cout);
    std::cout << "(The two columns flip the winner — exactly the paper's "
               "point about measuring networks in the right capacity "
               "model.)\n";
  }
  return 0;
}
