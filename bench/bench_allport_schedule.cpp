// FIG-1a / FIG-1b / THM-3.8: regenerates the paper's Figure 1 all-port
// emulation schedules and sweeps the makespan bound max(2n, l+1).
#include <iostream>

#include "emulation/allport.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg::emulation;
  using ipg::util::Table;

  std::cout << "=== FIG-1a: 12-dimensional HPN on a super-IPG with l=4, n=3 ===\n";
  const AllPortSchedule fig1a = build_allport_schedule(4, 3);
  std::cout << "paper: 6 steps  |  measured makespan: " << fig1a.makespan
            << "\n\n"
            << fig1a.to_figure() << '\n';

  std::cout << "=== FIG-1b: 15-dimensional HPN on a super-IPG with l=5, n=3 ===\n";
  const AllPortSchedule fig1b = build_allport_schedule(5, 3);
  std::cout << "paper: 6 steps, links ~93% used on average  |  measured: "
            << fig1b.makespan << " steps, "
            << static_cast<int>(fig1b.utilization() * 100 + 0.5)
            << "% average link utilization\n\n"
            << fig1b.to_figure() << '\n';

  std::cout << "=== THM-3.8 sweep: makespan = max(2n, l+1) ===\n";
  Table t;
  t.header({"l", "n", "bound max(2n,l+1)", "measured", "utilization"});
  for (std::size_t n = 2; n <= 5; ++n) {
    for (std::size_t l = 2; l <= 10; l += 2) {
      const AllPortSchedule s = build_allport_schedule(l, n);
      verify_allport_schedule(s);
      t.add(l, n, allport_bound(l, n), s.makespan,
            ipg::util::format_ratio(s.utilization()));
    }
  }
  t.print(std::cout);
  std::cout << "Every schedule verified: no generator used twice per step, "
               "chains S -> N -> S^-1 in order.\n";
  return 0;
}
