// COR-3.6 / COR-3.7 / ALG-FFT: ascend/descend communication-step counts
// against the paper's closed forms, with the FFT actually executed through
// the Theorem 3.5 plan on every network (correctness checked against the
// reference DFT) and the paper's GHC example reproduced.
#include <cmath>
#include <iostream>

#include "algorithms/bitonic.hpp"
#include "algorithms/fft.hpp"
#include "topology/nucleus.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::vector<ipg::algorithms::Complex> signal(std::size_t n) {
  ipg::util::Xoshiro256 rng(2027);
  std::vector<ipg::algorithms::Complex> x(n);
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  return x;
}

bool matches_reference(const std::vector<ipg::algorithms::Complex>& out,
                       const std::vector<ipg::algorithms::Complex>& ref) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (std::abs(out[i] - ref[i]) > 1e-6) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::algorithms;

  std::cout << "=== COR-3.6: ascend/descend on k-cube-nucleus super-IPGs ===\n";
  std::cout << "paper: CN takes l(k+1) = (1+1/k) log2 N steps; HSN/SFN/RCC "
               "take l(k+2)-2 = (1+2/k) log2 N - 2.\n\n";
  util::Table t;
  t.header({"network", "N", "paper steps", "measured steps", "off-chip",
            "FFT == DFT"});
  auto fft_row = [&t](const SuperIpg& s, std::size_t paper_steps) {
    const auto x = signal(s.num_nodes());
    const auto ref = dft_reference(x);
    const auto run = fft_on_super_ipg(s, x);
    t.add(s.name(), s.num_nodes(), paper_steps, run.counts.comm_steps,
          run.counts.offchip_steps, matches_reference(run.output, ref));
  };
  const auto q2 = std::make_shared<HypercubeNucleus>(2);
  const auto q3 = std::make_shared<HypercubeNucleus>(3);
  fft_row(make_complete_cn(3, q2), 3 * 3);       // l(k+1)
  fft_row(make_complete_cn(3, q3), 3 * 4);
  fft_row(make_ring_cn(3, q2), 3 * 3);           // "any CN"
  fft_row(make_hsn(3, q2), 3 * 4 - 2);           // l(k+2)-2
  fft_row(make_hsn(2, q3), 2 * 5 - 2);
  fft_row(make_sfn(3, q2), 3 * 4 - 2);
  fft_row(make_rcc(2, q2), 4 * 4 - 2);           // L = 2^r leaf levels
  t.print(std::cout);

  std::cout << "\n=== COR-3.7: generalized-hypercube nuclei (paper example: "
               "m_i = 4, n = 3) ===\n";
  std::cout << "paper: CN does (2/3) log2 N comm steps; HSN (5/6) log2 N - "
               "2.\n\n";
  util::Table t2;
  t2.header({"network", "log2 N", "paper", "measured", "compute steps",
             "FFT == DFT"});
  const auto ghc = std::make_shared<GeneralizedHypercubeNucleus>(
      std::vector<std::size_t>{4, 4, 4});
  for (std::size_t l = 2; l <= 2; ++l) {
    const auto cn = make_complete_cn(l, ghc);
    const auto x = signal(cn.num_nodes());
    const auto ref = dft_reference(x);
    const auto run = fft_on_super_ipg(cn, x);
    const double log2n = 6.0 * static_cast<double>(l);
    t2.add(cn.name(), log2n, (2.0 / 3.0) * log2n, run.counts.comm_steps,
           run.counts.compute_steps, matches_reference(run.output, ref));
    const auto hsn = make_hsn(l, ghc);
    const auto run2 = fft_on_super_ipg(hsn, x);
    t2.add(hsn.name(), log2n, (5.0 / 6.0) * log2n - 2, run2.counts.comm_steps,
           run2.counts.compute_steps, matches_reference(run2.output, ref));
  }
  t2.print(std::cout);
  std::cout << "\n(The hypercube baseline needs log2 N = 12 steps: these "
               "networks beat it with lower node degree, §3.2.)\n";

  std::cout << "\n=== Bitonic sort through the same machinery ===\n";
  util::Table t3;
  t3.header({"network", "N", "comm steps", "off-chip steps", "sorted"});
  for (const auto family :
       {SuperFamily::kHSN, SuperFamily::kCompleteCN, SuperFamily::kSFN}) {
    const SuperIpg s(q2, 3, family);
    util::Xoshiro256 rng(5);
    std::vector<double> keys(s.num_nodes());
    for (auto& k : keys) k = rng.uniform();
    const auto run = bitonic_sort_on_super_ipg(s, keys);
    t3.add(s.name(), s.num_nodes(), run.counts.comm_steps,
           run.counts.offchip_steps,
           std::is_sorted(run.output.begin(), run.output.end()));
  }
  t3.print(std::cout);
  return 0;
}
