// SIM-RR: the headline MCMP experiment — cycle-level random routing on
// networks built from identical chips (unit chip capacity). Batch
// permutation routing measures saturation throughput; open-loop injection
// sweeps produce latency-vs-load curves; and the switching-technique
// insensitivity claim is checked by running SAF vs cut-through.
#include <array>
#include <cstdint>
#include <iostream>
#include <memory>
#include <numeric>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/wormhole.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;
using namespace ipg::sim;

struct Net {
  std::string name;
  SimNetwork network;
  Router router;
  /// Per-route VC class assignment for the flit-level wormhole engine.
  VcClassifier vc_classes;
};

std::vector<Net> build_networks() {
  std::vector<Net> nets;
  // 256 nodes, 16 chips of 16 nodes, per-node off-chip budget w = 1.
  {
    auto hsn = std::make_shared<SuperIpg>(
        make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
    const std::size_t n_nuc = hsn->num_nucleus_generators();
    nets.push_back({hsn->name(),
                    mcmp::make_unit_chip_network(hsn->to_graph(),
                                                 hsn->nucleus_clustering(), 1.0),
                    [hsn](NodeId s, NodeId d) { return hsn->route(s, d); },
                    super_ipg_vc_classes(n_nuc)});
  }
  {
    Graph q8 = hypercube_graph(8);
    nets.push_back({"Q8",
                    mcmp::make_unit_chip_network(
                        std::move(q8), hypercube_subcube_clustering(8, 16), 1.0),
                    hypercube_router(8),
                    single_vc_class()});
  }
  {
    Graph torus = kary_ncube_graph(16, 2);
    nets.push_back({"16-ary 2-cube",
                    mcmp::make_unit_chip_network(
                        std::move(torus), kary2_block_clustering(16, 4), 1.0),
                    kary_router(16, 2),
                    torus_dateline_vc_classes(16, 2)});
  }
  return nets;
}

}  // namespace

int main() {
  std::cout << "=== SIM-RR: random routing on MCMPs built from identical "
               "chips ===\n";
  std::cout << "256 nodes, 16 chips x 16 nodes, equal per-chip off-chip "
               "bandwidth (16w), on-chip links non-bottleneck.\n";
  std::cout << "paper: super-IPGs sustain the highest throughput; k-ary "
               "2-cubes the lowest; claims hold for any switching "
               "technique.\n\n";

  auto nets = build_networks();

  std::cout << "--- Batch: 16 random permutations, store-and-forward ---\n\n";
  util::Table t;
  t.header({"network", "makespan (cycles)", "throughput (flits/node/cyc)",
            "avg latency", "avg off-chip hops", "max off-chip util"});
  SimConfig cfg;
  cfg.packet_length_flits = 16;
  std::vector<std::uint64_t> seeds(16);
  std::iota(seeds.begin(), seeds.end(), std::uint64_t{1000});
  for (auto& net : nets) {
    const auto outcomes =
        run_sweep(batch_replicate_sweep(net.network, net.router, seeds, cfg));
    t.add(net.name, mean_of(outcomes, &SimResult::makespan_cycles),
          mean_of(outcomes, &SimResult::throughput_flits_per_node_cycle),
          mean_of(outcomes, &SimResult::avg_latency_cycles),
          mean_of(outcomes, &SimResult::avg_offchip_hops),
          mean_of(outcomes, &SimResult::max_offchip_utilization));
  }
  t.print(std::cout);

  std::cout << "\n--- Switching insensitivity: SAF vs virtual cut-through "
               "(same 4 permutations) ---\n\n";
  util::Table t2;
  t2.header({"network", "SAF", "VCT", "wormhole (flit-level)",
             "(throughput, flits/node/cyc)"});
  constexpr std::array<Switching, 2> kModes{Switching::kStoreAndForward,
                                            Switching::kVirtualCutThrough};
  for (auto& net : nets) {
    double saf = 0, vct = 0, worm = 0;
    for (int rep = 0; rep < 4; ++rep) {
      util::Xoshiro256 rng(77 + static_cast<std::uint64_t>(rep));
      const auto perm = random_permutation(net.network.num_nodes(), rng);
      const auto modes =
          run_sweep(switching_sweep(net.network, net.router, perm, kModes, cfg));
      WormholeConfig wc;
      wc.packet_length_flits = static_cast<std::size_t>(cfg.packet_length_flits);
      const auto rw =
          run_wormhole_batch(net.network, net.router, perm, wc, net.vc_classes);
      saf += modes[0].result.throughput_flits_per_node_cycle;
      vct += modes[1].result.throughput_flits_per_node_cycle;
      worm += rw.throughput_flits_per_node_cycle;
    }
    t2.add(net.name, saf / 4, vct / 4, worm / 4, "");
  }
  t2.print(std::cout);
  std::cout << "(Rankings identical across all three switching models — the "
               "bandwidth limit does not depend on the switching technique, "
               "§1. The wormhole column is the flit-level engine with "
               "4 VCs and 8-flit buffers.)\n";

  std::cout << "\n--- Batch at scale: 4096 nodes, 256 chips x 16 nodes, 4 "
               "permutations ---\n";
  std::cout << "paper: HSN(3,Q4) has B_B = 8192w/15 ~ 546w vs 256w (Q12) and "
               "128w (64-ary 2-cube); it should win by >2x. The hypercube is "
               "additionally hurt by its thin off-chip links (w/8): every "
               "off-chip hop serializes a whole packet over them.\n\n";
  {
    std::vector<Net> big;
    auto hsn = std::make_shared<SuperIpg>(
        make_hsn(3, std::make_shared<HypercubeNucleus>(4)));
    big.push_back({hsn->name(),
                   mcmp::make_unit_chip_network(hsn->to_graph(),
                                                hsn->nucleus_clustering(), 1.0),
                   [hsn](NodeId s, NodeId d) { return hsn->route(s, d); },
                   {}});
    Graph q12 = hypercube_graph(12);
    big.push_back({"Q12",
                   mcmp::make_unit_chip_network(
                       std::move(q12), hypercube_subcube_clustering(12, 16), 1.0),
                   hypercube_router(12),
                   {}});
    Graph torus = kary_ncube_graph(64, 2);
    big.push_back({"64-ary 2-cube",
                   mcmp::make_unit_chip_network(
                       std::move(torus), kary2_block_clustering(64, 4), 1.0),
                   kary_router(64, 2),
                   {}});
    util::Table tb;
    tb.header({"network", "makespan", "throughput (flits/node/cyc)",
               "avg latency", "avg off-chip hops"});
    constexpr std::array<std::uint64_t, 4> kSeeds{31, 32, 33, 34};
    for (auto& net : big) {
      const auto outcomes = run_sweep(
          batch_replicate_sweep(net.network, net.router, kSeeds, cfg));
      tb.add(net.name, mean_of(outcomes, &SimResult::makespan_cycles),
             mean_of(outcomes, &SimResult::throughput_flits_per_node_cycle),
             mean_of(outcomes, &SimResult::avg_latency_cycles),
             mean_of(outcomes, &SimResult::avg_offchip_hops));
    }
    tb.print(std::cout);
  }

  std::cout << "\n--- Traffic patterns (256 nodes, SAF, batch makespan in "
               "cycles) ---\n\n";
  {
    util::Table tp;
    tp.header({"network", "random perm", "transpose", "bit-reversal",
               "bit-complement"});
    for (auto& net : nets) {
      const std::size_t n = net.network.num_nodes();
      auto run_pattern = [&](const TrafficPattern& pat) {
        util::Xoshiro256 rng(5);
        std::vector<NodeId> dst(n);
        for (NodeId v = 0; v < n; ++v) dst[v] = pat(v, rng);
        return run_batch(net.network, net.router, dst, cfg).makespan_cycles;
      };
      util::Xoshiro256 rng(5);
      tp.add(net.name,
             run_batch(net.network, net.router, random_permutation(n, rng), cfg)
                 .makespan_cycles,
             run_pattern(transpose_traffic(n)),
             run_pattern(bit_reversal_traffic(n)),
             run_pattern(bit_complement_traffic(n)));
    }
    tp.print(std::cout);
    std::cout << "(Matrix transposition — one of the paper's headline tasks "
                 "— shows the same ordering as random routing.)\n";
  }

  std::cout << "\n--- Control: unit LINK capacity (every link bandwidth 1) "
               "---\n";
  std::cout << "paper §4: under unit link capacity these networks have "
               "comparable throughput — the super-IPG advantage is an MCMP "
               "effect, not a topology-size artifact.\n\n";
  {
    util::Table tu;
    tu.header({"network", "makespan (cycles)", "throughput"});
    for (auto& net : nets) {
      auto uni = sim::SimNetwork::with_uniform_bandwidth(
          Graph(net.network.graph()), Clustering(net.network.chips()), 1.0);
      double makespan = 0, thr = 0;
      for (int rep = 0; rep < 4; ++rep) {
        util::Xoshiro256 rng(200 + static_cast<std::uint64_t>(rep));
        const auto perm = random_permutation(uni.num_nodes(), rng);
        const auto r = run_batch(uni, net.router, perm, cfg);
        makespan += r.makespan_cycles;
        thr += r.throughput_flits_per_node_cycle;
      }
      tu.add(net.name, makespan / 4, thr / 4);
    }
    tu.print(std::cout);
  }

  std::cout << "\n--- Open loop: uniform traffic, latency vs injected load "
               "---\n\n";
  util::Table t3;
  t3.header({"network", "rate 0.02", "rate 0.05", "rate 0.10", "rate 0.20",
             "(avg latency, cycles)"});
  constexpr std::array<double, 4> kRates{0.02, 0.05, 0.10, 0.20};
  for (auto& net : nets) {
    SimConfig c = cfg;
    c.packet_length_flits = 8;
    const auto outcomes = run_sweep(
        open_rate_sweep(net.network, net.router,
                        uniform_traffic(net.network.num_nodes()), kRates, 600, c));
    std::vector<std::string> cells{net.name};
    for (const SweepOutcome& o : outcomes)
      cells.push_back(util::Table::to_cell(o.result.avg_latency_cycles));
    cells.push_back("");
    t3.row(cells);
  }
  t3.print(std::cout);
  std::cout << "(Lower latency at equal load and a later saturation knee for "
               "the super-IPG: the Theta(sqrt(log N))/Theta(log N) "
               "advantage of §4.1 at work.)\n";
  return 0;
}
