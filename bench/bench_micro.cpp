// MICRO: google-benchmark microbenchmarks for the core primitives —
// permutation application, generic IPG closure, tuple-coded generator
// application, BFS metrics, routing, and the simulator event loop.
#include <benchmark/benchmark.h>

#include "algorithms/ascend_descend.hpp"
#include "algorithms/fft.hpp"
#include "emulation/allport.hpp"
#include "metrics/layout.hpp"
#include "metrics/supergen_words.hpp"
#include "sim/mnb.hpp"
#include "sim/wormhole.hpp"
#include "core/ipg.hpp"
#include "core/super_generators.hpp"
#include "metrics/distances.hpp"
#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"

namespace {

using namespace ipg;

void BM_PermutationApply(benchmark::State& state) {
  const auto p = core::Permutation::rotation(32, 7);
  core::Label label = core::Label::repeated(core::Label::from_string("0123"), 8);
  for (auto _ : state) {
    label = label.apply(p);
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_PermutationApply);

void BM_GenericIpgClosure(benchmark::State& state) {
  for (auto _ : state) {
    const auto ipg = core::build_generic_super_ipg(
        core::hypercube_seed(2), core::hypercube_generators(2), 3,
        core::SuperGenKind::kTranspositions);
    benchmark::DoNotOptimize(ipg.num_nodes());
  }
}
BENCHMARK(BM_GenericIpgClosure);

void BM_TupleApply(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(3, std::make_shared<topology::HypercubeNucleus>(4));
  topology::NodeId v = 1;
  std::size_t g = 0;
  for (auto _ : state) {
    v = hsn.apply(v, g);
    g = (g + 1) % hsn.num_generators();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TupleApply);

void BM_SuperIpgRoute(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(3, std::make_shared<topology::HypercubeNucleus>(4));
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.below(hsn.num_nodes()));
    const auto dst = static_cast<topology::NodeId>(rng.below(hsn.num_nodes()));
    benchmark::DoNotOptimize(hsn.route(src, dst));
  }
}
BENCHMARK(BM_SuperIpgRoute);

void BM_BfsSweepQ10(benchmark::State& state) {
  const auto g = topology::hypercube_graph(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::distance_stats(g, 8));
  }
}
BENCHMARK(BM_BfsSweepQ10);

void BM_InterclusterBfs(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(3, std::make_shared<topology::HypercubeNucleus>(4));
  const auto g = hsn.to_graph();
  const auto c = hsn.nucleus_clustering();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::intercluster_distances(g, c, 0));
  }
}
BENCHMARK(BM_InterclusterBfs);

void BM_SimulatorBatch(benchmark::State& state) {
  const auto hsn = std::make_shared<topology::SuperIpg>(
      topology::make_hsn(2, std::make_shared<topology::HypercubeNucleus>(4)));
  auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                          hsn->nucleus_clustering(), 1.0);
  const sim::Router router = [hsn](topology::NodeId s, topology::NodeId d) {
    return hsn->route(s, d);
  };
  util::Xoshiro256 rng(11);
  const auto perm = sim::random_permutation(net.num_nodes(), rng);
  sim::SimConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_batch(net, router, perm, cfg));
  }
}
BENCHMARK(BM_SimulatorBatch);

void BM_AllPortScheduleSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipg::emulation::build_allport_schedule(5, 3));
  }
}
BENCHMARK(BM_AllPortScheduleSearch);

void BM_AscendPlanBuild(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(3, std::make_shared<topology::HypercubeNucleus>(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::build_ascend_plan(hsn));
  }
}
BENCHMARK(BM_AscendPlanBuild);

void BM_Fft4096OnHsn(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(3, std::make_shared<topology::HypercubeNucleus>(4));
  std::vector<algorithms::Complex> x(hsn.num_nodes(), {1.0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::fft_on_super_ipg(hsn, x));
  }
}
BENCHMARK(BM_Fft4096OnHsn);

void BM_WormholeBatch(benchmark::State& state) {
  const auto hsn = std::make_shared<topology::SuperIpg>(
      topology::make_hsn(2, std::make_shared<topology::HypercubeNucleus>(4)));
  auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                          hsn->nucleus_clustering(), 1.0);
  util::Xoshiro256 rng(11);
  const auto perm = sim::random_permutation(net.num_nodes(), rng);
  sim::WormholeConfig cfg;
  cfg.packet_length_flits = 8;
  const auto classes =
      sim::super_ipg_vc_classes(hsn->num_nucleus_generators());
  const sim::Router router = [hsn](topology::NodeId s, topology::NodeId d) {
    return hsn->route(s, d);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_wormhole_batch(net, router, perm, cfg, classes));
  }
}
BENCHMARK(BM_WormholeBatch);

void BM_MnbExecution(benchmark::State& state) {
  const auto hsn =
      topology::make_hsn(2, std::make_shared<topology::HypercubeNucleus>(3));
  auto net = sim::SimNetwork::with_uniform_bandwidth(
      hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_mnb(net));
  }
}
BENCHMARK(BM_MnbExecution);

void BM_LayoutRecursiveBisection(benchmark::State& state) {
  const auto g = topology::hypercube_graph(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::recursive_bisection_layout(g, 2, 3));
  }
}
BENCHMARK(BM_LayoutRecursiveBisection);

void BM_SupergenWordAnalysis(benchmark::State& state) {
  const auto sfn =
      topology::make_sfn(6, std::make_shared<topology::HypercubeNucleus>(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::analyze_supergen_words(sfn));
  }
}
BENCHMARK(BM_SupergenWordAnalysis);

}  // namespace

BENCHMARK_MAIN();
