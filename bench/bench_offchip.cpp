// SEC-4.1: off-chip transmission counts per task — FFT and random routing
// need only l-1 off-chip steps on HSN/complete-CN/SFN against
// log2 N - log2 M on the hypercube, giving the Theta(sqrt(log N)) (or
// Theta(log N) for l = O(1)) throughput advantage under unit chip capacity.
#include <cmath>
#include <iostream>

#include "algorithms/comm_tasks.hpp"
#include "algorithms/fft.hpp"
#include "mcmp/capacity.hpp"
#include "sim/static_analysis.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::algorithms;

  std::cout << "=== SEC-4.1: off-chip steps of the FFT (executed) ===\n";
  std::cout << "paper: FFT needs l-1 = Theta(sqrt(log N)) off-chip "
               "transmissions on the super-IPG (2l-2 steps incl. restore) "
               "vs log2 N - log2 M on the hypercube.\n\n";
  util::Table t;
  t.header({"network", "N", "M/chip", "total steps", "off-chip steps",
            "off-chip transmissions/node"});
  util::Xoshiro256 rng(7);
  auto run_super = [&](const SuperIpg& s) {
    std::vector<Complex> x(s.num_nodes());
    for (auto& v : x) v = {rng.uniform(), rng.uniform()};
    const auto run = fft_on_super_ipg(s, x);
    t.add(s.name(), s.num_nodes(), s.nucleus_size(), run.counts.comm_steps,
          run.counts.offchip_steps,
          static_cast<double>(run.counts.offchip_transmissions) /
              static_cast<double>(s.num_nodes()));
  };
  run_super(make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
  run_super(make_hsn(3, std::make_shared<HypercubeNucleus>(3)));
  run_super(make_complete_cn(3, std::make_shared<HypercubeNucleus>(3)));
  run_super(make_sfn(3, std::make_shared<HypercubeNucleus>(3)));
  {
    // Hypercube baselines of matching size.
    for (unsigned total = 8; total <= 9; ++total) {
      const unsigned chip_bits = total == 8 ? 4 : 3;
      const Hpn h(std::make_shared<HypercubeNucleus>(chip_bits),
                  total / chip_bits + (total % chip_bits ? 1 : 0));
      if (h.num_nodes() != (std::size_t{1} << total)) continue;
      std::vector<Complex> x(h.num_nodes());
      for (auto& v : x) v = {rng.uniform(), rng.uniform()};
      const auto run = fft_on_hpn(
          h, Clustering::blocks(h.num_nodes(), std::size_t{1} << chip_bits), x);
      t.add("Q" + std::to_string(total), h.num_nodes(),
            std::size_t{1} << chip_bits, run.counts.comm_steps,
            run.counts.offchip_steps,
            static_cast<double>(run.counts.offchip_transmissions) /
                static_cast<double>(h.num_nodes()));
    }
  }
  t.print(std::cout);

  std::cout << "\n=== SEC-4.1: random routing — expected off-chip hops per "
               "packet (exact) ===\n\n";
  util::Table t2;
  t2.header({"network", "N", "off-chip hops/packet", "hypercube same size",
             "throughput advantage"});
  struct Case {
    std::size_t l;
    unsigned k;
  };
  for (const auto [l, k] : {Case{2, 3}, Case{2, 4}, Case{3, 3}, Case{2, 5}}) {
    const auto hsn = make_hsn(l, std::make_shared<HypercubeNucleus>(k));
    const auto hc = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering(), 16);
    const auto cube_bits = static_cast<unsigned>(l * k);
    const Graph q = hypercube_graph(cube_bits);
    const auto qc = offchip_counts(
        q, hypercube_subcube_clustering(cube_bits, std::size_t{1} << k), 16);
    t2.add(hsn.name(), hsn.num_nodes(), hc.avg_intercluster_distance,
           qc.avg_intercluster_distance,
           util::format_ratio(qc.avg_intercluster_distance /
                              hc.avg_intercluster_distance));
  }
  t2.print(std::cout);
  std::cout << "(Throughput under unit chip capacity is inversely "
               "proportional to off-chip transmissions when traffic is "
               "balanced — §4.1. The advantage grows as Theta(log N) for "
               "l = 2 rows.)\n";

  std::cout << "\n=== §4.1 quantified: predicted saturation throughput "
               "(static route-level load analysis) ===\n\n";
  util::Table t3;
  t3.header({"network", "N", "bottleneck p_L", "bottleneck off-chip",
             "saturation (flits/node/cyc)"});
  {
    const auto hsn = std::make_shared<SuperIpg>(
        make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
    auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                            hsn->nucleus_clustering(), 1.0);
    const auto a = sim::analyze_uniform_load(net, sim::super_ipg_router(*hsn));
    t3.add(hsn->name(), net.num_nodes(), a.bottleneck_probability,
           a.bottleneck_offchip, a.predicted_saturation_throughput);
  }
  {
    auto net = mcmp::make_unit_chip_network(
        hypercube_graph(8), hypercube_subcube_clustering(8, 16), 1.0);
    const auto a = sim::analyze_uniform_load(net, sim::hypercube_router(8));
    t3.add("Q8", net.num_nodes(), a.bottleneck_probability, a.bottleneck_offchip,
           a.predicted_saturation_throughput);
  }
  {
    auto net = mcmp::make_unit_chip_network(kary_ncube_graph(16, 2),
                                            kary2_block_clustering(16, 4), 1.0);
    const auto a = sim::analyze_uniform_load(net, sim::kary_router(16, 2));
    t3.add("16-ary 2-cube", net.num_nodes(), a.bottleneck_probability,
           a.bottleneck_offchip, a.predicted_saturation_throughput);
  }
  t3.print(std::cout);
  std::cout << "(Every bottleneck is an off-chip link — the §4 premise — "
               "and the predicted ordering matches bench_mcmp_sim's "
               "measured one.)\n";
  return 0;
}
