// THM-4.7 / COR-4.8–4.11: bisection bandwidth under the unit chip capacity
// model. Reproduces the paper's worked examples (12-cube vs HSN(3,Q4) at
// 256 chips, off-chip link widths), validates the closed forms against
// measured cluster-respecting bisections, compares all topology families,
// and sweeps the ">= 33% advantage" claim.
#include <cmath>
#include <iostream>

#include "mcmp/capacity.hpp"

#include "topology/super_ipg.hpp"
#include "util/bits.hpp"
#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::mcmp;

  std::cout << "=== §4.2 worked example: 256 chips of 16 nodes, w = 1 ===\n\n";
  util::Table t;
  t.header({"network", "off-chip links/chip", "link bandwidth", "paper link bw",
            "bisection bandwidth", "paper B_B"});
  {
    const Graph q12 = hypercube_graph(12);
    const auto q12c = hypercube_subcube_clustering(12, 16);
    const auto qs = chip_link_stats(q12, q12c, 1.0);
    t.add("Q12", qs.offchip_links_per_chip, qs.offchip_link_bandwidth, "w/8",
          hypercube_bisection_bandwidth(1.0, 4096, 16), "256w");

    const SuperIpg hsn = make_hsn(3, std::make_shared<HypercubeNucleus>(4));
    const auto hs = chip_link_stats(hsn.to_graph(), hsn.nucleus_clustering(), 1.0);
    t.add("HSN(3,Q4)", hs.offchip_links_per_chip, hs.offchip_link_bandwidth,
          "8w/15", hsn_bisection_bandwidth(1.0, 4096, 16, 3),
          "8192w/15 = 546.1w");
  }
  t.print(std::cout);
  std::cout << "paper: \"slightly more than double that of a hypercube\" — "
               "ratio "
            << util::format_ratio(hsn_bisection_bandwidth(1.0, 4096, 16, 3) /
                                  hypercube_bisection_bandwidth(1.0, 4096, 16))
            << "; off-chip links ~4x wider ("
            << util::format_ratio((16.0 / 30.0) / (1.0 / 8.0)) << ").\n";

  std::cout << "\n=== COR-4.8/4.9/4.10: formulas vs measured bisections "
               "(small instances, heuristic = upper bound) ===\n\n";
  util::Table t2;
  t2.header({"network", "N", "chips", "formula B_B", "measured B_B",
             "Thm 4.7 lower bound"});
  auto measured_row = [&t2](const std::string& name, const Graph& g,
                            const Clustering& c, double formula) {
    const double measured = measured_bisection_bandwidth(g, c, 1.0, 16);
    const auto stats = metrics::intercluster_stats(g, c);
    t2.add(name, g.num_nodes(), c.num_clusters(), formula, measured,
           bb_lower_bound(1.0, g.num_nodes(), stats.average));
  };
  {
    const auto q2 = std::make_shared<HypercubeNucleus>(2);
    const auto q3 = std::make_shared<HypercubeNucleus>(3);
    const SuperIpg h22 = make_hsn(2, q2);
    measured_row(h22.name(), h22.to_graph(), h22.nucleus_clustering(),
                 hsn_bisection_bandwidth(1.0, 16, 4, 2));
    const SuperIpg h23 = make_hsn(2, q3);
    measured_row(h23.name(), h23.to_graph(), h23.nucleus_clustering(),
                 hsn_bisection_bandwidth(1.0, 64, 8, 2));
    const SuperIpg h32 = make_hsn(3, q2);
    measured_row(h32.name(), h32.to_graph(), h32.nucleus_clustering(),
                 hsn_bisection_bandwidth(1.0, 64, 4, 3));
    const SuperIpg sfn = make_sfn(3, q2);
    measured_row(sfn.name(), sfn.to_graph(), sfn.nucleus_clustering(),
                 hsn_bisection_bandwidth(1.0, 64, 4, 3));
    measured_row("Q6 (8/chip)", hypercube_graph(6),
                 hypercube_subcube_clustering(6, 8),
                 hypercube_bisection_bandwidth(1.0, 64, 8));
    measured_row("8-ary 2-cube (2x2/chip)", kary_ncube_graph(8, 2),
                 kary2_block_clustering(8, 2),
                 kary2_bisection_bandwidth(1.0, 64, 4));
  }
  t2.print(std::cout);

  std::cout << "\n=== COR-4.9: CCC and butterfly (order-of-magnitude rows) ===\n\n";
  util::Table t25;
  t25.header({"network", "N", "M/chip", "IC degree/node", "formula B_B shape"});
  {
    const Graph ccc = ccc_graph(5);
    const auto cccc = ccc_cycle_clustering(5);
    const auto census = census_links(ccc, cccc);
    t25.add("CCC(5)", ccc.num_nodes(), 5, census.avg_offchip_per_node,
            "Theta(wN/log N)");
    const Graph bf = butterfly_graph(5);
    const auto bfc = butterfly_clustering(5, 3);
    const auto census2 = census_links(bf, bfc);
    t25.add("BF(5)", bf.num_nodes(), 5 * 8, census2.avg_offchip_per_node,
            "Theta(wN/log_M N)");
  }
  t25.print(std::cout);
  std::cout << "(CCC: constant off-chip links/node -> B_B comparable to a "
               "hypercube; butterfly: sublinear IC degree -> higher.)\n";

  std::cout << "\n=== §4.2: the four capacity models on one instance "
               "(HSN(2,Q3) vs Q6, 8 nodes/chip) ===\n";
  std::cout << "paper: the hypercube's raw bisection width is larger (unit "
               "link); unit bisection equalizes everyone by construction; "
               "under unit node the super-IPG's links are Theta(sqrt(log N)) "
               "wider, closing most of the gap; under unit chip — the MCMP "
               "reality — the super-IPG wins outright.\n\n";
  {
    const SuperIpg hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(3));
    const Graph hg = hsn.to_graph();
    const auto hc = hsn.nucleus_clustering();
    const Graph qg = hypercube_graph(6);
    const auto qc = hypercube_subcube_clustering(6, 8);

    auto bb_with = [](const Graph& g, const Clustering& c,
                      const std::vector<double>& w) {
      return metrics::cluster_bisection_heuristic(g, c, w, 16).cut;
    };
    util::Table t4;
    t4.header({"model", "HSN(2,Q3) B_B", "Q6 B_B", "HSN/Q"});
    {
      const double h = bb_with(hg, hc, metrics::unit_link_arc_weights(hg));
      const double q = bb_with(qg, qc, metrics::unit_link_arc_weights(qg));
      t4.add("unit link", h, q, util::format_ratio(h / q));
    }
    {
      // Unit bisection: both networks normalized to budget 32.
      const double h = bb_with(
          hg, hc, metrics::unit_bisection_arc_weights(
                      hg, bb_with(hg, hc, metrics::unit_link_arc_weights(hg)), 32.0));
      const double q = bb_with(
          qg, qc, metrics::unit_bisection_arc_weights(
                      qg, bb_with(qg, qc, metrics::unit_link_arc_weights(qg)), 32.0));
      t4.add("unit bisection", h, q, util::format_ratio(h / q));
    }
    {
      const double h = bb_with(hg, hc, metrics::unit_node_arc_weights(hg, 1.0));
      const double q = bb_with(qg, qc, metrics::unit_node_arc_weights(qg, 1.0));
      t4.add("unit node", h, q, util::format_ratio(h / q));
    }
    {
      const double h = bb_with(hg, hc, metrics::unit_chip_arc_weights(hg, hc, 1.0));
      const double q = bb_with(qg, qc, metrics::unit_chip_arc_weights(qg, qc, 1.0));
      t4.add("unit chip", h, q, util::format_ratio(h / q));
    }
    t4.print(std::cout);
  }

  std::cout << "\n=== COR-4.11 / §4.2: the >= 33% small-scale advantage ===\n";
  std::cout << "paper: \"as long as a chip has at least 4 nodes and there "
               "are 4, 16, 64, or more chips, the bisection bandwidths of "
               "these super-IPGs will be higher than a hypercube's by at "
               "least 33%.\"\n\n";
  util::Table t3;
  t3.header({"chip M", "chips", "N", "HSN B_B", "Q B_B", "advantage"});
  for (unsigned k = 2; k <= 8; k += 2) {            // chip = 2^k nodes
    for (std::size_t l = 2; l <= 3; ++l) {          // chips = M^(l-1)
      const std::size_t m = std::size_t{1} << k;
      const std::size_t n_nodes = util::ipow(m, static_cast<unsigned>(l));
      if (n_nodes > (std::size_t{1} << 24)) continue;
      const double hsn = hsn_bisection_bandwidth(1.0, n_nodes, m, l);
      const double cube = hypercube_bisection_bandwidth(1.0, n_nodes, m);
      t3.add(m, n_nodes / m, n_nodes, hsn, cube,
             util::format_ratio(hsn / cube));
    }
  }
  t3.print(std::cout);
  std::cout << "(Every ratio is >= 1.33x; it grows with nodes-per-chip — the "
               "paper's \"4 times higher with 256 nodes per chip\" appears "
               "in the M=256 rows.)\n";
  return 0;
}
