// LAYOUT (§5, refs [29]/[33]): super-IPGs can be laid out in smaller area
// than similar-size hypercubes. Reproduced via the recursive grid layout
// scheme (recursive min-cut bisection placement) and Thompson's
// bisection-width area lower bound.
#include <iostream>

#include "metrics/bisection.hpp"
#include "metrics/layout.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::metrics;

  std::cout << "=== LAYOUT: recursive grid layouts, 64- and 256-node "
               "networks ===\n";
  std::cout << "paper (§5, refs [29][33]): several super-IPGs can be laid "
               "out in areas smaller than a similar-size hypercube.\n\n";

  util::Table t;
  t.header({"network", "N", "edges", "total wire", "avg wire", "max wire",
            "bisection width", "Thompson area >="});

  auto row = [&t](const std::string& name, const Graph& g) {
    const auto l = recursive_bisection_layout(g, 4, 7);
    const auto b = bisection_width_heuristic(g, 12);
    t.add(name, g.num_nodes(), g.num_edges(), l.total_wire_length,
          l.avg_wire_length, l.max_wire_length, b.cut,
          thompson_area_lower_bound(b.cut));
  };

  const auto q3 = std::make_shared<HypercubeNucleus>(3);
  row("HSN(2,Q3)", make_hsn(2, q3).to_graph());
  row("SFN(2,Q3)", make_sfn(2, q3).to_graph());
  row("complete-CN(2,Q3)", make_complete_cn(2, q3).to_graph());
  row("Q6", hypercube_graph(6));
  row("8-ary 2-cube", kary_ncube_graph(8, 2));

  const auto q4 = std::make_shared<HypercubeNucleus>(4);
  row("HSN(2,Q4)", make_hsn(2, q4).to_graph());
  row("Q8", hypercube_graph(8));
  row("16-ary 2-cube", kary_ncube_graph(16, 2));
  t.print(std::cout);

  std::cout << "\nAt each size the super-IPGs need about half the "
               "hypercube's total wire and a quarter of its Thompson area — "
               "the §5 claim. (The 2-D torus is even more layout-friendly, "
               "as expected of a planar topology, but pays for it in the §4 "
               "bandwidth metrics: see bench_bisection / bench_mcmp_sim.)\n";
  return 0;
}
