// COR-4.2 / COR-4.4 / THM-4.5/4.6: intercluster diameter and average
// intercluster distance, measured exactly by 0-1 BFS, against the paper's
// closed forms and the degree-based lower bounds.
#include <iostream>

#include "metrics/costs.hpp"
#include "metrics/distances.hpp"
#include "metrics/supergen_words.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::metrics;

  const auto q2 = std::make_shared<HypercubeNucleus>(2);

  std::cout << "=== COR-4.2: intercluster diameter = l - 1 = log_M N - 1 ===\n\n";
  util::Table t;
  t.header({"network", "N", "l", "paper D_ic", "measured D_ic", "avg IC dist"});
  auto row = [&t](const SuperIpg& s, std::size_t paper) {
    const auto stats = intercluster_stats(s.to_graph(), s.nucleus_clustering());
    t.add(s.name(), s.num_nodes(), s.levels(), paper, stats.diameter,
          stats.average);
  };
  for (std::size_t l = 2; l <= 5; ++l) row(make_hsn(l, q2), l - 1);
  row(make_ring_cn(4, q2), 3);
  row(make_complete_cn(4, q2), 3);
  row(make_sfn(4, q2), 3);
  row(make_directed_cn(4, q2), 3);  // Cor 4.2 lists the directed CN too
  row(make_hsn(2, std::make_shared<StarNucleus>(4)), 1);  // star nucleus
  {
    // RCC(2,Q2): flat l = log_M N = 4 over the base nucleus.
    const SuperIpg rcc = make_rcc(2, q2);
    const auto stats = intercluster_stats(rcc.to_graph(),
                                          base_nucleus_clustering(rcc));
    t.add(rcc.name() + " [RCC(2,Q2)]", rcc.num_nodes(), 4, 3, stats.diameter,
          stats.average);
  }
  t.print(std::cout);

  std::cout << "\n=== §4.2 hypercube reference: 12-cube, 16-node chips ===\n";
  {
    const Graph g = hypercube_graph(12);
    const auto c = hypercube_subcube_clustering(12, 16);
    const auto stats = intercluster_stats(g, c, 4);
    std::cout << "paper: average intercluster distance exactly 4  |  measured: "
              << stats.average << " (diameter " << stats.diameter << ")\n";
  }

  std::cout << "\n=== COR-4.4: symmetric variants (word analysis, Thm "
               "4.1/4.3) ===\n\n";
  util::Table t2;
  t2.header({"family", "l", "t (plain)", "t_S (symmetric)", "paper t_S"});
  for (std::size_t l = 3; l <= 6; ++l) {
    const auto hsn_stats = analyze_supergen_words(make_hsn(l, q2));
    t2.add("HSN", l, hsn_stats.t_visit_all, hsn_stats.t_symmetric, 2 * l - 2);
    const auto cn_stats = analyze_supergen_words(make_complete_cn(l, q2));
    t2.add("complete-CN", l, cn_stats.t_visit_all, cn_stats.t_symmetric, l);
    const auto ring_stats = analyze_supergen_words(make_ring_cn(l, q2));
    t2.add("ring-CN", l, ring_stats.t_visit_all, ring_stats.t_symmetric,
           l == 3 ? 3 : (3 * l) / 2 - 2);
    const auto sfn_stats = analyze_supergen_words(make_sfn(l, q2));
    t2.add("SFN", l, sfn_stats.t_visit_all, sfn_stats.t_symmetric,
           std::to_string(2 * l - 2) + " (upper bd)");
  }
  t2.print(std::cout);
  std::cout << "(SFN: the paper's 2l-2 is an upper bound; exact BFS finds "
               "shorter words for l >= 6 — pancake flips rearrange faster.)\n";

  std::cout << "\n=== THM-4.5/4.6: optimality vs degree-based lower bounds ===\n\n";
  util::Table t3;
  t3.header({"network", "N", "M", "IC degree", "measured avg", "lower bound",
             "ratio"});
  auto opt_row = [&t3](const SuperIpg& s) {
    const Graph g = s.to_graph();
    const auto chips = s.nucleus_clustering();
    const auto census = census_links(g, chips);
    const auto stats = intercluster_stats(g, chips, 16);
    const double lb = avg_intercluster_distance_lower_bound(
        s.num_nodes(), s.nucleus_size(), census.avg_offchip_per_node);
    t3.add(s.name(), s.num_nodes(), s.nucleus_size(),
           census.avg_offchip_per_node, stats.average, lb,
           util::format_ratio(stats.average / lb));
  };
  opt_row(make_hsn(3, std::make_shared<HypercubeNucleus>(3)));
  opt_row(make_hsn(3, std::make_shared<HypercubeNucleus>(4)));
  opt_row(make_complete_cn(3, std::make_shared<HypercubeNucleus>(3)));
  opt_row(make_sfn(3, std::make_shared<HypercubeNucleus>(3)));
  opt_row(make_hsn(2, std::make_shared<HypercubeNucleus>(5)));
  t3.print(std::cout);
  std::cout << "(Ratios are small constants: asymptotically optimal within a "
               "constant factor, as Thm 4.5/4.6 state.)\n";

  std::cout << "\n=== §4.2 end: ID-cost and II-cost comparison ===\n";
  std::cout << "paper: the products (intercluster degree x diameter) and "
               "(x intercluster diameter) rank topologies for MCMPs.\n\n";
  util::Table t4;
  t4.header({"network", "N", "IC degree", "diam", "IC diam", "ID-cost",
             "II-cost", "IIA-cost"});
  auto cost_row = [&t4](const std::string& name, const Graph& g,
                        const Clustering& chips) {
    const auto c = metrics::compute_costs(g, chips, 16);
    t4.add(name, g.num_nodes(), c.intercluster_degree, c.diameter,
           c.intercluster_diameter, c.id_cost, c.ii_cost, c.iia_cost);
  };
  {
    const auto q4n = std::make_shared<HypercubeNucleus>(4);
    const SuperIpg hsn = make_hsn(2, q4n);
    cost_row(hsn.name(), hsn.to_graph(), hsn.nucleus_clustering());
    const SuperIpg sfn = make_sfn(2, q4n);
    cost_row(sfn.name(), sfn.to_graph(), sfn.nucleus_clustering());
    cost_row("Q8", hypercube_graph(8), hypercube_subcube_clustering(8, 16));
    cost_row("16-ary 2-cube", kary_ncube_graph(16, 2),
             kary2_block_clustering(16, 4));
    cost_row("CCC(5)", ccc_graph(5), ccc_cycle_clustering(5));
  }
  t4.print(std::cout);
  std::cout << "(Lower is better everywhere; the super-IPGs dominate on the "
               "intercluster products, CCC wins ID-cost at the price of a "
               "large diameter.)\n";
  return 0;
}
