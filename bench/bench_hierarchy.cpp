// HIER: §4's closing extension — three packaging levels (chip, board,
// cabinet). 4096 nodes as 256 chips x 16 nodes on 16 boards x 16 chips;
// every design gets identical chip pin budgets and identical board
// connector budgets. Reports per-level traffic (how many chip/board
// boundaries a random route crosses) and simulated permutation routing.
#include <iostream>
#include <memory>

#include "mcmp/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;
using namespace ipg::mcmp;

struct Design {
  std::string name;
  Graph graph;
  sim::Router router;
};

}  // namespace

int main() {
  std::cout << "=== HIER: three-level packaging (paper §4: 'easily extended "
               "to ... more than two levels') ===\n";
  std::cout << "4096 nodes = 16 boards x 16 chips x 16 nodes; chip budget "
               "16w, board budget 64w, on-chip links non-bottleneck.\n\n";

  const PackagingHierarchy h(4096, {16, 256});
  const std::vector<double> budgets{16.0, 64.0};

  std::vector<Design> designs;
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(3, std::make_shared<HypercubeNucleus>(4)));
  designs.push_back({hsn->name(), hsn->to_graph(),
                     [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }});
  designs.push_back({"Q12", hypercube_graph(12), sim::hypercube_router(12)});
  designs.push_back({"64-ary 2-cube", kary_ncube_graph(64, 2),
                     sim::kary_router(64, 2)});

  // The torus packages naturally as nested squares, not id blocks.
  const PackagingHierarchy torus_h(
      std::vector<Clustering>{kary2_block_clustering(64, 4),
                              kary2_block_clustering(64, 16)});

  util::Table t;
  t.header({"design", "avg chip crossings", "avg board crossings",
            "chip diam", "board diam", "makespan (cycles)",
            "throughput (flits/node/cyc)"});
  for (auto& d : designs) {
    const PackagingHierarchy& dh =
        d.name == "64-ary 2-cube" ? torus_h : h;
    const auto traffic = level_traffic(d.graph, dh, 8);
    auto net = make_hierarchical_network(Graph(d.graph), dh, budgets, 1024.0);
    double makespan = 0, throughput = 0;
    const int reps = 4;
    for (int rep = 0; rep < reps; ++rep) {
      util::Xoshiro256 rng(400 + static_cast<std::uint64_t>(rep));
      const auto perm = sim::random_permutation(net.num_nodes(), rng);
      sim::SimConfig cfg;
      cfg.packet_length_flits = 16;
      const auto r = sim::run_batch(net, d.router, perm, cfg);
      makespan += r.makespan_cycles;
      throughput += r.throughput_flits_per_node_cycle;
    }
    t.add(d.name, traffic.avg_crossings[0], traffic.avg_crossings[1],
          traffic.diameter[0], traffic.diameter[1], makespan / reps,
          throughput / reps);
  }
  t.print(std::cout);

  std::cout << "\nNote how the super-IPG's hierarchy lines up with the "
               "packaging: a route crosses at most l-1 = 2 chip boundaries "
               "and at most 1 board boundary, while the hypercube pays "
               "log-many at both levels — the §4 argument survives the "
               "extra level intact.\n";
  return 0;
}
