// Simulator hot-path benchmark: packets/sec for batch, open-loop, and
// total-exchange runs on a fixed 512-node network (Q9, 32 chips x 16
// nodes, unit chip capacity), plus a 16-point open-rate sweep timed at one
// thread vs the machine pool. Emits BENCH_sim.json so CI can track the
// perf trajectory across commits; the acceptance floor for this overhaul
// is total exchange >= 3x the pre-arena engine.
//
// With --cache-dir DIR the replicate and rate sweeps run through the
// content-addressed result store (src/store), making repeated invocations
// warm-start incremental; the default stays uncached so the tracked perf
// numbers always measure the engines, never the disk.
//
// A second section measures the sharded parallel engine's strong-scaling
// curve — a fixed 64k-node HSN(4, Q4) cyclic-exchange workload at K = 1, 2,
// 4, ... domains, bit-checked against the kArena baseline — plus a
// bounded-buffer point (HSN(3, Q4), node_buffer_packets = 4) that keeps the
// credit protocol on the measured path, and drives one million-node
// HSN(5, Q4) exchange round end to end. Emitted separately as
// BENCH_sim_scale.json.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "store/fingerprint.hpp"
#include "store/result_store.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ipg;
using namespace ipg::sim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  std::size_t packets = 0;
  double seconds = 0;
  double packets_per_sec() const {
    return static_cast<double>(packets) / seconds;
  }
};

void emit_json(std::ostream& os, const std::vector<Measurement>& rows,
               double sweep_1thread_s, double sweep_pool_s,
               std::size_t pool_threads, const ipg::store::ResultStore* cache) {
  ipg::util::JsonWriter w(os);
  w.begin_object().field(
      "network", "Q9 (512 nodes, 32 chips x 16 nodes, unit chip capacity)");
  for (const Measurement& m : rows) {
    w.begin_object(m.name)
        .field("packets", static_cast<std::uint64_t>(m.packets))
        .field("seconds", m.seconds)
        .field("packets_per_sec", m.packets_per_sec())
        .end_object();
  }
  w.begin_object("rate_sweep_16pt")
      .field("seconds_1_thread", sweep_1thread_s)
      .field("seconds_pool", sweep_pool_s)
      .field("pool_threads", static_cast<std::uint64_t>(pool_threads))
      .end_object();
  if (cache != nullptr) {
    const ipg::store::StoreStats s = cache->stats();
    w.begin_object("cache")
        .field("root", cache->root().string())
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("writes", s.writes)
        .end_object();
  }
  w.end_object();
  os << "\n";
}

/// Cyclic-offset exchange rounds: round r has every node v send one packet
/// to (v + off_r) mod n at t = r. A total-exchange-shaped load whose packet
/// count is rounds * n instead of n^2, so it scales to 64k and 1M nodes.
std::vector<Injection> cyclic_exchange(std::size_t n, std::size_t rounds) {
  std::vector<Injection> inj;
  inj.reserve(n * rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    // Guard off == 0 (possible when 8191 = -1 mod n, e.g. n = 4096): a zero
    // offset would make every injection a rejected self-send.
    const std::size_t off = std::max<std::size_t>((r * 8191 + 1) % n, 1);
    for (std::size_t v = 0; v < n; ++v) {
      inj.push_back({static_cast<NodeId>(v),
                     static_cast<NodeId>((v + off) % n),
                     static_cast<double>(r)});
    }
  }
  return inj;
}

struct ScaleRow {
  std::uint32_t domains = 0;
  double seconds = 0;
  bool bit_identical = false;
};

int run_sharded_scaling(std::ostream& json) {
  using namespace ipg::topology;
  // 64k-node super-IPG: 4-level HSN over a Q4 nucleus, one chip per
  // nucleus cluster.
  auto hsn = std::make_shared<SuperIpg>(
      make_hsn(4, std::make_shared<HypercubeNucleus>(4)));
  const auto net = mcmp::make_unit_chip_network(hsn->to_graph(),
                                                hsn->nucleus_clustering(), 1.0);
  const Router router = [hsn](NodeId s, NodeId d) { return hsn->route(s, d); };
  const std::size_t n = net.num_nodes();
  const auto injections = cyclic_exchange(n, 4);

  SimConfig cfg;
  cfg.packet_length_flits = 16;

  auto t0 = Clock::now();
  const auto baseline = run_trace(net, router, injections, cfg);
  const double arena_s = seconds_since(t0);

  const std::size_t pool = util::ThreadPool::global().size();
  std::vector<ScaleRow> rows;
  for (std::uint32_t k = 1; k <= std::max<std::size_t>(pool, 8); k *= 2) {
    SimConfig scfg = cfg;
    scfg.engine = Engine::kSharded;
    scfg.shard_domains = k;
    auto tk = Clock::now();
    const auto r = run_trace(net, router, injections, scfg);
    ScaleRow row;
    row.domains = k;
    row.seconds = seconds_since(tk);
    row.bit_identical =
        std::bit_cast<std::uint64_t>(r.makespan_cycles) ==
            std::bit_cast<std::uint64_t>(baseline.makespan_cycles) &&
        std::bit_cast<std::uint64_t>(r.avg_latency_cycles) ==
            std::bit_cast<std::uint64_t>(baseline.avg_latency_cycles) &&
        r.packets_delivered == baseline.packets_delivered;
    rows.push_back(row);
    if (!row.bit_identical) {
      std::cerr << "FAIL: kSharded K=" << k << " diverged from kArena\n";
    }
  }

  // Bounded-buffer strong-scaling point: the same cyclic-exchange shape on
  // a 4096-node HSN(3, Q4) with node_buffer_packets = 4, so the credit
  // protocol (claim floors, frontier commits, serial-window fallback) is on
  // the measured path. Bit-checked against the bounded kArena baseline at
  // every K; backpressure costs extra barriers, so this curve tracks how
  // much scaling survives tight buffers.
  auto mid = std::make_shared<SuperIpg>(
      make_hsn(3, std::make_shared<HypercubeNucleus>(4)));
  const auto mid_net = mcmp::make_unit_chip_network(
      mid->to_graph(), mid->nucleus_clustering(), 1.0);
  const Router mid_router = [mid](NodeId s, NodeId d) {
    return mid->route(s, d);
  };
  const auto mid_inj = cyclic_exchange(mid_net.num_nodes(), 4);
  SimConfig bounded_cfg;
  bounded_cfg.packet_length_flits = 16;
  bounded_cfg.node_buffer_packets = 4;
  auto tm = Clock::now();
  const auto bounded_baseline = run_trace(mid_net, mid_router, mid_inj,
                                          bounded_cfg);
  const double bounded_arena_s = seconds_since(tm);
  std::vector<ScaleRow> bounded_rows;
  for (std::uint32_t k = 1; k <= std::max<std::size_t>(pool, 8); k *= 2) {
    SimConfig scfg = bounded_cfg;
    scfg.engine = Engine::kSharded;
    scfg.shard_domains = k;
    auto tk = Clock::now();
    const auto r = run_trace(mid_net, mid_router, mid_inj, scfg);
    ScaleRow row;
    row.domains = k;
    row.seconds = seconds_since(tk);
    row.bit_identical =
        std::bit_cast<std::uint64_t>(r.makespan_cycles) ==
            std::bit_cast<std::uint64_t>(bounded_baseline.makespan_cycles) &&
        std::bit_cast<std::uint64_t>(r.avg_latency_cycles) ==
            std::bit_cast<std::uint64_t>(
                bounded_baseline.avg_latency_cycles) &&
        r.packets_delivered == bounded_baseline.packets_delivered;
    bounded_rows.push_back(row);
    if (!row.bit_identical) {
      std::cerr << "FAIL: bounded kSharded K=" << k
                << " diverged from bounded kArena\n";
    }
  }

  // Million-node run: one exchange round over a 5-level HSN (16^5 nodes),
  // proving the sharded engine completes at that scale.
  auto big = std::make_shared<SuperIpg>(
      make_hsn(5, std::make_shared<HypercubeNucleus>(4)));
  const auto big_net = mcmp::make_unit_chip_network(
      big->to_graph(), big->nucleus_clustering(), 1.0);
  const Router big_router = [big](NodeId s, NodeId d) {
    return big->route(s, d);
  };
  const auto big_inj = cyclic_exchange(big_net.num_nodes(), 1);
  SimConfig big_cfg;
  big_cfg.packet_length_flits = 16;
  big_cfg.engine = Engine::kSharded;
  auto tb = Clock::now();
  const auto big_res = run_trace(big_net, big_router, big_inj, big_cfg);
  const double big_s = seconds_since(tb);
  const bool big_ok = big_res.packets_delivered == big_inj.size();

  util::JsonWriter w(json);
  w.begin_object()
      .field("network", "HSN(4, Q4) (65536 nodes, 4096 chips x 16 nodes)")
      .field("workload", "4-round cyclic exchange, " +
                             std::to_string(injections.size()) + " packets")
      .field("pool_threads", static_cast<std::uint64_t>(pool));
  w.begin_object("arena_baseline").field("seconds", arena_s).end_object();
  bool all_identical = true;
  w.begin_array("sharded");
  for (const ScaleRow& row : rows) {
    all_identical = all_identical && row.bit_identical;
    w.begin_object()
        .field("domains", row.domains)
        .field("seconds", row.seconds)
        .field("speedup_vs_arena", arena_s / row.seconds)
        .field("bit_identical", row.bit_identical)
        .end_object();
  }
  w.end_array();
  w.begin_object("bounded_buffers")
      .field("network", "HSN(3, Q4) (4096 nodes, 256 chips x 16 nodes)")
      .field("workload", "4-round cyclic exchange, " +
                             std::to_string(mid_inj.size()) + " packets")
      .field("node_buffer_packets",
             static_cast<std::uint64_t>(bounded_cfg.node_buffer_packets));
  w.begin_object("arena_baseline")
      .field("seconds", bounded_arena_s)
      .end_object();
  w.begin_array("sharded");
  for (const ScaleRow& row : bounded_rows) {
    all_identical = all_identical && row.bit_identical;
    w.begin_object()
        .field("domains", row.domains)
        .field("seconds", row.seconds)
        .field("speedup_vs_arena", bounded_arena_s / row.seconds)
        .field("bit_identical", row.bit_identical)
        .end_object();
  }
  w.end_array();
  w.end_object();
  w.begin_object("million_node")
      .field("network", "HSN(5, Q4)")
      .field("nodes", static_cast<std::uint64_t>(big_net.num_nodes()))
      .field("packets", static_cast<std::uint64_t>(big_inj.size()))
      .field("seconds", big_s)
      .field("delivered_all", big_ok)
      .end_object();
  w.end_object();
  json << "\n";
  return all_identical && big_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional warm-start mode: --cache-dir DIR routes the replicate and rate
  // sweeps through the content-addressed store. Off by default so the
  // tracked perf numbers always measure the engines.
  std::unique_ptr<store::ResultStore> cache;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-dir" && i + 1 < argc) {
      cache = std::make_unique<store::ResultStore>(argv[++i]);
      cache->set_log(&std::cerr);
    } else {
      std::cerr << "usage: " << argv[0] << " [--cache-dir DIR]\n";
      return 2;
    }
  }

  const auto net = mcmp::make_unit_chip_network(
      topology::hypercube_graph(9),
      topology::hypercube_subcube_clustering(9, 16), 1.0);
  const Router router = hypercube_router(9);
  SimConfig cfg;
  cfg.packet_length_flits = 16;

  std::vector<Measurement> rows;
  {
    auto t0 = Clock::now();
    const auto r = run_total_exchange(net, router, cfg);
    rows.push_back({"total_exchange", r.packets_delivered, seconds_since(t0)});
  }
  {
    auto t0 = Clock::now();
    const auto r =
        run_open(net, router, uniform_traffic(net.num_nodes()), 0.1, 600, cfg);
    rows.push_back({"open", r.packets_delivered, seconds_since(t0)});
  }
  // Per-job progress goes to stderr (sim::StreamSweepProgress) so stdout
  // stays pure table + JSON for CI consumption.
  StreamSweepProgress progress(std::cerr);
  {
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= 16; ++s) seeds.push_back(s);
    auto jobs = batch_replicate_sweep(net, router, seeds, cfg);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SimConfig keyed = cfg;
      keyed.seed = seeds[i];
      jobs[i].cache_key = store::sim_cache_key(
          net, "ecube", store::workload_batch_perm(seeds[i]), keyed);
    }
    auto t0 = Clock::now();
    const auto outcomes =
        run_sweep(jobs, util::ThreadPool::global(), &progress, cache.get());
    std::size_t packets = 0;
    for (const auto& o : outcomes) packets += o.result.packets_delivered;
    rows.push_back({"batch", packets, seconds_since(t0)});
  }

  // 16-point open-rate sweep: single worker vs the machine pool. Per-point
  // results are seed-deterministic, so only the wall clock may differ.
  std::vector<double> rates;
  for (int i = 1; i <= 16; ++i) rates.push_back(0.01 * i);
  SimConfig open_cfg = cfg;
  open_cfg.packet_length_flits = 8;
  auto jobs = open_rate_sweep(net, router, uniform_traffic(net.num_nodes()),
                              rates, 200, open_cfg);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].cache_key = store::sim_cache_key(
        net, "ecube", store::workload_open(rates[i], 200, "uniform"), open_cfg);
  }
  // Both timed runs carry the same progress reporter so the 1-thread vs
  // pool comparison stays apples to apples. (In --cache-dir mode the serial
  // pass seeds the store, so the pooled pass measures warm-start loads.)
  util::ThreadPool one(1);
  auto t1 = Clock::now();
  const auto serial = run_sweep(jobs, one, &progress, cache.get());
  const double sweep_1thread_s = seconds_since(t1);
  auto t2 = Clock::now();
  const auto pooled =
      run_sweep(jobs, util::ThreadPool::global(), &progress, cache.get());
  const double sweep_pool_s = seconds_since(t2);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].result.avg_latency_cycles !=
        pooled[i].result.avg_latency_cycles) {
      std::cerr << "FAIL: sweep point " << serial[i].label
                << " differs across thread counts\n";
      return 1;
    }
  }

  const std::size_t pool_threads = util::ThreadPool::global().size();
  emit_json(std::cout, rows, sweep_1thread_s, sweep_pool_s, pool_threads,
            cache.get());
  std::ofstream out("BENCH_sim.json");
  emit_json(out, rows, sweep_1thread_s, sweep_pool_s, pool_threads,
            cache.get());

  // Sharded-engine strong scaling + million-node run (BENCH_sim_scale.json).
  std::ofstream scale_out("BENCH_sim_scale.json");
  const int rc = run_sharded_scaling(scale_out);
  scale_out.close();  // flush before echoing the file to stdout
  std::ifstream echo("BENCH_sim_scale.json");
  std::cout << echo.rdbuf();
  return rc;
}
