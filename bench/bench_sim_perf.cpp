// Simulator hot-path benchmark: packets/sec for batch, open-loop, and
// total-exchange runs on a fixed 512-node network (Q9, 32 chips x 16
// nodes, unit chip capacity), plus a 16-point open-rate sweep timed at one
// thread vs the machine pool. Emits BENCH_sim.json so CI can track the
// perf trajectory across commits; the acceptance floor for this overhaul
// is total exchange >= 3x the pre-arena engine.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ipg;
using namespace ipg::sim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  std::size_t packets = 0;
  double seconds = 0;
  double packets_per_sec() const {
    return static_cast<double>(packets) / seconds;
  }
};

void emit_json(std::ostream& os, const std::vector<Measurement>& rows,
               double sweep_1thread_s, double sweep_pool_s,
               std::size_t pool_threads) {
  os << "{\n  \"network\": \"Q9 (512 nodes, 32 chips x 16 nodes, unit chip "
        "capacity)\",\n";
  for (const Measurement& m : rows) {
    os << "  \"" << m.name << "\": {\"packets\": " << m.packets
       << ", \"seconds\": " << m.seconds
       << ", \"packets_per_sec\": " << m.packets_per_sec() << "},\n";
  }
  os << "  \"rate_sweep_16pt\": {\"seconds_1_thread\": " << sweep_1thread_s
     << ", \"seconds_pool\": " << sweep_pool_s
     << ", \"pool_threads\": " << pool_threads << "}\n}\n";
}

}  // namespace

int main() {
  const auto net = mcmp::make_unit_chip_network(
      topology::hypercube_graph(9),
      topology::hypercube_subcube_clustering(9, 16), 1.0);
  const Router router = hypercube_router(9);
  SimConfig cfg;
  cfg.packet_length_flits = 16;

  std::vector<Measurement> rows;
  {
    auto t0 = Clock::now();
    const auto r = run_total_exchange(net, router, cfg);
    rows.push_back({"total_exchange", r.packets_delivered, seconds_since(t0)});
  }
  {
    auto t0 = Clock::now();
    const auto r =
        run_open(net, router, uniform_traffic(net.num_nodes()), 0.1, 600, cfg);
    rows.push_back({"open", r.packets_delivered, seconds_since(t0)});
  }
  // Per-job progress goes to stderr (sim::StreamSweepProgress) so stdout
  // stays pure table + JSON for CI consumption.
  StreamSweepProgress progress(std::cerr);
  {
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= 16; ++s) seeds.push_back(s);
    const auto jobs = batch_replicate_sweep(net, router, seeds, cfg);
    auto t0 = Clock::now();
    const auto outcomes =
        run_sweep(jobs, util::ThreadPool::global(), &progress);
    std::size_t packets = 0;
    for (const auto& o : outcomes) packets += o.result.packets_delivered;
    rows.push_back({"batch", packets, seconds_since(t0)});
  }

  // 16-point open-rate sweep: single worker vs the machine pool. Per-point
  // results are seed-deterministic, so only the wall clock may differ.
  std::vector<double> rates;
  for (int i = 1; i <= 16; ++i) rates.push_back(0.01 * i);
  SimConfig open_cfg = cfg;
  open_cfg.packet_length_flits = 8;
  const auto jobs = open_rate_sweep(net, router, uniform_traffic(net.num_nodes()),
                                    rates, 200, open_cfg);
  // Both timed runs carry the same progress reporter so the 1-thread vs
  // pool comparison stays apples to apples.
  util::ThreadPool one(1);
  auto t1 = Clock::now();
  const auto serial = run_sweep(jobs, one, &progress);
  const double sweep_1thread_s = seconds_since(t1);
  auto t2 = Clock::now();
  const auto pooled = run_sweep(jobs, util::ThreadPool::global(), &progress);
  const double sweep_pool_s = seconds_since(t2);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].result.avg_latency_cycles !=
        pooled[i].result.avg_latency_cycles) {
      std::cerr << "FAIL: sweep point " << serial[i].label
                << " differs across thread counts\n";
      return 1;
    }
  }

  const std::size_t pool_threads = util::ThreadPool::global().size();
  emit_json(std::cout, rows, sweep_1thread_s, sweep_pool_s, pool_threads);
  std::ofstream out("BENCH_sim.json");
  emit_json(out, rows, sweep_1thread_s, sweep_pool_s, pool_threads);
  return 0;
}
