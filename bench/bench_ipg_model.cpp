// EX-S2: the §2 worked example and the node-count identities of the
// super-IPG families (N = M^l) — the structural ground truth everything
// else builds on. Prints paper-vs-measured rows.
#include <iostream>

#include "core/ipg.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;

  std::cout << "=== EX-S2: the index-permutation graph model (paper §2) ===\n\n";

  const core::Ipg example = core::section2_example();
  std::cout << "Seed 123321 with generators 213456, 321456, 456123:\n";
  std::cout << "  paper: \"will result in 36 distinct nodes\"  |  measured: "
            << example.num_nodes() << " nodes\n";
  const auto seed = example.labels[0];
  std::cout << "  neighbours of the seed (paper lists 213321, 321321, 321123):\n";
  for (std::size_t g = 0; g < example.num_generators(); ++g) {
    std::cout << "    pi_" << g + 1 << "(" << seed.to_string()
              << ") = " << example.labels[example.neighbor[0][g]].to_string()
              << '\n';
  }

  std::cout << "\nFamily sizes (N = M^l) and structure:\n";
  util::Table t;
  t.header({"network", "levels l", "nucleus M", "nodes N", "generators",
            "degree<=", "t (Thm 3.1)"});
  const auto q2 = std::make_shared<topology::HypercubeNucleus>(2);
  const auto q3 = std::make_shared<topology::HypercubeNucleus>(3);
  const auto q4 = std::make_shared<topology::HypercubeNucleus>(4);
  auto add = [&t](const topology::SuperIpg& s) {
    t.add(s.name(), s.levels(), s.nucleus_size(), s.num_nodes(),
          s.num_generators(), s.to_graph().max_degree(),
          s.t_single_dimension());
  };
  add(topology::make_hsn(3, q4));       // HSN(3,Q4) — the paper's example
  add(topology::make_hsn(2, q4));       // = HCN(4,4) shape
  add(topology::make_hcn(3));
  add(topology::make_hfn(3));
  add(topology::make_ring_cn(4, q2));
  add(topology::make_complete_cn(4, q2));
  add(topology::make_sfn(4, q2));
  add(topology::make_rcc(2, q2));
  add(topology::make_rhsn(2, 2, q3));
  t.print(std::cout);

  std::cout << "\nAll rows satisfy N = M^l; t = 2 for HSN/complete-CN/SFN "
               "(Corollary 3.2's slowdown 3 = t+1).\n";

  std::cout << "\nDegree structure (IPGs need not be regular — generators "
               "may fix labels with repeated symbols):\n";
  util::Table td;
  td.header({"network", "min degree", "max degree", "nodes below max"});
  auto degree_row = [&td](const topology::SuperIpg& s) {
    const auto g = s.to_graph();
    std::size_t mind = g.num_nodes(), below = 0;
    for (topology::NodeId v = 0; v < g.num_nodes(); ++v) {
      mind = std::min(mind, g.degree(v));
      if (g.degree(v) < g.max_degree()) ++below;
    }
    td.add(s.name(), mind, g.max_degree(), below);
  };
  degree_row(topology::make_hsn(2, q4));
  degree_row(topology::make_ring_cn(3, q2));
  degree_row(topology::make_sfn(3, q2));
  td.print(std::cout);
  std::cout << "(The nodes below max degree are exactly those with equal "
               "super-symbols — their swap/shift generators are self-loops. "
               "A Cayley graph, by contrast, is always regular.)\n";
  return 0;
}
