// THM-3.1 / COR-3.2 / COR-3.3: single-dimension-communication emulation of
// HPN(l,G) — measured slowdown (t+1), embedding dilation, and congestion.
#include <iostream>

#include "emulation/embedding.hpp"
#include "emulation/sdc.hpp"
#include "topology/nucleus.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;

  std::cout << "=== THM-3.1 / COR-3.2/3.3: SDC emulation of HPN(l,G) ===\n";
  std::cout << "paper: slowdown t+1; t=2 (slowdown 3, dilation 3) for HSN, "
               "complete-CN, SFN;\n       per-dimension link congestion at "
               "most 2.\n\n";

  util::Table t;
  t.header({"super-IPG", "emulated HPN", "slowdown (paper)", "slowdown",
            "dilation", "link congestion/dim", "verified"});
  const auto q2 = std::make_shared<HypercubeNucleus>(2);
  const auto q3 = std::make_shared<HypercubeNucleus>(3);

  auto row = [&t](const SuperIpg& s, const std::string& paper_slowdown) {
    const emulation::SdcEmulation emu(s);
    emu.verify();
    const auto m = emulation::measure_embedding(emu);
    t.add(s.name(),
          "HPN(" + std::to_string(s.levels()) + "," + s.nucleus().name() + ")",
          paper_slowdown, emu.slowdown(), m.dilation, m.per_dim_link_congestion,
          true);
  };
  row(make_hsn(3, q2), "3");
  row(make_hsn(4, q2), "3");
  row(make_hsn(3, q3), "3");
  row(make_complete_cn(4, q2), "3");
  row(make_sfn(4, q2), "3");
  row(make_ring_cn(4, q2), "2*floor(l/2)+1 = 5");
  row(make_ring_cn(6, q2), "2*floor(l/2)+1 = 7");
  t.print(std::cout);

  std::cout << "\n'verified' = every emulation word realizes exactly its HPN "
               "dimension on every node.\n";
  std::cout << "complete-CN reaches link congestion 1 for l >= 3 (L_i out, "
               "L_{l-i} back use disjoint links) — better than the paper's "
               "bound of 2.\n";
  return 0;
}
