// Degraded-throughput curve: how much random-routing capacity survives as
// off-chip links die? HSN(2,Q4) vs the equal-cost hypercube Q8 (256 nodes,
// 16 chips x 16 nodes, unit chip capacity) run the same open-loop load
// with k = 0, 2, ..., 12 off-chip links dead from t=0, fault-aware
// rerouting and a 3-retry backoff ladder enabled. Per network the k points
// are a fault_plan_sweep fanned across the machine pool. Emits
// BENCH_faults.json so CI can track the robustness trajectory alongside
// BENCH_sim.json's raw speed.
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;
using namespace ipg::sim;

struct Net {
  std::string name;
  Graph graph;
  Clustering chips;
  SimNetwork network;
  Router router;
};

std::vector<Net> build_networks() {
  std::vector<Net> nets;
  {
    auto hsn = std::make_shared<SuperIpg>(
        make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
    Graph g = hsn->to_graph();
    Clustering chips = hsn->nucleus_clustering();
    nets.push_back({hsn->name(), Graph(g), Clustering(chips),
                    mcmp::make_unit_chip_network(std::move(g),
                                                 std::move(chips), 1.0),
                    [hsn](NodeId s, NodeId d) { return hsn->route(s, d); }});
  }
  {
    Graph g = hypercube_graph(8);
    Clustering chips = hypercube_subcube_clustering(8, 16);
    nets.push_back({"Q8", Graph(g), Clustering(chips),
                    mcmp::make_unit_chip_network(std::move(g),
                                                 std::move(chips), 1.0),
                    hypercube_router(8)});
  }
  return nets;
}

struct Point {
  std::size_t dead_links = 0;
  SimResult result;
};

void emit_json(std::ostream& os,
               const std::vector<std::pair<std::string, std::vector<Point>>>& curves) {
  util::JsonWriter w(os);
  w.begin_object().field(
      "workload",
      "open-loop uniform, rate 0.05, 400 inject cycles, 16-flit packets, "
      "3 retries, k off-chip links dead from t=0");
  w.begin_object("curves");
  for (const auto& [name, pts] : curves) {
    w.begin_array(name);
    for (const Point& pt : pts) {
      const SimResult& r = pt.result;
      w.begin_object()
          .field("dead_offchip_links", static_cast<std::uint64_t>(pt.dead_links))
          .field("throughput_flits_per_node_cycle",
                 r.throughput_flits_per_node_cycle)
          .field("delivered_fraction", r.delivered_fraction)
          .field("packets_dropped", static_cast<std::uint64_t>(r.packets_dropped))
          .field("packets_retransmitted",
                 static_cast<std::uint64_t>(r.packets_retransmitted))
          .field("reroute_hops", static_cast<std::uint64_t>(r.reroute_hops));
      // Zero-delivery points report NaN latency, which JSON cannot carry —
      // omit the field rather than emit a 0 that reads as perfect latency.
      w.field_if_finite("avg_latency_cycles", r.avg_latency_cycles);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object().end_object();
  os << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Degraded throughput: HSN(2,Q4) vs Q8 under off-chip "
               "link deaths ===\n"
            << "256 nodes, 16 chips x 16 nodes, equal per-chip off-chip "
               "bandwidth; fault-aware rerouting + retry enabled.\n\n";

  const std::vector<std::size_t> kills{0, 2, 4, 6, 8, 10, 12};
  SimConfig cfg;
  cfg.packet_length_flits = 16;
  cfg.max_retries = 3;
  cfg.retry_backoff_cycles = 32;

  std::vector<std::pair<std::string, std::vector<Point>>> curves;
  for (const Net& net : build_networks()) {
    std::vector<std::shared_ptr<const FaultPlan>> plans;
    for (const std::size_t k : kills) {
      plans.push_back(std::make_shared<const FaultPlan>(
          FaultPlan::random_link_faults(net.graph, &net.chips, k, 0.0, 0.0, 7)));
    }
    const auto jobs =
        fault_plan_sweep(net.network, net.router,
                         uniform_traffic(net.network.num_nodes()), 0.05, 400,
                         plans, cfg);
    // Progress on stderr keeps stdout's table + JSON clean.
    StreamSweepProgress progress(std::cerr);
    const auto outcomes =
        run_sweep(jobs, util::ThreadPool::global(), &progress);

    util::Table t;
    t.header({"dead off-chip links", "throughput (flits/node/cyc)",
              "delivered frac", "dropped", "retx", "reroute hops",
              "avg latency"});
    std::vector<Point> pts;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const SimResult& r = outcomes[i].result;
      t.add(kills[i], r.throughput_flits_per_node_cycle, r.delivered_fraction,
            r.packets_dropped, r.packets_retransmitted, r.reroute_hops,
            r.avg_latency_cycles);
      pts.push_back({kills[i], r});
    }
    std::cout << "--- " << net.name << " ---\n";
    t.print(std::cout);
    std::cout << "\n";
    curves.push_back({net.name, std::move(pts)});
  }

  emit_json(std::cout, curves);
  std::ofstream out("BENCH_faults.json");
  emit_json(out, curves);
  return 0;
}
