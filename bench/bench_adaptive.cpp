// Minimal vs UGAL adaptive routing under adversarial traffic (§4 rerun
// with the congestion-aware layer of sim/adaptive.hpp). Four networks —
// the super-IPG HSN(2,Q4), its equal-cost hypercube Q8, and the dragonfly
// DF(4,2) / fat-tree FT(4) comparison fabrics — each run adversarial batch
// permutations (transpose, bit-reversal, tornado, neighbor-group shift,
// hotspot-style funnels) twice: once with pure minimal routing, once with
// a UGAL planner fed by a CongestionMonitor that watched the minimal run.
// Emits BENCH_adaptive.json so CI can track the adaptive win alongside
// BENCH_sim.json's raw speed. Every number here is bit-identical across
// the kArena/kReference/kSharded engines (tests/test_sim_adaptive.cpp and
// the adaptive-routing conformance check pin that), so the bench runs the
// default engine only.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mcmp/capacity.hpp"
#include "sim/adaptive.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;
using namespace ipg::sim;

struct Pattern {
  std::string name;
  std::vector<NodeId> dst;
};

struct Net {
  std::string name;
  SimNetwork network;
  Router router;
  /// Routable-endpoint prefix (fat-tree hosts); 0 = every node.
  std::size_t endpoints = 0;
  std::vector<Pattern> patterns;
};

/// Materializes a deterministic TrafficPattern over the first @p prefix
/// nodes of an @p n-node network (identity — no packet — elsewhere).
std::vector<NodeId> batch_of(const TrafficPattern& pattern, std::size_t n,
                             std::size_t prefix) {
  util::Xoshiro256 rng(1);  // the patterns used here never consult it
  std::vector<NodeId> dst(n);
  for (NodeId v = 0; v < n; ++v) {
    dst[v] = v < prefix ? pattern(v, rng) : v;
  }
  return dst;
}

std::vector<Net> build_networks() {
  std::vector<Net> nets;
  {
    auto hsn = std::make_shared<SuperIpg>(
        make_hsn(2, std::make_shared<HypercubeNucleus>(4)));
    Graph g = hsn->to_graph();
    Clustering chips = hsn->nucleus_clustering();
    const std::size_t n = g.num_nodes();
    Net net{hsn->name(),
            mcmp::make_unit_chip_network(std::move(g), std::move(chips), 1.0),
            [hsn](NodeId s, NodeId d) { return hsn->route(s, d); },
            0,
            {}};
    net.patterns.push_back({"transpose", batch_of(transpose_traffic(n), n, n)});
    net.patterns.push_back(
        {"bit-reversal", batch_of(bit_reversal_traffic(n), n, n)});
    net.patterns.push_back({"tornado", batch_of(tornado_traffic(n), n, n)});
    nets.push_back(std::move(net));
  }
  {
    Graph g = hypercube_graph(8);
    Clustering chips = hypercube_subcube_clustering(8, 16);
    const std::size_t n = g.num_nodes();
    Net net{"Q8",
            mcmp::make_unit_chip_network(std::move(g), std::move(chips), 1.0),
            hypercube_router(8),
            0,
            {}};
    net.patterns.push_back({"transpose", batch_of(transpose_traffic(n), n, n)});
    net.patterns.push_back(
        {"bit-reversal", batch_of(bit_reversal_traffic(n), n, n)});
    net.patterns.push_back({"tornado", batch_of(tornado_traffic(n), n, n)});
    nets.push_back(std::move(net));
  }
  {
    const std::size_t n = 36;  // DF(4,2): 9 groups x 4 routers
    Net net{"DF(4,2)",
            mcmp::make_unit_chip_network(dragonfly_graph(4, 2),
                                         dragonfly_group_clustering(4, 2),
                                         1.0),
            dragonfly_router(4, 2),
            0,
            {}};
    // Neighbor-group shift: every node targets the next group, so minimal
    // routing serializes each group's packets on ONE global link — the
    // canonical dragonfly adversary.
    net.patterns.push_back(
        {"group-shift", batch_of(shift_traffic(n, 4), n, n)});
    net.patterns.push_back({"tornado", batch_of(tornado_traffic(n), n, n)});
    nets.push_back(std::move(net));
  }
  {
    const std::size_t hosts = 16;  // FT(4): k^3/4 hosts of 36 nodes
    const std::size_t n = fat_tree_graph(4).num_nodes();
    Net net{"FT(4)",
            mcmp::make_unit_chip_network(fat_tree_graph(4),
                                         fat_tree_pod_clustering(4), 1.0),
            fat_tree_router(4),
            hosts,
            {}};
    net.patterns.push_back(
        {"transpose", batch_of(transpose_traffic(hosts), n, hosts)});
    net.patterns.push_back(
        {"tornado", batch_of(tornado_traffic(hosts), n, hosts)});
    nets.push_back(std::move(net));
  }
  return nets;
}

struct Point {
  std::string pattern;
  SimResult minimal;
  AdaptiveResult ugal;
};

void emit_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::vector<Point>>>& curves) {
  util::JsonWriter w(os);
  w.begin_object().field(
      "workload",
      "adversarial batch permutations, 16-flit packets, unit chip "
      "bandwidth; UGAL: 2 Valiant candidates, planned_weight 4, "
      "CongestionMonitor warmed on the minimal run");
  w.begin_object("networks");
  for (const auto& [name, pts] : curves) {
    w.begin_array(name);
    for (const Point& pt : pts) {
      w.begin_object().field("pattern", pt.pattern);
      w.begin_object("minimal")
          .field("makespan_cycles", pt.minimal.makespan_cycles)
          .field("throughput_flits_per_node_cycle",
                 pt.minimal.throughput_flits_per_node_cycle)
          .field("max_offchip_utilization",
                 pt.minimal.max_offchip_utilization);
      w.field_if_finite("avg_latency_cycles", pt.minimal.avg_latency_cycles);
      w.end_object();
      w.begin_object("ugal")
          .field("makespan_cycles", pt.ugal.sim.makespan_cycles)
          .field("throughput_flits_per_node_cycle",
                 pt.ugal.sim.throughput_flits_per_node_cycle)
          .field("max_offchip_utilization",
                 pt.ugal.sim.max_offchip_utilization)
          .field("packets_nonminimal",
                 static_cast<std::uint64_t>(pt.ugal.packets_nonminimal));
      w.field_if_finite("avg_latency_cycles",
                        pt.ugal.sim.avg_latency_cycles);
      w.end_object();
      w.field("ugal_speedup",
              pt.minimal.makespan_cycles / pt.ugal.sim.makespan_cycles);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object().end_object();
  os << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Minimal vs UGAL adaptive routing under adversarial "
               "traffic ===\n"
            << "Super-IPG HSN(2,Q4) and hypercube Q8 (256 nodes) vs the "
               "dragonfly DF(4,2) and fat-tree FT(4) baselines; per "
               "pattern: minimal batch, then UGAL with a monitor warmed on "
               "that run.\n\n";

  SimConfig cfg;
  cfg.packet_length_flits = 16;

  std::vector<std::pair<std::string, std::vector<Point>>> curves;
  for (const Net& net : build_networks()) {
    util::Table t;
    t.header({"pattern", "minimal makespan", "UGAL makespan", "speedup",
              "nonminimal pkts", "minimal max util", "UGAL max util"});
    std::vector<Point> pts;
    for (const Pattern& p : net.patterns) {
      CongestionMonitor monitor;
      SimConfig warm = cfg;
      warm.observer = &monitor;
      const SimResult minimal = run_batch(net.network, net.router, p.dst, warm);

      UgalConfig ugal;
      ugal.planned_weight = 4.0;
      ugal.intermediate_nodes = net.endpoints;
      const AdaptiveResult adaptive = run_adaptive_batch(
          net.network, net.router, p.dst, ugal, cfg, &monitor);

      t.add(p.name, minimal.makespan_cycles, adaptive.sim.makespan_cycles,
            minimal.makespan_cycles / adaptive.sim.makespan_cycles,
            adaptive.packets_nonminimal, minimal.max_offchip_utilization,
            adaptive.sim.max_offchip_utilization);
      pts.push_back({p.name, minimal, adaptive});
    }
    std::cout << "--- " << net.name << " ---\n";
    t.print(std::cout);
    std::cout << "\n";
    curves.push_back({net.name, std::move(pts)});
  }

  emit_json(std::cout, curves);
  std::ofstream out("BENCH_adaptive.json");
  emit_json(out, curves);
  return 0;
}
