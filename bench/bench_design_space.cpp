// Cold-vs-warm benchmark for the content-addressed result store
// (docs/DESIGN_SPACE.md): evaluates the stock design-space grid twice
// against a fresh store — the first pass computes and persists every
// simulation replicate and static metric bundle, the second must be served
// entirely from disk. Asserts (exit 1 on violation):
//   - the warm pass has a 100% hit rate (every sim job and static bundle),
//   - the warm pass is >= 10x faster than the cold pass,
//   - every metric of every design is bit-identical across the passes.
// Emits BENCH_design_space.json so CI tracks the speedup and hit rate.
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "explore/design_space.hpp"
#include "store/result_store.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using explore::DesignMetrics;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Every result-bearing field (the cache-accounting fields are expected to
/// differ between the passes and are excluded).
bool metrics_identical(const DesignMetrics& a, const DesignMetrics& b) {
  return a.name == b.name && a.nodes == b.nodes &&
         a.num_chips == b.num_chips && a.chip_size == b.chip_size &&
         bits_equal(a.offchip_links_per_node, b.offchip_links_per_node) &&
         bits_equal(a.offchip_link_bandwidth, b.offchip_link_bandwidth) &&
         bits_equal(a.avg_ic_distance, b.avg_ic_distance) &&
         a.ic_diameter == b.ic_diameter &&
         bits_equal(a.bisection_measured, b.bisection_measured) &&
         bits_equal(a.batch_throughput, b.batch_throughput) &&
         bits_equal(a.batch_avg_latency, b.batch_avg_latency) &&
         bits_equal(a.open_avg_latency, b.open_avg_latency) &&
         bits_equal(a.open_p99_latency, b.open_p99_latency);
}

}  // namespace

int main() {
  const std::filesystem::path root = "BENCH_design_cache";
  std::filesystem::remove_all(root);
  store::ResultStore cache(root);
  cache.set_log(&std::cerr);

  const auto grid = explore::default_grid(/*smoke=*/false);
  explore::ExploreConfig cfg;
  cfg.cache = &cache;
  cfg.seed_replicates = 8;

  const auto t_cold = Clock::now();
  const auto cold = explore::evaluate_grid(grid, cfg);
  const double cold_s = seconds_since(t_cold);
  const store::StoreStats cold_stats = cache.stats();

  const auto t_warm = Clock::now();
  const auto warm = explore::evaluate_grid(grid, cfg);
  const double warm_s = seconds_since(t_warm);
  const store::StoreStats warm_stats = cache.stats();

  // Warm-pass hit accounting: every sim job and every static bundle must
  // have come from the store.
  std::size_t warm_jobs = 0, warm_hits = 0, warm_static_misses = 0;
  for (const DesignMetrics& m : warm) {
    warm_jobs += m.sim_jobs;
    warm_hits += m.sim_cache_hits;
    if (!m.static_from_cache) ++warm_static_misses;
  }
  bool identical = cold.size() == warm.size();
  for (std::size_t i = 0; identical && i < cold.size(); ++i) {
    identical = metrics_identical(cold[i], warm[i]);
    if (!identical) {
      std::cerr << "FAIL: " << cold[i].name
                << " differs between cold and warm passes\n";
    }
  }
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;
  const bool all_hits = warm_hits == warm_jobs && warm_static_misses == 0;
  const bool fast_enough = speedup >= 10.0;

  util::Table t;
  t.header({"pass", "seconds", "sim jobs", "sim hits", "static misses"});
  std::size_t cold_jobs = 0, cold_hits = 0, cold_static_misses = 0;
  for (const DesignMetrics& m : cold) {
    cold_jobs += m.sim_jobs;
    cold_hits += m.sim_cache_hits;
    if (!m.static_from_cache) ++cold_static_misses;
  }
  t.add("cold", cold_s, cold_jobs, cold_hits, cold_static_misses);
  t.add("warm", warm_s, warm_jobs, warm_hits, warm_static_misses);
  t.print(std::cout);
  std::cout << "warm speedup: " << speedup << "x (floor 10x), hit rate "
            << warm_hits << "/" << warm_jobs << ", bit-identical: "
            << (identical ? "yes" : "NO") << "\n";

  const auto emit = [&](std::ostream& os) {
    util::JsonWriter w(os);
    w.begin_object()
        .field("schema", "ipg-design-space-bench-v1")
        .field("grid_points", static_cast<std::uint64_t>(grid.size()))
        .field("seed_replicates", static_cast<std::uint64_t>(cfg.seed_replicates))
        .field("cold_seconds", cold_s)
        .field("warm_seconds", warm_s)
        .field("warm_speedup", speedup)
        .field("warm_sim_jobs", static_cast<std::uint64_t>(warm_jobs))
        .field("warm_sim_hits", static_cast<std::uint64_t>(warm_hits))
        .field("warm_static_misses",
               static_cast<std::uint64_t>(warm_static_misses))
        .field("bit_identical", identical)
        .field("all_hits", all_hits)
        .field("speedup_floor_met", fast_enough);
    w.begin_object("store")
        .field("entries", cache.entry_count())
        .field("hits", warm_stats.hits)
        .field("misses", warm_stats.misses)
        .field("corrupt", warm_stats.corrupt)
        .field("writes", warm_stats.writes)
        .field("bytes_written", warm_stats.bytes_written)
        .field("cold_pass_writes", cold_stats.writes)
        .end_object();
    w.end_object();
    os << "\n";
  };
  emit(std::cout);
  std::ofstream out("BENCH_design_space.json");
  emit(out);

  if (!all_hits) std::cerr << "FAIL: warm pass was not 100% cache hits\n";
  if (!fast_enough) {
    std::cerr << "FAIL: warm speedup " << speedup << "x below the 10x floor\n";
  }
  return identical && all_hits && fast_enough ? 0 : 1;
}
