// SCALING: the paper's asymptotic claims as measured trends. For l = 2
// (chips grow with the machine) the off-chip advantage of the HSN over the
// hypercube grows as Theta(log N); for l = Theta(sqrt(log N)) it grows as
// Theta(sqrt(log N)). Measured exactly via 0-1 BFS across machine sizes.
#include <cmath>
#include <iostream>

#include "algorithms/comm_tasks.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;
  using namespace ipg::topology;
  using namespace ipg::algorithms;

  std::cout << "=== SCALING (l = 2): off-chip hops per random packet, HSN "
               "vs hypercube ===\n";
  std::cout << "paper: with l = O(1) the throughput advantage grows as "
               "Theta(log N).\n\n";
  util::Table t;
  t.header({"N", "chip M", "HSN hops", "Q hops", "advantage", "0.5*log2(N/M)+",
            "advantage/log2 N"});
  for (unsigned k = 3; k <= 7; ++k) {
    const auto hsn = make_hsn(2, std::make_shared<HypercubeNucleus>(k));
    const auto hc = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering(), 8);
    const auto bits = 2 * k;
    const Graph q = hypercube_graph(bits);
    const auto qc = offchip_counts(
        q, hypercube_subcube_clustering(bits, std::size_t{1} << k), 8);
    const double adv = qc.avg_intercluster_distance / hc.avg_intercluster_distance;
    t.add(std::size_t{1} << bits, std::size_t{1} << k,
          hc.avg_intercluster_distance, qc.avg_intercluster_distance,
          util::format_ratio(adv), qc.avg_intercluster_distance,
          adv / static_cast<double>(bits));
  }
  t.print(std::cout);
  std::cout << "(HSN hops stay < 1 while the hypercube's grow linearly in "
               "log N: the advantage column grows ~ (log N)/2, i.e. "
               "Theta(log N).)\n";

  std::cout << "\n=== SCALING (l = k): degree Theta(sqrt(log N)) ===\n";
  std::cout << "paper: advantage Theta(sqrt(log N)) when l = Theta(n).\n\n";
  util::Table t2;
  t2.header({"N", "l = k", "HSN hops", "Q hops", "advantage",
             "advantage/sqrt(log2 N)"});
  for (unsigned k = 2; k <= 3; ++k) {
    const auto hsn = make_hsn(k, std::make_shared<HypercubeNucleus>(k));
    const auto hc = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering(), 8);
    const auto bits = k * k;
    const Graph q = hypercube_graph(bits);
    const auto qc = offchip_counts(
        q, hypercube_subcube_clustering(bits, std::size_t{1} << k), 8);
    const double adv = qc.avg_intercluster_distance / hc.avg_intercluster_distance;
    t2.add(std::size_t{1} << bits, k, hc.avg_intercluster_distance,
           qc.avg_intercluster_distance, util::format_ratio(adv),
           adv / std::sqrt(static_cast<double>(bits)));
  }
  // One larger point via HSN(4,Q4): l = n = 4, N = 2^16.
  {
    const auto hsn = make_hsn(4, std::make_shared<HypercubeNucleus>(4));
    const auto hc = offchip_counts(hsn.to_graph(), hsn.nucleus_clustering(), 4);
    const Graph q = hypercube_graph(16);
    const auto qc =
        offchip_counts(q, hypercube_subcube_clustering(16, 16), 4);
    const double adv = qc.avg_intercluster_distance / hc.avg_intercluster_distance;
    t2.add(65536, 4, hc.avg_intercluster_distance, qc.avg_intercluster_distance,
           util::format_ratio(adv), adv / 4.0);
  }
  t2.print(std::cout);
  std::cout << "(The normalized column is roughly flat: the advantage "
               "tracks sqrt(log N), as Cor 3.10/3.11 and §4.1 predict.)\n";
  return 0;
}
