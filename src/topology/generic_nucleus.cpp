#include "topology/generic_nucleus.hpp"

#include "util/check.hpp"

namespace ipg::topology {

GenericIpgNucleus::GenericIpgNucleus(core::Ipg ipg, std::string name)
    : ipg_(std::move(ipg)), name_(std::move(name)) {
  IPG_CHECK(ipg_.num_nodes() > 0, "empty IPG cannot be a nucleus");
  inverse_.resize(ipg_.num_generators());
  for (std::size_t g = 0; g < ipg_.num_generators(); ++g) {
    const auto inv = ipg_.generators[g].inverse();
    std::size_t found = ipg_.num_generators();
    for (std::size_t h = 0; h < ipg_.num_generators(); ++h) {
      if (ipg_.generators[h] == inv) {
        found = h;
        break;
      }
    }
    IPG_CHECK(found < ipg_.num_generators(),
              "nucleus generator set must be closed under inversion");
    inverse_[g] = found;
  }
}

std::shared_ptr<const Nucleus> section2_example_nucleus() {
  return std::make_shared<GenericIpgNucleus>(core::section2_example(),
                                             "S2example");
}

}  // namespace ipg::topology
