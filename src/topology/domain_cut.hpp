#pragma once
// Chip-aligned domain decomposition for parallel simulation.
//
// The MCMP hierarchy gives super-IPGs a natural parallel cut: intra-chip
// links never cross chip boundaries, so partitioning whole chips across
// simulation domains confines all inter-domain traffic to off-chip links —
// exactly the links whose latency provides the conservative-synchronization
// lookahead (sim/sharded.hpp). The cut below walks chips in id order and
// packs them greedily into k contiguous groups of near-equal node count; a
// comparison topology whose clustering has fewer chips than requested
// domains falls back to contiguous node ranges (every domain non-empty,
// chips split as needed).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::topology {

/// A partition of a network's nodes into num_domains non-empty domains.
struct DomainCut {
  std::vector<std::uint32_t> domain_of;  ///< per node
  std::size_t num_domains = 0;
};

/// Partitions nodes into @p k domains, chip-aligned when @p chips has at
/// least k clusters (whole chips per domain, greedy near-equal node
/// counts, chips taken in id order), contiguous node ranges otherwise.
/// Every domain is non-empty; the result is a pure function of the
/// clustering and k. Requires 1 <= k <= chips.num_nodes().
DomainCut make_domain_cut(const Clustering& chips, std::size_t k);

}  // namespace ipg::topology
