#include "topology/super_ipg.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <numeric>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace ipg::topology {

namespace {

/// Packs an arrangement (l <= 16 entries, each < 16) into a hashable key.
std::uint64_t pack(const Arrangement& a) {
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    k |= static_cast<std::uint64_t>(a[i]) << (4 * i);
  }
  return k;
}

}  // namespace

std::string family_name(SuperFamily f) {
  switch (f) {
    case SuperFamily::kHSN: return "HSN";
    case SuperFamily::kRingCN: return "ring-CN";
    case SuperFamily::kCompleteCN: return "complete-CN";
    case SuperFamily::kSFN: return "SFN";
    case SuperFamily::kDirectedRingCN: return "directed-CN";
  }
  return "?";
}

SuperIpg::SuperIpg(std::shared_ptr<const Nucleus> nucleus, std::size_t levels,
                   SuperFamily family)
    : nucleus_(std::move(nucleus)), levels_(levels), family_(family) {
  IPG_CHECK(nucleus_ != nullptr, "super-IPG needs a nucleus");
  IPG_CHECK(levels_ >= 2 && levels_ <= 16, "levels must be in [2,16]");
  m_ = nucleus_->num_nodes();
  n_nucleus_ = nucleus_->num_generators();

  // Node count M^l must fit NodeId.
  std::uint64_t n = 1;
  scale_.reserve(levels_);
  for (std::size_t i = 0; i < levels_; ++i) {
    scale_.push_back(static_cast<std::size_t>(n));
    n *= m_;
    IPG_CHECK(n <= (std::uint64_t{1} << 31), "super-IPG too large for NodeId");
  }
  num_nodes_ = static_cast<std::size_t>(n);

  const auto l = levels_;
  auto identity = [l] {
    Arrangement a(l);
    std::iota(a.begin(), a.end(), std::uint8_t{0});
    return a;
  };
  switch (family_) {
    case SuperFamily::kHSN:
      for (std::size_t i = 1; i < l; ++i) {
        Arrangement a = identity();
        std::swap(a[0], a[i]);
        group_maps_.push_back(std::move(a));
      }
      break;
    case SuperFamily::kRingCN:
    case SuperFamily::kDirectedRingCN: {
      Arrangement left(l), right(l);
      for (std::size_t g = 0; g < l; ++g) {
        left[g] = static_cast<std::uint8_t>((g + 1) % l);
        right[g] = static_cast<std::uint8_t>((g + l - 1) % l);
      }
      group_maps_.push_back(std::move(left));
      if (family_ == SuperFamily::kRingCN && l > 2) {
        group_maps_.push_back(std::move(right));
      }
      break;
    }
    case SuperFamily::kCompleteCN:
      for (std::size_t i = 1; i < l; ++i) {
        Arrangement a(l);
        for (std::size_t g = 0; g < l; ++g) {
          a[g] = static_cast<std::uint8_t>((g + i) % l);
        }
        group_maps_.push_back(std::move(a));
      }
      break;
    case SuperFamily::kSFN:
      for (std::size_t i = 2; i <= l; ++i) {
        Arrangement a = identity();
        std::reverse(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(i));
        group_maps_.push_back(std::move(a));
      }
      break;
  }

  name_ = family_name(family_) + "(" + std::to_string(l) + "," +
          nucleus_->name() + ")";
}

NodeId SuperIpg::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen < num_generators(), "generator index out of range");
  if (gen < n_nucleus_) {
    const auto g0 = static_cast<NodeId>(v % m_);
    const NodeId g0p = nucleus_->apply(g0, gen);
    return v - g0 + g0p;
  }
  const Arrangement& map = group_maps_[gen - n_nucleus_];
  std::uint64_t out = 0;
  for (std::size_t g = 0; g < levels_; ++g) {
    out += static_cast<std::uint64_t>(group(v, map[g])) * scale_[g];
  }
  return static_cast<NodeId>(out);
}

std::size_t SuperIpg::inverse_generator(std::size_t gen) const {
  if (gen < n_nucleus_) return nucleus_->inverse_generator(gen);
  const Arrangement& map = group_maps_[gen - n_nucleus_];
  Arrangement inv(levels_);
  for (std::size_t g = 0; g < levels_; ++g) inv[map[g]] = static_cast<std::uint8_t>(g);
  for (std::size_t s = 0; s < group_maps_.size(); ++s) {
    if (group_maps_[s] == inv) return n_nucleus_ + s;
  }
  IPG_CHECK(false, "super-generator set not closed under inversion");
  return 0;
}

NodeId SuperIpg::make_node(std::span<const NodeId> groups) const {
  IPG_CHECK(groups.size() == levels_, "group tuple has wrong arity");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < levels_; ++i) {
    IPG_CHECK(groups[i] < m_, "group value out of nucleus range");
    v += static_cast<std::uint64_t>(groups[i]) * scale_[i];
  }
  return static_cast<NodeId>(v);
}

Clustering SuperIpg::nucleus_clustering() const {
  return Clustering::blocks(num_nodes_, m_);
}

Arrangement SuperIpg::identity_arrangement() const {
  Arrangement a(levels_);
  std::iota(a.begin(), a.end(), std::uint8_t{0});
  return a;
}

Arrangement SuperIpg::apply_to_arrangement(const Arrangement& arr,
                                           std::size_t s) const {
  const Arrangement& map = group_maps_[s];
  Arrangement out(levels_);
  for (std::size_t g = 0; g < levels_; ++g) out[g] = arr[map[g]];
  return out;
}

namespace {

/// BFS over arrangements from @p start until @p accept holds; returns the
/// word of super-generator (local) indices. Deterministic: generators are
/// tried in index order.
std::vector<std::size_t> arrangement_bfs(
    const SuperIpg& ipg, const Arrangement& start,
    const std::function<bool(const Arrangement&)>& accept) {
  if (accept(start)) return {};
  struct Entry {
    std::uint64_t pred_key;
    std::size_t gen;
  };
  std::unordered_map<std::uint64_t, Entry> seen;
  std::unordered_map<std::uint64_t, Arrangement> arrs;
  const std::uint64_t start_key = pack(start);
  seen.emplace(start_key, Entry{start_key, 0});
  arrs.emplace(start_key, start);
  std::deque<std::uint64_t> q{start_key};
  while (!q.empty()) {
    const std::uint64_t key = q.front();
    q.pop_front();
    const Arrangement cur = arrs.at(key);
    for (std::size_t s = 0; s < ipg.num_super_generators(); ++s) {
      Arrangement nxt = ipg.apply_to_arrangement(cur, s);
      const std::uint64_t nkey = pack(nxt);
      if (seen.contains(nkey)) continue;
      seen.emplace(nkey, Entry{key, s});
      if (accept(nxt)) {
        std::vector<std::size_t> word;
        for (std::uint64_t k = nkey; k != start_key; k = seen.at(k).pred_key) {
          word.push_back(seen.at(k).gen);
        }
        std::reverse(word.begin(), word.end());
        return word;
      }
      arrs.emplace(nkey, std::move(nxt));
      q.push_back(nkey);
    }
  }
  IPG_CHECK(false, "arrangement BFS found no accepting state");
  return {};
}

}  // namespace

std::vector<std::size_t> SuperIpg::word_to_front(const Arrangement& from,
                                                 std::uint8_t grp) const {
  return arrangement_bfs(*this, from,
                         [grp](const Arrangement& a) { return a[0] == grp; });
}

std::vector<std::size_t> SuperIpg::word_to_arrangement(const Arrangement& from,
                                                       const Arrangement& to) const {
  return arrangement_bfs(*this, from,
                         [&to](const Arrangement& a) { return a == to; });
}

std::size_t SuperIpg::t_single_dimension() const {
  const Arrangement id = identity_arrangement();
  std::size_t t = 0;
  for (std::size_t i = 1; i < levels_; ++i) {
    auto bring = word_to_front(id, static_cast<std::uint8_t>(i));
    Arrangement cur = id;
    for (const std::size_t s : bring) cur = apply_to_arrangement(cur, s);
    auto restore = word_to_arrangement(cur, id);
    t = std::max(t, bring.size() + restore.size());
  }
  return t;
}

std::vector<std::size_t> SuperIpg::route(NodeId from, NodeId to) const {
  IPG_CHECK(from < num_nodes_ && to < num_nodes_, "route endpoint out of range");
  const std::size_t l = levels_;

  std::vector<bool> differs(l, false);
  bool any_super_diff = false;
  for (std::size_t i = 0; i < l; ++i) {
    differs[i] = group(from, i) != group(to, i);
    if (i > 0 && differs[i]) any_super_diff = true;
  }

  // Family-specific visiting word over *local* super-generator indices.
  std::vector<std::size_t> visit;
  if (any_super_diff) {
    switch (family_) {
      case SuperFamily::kHSN:
        for (std::size_t i = 1; i < l; ++i) {
          if (differs[i]) visit.push_back(i - 1);  // T_{i+1} (paper 1-based)
        }
        break;
      case SuperFamily::kCompleteCN: {
        std::size_t pos = 0;  // current total rotation
        for (std::size_t i = 1; i < l; ++i) {
          if (differs[i]) {
            visit.push_back(i - pos - 1);  // L_{i-pos}
            pos = i;
          }
        }
        const bool all_visited =
            std::all_of(differs.begin(), differs.end(), [](bool d) { return d; });
        if (!all_visited && pos != 0) visit.push_back(l - pos - 1);  // close cycle
        break;
      }
      case SuperFamily::kRingCN:
      case SuperFamily::kDirectedRingCN:
        // l-1 unit shifts bring every group to the front exactly once, so
        // any destination is writable without a closing rotation.
        for (std::size_t k = 0; k + 1 < l; ++k) visit.push_back(0);  // L_1
        break;
      case SuperFamily::kSFN:
        // Flips displace every prefix group, so visit all groups; rewrites
        // below only happen where content actually mismatches.
        for (std::size_t i = 0; i + 1 < l; ++i) visit.push_back(i);  // F_2..F_l
        break;
    }
  }

  // Arrangement states A_0 .. A_k and the last front phase of each group.
  std::vector<Arrangement> states{identity_arrangement()};
  for (const std::size_t s : visit) {
    states.push_back(apply_to_arrangement(states.back(), s));
  }
  const Arrangement& final_arr = states.back();
  std::vector<std::size_t> final_pos(l);
  for (std::size_t p = 0; p < l; ++p) final_pos[final_arr[p]] = p;
  std::vector<std::size_t> last_front(l, static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < states.size(); ++j) last_front[states[j][0]] = j;

  // Emit: at each phase, if the front group is at its last visit and its
  // content does not match the destination's requirement at the group's
  // final position, walk the nucleus to fix it; then take the super link.
  std::vector<std::size_t> out;
  std::vector<NodeId> content(l);
  for (std::size_t g = 0; g < l; ++g) content[g] = static_cast<NodeId>(group(from, g));

  for (std::size_t j = 0; j < states.size(); ++j) {
    const std::uint8_t g = states[j][0];
    if (last_front[g] == j) {
      const auto target = static_cast<NodeId>(group(to, final_pos[g]));
      if (content[g] != target) {
        for (const std::size_t ng : nucleus_->route(content[g], target)) {
          out.push_back(ng);
        }
        content[g] = target;
      }
    }
    if (j + 1 < states.size()) out.push_back(n_nucleus_ + visit[j]);
  }

  // Any group that never reaches the front must already match.
  for (std::size_t g = 0; g < l; ++g) {
    IPG_CHECK(last_front[g] != static_cast<std::size_t>(-1) ||
                  content[g] == static_cast<NodeId>(group(to, final_pos[g])),
              "routing invariant violated: unvisited group content mismatch");
  }

  // The visiting word applies super-generators unconditionally, but a
  // generator can fix a concrete node (an SFN flip over equal prefix
  // groups, a rotation of equal remaining groups). A fixed point is a
  // self-loop, not a link of to_graph(), so drop those steps: skipping an
  // identity move leaves the walk's position — and hence its endpoint —
  // unchanged.
  std::vector<std::size_t> walk;
  walk.reserve(out.size());
  NodeId cur = from;
  for (const std::size_t g : out) {
    const NodeId nxt = apply(cur, g);
    if (nxt == cur) continue;
    walk.push_back(g);
    cur = nxt;
  }
  IPG_CHECK(cur == to, "routing invariant violated: walk misses destination");
  return walk;
}

Graph SuperIpg::to_graph() const {
  // Materialization is embarrassingly parallel per node: a counting pass
  // sizes the CSR rows, a second pass fills them (arcs per node come out
  // in ascending generator order — already sorted by dimension).
  const std::size_t gens = num_generators();
  std::vector<std::uint64_t> row(num_nodes_ + 1, 0);
  util::parallel_for_chunked(0, num_nodes_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      std::uint64_t cnt = 0;
      for (std::size_t g = 0; g < gens; ++g) {
        if (apply(static_cast<NodeId>(v), g) != v) ++cnt;
      }
      row[v + 1] = cnt;
    }
  });
  std::partial_sum(row.begin(), row.end(), row.begin());
  std::vector<Arc> arcs(row.back());
  util::parallel_for_chunked(0, num_nodes_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      std::uint64_t at = row[v];
      for (std::size_t g = 0; g < gens; ++g) {
        const NodeId u = apply(static_cast<NodeId>(v), g);
        if (u != v) arcs[at++] = Arc{u, static_cast<std::uint16_t>(g)};
      }
    }
  });
  return Graph(name_, num_nodes_, gens, std::move(row), std::move(arcs));
}

const Nucleus& base_nucleus(const SuperIpg& s) {
  const Nucleus* nuc = &s.nucleus();
  while (const SuperIpg* inner = nuc->as_super_ipg()) nuc = &inner->nucleus();
  return *nuc;
}

std::size_t num_base_nucleus_generators(const SuperIpg& s) {
  const SuperIpg* cur = &s;
  while (const SuperIpg* inner = cur->nucleus().as_super_ipg()) cur = inner;
  return cur->num_nucleus_generators();
}

Clustering base_nucleus_clustering(const SuperIpg& s) {
  return Clustering::blocks(s.num_nodes(), base_nucleus(s).num_nodes());
}

// --- factories --------------------------------------------------------------

SuperIpg make_hsn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus) {
  return SuperIpg(std::move(nucleus), levels, SuperFamily::kHSN);
}
SuperIpg make_ring_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus) {
  return SuperIpg(std::move(nucleus), levels, SuperFamily::kRingCN);
}
SuperIpg make_directed_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus) {
  return SuperIpg(std::move(nucleus), levels, SuperFamily::kDirectedRingCN);
}
SuperIpg make_complete_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus) {
  return SuperIpg(std::move(nucleus), levels, SuperFamily::kCompleteCN);
}
SuperIpg make_sfn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus) {
  return SuperIpg(std::move(nucleus), levels, SuperFamily::kSFN);
}

SuperIpg make_rcc(std::size_t r, std::shared_ptr<const Nucleus> nucleus) {
  IPG_CHECK(r >= 1, "RCC depth must be >= 1");
  SuperIpg cur = make_hsn(2, std::move(nucleus));
  for (std::size_t i = 2; i <= r; ++i) {
    cur = make_hsn(2, std::make_shared<SuperIpgNucleus>(std::move(cur)));
  }
  return cur;
}

SuperIpg make_rhsn(std::size_t depth, std::size_t levels,
                   std::shared_ptr<const Nucleus> nucleus) {
  IPG_CHECK(depth >= 1, "RHSN depth must be >= 1");
  SuperIpg cur = make_hsn(levels, std::move(nucleus));
  for (std::size_t i = 2; i <= depth; ++i) {
    cur = make_hsn(levels, std::make_shared<SuperIpgNucleus>(std::move(cur)));
  }
  return cur;
}

SuperIpg make_hcn(unsigned n) {
  return make_hsn(2, std::make_shared<HypercubeNucleus>(n));
}

SuperIpg make_hfn(unsigned n) {
  return make_hsn(2, std::make_shared<FoldedHypercubeNucleus>(n));
}

}  // namespace ipg::topology
