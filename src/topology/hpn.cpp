#include "topology/hpn.hpp"

namespace ipg::topology {

Hpn::Hpn(std::shared_ptr<const Nucleus> factor, std::size_t power)
    : factor_(std::move(factor)), p_(power) {
  IPG_CHECK(factor_ != nullptr, "HPN needs a factor graph");
  IPG_CHECK(p_ >= 1, "HPN power must be >= 1");
  m_ = factor_->num_nodes();
  n_g_ = factor_->num_generators();
  std::uint64_t n = 1;
  scale_.reserve(p_);
  for (std::size_t i = 0; i < p_; ++i) {
    scale_.push_back(static_cast<std::size_t>(n));
    n *= m_;
    IPG_CHECK(n <= (std::uint64_t{1} << 31), "HPN too large for NodeId");
  }
  num_nodes_ = static_cast<std::size_t>(n);
  name_ = "HPN(" + std::to_string(p_) + "," + factor_->name() + ")";
}

NodeId Hpn::apply(NodeId v, std::size_t j) const {
  IPG_DCHECK(j < num_dims(), "HPN dimension out of range");
  const std::size_t level = j / n_g_;
  const std::size_t gen = j % n_g_;
  const auto coord = static_cast<NodeId>(coordinate(v, level));
  const NodeId moved = factor_->apply(coord, gen);
  return static_cast<NodeId>(v + (static_cast<std::uint64_t>(moved) - coord) * scale_[level]);
}

std::size_t Hpn::inverse_dim(std::size_t j) const {
  const std::size_t level = j / n_g_;
  return level * n_g_ + factor_->inverse_generator(j % n_g_);
}

Graph Hpn::to_graph() const {
  GraphBuilder b(name_, num_nodes_, num_dims());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (std::size_t j = 0; j < num_dims(); ++j) {
      const NodeId u = apply(v, j);
      if (u != v) b.add_arc(v, u, static_cast<std::uint16_t>(j));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topology
