#include "topology/faults.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/rng.hpp"

namespace ipg::topology {

namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

Graph remove_links(const Graph& g,
                   const std::vector<std::pair<NodeId, NodeId>>& dead) {
  std::unordered_set<std::uint64_t> dead_set;
  for (const auto& [a, b] : dead) dead_set.insert(pair_key(a, b));
  GraphBuilder b(g.name() + " (degraded)", g.num_nodes(), g.num_dims());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (!dead_set.contains(pair_key(v, arc.to))) b.add_arc(v, arc.to, arc.dim);
    }
  }
  return std::move(b).build();
}

Graph remove_nodes(const Graph& g, const std::vector<NodeId>& dead) {
  std::vector<bool> is_dead(g.num_nodes(), false);
  for (const NodeId v : dead) is_dead[v] = true;
  GraphBuilder b(g.name() + " (degraded)", g.num_nodes(), g.num_dims());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (is_dead[v]) continue;
    for (const auto& arc : g.arcs_of(v)) {
      if (!is_dead[arc.to]) b.add_arc(v, arc.to, arc.dim);
    }
  }
  return std::move(b).build();
}

bool is_connected_ignoring_isolated(const Graph& g) {
  NodeId start = kInvalidNode;
  std::size_t live = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) {
      if (start == kInvalidNode) start = v;
      ++live;
    }
  }
  if (start == kInvalidNode) return false;
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<NodeId> q{start};
  seen[start] = true;
  std::size_t reached = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    for (const auto& arc : g.arcs_of(v)) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++reached;
        q.push_back(arc.to);
      }
    }
  }
  return reached == live;
}

namespace {

/// Unit-capacity BFS augmentation over an adjacency-list flow network.
/// Nodes are indices; arcs come in (to, reverse-index) pairs.
struct FlowNet {
  struct FArc {
    std::uint32_t to;
    std::uint32_t rev;
    std::int8_t cap;
  };
  std::vector<std::vector<FArc>> adj;

  void add(std::uint32_t a, std::uint32_t b, std::int8_t cap) {
    adj[a].push_back({b, static_cast<std::uint32_t>(adj[b].size()), cap});
    adj[b].push_back({a, static_cast<std::uint32_t>(adj[a].size() - 1), 0});
  }

  bool augment(std::uint32_t s, std::uint32_t t) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pred(
        adj.size(), {UINT32_MAX, UINT32_MAX});
    std::deque<std::uint32_t> q{s};
    pred[s] = {s, UINT32_MAX};
    while (!q.empty() && pred[t].first == UINT32_MAX) {
      const auto v = q.front();
      q.pop_front();
      for (std::uint32_t i = 0; i < adj[v].size(); ++i) {
        const auto& a = adj[v][i];
        if (a.cap <= 0 || pred[a.to].first != UINT32_MAX) continue;
        pred[a.to] = {v, i};
        q.push_back(a.to);
      }
    }
    if (pred[t].first == UINT32_MAX) return false;
    for (std::uint32_t v = t; v != s;) {
      const auto [pv, pi] = pred[v];
      auto& a = adj[pv][pi];
      --a.cap;
      ++adj[v][a.rev].cap;
      v = pv;
    }
    return true;
  }
};

}  // namespace

std::size_t edge_disjoint_paths(const Graph& g, NodeId s, NodeId t,
                                std::size_t max_k) {
  IPG_CHECK(s < g.num_nodes() && t < g.num_nodes() && s != t,
            "need two distinct nodes");
  FlowNet net;
  net.adj.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) net.add(v, arc.to, 1);
  }
  std::size_t flow = 0;
  while (flow < max_k && net.augment(s, t)) ++flow;
  return flow;
}

std::size_t node_disjoint_paths(const Graph& g, NodeId s, NodeId t,
                                std::size_t max_k) {
  IPG_CHECK(s < g.num_nodes() && t < g.num_nodes() && s != t,
            "need two distinct nodes");
  // Split every node v into v_in (v) and v_out (v + N) with capacity 1,
  // except s and t which get large capacity.
  const std::uint32_t n = static_cast<std::uint32_t>(g.num_nodes());
  FlowNet net;
  net.adj.resize(2 * n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::int8_t cap = (v == s || v == t) ? std::int8_t{127} : std::int8_t{1};
    net.add(v, v + n, cap);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) net.add(v + n, arc.to, 1);
  }
  std::size_t flow = 0;
  while (flow < max_k && net.augment(s, t + n)) ++flow;
  return flow;
}

std::vector<std::pair<NodeId, NodeId>> sample_links(
    const Graph& g, const Clustering* intercluster_only, std::size_t count,
    std::uint64_t seed) {
  // Each undirected link once, in deterministic scan order (multigraph
  // parallels collapse to one entry, matching remove_links semantics).
  std::vector<std::pair<NodeId, NodeId>> eligible;
  std::unordered_set<std::uint64_t> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (arc.to <= v) continue;
      if (intercluster_only != nullptr &&
          !intercluster_only->is_intercluster(v, arc.to)) {
        continue;
      }
      if (seen.insert(pair_key(v, arc.to)).second) {
        eligible.emplace_back(v, arc.to);
      }
    }
  }
  IPG_CHECK(count <= eligible.size(),
            "asked to sample more links than the graph has eligible");
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(eligible.size() - i));
    std::swap(eligible[i], eligible[j]);
  }
  eligible.resize(count);
  return eligible;
}

}  // namespace ipg::topology
