#include "topology/nucleus.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "util/bits.hpp"

namespace ipg::topology {

Graph Nucleus::to_graph() const {
  GraphBuilder b(name(), num_nodes(), num_generators());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (std::size_t g = 0; g < num_generators(); ++g) {
      const NodeId u = apply(v, g);
      if (u != v) b.add_arc(v, u, static_cast<std::uint16_t>(g));
    }
  }
  return std::move(b).build();
}

std::size_t Nucleus::distance(NodeId from, NodeId to) const {
  return route(from, to).size();
}

std::vector<std::size_t> Nucleus::route(NodeId from, NodeId to) const {
  IPG_CHECK(from < num_nodes() && to < num_nodes(), "route endpoint out of range");
  if (from == to) return {};
  // BFS from `from`, remembering the generator taken into each vertex.
  constexpr auto kUnseen = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> pred_gen(num_nodes(), kUnseen);
  std::vector<NodeId> pred(num_nodes(), kInvalidNode);
  std::deque<NodeId> q{from};
  pred_gen[from] = 0;
  pred[from] = from;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    for (std::size_t g = 0; g < num_generators(); ++g) {
      const NodeId u = apply(v, g);
      if (pred_gen[u] != kUnseen) continue;
      pred_gen[u] = static_cast<std::uint32_t>(g);
      pred[u] = v;
      if (u == to) {
        std::vector<std::size_t> word;
        for (NodeId w = to; w != from; w = pred[w]) word.push_back(pred_gen[w]);
        std::reverse(word.begin(), word.end());
        return word;
      }
      q.push_back(u);
    }
  }
  IPG_CHECK(false, "nucleus is disconnected — route has no solution");
  return {};
}

// --------------------------------------------------------------------------
HypercubeNucleus::HypercubeNucleus(unsigned n) : n_(n) {
  IPG_CHECK(n >= 1 && n <= 30, "hypercube dimension out of supported range");
}

std::string HypercubeNucleus::name() const { return "Q" + std::to_string(n_); }

NodeId HypercubeNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen < n_, "hypercube generator out of range");
  return v ^ (NodeId{1} << gen);
}

NodeId HypercubeNucleus::with_digit(NodeId v, std::size_t dim, std::size_t val) const {
  IPG_DCHECK(val < 2, "hypercube digit must be a bit");
  return (v & ~(NodeId{1} << dim)) | (static_cast<NodeId>(val) << dim);
}

std::size_t HypercubeNucleus::dim_generator(std::size_t dim, std::size_t offset) const {
  IPG_DCHECK(offset == 1, "hypercube offsets are 1 only");
  (void)offset;
  return dim;
}

// --------------------------------------------------------------------------
FoldedHypercubeNucleus::FoldedHypercubeNucleus(unsigned n) : n_(n) {
  IPG_CHECK(n >= 1 && n <= 30, "folded hypercube dimension out of supported range");
}

std::string FoldedHypercubeNucleus::name() const { return "FQ" + std::to_string(n_); }

NodeId FoldedHypercubeNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen <= n_, "folded hypercube generator out of range");
  if (gen == n_) return v ^ ((NodeId{1} << n_) - 1u);  // complement link
  return v ^ (NodeId{1} << gen);
}

// --------------------------------------------------------------------------
CompleteNucleus::CompleteNucleus(std::size_t m) : m_(m) {
  IPG_CHECK(m >= 2, "complete graph needs at least two nodes");
}

std::string CompleteNucleus::name() const { return "K" + std::to_string(m_); }

NodeId CompleteNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen + 1 < m_ + 1, "complete graph generator out of range");
  return static_cast<NodeId>((v + gen + 1) % m_);
}

std::size_t CompleteNucleus::dim_generator(std::size_t dim, std::size_t offset) const {
  IPG_DCHECK(dim == 0 && offset >= 1 && offset < m_, "K_M generator request invalid");
  (void)dim;
  return offset - 1;
}

// --------------------------------------------------------------------------
RingNucleus::RingNucleus(std::size_t m) : m_(m) {
  IPG_CHECK(m >= 2, "ring needs at least two nodes");
}

std::string RingNucleus::name() const { return "C" + std::to_string(m_); }

NodeId RingNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen < num_generators(), "ring generator out of range");
  if (gen == 0) return static_cast<NodeId>((v + 1) % m_);
  return static_cast<NodeId>((v + m_ - 1) % m_);
}

// --------------------------------------------------------------------------
NodeId PetersenNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen < 3, "Petersen generator out of range");
  const bool outer = v < 5;
  const NodeId i = outer ? v : v - 5;
  switch (gen) {
    case 0:  // rotate: outer +1, inner +2 (a pentagram step is an edge)
      return outer ? (i + 1) % 5 : 5 + (i + 2) % 5;
    case 1:  // inverse rotation
      return outer ? (i + 4) % 5 : 5 + (i + 3) % 5;
    default:  // spokes (perfect matching, involution)
      return outer ? v + 5 : v - 5;
  }
}

// --------------------------------------------------------------------------
StarNucleus::StarNucleus(unsigned n) : n_(n) {
  IPG_CHECK(n >= 2 && n <= 10, "star graph dimension out of supported range");
  factorial_ = 1;
  for (unsigned i = 2; i <= n; ++i) factorial_ *= i;
}

std::string StarNucleus::name() const { return "S" + std::to_string(n_); }

std::vector<std::uint8_t> StarNucleus::decode(NodeId v) const {
  // Lehmer code: digit i (radix n-i) selects among the remaining symbols.
  std::vector<std::uint8_t> avail(n_);
  for (unsigned i = 0; i < n_; ++i) avail[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> perm(n_);
  std::size_t rest = v;
  std::size_t radix = factorial_;
  for (unsigned i = 0; i < n_; ++i) {
    radix /= (n_ - i);
    const std::size_t digit = rest / radix;
    rest %= radix;
    perm[i] = avail[digit];
    avail.erase(avail.begin() + static_cast<std::ptrdiff_t>(digit));
  }
  return perm;
}

NodeId StarNucleus::encode(const std::vector<std::uint8_t>& perm) const {
  IPG_DCHECK(perm.size() == n_, "permutation arity mismatch");
  std::vector<std::uint8_t> avail(n_);
  for (unsigned i = 0; i < n_; ++i) avail[i] = static_cast<std::uint8_t>(i);
  std::size_t v = 0;
  std::size_t radix = factorial_;
  for (unsigned i = 0; i < n_; ++i) {
    radix /= (n_ - i);
    const auto it = std::find(avail.begin(), avail.end(), perm[i]);
    v += static_cast<std::size_t>(it - avail.begin()) * radix;
    avail.erase(it);
  }
  return static_cast<NodeId>(v);
}

NodeId StarNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen + 1 < n_, "star generator out of range");
  auto perm = decode(v);
  std::swap(perm[0], perm[gen + 1]);
  return encode(perm);
}

// --------------------------------------------------------------------------
GeneralizedHypercubeNucleus::GeneralizedHypercubeNucleus(std::vector<std::size_t> radices)
    : radices_(std::move(radices)) {
  IPG_CHECK(!radices_.empty(), "generalized hypercube needs at least one dimension");
  scale_.reserve(radices_.size());
  gen_base_.reserve(radices_.size());
  for (const std::size_t m : radices_) {
    IPG_CHECK(m >= 2, "generalized hypercube radix must be >= 2");
    scale_.push_back(num_nodes_);
    gen_base_.push_back(num_generators_);
    num_nodes_ *= m;
    num_generators_ += m - 1;
  }
}

std::string GeneralizedHypercubeNucleus::name() const {
  std::string s = "GHC(";
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(radices_[i]);
  }
  return s + ")";
}

NodeId GeneralizedHypercubeNucleus::apply(NodeId v, std::size_t gen) const {
  IPG_DCHECK(gen < num_generators_, "GHC generator out of range");
  std::size_t dim = radices_.size() - 1;
  while (gen_base_[dim] > gen) --dim;
  const std::size_t offset = gen - gen_base_[dim] + 1;
  const std::size_t d = digit(v, dim);
  return with_digit(v, dim, (d + offset) % radices_[dim]);
}

std::size_t GeneralizedHypercubeNucleus::inverse_generator(std::size_t gen) const {
  std::size_t dim = radices_.size() - 1;
  while (gen_base_[dim] > gen) --dim;
  const std::size_t offset = gen - gen_base_[dim] + 1;
  return gen_base_[dim] + (radices_[dim] - offset) - 1;
}

std::size_t GeneralizedHypercubeNucleus::digit(NodeId v, std::size_t dim) const {
  return (v / scale_[dim]) % radices_[dim];
}

NodeId GeneralizedHypercubeNucleus::with_digit(NodeId v, std::size_t dim,
                                               std::size_t val) const {
  IPG_DCHECK(val < radices_[dim], "GHC digit out of range");
  const std::size_t old = digit(v, dim);
  return static_cast<NodeId>(v + (val - old) * scale_[dim]);
}

std::size_t GeneralizedHypercubeNucleus::dim_generator(std::size_t dim,
                                                       std::size_t offset) const {
  IPG_DCHECK(dim < radices_.size() && offset >= 1 && offset < radices_[dim],
             "GHC generator request invalid");
  return gen_base_[dim] + offset - 1;
}

}  // namespace ipg::topology
