#pragma once
// Comparison topologies used by the paper's evaluation (§4), as
// dimension-labelled graphs, plus their natural MCMP chip partitions.
//
// These are the networks super-IPGs are measured against: hypercube,
// k-ary n-cube (torus), mesh, cube-connected cycles, (wrapped) butterfly,
// shuffle-exchange, folded hypercube, and the small building blocks.

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::topology {

/// Binary hypercube Q_n. Dimension labels 0..n-1.
Graph hypercube_graph(unsigned n);

/// Folded hypercube FQ_n (Q_n + complement links, label n).
Graph folded_hypercube_graph(unsigned n);

/// Complete graph K_m. Dimension label of edge (u,v) is the additive offset
/// (v-u mod m) - 1, matching CompleteNucleus generator numbering.
Graph complete_graph(std::size_t m);

/// Ring C_m with labels 0 (+1) and 1 (-1).
Graph ring_graph(std::size_t m);

/// k-ary n-cube (torus): n dimensions, k nodes per dimension, wraparound.
/// Dimension labels: 2d for +1 in dimension d, 2d+1 for -1 (collapsed to a
/// single undirected edge pair when k == 2).
Graph kary_ncube_graph(std::size_t k, std::size_t n);

/// n-dimensional mesh with side k (no wraparound).
Graph mesh_graph(std::size_t k, std::size_t n);

/// Cube-connected cycles CCC(n): 2^n cycles of length n. Node id =
/// cube_word * n + position. Labels: 0 cycle+1, 1 cycle-1, 2 cube link.
Graph ccc_graph(unsigned n);

/// Wrapped butterfly BF(n): n levels x 2^n rows; node id = row * n + level.
/// Labels: 0 straight (level+1, same row), 1 cross (level+1, row with bit
/// `level+1 mod n` flipped); both directions are stored.
Graph butterfly_graph(unsigned n);

/// Shuffle-exchange SE(n) on 2^n nodes. Labels: 0 shuffle (rotate-left),
/// 1 unshuffle, 2 exchange (flip bit 0).
Graph shuffle_exchange_graph(unsigned n);

/// Binary de Bruijn graph DB(n) on 2^n nodes (the HSE/SE relatives of
/// [10]). Labels: 0/1 shuffle-with-new-bit, 2/3 their reverses.
Graph de_bruijn_graph(unsigned n);

/// The Petersen graph (10 nodes, 3-regular, diameter 2) — the basic module
/// of the cyclic Petersen networks of [31]. Label 0: outer cycle +,
/// 1: outer cycle -, 2: spoke; inner star edges reuse labels 0/1.
Graph petersen_graph();

// --- natural chip partitions (one cluster per chip) -------------------------

/// Hypercube: chips are subcubes over the low log2(m) dimensions.
Clustering hypercube_subcube_clustering(unsigned n, std::size_t m_per_chip);

/// k-ary 2-cube: chips are side x side square blocks of the torus.
Clustering kary2_block_clustering(std::size_t k, std::size_t side);

/// k-ary n-cube: chips are hyper-blocks of side `side` in every dimension.
Clustering kary_block_clustering(std::size_t k, std::size_t n, std::size_t side);

/// CCC: one chip per cycle (m = n nodes per chip) — gives the constant
/// off-chip degree of Corollary 4.9.
Clustering ccc_cycle_clustering(unsigned n);

/// Butterfly: a chip holds all n levels of the 2^r rows sharing the high
/// n-r row bits (m = n * 2^r nodes per chip) — the partition of [32] that
/// makes the intercluster degree sublinear in the node degree.
Clustering butterfly_clustering(unsigned n, unsigned r);

}  // namespace ipg::topology
