#pragma once
// Comparison topologies used by the paper's evaluation (§4), as
// dimension-labelled graphs, plus their natural MCMP chip partitions.
//
// These are the networks super-IPGs are measured against: hypercube,
// k-ary n-cube (torus), mesh, cube-connected cycles, (wrapped) butterfly,
// shuffle-exchange, folded hypercube, and the small building blocks.

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::topology {

/// Binary hypercube Q_n. Dimension labels 0..n-1.
Graph hypercube_graph(unsigned n);

/// Folded hypercube FQ_n (Q_n + complement links, label n).
Graph folded_hypercube_graph(unsigned n);

/// Complete graph K_m. Dimension label of edge (u,v) is the additive offset
/// (v-u mod m) - 1, matching CompleteNucleus generator numbering.
Graph complete_graph(std::size_t m);

/// Ring C_m with labels 0 (+1) and 1 (-1).
Graph ring_graph(std::size_t m);

/// k-ary n-cube (torus): n dimensions, k nodes per dimension, wraparound.
/// Dimension labels: 2d for +1 in dimension d, 2d+1 for -1 (collapsed to a
/// single undirected edge pair when k == 2).
Graph kary_ncube_graph(std::size_t k, std::size_t n);

/// n-dimensional mesh with side k (no wraparound).
Graph mesh_graph(std::size_t k, std::size_t n);

/// Cube-connected cycles CCC(n): 2^n cycles of length n. Node id =
/// cube_word * n + position. Labels: 0 cycle+1, 1 cycle-1, 2 cube link.
Graph ccc_graph(unsigned n);

/// Wrapped butterfly BF(n): n levels x 2^n rows; node id = row * n + level.
/// Labels: 0 straight (level+1, same row), 1 cross (level+1, row with bit
/// `level+1 mod n` flipped); both directions are stored.
Graph butterfly_graph(unsigned n);

/// Shuffle-exchange SE(n) on 2^n nodes. Labels: 0 shuffle (rotate-left),
/// 1 unshuffle, 2 exchange (flip bit 0).
Graph shuffle_exchange_graph(unsigned n);

/// Binary de Bruijn graph DB(n) on 2^n nodes (the HSE/SE relatives of
/// [10]). Labels: 0/1 shuffle-with-new-bit, 2/3 their reverses.
Graph de_bruijn_graph(unsigned n);

/// The Petersen graph (10 nodes, 3-regular, diameter 2) — the basic module
/// of the cyclic Petersen networks of [31]. Label 0: outer cycle +,
/// 1: outer cycle -, 2: spoke; inner star edges reuse labels 0/1.
Graph petersen_graph();

/// Balanced dragonfly DF(a, h): g = a*h + 1 groups of a routers, every
/// group a complete graph, every pair of groups joined by exactly one
/// global link (h global ports per router, palmtree arrangement: slot s of
/// group G — owned by router s/h — reaches group (G + s + 1) mod g). Node
/// id = group * a + router. Labels: local links reuse the complete-graph
/// offset labels 0..a-2; global port j carries label a-1+j.
Graph dragonfly_graph(std::size_t a, std::size_t h);

/// Three-level k-ary fat-tree FT(k) (k even): k pods of k/2 edge and k/2
/// aggregation switches, k^3/4 hosts, k^2/4 core switches; aggregation
/// switch a (within its pod) reaches cores a*k/2 .. (a+1)*k/2 - 1. Hosts
/// occupy ids [0, k^3/4), then edge, aggregation, core in pod-major order.
/// Labels (per node): host up = 0; edge: down to host slot s = s, up to
/// agg a = k/2+a; agg: down to edge e = e, up to its i-th core = k/2+i;
/// core: down to pod p = p.
Graph fat_tree_graph(std::size_t k);

// --- natural chip partitions (one cluster per chip) -------------------------

/// Hypercube: chips are subcubes over the low log2(m) dimensions.
Clustering hypercube_subcube_clustering(unsigned n, std::size_t m_per_chip);

/// k-ary 2-cube: chips are side x side square blocks of the torus.
Clustering kary2_block_clustering(std::size_t k, std::size_t side);

/// k-ary n-cube: chips are hyper-blocks of side `side` in every dimension.
Clustering kary_block_clustering(std::size_t k, std::size_t n, std::size_t side);

/// CCC: one chip per cycle (m = n nodes per chip) — gives the constant
/// off-chip degree of Corollary 4.9.
Clustering ccc_cycle_clustering(unsigned n);

/// Butterfly: a chip holds all n levels of the 2^r rows sharing the high
/// n-r row bits (m = n * 2^r nodes per chip) — the partition of [32] that
/// makes the intercluster degree sublinear in the node degree.
Clustering butterfly_clustering(unsigned n, unsigned r);

/// Dragonfly: one chip per group (local links on-chip, globals off-chip).
Clustering dragonfly_group_clustering(std::size_t a, std::size_t h);

/// Fat-tree: one chip per pod (hosts + edge + aggregation) plus one core
/// chip, so only the aggregation<->core links are off-chip. Chips are NOT
/// equal-sized (the core chip holds k^2/4 switches).
Clustering fat_tree_pod_clustering(std::size_t k);

}  // namespace ipg::topology
