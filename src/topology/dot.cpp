#include "topology/dot.hpp"

#include <sstream>

namespace ipg::topology {

std::string to_dot(const Graph& g, const Clustering* chips) {
  IPG_CHECK(chips == nullptr || chips->num_nodes() == g.num_nodes(),
            "clustering does not match graph");
  std::ostringstream os;
  os << "graph \"" << g.name() << "\" {\n  node [shape=circle];\n";
  if (chips != nullptr) {
    for (std::uint32_t c = 0; c < chips->num_clusters(); ++c) {
      os << "  subgraph cluster_" << c << " {\n    label=\"chip " << c
         << "\";\n   ";
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (chips->cluster_of(v) == c) os << ' ' << v << ';';
      }
      os << "\n  }\n";
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      // Emit each undirected pair once; a lone directed arc gets an arrow.
      bool has_reverse = false;
      for (const auto& back : g.arcs_of(arc.to)) {
        if (back.to == v) {
          has_reverse = true;
          break;
        }
      }
      if (has_reverse && arc.to < v) continue;
      os << "  " << v << " -- " << arc.to << " [label=\"d" << arc.dim << '"';
      if (!has_reverse) os << ", dir=forward";
      if (chips != nullptr && chips->is_intercluster(v, arc.to)) {
        os << ", style=bold, color=red";
      }
      os << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ipg::topology
