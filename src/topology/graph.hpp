#pragma once
// Dimension-labelled interconnection-network graphs in CSR form.
//
// Every edge carries the dimension (generator index) that produced it; the
// emulation, algorithm, and simulator layers all key off those labels, just
// as the paper's algorithms are phrased in terms of generator actions. A
// Clustering assigns each node to a chip/cluster for the MCMP analyses of
// §4; edges are then on-chip or off-chip depending on their endpoints.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ipg.hpp"  // NodeId
#include "util/check.hpp"

namespace ipg::topology {

using core::NodeId;
using core::kInvalidNode;

/// One directed CSR arc. Undirected networks store both directions.
struct Arc {
  NodeId to;
  std::uint16_t dim;  ///< dimension / generator label of this link
};

class Graph {
 public:
  Graph() = default;
  Graph(std::string name, std::size_t num_nodes, std::size_t num_dims,
        std::vector<std::uint64_t> row, std::vector<Arc> arcs);

  const std::string& name() const noexcept { return name_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }
  /// Number of distinct dimension labels (not the per-node degree).
  std::size_t num_dims() const noexcept { return num_dims_; }
  /// Directed arc count; for undirected graphs this is twice the edge count.
  std::size_t num_arcs() const noexcept { return arcs_.size(); }
  std::size_t num_edges() const noexcept { return arcs_.size() / 2; }

  std::span<const Arc> arcs_of(NodeId v) const noexcept {
    return {arcs_.data() + row_[v], arcs_.data() + row_[v + 1]};
  }
  std::size_t degree(NodeId v) const noexcept { return row_[v + 1] - row_[v]; }

  /// Neighbor along a dimension, or kInvalidNode if v has no such link.
  NodeId neighbor(NodeId v, std::uint16_t dim) const noexcept;

  std::size_t max_degree() const noexcept;
  double average_degree() const noexcept;

  /// Checks that every arc has a reverse arc (any dimension label).
  bool is_undirected() const;

 private:
  std::string name_;
  std::size_t num_nodes_ = 0;
  std::size_t num_dims_ = 0;
  std::vector<std::uint64_t> row_;  ///< size num_nodes_+1
  std::vector<Arc> arcs_;
};

/// Incremental builder; tolerates arbitrary insertion order and duplicate
/// suppression is the caller's job (families never produce duplicates).
class GraphBuilder {
 public:
  GraphBuilder(std::string name, std::size_t num_nodes, std::size_t num_dims);

  /// Adds a directed arc.
  void add_arc(NodeId from, NodeId to, std::uint16_t dim);

  /// Adds both directions with the same dimension label.
  void add_edge(NodeId a, NodeId b, std::uint16_t dim) {
    add_arc(a, b, dim);
    add_arc(b, a, dim);
  }

  Graph build() &&;

 private:
  std::string name_;
  std::size_t num_nodes_;
  std::size_t num_dims_;
  std::vector<std::pair<NodeId, Arc>> pending_;
};

/// Assignment of nodes to clusters (chips). Cluster ids are dense.
class Clustering {
 public:
  Clustering() = default;
  Clustering(std::vector<std::uint32_t> cluster_of, std::size_t num_clusters);

  /// All nodes in one cluster (one chip holding everything).
  static Clustering single(std::size_t num_nodes);

  /// cluster(v) = v / block (consecutive id blocks of equal size).
  static Clustering blocks(std::size_t num_nodes, std::size_t block);

  std::uint32_t cluster_of(NodeId v) const noexcept { return cluster_of_[v]; }
  std::size_t num_clusters() const noexcept { return num_clusters_; }
  std::size_t num_nodes() const noexcept { return cluster_of_.size(); }

  bool is_intercluster(NodeId a, NodeId b) const noexcept {
    return cluster_of_[a] != cluster_of_[b];
  }

  /// Nodes per cluster (validated equal-sized in most factories).
  std::vector<std::size_t> cluster_sizes() const;

 private:
  std::vector<std::uint32_t> cluster_of_;
  std::size_t num_clusters_ = 0;
};

/// Counts of on-/off-chip links for a clustered graph (per §4 cost model).
struct LinkCensus {
  std::size_t onchip_edges = 0;
  std::size_t offchip_edges = 0;
  double max_offchip_per_cluster = 0;   ///< max over clusters of off-chip links touching it
  double avg_offchip_per_node = 0;      ///< intercluster degree (paper §4.1)
};

LinkCensus census_links(const Graph& g, const Clustering& c);

/// Converts a materialized generic IPG (core::Ipg) into a Graph, preserving
/// generator labels as dimensions and dropping generator self-loops.
Graph from_ipg(const core::Ipg& ipg, std::string name);

}  // namespace ipg::topology
