#pragma once
// Fault modelling and connectivity analysis (§5 lists reliability among
// the success factors of a topology; super-IPGs inherit the connectivity
// of their nucleus plus the super-generator links).
//
// Provides fault injection (dead links / dead nodes) producing degraded
// graphs, connectivity checks, and exact edge-/node-disjoint path counts
// via BFS augmentation (unit-capacity max-flow) — the classic measure of
// how many faults a route can survive.

#include <cstdint>
#include <utility>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::topology {

/// Removes every arc between the given unordered node pairs.
Graph remove_links(const Graph& g,
                   const std::vector<std::pair<NodeId, NodeId>>& dead);

/// Removes every arc touching the given nodes (the nodes keep their ids
/// but become isolated).
Graph remove_nodes(const Graph& g, const std::vector<NodeId>& dead);

/// True iff all non-isolated nodes are mutually reachable and at least one
/// node has a link.
bool is_connected_ignoring_isolated(const Graph& g);

/// Maximum number of pairwise edge-disjoint s-t paths (capped at @p max_k
/// augmentations). Treats each undirected link as capacity 1 per direction.
std::size_t edge_disjoint_paths(const Graph& g, NodeId s, NodeId t,
                                std::size_t max_k = 64);

/// Maximum number of internally node-disjoint s-t paths (node splitting).
std::size_t node_disjoint_paths(const Graph& g, NodeId s, NodeId t,
                                std::size_t max_k = 64);

/// Draws @p count distinct undirected links of @p g uniformly at random
/// (partial Fisher–Yates over the edge list, Xoshiro256(@p seed)); a pure
/// function of its arguments. When @p intercluster_only is non-null, only
/// links crossing clusters (off-chip links in the MCMP view) are eligible.
/// Throws if fewer than @p count links are eligible. Feeds both static
/// graph surgery (remove_links) and the simulator's live FaultPlan.
std::vector<std::pair<NodeId, NodeId>> sample_links(
    const Graph& g, const Clustering* intercluster_only, std::size_t count,
    std::uint64_t seed);

}  // namespace ipg::topology
