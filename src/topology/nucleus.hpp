#pragma once
// Nucleus graphs — the basic modules of super-IPGs (§2).
//
// In the tuple-coded representation a super-IPG node is an l-tuple of
// nucleus vertex ids, so all a nucleus must provide is (a) its vertex
// count, (b) a generator action on vertices (each nucleus generator of the
// underlying IPG is a permutation of nucleus labels, i.e. of vertices), and
// (c) optionally a *dimensional* structure (the paper's "dimensionizable
// graph" of §3.1) used by HPN products, ascend/descend algorithms, and HPN
// emulation. All concrete nuclei here are vertex-transitive, matching the
// paper's setting.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topology/graph.hpp"
#include "util/check.hpp"

namespace ipg::topology {

class SuperIpg;  // forward; SuperIpgNucleus allows recursive families

class Nucleus {
 public:
  virtual ~Nucleus() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_nodes() const = 0;
  virtual std::size_t num_generators() const = 0;

  /// Moves vertex @p v along generator @p gen (0-based).
  virtual NodeId apply(NodeId v, std::size_t gen) const = 0;

  /// Index of the generator inverting @p gen (gen itself for involutions).
  /// Every family here has a generator set closed under inversion, which is
  /// what makes the graphs undirected.
  virtual std::size_t inverse_generator(std::size_t gen) const = 0;

  // --- Dimensional structure (0 dimensions = not dimensionizable) -------
  // A dimensionizable nucleus is a product-like graph: a vertex has one
  // digit per dimension, digits in dimension d range over [0, radix(d)),
  // and all vertices agreeing on every other digit form a complete graph
  // K_radix(d) in dimension d (radix 2 gives hypercube dimensions).

  virtual std::size_t num_dimensions() const { return 0; }
  virtual std::size_t radix(std::size_t /*dim*/) const { return 0; }
  virtual std::size_t digit(NodeId /*v*/, std::size_t /*dim*/) const { return 0; }
  virtual NodeId with_digit(NodeId /*v*/, std::size_t /*dim*/,
                            std::size_t /*val*/) const {
    return kInvalidNode;
  }

  /// Generator that adds @p offset (mod radix) to the digit of dimension
  /// @p dim, or SIZE_MAX if the nucleus is not dimensionizable.
  virtual std::size_t dim_generator(std::size_t /*dim*/, std::size_t /*offset*/) const {
    return static_cast<std::size_t>(-1);
  }

  /// Non-null iff this nucleus is itself a super-IPG (recursive families
  /// RCC / RHSN); algorithms recurse through it.
  virtual const SuperIpg* as_super_ipg() const { return nullptr; }

  /// Materializes the nucleus as a dimension-labelled graph (dims =
  /// generator indices; inverse-pair generators share the arcs they induce).
  Graph to_graph() const;

  /// BFS distance between two vertices (used for routing cost accounting).
  std::size_t distance(NodeId from, NodeId to) const;

  /// Shortest generator word from @p from to @p to (BFS; deterministic).
  std::vector<std::size_t> route(NodeId from, NodeId to) const;
};

/// Hypercube Q_n: vertices are n-bit ids, generator b flips bit b.
class HypercubeNucleus final : public Nucleus {
 public:
  explicit HypercubeNucleus(unsigned n);
  std::string name() const override;
  std::size_t num_nodes() const override { return std::size_t{1} << n_; }
  std::size_t num_generators() const override { return n_; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override { return gen; }
  std::size_t num_dimensions() const override { return n_; }
  std::size_t radix(std::size_t) const override { return 2; }
  std::size_t digit(NodeId v, std::size_t dim) const override { return (v >> dim) & 1u; }
  NodeId with_digit(NodeId v, std::size_t dim, std::size_t val) const override;
  std::size_t dim_generator(std::size_t dim, std::size_t offset) const override;
  unsigned dimension_count() const noexcept { return n_; }

 private:
  unsigned n_;
};

/// Folded hypercube FQ_n: Q_n plus a complement link (generator n). The
/// dimensional structure is the underlying Q_n's — ascend/descend and HPN
/// emulation use the cube dimensions; the complement link is extra
/// connectivity (it halves the diameter, per Duh et al.'s HFN).
class FoldedHypercubeNucleus final : public Nucleus {
 public:
  explicit FoldedHypercubeNucleus(unsigned n);
  std::string name() const override;
  std::size_t num_nodes() const override { return std::size_t{1} << n_; }
  std::size_t num_generators() const override { return n_ + 1u; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override { return gen; }
  std::size_t num_dimensions() const override { return n_; }
  std::size_t radix(std::size_t) const override { return 2; }
  std::size_t digit(NodeId v, std::size_t dim) const override {
    return (v >> dim) & 1u;
  }
  NodeId with_digit(NodeId v, std::size_t dim, std::size_t val) const override {
    return (v & ~(NodeId{1} << dim)) | (static_cast<NodeId>(val) << dim);
  }
  std::size_t dim_generator(std::size_t dim, std::size_t) const override {
    return dim;
  }

 private:
  unsigned n_;
};

/// Complete graph K_M: generator i (0-based, i < M-1) adds i+1 mod M.
class CompleteNucleus final : public Nucleus {
 public:
  explicit CompleteNucleus(std::size_t m);
  std::string name() const override;
  std::size_t num_nodes() const override { return m_; }
  std::size_t num_generators() const override { return m_ - 1; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override { return m_ - 2 - gen; }
  std::size_t num_dimensions() const override { return 1; }
  std::size_t radix(std::size_t) const override { return m_; }
  std::size_t digit(NodeId v, std::size_t) const override { return v; }
  NodeId with_digit(NodeId, std::size_t, std::size_t val) const override {
    return static_cast<NodeId>(val);
  }
  std::size_t dim_generator(std::size_t dim, std::size_t offset) const override;

 private:
  std::size_t m_;
};

/// Ring C_M: generators +1 and -1 (mod M).
class RingNucleus final : public Nucleus {
 public:
  explicit RingNucleus(std::size_t m);
  std::string name() const override;
  std::size_t num_nodes() const override { return m_; }
  std::size_t num_generators() const override { return m_ == 2 ? 1u : 2u; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override {
    return m_ == 2 ? 0 : 1 - gen;
  }

 private:
  std::size_t m_;
};

/// The Petersen graph as a nucleus — the basic module of the cyclic
/// Petersen networks of [31], which the paper lists among the CN-family
/// super-IPGs. Petersen is not itself a Cayley graph, but its edge set
/// decomposes into three vertex permutations (rotate the outer cycle and
/// the inner pentagram together, its inverse, and the spoke matching), and
/// that is all the tuple-coded super-IPG construction needs. Vertices:
/// 0..4 outer cycle, 5..9 inner pentagram (i adjacent to i+/-2 mod 5).
class PetersenNucleus final : public Nucleus {
 public:
  std::string name() const override { return "Petersen"; }
  std::size_t num_nodes() const override { return 10; }
  std::size_t num_generators() const override { return 3; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override {
    return gen == 2 ? 2 : 1 - gen;
  }
};

/// Star graph S_n (Akers & Krishnamurthy) — the flagship Cayley graph the
/// IPG model generalizes, and the nucleus of macro-star-style super-IPGs.
/// Vertices are the n! permutations of n symbols (Lehmer-coded ids);
/// generator i (0-based, i < n-1) transposes symbol positions 0 and i+1.
class StarNucleus final : public Nucleus {
 public:
  explicit StarNucleus(unsigned n);
  std::string name() const override;
  std::size_t num_nodes() const override { return factorial_; }
  std::size_t num_generators() const override { return n_ - 1u; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override { return gen; }

  /// Lehmer decode/encode, exposed for tests.
  std::vector<std::uint8_t> decode(NodeId v) const;
  NodeId encode(const std::vector<std::uint8_t>& perm) const;

 private:
  unsigned n_;
  std::size_t factorial_;
};

/// Generalized hypercube (Bhuyan & Agrawal) with mixed radices
/// (m_1, ..., m_n): one digit per dimension; every pair of vertices
/// differing in exactly one digit is adjacent. Generators: for each
/// dimension d and offset o in 1..m_d-1, add o to digit d (mod m_d).
class GeneralizedHypercubeNucleus final : public Nucleus {
 public:
  explicit GeneralizedHypercubeNucleus(std::vector<std::size_t> radices);
  std::string name() const override;
  std::size_t num_nodes() const override { return num_nodes_; }
  std::size_t num_generators() const override { return num_generators_; }
  NodeId apply(NodeId v, std::size_t gen) const override;
  std::size_t inverse_generator(std::size_t gen) const override;
  std::size_t num_dimensions() const override { return radices_.size(); }
  std::size_t radix(std::size_t dim) const override { return radices_[dim]; }
  std::size_t digit(NodeId v, std::size_t dim) const override;
  NodeId with_digit(NodeId v, std::size_t dim, std::size_t val) const override;
  std::size_t dim_generator(std::size_t dim, std::size_t offset) const override;

 private:
  std::vector<std::size_t> radices_;
  std::vector<std::size_t> scale_;      ///< mixed-radix place values
  std::vector<std::size_t> gen_base_;   ///< first generator index per dimension
  std::size_t num_nodes_ = 1;
  std::size_t num_generators_ = 0;
};

}  // namespace ipg::topology
