#pragma once
// Graphviz (DOT) export for visual inspection of the families and their
// chip partitions: chips become clusters, off-chip links are highlighted.

#include <string>

#include "topology/graph.hpp"

namespace ipg::topology {

/// Renders @p g as an undirected DOT graph (directed arcs without a
/// reverse become directed edges). With a clustering, nodes are grouped
/// into `subgraph cluster_i` blocks and off-chip edges drawn bold. Keep
/// the graph small (<= ~2000 nodes) — DOT is for inspection, not storage.
std::string to_dot(const Graph& g, const Clustering* chips = nullptr);

}  // namespace ipg::topology
