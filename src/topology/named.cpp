#include "topology/named.hpp"

#include <string>

#include "util/bits.hpp"

namespace ipg::topology {

namespace {
using util::ipow;
}

Graph hypercube_graph(unsigned n) {
  IPG_CHECK(n >= 1 && n <= 26, "hypercube dimension out of supported range");
  const std::size_t num = std::size_t{1} << n;
  GraphBuilder b("Q" + std::to_string(n), num, n);
  for (NodeId v = 0; v < num; ++v) {
    for (unsigned d = 0; d < n; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (v < u) b.add_edge(v, u, static_cast<std::uint16_t>(d));
    }
  }
  return std::move(b).build();
}

Graph folded_hypercube_graph(unsigned n) {
  IPG_CHECK(n >= 1 && n <= 26, "folded hypercube dimension out of supported range");
  const std::size_t num = std::size_t{1} << n;
  GraphBuilder b("FQ" + std::to_string(n), num, n + 1u);
  const NodeId mask = static_cast<NodeId>(num - 1);
  for (NodeId v = 0; v < num; ++v) {
    for (unsigned d = 0; d < n; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (v < u) b.add_edge(v, u, static_cast<std::uint16_t>(d));
    }
    const NodeId c = v ^ mask;
    if (v < c) b.add_edge(v, c, static_cast<std::uint16_t>(n));
  }
  return std::move(b).build();
}

Graph complete_graph(std::size_t m) {
  IPG_CHECK(m >= 2, "complete graph needs at least two nodes");
  GraphBuilder b("K" + std::to_string(m), m, m - 1);
  for (NodeId v = 0; v < m; ++v) {
    for (std::size_t o = 1; o < m; ++o) {
      const auto u = static_cast<NodeId>((v + o) % m);
      b.add_arc(v, u, static_cast<std::uint16_t>(o - 1));
    }
  }
  return std::move(b).build();
}

Graph ring_graph(std::size_t m) {
  IPG_CHECK(m >= 3, "ring needs at least three nodes");
  GraphBuilder b("C" + std::to_string(m), m, 2);
  for (NodeId v = 0; v < m; ++v) {
    b.add_arc(v, static_cast<NodeId>((v + 1) % m), 0);
    b.add_arc(v, static_cast<NodeId>((v + m - 1) % m), 1);
  }
  return std::move(b).build();
}

Graph kary_ncube_graph(std::size_t k, std::size_t n) {
  IPG_CHECK(k >= 2 && n >= 1, "k-ary n-cube needs k >= 2, n >= 1");
  const std::size_t num = ipow(k, static_cast<unsigned>(n));
  IPG_CHECK(num <= (std::size_t{1} << 31), "k-ary n-cube too large");
  GraphBuilder b(std::to_string(k) + "-ary " + std::to_string(n) + "-cube", num,
                 2 * n);
  std::size_t scale = 1;
  for (std::size_t d = 0; d < n; ++d) {
    for (NodeId v = 0; v < num; ++v) {
      const std::size_t digit = (v / scale) % k;
      const auto up =
          static_cast<NodeId>(v + ((digit + 1) % k - digit) * scale);
      if (k == 2) {
        if (v < up) b.add_edge(v, up, static_cast<std::uint16_t>(2 * d));
      } else {
        b.add_arc(v, up, static_cast<std::uint16_t>(2 * d));
        const auto down =
            static_cast<NodeId>(v + ((digit + k - 1) % k - digit) * scale);
        b.add_arc(v, down, static_cast<std::uint16_t>(2 * d + 1));
      }
    }
    scale *= k;
  }
  return std::move(b).build();
}

Graph mesh_graph(std::size_t k, std::size_t n) {
  IPG_CHECK(k >= 2 && n >= 1, "mesh needs k >= 2, n >= 1");
  const std::size_t num = ipow(k, static_cast<unsigned>(n));
  IPG_CHECK(num <= (std::size_t{1} << 31), "mesh too large");
  GraphBuilder b(std::to_string(k) + "^" + std::to_string(n) + " mesh", num, n);
  std::size_t scale = 1;
  for (std::size_t d = 0; d < n; ++d) {
    for (NodeId v = 0; v < num; ++v) {
      const std::size_t digit = (v / scale) % k;
      if (digit + 1 < k) {
        b.add_edge(v, static_cast<NodeId>(v + scale), static_cast<std::uint16_t>(d));
      }
    }
    scale *= k;
  }
  return std::move(b).build();
}

Graph ccc_graph(unsigned n) {
  IPG_CHECK(n >= 3 && n <= 24, "CCC dimension out of supported range");
  const std::size_t words = std::size_t{1} << n;
  const std::size_t num = words * n;
  GraphBuilder b("CCC(" + std::to_string(n) + ")", num, 3);
  for (std::size_t w = 0; w < words; ++w) {
    for (unsigned i = 0; i < n; ++i) {
      const auto v = static_cast<NodeId>(w * n + i);
      const auto next = static_cast<NodeId>(w * n + (i + 1) % n);
      b.add_arc(v, next, 0);
      b.add_arc(next, v, 1);
      const std::size_t w2 = w ^ (std::size_t{1} << i);
      if (w < w2) {
        b.add_edge(v, static_cast<NodeId>(w2 * n + i), 2);
      }
    }
  }
  return std::move(b).build();
}

Graph butterfly_graph(unsigned n) {
  IPG_CHECK(n >= 2 && n <= 24, "butterfly dimension out of supported range");
  const std::size_t rows = std::size_t{1} << n;
  const std::size_t num = rows * n;
  GraphBuilder b("BF(" + std::to_string(n) + ")", num, 2);
  for (std::size_t w = 0; w < rows; ++w) {
    for (unsigned i = 0; i < n; ++i) {
      const auto v = static_cast<NodeId>(w * n + i);
      const unsigned next_level = (i + 1) % n;
      const std::size_t w_cross = w ^ (std::size_t{1} << next_level);
      b.add_edge(v, static_cast<NodeId>(w * n + next_level), 0);
      b.add_edge(v, static_cast<NodeId>(w_cross * n + next_level), 1);
    }
  }
  return std::move(b).build();
}

Graph shuffle_exchange_graph(unsigned n) {
  IPG_CHECK(n >= 2 && n <= 26, "shuffle-exchange dimension out of supported range");
  const std::size_t num = std::size_t{1} << n;
  const NodeId mask = static_cast<NodeId>(num - 1);
  GraphBuilder b("SE(" + std::to_string(n) + ")", num, 3);
  for (NodeId v = 0; v < num; ++v) {
    const NodeId shuffled = static_cast<NodeId>(((v << 1) | (v >> (n - 1))) & mask);
    const NodeId unshuffled =
        static_cast<NodeId>((v >> 1) | ((v & 1u) << (n - 1)));
    if (shuffled != v) b.add_arc(v, shuffled, 0);
    if (unshuffled != v) b.add_arc(v, unshuffled, 1);
    b.add_arc(v, v ^ 1u, 2);
  }
  return std::move(b).build();
}

Graph de_bruijn_graph(unsigned n) {
  IPG_CHECK(n >= 2 && n <= 26, "de Bruijn dimension out of supported range");
  const std::size_t num = std::size_t{1} << n;
  const NodeId mask = static_cast<NodeId>(num - 1);
  GraphBuilder b("DB(" + std::to_string(n) + ")", num, 4);
  for (NodeId v = 0; v < num; ++v) {
    for (NodeId bit = 0; bit <= 1; ++bit) {
      const NodeId to = static_cast<NodeId>(((v << 1) | bit) & mask);
      if (to != v) {
        b.add_arc(v, to, static_cast<std::uint16_t>(bit));
        b.add_arc(to, v, static_cast<std::uint16_t>(2 + bit));
      }
    }
  }
  return std::move(b).build();
}

Graph petersen_graph() {
  // Outer 5-cycle 0..4, inner pentagram 5..9 (i adjacent to i +/- 2 mod 5),
  // spokes i <-> i+5.
  GraphBuilder b("Petersen", 10, 3);
  for (NodeId i = 0; i < 5; ++i) {
    b.add_arc(i, (i + 1) % 5, 0);
    b.add_arc((i + 1) % 5, i, 1);
    const NodeId inner_a = 5 + i;
    const NodeId inner_b = 5 + (i + 2) % 5;
    b.add_arc(inner_a, inner_b, 0);
    b.add_arc(inner_b, inner_a, 1);
    b.add_edge(i, i + 5, 2);
  }
  return std::move(b).build();
}

Clustering hypercube_subcube_clustering(unsigned n, std::size_t m_per_chip) {
  IPG_CHECK(util::is_pow2(m_per_chip), "subcube size must be a power of two");
  IPG_CHECK(m_per_chip <= (std::size_t{1} << n), "subcube larger than cube");
  return Clustering::blocks(std::size_t{1} << n, m_per_chip);
}

Clustering kary2_block_clustering(std::size_t k, std::size_t side) {
  return kary_block_clustering(k, 2, side);
}

Clustering kary_block_clustering(std::size_t k, std::size_t n, std::size_t side) {
  IPG_CHECK(side >= 1 && k % side == 0, "block side must divide k");
  const std::size_t num = ipow(k, static_cast<unsigned>(n));
  const std::size_t chips_per_dim = k / side;
  std::vector<std::uint32_t> cluster(num);
  for (std::size_t v = 0; v < num; ++v) {
    std::size_t chip = 0, rest = v, chip_scale = 1;
    for (std::size_t d = 0; d < n; ++d) {
      const std::size_t digit = rest % k;
      rest /= k;
      chip += (digit / side) * chip_scale;
      chip_scale *= chips_per_dim;
    }
    cluster[v] = static_cast<std::uint32_t>(chip);
  }
  return Clustering(std::move(cluster), ipow(chips_per_dim, static_cast<unsigned>(n)));
}

Clustering ccc_cycle_clustering(unsigned n) {
  const std::size_t words = std::size_t{1} << n;
  return Clustering::blocks(words * n, n);
}

Clustering butterfly_clustering(unsigned n, unsigned r) {
  IPG_CHECK(r <= n, "butterfly cluster exponent exceeds dimension");
  const std::size_t rows = std::size_t{1} << n;
  std::vector<std::uint32_t> cluster(rows * n);
  for (std::size_t w = 0; w < rows; ++w) {
    for (unsigned i = 0; i < n; ++i) {
      cluster[w * n + i] = static_cast<std::uint32_t>(w >> r);
    }
  }
  return Clustering(std::move(cluster), rows >> r);
}

Graph dragonfly_graph(std::size_t a, std::size_t h) {
  IPG_CHECK(a >= 2, "dragonfly needs at least two routers per group");
  IPG_CHECK(h >= 1, "dragonfly needs at least one global port per router");
  const std::size_t g = a * h + 1;  // one global link per group pair
  const std::size_t num = g * a;
  GraphBuilder b("DF(" + std::to_string(a) + "," + std::to_string(h) + ")",
                 num, a - 1 + h);
  for (std::size_t grp = 0; grp < g; ++grp) {
    const NodeId base = static_cast<NodeId>(grp * a);
    // Local complete graph, offset labels as in complete_graph.
    for (std::size_t r = 0; r < a; ++r) {
      for (std::size_t o = 1; o < a; ++o) {
        b.add_arc(base + static_cast<NodeId>(r),
                  base + static_cast<NodeId>((r + o) % a),
                  static_cast<std::uint16_t>(o - 1));
      }
    }
    // Global links, palmtree arrangement: slot s (owned by router s/h)
    // reaches group (grp + s + 1) mod g at its slot a*h - 1 - s. Both
    // directions are emitted by their own slot.
    for (std::size_t s = 0; s < a * h; ++s) {
      const std::size_t peer_grp = (grp + s + 1) % g;
      const std::size_t peer_slot = a * h - 1 - s;
      b.add_arc(base + static_cast<NodeId>(s / h),
                static_cast<NodeId>(peer_grp * a + peer_slot / h),
                static_cast<std::uint16_t>(a - 1 + s % h));
    }
  }
  return std::move(b).build();
}

Graph fat_tree_graph(std::size_t k) {
  IPG_CHECK(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >= 2");
  IPG_CHECK(k <= 64, "fat-tree arity out of supported range");
  const std::size_t half = k / 2;
  const std::size_t hosts = k * k * k / 4;
  const std::size_t edges = k * half;  // k pods x k/2 edge switches
  const std::size_t aggs = k * half;
  const std::size_t cores = half * half;
  GraphBuilder b("FT(" + std::to_string(k) + ")",
                 hosts + edges + aggs + cores, k);
  const auto edge_id = [&](std::size_t pod, std::size_t e) {
    return static_cast<NodeId>(hosts + pod * half + e);
  };
  const auto agg_id = [&](std::size_t pod, std::size_t ag) {
    return static_cast<NodeId>(hosts + edges + pod * half + ag);
  };
  const auto core_id = [&](std::size_t c) {
    return static_cast<NodeId>(hosts + edges + aggs + c);
  };
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto host =
            static_cast<NodeId>(pod * (half * half) + e * half + s);
        b.add_arc(host, edge_id(pod, e), 0);
        b.add_arc(edge_id(pod, e), host, static_cast<std::uint16_t>(s));
      }
      for (std::size_t ag = 0; ag < half; ++ag) {
        b.add_arc(edge_id(pod, e), agg_id(pod, ag),
                  static_cast<std::uint16_t>(half + ag));
        b.add_arc(agg_id(pod, ag), edge_id(pod, e),
                  static_cast<std::uint16_t>(e));
      }
    }
    for (std::size_t ag = 0; ag < half; ++ag) {
      for (std::size_t i = 0; i < half; ++i) {
        b.add_arc(agg_id(pod, ag), core_id(ag * half + i),
                  static_cast<std::uint16_t>(half + i));
        b.add_arc(core_id(ag * half + i), agg_id(pod, ag),
                  static_cast<std::uint16_t>(pod));
      }
    }
  }
  return std::move(b).build();
}

Clustering dragonfly_group_clustering(std::size_t a, std::size_t h) {
  IPG_CHECK(a >= 2 && h >= 1, "dragonfly parameters out of range");
  const std::size_t g = a * h + 1;
  return Clustering::blocks(g * a, a);
}

Clustering fat_tree_pod_clustering(std::size_t k) {
  IPG_CHECK(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >= 2");
  const std::size_t half = k / 2;
  const std::size_t hosts = k * k * k / 4;
  const std::size_t edges = k * half;
  const std::size_t aggs = k * half;
  const std::size_t cores = half * half;
  std::vector<std::uint32_t> cluster(hosts + edges + aggs + cores);
  for (std::size_t v = 0; v < hosts; ++v) {
    cluster[v] = static_cast<std::uint32_t>(v / (half * half));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    cluster[hosts + i] = static_cast<std::uint32_t>(i / half);
  }
  for (std::size_t i = 0; i < aggs; ++i) {
    cluster[hosts + edges + i] = static_cast<std::uint32_t>(i / half);
  }
  for (std::size_t i = 0; i < cores; ++i) {
    cluster[hosts + edges + aggs + i] = static_cast<std::uint32_t>(k);
  }
  return Clustering(std::move(cluster), k + 1);
}

}  // namespace ipg::topology
