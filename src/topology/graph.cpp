#include "topology/graph.hpp"

#include <algorithm>
#include <numeric>

namespace ipg::topology {

Graph::Graph(std::string name, std::size_t num_nodes, std::size_t num_dims,
             std::vector<std::uint64_t> row, std::vector<Arc> arcs)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      num_dims_(num_dims),
      row_(std::move(row)),
      arcs_(std::move(arcs)) {
  IPG_CHECK(row_.size() == num_nodes_ + 1, "CSR row array has wrong size");
  IPG_CHECK(row_.back() == arcs_.size(), "CSR row array inconsistent with arcs");
}

NodeId Graph::neighbor(NodeId v, std::uint16_t dim) const noexcept {
  for (const Arc& a : arcs_of(v)) {
    if (a.dim == dim) return a.to;
  }
  return kInvalidNode;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t d = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) d = std::max(d, degree(v));
  return d;
}

double Graph::average_degree() const noexcept {
  if (num_nodes_ == 0) return 0;
  return static_cast<double>(num_arcs()) / static_cast<double>(num_nodes_);
}

bool Graph::is_undirected() const {
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (const Arc& a : arcs_of(v)) {
      const auto back = arcs_of(a.to);
      const bool has_reverse = std::any_of(back.begin(), back.end(),
                                           [v](const Arc& b) { return b.to == v; });
      if (!has_reverse) return false;
    }
  }
  return true;
}

GraphBuilder::GraphBuilder(std::string name, std::size_t num_nodes,
                           std::size_t num_dims)
    : name_(std::move(name)), num_nodes_(num_nodes), num_dims_(num_dims) {}

void GraphBuilder::add_arc(NodeId from, NodeId to, std::uint16_t dim) {
  IPG_DCHECK(from < num_nodes_ && to < num_nodes_, "arc endpoint out of range");
  IPG_DCHECK(dim < num_dims_, "dimension label out of range");
  pending_.emplace_back(from, Arc{to, dim});
}

Graph GraphBuilder::build() && {
  std::vector<std::uint64_t> row(num_nodes_ + 1, 0);
  for (const auto& [from, arc] : pending_) row[from + 1]++;
  std::partial_sum(row.begin(), row.end(), row.begin());
  std::vector<Arc> arcs(pending_.size());
  std::vector<std::uint64_t> cursor(row.begin(), row.end() - 1);
  for (const auto& [from, arc] : pending_) arcs[cursor[from]++] = arc;
  // Sort each adjacency list by dimension for deterministic iteration.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(arcs.begin() + static_cast<std::ptrdiff_t>(row[v]),
              arcs.begin() + static_cast<std::ptrdiff_t>(row[v + 1]),
              [](const Arc& a, const Arc& b) {
                return a.dim != b.dim ? a.dim < b.dim : a.to < b.to;
              });
  }
  return Graph(std::move(name_), num_nodes_, num_dims_, std::move(row), std::move(arcs));
}

Clustering::Clustering(std::vector<std::uint32_t> cluster_of, std::size_t num_clusters)
    : cluster_of_(std::move(cluster_of)), num_clusters_(num_clusters) {
  for (const auto c : cluster_of_) {
    IPG_CHECK(c < num_clusters_, "cluster id out of range");
  }
}

Clustering Clustering::single(std::size_t num_nodes) {
  return Clustering(std::vector<std::uint32_t>(num_nodes, 0), 1);
}

Clustering Clustering::blocks(std::size_t num_nodes, std::size_t block) {
  IPG_CHECK(block > 0 && num_nodes % block == 0,
            "block clustering requires block | num_nodes");
  std::vector<std::uint32_t> c(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    c[v] = static_cast<std::uint32_t>(v / block);
  }
  return Clustering(std::move(c), num_nodes / block);
}

std::vector<std::size_t> Clustering::cluster_sizes() const {
  std::vector<std::size_t> sizes(num_clusters_, 0);
  for (const auto c : cluster_of_) sizes[c]++;
  return sizes;
}

LinkCensus census_links(const Graph& g, const Clustering& c) {
  IPG_CHECK(c.num_nodes() == g.num_nodes(), "clustering does not match graph");
  LinkCensus out;
  std::vector<std::size_t> offchip_per_cluster(c.num_clusters(), 0);
  std::size_t onchip_arcs = 0, offchip_arcs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.arcs_of(v)) {
      if (c.is_intercluster(v, a.to)) {
        ++offchip_arcs;
        ++offchip_per_cluster[c.cluster_of(v)];
      } else {
        ++onchip_arcs;
      }
    }
  }
  out.onchip_edges = onchip_arcs / 2;
  out.offchip_edges = offchip_arcs / 2;
  // offchip_per_cluster counted arcs leaving the cluster = links touching it.
  const auto it = std::max_element(offchip_per_cluster.begin(), offchip_per_cluster.end());
  out.max_offchip_per_cluster =
      it == offchip_per_cluster.end() ? 0.0 : static_cast<double>(*it);
  out.avg_offchip_per_node =
      g.num_nodes() == 0 ? 0.0
                         : static_cast<double>(offchip_arcs) /
                               static_cast<double>(g.num_nodes());
  return out;
}

Graph from_ipg(const core::Ipg& ipg, std::string name) {
  GraphBuilder b(std::move(name), ipg.num_nodes(), ipg.num_generators());
  for (NodeId v = 0; v < ipg.num_nodes(); ++v) {
    for (std::size_t g = 0; g < ipg.num_generators(); ++g) {
      const NodeId u = ipg.neighbor[v][g];
      if (u != v) b.add_arc(v, u, static_cast<std::uint16_t>(g));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topology
