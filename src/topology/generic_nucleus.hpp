#pragma once
// Adapter: any materialized generic IPG (core::Ipg) can serve as the
// nucleus of a super-IPG — the full generality of §2, where the nucleus is
// "a smaller IPG". This closes the loop between the two representations:
// e.g. the 36-node worked example of §2 can be the basic module of an
// HSN(l, example).

#include <memory>
#include <string>
#include <vector>

#include "core/ipg.hpp"
#include "topology/nucleus.hpp"

namespace ipg::topology {

class GenericIpgNucleus final : public Nucleus {
 public:
  /// Takes ownership of a materialized IPG. Throws unless the generator
  /// set is closed under inversion (needed for undirected super-IPGs and
  /// descend plans).
  explicit GenericIpgNucleus(core::Ipg ipg, std::string name);

  std::string name() const override { return name_; }
  std::size_t num_nodes() const override { return ipg_.num_nodes(); }
  std::size_t num_generators() const override { return ipg_.num_generators(); }
  NodeId apply(NodeId v, std::size_t gen) const override {
    return ipg_.neighbor[v][gen];
  }
  std::size_t inverse_generator(std::size_t gen) const override {
    return inverse_[gen];
  }

  const core::Ipg& ipg() const noexcept { return ipg_; }

 private:
  core::Ipg ipg_;
  std::string name_;
  std::vector<std::size_t> inverse_;
};

/// Convenience: the §2 worked example wrapped as a nucleus.
std::shared_ptr<const Nucleus> section2_example_nucleus();

}  // namespace ipg::topology
