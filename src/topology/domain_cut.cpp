#include "topology/domain_cut.hpp"

#include "util/check.hpp"

namespace ipg::topology {

DomainCut make_domain_cut(const Clustering& chips, std::size_t k) {
  const std::size_t n = chips.num_nodes();
  IPG_CHECK(k >= 1 && k <= n, "domain count must be in [1, num_nodes]");
  DomainCut cut;
  cut.num_domains = k;
  cut.domain_of.resize(n);

  const std::size_t num_chips = chips.num_clusters();
  if (num_chips < k) {
    // Not enough chips to keep domains chip-aligned (e.g. a monolithic
    // comparison network): contiguous node ranges, sizes within one.
    for (NodeId v = 0; v < n; ++v) {
      cut.domain_of[v] = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v) * k / n);
    }
    return cut;
  }

  // Greedy prefix packing over chips in id order: each domain takes whole
  // chips until it reaches its fair share of the remaining nodes. The
  // force-close rule (remaining chips == remaining domains) guarantees
  // every later domain still gets at least one chip, whatever the sizes.
  const std::vector<std::size_t> sizes = chips.cluster_sizes();
  std::vector<std::uint32_t> dom_of_chip(num_chips);
  std::size_t d = 0;
  std::size_t in_domain = 0;
  std::size_t nodes_left = n;
  std::size_t quota = (nodes_left + k - 1) / k;
  for (std::size_t c = 0; c < num_chips; ++c) {
    dom_of_chip[c] = static_cast<std::uint32_t>(d);
    in_domain += sizes[c];
    const std::size_t chips_left = num_chips - c - 1;
    const std::size_t domains_left = k - d - 1;
    if (domains_left > 0 &&
        (in_domain >= quota || chips_left == domains_left)) {
      nodes_left -= in_domain;
      in_domain = 0;
      ++d;
      quota = (nodes_left + domains_left - 1) / domains_left;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    cut.domain_of[v] = dom_of_chip[chips.cluster_of(v)];
  }
  return cut;
}

}  // namespace ipg::topology
