#pragma once
// Tuple-coded super-IPGs — the paper's main object (§2).
//
// A node of a super-IPG with l levels over an M-node nucleus is an l-tuple
// of nucleus vertices, encoded as a radix-M integer whose digit 0 is the
// *leftmost* super-symbol. Nucleus generators act on digit 0; each
// super-generator permutes the digits by a fixed group map. This is
// isomorphic to the generic symbol-label IPG of src/core (proved by test
// on small instances) and scales to millions of nodes.
//
// Families (all with nucleus G and l levels):
//   HSN(l,G)          transposition super-generators T_2..T_l
//   ring-CN(l,G)      cyclic shifts L_1 and R_1
//   complete-CN(l,G)  cyclic shifts L_1..L_{l-1}
//   SFN(l,G)          flips F_2..F_l
// plus the recursive families RCC(r,G) = HSN(2, RCC(r-1,G)) and
// RHSN(d,l,G) = HSN(l, RHSN(d-1,l,G)), and the two-level classics
// HCN(n,n) = HSN(2,Q_n) and HFN = HSN(2,FQ_n) built through them.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "topology/graph.hpp"
#include "topology/nucleus.hpp"

namespace ipg::topology {

enum class SuperFamily : std::uint8_t {
  kHSN,
  kRingCN,
  kCompleteCN,
  kSFN,
  kDirectedRingCN,  ///< L_1 only (the paper's "directed CN", Cor 4.2)
};

std::string family_name(SuperFamily f);

/// An arrangement of the l super-symbol slots: arr[p] = original group now
/// at position p. Used by routing and the ascend/descend planner.
using Arrangement = std::vector<std::uint8_t>;

class SuperIpg {
 public:
  SuperIpg(std::shared_ptr<const Nucleus> nucleus, std::size_t levels,
           SuperFamily family);

  const std::string& name() const noexcept { return name_; }
  SuperFamily family() const noexcept { return family_; }
  const Nucleus& nucleus() const noexcept { return *nucleus_; }
  std::shared_ptr<const Nucleus> nucleus_ptr() const noexcept { return nucleus_; }

  std::size_t levels() const noexcept { return levels_; }
  std::size_t nucleus_size() const noexcept { return m_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  std::size_t num_nucleus_generators() const noexcept { return n_nucleus_; }
  std::size_t num_super_generators() const noexcept { return group_maps_.size(); }
  std::size_t num_generators() const noexcept {
    return n_nucleus_ + group_maps_.size();
  }

  /// Moves node @p v along generator @p gen. Generators 0..n_nucleus-1 are
  /// the (lifted) nucleus generators; the rest are super-generators.
  NodeId apply(NodeId v, std::size_t gen) const;

  std::size_t inverse_generator(std::size_t gen) const;

  bool is_super_generator(std::size_t gen) const noexcept { return gen >= n_nucleus_; }

  /// Group map of super-generator @p s (0-based among super-generators):
  /// applying it puts old group map[g] at position g.
  std::span<const std::uint8_t> group_map(std::size_t s) const {
    return group_maps_[s];
  }

  // --- tuple access -------------------------------------------------------
  std::size_t group(NodeId v, std::size_t i) const noexcept {
    return (v / scale_[i]) % m_;
  }
  NodeId make_node(std::span<const NodeId> groups) const;

  /// Chip/cluster of a node: the nucleus copy it belongs to (all nodes
  /// sharing digits 1..l-1). One cluster per chip, as in §4.
  std::uint32_t cluster_of(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(v / m_);
  }
  Clustering nucleus_clustering() const;

  // --- super-generator word machinery --------------------------------------
  /// Applies super-generator @p s (local index) to an arrangement.
  Arrangement apply_to_arrangement(const Arrangement& arr, std::size_t s) const;

  /// Shortest word of (local) super-generator indices transforming @p from
  /// into any arrangement with arr[0] == group, via BFS over arrangements.
  std::vector<std::size_t> word_to_front(const Arrangement& from,
                                         std::uint8_t group) const;

  /// Shortest word transforming @p from into exactly @p to.
  std::vector<std::size_t> word_to_arrangement(const Arrangement& from,
                                               const Arrangement& to) const;

  /// Theorem 3.1's t: max over super-symbols of (shortest bring-to-front
  /// word + shortest restore word). SDC emulation slowdown is t+1.
  std::size_t t_single_dimension() const;

  // --- routing --------------------------------------------------------------
  /// Full generator word (global indices) routing @p from to @p to, using
  /// the family's canonical visiting order: each differing super-symbol is
  /// corrected during its last visit to the leftmost position (§4.2).
  /// Every step moves the current node (generator fixed points are
  /// dropped), so the word is a walk in to_graph().
  std::vector<std::size_t> route(NodeId from, NodeId to) const;

  /// Materializes the CSR graph; dimension label = generator index.
  Graph to_graph() const;

 private:
  Arrangement identity_arrangement() const;

  std::shared_ptr<const Nucleus> nucleus_;
  std::size_t levels_;
  SuperFamily family_;
  std::size_t m_;          ///< nucleus size M
  std::size_t n_nucleus_;  ///< nucleus generator count
  std::size_t num_nodes_;  ///< M^l
  std::vector<std::size_t> scale_;  ///< M^i place values
  std::vector<Arrangement> group_maps_;
  std::string name_;
};

// --- factories --------------------------------------------------------------

SuperIpg make_hsn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus);
SuperIpg make_ring_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus);
SuperIpg make_directed_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus);
SuperIpg make_complete_cn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus);
SuperIpg make_sfn(std::size_t levels, std::shared_ptr<const Nucleus> nucleus);

/// Wraps a SuperIpg as a Nucleus so families can be built recursively.
class SuperIpgNucleus final : public Nucleus {
 public:
  explicit SuperIpgNucleus(SuperIpg inner)
      : inner_(std::make_shared<SuperIpg>(std::move(inner))) {}
  std::string name() const override { return inner_->name(); }
  std::size_t num_nodes() const override { return inner_->num_nodes(); }
  std::size_t num_generators() const override { return inner_->num_generators(); }
  NodeId apply(NodeId v, std::size_t gen) const override {
    return inner_->apply(v, gen);
  }
  std::size_t inverse_generator(std::size_t gen) const override {
    return inner_->inverse_generator(gen);
  }
  const SuperIpg* as_super_ipg() const override { return inner_.get(); }

 private:
  std::shared_ptr<const SuperIpg> inner_;
};

/// Innermost (non-super-IPG) nucleus of a possibly-recursive family: for
/// RCC/RHSN this walks through the SuperIpgNucleus wrappers; for plain
/// families it is just the nucleus. The paper's clusters/chips are always
/// copies of this base nucleus.
const Nucleus& base_nucleus(const SuperIpg& s);

/// Number of generators of @p s that act inside the base nucleus. Because
/// nucleus generators always come first (recursively), these are exactly
/// the generator indices < the returned count; every other generator
/// crosses chips.
std::size_t num_base_nucleus_generators(const SuperIpg& s);

/// One cluster per base-nucleus copy (one chip per nucleus, §4).
Clustering base_nucleus_clustering(const SuperIpg& s);

/// RCC(r,G): r = 0 gives G itself (invalid here — needs r >= 1);
/// RCC(r,G) = HSN(2, RCC(r-1,G)). N = M^(2^r).
SuperIpg make_rcc(std::size_t r, std::shared_ptr<const Nucleus> nucleus);

/// RHSN(depth, l, G) = HSN(l, RHSN(depth-1, l, G)); depth 1 = HSN(l,G).
SuperIpg make_rhsn(std::size_t depth, std::size_t levels,
                   std::shared_ptr<const Nucleus> nucleus);

/// HCN(n,n) = HSN(2, Q_n); HFN(n) = HSN(2, FQ_n).
SuperIpg make_hcn(unsigned n);
SuperIpg make_hfn(unsigned n);

}  // namespace ipg::topology
