#pragma once
// Homogeneous product networks HPN(p,G) (§3.1).
//
// HPN(p,G) is the p-th Cartesian power of a dimensionizable graph G. A node
// is a p-tuple of G-vertices (same mixed-radix integer coding as SuperIpg,
// so the natural super-IPG <-> HPN node correspondence is the identity).
// Dimension j (0-based, j < p * n_G) acts on coordinate j / n_G with
// nucleus generator j % n_G — the paper's dimension grouping.
//
// The pk-dimensional hypercube is HPN(p, Q_k); the p-dimensional
// generalized hypercube of radix M is HPN(p, K_M); the M-ary p-cube is
// HPN(p, C_M).

#include <memory>
#include <string>

#include "topology/graph.hpp"
#include "topology/nucleus.hpp"

namespace ipg::topology {

class Hpn {
 public:
  Hpn(std::shared_ptr<const Nucleus> factor, std::size_t power);

  const std::string& name() const noexcept { return name_; }
  const Nucleus& factor() const noexcept { return *factor_; }
  std::size_t power() const noexcept { return p_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Total dimension-generator count: p * n_G.
  std::size_t num_dims() const noexcept { return p_ * n_g_; }
  std::size_t factor_generators() const noexcept { return n_g_; }

  std::size_t coordinate(NodeId v, std::size_t level) const noexcept {
    return (v / scale_[level]) % m_;
  }

  /// Moves along dimension @p j: applies factor generator j%n_G to
  /// coordinate j/n_G.
  NodeId apply(NodeId v, std::size_t j) const;

  std::size_t inverse_dim(std::size_t j) const;

  Graph to_graph() const;

 private:
  std::shared_ptr<const Nucleus> factor_;
  std::size_t p_;
  std::size_t m_;    ///< factor size
  std::size_t n_g_;  ///< factor generator count
  std::size_t num_nodes_;
  std::vector<std::size_t> scale_;
  std::string name_;
};

}  // namespace ipg::topology
