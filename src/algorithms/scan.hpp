#pragma once
// Parallel prefix (scan) as an ascend algorithm — another member of the
// ascend/descend class of §3.2, included to exercise non-FFT operations.
//
// Each item carries (block_sum, prefix). At the stage for a digit, items
// are ordered by original address; each item adds the block sums of all
// lower items in the group to its prefix, and every item's block sum
// becomes the group total. After the full ascend, prefix is the inclusive
// prefix sum.

#include <vector>

#include "algorithms/ascend_descend.hpp"

namespace ipg::algorithms {

struct ScanCell {
  double sum = 0;
  double prefix = 0;
};

inline void scan_group_op(std::span<const std::size_t> /*origs*/,
                          std::span<ScanCell> values) {
  double below = 0, total = 0;
  for (const ScanCell& c : values) total += c.sum;
  for (ScanCell& c : values) {
    c.prefix += below;
    below += c.sum;
    c.sum = total;
  }
}

struct ScanRun {
  std::vector<double> prefix;  ///< inclusive prefix sums by original index
  StepCounts counts;
};

inline ScanRun prefix_sum_on_super_ipg(const topology::SuperIpg& ipg,
                                       const std::vector<double>& input) {
  IPG_CHECK(input.size() == ipg.num_nodes(), "one value per node");
  std::vector<ScanCell> init(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) init[i] = {input[i], input[i]};
  SuperIpgMachine<ScanCell> machine(ipg, std::move(init));
  run_plan(machine, build_ascend_plan(ipg), scan_group_op);
  ScanRun run;
  const auto by_origin = machine.values_by_origin();
  run.prefix.resize(by_origin.size());
  for (std::size_t i = 0; i < by_origin.size(); ++i) {
    run.prefix[i] = by_origin[i].prefix;
  }
  run.counts = machine.counts();
  return run;
}

}  // namespace ipg::algorithms
