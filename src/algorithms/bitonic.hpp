#pragma once
// Bitonic sort as a sequence of descend passes (§3.2).
//
// Batcher's bitonic sort runs log2 N merge phases; phase p (block size
// 2^p) is a descend pass over bits p-1..0 where the compare-exchange
// direction of a pair is given by bit p of the lower address. Each phase
// maps onto a bit-restricted Theorem 3.5 descend plan, so the whole sort
// runs on a super-IPG with the machine counting every communication step.

#include <vector>

#include "algorithms/ascend_descend.hpp"

namespace ipg::algorithms {

struct SortRun {
  std::vector<double> output;
  StepCounts counts;
};

/// Sorts |ipg| values ascending on the super-IPG. Requires radix-2 base
/// dimensions (hypercube-family nuclei).
SortRun bitonic_sort_on_super_ipg(const topology::SuperIpg& ipg,
                                  const std::vector<double>& input);

/// Baseline on a hypercube HPN.
SortRun bitonic_sort_on_hpn(const topology::Hpn& hpn,
                            const topology::Clustering& chips,
                            const std::vector<double>& input);

/// The compare-exchange group operation for merge phase @p phase_bit
/// (block size 2^(phase_bit+1) ... i.e. direction from that bit), exposed
/// for tests.
void bitonic_group_op(std::size_t phase_bit, std::span<const std::size_t> origs,
                      std::span<double> values);

}  // namespace ipg::algorithms
