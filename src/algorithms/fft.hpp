#pragma once
// Fast Fourier transform as an ascend algorithm (§3.2).
//
// The decimation-in-time FFT loads the input in bit-reversed order and
// performs one butterfly stage per address bit, ascending — exactly the
// ascend pattern of Theorem 3.5. Running it through a SuperIpgMachine
// yields both the transform and the paper's communication-step counts;
// running it on an HpnMachine over a hypercube gives the baseline.

#include <complex>
#include <vector>

#include "algorithms/ascend_descend.hpp"
#include "topology/hpn.hpp"

namespace ipg::algorithms {

using Complex = std::complex<double>;

/// O(N^2) reference DFT (forward, no normalization) for verification.
std::vector<Complex> dft_reference(const std::vector<Complex>& x);

/// The butterfly group operation: works for any power-of-two group size by
/// applying the binary sub-stages in ascending bit order; twiddles are
/// derived from the items' original addresses alone.
void fft_group_op(std::span<const std::size_t> origs, std::span<Complex> values);

struct FftRun {
  std::vector<Complex> output;  ///< X[k], indexed by k
  StepCounts counts;
};

/// FFT of |ipg| points executed on the super-IPG via the Theorem 3.5 plan.
FftRun fft_on_super_ipg(const topology::SuperIpg& ipg,
                        const std::vector<Complex>& input);

/// Baseline FFT on the hypercube HPN(p, Q_k) with the given chip partition.
FftRun fft_on_hpn(const topology::Hpn& hpn, const topology::Clustering& chips,
                  const std::vector<Complex>& input);

}  // namespace ipg::algorithms
