#pragma once
// Dekel–Nassimi–Sahni matrix multiplication on N = n^3 nodes (§3.2 lists
// matrix multiplication among the ascend/descend applications).
//
// Node address bits split into three q-bit axes (n = 2^q): k (low), j
// (middle), i (high). A(i,j) starts at node (i,j,0) and B(j,k) at node
// (0,j,k); the algorithm broadcasts A along the k axis and B along the i
// axis (ascend passes with a copy operation), multiplies locally, and
// all-reduces along the j axis (ascend with addition). Each pass is a
// bit-range-restricted Theorem 3.5 plan, so the whole computation runs on
// a super-IPG with full communication-step accounting.

#include <vector>

#include "algorithms/ascend_descend.hpp"

namespace ipg::algorithms {

struct MatmulRun {
  /// C = A * B, row-major n x n.
  std::vector<double> c;
  StepCounts counts;
};

/// Multiplies two n x n matrices (row-major) on the super-IPG; requires
/// |ipg| = n^3 with n a power of two and radix-2 base dimensions.
MatmulRun dns_matmul_on_super_ipg(const topology::SuperIpg& ipg,
                                  const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Reference O(n^3) multiply for verification.
std::vector<double> matmul_reference(std::size_t n, const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace ipg::algorithms
