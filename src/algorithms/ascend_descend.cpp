#include "algorithms/ascend_descend.hpp"

#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::algorithms {

using topology::Arrangement;
using topology::Nucleus;

std::size_t AscendPlan::super_steps() const noexcept {
  std::size_t c = 0;
  for (const auto& i : items) c += i.kind == PlanItem::Kind::kSuper ? 1 : 0;
  return c;
}

std::size_t AscendPlan::base_dim_steps() const noexcept {
  return items.size() - super_steps();
}

namespace {

/// Bits spanned by one vertex of @p nuc (log2 of its node count).
std::size_t nucleus_bits(const Nucleus& nuc) {
  IPG_CHECK(util::is_pow2(nuc.num_nodes()),
            "ascend/descend requires power-of-two nucleus sizes (paper's assumption)");
  return util::exact_log2(nuc.num_nodes());
}

/// Emits the nucleus-internal pass covering original bits
/// [bit_base, bit_base + bits(nuc)), clipped to [bit_lo, bit_hi).
/// Recursive families emit their own super steps (which are nucleus
/// generators — hence on-chip or mid-level — of the outer graph).
void emit_nucleus_pass(const Nucleus& nuc, bool descend, std::size_t bit_base,
                       std::size_t bit_lo, std::size_t bit_hi,
                       std::vector<PlanItem>& items);

/// Emits the full Theorem 3.5 pass for @p ipg, whose addresses start at
/// original bit @p bit_base.
void emit_super_ipg_pass(const SuperIpg& ipg, bool descend, std::size_t bit_base,
                         std::size_t bit_lo, std::size_t bit_hi,
                         std::vector<PlanItem>& items,
                         bool restore_order = true) {
  const std::size_t l = ipg.levels();
  const std::size_t level_bits = nucleus_bits(ipg.nucleus());

  Arrangement arr(l);
  std::iota(arr.begin(), arr.end(), std::uint8_t{0});
  const Arrangement identity = arr;

  IPG_CHECK(!descend, "descend plans are built by reversing the ascend plan");
  bool touched = false;
  for (std::size_t level = 0; level < l; ++level) {
    const std::size_t lo = bit_base + level * level_bits;
    const std::size_t hi = lo + level_bits;
    if (hi <= bit_lo || lo >= bit_hi) continue;  // level fully outside range
    // A level whose nucleus pass is empty (all its dimensions clipped)
    // needs no super steps either.
    std::vector<PlanItem> nucleus_items;
    emit_nucleus_pass(ipg.nucleus(), descend, lo, bit_lo, bit_hi, nucleus_items);
    if (nucleus_items.empty()) continue;
    touched = true;
    if (arr[0] != level) {
      for (const std::size_t s :
           ipg.word_to_front(arr, static_cast<std::uint8_t>(level))) {
        items.push_back({PlanItem::Kind::kSuper, ipg.num_nucleus_generators() + s});
        arr = ipg.apply_to_arrangement(arr, s);
      }
    }
    items.insert(items.end(), nucleus_items.begin(), nucleus_items.end());
  }
  if (restore_order && touched && arr != identity) {
    for (const std::size_t s : ipg.word_to_arrangement(arr, identity)) {
      items.push_back({PlanItem::Kind::kSuper, ipg.num_nucleus_generators() + s});
      arr = ipg.apply_to_arrangement(arr, s);
    }
  }
}

void emit_nucleus_pass(const Nucleus& nuc, bool descend, std::size_t bit_base,
                       std::size_t bit_lo, std::size_t bit_hi,
                       std::vector<PlanItem>& items) {
  if (const SuperIpg* inner = nuc.as_super_ipg()) {
    emit_super_ipg_pass(*inner, descend, bit_base, bit_lo, bit_hi, items);
    return;
  }
  IPG_CHECK(nuc.num_dimensions() > 0,
            "base nucleus must be dimensionizable for ascend/descend");
  struct Dim {
    std::size_t d, lo, hi;
  };
  std::vector<Dim> dims;
  std::size_t bit = bit_base;
  for (std::size_t d = 0; d < nuc.num_dimensions(); ++d) {
    const std::size_t radix = nuc.radix(d);
    IPG_CHECK(util::is_pow2(radix), "ascend/descend requires power-of-two radices");
    const std::size_t width = util::exact_log2(radix);
    dims.push_back({d, bit, bit + width});
    bit += width;
  }
  if (descend) std::reverse(dims.begin(), dims.end());
  for (const Dim& dim : dims) {
    if (dim.hi <= bit_lo || dim.lo >= bit_hi) continue;
    items.push_back({PlanItem::Kind::kBaseDim, dim.d});
  }
}

}  // namespace

AscendPlan build_ascend_plan(const SuperIpg& ipg, bool descend,
                             std::size_t bit_lo, std::size_t bit_hi,
                             bool restore_order) {
  // Dropping the restore word only composes with ascend order: a descend
  // plan is the reversal of a *closed* (identity-to-identity) ascend walk.
  IPG_CHECK(restore_order || !descend,
            "restore_order=false requires an ascend plan");
  AscendPlan plan;
  emit_super_ipg_pass(ipg, /*descend=*/false, 0, bit_lo, bit_hi, plan.items,
                      restore_order);
  if (descend) {
    // A descend pass is the exact reverse of the ascend pass: reversing the
    // item order visits bits high-to-low, and inverting each super step
    // walks the arrangement trajectory backwards (identity to identity), so
    // counts match the ascend plan step for step.
    std::reverse(plan.items.begin(), plan.items.end());
    for (PlanItem& item : plan.items) {
      if (item.kind == PlanItem::Kind::kSuper) {
        item.index = ipg.inverse_generator(item.index);
      }
    }
  }
  return plan;
}

std::size_t address_bits(const SuperIpg& ipg) {
  IPG_CHECK(util::is_pow2(ipg.num_nodes()), "node count must be a power of two");
  return util::exact_log2(ipg.num_nodes());
}

}  // namespace ipg::algorithms
