#pragma once
// Ascend/descend algorithm plans for super-IPGs (Theorem 3.5, Corollaries
// 3.6/3.7).
//
// An ascend algorithm operates on N = 2^D data items, visiting address
// bits 0..D-1 in order (descend: D-1..0); the operation at bit b combines
// the items whose addresses differ in bit b. On a super-IPG the plan of
// Theorem 3.5 performs, per super-symbol level, a nucleus-internal ascend
// (one communication step per nucleus dimension) bracketed by
// super-generator steps that bring the level's super-symbol to the
// leftmost position, and ends by restoring the super-symbol order.
//
// Plans are sequences of machine steps; executing a plan with a group
// operation on a SuperIpgMachine both computes the algorithm *and* yields
// the paper's communication-step counts:
//   CN(l, Q_k):           l(k+1)              (Cor 3.6)
//   HSN/SFN/RCC(l, Q_k):  l(k+2) - 2          (Cor 3.6)
//   CN(l, GHC):           l(n+1) comm, l*sum(m_i - 1) compute (Cor 3.7)

#include <cstddef>
#include <limits>
#include <vector>

#include "emulation/machine.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::algorithms {

using emulation::HpnMachine;
using emulation::StepCounts;
using emulation::SuperIpgMachine;
using topology::SuperIpg;

struct PlanItem {
  enum class Kind : std::uint8_t { kSuper, kBaseDim };
  Kind kind;
  std::size_t index;  ///< generator index (kSuper) or base dimension (kBaseDim)
};

struct AscendPlan {
  std::vector<PlanItem> items;

  std::size_t comm_steps() const noexcept { return items.size(); }
  std::size_t super_steps() const noexcept;     ///< off-chip generator steps
  std::size_t base_dim_steps() const noexcept;  ///< on-chip dimension steps
};

/// Builds the Theorem 3.5 plan. @p bit_lo / @p bit_hi restrict the pass to
/// original-address bits in [bit_lo, bit_hi) — levels and base dimensions
/// entirely outside the range are skipped (used by bitonic phases and DNS
/// matrix multiplication). Requires every base radix to be a power of two.
///
/// @p restore_order: when false, the final super-generator word that puts
/// the super-symbols back in seed order is dropped — §3.2's "if reordering
/// of the results is not required, the number of communication steps can
/// be further reduced". Results are then addressed by origin (the machine
/// tracks where every item went), but items are not at their home nodes.
AscendPlan build_ascend_plan(
    const SuperIpg& ipg, bool descend = false, std::size_t bit_lo = 0,
    std::size_t bit_hi = std::numeric_limits<std::size_t>::max(),
    bool restore_order = true);

/// Number of address bits an item of this super-IPG carries (log2 N).
std::size_t address_bits(const SuperIpg& ipg);

/// Runs @p plan on @p machine, applying @p op at every base-dimension step.
template <typename T, typename Op>
void run_plan(SuperIpgMachine<T>& machine, const AscendPlan& plan, Op&& op) {
  for (const PlanItem& item : plan.items) {
    if (item.kind == PlanItem::Kind::kSuper) {
      machine.step_generator(item.index);
    } else {
      machine.step_base_dimension(item.index, op);
    }
  }
}

/// Baseline: the same pass on an HPN machine (e.g. a hypercube), visiting
/// (level, dim) pairs in ascending or descending bit order within
/// [bit_lo, bit_hi).
template <typename T, typename Op>
void run_hpn_pass(HpnMachine<T>& machine, const topology::Hpn& hpn,
                  bool descend, Op&& op, std::size_t bit_lo = 0,
                  std::size_t bit_hi = std::numeric_limits<std::size_t>::max()) {
  struct Step {
    std::size_t level, dim, bit;
  };
  std::vector<Step> steps;
  std::size_t bit = 0;
  for (std::size_t level = 0; level < hpn.power(); ++level) {
    for (std::size_t d = 0; d < hpn.factor().num_dimensions(); ++d) {
      const std::size_t radix = hpn.factor().radix(d);
      std::size_t width = 0;
      while ((std::size_t{1} << width) < radix) ++width;
      if (bit < bit_hi && bit + width > bit_lo) steps.push_back({level, d, bit});
      bit += width;
    }
  }
  if (descend) std::reverse(steps.begin(), steps.end());
  for (const Step& s : steps) machine.step_dimension(s.level, s.dim, op);
}

}  // namespace ipg::algorithms
