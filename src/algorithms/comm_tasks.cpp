#include "algorithms/comm_tasks.hpp"

#include <cmath>

#include "emulation/allport.hpp"
#include "metrics/distances.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::algorithms {

double mnb_steps_hypercube(unsigned n) {
  const double num_nodes = std::pow(2.0, n);
  return std::ceil((num_nodes - 1) / n);
}

double te_steps_hypercube(unsigned n) {
  // Johnsson & Ho: all-port total exchange on Q_n finishes in N/2 steps.
  return std::pow(2.0, n) / 2.0;
}

namespace {

/// Super-IPG over Q_k with l levels emulates the (l*k)-cube; its own node
/// count is 2^(l*k), and the emulation slowdown is max(2k, l+1).
std::pair<unsigned, std::size_t> emulated_cube(const topology::SuperIpg& ipg) {
  IPG_CHECK(util::is_pow2(ipg.nucleus_size()),
            "emulated-cube analysis needs a power-of-two nucleus");
  const auto k = static_cast<unsigned>(util::exact_log2(ipg.nucleus_size()));
  // The hypercube emulation uses k dimensions per level even if the
  // nucleus has extra generators (e.g. folded hypercubes).
  const std::size_t slowdown =
      emulation::allport_bound(ipg.levels(), ipg.num_nucleus_generators());
  return {static_cast<unsigned>(k * ipg.levels()), slowdown};
}

}  // namespace

double mnb_steps_super_ipg(const topology::SuperIpg& ipg) {
  const auto [dims, slowdown] = emulated_cube(ipg);
  return mnb_steps_hypercube(dims) * static_cast<double>(slowdown);
}

double te_steps_super_ipg(const topology::SuperIpg& ipg) {
  const auto [dims, slowdown] = emulated_cube(ipg);
  return te_steps_hypercube(dims) * static_cast<double>(slowdown);
}

double pattern_offchip_hops(
    const topology::Graph& g, const topology::Clustering& chips,
    const std::function<topology::NodeId(topology::NodeId)>& pattern) {
  double total = 0;
  for (topology::NodeId src = 0; src < g.num_nodes(); ++src) {
    const topology::NodeId dst = pattern(src);
    if (dst == src) continue;
    const auto dist = metrics::intercluster_distances(g, chips, src);
    total += dist[dst];
  }
  return total / static_cast<double>(g.num_nodes());
}

OffchipCounts offchip_counts(const topology::Graph& g,
                             const topology::Clustering& chips,
                             std::size_t sample_sources) {
  const auto stats = metrics::intercluster_stats(g, chips, sample_sources);
  OffchipCounts out;
  out.avg_intercluster_distance = stats.average;
  out.te_offchip_transmissions = stats.average *
                                 static_cast<double>(g.num_nodes()) *
                                 static_cast<double>(g.num_nodes());
  return out;
}

}  // namespace ipg::algorithms
