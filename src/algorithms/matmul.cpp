#include "algorithms/matmul.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::algorithms {

namespace {

struct Cell {
  double a = 0, b = 0, c = 0;
};

}  // namespace

std::vector<double> matmul_reference(std::size_t n, const std::vector<double>& a,
                                     const std::vector<double>& b) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a[i * n + k] * b[k * n + j];
      }
    }
  }
  return c;
}

MatmulRun dns_matmul_on_super_ipg(const topology::SuperIpg& ipg,
                                  const std::vector<double>& a,
                                  const std::vector<double>& b) {
  const std::size_t bits = address_bits(ipg);
  IPG_CHECK(bits % 3 == 0, "DNS needs N = n^3 nodes with n a power of two");
  const std::size_t q = bits / 3;
  const std::size_t n = std::size_t{1} << q;
  IPG_CHECK(a.size() == n * n && b.size() == n * n, "matrices must be n x n");

  // Address = i:q | j:q | k:q (k least significant).
  auto axis_k = [q](std::size_t addr) { return addr & ((std::size_t{1} << q) - 1); };
  auto axis_j = [q](std::size_t addr) {
    return (addr >> q) & ((std::size_t{1} << q) - 1);
  };
  auto axis_i = [q](std::size_t addr) { return addr >> (2 * q); };

  std::vector<Cell> init(ipg.num_nodes());
  for (std::size_t addr = 0; addr < init.size(); ++addr) {
    const std::size_t i = axis_i(addr), j = axis_j(addr), k = axis_k(addr);
    if (k == 0) init[addr].a = a[i * n + j];
    if (i == 0) init[addr].b = b[j * n + k];
  }
  SuperIpgMachine<Cell> machine(ipg, std::move(init));

  // A(i,j) from k=0 along the k axis: at each k bit, the lower-address
  // item (k bit 0) is the one that already holds the value.
  const auto copy_a = [](std::span<const std::size_t>, std::span<Cell> v) {
    v[1].a = v[0].a;
  };
  run_plan(machine, build_ascend_plan(ipg, false, 0, q), copy_a);
  // B(j,k) from i=0 along the i axis.
  const auto copy_b = [](std::span<const std::size_t>, std::span<Cell> v) {
    v[1].b = v[0].b;
  };
  run_plan(machine, build_ascend_plan(ipg, false, 2 * q, 3 * q), copy_b);

  // Local multiply: a compute-only phase (no communication step).
  // The machine exposes values only through steps, so fold the multiply
  // into the first reduction stage by computing products lazily: instead,
  // run the j-axis all-reduce with an op that sums products.
  bool first_stage = true;
  const auto reduce = [&first_stage](std::span<const std::size_t>,
                                     std::span<Cell> v) {
    for (Cell& cell : v) {
      if (first_stage) cell.c = cell.a * cell.b;
    }
    const double sum = v[0].c + v[1].c;
    v[0].c = sum;
    v[1].c = sum;
  };
  // All-reduce along the j axis, one bit at a time; `first_stage` must
  // flip after the first base-dimension step, so run stages separately.
  const AscendPlan jplan = build_ascend_plan(ipg, false, q, 2 * q);
  for (const PlanItem& item : jplan.items) {
    if (item.kind == PlanItem::Kind::kSuper) {
      machine.step_generator(item.index);
    } else {
      machine.step_base_dimension(item.index, reduce);
      first_stage = false;
    }
  }

  // C(i,k) is replicated along j; read it from j = 0.
  MatmulRun run;
  run.c.assign(n * n, 0.0);
  const auto by_origin = machine.values_by_origin();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t addr = (i << (2 * q)) | k;  // j = 0
      run.c[i * n + k] = by_origin[addr].c;
    }
  }
  run.counts = machine.counts();
  return run;
}

}  // namespace ipg::algorithms
