#include "algorithms/fft.hpp"

#include <numbers>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::algorithms {

std::vector<Complex> dft_reference(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j * k) /
                           static_cast<double>(n);
      acc += x[j] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

void fft_group_op(std::span<const std::size_t> origs, std::span<Complex> values) {
  const std::size_t m = origs.size();
  IPG_DCHECK(util::is_pow2(m) && m >= 2, "butterfly group must be a power of two");
  // Base bit of the digit this group spans: adjacent origins differ by 2^B.
  const auto base_bit = util::exact_log2(origs[1] - origs[0]);
  std::size_t width = util::exact_log2(m);
  for (std::size_t bb = 0; bb < width; ++bb) {
    const std::size_t stride = std::size_t{1} << bb;
    const std::size_t span = stride << 1;
    const std::size_t global_bit = base_bit + bb;
    for (std::size_t blk = 0; blk < m; blk += span) {
      for (std::size_t s = blk; s < blk + stride; ++s) {
        const std::size_t k = origs[s] & ((std::size_t{1} << global_bit) - 1);
        const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(std::size_t{1} << (global_bit + 1));
        const Complex w{std::cos(angle), std::sin(angle)};
        const Complex t = w * values[s + stride];
        const Complex u = values[s];
        values[s] = u + t;
        values[s + stride] = u - t;
      }
    }
  }
}

namespace {

std::vector<Complex> bit_reversed(const std::vector<Complex>& input) {
  const std::size_t n = input.size();
  IPG_CHECK(util::is_pow2(n), "FFT length must be a power of two");
  const unsigned bits = util::exact_log2(n);
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = input[util::bit_reverse(i, bits)];
  }
  return out;
}

}  // namespace

FftRun fft_on_super_ipg(const topology::SuperIpg& ipg,
                        const std::vector<Complex>& input) {
  IPG_CHECK(input.size() == ipg.num_nodes(), "one input point per node");
  SuperIpgMachine<Complex> machine(ipg, bit_reversed(input));
  const AscendPlan plan = build_ascend_plan(ipg);
  run_plan(machine, plan, fft_group_op);
  FftRun run;
  run.output = machine.values_by_origin();
  run.counts = machine.counts();
  return run;
}

FftRun fft_on_hpn(const topology::Hpn& hpn, const topology::Clustering& chips,
                  const std::vector<Complex>& input) {
  IPG_CHECK(input.size() == hpn.num_nodes(), "one input point per node");
  HpnMachine<Complex> machine(hpn, chips, bit_reversed(input));
  run_hpn_pass(machine, hpn, /*descend=*/false, fft_group_op);
  FftRun run;
  run.output = machine.values_by_origin();
  run.counts = machine.counts();
  return run;
}

}  // namespace ipg::algorithms
