#pragma once
// Circular convolution via FFT — §3.2 lists convolution among the
// ascend/descend applications. Three transforms (two forward, one
// inverse via the conjugate trick) plus local pointwise products; the
// communication bill is exactly three Theorem 3.5 ascend passes.

#include <vector>

#include "algorithms/fft.hpp"

namespace ipg::algorithms {

struct ConvolutionRun {
  std::vector<Complex> output;
  StepCounts counts;  ///< accumulated over all three transforms
};

/// O(N^2) reference circular convolution for verification.
inline std::vector<Complex> convolution_reference(const std::vector<Complex>& a,
                                                  const std::vector<Complex>& b) {
  const std::size_t n = a.size();
  std::vector<Complex> out(n, Complex{0, 0});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out[(i + j) % n] += a[i] * b[j];
    }
  }
  return out;
}

inline ConvolutionRun circular_convolution_on_super_ipg(
    const topology::SuperIpg& ipg, const std::vector<Complex>& a,
    const std::vector<Complex>& b) {
  auto accumulate = [](StepCounts& into, const StepCounts& from) {
    into.comm_steps += from.comm_steps;
    into.offchip_steps += from.offchip_steps;
    into.onchip_steps += from.onchip_steps;
    into.offchip_transmissions += from.offchip_transmissions;
    into.onchip_transmissions += from.onchip_transmissions;
    into.compute_steps += from.compute_steps;
  };
  ConvolutionRun run;
  const auto fa = fft_on_super_ipg(ipg, a);
  const auto fb = fft_on_super_ipg(ipg, b);
  accumulate(run.counts, fa.counts);
  accumulate(run.counts, fb.counts);
  const std::size_t n = a.size();
  std::vector<Complex> prod(n);
  for (std::size_t k = 0; k < n; ++k) {
    prod[k] = std::conj(fa.output[k] * fb.output[k]);  // conjugate trick
  }
  const auto inv = fft_on_super_ipg(ipg, prod);
  accumulate(run.counts, inv.counts);
  run.output.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    run.output[i] = std::conj(inv.output[i]) / static_cast<double>(n);
  }
  return run;
}

}  // namespace ipg::algorithms
