#pragma once
// Communication-intensive task analyses: multinode broadcast (MNB), total
// exchange (TE), and random routing (§3.3, Corollaries 3.10/3.11; §4.1).
//
// MNB/TE completion times follow the paper's derivation: the optimal
// hypercube algorithms take Theta(N/log N) and Theta(N) steps under
// all-port communication; a super-IPG emulates them with slowdown
// max(2n, l+1) (Theorem 3.8). Off-chip transmission counts come from exact
// average intercluster distances: a task that routes every (ordered) pair
// once — TE — makes N^2 * avg_intercluster_distance off-chip transmissions,
// which is Theta(N^2) on super-IPGs with l = O(1) against
// Theta(N^2 log N) on hypercubes (§3.3 end).

#include <cstddef>
#include <functional>

#include "topology/graph.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::algorithms {

/// Completion time (communication steps, all-port) of the optimal
/// multinode broadcast on an n-cube: ceil((N-1)/n).
double mnb_steps_hypercube(unsigned n);

/// Completion time of the optimal total exchange on an n-cube:
/// N/2 transmission steps per dimension pair ~ Theta(N) = N * n / (2n)
/// ... the standard bound: TE takes N/2 steps on an n-cube (all-port).
double te_steps_hypercube(unsigned n);

/// Emulated completion times on a super-IPG over an n-dimensional
/// hypercube nucleus: hypercube time x max(2n, l+1) (Theorem 3.8 applied
/// to the (l*n)-cube the super-IPG emulates).
double mnb_steps_super_ipg(const topology::SuperIpg& ipg);
double te_steps_super_ipg(const topology::SuperIpg& ipg);

struct OffchipCounts {
  double avg_intercluster_distance = 0;  ///< expected off-chip hops per packet
  double te_offchip_transmissions = 0;   ///< N^2 * avg
};

/// Exact off-chip accounting for uniformly-random routing / TE on any
/// clustered graph (0-1 BFS; sampled sources for vertex-transitive graphs).
OffchipCounts offchip_counts(const topology::Graph& g,
                             const topology::Clustering& chips,
                             std::size_t sample_sources = 0);

/// Off-chip hops for a fixed permutation pattern (e.g. matrix
/// transposition, §1's task list): the average over sources of the minimum
/// intercluster distance to pattern(src). Exact (one 0-1 BFS per source).
double pattern_offchip_hops(const topology::Graph& g,
                            const topology::Clustering& chips,
                            const std::function<topology::NodeId(topology::NodeId)>& pattern);

}  // namespace ipg::algorithms
