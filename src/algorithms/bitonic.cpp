#include "algorithms/bitonic.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ipg::algorithms {

void bitonic_group_op(std::size_t phase_bit, std::span<const std::size_t> origs,
                      std::span<double> values) {
  IPG_DCHECK(origs.size() == 2, "bitonic sort needs radix-2 dimensions");
  // Ascending iff bit `phase_bit` of the lower address is 0. phase_bit ==
  // SIZE_MAX marks the final phase (always ascending).
  const bool ascending =
      phase_bit == static_cast<std::size_t>(-1) || ((origs[0] >> phase_bit) & 1u) == 0;
  const bool swap = ascending ? values[0] > values[1] : values[0] < values[1];
  if (swap) std::swap(values[0], values[1]);
}

SortRun bitonic_sort_on_super_ipg(const topology::SuperIpg& ipg,
                                  const std::vector<double>& input) {
  IPG_CHECK(input.size() == ipg.num_nodes(), "one key per node");
  SuperIpgMachine<double> machine(ipg, input);
  const std::size_t bits = address_bits(ipg);
  for (std::size_t k = 1; k <= bits; ++k) {
    const std::size_t phase_bit = k == bits ? static_cast<std::size_t>(-1) : k;
    const AscendPlan plan = build_ascend_plan(ipg, /*descend=*/true, 0, k);
    run_plan(machine, plan,
             [phase_bit](std::span<const std::size_t> origs,
                         std::span<double> values) {
               bitonic_group_op(phase_bit, origs, values);
             });
  }
  SortRun run;
  run.output = machine.values_by_origin();
  run.counts = machine.counts();
  return run;
}

SortRun bitonic_sort_on_hpn(const topology::Hpn& hpn,
                            const topology::Clustering& chips,
                            const std::vector<double>& input) {
  IPG_CHECK(input.size() == hpn.num_nodes(), "one key per node");
  HpnMachine<double> machine(hpn, chips, input);
  std::size_t bits = 0;
  for (std::size_t n = 1; n < hpn.num_nodes(); n <<= 1) ++bits;
  for (std::size_t k = 1; k <= bits; ++k) {
    const std::size_t phase_bit = k == bits ? static_cast<std::size_t>(-1) : k;
    run_hpn_pass(machine, hpn, /*descend=*/true,
                 [phase_bit](std::span<const std::size_t> origs,
                             std::span<double> values) {
                   bitonic_group_op(phase_bit, origs, values);
                 },
                 0, k);
  }
  SortRun run;
  run.output = machine.values_by_origin();
  run.counts = machine.counts();
  return run;
}

}  // namespace ipg::algorithms
