#pragma once
// All-gather (the data movement behind the multinode broadcast, §3.3),
// executed as an ascend algorithm: each node starts with one token and
// after one Theorem 3.5 pass holds every node's token. The dimension-
// doubling pattern (Leighton) is exactly an ascend with a set-union
// operation; comm *steps* follow Corollary 3.6, and the recorded per-step
// volume shows the message-size doubling the paper's MNB analysis rests on.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "algorithms/ascend_descend.hpp"

namespace ipg::algorithms {

struct AllGatherRun {
  /// tokens[v] = sorted original indices gathered by node v (all of 0..N-1
  /// on success).
  std::vector<std::vector<std::uint32_t>> tokens;
  StepCounts counts;
  /// items exchanged at each base-dimension step (volume doubling).
  std::vector<std::size_t> volume_per_step;
};

inline AllGatherRun allgather_on_super_ipg(const topology::SuperIpg& ipg) {
  using Tokens = std::vector<std::uint32_t>;
  std::vector<Tokens> init(ipg.num_nodes());
  for (std::uint32_t v = 0; v < ipg.num_nodes(); ++v) init[v] = {v};
  emulation::SuperIpgMachine<Tokens> machine(ipg, std::move(init));

  AllGatherRun run;
  const AscendPlan plan = build_ascend_plan(ipg);
  for (const PlanItem& item : plan.items) {
    if (item.kind == PlanItem::Kind::kSuper) {
      machine.step_generator(item.index);
      continue;
    }
    // Groups run in parallel: the volume tally must be atomic.
    std::atomic<std::size_t> volume{0};
    machine.step_base_dimension(
        item.index, [&volume](std::span<const std::size_t>, std::span<Tokens> vals) {
          Tokens merged;
          std::size_t seen = 0;
          for (const Tokens& t : vals) {
            seen += t.size();
            merged.insert(merged.end(), t.begin(), t.end());
          }
          std::sort(merged.begin(), merged.end());
          for (Tokens& t : vals) t = merged;
          volume.fetch_add(seen, std::memory_order_relaxed);
        });
    run.volume_per_step.push_back(volume.load());
  }
  run.tokens.resize(ipg.num_nodes());
  const auto by_origin = machine.values_by_origin();
  for (std::size_t v = 0; v < by_origin.size(); ++v) run.tokens[v] = by_origin[v];
  run.counts = machine.counts();
  return run;
}

}  // namespace ipg::algorithms
