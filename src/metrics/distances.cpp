#include "metrics/distances.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <mutex>

#include "util/thread_pool.hpp"

namespace ipg::metrics {

namespace {
constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  IPG_CHECK(src < g.num_nodes(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreached);
  std::vector<NodeId> frontier{src}, next;
  dist[src] = 0;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (const NodeId v : frontier) {
      for (const auto& arc : g.arcs_of(v)) {
        if (dist[arc.to] == kUnreached) {
          dist[arc.to] = d;
          next.push_back(arc.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<std::uint32_t> intercluster_distances(const Graph& g,
                                                  const Clustering& c,
                                                  NodeId src) {
  IPG_CHECK(src < g.num_nodes(), "BFS source out of range");
  IPG_CHECK(c.num_nodes() == g.num_nodes(), "clustering does not match graph");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreached);
  // 0-1 BFS. A node can be re-queued after its distance improves; entries
  // carry the distance at push time so stale ones are dropped instead of
  // re-expanding the node (dense on-chip subgraphs re-queue aggressively).
  std::deque<std::pair<NodeId, std::uint32_t>> dq{{src, 0}};
  dist[src] = 0;
  while (!dq.empty()) {
    const auto [v, dv] = dq.front();
    dq.pop_front();
    if (dv != dist[v]) continue;
    for (const auto& arc : g.arcs_of(v)) {
      const std::uint32_t w = c.is_intercluster(v, arc.to) ? 1u : 0u;
      const std::uint32_t nd = dist[v] + w;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        if (w == 0) {
          dq.emplace_front(arc.to, nd);
        } else {
          dq.emplace_back(arc.to, nd);
        }
      }
    }
  }
  return dist;
}

namespace {

template <typename DistFn>
DistanceStats sweep(const Graph& g, std::size_t sample_sources, DistFn per_source) {
  const std::size_t n = g.num_nodes();
  IPG_CHECK(n > 0, "empty graph");
  std::size_t sources = (sample_sources == 0 || sample_sources >= n) ? n : sample_sources;
  const std::size_t stride = n / sources;

  std::atomic<std::size_t> max_d{0};
  std::atomic<std::uint64_t> total{0};
  util::parallel_for_chunked(0, sources, [&](std::size_t lo, std::size_t hi) {
    std::size_t local_max = 0;
    std::uint64_t local_total = 0;
    for (std::size_t s = lo; s < hi; ++s) {
      const auto src = static_cast<NodeId>(s * stride);
      const auto dist = per_source(src);
      for (const std::uint32_t d : dist) {
        IPG_CHECK(d != kUnreached, "graph is disconnected");
        local_max = std::max<std::size_t>(local_max, d);
        local_total += d;
      }
    }
    std::size_t prev = max_d.load(std::memory_order_relaxed);
    while (local_max > prev &&
           !max_d.compare_exchange_weak(prev, local_max, std::memory_order_relaxed)) {
    }
    total.fetch_add(local_total, std::memory_order_relaxed);
  });

  DistanceStats out;
  out.diameter = max_d.load();
  out.average = static_cast<double>(total.load()) /
                (static_cast<double>(sources) * static_cast<double>(n));
  out.sources_used = sources;
  return out;
}

}  // namespace

DistanceStats distance_stats(const Graph& g, std::size_t sample_sources) {
  return sweep(g, sample_sources,
               [&g](NodeId src) { return bfs_distances(g, src); });
}

DistanceStats intercluster_stats(const Graph& g, const Clustering& c,
                                 std::size_t sample_sources) {
  return sweep(g, sample_sources, [&g, &c](NodeId src) {
    return intercluster_distances(g, c, src);
  });
}

double intercluster_diameter_lower_bound(std::size_t num_nodes,
                                         std::size_t cluster_size,
                                         double intercluster_degree) {
  IPG_CHECK(cluster_size >= 1 && num_nodes >= cluster_size, "bad cluster size");
  const double clusters = static_cast<double>(num_nodes) /
                          static_cast<double>(cluster_size);
  const double fanout = static_cast<double>(cluster_size) * intercluster_degree;
  if (fanout <= 1.0) return clusters - 1.0;
  return std::log(clusters) / std::log(fanout);
}

double avg_intercluster_distance_lower_bound(std::size_t num_nodes,
                                             std::size_t cluster_size,
                                             double intercluster_degree) {
  const double clusters = static_cast<double>(num_nodes) /
                          static_cast<double>(cluster_size);
  const double fanout = static_cast<double>(cluster_size) * intercluster_degree;
  if (fanout <= 1.0) return (clusters - 1.0) / 2.0;
  // Fill shells greedily: f^k new clusters at distance k.
  double remaining = clusters - 1.0;
  double shell = fanout;
  double k = 1.0;
  double weighted = 0.0;
  while (remaining > 0) {
    const double take = std::min(shell, remaining);
    weighted += k * take;
    remaining -= take;
    shell *= fanout;
    k += 1.0;
  }
  return weighted / clusters;  // averaged over all pairs incl. self cluster
}

}  // namespace ipg::metrics
