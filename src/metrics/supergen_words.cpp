#include "metrics/supergen_words.hpp"

#include <deque>
#include <numeric>
#include <unordered_map>

#include "util/check.hpp"

namespace ipg::metrics {

namespace {

std::uint64_t pack(const topology::Arrangement& a, std::uint32_t mask) {
  std::uint64_t k = mask;
  for (std::size_t i = 0; i < a.size(); ++i) {
    k |= static_cast<std::uint64_t>(a[i]) << (16 + 4 * i);
  }
  return k;
}

}  // namespace

SuperGenWordStats analyze_supergen_words(const topology::SuperIpg& ipg) {
  const std::size_t l = ipg.levels();
  IPG_CHECK(l <= 8, "word analysis limited to levels <= 8 (state-space size)");
  const std::uint32_t full_mask = (1u << l) - 1u;

  topology::Arrangement id(l);
  std::iota(id.begin(), id.end(), std::uint8_t{0});

  struct State {
    topology::Arrangement arr;
    std::uint32_t mask;
    std::size_t dist;
  };
  std::unordered_map<std::uint64_t, std::size_t> dist;  // key -> distance
  std::deque<State> q;
  const std::uint32_t start_mask = 1u;  // group 0 starts at the front
  q.push_back({id, start_mask, 0});
  dist.emplace(pack(id, start_mask), 0);

  SuperGenWordStats stats;
  bool found_visit_all = false;
  // t_S needs, for every arrangement sigma, the shortest word reaching
  // (sigma, full mask); collect those as BFS completes.
  std::unordered_map<std::uint64_t, std::size_t> full_by_arr;  // packed arr -> dist

  while (!q.empty()) {
    const State cur = std::move(q.front());
    q.pop_front();
    if (cur.mask == full_mask) {
      if (!found_visit_all) {
        stats.t_visit_all = cur.dist;
        found_visit_all = true;
      }
      const std::uint64_t akey = pack(cur.arr, 0);
      full_by_arr.try_emplace(akey, cur.dist);  // BFS order => first is min
    }
    for (std::size_t s = 0; s < ipg.num_super_generators(); ++s) {
      topology::Arrangement nxt = ipg.apply_to_arrangement(cur.arr, s);
      const std::uint32_t nmask = cur.mask | (1u << nxt[0]);
      const std::uint64_t key = pack(nxt, nmask);
      if (dist.contains(key)) continue;
      dist.emplace(key, cur.dist + 1);
      q.push_back({std::move(nxt), nmask, cur.dist + 1});
    }
  }

  stats.states = dist.size();
  IPG_CHECK(found_visit_all, "super-generators cannot bring every group to the front");

  // The reachable arrangements form a group; every reachable arrangement
  // must be reachable with a full mask (keep walking), so take the max.
  std::size_t t_s = 0;
  for (const auto& [arr_key, d] : full_by_arr) {
    (void)arr_key;
    t_s = std::max(t_s, d);
  }
  stats.t_symmetric = t_s;
  return stats;
}

}  // namespace ipg::metrics
