#include "metrics/layout.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::metrics {

using topology::Graph;
using topology::NodeId;

namespace {

/// Balanced min-cut split of @p nodes (graph node ids) into equal halves:
/// random balanced start + greedy pair-swap refinement, best of @p restarts.
std::pair<std::vector<NodeId>, std::vector<NodeId>> split_once(
    const Graph& g, const std::vector<NodeId>& nodes, unsigned restarts,
    util::Xoshiro256& rng) {
  const std::size_t n = nodes.size();
  std::vector<std::int32_t> index_of(g.num_nodes(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    index_of[nodes[i]] = static_cast<std::int32_t>(i);
  }
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& arc : g.arcs_of(nodes[i])) {
      const auto j = index_of[arc.to];
      if (j >= 0) adj[i].push_back(static_cast<std::uint32_t>(j));
    }
  }

  std::vector<std::uint8_t> best_side(n, 0);
  long best_cut = -1;
  std::vector<std::uint32_t> order(n);
  std::vector<std::uint8_t> side(n);
  std::vector<long> gain(n);
  for (unsigned r = 0; r < restarts; ++r) {
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
    for (std::size_t i = 0; i < n; ++i) side[order[i]] = i < n / 2 ? 0 : 1;

    auto compute_gain = [&](std::uint32_t v) {
      long d = 0;
      for (const auto u : adj[v]) d += side[u] != side[v] ? 1 : -1;
      gain[v] = d;
    };
    for (std::uint32_t v = 0; v < n; ++v) compute_gain(v);
    for (int pass = 0; pass < 48; ++pass) {
      long best_gain = 0;
      std::uint32_t bu = 0, bv = 0;
      bool found = false;
      for (std::uint32_t u = 0; u < n; ++u) {
        if (side[u] != 0) continue;
        for (std::uint32_t v = 0; v < n; ++v) {
          if (side[v] != 1) continue;
          long w_uv = 0;
          for (const auto t : adj[u]) {
            if (t == v) ++w_uv;
          }
          const long gg = gain[u] + gain[v] - 2 * w_uv;
          if (gg > best_gain) {
            best_gain = gg;
            bu = u;
            bv = v;
            found = true;
          }
        }
      }
      if (!found) break;
      side[bu] = 1;
      side[bv] = 0;
      compute_gain(bu);
      compute_gain(bv);
      for (const auto t : adj[bu]) compute_gain(t);
      for (const auto t : adj[bv]) compute_gain(t);
    }
    long cut = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      for (const auto u : adj[v]) {
        if (side[u] != side[v]) ++cut;
      }
    }
    cut /= 2;
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best_side = side;
    }
  }

  std::pair<std::vector<NodeId>, std::vector<NodeId>> out;
  for (std::size_t i = 0; i < n; ++i) {
    (best_side[i] == 0 ? out.first : out.second).push_back(nodes[i]);
  }
  return out;
}

/// Places @p nodes (|nodes| a power of two) in the half-open rectangle,
/// splitting the longer side exactly in half at every level.
void place(const Graph& g, const std::vector<NodeId>& nodes, std::uint32_t x0,
           std::uint32_t y0, std::uint32_t x1, std::uint32_t y1,
           unsigned restarts, util::Xoshiro256& rng, GridLayout& layout) {
  IPG_DCHECK(nodes.size() == static_cast<std::size_t>(x1 - x0) * (y1 - y0),
             "region size must equal node count");
  if (nodes.size() == 1) {
    layout.position[nodes[0]] = {x0, y0};
    return;
  }
  auto [left, right] = split_once(g, nodes, restarts, rng);
  if (x1 - x0 >= y1 - y0) {
    const std::uint32_t mid = x0 + (x1 - x0) / 2;
    place(g, left, x0, y0, mid, y1, restarts, rng, layout);
    place(g, right, mid, y0, x1, y1, restarts, rng, layout);
  } else {
    const std::uint32_t mid = y0 + (y1 - y0) / 2;
    place(g, left, x0, y0, x1, mid, restarts, rng, layout);
    place(g, right, x0, mid, x1, y1, restarts, rng, layout);
  }
}

}  // namespace

GridLayout recursive_bisection_layout(const Graph& g, unsigned restarts,
                                      std::uint64_t seed) {
  IPG_CHECK(g.num_nodes() >= 1 && g.num_nodes() <= 4096,
            "layout estimator supports 1..4096 nodes");
  IPG_CHECK(util::is_pow2(g.num_nodes()),
            "layout estimator requires a power-of-two node count");
  const auto bits = util::exact_log2(g.num_nodes());
  GridLayout layout;
  layout.width = std::uint32_t{1} << ((bits + 1) / 2);
  layout.height = std::uint32_t{1} << (bits / 2);
  layout.position.resize(g.num_nodes());

  std::vector<NodeId> all(g.num_nodes());
  std::iota(all.begin(), all.end(), NodeId{0});
  util::Xoshiro256 rng(seed);
  place(g, all, 0, 0, layout.width, layout.height, restarts, rng, layout);

  double total = 0, max_len = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (arc.to <= v) continue;  // count undirected wires once
      const auto [ax, ay] = layout.position[v];
      const auto [bx, by] = layout.position[arc.to];
      const double len = std::abs(static_cast<double>(ax) - bx) +
                         std::abs(static_cast<double>(ay) - by);
      total += len;
      max_len = std::max(max_len, len);
    }
  }
  layout.total_wire_length = total;
  layout.max_wire_length = max_len;
  layout.avg_wire_length =
      g.num_edges() == 0 ? 0 : total / static_cast<double>(g.num_edges());
  return layout;
}

double thompson_area_lower_bound(double bisection_width) {
  return bisection_width * bisection_width / 4.0;
}

}  // namespace ipg::metrics
