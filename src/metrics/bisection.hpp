#pragma once
// Bisection width and bisection bandwidth (§4.2).
//
// Exact bisection is NP-hard; the paper relies on closed forms per family.
// We provide (a) a randomized Kernighan–Lin-style heuristic that yields an
// upper bound on the bisection width — used to validate closed forms on
// small instances — and (b) weighted cluster-respecting bisections for the
// MCMP setting where on-chip links are never cut and each off-chip link
// carries a bandwidth from the chip capacity model.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::metrics {

using topology::Clustering;
using topology::Graph;
using topology::NodeId;

struct BisectionResult {
  /// Total weight of cut links (= link count when weights are 1).
  double cut = 0;
  /// side[v] in {0,1}; sides differ in size by at most one node.
  std::vector<std::uint8_t> side;
};

/// Heuristic upper bound on the bisection width: random balanced starts +
/// greedy balanced pair-swap refinement, best of @p restarts.
BisectionResult bisection_width_heuristic(const Graph& g, unsigned restarts = 8,
                                          std::uint64_t seed = 0x5eed);

/// Cluster-respecting weighted bisection: whole clusters are assigned to
/// sides (the paper never cuts on-chip links, §4.2), and each cut off-chip
/// link contributes its weight. @p offchip_weight[e-index] must follow arc
/// order; use uniform_offchip_weights() for the unit-chip-capacity model.
/// Requires an even number (at least two) of equal-size clusters.
BisectionResult cluster_bisection_heuristic(const Graph& g, const Clustering& c,
                                            const std::vector<double>& arc_weight,
                                            unsigned restarts = 8,
                                            std::uint64_t seed = 0x5eed);

/// Per-arc weights under the unit chip capacity model: every chip has total
/// off-chip bandwidth cluster_size * w_node, spread uniformly over the
/// off-chip links touching it; a link's bandwidth is the minimum of its two
/// endpoints' allocations. On-chip arcs get weight 0 (never cut) —
/// equivalently "infinitely wide", per the paper's assumption. With more
/// than one cluster, every cluster must touch at least one off-chip link
/// (a fully isolated chip has no defined off-chip link bandwidth).
std::vector<double> unit_chip_arc_weights(const Graph& g, const Clustering& c,
                                          double w_node);

/// Per-arc weights of 1 for every arc (unit link capacity model).
std::vector<double> unit_link_arc_weights(const Graph& g);

/// Unit node capacity model (§4.2): every node has total bandwidth w_node
/// split uniformly over its incident links; a link gets the min of its two
/// endpoints' per-link shares. All links count (on-chip ones too).
std::vector<double> unit_node_arc_weights(const Graph& g, double w_node);

/// Unit bisection capacity model (Dally, §4.2): the whole network has a
/// fixed bisection budget; every network's bisection bandwidth is the same
/// by construction. Returns per-arc weights scaled so the given bisection
/// width yields exactly @p budget.
std::vector<double> unit_bisection_arc_weights(const Graph& g,
                                               double bisection_width,
                                               double budget);

}  // namespace ipg::metrics
