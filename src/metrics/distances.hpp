#pragma once
// Distance metrics: diameter, average distance, and their intercluster
// counterparts (§4.2).
//
// The intercluster distance between two nodes is the minimum number of
// *off-chip* link traversals on any path between them; it is computed with
// 0-1 BFS (on-chip edges weigh 0, off-chip edges weigh 1). Averages follow
// the paper's convention of including the node-to-itself pair (§4.2 note
// after Theorem 4.7). All-pairs sweeps are parallelized over sources and
// can be sampled for very large graphs.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::metrics {

using topology::Clustering;
using topology::Graph;
using topology::NodeId;

/// Unit-weight BFS distances from @p src.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

/// 0-1 BFS: number of intercluster hops needed to reach each node.
std::vector<std::uint32_t> intercluster_distances(const Graph& g,
                                                  const Clustering& c,
                                                  NodeId src);

struct DistanceStats {
  std::size_t diameter = 0;
  double average = 0;  ///< over ordered pairs, self pairs included
  std::size_t sources_used = 0;
};

/// Diameter and average distance. If @p sample_sources is nonzero and less
/// than the node count, that many evenly spaced sources are used (exact for
/// vertex-transitive graphs, an estimate otherwise).
DistanceStats distance_stats(const Graph& g, std::size_t sample_sources = 0);

/// Intercluster diameter and average intercluster distance.
DistanceStats intercluster_stats(const Graph& g, const Clustering& c,
                                 std::size_t sample_sources = 0);

/// Degree-based lower bound on the intercluster diameter of any network
/// with N/M clusters and intercluster degree d: a cluster can reach at most
/// (Md)^k clusters in k intercluster hops, so k >= log_{Md'}(N/M) with
/// d' = per-cluster fanout Md. (Used by the Theorem 4.5/4.6 bench to show
/// super-IPGs are within a small constant of optimal.)
double intercluster_diameter_lower_bound(std::size_t num_nodes,
                                         std::size_t cluster_size,
                                         double intercluster_degree);

/// Matching lower bound on the *average* intercluster distance: with
/// per-cluster fanout f = M * d, at most f^k clusters lie within k hops, so
/// the average over all clusters is at least sum_k k * (min(f^k, rest)).
double avg_intercluster_distance_lower_bound(std::size_t num_nodes,
                                             std::size_t cluster_size,
                                             double intercluster_degree);

}  // namespace ipg::metrics
