#pragma once
// Composite cost metrics (§4.2 end): the paper proposes the product of
// intercluster degree and diameter (ID-cost), of intercluster degree and
// intercluster diameter (II-cost), and the analogous products with average
// distances, as single-number topology comparisons for MCMPs.

#include <cstddef>

#include "topology/graph.hpp"

namespace ipg::metrics {

struct NetworkCosts {
  double intercluster_degree = 0;       ///< avg off-chip links per node
  std::size_t diameter = 0;
  double avg_distance = 0;
  std::size_t intercluster_diameter = 0;
  double avg_intercluster_distance = 0;
  double id_cost = 0;   ///< intercluster degree x diameter
  double ii_cost = 0;   ///< intercluster degree x intercluster diameter
  double ia_cost = 0;   ///< intercluster degree x average distance
  double iia_cost = 0;  ///< intercluster degree x average intercluster distance
};

/// Computes all §4.2 cost metrics for a clustered network. Sampled sources
/// (exact on vertex-transitive graphs) keep large instances cheap.
NetworkCosts compute_costs(const topology::Graph& g,
                           const topology::Clustering& chips,
                           std::size_t sample_sources = 0);

}  // namespace ipg::metrics
