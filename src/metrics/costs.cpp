#include "metrics/costs.hpp"

#include "metrics/distances.hpp"

namespace ipg::metrics {

NetworkCosts compute_costs(const topology::Graph& g,
                           const topology::Clustering& chips,
                           std::size_t sample_sources) {
  NetworkCosts out;
  const auto census = topology::census_links(g, chips);
  out.intercluster_degree = census.avg_offchip_per_node;
  const auto d = distance_stats(g, sample_sources);
  out.diameter = d.diameter;
  out.avg_distance = d.average;
  const auto ic = intercluster_stats(g, chips, sample_sources);
  out.intercluster_diameter = ic.diameter;
  out.avg_intercluster_distance = ic.average;
  out.id_cost = out.intercluster_degree * static_cast<double>(out.diameter);
  out.ii_cost =
      out.intercluster_degree * static_cast<double>(out.intercluster_diameter);
  out.ia_cost = out.intercluster_degree * out.avg_distance;
  out.iia_cost = out.intercluster_degree * out.avg_intercluster_distance;
  return out;
}

}  // namespace ipg::metrics
