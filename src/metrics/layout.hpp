#pragma once
// VLSI layout estimation by recursive bisection — the "recursive grid
// layout scheme" the authors use in [29]/[33] to show that super-IPGs lay
// out in smaller area than similar-size hypercubes (§5).
//
// Nodes are placed on a sqrt(N) x sqrt(N) grid by recursively bisecting
// the node set (minimizing cut links) and splitting the placement region
// along its longer side. Reported figures: total and maximum Manhattan
// wire length, the wire-area estimate sum(wire lengths), and Thompson's
// classic lower bound area >= (bisection width)^2 / 4 for comparison.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::metrics {

struct GridLayout {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> position;  ///< per node
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  double total_wire_length = 0;  ///< sum of Manhattan lengths over edges
  double max_wire_length = 0;
  double avg_wire_length = 0;
};

/// Places @p g by recursive min-cut bisection. Deterministic for a seed.
/// Intended for graphs up to a few thousand nodes.
GridLayout recursive_bisection_layout(const topology::Graph& g,
                                      unsigned restarts = 4,
                                      std::uint64_t seed = 0x1a9);

/// Thompson's grid-area lower bound: area >= W_B^2 / 4.
double thompson_area_lower_bound(double bisection_width);

}  // namespace ipg::metrics
