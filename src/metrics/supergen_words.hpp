#pragma once
// Super-generator word analysis (Theorems 4.1 and 4.3).
//
// The intercluster diameter of a super-IPG whose clusters are single nuclei
// equals t, the minimum number of super-generator applications after which
// every super-symbol has appeared at the leftmost position at least once
// (Theorem 4.1). For the symmetric variants the word must additionally be
// able to end at *any* prescribed arrangement of the super-symbols, giving
// t_S (Theorem 4.3). Both are computed exactly by BFS over
// (arrangement, visited-groups) states.

#include <cstddef>

#include "topology/super_ipg.hpp"

namespace ipg::metrics {

struct SuperGenWordStats {
  /// Theorem 4.1's t — intercluster diameter of the plain super-IPG.
  std::size_t t_visit_all = 0;
  /// Theorem 4.3's t_S — intercluster diameter of the symmetric variant.
  std::size_t t_symmetric = 0;
  /// Number of (arrangement, mask) states explored, for diagnostics.
  std::size_t states = 0;
};

/// Exact t and t_S for the super-generator set of @p ipg. Feasible for
/// levels <= 8 (state space l! * 2^l). Throws for larger instances.
SuperGenWordStats analyze_supergen_words(const topology::SuperIpg& ipg);

}  // namespace ipg::metrics
