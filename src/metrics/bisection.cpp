#include "metrics/bisection.hpp"

#include <algorithm>
#include <deque>
#include <variant>
#include <numeric>

#include "util/rng.hpp"

namespace ipg::metrics {

namespace {

struct WeightedItemGraph {
  // adjacency with summed weights between items (nodes or clusters)
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj;
};

struct RandomSplit {};
struct BfsBall {};
struct IndexSplit {};
using StartKind = std::variant<RandomSplit, BfsBall, IndexSplit>;

/// Greedy balanced-partition local search from a balanced start (random
/// shuffle, BFS-grown ball, or index split), then repeated best-pair swaps
/// until no swap improves the cut. Returns side bits and the cut weight.
/// Deterministic for a given seed.
std::pair<double, std::vector<std::uint8_t>> search_once(
    const WeightedItemGraph& wg, util::Xoshiro256& rng, StartKind start_kind) {
  const std::size_t n = wg.adj.size();
  std::vector<std::uint8_t> side(n, 0);
  if (std::holds_alternative<IndexSplit>(start_kind)) {
    for (std::size_t i = 0; i < n; ++i) side[i] = i < (n + 1) / 2 ? 0 : 1;
  } else if (std::holds_alternative<BfsBall>(start_kind)) {
    // Grow side 0 as a BFS ball from a random seed: locality-preserving
    // starts reach far better local optima on structured networks.
    std::fill(side.begin(), side.end(), 1);
    const auto start = static_cast<std::uint32_t>(rng.below(n));
    std::deque<std::uint32_t> q{start};
    side[start] = 0;
    std::size_t taken = 1;
    const std::size_t want = (n + 1) / 2;
    while (taken < want && !q.empty()) {
      const auto v = q.front();
      q.pop_front();
      for (const auto& [u, w] : wg.adj[v]) {
        (void)w;
        if (taken >= want) break;
        if (side[u] == 1) {
          side[u] = 0;
          ++taken;
          q.push_back(u);
        }
      }
    }
    // Disconnected remainder: fill arbitrarily to balance.
    for (std::uint32_t v = 0; taken < want && v < n; ++v) {
      if (side[v] == 1) {
        side[v] = 0;
        ++taken;
      }
    }
  } else {
    // Random balanced assignment via shuffle.
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (std::size_t i = 0; i < n; ++i) side[order[i]] = i < (n + 1) / 2 ? 0 : 1;
  }

  // D[v] = external weight - internal weight; swapping u (side 0) with v
  // (side 1) changes the cut by -(D[u] + D[v] - 2 w(u,v)).
  std::vector<double> d(n, 0);
  auto recompute_d = [&](std::uint32_t v) {
    double val = 0;
    for (const auto& [u, w] : wg.adj[v]) val += side[u] != side[v] ? w : -w;
    d[v] = val;
  };
  for (std::uint32_t v = 0; v < n; ++v) recompute_d(v);

  auto cut_weight = [&] {
    double cut = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      for (const auto& [u, w] : wg.adj[v]) {
        if (side[u] != side[v]) cut += w;
      }
    }
    return cut / 2;
  };

  // Pass-based best-swap refinement, capped to avoid pathological runtimes.
  const std::size_t max_passes = 64;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    double best_gain = 1e-12;
    std::uint32_t best_u = 0, best_v = 0;
    bool found = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (side[u] != 0) continue;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (side[v] != 1) continue;
        double w_uv = 0;
        for (const auto& [t, w] : wg.adj[u]) {
          if (t == v) w_uv += w;
        }
        const double gain = d[u] + d[v] - 2 * w_uv;
        if (gain > best_gain) {
          best_gain = gain;
          best_u = u;
          best_v = v;
          found = true;
        }
      }
    }
    if (!found) break;
    side[best_u] = 1;
    side[best_v] = 0;
    // Update D for all neighbors (and the swapped pair).
    recompute_d(best_u);
    recompute_d(best_v);
    for (const auto& [t, w] : wg.adj[best_u]) {
      (void)w;
      recompute_d(t);
    }
    for (const auto& [t, w] : wg.adj[best_v]) {
      (void)w;
      recompute_d(t);
    }
  }
  return {cut_weight(), std::move(side)};
}

BisectionResult best_of(const WeightedItemGraph& wg, unsigned restarts,
                        std::uint64_t seed) {
  BisectionResult best;
  best.cut = -1;
  auto consider = [&best](std::pair<double, std::vector<std::uint8_t>> r) {
    if (best.cut < 0 || r.first < best.cut) {
      best.cut = r.first;
      best.side = std::move(r.second);
    }
  };
  // One deterministic "index split" start: with the library's structured
  // node numberings (hypercube bits, torus digits, super-IPG tuples) the
  // i < n/2 half is the natural dimension/strip/chip-group cut and the
  // local search polishes it to the optimum.
  {
    util::Xoshiro256 rng(seed);
    consider(search_once(wg, rng, IndexSplit{}));
  }
  for (unsigned r = 0; r < restarts; ++r) {
    util::Xoshiro256 rng(seed + r + 1);
    if (r % 2 == 0) {
      consider(search_once(wg, rng, BfsBall{}));
    } else {
      consider(search_once(wg, rng, RandomSplit{}));
    }
  }
  return best;
}

}  // namespace

BisectionResult bisection_width_heuristic(const Graph& g, unsigned restarts,
                                          std::uint64_t seed) {
  WeightedItemGraph wg;
  wg.adj.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      wg.adj[v].emplace_back(arc.to, 1.0);
    }
  }
  // search_once already counts each undirected link once.
  return best_of(wg, restarts, seed);
}

BisectionResult cluster_bisection_heuristic(const Graph& g, const Clustering& c,
                                            const std::vector<double>& arc_weight,
                                            unsigned restarts,
                                            std::uint64_t seed) {
  IPG_CHECK(c.num_nodes() == g.num_nodes(), "clustering does not match graph");
  IPG_CHECK(arc_weight.size() == g.num_arcs(), "need one weight per arc");
  IPG_CHECK(c.num_clusters() >= 2, "cluster bisection needs at least two clusters");
  IPG_CHECK(c.num_clusters() % 2 == 0, "cluster bisection needs an even cluster count");
  const auto sizes = c.cluster_sizes();
  IPG_CHECK(std::adjacent_find(sizes.begin(), sizes.end(),
                               std::not_equal_to<>()) == sizes.end(),
            "cluster bisection requires equal-size clusters");

  // Contract to a weighted cluster graph.
  WeightedItemGraph wg;
  wg.adj.resize(c.num_clusters());
  std::size_t arc_index = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (c.is_intercluster(v, arc.to)) {
        wg.adj[c.cluster_of(v)].emplace_back(c.cluster_of(arc.to),
                                             arc_weight[arc_index]);
      }
      ++arc_index;
    }
  }

  BisectionResult contracted = best_of(wg, restarts, seed);
  // Expand sides back to nodes.
  BisectionResult res;
  res.cut = contracted.cut;
  res.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    res.side[v] = contracted.side[c.cluster_of(v)];
  }
  return res;
}

std::vector<double> unit_chip_arc_weights(const Graph& g, const Clustering& c,
                                          double w_node) {
  IPG_CHECK(c.num_nodes() == g.num_nodes(), "clustering does not match graph");
  // Off-chip links touching each cluster (arcs leaving it).
  std::vector<std::size_t> offchip_links(c.num_clusters(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (c.is_intercluster(v, arc.to)) ++offchip_links[c.cluster_of(v)];
    }
  }
  // Unit chip capacity divides each cluster's budget over its off-chip
  // links; a cluster no off-chip link touches has no defined link
  // bandwidth, so reject it up front rather than weighting a cut that can
  // never include it.
  if (c.num_clusters() > 1) {
    for (std::size_t cl = 0; cl < c.num_clusters(); ++cl) {
      IPG_CHECK(offchip_links[cl] > 0,
                "unit chip weights need every cluster to touch an off-chip link");
    }
  }
  const auto sizes = c.cluster_sizes();
  std::vector<double> weights;
  weights.reserve(g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (!c.is_intercluster(v, arc.to)) {
        weights.push_back(0.0);
        continue;
      }
      const auto ca = c.cluster_of(v);
      const auto cb = c.cluster_of(arc.to);
      const double band_a = static_cast<double>(sizes[ca]) * w_node /
                            static_cast<double>(offchip_links[ca]);
      const double band_b = static_cast<double>(sizes[cb]) * w_node /
                            static_cast<double>(offchip_links[cb]);
      weights.push_back(std::min(band_a, band_b));
    }
  }
  return weights;
}

std::vector<double> unit_link_arc_weights(const Graph& g) {
  return std::vector<double>(g.num_arcs(), 1.0);
}

std::vector<double> unit_node_arc_weights(const Graph& g, double w_node) {
  std::vector<double> weights;
  weights.reserve(g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double share_v = w_node / static_cast<double>(g.degree(v));
    for (const auto& arc : g.arcs_of(v)) {
      const double share_u = w_node / static_cast<double>(g.degree(arc.to));
      weights.push_back(std::min(share_v, share_u));
    }
  }
  return weights;
}

std::vector<double> unit_bisection_arc_weights(const Graph& g,
                                               double bisection_width,
                                               double budget) {
  IPG_CHECK(bisection_width > 0 && budget > 0, "bisection budget must be positive");
  return std::vector<double>(g.num_arcs(), budget / bisection_width);
}

}  // namespace ipg::metrics
