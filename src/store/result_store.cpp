#include "store/result_store.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <system_error>

#include "store/fingerprint.hpp"
#include "util/check.hpp"

namespace ipg::store {
namespace {

constexpr char kMagic[4] = {'I', 'P', 'G', 'R'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kExtension = ".ipgr";

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_f64(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Reads little-endian u64 at @p off; false on out-of-range.
bool read_u64(std::string_view bytes, std::size_t& off, std::uint64_t& v) {
  if (off + 8 > bytes.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  off += 8;
  return true;
}

bool read_f64(std::string_view bytes, std::size_t& off, double& v) {
  std::uint64_t bits = 0;
  if (!read_u64(bytes, off, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

/// SimResult fields in declaration order. Every field is 8 bytes (size_t
/// widened to u64, doubles as bit patterns), so a hit restores the result
/// bit-identically. Adding a field to SimResult requires bumping
/// kSchemaVersion (old keys must stop matching) — parse_record also
/// rejects payloads of the wrong length.
void serialize_result(std::string& out, const sim::SimResult& r) {
  append_u64(out, r.packets_delivered);
  append_f64(out, r.makespan_cycles);
  append_f64(out, r.avg_latency_cycles);
  append_f64(out, r.p50_latency_cycles);
  append_f64(out, r.p99_latency_cycles);
  append_f64(out, r.max_latency_cycles);
  append_f64(out, r.avg_hops);
  append_f64(out, r.avg_offchip_hops);
  append_f64(out, r.throughput_flits_per_node_cycle);
  append_f64(out, r.max_offchip_utilization);
  append_f64(out, r.avg_offchip_utilization);
  append_u64(out, r.packets_injected);
  append_u64(out, r.packets_dropped);
  append_u64(out, r.packets_retransmitted);
  append_u64(out, r.packets_in_flight);
  append_u64(out, r.reroute_hops);
  append_f64(out, r.delivered_fraction);
}

bool parse_result(std::string_view bytes, std::size_t& off, sim::SimResult& r) {
  std::uint64_t u = 0;
  if (!read_u64(bytes, off, u)) return false;
  r.packets_delivered = static_cast<std::size_t>(u);
  if (!read_f64(bytes, off, r.makespan_cycles)) return false;
  if (!read_f64(bytes, off, r.avg_latency_cycles)) return false;
  if (!read_f64(bytes, off, r.p50_latency_cycles)) return false;
  if (!read_f64(bytes, off, r.p99_latency_cycles)) return false;
  if (!read_f64(bytes, off, r.max_latency_cycles)) return false;
  if (!read_f64(bytes, off, r.avg_hops)) return false;
  if (!read_f64(bytes, off, r.avg_offchip_hops)) return false;
  if (!read_f64(bytes, off, r.throughput_flits_per_node_cycle)) return false;
  if (!read_f64(bytes, off, r.max_offchip_utilization)) return false;
  if (!read_f64(bytes, off, r.avg_offchip_utilization)) return false;
  if (!read_u64(bytes, off, u)) return false;
  r.packets_injected = static_cast<std::size_t>(u);
  if (!read_u64(bytes, off, u)) return false;
  r.packets_dropped = static_cast<std::size_t>(u);
  if (!read_u64(bytes, off, u)) return false;
  r.packets_retransmitted = static_cast<std::size_t>(u);
  if (!read_u64(bytes, off, u)) return false;
  r.packets_in_flight = static_cast<std::size_t>(u);
  if (!read_u64(bytes, off, u)) return false;
  r.reroute_hops = static_cast<std::size_t>(u);
  if (!read_f64(bytes, off, r.delivered_fraction)) return false;
  return true;
}

std::uint64_t payload_checksum(std::string_view payload) {
  const Hash128 h = hash128(payload);
  return h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull);
}

}  // namespace

std::string serialize_record(const std::string& key, const Record& record) {
  std::string payload;
  serialize_result(payload, record.result);
  append_u64(payload, record.extras.size());
  for (const auto& [name, value] : record.extras) {
    append_u64(payload, name.size());
    payload.append(name);
    append_f64(payload, value);
  }

  std::string bytes;
  bytes.reserve(4 + 4 + 8 + key.size() + 8 + 8 + payload.size());
  bytes.append(kMagic, sizeof kMagic);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((kFormatVersion >> (8 * i)) & 0xff));
  }
  append_u64(bytes, key.size());
  bytes.append(key);
  append_u64(bytes, payload.size());
  append_u64(bytes, payload_checksum(payload));
  bytes.append(payload);
  return bytes;
}

std::optional<Record> parse_record(const std::string& key,
                                   std::string_view bytes) {
  std::size_t off = 0;
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[4 + static_cast<std::size_t>(i)]))
               << (8 * i);
  }
  if (version != kFormatVersion) return std::nullopt;
  off = 8;

  std::uint64_t key_len = 0;
  if (!read_u64(bytes, off, key_len)) return std::nullopt;
  if (key_len != key.size() || off + key_len > bytes.size()) return std::nullopt;
  // The embedded key must match exactly: a hash collision (or an entry file
  // renamed/copied to the wrong address) must read as a miss, never as a
  // wrong result.
  if (std::memcmp(bytes.data() + off, key.data(), key.size()) != 0) {
    return std::nullopt;
  }
  off += key_len;

  std::uint64_t payload_len = 0, checksum = 0;
  if (!read_u64(bytes, off, payload_len)) return std::nullopt;
  if (!read_u64(bytes, off, checksum)) return std::nullopt;
  if (off + payload_len != bytes.size()) return std::nullopt;  // truncated/padded
  const std::string_view payload = bytes.substr(off, payload_len);
  if (payload_checksum(payload) != checksum) return std::nullopt;

  Record record;
  std::size_t poff = 0;
  if (!parse_result(payload, poff, record.result)) return std::nullopt;
  std::uint64_t num_extras = 0;
  if (!read_u64(payload, poff, num_extras)) return std::nullopt;
  if (num_extras > payload.size()) return std::nullopt;  // length bomb guard
  record.extras.reserve(static_cast<std::size_t>(num_extras));
  for (std::uint64_t i = 0; i < num_extras; ++i) {
    std::uint64_t name_len = 0;
    if (!read_u64(payload, poff, name_len)) return std::nullopt;
    if (poff + name_len > payload.size()) return std::nullopt;
    std::string name(payload.substr(poff, name_len));
    poff += name_len;
    double value = 0;
    if (!read_f64(payload, poff, value)) return std::nullopt;
    record.extras.emplace_back(std::move(name), value);
  }
  if (poff != payload.size()) return std::nullopt;  // trailing garbage
  return record;
}

ResultStore::ResultStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path ResultStore::path_of(const std::string& key) const {
  const std::string hex = hash128(key).hex();
  return root_ / hex.substr(0, 2) / (hex + kExtension);
}

std::optional<Record> ResultStore::load(const std::string& key) {
  const std::filesystem::path path = path_of(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      if (log_ != nullptr) *log_ << "[store] unreadable entry " << path << "\n";
      return std::nullopt;
    }
    bytes = std::move(buf).str();
  }
  std::optional<Record> record = parse_record(key, bytes);
  if (!record.has_value()) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (log_ != nullptr) {
      *log_ << "[store] corrupt entry " << path << " (" << bytes.size()
            << " bytes) — recomputing\n";
    }
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return record;
}

void ResultStore::put(const std::string& key, const Record& record) {
  const std::filesystem::path path = path_of(key);
  const std::string bytes = serialize_record(key, record);

  std::error_code ec;  // best-effort: a read-only cache dir degrades to a
                       // pass-through cache, it must not kill the sweep
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) return;

  // Unique temp name per (process, writer): rename() is atomic within the
  // directory, so readers see either nothing or a complete record.
  const std::uint64_t tag = tmp_counter_.fetch_add(1, std::memory_order_relaxed);
  std::filesystem::path tmp = path;
  tmp += ".tmp" + std::to_string(tag);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
}

bool ResultStore::lookup(const std::string& key, sim::SimResult& out) {
  std::optional<Record> record = load(key);
  if (!record.has_value()) return false;
  out = record->result;
  return true;
}

void ResultStore::store(const std::string& key, const sim::SimResult& result) {
  put(key, Record{result, {}});
}

std::uint64_t ResultStore::invalidate() {
  std::uint64_t removed = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(root_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != kExtension) continue;
    std::error_code rm;
    if (std::filesystem::remove(it->path(), rm) && !rm) ++removed;
  }
  return removed;
}

std::uint64_t ResultStore::entry_count() const {
  std::uint64_t count = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(root_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == kExtension) {
      ++count;
    }
  }
  return count;
}

StoreStats ResultStore::stats() const {
  StoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ipg::store
