#pragma once
// Content-addressed on-disk store of simulation results
// (docs/DESIGN_SPACE.md).
//
// Maps canonical cache keys (store/fingerprint.hpp) to checksummed binary
// records holding a SimResult plus optional named derived metrics. Layout:
//
//   <root>/ab/abcdef...0123.ipgr
//
// — one file per record, sharded into 256 subdirectories by the first hash
// byte so huge sweeps never pile a million entries into one directory.
//
// Durability and concurrency contract:
//   - Writes are atomic: the record is written to a unique temp file in the
//     shard directory and rename()d over the final path. Readers never see
//     a half-written record; concurrent writers of the same key race
//     benignly (both write identical bytes — keys are content addresses).
//   - Loads are corruption-tolerant: a missing, truncated, bit-flipped,
//     zeroed, or wrong-key file is a *miss* (counted in stats().corrupt
//     when the file existed but failed validation), never an exception and
//     never a stale result. The record embeds its full canonical key and a
//     payload checksum; both must match.
//   - All methods are thread-safe; sweep worker threads share one store.
//
// The store implements sim::ResultCache, so it plugs straight into
// sim::run_sweep as the lookup-before-compute / persist-after-compute hook.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hpp"

namespace ipg::store {

struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< absent entries (no file)
  std::uint64_t corrupt = 0;   ///< present but failed validation (also a miss)
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;     ///< payload bytes of successful loads
  std::uint64_t bytes_written = 0;  ///< full record bytes written
  std::uint64_t lookups() const noexcept { return hits + misses + corrupt; }
};

/// One stored record: the simulation result plus optional derived metrics
/// (name -> value), e.g. the static design-space metrics ipg_design caches
/// alongside its simulations.
struct Record {
  sim::SimResult result;
  std::vector<std::pair<std::string, double>> extras;
};

class ResultStore final : public sim::ResultCache {
 public:
  /// Opens (creating if needed) the store rooted at @p root. Throws only
  /// when the root cannot be created at all.
  explicit ResultStore(std::filesystem::path root);

  // sim::ResultCache — the sweep-driver hook points.
  bool lookup(const std::string& key, sim::SimResult& out) override;
  void store(const std::string& key, const sim::SimResult& result) override;

  /// Full-record variants (extras included).
  std::optional<Record> load(const std::string& key);
  void put(const std::string& key, const Record& record);

  /// Deletes every record under the root; returns how many were removed.
  /// Safe against concurrent readers (they just miss afterwards). Only
  /// *.ipgr files are touched — a mistyped --cache-dir pointing at a source
  /// tree must never eat it.
  std::uint64_t invalidate();

  /// Records currently on disk (counts *.ipgr files; walks the tree).
  std::uint64_t entry_count() const;

  StoreStats stats() const;

  /// Where a key's record lives (exposed for the corruption drills).
  std::filesystem::path path_of(const std::string& key) const;

  const std::filesystem::path& root() const noexcept { return root_; }

  /// Optional warning sink: corrupt entries are reported here (one line
  /// each) before being treated as misses. Null disables logging.
  void set_log(std::ostream* log) noexcept { log_ = log; }

 private:
  std::filesystem::path root_;
  std::ostream* log_ = nullptr;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

// --- record (de)serialization, exposed for tests ---------------------------

/// Serializes @p record (with its full canonical @p key) into the on-disk
/// byte format: magic, format version, key, checksummed payload.
std::string serialize_record(const std::string& key, const Record& record);

/// Parses @p bytes; returns nullopt unless the magic, version, embedded
/// key (must equal @p key), lengths, and checksum all validate. Never
/// throws on malformed input.
std::optional<Record> parse_record(const std::string& key,
                                   std::string_view bytes);

}  // namespace ipg::store
