#pragma once
// Canonical, versioned fingerprints for simulation work units
// (docs/DESIGN_SPACE.md).
//
// A cache key must identify *everything* a SimResult is a function of:
// the network (graph structure, dimension labels, chip partition, per-link
// bandwidths), the workload (which run_* entry point, with which
// parameters), the SimConfig (engine, switching, fault plan, retry policy,
// ...), and the seed. The engines' bit-identity guarantee makes such a key
// sound: two runs with equal fingerprints produce bit-identical SimResults,
// so a cache hit is indistinguishable from a recompute.
//
// Keys have two layers:
//   - a human-readable canonical string ("schema=...|net=...|workload=...|
//     cfg=..."), built field by field through Fingerprint. Doubles are
//     encoded as hex bit patterns, never decimal — two configs differing in
//     the last ulp must key differently.
//   - a 128-bit content hash of that string, used for on-disk addressing.
// The store writes the canonical string into every record and compares it
// on load, so even a 128-bit hash collision degrades to a miss, never to a
// wrong result.
//
// Versioning: kSchemaVersion salts every key. Bump it whenever the meaning
// of a SimResult field, the canonical encoding, or engine semantics change
// — old cache entries then simply never match again (no migration code).

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/simulator.hpp"

namespace ipg::sim {
class SimNetwork;
}

namespace ipg::store {

/// Bump on any change to key encoding, record layout, or engine semantics
/// that could map an old key to a differently-valued result.
inline constexpr std::uint32_t kSchemaVersion = 1;

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  /// 32 lowercase hex chars, hi first.
  std::string hex() const;
  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// 128-bit content hash of a byte string (two independently seeded 64-bit
/// mix streams; stable across platforms and runs — on-disk addresses must
/// never depend on process state).
Hash128 hash128(std::string_view bytes);

/// Builder for canonical key strings: an ordered sequence of name=value
/// fields joined with '|'. Field order is part of the canonical form —
/// always append in a fixed order. Values must not contain '|' or '='
/// (checked); doubles are written as 16-hex-digit bit patterns.
class Fingerprint {
 public:
  Fingerprint();

  Fingerprint& field(std::string_view name, std::string_view value);
  Fingerprint& field(std::string_view name, std::uint64_t value);
  Fingerprint& field(std::string_view name, double value);  ///< bit pattern

  /// The canonical string so far (starts with "schema=<version>").
  const std::string& canonical() const noexcept { return canonical_; }
  Hash128 hash() const { return hash128(canonical_); }

 private:
  std::string canonical_;
};

/// Content hash of everything a simulation reads from the network: node
/// count, CSR arc structure with dimension labels, chip assignment, and
/// per-directed-link bandwidths (bit patterns). Two networks with equal
/// fingerprints are indistinguishable to the engines.
Hash128 fingerprint_network(const sim::SimNetwork& net);

/// Canonical "cfg=..." fragment covering every SimConfig knob that can
/// change a SimResult: engine, switching, packet length, link latency,
/// buffer bound, seed, shard domains, the full fault plan (every event),
/// and the retry/misroute/cutoff policy. The observer is deliberately
/// excluded — attaching one never changes any result field (pinned by
/// test_sim_observer).
std::string fingerprint_sim_config(const sim::SimConfig& cfg);

/// Full canonical cache key for one simulation:
///   schema=<v>|net=<hash>|router=<tag>|workload=<desc>|<cfg fields...>
/// @p router_tag names the routing function (opaque std::function — the
/// caller must tag it; the canonical per-topology routers used by the tools
/// pass "canonical"). @p workload names the run_* entry point and its
/// parameters, e.g. workload_batch_perm(seed) below.
std::string sim_cache_key(const sim::SimNetwork& net,
                          std::string_view router_tag,
                          std::string_view workload,
                          const sim::SimConfig& cfg);

// --- standard workload descriptors -----------------------------------------
// The workload half of a key must pin down the injected packets exactly.
// These helpers produce the canonical descriptors for the repo's stock
// experiment shapes.

/// run_batch over random_permutation(n, Xoshiro256(seed)) with
/// SimConfig::seed = seed (the batch_replicate_sweep shape).
std::string workload_batch_perm(std::uint64_t seed);

/// run_open at @p rate for @p inject_cycles with the named traffic pattern
/// ("uniform" for uniform_traffic; patterns are opaque callables, so the
/// caller must tag them).
std::string workload_open(double rate, std::size_t inject_cycles,
                          std::string_view pattern_tag);

/// run_total_exchange.
std::string workload_total_exchange();

/// run_trace over an explicit schedule: hashes every (src, dst, time).
std::string workload_trace(std::span<const sim::Injection> injections);

}  // namespace ipg::store
