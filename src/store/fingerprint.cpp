#include "store/fingerprint.hpp"

#include <bit>

#include "sim/network.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::store {
namespace {

/// One 64-bit accumulation lane: multiply-xor over 8-byte words with a
/// SplitMix64 finalizer per word. Deterministic function of (seed, bytes).
class HashLane {
 public:
  explicit HashLane(std::uint64_t seed) : h_(seed) {}

  void mix(std::uint64_t word) noexcept {
    std::uint64_t s = h_ ^ word;
    h_ = util::splitmix64(s) + 0x9e3779b97f4a7c15ull * (len_++ + 1);
  }

  std::uint64_t finish() const noexcept {
    std::uint64_t s = h_ ^ len_;
    return util::splitmix64(s);
  }

 private:
  std::uint64_t h_;
  std::uint64_t len_ = 0;
};

std::uint64_t load_word(const char* p, std::size_t n) noexcept {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return w;
}

constexpr char kHexDigits[] = "0123456789abcdef";

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kHexDigits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::string double_bits(double v) { return hex64(std::bit_cast<std::uint64_t>(v)); }

/// Streaming Fingerprint-style hasher for bulk structures (graphs, traces)
/// where materializing a canonical string would be wasteful.
class StructHash {
 public:
  StructHash() : a_(0x9e3779b97f4a7c15ull), b_(0xd1b54a32d192ed03ull) {}
  void mix(std::uint64_t w) noexcept {
    a_.mix(w);
    b_.mix(~w);
  }
  void mix(double v) noexcept { mix(std::bit_cast<std::uint64_t>(v)); }
  Hash128 finish() const noexcept { return {a_.finish(), b_.finish()}; }

 private:
  HashLane a_;
  HashLane b_;
};

}  // namespace

std::string Hash128::hex() const { return hex64(hi) + hex64(lo); }

Hash128 hash128(std::string_view bytes) {
  HashLane a(0x9e3779b97f4a7c15ull);
  HashLane b(0xd1b54a32d192ed03ull);
  for (std::size_t off = 0; off < bytes.size(); off += 8) {
    const std::uint64_t w =
        load_word(bytes.data() + off, std::min<std::size_t>(8, bytes.size() - off));
    a.mix(w);
    b.mix(~w);
  }
  return {a.finish(), b.finish()};
}

Fingerprint::Fingerprint() {
  canonical_ = "schema=" + std::to_string(kSchemaVersion);
}

Fingerprint& Fingerprint::field(std::string_view name, std::string_view value) {
  IPG_CHECK(name.find('|') == std::string_view::npos &&
                name.find('=') == std::string_view::npos,
            "fingerprint field name must not contain '|' or '='");
  IPG_CHECK(value.find('|') == std::string_view::npos &&
                value.find('=') == std::string_view::npos,
            "fingerprint field value must not contain '|' or '='");
  canonical_.push_back('|');
  canonical_.append(name);
  canonical_.push_back('=');
  canonical_.append(value);
  return *this;
}

Fingerprint& Fingerprint::field(std::string_view name, std::uint64_t value) {
  return field(name, std::string_view(std::to_string(value)));
}

Fingerprint& Fingerprint::field(std::string_view name, double value) {
  return field(name, std::string_view(double_bits(value)));
}

Hash128 fingerprint_network(const sim::SimNetwork& net) {
  const topology::Graph& g = net.graph();
  StructHash h;
  h.mix(std::uint64_t{0x4e455457});  // "NETW" domain tag
  h.mix(static_cast<std::uint64_t>(g.num_nodes()));
  h.mix(static_cast<std::uint64_t>(g.num_dims()));
  for (topology::NodeId v = 0; v < g.num_nodes(); ++v) {
    // CSR row boundaries are implied by per-node degree; arcs carry
    // (target, dimension). Arc order matters: the engines scan ports in
    // CSR order, so two networks differing only in port order can route
    // differently under faults.
    const auto arcs = g.arcs_of(v);
    h.mix(static_cast<std::uint64_t>(arcs.size()));
    for (const topology::Arc& a : arcs) {
      h.mix((static_cast<std::uint64_t>(a.to) << 16) |
            static_cast<std::uint64_t>(a.dim));
    }
  }
  const topology::Clustering& chips = net.chips();
  h.mix(static_cast<std::uint64_t>(chips.num_clusters()));
  for (topology::NodeId v = 0; v < g.num_nodes(); ++v) {
    h.mix(static_cast<std::uint64_t>(chips.cluster_of(v)));
  }
  for (sim::LinkId l = 0; l < net.num_links(); ++l) {
    h.mix(net.bandwidth(l));
  }
  return h.finish();
}

std::string fingerprint_sim_config(const sim::SimConfig& cfg) {
  Fingerprint fp;
  fp.field("engine", static_cast<std::uint64_t>(cfg.engine))
      .field("switching", static_cast<std::uint64_t>(cfg.switching))
      .field("len", cfg.packet_length_flits)
      .field("lat", cfg.link_latency_cycles)
      .field("buf", static_cast<std::uint64_t>(cfg.node_buffer_packets))
      .field("seed", cfg.seed)
      .field("domains", static_cast<std::uint64_t>(cfg.shard_domains))
      .field("retries", static_cast<std::uint64_t>(cfg.max_retries))
      .field("backoff", cfg.retry_backoff_cycles)
      .field("misroute", static_cast<std::uint64_t>(cfg.misroute_budget))
      .field("cutoff", cfg.max_cycles);
  if (cfg.fault_plan != nullptr && !cfg.fault_plan->empty()) {
    StructHash h;
    h.mix(std::uint64_t{0x504c414e});  // "PLAN" domain tag
    for (const sim::FaultEvent& e : cfg.fault_plan->events()) {
      h.mix(e.time);
      h.mix((static_cast<std::uint64_t>(e.kind) << 56) |
            (static_cast<std::uint64_t>(e.a) << 28) |
            static_cast<std::uint64_t>(e.b));
    }
    fp.field("plan_events", static_cast<std::uint64_t>(cfg.fault_plan->size()));
    fp.field("plan", std::string_view(h.finish().hex()));
  } else {
    fp.field("plan", "none");
  }
  // Strip the builder's "schema=N|" prefix: the config fragment nests
  // inside a full key that already carries the schema field.
  const std::string& canon = fp.canonical();
  const std::size_t bar = canon.find('|');
  return canon.substr(bar + 1);
}

std::string sim_cache_key(const sim::SimNetwork& net,
                          std::string_view router_tag,
                          std::string_view workload,
                          const sim::SimConfig& cfg) {
  Fingerprint fp;
  fp.field("net", std::string_view(fingerprint_network(net).hex()))
      .field("router", router_tag)
      .field("workload", workload);
  return fp.canonical() + "|" + fingerprint_sim_config(cfg);
}

std::string workload_batch_perm(std::uint64_t seed) {
  return "batch-perm:" + std::to_string(seed);
}

std::string workload_open(double rate, std::size_t inject_cycles,
                          std::string_view pattern_tag) {
  IPG_CHECK(pattern_tag.find('|') == std::string_view::npos &&
                pattern_tag.find('=') == std::string_view::npos,
            "pattern tag must not contain '|' or '='");
  return "open:" + double_bits(rate) + ":" + std::to_string(inject_cycles) +
         ":" + std::string(pattern_tag);
}

std::string workload_total_exchange() { return "total-exchange"; }

std::string workload_trace(std::span<const sim::Injection> injections) {
  StructHash h;
  h.mix(std::uint64_t{0x54524143});  // "TRAC" domain tag
  for (const sim::Injection& inj : injections) {
    h.mix((static_cast<std::uint64_t>(inj.src) << 32) |
          static_cast<std::uint64_t>(inj.dst));
    h.mix(inj.time);
  }
  return "trace:" + std::to_string(injections.size()) + ":" + h.finish().hex();
}

}  // namespace ipg::store
