#include "mcmp/hierarchy.hpp"

#include <algorithm>

#include "metrics/distances.hpp"
#include "util/check.hpp"

namespace ipg::mcmp {

PackagingHierarchy::PackagingHierarchy(std::size_t num_nodes,
                                       std::vector<std::size_t> module_sizes) {
  IPG_CHECK(!module_sizes.empty(), "hierarchy needs at least one level");
  std::size_t prev = 1;
  for (const std::size_t m : module_sizes) {
    IPG_CHECK(m > prev, "module sizes must be strictly increasing");
    IPG_CHECK(m % prev == 0, "each module size must be a multiple of the previous");
    IPG_CHECK(num_nodes % m == 0, "module size must divide the node count");
    levels_.push_back(Clustering::blocks(num_nodes, m));
    prev = m;
  }
}

PackagingHierarchy::PackagingHierarchy(std::vector<Clustering> levels)
    : levels_(std::move(levels)) {
  IPG_CHECK(!levels_.empty(), "hierarchy needs at least one level");
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    IPG_CHECK(levels_[l].num_nodes() == levels_[0].num_nodes(),
              "all levels must cover the same nodes");
    IPG_CHECK(levels_[l].num_clusters() < levels_[l - 1].num_clusters(),
              "levels must get strictly coarser");
    // Consistent coarsening: the finer module determines the coarser one.
    constexpr auto kUnset = static_cast<std::uint32_t>(-1);
    std::vector<std::uint32_t> parent(levels_[l - 1].num_clusters(), kUnset);
    for (NodeId v = 0; v < levels_[l].num_nodes(); ++v) {
      const auto fine = levels_[l - 1].cluster_of(v);
      const auto coarse = levels_[l].cluster_of(v);
      IPG_CHECK(parent[fine] == kUnset || parent[fine] == coarse,
                "level does not nest: a module straddles two parents");
      parent[fine] = coarse;
    }
  }
}

std::size_t PackagingHierarchy::link_level(NodeId a, NodeId b) const {
  std::size_t level = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].is_intercluster(a, b)) level = l + 1;
  }
  return level;
}

std::vector<double> hierarchical_arc_bandwidths(
    const Graph& g, const PackagingHierarchy& h,
    const std::vector<double>& level_budgets, double onchip_bandwidth) {
  IPG_CHECK(level_budgets.size() == h.num_levels(),
            "need one budget per hierarchy level");
  IPG_CHECK(onchip_bandwidth > 0, "on-chip bandwidth must be positive");

  // Arcs crossing each module's boundary, per level.
  std::vector<std::vector<std::size_t>> crossing(h.num_levels());
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    crossing[l].assign(h.level(l).num_clusters(), 0);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      for (std::size_t l = 0; l < h.num_levels(); ++l) {
        if (h.level(l).is_intercluster(v, arc.to)) {
          ++crossing[l][h.level(l).cluster_of(v)];
        }
      }
    }
  }

  std::vector<double> bw;
  bw.reserve(g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      double b = onchip_bandwidth;
      for (std::size_t l = 0; l < h.num_levels(); ++l) {
        if (!h.level(l).is_intercluster(v, arc.to)) continue;
        const auto ca = h.level(l).cluster_of(v);
        const auto cb = h.level(l).cluster_of(arc.to);
        const double share_a =
            level_budgets[l] / static_cast<double>(crossing[l][ca]);
        const double share_b =
            level_budgets[l] / static_cast<double>(crossing[l][cb]);
        b = std::min({b, share_a, share_b});
      }
      bw.push_back(b);
    }
  }
  return bw;
}

sim::SimNetwork make_hierarchical_network(Graph g, const PackagingHierarchy& h,
                                          const std::vector<double>& level_budgets,
                                          double onchip_bandwidth) {
  auto bw = hierarchical_arc_bandwidths(g, h, level_budgets, onchip_bandwidth);
  Clustering chips = h.chips();
  return sim::SimNetwork::with_bandwidths(std::move(g), std::move(chips),
                                          std::move(bw));
}

LevelTraffic level_traffic(const Graph& g, const PackagingHierarchy& h,
                           std::size_t sample_sources) {
  LevelTraffic out;
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    const auto stats = metrics::intercluster_stats(g, h.level(l), sample_sources);
    out.avg_crossings.push_back(stats.average);
    out.diameter.push_back(stats.diameter);
  }
  return out;
}

}  // namespace ipg::mcmp
