#pragma once
// The unit chip capacity model and the §4.2 bisection-bandwidth formulas.
//
// Under unit chip capacity every chip has the same aggregate off-chip
// bandwidth M*w (M nodes/chip, w per node), spread uniformly over the
// chip's off-chip links. The paper's closed forms:
//   Thm 4.7   B_B >= w N / (4 a)            (a = avg intercluster distance)
//   Cor 4.8   HSN/SFN: B_B = w N M / (4 (l-1) (M-1))
//   Cor 4.9   hypercube: B_B = w N / (2 (log2 N - log2 M))
//   Cor 4.10  sqrt(N)-ary 2-cube: B_B = w sqrt(N M) / 2
// measured_bisection_bandwidth() checks them against cluster-respecting
// weighted bisections of the actual graphs.

#include <cstddef>

#include "metrics/bisection.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace ipg::mcmp {

using topology::Clustering;
using topology::Graph;

/// Theorem 4.7's lower bound on bisection bandwidth.
double bb_lower_bound(double w_node, std::size_t num_nodes,
                      double avg_intercluster_distance);

/// Corollary 4.8 (HSN / SFN with M-node nucleus chips, l levels).
double hsn_bisection_bandwidth(double w_node, std::size_t num_nodes,
                               std::size_t nucleus_size, std::size_t levels);

/// Corollary 4.9 (hypercube with M-node subcube chips).
double hypercube_bisection_bandwidth(double w_node, std::size_t num_nodes,
                                     std::size_t chip_size);

/// Corollary 4.10 (sqrt(N)-ary 2-cube with M-node square chips).
double kary2_bisection_bandwidth(double w_node, std::size_t num_nodes,
                                 std::size_t chip_size);

/// Measured bisection bandwidth: cluster-respecting heuristic bisection of
/// the graph with unit-chip-capacity link weights.
double measured_bisection_bandwidth(const Graph& g, const Clustering& chips,
                                    double w_node, unsigned restarts = 12,
                                    std::uint64_t seed = 0x5eed);

/// Per-chip link statistics (the paper's "an off-chip link of HSN(3,Q4)
/// has bandwidth ~4x higher than one of the 12-cube" comparison).
struct ChipLinkStats {
  std::size_t offchip_links_per_chip = 0;  ///< max over chips
  double offchip_link_bandwidth = 0;       ///< min over off-chip links
};
ChipLinkStats chip_link_stats(const Graph& g, const Clustering& chips,
                              double w_node);

/// Builds a simulator network under unit chip capacity: off-chip budget
/// M*w per chip; on-chip links get @p onchip_multiple times the fastest
/// off-chip link so they are never the bottleneck (§4 assumption).
sim::SimNetwork make_unit_chip_network(Graph g, Clustering chips, double w_node,
                                       double onchip_multiple = 64.0);

}  // namespace ipg::mcmp
