#include "mcmp/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::mcmp {

double bb_lower_bound(double w_node, std::size_t num_nodes,
                      double avg_intercluster_distance) {
  IPG_CHECK(avg_intercluster_distance > 0, "average intercluster distance must be positive");
  return w_node * static_cast<double>(num_nodes) / (4.0 * avg_intercluster_distance);
}

double hsn_bisection_bandwidth(double w_node, std::size_t num_nodes,
                               std::size_t nucleus_size, std::size_t levels) {
  IPG_CHECK(levels >= 2 && nucleus_size >= 2, "need l >= 2 and M >= 2");
  return w_node * static_cast<double>(num_nodes) * static_cast<double>(nucleus_size) /
         (4.0 * static_cast<double>(levels - 1) * static_cast<double>(nucleus_size - 1));
}

double hypercube_bisection_bandwidth(double w_node, std::size_t num_nodes,
                                     std::size_t chip_size) {
  const double dims = std::log2(static_cast<double>(num_nodes));
  const double chip_dims = std::log2(static_cast<double>(chip_size));
  IPG_CHECK(dims > chip_dims, "chip must be smaller than the cube");
  return w_node * static_cast<double>(num_nodes) / (2.0 * (dims - chip_dims));
}

double kary2_bisection_bandwidth(double w_node, std::size_t num_nodes,
                                 std::size_t chip_size) {
  return w_node *
         std::sqrt(static_cast<double>(num_nodes) * static_cast<double>(chip_size)) /
         2.0;
}

double measured_bisection_bandwidth(const Graph& g, const Clustering& chips,
                                    double w_node, unsigned restarts,
                                    std::uint64_t seed) {
  const auto weights = metrics::unit_chip_arc_weights(g, chips, w_node);
  const auto result =
      metrics::cluster_bisection_heuristic(g, chips, weights, restarts, seed);
  return result.cut;
}

ChipLinkStats chip_link_stats(const Graph& g, const Clustering& chips,
                              double w_node) {
  std::vector<std::size_t> offchip_links(chips.num_clusters(), 0);
  for (topology::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.arcs_of(v)) {
      if (chips.is_intercluster(v, arc.to)) ++offchip_links[chips.cluster_of(v)];
    }
  }
  ChipLinkStats out;
  out.offchip_links_per_chip =
      *std::max_element(offchip_links.begin(), offchip_links.end());
  const auto weights = metrics::unit_chip_arc_weights(g, chips, w_node);
  double min_bw = 0;
  bool any = false;
  for (const double w : weights) {
    if (w <= 0) continue;
    min_bw = any ? std::min(min_bw, w) : w;
    any = true;
  }
  out.offchip_link_bandwidth = min_bw;
  return out;
}

sim::SimNetwork make_unit_chip_network(Graph g, Clustering chips, double w_node,
                                       double onchip_multiple) {
  const auto sizes = chips.cluster_sizes();
  IPG_CHECK(!sizes.empty(), "network needs at least one chip");
  const double chip_budget = static_cast<double>(sizes[0]) * w_node;
  // Fastest possible off-chip link <= chip_budget; provision on-chip links
  // well above it.
  const double onchip_bw = chip_budget * onchip_multiple;
  return sim::SimNetwork(std::move(g), std::move(chips), chip_budget, onchip_bw);
}

}  // namespace ipg::mcmp
