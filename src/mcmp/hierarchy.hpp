#pragma once
// Multi-level packaging hierarchies — §4's closing remark: "even though we
// assumed only two levels of hierarchy ... our results and methodology can
// be easily extended to hierarchical parallel architectures involving more
// than two levels." This module is that extension: chips on boards on
// cabinets, each level with its own external-bandwidth budget (pins,
// connectors, cables — the packaging constraints of [5]).
//
// A link's *packaging level* is the coarsest module boundary it crosses
// (0 = inside a chip, 1 = chip-to-chip on one board, 2 = board-to-board,
// ...). Every module at level ℓ spreads its budget over the links crossing
// its own boundary; a link crossing several boundaries is constrained by
// every level it crosses and gets the minimum share — the natural
// generalization of the unit chip capacity model.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace ipg::mcmp {

using topology::Clustering;
using topology::Graph;
using topology::NodeId;

class PackagingHierarchy {
 public:
  /// @p module_sizes: nodes per module at each level, strictly increasing
  /// and each dividing the next (e.g. {16, 256} = 16-node chips, 16-chip
  /// boards). Modules are contiguous id blocks, matching the library's
  /// node numberings (nucleus digits, subcubes, torus blocks).
  PackagingHierarchy(std::size_t num_nodes, std::vector<std::size_t> module_sizes);

  /// Arbitrary nested clusterings (finest first). Every coarser level must
  /// refine consistently: a node's level-ℓ module must be a function of
  /// its level-(ℓ-1) module (e.g. square torus chips inside square boards).
  explicit PackagingHierarchy(std::vector<Clustering> levels);

  std::size_t num_levels() const noexcept { return levels_.size(); }
  const Clustering& level(std::size_t l) const { return levels_[l]; }

  /// Packaging level of a link: 0 if within a chip, else the highest
  /// 1-based level whose module boundary it crosses.
  std::size_t link_level(NodeId a, NodeId b) const;

  /// The chip-level clustering (level 1 boundary).
  const Clustering& chips() const { return levels_[0]; }

 private:
  std::vector<Clustering> levels_;  ///< [0] = chips, [1] = boards, ...
};

/// Per-arc bandwidths: level-ℓ modules (ℓ = 1..L) have external budget
/// @p level_budgets[ℓ-1] each, spread uniformly over the arcs crossing
/// their boundary; an arc takes the minimum share over all levels it
/// crosses. Arcs inside a chip get @p onchip_bandwidth.
std::vector<double> hierarchical_arc_bandwidths(
    const Graph& g, const PackagingHierarchy& h,
    const std::vector<double>& level_budgets, double onchip_bandwidth);

/// Builds a simulator network under the hierarchical capacity model.
sim::SimNetwork make_hierarchical_network(Graph g, const PackagingHierarchy& h,
                                          const std::vector<double>& level_budgets,
                                          double onchip_bandwidth);

/// Per-level traffic census: how many hops of a uniformly random route
/// cross each packaging level (computed exactly by 0-1 BFS per level).
struct LevelTraffic {
  std::vector<double> avg_crossings;  ///< [ℓ-1] = mean level-ℓ boundary hops
  std::vector<std::size_t> diameter;  ///< [ℓ-1] = max level-ℓ boundary hops
};
LevelTraffic level_traffic(const Graph& g, const PackagingHierarchy& h,
                           std::size_t sample_sources = 0);

}  // namespace ipg::mcmp
