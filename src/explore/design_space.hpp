#pragma once
// Design-space explorer (docs/DESIGN_SPACE.md): the §4 MCMP decision
// procedure — which interconnect should tie M-node chips together? —
// as a query-able, cache-backed library.
//
// A DesignPoint names one candidate fabric (family + construction params);
// evaluate() builds it and reports the paper's decision metrics (off-chip
// links per node, off-chip link width, intercluster distance, bisection
// bandwidth) plus simulated random-routing throughput and latency. Every
// expensive sub-result — the static metric bundle and each simulation
// replicate — is keyed by a content-addressed fingerprint (store/
// fingerprint.hpp) and served through an optional sim::ResultCache, so
// repeated sweeps over overlapping grids are incremental: a warm re-run
// performs zero simulator invocations and zero bisection searches.
//
// tools/ipg_design is the CLI over this library; bench_design_space times
// the cold-vs-warm gap on the same grid.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/thread_pool.hpp"

namespace ipg::explore {

/// One candidate fabric. Super-IPG families (hsn, sfn, ring-cn,
/// complete-cn) are built over a Q_{nucleus_dim} hypercube nucleus with
/// `levels` levels (chips = nucleus copies). Baselines: "hypercube" is
/// Q_{levels} with chip_size-node subcube chips; "kary2" is a levels-ary
/// 2-cube with square chips of chip_size nodes.
struct DesignPoint {
  std::string family;        ///< hsn | sfn | ring-cn | complete-cn | hypercube | kary2
  std::size_t levels = 2;
  unsigned nucleus_dim = 4;  ///< super families only
  std::size_t chip_size = 16;  ///< baselines only (super chips = nucleus)
};

/// Human name, e.g. "HSN(2,Q4)" / "Q8[16/chip]" / "16-ary 2-cube[16/chip]".
std::string display_name(const DesignPoint& p);

/// Throws (util::check) unless @p p names a known family with buildable
/// parameters (node count capped at 2^20 — the explorer is for the
/// decision sweep, not the million-node scale runs).
void validate_point(const DesignPoint& p);

struct ExploreConfig {
  /// Cross-run result cache (src/store's ResultStore, or null = always
  /// compute). Both the static metric bundle and every sim replicate go
  /// through it.
  sim::ResultCache* cache = nullptr;
  std::size_t seed_replicates = 4;   ///< batch random-permutation replicates
  std::uint64_t base_seed = 501;     ///< replicate i runs seed base_seed + i
  bool with_open_loop = true;        ///< add one open-loop latency point
  double open_rate = 0.08;
  std::size_t open_inject_cycles = 300;
  util::ThreadPool* pool = nullptr;  ///< null = ThreadPool::global()
  sim::SweepProgress* progress = nullptr;  ///< per-design sweep progress
};

struct DesignMetrics {
  DesignPoint point;
  std::string name;
  std::size_t nodes = 0;
  std::size_t num_chips = 0;
  std::size_t chip_size = 0;
  // Static §4 decision metrics (unit per-node off-chip budget w = 1).
  double offchip_links_per_node = 0;  ///< intercluster degree
  double offchip_link_bandwidth = 0;  ///< link width under unit chip capacity
  double avg_ic_distance = 0;
  std::size_t ic_diameter = 0;
  double bisection_measured = 0;      ///< cluster-respecting heuristic
  double bisection_closed_form = 0;   ///< Cor 4.8/4.9/4.10; NaN if none
  // Simulated service (means over the batch replicates).
  double batch_throughput = 0;  ///< flits/node/cycle
  double batch_avg_latency = 0;
  double open_avg_latency = 0;  ///< NaN when with_open_loop is false
  double open_p99_latency = 0;
  // Cache accounting for this evaluation.
  bool static_from_cache = false;
  std::size_t sim_jobs = 0;
  std::size_t sim_cache_hits = 0;
};

/// The stock comparison grid: every super-IPG family at (l=2, Q2..Q4) and
/// (l=3, Q2) — 4 families x 4 param points — plus the Q8 and 16-ary 2-cube
/// baselines with 16-node chips. Smoke keeps the 4x4 family grid (the
/// warm-cache CI gate needs it) but drops the baselines.
std::vector<DesignPoint> default_grid(bool smoke);

/// Evaluates one point: builds the fabric, serves/computes the static
/// bundle and the simulation replicates through cfg.cache, and aggregates.
/// Deterministic for a fixed config; cache state changes only wall time
/// and the accounting fields.
DesignMetrics evaluate(const DesignPoint& p, const ExploreConfig& cfg);

/// evaluate() over a grid, in order.
std::vector<DesignMetrics> evaluate_grid(std::span<const DesignPoint> grid,
                                         const ExploreConfig& cfg);

}  // namespace ipg::explore
