#include "explore/design_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "mcmp/capacity.hpp"
#include "metrics/distances.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "store/fingerprint.hpp"
#include "store/result_store.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::explore {
namespace {

using namespace ipg::topology;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kMaxNodes = std::size_t{1} << 20;

/// Version salt for the cached static-metric bundle: bump when the metric
/// set, their definitions, or the bisection heuristic parameters change.
constexpr std::uint64_t kStaticMetricsVersion = 1;

bool is_super_family(const std::string& family) {
  return family == "hsn" || family == "sfn" || family == "ring-cn" ||
         family == "complete-cn";
}

/// One built candidate: everything evaluate() needs, with the SuperIpg (if
/// any) kept alive for the router.
struct BuiltDesign {
  std::shared_ptr<const SuperIpg> ipg;  ///< null for baselines
  Graph graph;
  Clustering chips;
  sim::SimNetwork network;
  sim::Router router;
  /// Cache tag for the router. The network fingerprint alone is NOT enough
  /// to key a sim: distinct families can share a graph (every l = 2 super
  /// family is the same swap construction) while their canonical route
  /// functions are family-specific, so the tag carries the family.
  std::string router_tag;
  double bisection_closed_form = kNaN;
};

BuiltDesign build(const DesignPoint& p) {
  validate_point(p);
  if (is_super_family(p.family)) {
    auto nucleus = std::make_shared<HypercubeNucleus>(p.nucleus_dim);
    SuperIpg built = p.family == "hsn"   ? make_hsn(p.levels, nucleus)
                     : p.family == "sfn" ? make_sfn(p.levels, nucleus)
                     : p.family == "ring-cn"
                         ? make_ring_cn(p.levels, nucleus)
                         : make_complete_cn(p.levels, nucleus);
    auto s = std::make_shared<const SuperIpg>(std::move(built));
    Graph g = s->to_graph();
    Clustering chips = s->nucleus_clustering();
    double closed = kNaN;
    if (p.family == "hsn" || p.family == "sfn") {
      // Cor 4.8 (exact for HSN; SFN shares the formula at w = 1).
      closed = mcmp::hsn_bisection_bandwidth(1.0, s->num_nodes(),
                                             s->nucleus_size(), p.levels);
    }
    sim::SimNetwork net =
        mcmp::make_unit_chip_network(Graph(g), Clustering(chips), 1.0);
    return {s,
            std::move(g),
            std::move(chips),
            std::move(net),
            sim::super_ipg_router(*s),
            "super-" + p.family,
            closed};
  }
  if (p.family == "hypercube") {
    const unsigned n = static_cast<unsigned>(p.levels);
    Graph g = hypercube_graph(n);
    Clustering chips = hypercube_subcube_clustering(n, p.chip_size);
    const double closed = mcmp::hypercube_bisection_bandwidth(
        1.0, g.num_nodes(), p.chip_size);
    sim::SimNetwork net =
        mcmp::make_unit_chip_network(Graph(g), Clustering(chips), 1.0);
    return {nullptr,
            std::move(g),
            std::move(chips),
            std::move(net),
            sim::hypercube_router(n),
            "ecube",
            closed};
  }
  // kary2: levels-ary 2-cube with square chips.
  const auto side = static_cast<std::size_t>(std::llround(
      std::sqrt(static_cast<double>(p.chip_size))));
  Graph g = kary_ncube_graph(p.levels, 2);
  Clustering chips = kary2_block_clustering(p.levels, side);
  const double closed =
      mcmp::kary2_bisection_bandwidth(1.0, g.num_nodes(), p.chip_size);
  sim::SimNetwork net =
      mcmp::make_unit_chip_network(Graph(g), Clustering(chips), 1.0);
  return {nullptr,
          std::move(g),
          std::move(chips),
          std::move(net),
          sim::kary_router(p.levels, 2),
          "kary-ecube",
          closed};
}

/// Canonical key of the cached static bundle for one network.
std::string static_metrics_key(const sim::SimNetwork& net) {
  store::Fingerprint fp;
  fp.field("net", std::string_view(store::fingerprint_network(net).hex()))
      .field("kind", "design-static")
      .field("metrics-version", kStaticMetricsVersion);
  return fp.canonical();
}

// Extras names of the static bundle, fixed by kStaticMetricsVersion.
constexpr const char* kOffchipPerNode = "offchip_links_per_node";
constexpr const char* kLinkBandwidth = "offchip_link_bandwidth";
constexpr const char* kAvgIc = "avg_ic_distance";
constexpr const char* kIcDiameter = "ic_diameter";
constexpr const char* kBisection = "bisection_measured";

bool extras_get(const store::Record& rec, const char* name, double& out) {
  for (const auto& [k, v] : rec.extras) {
    if (k == name) {
      out = v;
      return true;
    }
  }
  return false;
}

/// Fills the static half of @p m, through the cache when one is attached.
/// The record is stored via the full-record (extras) interface, so it must
/// come from a ResultStore; a plain ResultCache (test double) recomputes.
void static_metrics(const BuiltDesign& d, const ExploreConfig& cfg,
                    DesignMetrics& m) {
  auto* store_cache = dynamic_cast<store::ResultStore*>(cfg.cache);
  const std::string key =
      store_cache != nullptr ? static_metrics_key(d.network) : std::string();
  if (store_cache != nullptr) {
    if (auto rec = store_cache->load(key); rec.has_value()) {
      double diam = 0;
      if (extras_get(*rec, kOffchipPerNode, m.offchip_links_per_node) &&
          extras_get(*rec, kLinkBandwidth, m.offchip_link_bandwidth) &&
          extras_get(*rec, kAvgIc, m.avg_ic_distance) &&
          extras_get(*rec, kIcDiameter, diam) &&
          extras_get(*rec, kBisection, m.bisection_measured)) {
        m.ic_diameter = static_cast<std::size_t>(diam);
        m.static_from_cache = true;
        return;
      }
      // Incomplete bundle (schema drift without a version bump would be a
      // bug, but never trust it): fall through and recompute.
    }
  }
  const auto census = census_links(d.graph, d.chips);
  const auto ic = metrics::intercluster_stats(d.graph, d.chips);
  const auto link = mcmp::chip_link_stats(d.graph, d.chips, 1.0);
  m.offchip_links_per_node = census.avg_offchip_per_node;
  m.offchip_link_bandwidth = link.offchip_link_bandwidth;
  m.avg_ic_distance = ic.average;
  m.ic_diameter = ic.diameter;
  m.bisection_measured =
      mcmp::measured_bisection_bandwidth(d.graph, d.chips, 1.0);
  if (store_cache != nullptr) {
    store::Record rec;
    rec.extras = {{kOffchipPerNode, m.offchip_links_per_node},
                  {kLinkBandwidth, m.offchip_link_bandwidth},
                  {kAvgIc, m.avg_ic_distance},
                  {kIcDiameter, static_cast<double>(m.ic_diameter)},
                  {kBisection, m.bisection_measured}};
    store_cache->put(key, rec);
  }
}

}  // namespace

std::string display_name(const DesignPoint& p) {
  if (is_super_family(p.family)) {
    std::string fam = p.family == "hsn"   ? "HSN"
                      : p.family == "sfn" ? "SFN"
                      : p.family == "ring-cn" ? "ring-CN"
                                              : "complete-CN";
    return fam + "(" + std::to_string(p.levels) + ",Q" +
           std::to_string(p.nucleus_dim) + ")";
  }
  if (p.family == "hypercube") {
    return "Q" + std::to_string(p.levels) + "[" + std::to_string(p.chip_size) +
           "/chip]";
  }
  return std::to_string(p.levels) + "-ary 2-cube[" +
         std::to_string(p.chip_size) + "/chip]";
}

void validate_point(const DesignPoint& p) {
  if (is_super_family(p.family)) {
    IPG_CHECK(p.levels >= 2 && p.levels <= 8, "super-IPG levels must be 2..8");
    IPG_CHECK(p.nucleus_dim >= 1 && p.nucleus_dim <= 10,
              "nucleus must be Q1..Q10");
    const double nodes =
        std::pow(std::pow(2.0, p.nucleus_dim), static_cast<double>(p.levels));
    IPG_CHECK(nodes <= static_cast<double>(kMaxNodes),
              "design exceeds the explorer's 2^20-node cap");
    return;
  }
  if (p.family == "hypercube") {
    IPG_CHECK(p.levels >= 1 && p.levels <= 20, "hypercube dimension must be 1..20");
    IPG_CHECK(p.chip_size >= 1 && (p.chip_size & (p.chip_size - 1)) == 0 &&
                  p.chip_size <= (std::size_t{1} << p.levels),
              "chip size must be a power of two <= node count");
    return;
  }
  if (p.family == "kary2") {
    IPG_CHECK(p.levels >= 2 && p.levels <= 1024, "k-ary 2-cube k must be 2..1024");
    const auto side = static_cast<std::size_t>(std::llround(
        std::sqrt(static_cast<double>(p.chip_size))));
    IPG_CHECK(side * side == p.chip_size && side >= 1 && p.levels % side == 0,
              "kary2 chip size must be a square whose side divides k");
    return;
  }
  IPG_CHECK(false, "unknown design family '" + p.family +
                       "' (hsn, sfn, ring-cn, complete-cn, hypercube, kary2)");
}

std::vector<DesignPoint> default_grid(bool smoke) {
  std::vector<DesignPoint> grid;
  const std::vector<std::pair<std::size_t, unsigned>> params = {
      {2, 2}, {2, 3}, {2, 4}, {3, 2}};
  for (const char* fam : {"hsn", "sfn", "ring-cn", "complete-cn"}) {
    for (const auto& [levels, ndim] : params) {
      grid.push_back({fam, levels, ndim, 0});
    }
  }
  if (!smoke) {
    grid.push_back({"hypercube", 8, 0, 16});
    grid.push_back({"kary2", 16, 0, 16});
  }
  return grid;
}

DesignMetrics evaluate(const DesignPoint& p, const ExploreConfig& cfg) {
  const BuiltDesign d = build(p);
  DesignMetrics m;
  m.point = p;
  m.name = display_name(p);
  m.nodes = d.graph.num_nodes();
  m.num_chips = d.chips.num_clusters();
  m.chip_size = m.num_chips > 0 ? m.nodes / m.num_chips : 0;
  m.bisection_closed_form = d.bisection_closed_form;

  static_metrics(d, cfg, m);

  // Simulation replicates: batch random permutations (the §4 throughput
  // column) plus one optional open-loop latency point. Every job carries a
  // content-addressed key, so a warm cache satisfies the whole sweep
  // without invoking an engine.
  sim::SimConfig base;
  base.packet_length_flits = 16;
  std::vector<sim::SweepJob> jobs;
  const sim::SimNetwork& net = d.network;
  const sim::Router& router = d.router;
  for (std::size_t i = 0; i < cfg.seed_replicates; ++i) {
    const std::uint64_t seed = cfg.base_seed + i;
    sim::SimConfig c = base;
    c.seed = seed;
    jobs.push_back({"seed " + std::to_string(seed),
                    [&net, router, seed, c]() {
                      util::Xoshiro256 rng(seed);
                      const auto perm =
                          sim::random_permutation(net.num_nodes(), rng);
                      return sim::run_batch(net, router, perm, c);
                    },
                    store::sim_cache_key(net, d.router_tag,
                                         store::workload_batch_perm(seed), c)});
  }
  if (cfg.with_open_loop) {
    sim::SimConfig c = base;
    c.seed = cfg.base_seed;
    const double rate = cfg.open_rate;
    const std::size_t cycles = cfg.open_inject_cycles;
    jobs.push_back(
        {"open rate " + std::to_string(rate),
         [&net, router, rate, cycles, c]() {
           return sim::run_open(net, router,
                                sim::uniform_traffic(net.num_nodes()), rate,
                                cycles, c);
         },
         store::sim_cache_key(net, d.router_tag,
                              store::workload_open(rate, cycles, "uniform"),
                              c)});
  }

  util::ThreadPool& pool =
      cfg.pool != nullptr ? *cfg.pool : util::ThreadPool::global();
  const auto outcomes = sim::run_sweep(jobs, pool, cfg.progress, cfg.cache);

  double tp = 0, lat = 0;
  for (std::size_t i = 0; i < cfg.seed_replicates; ++i) {
    tp += outcomes[i].result.throughput_flits_per_node_cycle;
    lat += outcomes[i].result.avg_latency_cycles;
  }
  const auto reps = static_cast<double>(std::max<std::size_t>(1, cfg.seed_replicates));
  m.batch_throughput = cfg.seed_replicates > 0 ? tp / reps : kNaN;
  m.batch_avg_latency = cfg.seed_replicates > 0 ? lat / reps : kNaN;
  if (cfg.with_open_loop) {
    const sim::SimResult& open = outcomes.back().result;
    m.open_avg_latency = open.avg_latency_cycles;
    m.open_p99_latency = open.p99_latency_cycles;
  } else {
    m.open_avg_latency = kNaN;
    m.open_p99_latency = kNaN;
  }
  m.sim_jobs = outcomes.size();
  m.sim_cache_hits = static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const sim::SweepOutcome& o) { return o.from_cache; }));
  return m;
}

std::vector<DesignMetrics> evaluate_grid(std::span<const DesignPoint> grid,
                                         const ExploreConfig& cfg) {
  std::vector<DesignMetrics> out;
  out.reserve(grid.size());
  for (const DesignPoint& p : grid) out.push_back(evaluate(p, cfg));
  return out;
}

}  // namespace ipg::explore
