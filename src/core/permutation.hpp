#pragma once
// Permutations on symbol positions — the generators of the IPG model.
//
// A permutation is stored in one-line notation over 0-based positions:
// applying P to a label X yields Y with Y[i] = X[P[i]]. This matches the
// paper's convention, where the generator written 456123 maps
// y1 y2 y3 y4 y5 y6 to y4 y5 y6 y1 y2 y3 (§2).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ipg::core {

class Permutation {
 public:
  using Pos = std::uint16_t;

  /// Constructs from a 0-based one-line map; throws std::invalid_argument
  /// if @p one_line is not a permutation of {0, ..., n-1}.
  explicit Permutation(std::vector<Pos> one_line);

  /// Identity on n positions.
  static Permutation identity(std::size_t n);

  /// Transposition of positions i and j (0-based) on n positions.
  static Permutation transposition(std::size_t n, std::size_t i, std::size_t j);

  /// Left cyclic rotation by @p shift: result Y has Y[i] = X[(i+shift) mod n].
  static Permutation rotation(std::size_t n, std::size_t shift);

  /// Reversal of the first @p k positions (positions k..n-1 fixed).
  static Permutation prefix_reversal(std::size_t n, std::size_t k);

  /// Parses the paper's 1-based digit notation, e.g. "456123". Each
  /// character must be a digit 1..9 (so n <= 9); used by tests and examples
  /// that mirror the paper verbatim.
  static Permutation from_digits(std::string_view digits);

  std::size_t size() const noexcept { return map_.size(); }
  Pos operator[](std::size_t i) const noexcept { return map_[i]; }
  std::span<const Pos> map() const noexcept { return map_; }

  bool is_identity() const noexcept;

  /// True iff P∘P = identity (self-inverse generators give undirected edges).
  bool is_involution() const noexcept;

  /// Composition "this then other": (a.then(b)).apply(x) == b.apply(a.apply(x)).
  Permutation then(const Permutation& other) const;

  Permutation inverse() const;

  /// Multiplicative order: smallest k >= 1 with P^k = identity.
  unsigned order() const;

  /// Applies to an arbitrary symbol sequence: out[i] = in[map_[i]].
  /// in and out must have size() elements and must not alias.
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out) const {
    for (std::size_t i = 0; i < map_.size(); ++i) out[i] = in[map_[i]];
  }

  /// Convenience that copies through a temporary.
  template <typename T>
  std::vector<T> apply_copy(const std::vector<T>& in) const {
    std::vector<T> out(in.size());
    apply(std::span<const T>(in), std::span<T>(out));
    return out;
  }

  /// One-line rendering ("[3 4 5 0 1 2]") for diagnostics.
  std::string to_string() const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<Pos> map_;
};

}  // namespace ipg::core
