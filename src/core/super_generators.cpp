#include "core/super_generators.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ipg::core {

namespace {

/// Builds the permutation of l*m positions induced by a permutation of the
/// l groups: group g of the result holds input group group_map[g].
Permutation from_group_map(std::size_t m, const std::vector<std::size_t>& group_map) {
  std::vector<Permutation::Pos> map(group_map.size() * m);
  for (std::size_t g = 0; g < group_map.size(); ++g) {
    for (std::size_t s = 0; s < m; ++s) {
      map[g * m + s] = static_cast<Permutation::Pos>(group_map[g] * m + s);
    }
  }
  return Permutation(std::move(map));
}

}  // namespace

Permutation super_transposition(std::size_t l, std::size_t m, std::size_t i) {
  IPG_CHECK(i >= 1 && i < l, "super-transposition index out of range");
  std::vector<std::size_t> gm(l);
  std::iota(gm.begin(), gm.end(), std::size_t{0});
  std::swap(gm[0], gm[i]);
  return from_group_map(m, gm);
}

Permutation super_cyclic_left(std::size_t l, std::size_t m, std::size_t i) {
  IPG_CHECK(i >= 1 && i < l, "cyclic shift amount out of range");
  std::vector<std::size_t> gm(l);
  for (std::size_t g = 0; g < l; ++g) gm[g] = (g + i) % l;
  return from_group_map(m, gm);
}

Permutation super_cyclic_right(std::size_t l, std::size_t m, std::size_t i) {
  IPG_CHECK(i >= 1 && i < l, "cyclic shift amount out of range");
  return super_cyclic_left(l, m, l - i);
}

Permutation super_flip(std::size_t l, std::size_t m, std::size_t i) {
  IPG_CHECK(i >= 2 && i <= l, "flip prefix length out of range");
  std::vector<std::size_t> gm(l);
  std::iota(gm.begin(), gm.end(), std::size_t{0});
  std::reverse(gm.begin(), gm.begin() + static_cast<std::ptrdiff_t>(i));
  return from_group_map(m, gm);
}

Permutation lift_nucleus_generator(const Permutation& nucleus_gen, std::size_t l) {
  const std::size_t m = nucleus_gen.size();
  std::vector<Permutation::Pos> map(l * m);
  for (std::size_t s = 0; s < m; ++s) map[s] = nucleus_gen[s];
  for (std::size_t p = m; p < l * m; ++p) map[p] = static_cast<Permutation::Pos>(p);
  return Permutation(std::move(map));
}

std::vector<Permutation> make_super_generators(SuperGenKind kind, std::size_t l,
                                               std::size_t m) {
  IPG_CHECK(l >= 2, "a super-IPG needs at least two super-symbols");
  std::vector<Permutation> gens;
  switch (kind) {
    case SuperGenKind::kTranspositions:
      for (std::size_t i = 1; i < l; ++i) gens.push_back(super_transposition(l, m, i));
      break;
    case SuperGenKind::kRingShifts:
      gens.push_back(super_cyclic_left(l, m, 1));
      if (l > 2) gens.push_back(super_cyclic_right(l, m, 1));
      break;
    case SuperGenKind::kCompleteShifts:
      for (std::size_t i = 1; i < l; ++i) gens.push_back(super_cyclic_left(l, m, i));
      break;
    case SuperGenKind::kFlips:
      for (std::size_t i = 2; i <= l; ++i) gens.push_back(super_flip(l, m, i));
      break;
  }
  return gens;
}

Ipg build_generic_super_ipg(const Label& nucleus_seed,
                            const std::vector<Permutation>& nucleus_generators,
                            std::size_t levels, SuperGenKind kind,
                            std::size_t max_nodes) {
  const std::size_t m = nucleus_seed.size();
  std::vector<Permutation> gens;
  gens.reserve(nucleus_generators.size() + levels);
  for (const auto& g : nucleus_generators) {
    IPG_CHECK(g.size() == m, "nucleus generator size must match nucleus seed");
    gens.push_back(lift_nucleus_generator(g, levels));
  }
  for (auto& g : make_super_generators(kind, levels, m)) gens.push_back(std::move(g));
  return build_ipg(Label::repeated(nucleus_seed, levels), std::move(gens), max_nodes);
}

Label hypercube_seed(unsigned n) {
  IPG_CHECK(n >= 1, "hypercube dimension must be positive");
  return Label::repeated(Label::from_string("01"), n);
}

std::vector<Permutation> hypercube_generators(unsigned n) {
  std::vector<Permutation> gens;
  gens.reserve(n);
  for (unsigned b = 0; b < n; ++b) {
    gens.push_back(Permutation::transposition(2 * n, 2 * b, 2 * b + 1));
  }
  return gens;
}

Label complete_graph_seed(std::size_t m_nodes) {
  IPG_CHECK(m_nodes >= 2 && m_nodes <= Label::kMaxSymbols,
            "complete graph size out of encodable range");
  std::vector<Label::Symbol> syms(m_nodes);
  std::iota(syms.begin(), syms.end(), Label::Symbol{1});
  return Label(std::span<const Label::Symbol>(syms));
}

std::vector<Permutation> complete_graph_generators(std::size_t m_nodes) {
  std::vector<Permutation> gens;
  gens.reserve(m_nodes - 1);
  for (std::size_t i = 1; i < m_nodes; ++i) {
    gens.push_back(Permutation::rotation(m_nodes, i));
  }
  return gens;
}

Label ring_seed(std::size_t m_nodes) { return complete_graph_seed(m_nodes); }

std::vector<Permutation> ring_generators(std::size_t m_nodes) {
  IPG_CHECK(m_nodes >= 3, "a ring needs at least three nodes");
  return {Permutation::rotation(m_nodes, 1), Permutation::rotation(m_nodes, m_nodes - 1)};
}

}  // namespace ipg::core
