#pragma once
// Node labels for the generic IPG engine.
//
// An IPG vertex *is* its label: a fixed-length string of symbols in which
// repeats are allowed (this is the extension over Cayley graphs, §2). The
// generic engine only needs labels for moderate sizes — the paper's largest
// verbatim example uses 32 symbols — so Label uses inline storage with no
// heap allocation, making BFS closure and hashing fast.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "core/permutation.hpp"
#include "util/check.hpp"

namespace ipg::core {

class Label {
 public:
  using Symbol = std::uint8_t;
  static constexpr std::size_t kMaxSymbols = 48;

  Label() = default;

  explicit Label(std::span<const Symbol> symbols) : size_(symbols.size()) {
    IPG_CHECK(symbols.size() <= kMaxSymbols, "label too long for inline storage");
    std::copy(symbols.begin(), symbols.end(), data_.begin());
  }

  /// Parses "123321" (digits become symbol values 1..9) or any string whose
  /// characters are used as raw symbol values if non-digit. Spaces are
  /// skipped so paper notation like "01 01 01" round-trips.
  static Label from_string(std::string_view text) {
    std::array<Symbol, kMaxSymbols> buf{};
    std::size_t n = 0;
    for (const char c : text) {
      if (c == ' ') continue;
      IPG_CHECK(n < kMaxSymbols, "label too long for inline storage");
      buf[n++] = (c >= '0' && c <= '9') ? static_cast<Symbol>(c - '0')
                                        : static_cast<Symbol>(c);
    }
    return Label(std::span<const Symbol>(buf.data(), n));
  }

  /// Concatenates @p copies copies of @p group — the super-IPG seed shape.
  static Label repeated(const Label& group, std::size_t copies) {
    IPG_CHECK(group.size() * copies <= kMaxSymbols, "label too long for inline storage");
    Label out;
    out.size_ = group.size() * copies;
    for (std::size_t c = 0; c < copies; ++c) {
      std::copy(group.begin(), group.end(),
                out.data_.begin() + static_cast<std::ptrdiff_t>(c * group.size()));
    }
    return out;
  }

  std::size_t size() const noexcept { return size_; }
  Symbol operator[](std::size_t i) const noexcept { return data_[i]; }
  const Symbol* begin() const noexcept { return data_.data(); }
  const Symbol* end() const noexcept { return data_.data() + size_; }
  std::span<const Symbol> symbols() const noexcept { return {data_.data(), size_}; }

  /// Applies a permutation generator: result[i] = (*this)[perm[i]].
  Label apply(const Permutation& perm) const {
    IPG_DCHECK(perm.size() == size_, "permutation size must match label size");
    Label out;
    out.size_ = size_;
    for (std::size_t i = 0; i < size_; ++i) out.data_[i] = data_[perm[i]];
    return out;
  }

  /// Digits-and-spaces rendering grouped every @p group symbols (0 = none).
  std::string to_string(std::size_t group = 0) const {
    std::string s;
    for (std::size_t i = 0; i < size_; ++i) {
      if (group != 0 && i != 0 && i % group == 0) s += ' ';
      s += static_cast<char>('0' + data_[i]);
    }
    return s;
  }

  friend bool operator==(const Label& a, const Label& b) noexcept {
    if (a.size_ != b.size_) return false;
    return std::equal(a.begin(), a.end(), b.begin());
  }

  /// FNV-1a over 8-byte words of the inline array. Every constructor
  /// zero-initializes data_ and nothing mutates it past size_, so the
  /// padding bytes are identical for equal labels and whole-word hashing
  /// agrees with operator==. The generic-engine BFS closure is dominated
  /// by this function; one multiply per 8 symbols beats byte-at-a-time.
  std::size_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const std::size_t words = (size_ + 7) / 8;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t chunk;
      std::memcpy(&chunk, data_.data() + w * 8, 8);
      h = (h ^ chunk) * 0x100000001b3ull;
    }
    h ^= size_;
    h ^= h >> 32;  // the multiply mixes upward; fold the entropy back down
    return static_cast<std::size_t>(h);
  }

 private:
  std::array<Symbol, kMaxSymbols> data_{};
  std::size_t size_ = 0;
};

}  // namespace ipg::core

template <>
struct std::hash<ipg::core::Label> {
  std::size_t operator()(const ipg::core::Label& l) const noexcept { return l.hash(); }
};
