#include "core/ipg.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace ipg::core {

bool Ipg::is_undirected() const {
  for (const auto& g : generators) {
    const Permutation inv = g.inverse();
    if (std::find(generators.begin(), generators.end(), inv) == generators.end()) {
      return false;
    }
  }
  return true;
}

std::size_t Ipg::num_edges() const {
  std::size_t directed = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const NodeId u : neighbor[v]) {
      if (u != v) ++directed;  // skip generator self-loops
    }
  }
  // Every undirected edge is counted once per direction. A generator pair
  // (g, g^-1) produces both directions; an involution produces both too.
  return directed / 2;
}

Ipg build_ipg(const Label& seed, std::vector<Permutation> generators,
              std::size_t max_nodes) {
  IPG_CHECK(!generators.empty(), "an IPG needs at least one generator");
  for (const auto& g : generators) {
    IPG_CHECK(g.size() == seed.size(),
              "generator size must equal seed label length");
  }

  Ipg ipg;
  ipg.generators = std::move(generators);
  // Reserve with the caller's size hint so the closure loop neither rehashes
  // nor reallocates; cap it so a "no limit" sentinel doesn't pre-allocate
  // gigabytes (orbits past 64k nodes grow incrementally, which is fine).
  const std::size_t hint = std::min(max_nodes, std::size_t{1} << 16);
  ipg.labels.reserve(hint);
  ipg.index.reserve(hint);
  ipg.labels.push_back(seed);
  ipg.index.emplace(seed, NodeId{0});

  std::deque<NodeId> frontier{0};
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    if (ipg.neighbor.size() <= v) ipg.neighbor.resize(v + 1);
    ipg.neighbor[v].resize(ipg.num_generators());
    const Label here = ipg.labels[v];  // copy: labels vector may reallocate
    for (std::size_t g = 0; g < ipg.num_generators(); ++g) {
      const Label next = here.apply(ipg.generators[g]);
      auto [it, inserted] = ipg.index.try_emplace(next, static_cast<NodeId>(ipg.labels.size()));
      if (inserted) {
        IPG_CHECK(ipg.labels.size() < max_nodes,
                  "IPG closure exceeded max_nodes — orbit larger than expected");
        ipg.labels.push_back(next);
        frontier.push_back(it->second);
      }
      ipg.neighbor[v][g] = it->second;
    }
  }
  ipg.neighbor.resize(ipg.num_nodes());
  return ipg;
}

Ipg section2_example() {
  return build_ipg(Label::from_string("123321"),
                   {Permutation::from_digits("213456"),
                    Permutation::from_digits("321456"),
                    Permutation::from_digits("456123")});
}

}  // namespace ipg::core
