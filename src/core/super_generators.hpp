#pragma once
// Builders for super-generators and generic super-IPG assembly (§2).
//
// A super-IPG's node label consists of l groups ("super-symbols") of m
// symbols each. Its generators are
//   - nucleus generators: arbitrary permutations of the leftmost group,
//   - super-generators: permutations of whole groups that do not reorder
//     symbols inside any group.
// This header builds the three super-generator shapes used by the paper's
// families (transpositions T_{i,m}, cyclic shifts L_{i,m}/R_{i,m}, flips
// F_{i,m}) as position permutations on l*m symbols, lifts nucleus
// generators to the full label length, and assembles complete generic
// super-IPGs from a nucleus given in IPG form.

#include <cstddef>
#include <vector>

#include "core/ipg.hpp"
#include "core/label.hpp"
#include "core/permutation.hpp"

namespace ipg::core {

/// T_{i+1,m} in the paper's 1-based notation: interchanges group 0 and
/// group @p i (0-based here, so valid i is 1 .. l-1).
Permutation super_transposition(std::size_t l, std::size_t m, std::size_t i);

/// L_{i,m}: left cyclic shift of the l groups by @p i (result group g holds
/// input group (g+i) mod l). Valid i is 1 .. l-1.
Permutation super_cyclic_left(std::size_t l, std::size_t m, std::size_t i);

/// R_{i,m} = L_{l-i,m}: right cyclic shift of the groups by @p i.
Permutation super_cyclic_right(std::size_t l, std::size_t m, std::size_t i);

/// F_{i,m}: reverses the order of the first @p i groups (i in 2 .. l).
Permutation super_flip(std::size_t l, std::size_t m, std::size_t i);

/// Extends a nucleus generator (acting on one m-symbol group) to act on the
/// leftmost group of an l-group label, fixing all other positions.
Permutation lift_nucleus_generator(const Permutation& nucleus_gen, std::size_t l);

/// The kinds of super-generator sets used by the paper's families.
enum class SuperGenKind {
  kTranspositions,  ///< T_{2,m} .. T_{l,m}            -> HSN(l,G)
  kRingShifts,      ///< L_{1,m} and R_{1,m}           -> ring-CN(l,G)
  kCompleteShifts,  ///< L_{1,m} .. L_{l-1,m}          -> complete-CN(l,G)
  kFlips,           ///< F_{2,m} .. F_{l,m}            -> SFN(l,G)
};

/// Builds the full super-generator set of the given kind for l groups of m
/// symbols. Order matters: super-generator s (0-based) is the paper's
/// index-(s+2) generator for transpositions/flips, and L_{s+1} for shifts.
std::vector<Permutation> make_super_generators(SuperGenKind kind, std::size_t l,
                                               std::size_t m);

/// A nucleus in IPG form plus super-generator kind fully determines a
/// generic super-IPG; this materializes it with build_ipg(). Generator
/// order in the result: nucleus generators first (lifted), then
/// super-generators in make_super_generators() order.
Ipg build_generic_super_ipg(const Label& nucleus_seed,
                            const std::vector<Permutation>& nucleus_generators,
                            std::size_t levels, SuperGenKind kind,
                            std::size_t max_nodes = 2'000'000);

/// Hypercube Q_n in IPG form: bit b of a node is encoded by the symbol pair
/// at positions (2b, 2b+1) being 01 (bit=0) or 10 (bit=1); the dimension-b
/// generator transposes that pair. This is exactly the encoding behind the
/// paper's "32-symbol seed 01 01 01 ... 01" for a 16-cube (§3.1).
Label hypercube_seed(unsigned n);
std::vector<Permutation> hypercube_generators(unsigned n);

/// Complete graph K_M in IPG form: seed = 1 2 ... M (distinct symbols),
/// generators = rotations by 1 .. M-1 — the Cayley graph of Z_M with every
/// non-identity element as a generator, i.e. K_M. The M reachable labels
/// are the M rotations of the seed and every pair is one rotation apart.
Label complete_graph_seed(std::size_t m_nodes);
std::vector<Permutation> complete_graph_generators(std::size_t m_nodes);

/// Ring (cycle) C_M in IPG form: seed = 1 2 3 ... M (M distinct symbols),
/// generators rotate left/right by one. The M rotations form C_M.
Label ring_seed(std::size_t m_nodes);
std::vector<Permutation> ring_generators(std::size_t m_nodes);

}  // namespace ipg::core
