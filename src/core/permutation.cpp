#include "core/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace ipg::core {

Permutation::Permutation(std::vector<Pos> one_line) : map_(std::move(one_line)) {
  std::vector<bool> seen(map_.size(), false);
  for (const Pos p : map_) {
    IPG_CHECK(p < map_.size(), "position out of range in one-line notation");
    IPG_CHECK(!seen[p], "duplicate position in one-line notation");
    seen[p] = true;
  }
}

Permutation Permutation::identity(std::size_t n) {
  std::vector<Pos> m(n);
  std::iota(m.begin(), m.end(), Pos{0});
  return Permutation(std::move(m));
}

Permutation Permutation::transposition(std::size_t n, std::size_t i, std::size_t j) {
  IPG_CHECK(i < n && j < n && i != j, "transposition positions must be distinct and < n");
  std::vector<Pos> m(n);
  std::iota(m.begin(), m.end(), Pos{0});
  std::swap(m[i], m[j]);
  return Permutation(std::move(m));
}

Permutation Permutation::rotation(std::size_t n, std::size_t shift) {
  IPG_CHECK(n > 0, "rotation on empty domain");
  std::vector<Pos> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = static_cast<Pos>((i + shift) % n);
  }
  return Permutation(std::move(m));
}

Permutation Permutation::prefix_reversal(std::size_t n, std::size_t k) {
  IPG_CHECK(k <= n, "prefix reversal length exceeds domain");
  std::vector<Pos> m(n);
  std::iota(m.begin(), m.end(), Pos{0});
  std::reverse(m.begin(), m.begin() + static_cast<std::ptrdiff_t>(k));
  return Permutation(std::move(m));
}

Permutation Permutation::from_digits(std::string_view digits) {
  std::vector<Pos> m;
  m.reserve(digits.size());
  for (const char c : digits) {
    IPG_CHECK(c >= '1' && c <= '9', "digit notation supports symbols 1..9");
    m.push_back(static_cast<Pos>(c - '1'));
  }
  return Permutation(std::move(m));
}

bool Permutation::is_identity() const noexcept {
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_[i] != i) return false;
  }
  return true;
}

bool Permutation::is_involution() const noexcept {
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_[map_[i]] != i) return false;
  }
  return true;
}

Permutation Permutation::then(const Permutation& other) const {
  IPG_CHECK(size() == other.size(), "composing permutations of different sizes");
  // y = P(x): y[i] = x[p[i]];  z = Q(y): z[i] = y[q[i]] = x[p[q[i]]].
  std::vector<Pos> m(size());
  for (std::size_t i = 0; i < size(); ++i) m[i] = map_[other.map_[i]];
  return Permutation(std::move(m));
}

Permutation Permutation::inverse() const {
  std::vector<Pos> m(size());
  for (std::size_t i = 0; i < size(); ++i) m[map_[i]] = static_cast<Pos>(i);
  return Permutation(std::move(m));
}

unsigned Permutation::order() const {
  // lcm of cycle lengths.
  std::vector<bool> seen(size(), false);
  unsigned result = 1;
  for (std::size_t i = 0; i < size(); ++i) {
    if (seen[i]) continue;
    unsigned len = 0;
    for (std::size_t j = i; !seen[j]; j = map_[j]) {
      seen[j] = true;
      ++len;
    }
    result = std::lcm(result, len);
  }
  return result;
}

std::string Permutation::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) s += ' ';
    s += std::to_string(map_[i]);
  }
  s += ']';
  return s;
}

}  // namespace ipg::core
