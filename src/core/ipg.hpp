#pragma once
// The generic index-permutation graph engine.
//
// Given a seed label and a list of permutation generators, build_ipg()
// closes the seed under the generators by BFS and records the full
// adjacency structure, with every edge tagged by the generator that
// produced it. This is the model of §2 taken literally; the large-scale
// families use the tuple-coded construction in src/topology instead, and a
// test proves the two isomorphic on small instances.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/label.hpp"
#include "core/permutation.hpp"

namespace ipg::core {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A fully-materialized IPG.
struct Ipg {
  std::vector<Permutation> generators;
  std::vector<Label> labels;                  ///< labels[v] — BFS order, seed first
  std::unordered_map<Label, NodeId> index;    ///< inverse of labels
  std::vector<std::vector<NodeId>> neighbor;  ///< neighbor[v][g] = v after generator g

  std::size_t num_nodes() const noexcept { return labels.size(); }
  std::size_t num_generators() const noexcept { return generators.size(); }

  NodeId node_of(const Label& l) const {
    const auto it = index.find(l);
    return it == index.end() ? kInvalidNode : it->second;
  }

  /// True iff every generator's inverse is also a generator (then the edge
  /// set, viewed without generator tags, is symmetric).
  bool is_undirected() const;

  /// Number of undirected edges, counting each symmetric pair once and
  /// self-loops (generators fixing a label) not at all.
  std::size_t num_edges() const;
};

/// Closes @p seed under @p generators. Throws if the closure exceeds
/// @p max_nodes (protects against accidentally huge orbits).
Ipg build_ipg(const Label& seed, std::vector<Permutation> generators,
              std::size_t max_nodes = 2'000'000);

/// The worked example of §2: seed 123321 with generators 213456, 321456,
/// 456123 — a 36-node IPG. Provided so tests and docs mirror the paper.
Ipg section2_example();

}  // namespace ipg::core
