#pragma once
// Plain-text table rendering for the benchmark harnesses.
//
// Every experiment binary prints paper-style rows ("paper says X, we
// measured Y"); this keeps the formatting in one place and emits aligned
// ASCII plus optional CSV.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ipg::util {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Rows may be ragged; short rows are padded.
  void row(std::vector<std::string> cells);

  /// Convenience: formats each argument with to_cell().
  template <typename... Ts>
  void add(const Ts&... vals) {
    row({to_cell(vals)...});
  }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders comma-separated values (header first).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "2.50x" style ratio formatting used in comparison tables.
std::string format_ratio(double ratio);

}  // namespace ipg::util
