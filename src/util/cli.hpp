#pragma once
// Checked numeric parsing for the command-line tools (ipg_check,
// ipg_design, ipg_resilience). std::stoul/strtoull silently accept
// trailing garbage ("4x" -> 4), treat "-1" as a huge unsigned, and throw
// bare std::invalid_argument with no hint of which flag was malformed.
// These helpers parse the WHOLE string or fail, and the flag-aware wrapper
// prints an error that names the offending flag and the text it got.

#include <charconv>
#include <optional>
#include <ostream>
#include <string_view>

namespace ipg::util {

/// Parses the entire @p text as an unsigned decimal integer of type T.
/// Rejects empty input, signs, leading whitespace, trailing characters,
/// and values that overflow T.
template <typename T>
std::optional<T> parse_unsigned(std::string_view text) {
  T value{};
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value, 10);
  if (text.empty() || ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Parses the entire @p text as a finite decimal floating-point number.
inline std::optional<double> parse_double(std::string_view text) {
  double value{};
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (text.empty() || ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Flag-aware wrapper for tool argument loops: parses @p text (the flag's
/// value, possibly null when the flag was last on the command line) as an
/// unsigned T. On failure prints an error to @p err that names @p flag and
/// returns nullopt, so the caller can fall through to its usage path.
template <typename T>
std::optional<T> checked_flag_value(std::string_view flag, const char* text,
                                    std::ostream& err) {
  if (text == nullptr) {
    err << "error: " << flag << " needs a value\n";
    return std::nullopt;
  }
  const std::optional<T> v = parse_unsigned<T>(text);
  if (!v.has_value()) {
    err << "error: " << flag << " expects an unsigned integer, got '" << text
        << "'\n";
  }
  return v;
}

}  // namespace ipg::util
