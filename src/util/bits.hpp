#pragma once
// Small bit-manipulation helpers used throughout the library.
//
// All functions are constexpr and noexcept; they wrap <bit> where possible
// and add the handful of operations (mixed-radix digits, bit reversal) that
// the topology and algorithm layers need.

#include <bit>
#include <cstdint>
#include <type_traits>

namespace ipg::util {

/// True iff @p x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); precondition x > 0.
constexpr unsigned floor_log2(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)); precondition x > 0.
constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : floor_log2(x - 1) + 1u;
}

/// Exact log2 of a power of two.
constexpr unsigned exact_log2(std::uint64_t x) noexcept {
  return floor_log2(x);
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::popcount(x));
}

/// Reverse the low @p bits bits of @p x (bit 0 <-> bit bits-1).
constexpr std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

/// Integer power base^exp (no overflow checking; callers validate sizes).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t r = 1;
  while (exp != 0) {
    if (exp & 1u) r *= base;
    base *= base;
    exp >>= 1u;
  }
  return r;
}

/// Extract digit @p i of @p x in radix @p m (digit 0 is least significant).
constexpr std::uint64_t radix_digit(std::uint64_t x, std::uint64_t m,
                                    unsigned i) noexcept {
  for (unsigned k = 0; k < i; ++k) x /= m;
  return x % m;
}

/// Replace digit @p i of @p x in radix @p m with @p d.
constexpr std::uint64_t with_radix_digit(std::uint64_t x, std::uint64_t m,
                                         unsigned i, std::uint64_t d) noexcept {
  std::uint64_t scale = 1;
  for (unsigned k = 0; k < i; ++k) scale *= m;
  const std::uint64_t old = (x / scale) % m;
  return x + (d - old) * scale;  // unsigned wrap-around is well-defined
}

}  // namespace ipg::util
