#include "util/thread_pool.hpp"

#include <algorithm>

namespace ipg::util {

namespace {
// Set for the lifetime of every worker thread (workers only ever run pool
// tasks, so a flag per thread is enough — no nesting counter needed).
thread_local bool tls_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool ThreadPool::in_worker() noexcept { return tls_in_pool_worker; }

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be set
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool& pool) {
  parallel_for_chunked(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      pool);
}

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          ThreadPool& pool) {
  if (begin >= end) return;
  if (ThreadPool::in_worker()) {
    // Nested use from inside a pool task: pool.wait() from a worker would
    // deadlock (this task counts toward in_flight_), and fanning out again
    // would oversubscribe the machine (outer jobs x inner chunks). Run the
    // whole range inline on the calling worker instead.
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t target_chunks = pool.size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, n / std::max<std::size_t>(1, target_chunks));
  if (n <= chunk) {  // not worth dispatching
    fn(begin, end);
    return;
  }
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&fn, lo, hi] { fn(lo, hi); });
  }
  pool.wait();
}

}  // namespace ipg::util
