#pragma once
// Precondition checking.
//
// IPG_CHECK is always on (cheap, used for constructor/argument validation
// and invariants whose failure means a logic error in the caller);
// IPG_DCHECK compiles away in release builds and guards hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ipg::util {

[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace ipg::util

#define IPG_CHECK(expr, msg)                                            \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ipg::util::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define IPG_DCHECK(expr, msg) \
  do {                        \
  } while (false)
#else
#define IPG_DCHECK(expr, msg) IPG_CHECK(expr, msg)
#endif
