#pragma once
// Streaming JSON emission for the benchmark and tool harnesses.
//
// Every experiment binary writes a machine-readable report (BENCH_*.json,
// CONFORMANCE.json, ...) next to its human-readable table. The emission
// used to be hand-rolled per binary; this writer centralizes the two rules
// those reports share:
//   - JSON has no NaN/inf. A metric that is undefined (nothing delivered,
//     no baseline) is either emitted as null (field) or omitted entirely
//     (field_if_finite) — never as a 0 that would read as a perfect score.
//   - Commas are structural. The writer tracks element counts per nesting
//     level, so callers never juggle "is this the last row" flags.
//
// The writer is sequential and unbuffered: values stream straight to the
// ostream in call order, with two-space indentation per level.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ipg::util {

class JsonWriter {
 public:
  /// Writes to @p os; the stream must outlive the writer. Top-level value
  /// starts with begin_object() or begin_array().
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  // Containers. In an object, pass the member name to the begin_* call; in
  // an array (or at top level) use the unnamed overloads.
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  // Object members.
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, bool value);
  /// Non-finite doubles are emitted as null.
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, std::uint32_t value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  JsonWriter& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  /// Omits the member entirely when @p value is NaN/inf (the BENCH_faults
  /// convention for undefined latencies, preserved from PR 3).
  JsonWriter& field_if_finite(std::string_view key, double value);

  // Array elements.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);  ///< null when non-finite
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// True once the top-level container has been closed.
  bool done() const noexcept { return depth_.empty() && started_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void prefix();            ///< comma/newline/indent before a new element
  void key_prefix(std::string_view key);
  void write_string(std::string_view s);
  void write_double(double v);

  std::ostream& os_;
  std::vector<std::pair<Scope, std::size_t>> depth_;  ///< (scope, elements)
  bool started_ = false;
};

}  // namespace ipg::util
