#include "util/json.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ipg::util {

void JsonWriter::prefix() {
  if (depth_.empty()) {
    IPG_CHECK(!started_, "JSON document already complete");
    started_ = true;
    return;
  }
  auto& [scope, count] = depth_.back();
  if (count++ > 0) os_ << ',';
  os_ << '\n';
  for (std::size_t i = 0; i < depth_.size(); ++i) os_ << "  ";
}

void JsonWriter::key_prefix(std::string_view key) {
  IPG_CHECK(!depth_.empty() && depth_.back().first == Scope::kObject,
            "named members belong inside an object");
  prefix();
  write_string(key);
  os_ << ": ";
}

void JsonWriter::write_string(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::write_double(double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os_ << "null";  // JSON has no NaN/inf; null keeps "undefined" visible
  } else {
    os_ << v;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  os_ << '{';
  depth_.emplace_back(Scope::kObject, 0);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  os_ << '{';
  depth_.emplace_back(Scope::kObject, 0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  IPG_CHECK(!depth_.empty() && depth_.back().first == Scope::kObject,
            "end_object without matching begin_object");
  const bool had_elements = depth_.back().second > 0;
  depth_.pop_back();
  if (had_elements) {
    os_ << '\n';
    for (std::size_t i = 0; i < depth_.size(); ++i) os_ << "  ";
  }
  os_ << '}';
  if (depth_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  os_ << '[';
  depth_.emplace_back(Scope::kArray, 0);
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  os_ << '[';
  depth_.emplace_back(Scope::kArray, 0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  IPG_CHECK(!depth_.empty() && depth_.back().first == Scope::kArray,
            "end_array without matching begin_array");
  const bool had_elements = depth_.back().second > 0;
  depth_.pop_back();
  if (had_elements) {
    os_ << '\n';
    for (std::size_t i = 0; i < depth_.size(); ++i) os_ << "  ";
  }
  os_ << ']';
  if (depth_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view v) {
  key_prefix(key);
  write_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool v) {
  key_prefix(key);
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double v) {
  key_prefix(key);
  write_double(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t v) {
  key_prefix(key);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::field_if_finite(std::string_view key, double v) {
  if (std::isnan(v) || std::isinf(v)) return *this;
  return field(key, v);
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix();
  write_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  write_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace ipg::util
