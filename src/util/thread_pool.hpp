#pragma once
// Work-stealing-free, blocking-queue thread pool plus a parallel_for helper.
//
// Metric computations (all-pairs BFS over tens of thousands of sources) and
// Monte-Carlo experiments are embarrassingly parallel across sources; this
// pool keeps them simple. Exceptions thrown by tasks are captured and
// rethrown on wait() so callers never lose failures.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ipg::util {

class ThreadPool {
 public:
  /// Creates @p num_threads workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker thread.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed. Rethrows the first
  /// exception raised by any task (others are discarded).
  void wait();

  std::size_t size() const noexcept { return workers_.size(); }

  /// True on a thread currently executing a ThreadPool task (any pool).
  /// Nested parallel constructs must not block on a pool from inside one of
  /// its workers (wait() would deadlock) nor fan out again (jobs x inner
  /// tasks oversubscribes the machine); parallel_for and the sharded
  /// simulation engine check this and fall back to running inline.
  static bool in_worker() noexcept;

  /// Process-wide pool, sized to the machine. Lazily constructed.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// Work is split into contiguous chunks, ~4 per worker, to amortize
/// scheduling while keeping load balance for skewed iterations.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool& pool = ThreadPool::global());

/// Chunked variant: fn(chunk_begin, chunk_end) — lets callers keep
/// per-thread scratch buffers alive across a whole chunk.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          ThreadPool& pool = ThreadPool::global());

}  // namespace ipg::util
