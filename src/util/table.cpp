#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ipg::util {

void Table::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void Table::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::to_cell(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    os << "| ";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << cell << std::string(width[c] - cell.size(), ' ')
         << (c + 1 == cols ? " |" : " | ");
    }
    os << '\n';
  };

  std::size_t total = 4;  // "| " + " |"
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 == cols ? 0 : 3);

  if (!title_.empty()) os << title_ << '\n';
  os << std::string(total, '-') << '\n';
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os << std::string(total, '-') << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string format_ratio(double ratio) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

}  // namespace ipg::util
