#pragma once
// Deterministic, fast pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across runs, so all random
// choices in the library flow through Xoshiro256** seeded via SplitMix64.
// The generator satisfies std::uniform_random_bit_generator and can be used
// with <random> distributions, but the helpers below avoid libstdc++
// distribution implementation differences for the common cases.

#include <cstdint>
#include <limits>

namespace ipg::util {

/// SplitMix64 step; used for seeding and as a standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives an independent seed for a named substream from a base seed.
///
/// Splitting one experiment seed into per-node (or per-domain) streams keeps
/// every stream's draws independent of how many values any *other* stream
/// consumes — a prerequisite for domain-decomposed simulation, where the
/// consumption order across threads is not globally serialized. The salt is
/// the stream's identity (node id, domain id, ...); two SplitMix64 steps keep
/// nearby salts statistically uncorrelated.
constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                    std::uint64_t salt) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ull * (salt + 1));
  const std::uint64_t a = splitmix64(s);
  return a ^ splitmix64(s);
}

/// Xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1234abcdull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift (unbiased
  /// enough for simulation purposes; bound must be nonzero).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    const auto x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability @p p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace ipg::util
