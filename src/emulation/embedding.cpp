#include "emulation/embedding.hpp"

#include <algorithm>
#include <vector>

namespace ipg::emulation {

using topology::NodeId;

EmbeddingMetrics measure_embedding(const SdcEmulation& emu) {
  const auto& s = emu.ipg();
  const std::size_t num_channels = s.num_nodes() * s.num_generators();
  std::vector<std::uint32_t> total(num_channels, 0);
  std::vector<std::uint32_t> per_dim(num_channels, 0);
  std::vector<std::uint32_t> per_dim_link(num_channels, 0);

  // Canonical undirected key for channel (v, g): the directed channel of
  // the lower-numbered endpoint.
  auto link_key = [&s](NodeId v, std::size_t g, NodeId u) {
    if (v <= u) return static_cast<std::size_t>(v) * s.num_generators() + g;
    return static_cast<std::size_t>(u) * s.num_generators() + s.inverse_generator(g);
  };

  EmbeddingMetrics out;
  const std::size_t n = s.num_nucleus_generators();
  for (std::size_t j = 0; j < emu.num_dims(); ++j) {
    const auto& word = emu.word_for_dim(j);
    out.dilation = std::max(out.dilation, word.size());
    std::fill(per_dim.begin(), per_dim.end(), 0u);
    std::fill(per_dim_link.begin(), per_dim_link.end(), 0u);
    // An involution dimension's HPN edge {v, v'} is embedded once (the
    // reverse arc is the same edge); non-involution dimensions' arcs each
    // get their own path (the reverse arc belongs to the inverse dim).
    const bool involution = s.inverse_generator(j % n) == j % n;
    for (NodeId v = 0; v < s.num_nodes(); ++v) {
      if (involution) {
        NodeId end = v;
        for (const std::size_t g : word) end = s.apply(end, g);
        if (end < v) continue;  // counted from the other endpoint
      }
      NodeId cur = v;
      for (const std::size_t g : word) {
        const NodeId nxt = s.apply(cur, g);
        const std::size_t channel = cur * s.num_generators() + g;
        ++per_dim[channel];
        ++total[channel];
        ++per_dim_link[link_key(cur, g, nxt)];
        cur = nxt;
      }
    }
    const auto it = std::max_element(per_dim.begin(), per_dim.end());
    out.per_dim_congestion =
        std::max(out.per_dim_congestion, static_cast<std::size_t>(*it));
    const auto itl = std::max_element(per_dim_link.begin(), per_dim_link.end());
    out.per_dim_link_congestion =
        std::max(out.per_dim_link_congestion, static_cast<std::size_t>(*itl));
  }
  const auto it = std::max_element(total.begin(), total.end());
  out.total_congestion = static_cast<std::size_t>(*it);
  return out;
}

}  // namespace ipg::emulation
