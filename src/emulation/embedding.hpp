#pragma once
// Embedding metrics for the HPN -> super-IPG embedding induced by SDC
// emulation words (Corollary 3.3 and the congestion remarks of §3.1/§4.1).
//
// Each HPN edge (v, v') of dimension j maps to the path obtained by
// following word_for_dim(j) from v. Dilation is the longest path; the
// congestion of a directed channel (node, generator) is the number of
// embedded paths crossing it — measured per dimension (the quantity the
// paper bounds by 2) and in total over all dimensions.

#include <cstddef>

#include "emulation/sdc.hpp"

namespace ipg::emulation {

struct EmbeddingMetrics {
  std::size_t dilation = 0;
  /// max over dimensions of max *directed-channel* congestion: 2 for
  /// involution super-generators (HSN/SFN reuse the same channel for bring
  /// and restore), 1 for complete-CN (L_i out, L_{l-i} back).
  std::size_t per_dim_congestion = 0;
  /// max over dimensions of max *undirected-link* congestion — the paper's
  /// "congestion is only 2" quantity; 2 for all three families.
  std::size_t per_dim_link_congestion = 0;
  /// max directed-channel congestion with all l*n dimensions at once.
  std::size_t total_congestion = 0;
};

EmbeddingMetrics measure_embedding(const SdcEmulation& emu);

}  // namespace ipg::emulation
