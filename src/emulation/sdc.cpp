#include "emulation/sdc.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ipg::emulation {

using topology::Arrangement;
using topology::NodeId;
using topology::SuperIpg;

SdcEmulation::SdcEmulation(const SuperIpg& ipg) : ipg_(&ipg) {
  const std::size_t l = ipg.levels();
  const std::size_t n = ipg.num_nucleus_generators();
  Arrangement id(l);
  std::iota(id.begin(), id.end(), std::uint8_t{0});

  words_.reserve(l * n);
  for (std::size_t j = 0; j < l * n; ++j) {
    const std::size_t j1 = j / n;  // super-symbol (level)
    const std::size_t j0 = j % n;  // nucleus generator
    std::vector<std::size_t> word;
    if (j1 == 0) {
      word.push_back(j0);
    } else {
      const auto bring = ipg.word_to_front(id, static_cast<std::uint8_t>(j1));
      Arrangement mid = id;
      for (const std::size_t s : bring) mid = ipg.apply_to_arrangement(mid, s);
      const auto restore = ipg.word_to_arrangement(mid, id);
      for (const std::size_t s : bring) {
        word.push_back(ipg.num_nucleus_generators() + s);
      }
      word.push_back(j0);
      for (const std::size_t s : restore) {
        word.push_back(ipg.num_nucleus_generators() + s);
      }
    }
    slowdown_ = std::max(slowdown_, word.size());
    words_.push_back(std::move(word));
  }
}

void SdcEmulation::verify() const {
  const SuperIpg& s = *ipg_;
  const std::size_t n = s.num_nucleus_generators();
  for (std::size_t j = 0; j < num_dims(); ++j) {
    const std::size_t j1 = j / n;
    const std::size_t j0 = j % n;
    for (NodeId v = 0; v < s.num_nodes(); ++v) {
      NodeId u = v;
      for (const std::size_t g : words_[j]) u = s.apply(u, g);
      // Expected: only level j1's group moves, by nucleus generator j0.
      NodeId expected = v;
      const auto coord = static_cast<NodeId>(s.group(v, j1));
      const NodeId moved = s.nucleus().apply(coord, j0);
      std::vector<NodeId> groups(s.levels());
      for (std::size_t i = 0; i < s.levels(); ++i) {
        groups[i] = static_cast<NodeId>(s.group(v, i));
      }
      groups[j1] = moved;
      expected = s.make_node(groups);
      IPG_CHECK(u == expected, "SDC emulation word does not realize its HPN dimension");
    }
  }
}

}  // namespace ipg::emulation
