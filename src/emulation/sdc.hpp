#pragma once
// Single-dimension-communication emulation of HPN(l,G) on a super-IPG
// (Theorem 3.1, Corollaries 3.2–3.4).
//
// Each HPN dimension j decomposes as (level j1, factor generator j0); the
// emulating word brings super-symbol j1 to the leftmost position, applies
// nucleus generator j0, and restores the arrangement. The slowdown is the
// longest word, t+1; the embedding of HPN(l,G) obtained by reading each
// word as a path has dilation t+1 and per-dimension congestion 2 for
// HSN / complete-CN / SFN.

#include <cstddef>
#include <vector>

#include "topology/super_ipg.hpp"

namespace ipg::emulation {

class SdcEmulation {
 public:
  /// Builds emulation words for every dimension of HPN(l, nucleus(ipg)).
  explicit SdcEmulation(const topology::SuperIpg& ipg);

  const topology::SuperIpg& ipg() const noexcept { return *ipg_; }

  std::size_t num_dims() const noexcept { return words_.size(); }

  /// The generator word (global generator indices) emulating dimension j.
  const std::vector<std::size_t>& word_for_dim(std::size_t j) const {
    return words_[j];
  }

  /// Measured slowdown: the longest emulation word (= t + 1, Thm 3.1).
  std::size_t slowdown() const noexcept { return slowdown_; }

  /// Verifies that following word_for_dim(j) from every node lands exactly
  /// where HPN dimension j would move it; throws on violation. (Called by
  /// tests; cheap enough to run on every construction in debug builds.)
  void verify() const;

 private:
  const topology::SuperIpg* ipg_;
  std::vector<std::vector<std::size_t>> words_;
  std::size_t slowdown_ = 0;
};

}  // namespace ipg::emulation
