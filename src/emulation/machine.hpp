#pragma once
// Lock-step data machines: execute generator-level data movements on a
// super-IPG or an HPN while counting communication steps, split into
// on-chip and off-chip (one chip per base nucleus, §4).
//
// The machines move *data items* among nodes. Each node holds one item;
// a generator step is a synchronous permutation routing step (every node
// forwards its item along the same generator link), and a dimension step
// is an all-port gather among the nodes of one base-nucleus dimension
// followed by a local combine. The machine tracks, for every node, the
// *original index* of the item it currently holds, so combine callbacks can
// compute twiddles / compare directions / prefix offsets from global
// addresses alone — and so tests can verify data ends up where Theorem 3.5
// says it must.

#include <atomic>
#include <cstdint>
#include <vector>

#include "topology/hpn.hpp"
#include "topology/super_ipg.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ipg::emulation {

using topology::NodeId;

/// Communication/computation accounting shared by both machines.
struct StepCounts {
  std::size_t comm_steps = 0;          ///< lock-step communication phases
  std::size_t offchip_steps = 0;       ///< phases using off-chip links
  std::size_t onchip_steps = 0;        ///< phases confined to chips
  std::size_t offchip_transmissions = 0;  ///< item moves crossing chips
  std::size_t onchip_transmissions = 0;   ///< item moves within a chip
  std::size_t compute_steps = 0;       ///< per-node combine operations
};

/// Group-combine callback: values[j] is the item of original index
/// origs[j]; origs are sorted ascending and differ in exactly one
/// radix-|origs| digit. The callback overwrites values in place.
template <typename T>
using GroupOp = void (*)(std::span<const std::size_t> origs, std::span<T> values,
                         void* ctx);

template <typename T>
class SuperIpgMachine {
 public:
  SuperIpgMachine(const topology::SuperIpg& ipg, std::vector<T> initial)
      : ipg_(ipg),
        base_(&topology::base_nucleus(ipg)),
        n_base_gens_(topology::num_base_nucleus_generators(ipg)),
        data_(std::move(initial)),
        orig_(ipg.num_nodes()),
        scratch_data_(ipg.num_nodes()),
        scratch_orig_(ipg.num_nodes()) {
    IPG_CHECK(data_.size() == ipg_.num_nodes(), "one item per node required");
    for (NodeId v = 0; v < orig_.size(); ++v) orig_[v] = v;
  }

  /// Synchronous permutation step along generator @p gen. The generator is
  /// a bijection, so every destination slot is written exactly once — the
  /// move parallelizes over nodes with no contention.
  void step_generator(std::size_t gen) {
    const bool offchip = gen >= n_base_gens_;
    std::atomic<std::size_t> moved{0};
    util::parallel_for_chunked(
        0, ipg_.num_nodes(), [&](std::size_t lo, std::size_t hi) {
          std::size_t local_moved = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            const NodeId u = ipg_.apply(static_cast<NodeId>(v), gen);
            scratch_data_[u] = std::move(data_[v]);
            scratch_orig_[u] = orig_[v];
            if (u != v) ++local_moved;
          }
          moved.fetch_add(local_moved, std::memory_order_relaxed);
        });
    data_.swap(scratch_data_);
    orig_.swap(scratch_orig_);
    ++counts_.comm_steps;
    if (offchip) {
      counts_.offchip_transmissions += moved.load();
      ++counts_.offchip_steps;
    } else {
      counts_.onchip_transmissions += moved.load();
      ++counts_.onchip_steps;
    }
  }

  /// All-port gather + combine within base-nucleus dimension @p dim: every
  /// group of radix(dim) nodes that agree everywhere except that digit
  /// exchanges items (one on-chip comm step) and applies @p op. Groups are
  /// disjoint, so they run in parallel; @p op must therefore be
  /// re-entrant (all the library's ops are pure functions of their group).
  template <typename Op>
  void step_base_dimension(std::size_t dim, Op&& op) {
    const std::size_t radix = base_->radix(dim);
    IPG_CHECK(radix >= 2, "base nucleus is not dimensionizable");
    const std::size_t mb = base_->num_nodes();
    std::atomic<std::size_t> groups{0};
    util::parallel_for_chunked(
        0, ipg_.num_nodes(), [&](std::size_t lo, std::size_t hi) {
          std::vector<std::size_t> origs(radix);
          std::vector<T> values(radix);
          std::vector<NodeId> members(radix);
          std::vector<std::size_t> order(radix);
          std::size_t local_groups = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            const auto b = static_cast<NodeId>(v % mb);
            if (base_->digit(b, dim) != 0) continue;
            for (std::size_t val = 0; val < radix; ++val) {
              members[val] =
                  static_cast<NodeId>(v) - b + base_->with_digit(b, dim, val);
            }
            // Present items in ascending original-index order.
            for (std::size_t j = 0; j < radix; ++j) order[j] = j;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t c) {
                        return orig_[members[a]] < orig_[members[c]];
                      });
            for (std::size_t j = 0; j < radix; ++j) {
              origs[j] = orig_[members[order[j]]];
              values[j] = data_[members[order[j]]];
            }
            op(std::span<const std::size_t>(origs), std::span<T>(values));
            for (std::size_t j = 0; j < radix; ++j) {
              data_[members[order[j]]] = values[j];
            }
            ++local_groups;
          }
          groups.fetch_add(local_groups, std::memory_order_relaxed);
        });
    counts_.onchip_transmissions += groups.load() * radix * (radix - 1);
    ++counts_.comm_steps;
    ++counts_.onchip_steps;
    counts_.compute_steps += radix - 1;
  }

  const T& value_at_node(NodeId v) const { return data_[v]; }
  NodeId origin_at_node(NodeId v) const { return orig_[v]; }

  /// Items indexed by their original position (wherever they now live).
  std::vector<T> values_by_origin() const {
    std::vector<T> out(data_.size());
    for (NodeId v = 0; v < data_.size(); ++v) out[orig_[v]] = data_[v];
    return out;
  }

  /// True iff every item is back at its original node.
  bool is_home() const {
    for (NodeId v = 0; v < orig_.size(); ++v) {
      if (orig_[v] != v) return false;
    }
    return true;
  }

  const StepCounts& counts() const noexcept { return counts_; }

 private:
  const topology::SuperIpg& ipg_;
  const topology::Nucleus* base_;
  std::size_t n_base_gens_;
  std::vector<T> data_;
  std::vector<NodeId> orig_;
  std::vector<T> scratch_data_;
  std::vector<NodeId> scratch_orig_;
  StepCounts counts_;
};

/// Baseline machine on an HPN (hypercube, generalized hypercube, torus):
/// items never migrate — dimension exchanges happen in place. A clustering
/// decides which dimension steps are off-chip.
template <typename T>
class HpnMachine {
 public:
  HpnMachine(const topology::Hpn& hpn, topology::Clustering clustering,
             std::vector<T> initial)
      : hpn_(hpn), clustering_(std::move(clustering)), data_(std::move(initial)) {
    IPG_CHECK(data_.size() == hpn_.num_nodes(), "one item per node required");
    IPG_CHECK(clustering_.num_nodes() == hpn_.num_nodes(),
              "clustering does not match HPN");
  }

  /// All-port gather + combine within dimension group (@p level, @p dim)
  /// of the factor graph.
  template <typename Op>
  void step_dimension(std::size_t level, std::size_t dim, Op&& op) {
    const auto& factor = hpn_.factor();
    const std::size_t radix = factor.radix(dim);
    IPG_CHECK(radix >= 2, "factor graph is not dimensionizable");
    std::vector<std::size_t> origs(radix);
    std::vector<T> values(radix);
    std::vector<NodeId> members(radix);
    bool phase_offchip = false;
    for (NodeId v = 0; v < hpn_.num_nodes(); ++v) {
      const auto coord = static_cast<NodeId>(hpn_.coordinate(v, level));
      if (factor.digit(coord, dim) != 0) continue;
      bool group_offchip = false;
      for (std::size_t val = 0; val < radix; ++val) {
        const NodeId moved = factor.with_digit(coord, dim, val);
        members[val] =
            static_cast<NodeId>(v + (static_cast<std::uint64_t>(moved) - coord) *
                                        scale(level));
        origs[val] = members[val];
        values[val] = data_[members[val]];
        if (clustering_.is_intercluster(v, members[val])) group_offchip = true;
      }
      op(std::span<const std::size_t>(origs), std::span<T>(values));
      for (std::size_t val = 0; val < radix; ++val) {
        data_[members[val]] = values[val];
      }
      const std::size_t moves = radix * (radix - 1);
      if (group_offchip) {
        phase_offchip = true;
        counts_.offchip_transmissions += moves;
      } else {
        counts_.onchip_transmissions += moves;
      }
    }
    ++counts_.comm_steps;
    if (phase_offchip) {
      ++counts_.offchip_steps;
    } else {
      ++counts_.onchip_steps;
    }
    counts_.compute_steps += radix - 1;
  }

  const T& value_at_node(NodeId v) const { return data_[v]; }
  std::vector<T> values_by_origin() const { return data_; }
  const StepCounts& counts() const noexcept { return counts_; }

 private:
  std::size_t scale(std::size_t level) const {
    std::size_t s = 1;
    for (std::size_t i = 0; i < level; ++i) s *= hpn_.factor().num_nodes();
    return s;
  }

  const topology::Hpn& hpn_;
  topology::Clustering clustering_;
  std::vector<T> data_;
  StepCounts counts_;
};

}  // namespace ipg::emulation
