#pragma once
// All-port emulation scheduling (Theorem 3.8, Figure 1).
//
// Emulating HPN(l,G) under the all-port model performs, for every HPN
// dimension j at once, the 3-step word S_{j1} -> N_{j0} -> S_{j1}^{-1}
// (dimensions of level 0 need only N_{j0}). A schedule assigns each step a
// time row such that no generator is used twice in a row — generators are
// physical links, used by every node simultaneously in a lock-step wave.
// Theorem 3.8: a schedule of makespan max(2n, l+1) exists.
//
// For families whose super-generators are involutions (HSN: T_i^{-1} = T_i)
// a wave along S_i and a wave along S_i^{-1} would use the same directed
// links, so S_i and S_i^{-1} share one resource; with that accounting the
// link utilization of the (l=5, n=3) schedule is 39/42 ~ 93%, the figure
// the paper quotes for Figure 1b. Families with distinct inverses
// (complete-CN) may schedule them independently (shared_inverse = false).
//
// The schedule is found by a randomized-restart greedy over time rows with
// resource-slack pruning; verify_allport_schedule() checks every claimed
// property, so a returned schedule is correct by construction.

#include <cstddef>
#include <string>
#include <vector>

namespace ipg::emulation {

struct AllPortSchedule {
  std::size_t levels = 0;        ///< l
  std::size_t nucleus_gens = 0;  ///< n
  bool shared_inverse = true;
  std::size_t makespan = 0;

  /// Per HPN dimension j (0-based, j < l*n): time rows (1-based) of the
  /// three steps; bring == restore == 0 for level-0 dimensions.
  struct DimSchedule {
    std::size_t bring = 0;
    std::size_t nucleus = 0;
    std::size_t restore = 0;
  };
  std::vector<DimSchedule> dims;

  std::size_t num_dims() const noexcept { return dims.size(); }

  /// Fraction of link-resource slots busy over the makespan (the paper's
  /// utilization metric: tasks / (resources * makespan)).
  double utilization() const;

  /// Figure-1 style grid: rows = time steps, columns = HPN dimensions,
  /// entries like "N2", "S3", "S3'" (S3' denotes the inverse).
  std::string to_figure() const;
};

/// Theorem 3.8's bound: max(2n, l+1).
constexpr std::size_t allport_bound(std::size_t l, std::size_t n) {
  return 2 * n > l + 1 ? 2 * n : l + 1;
}

/// Builds a schedule with makespan exactly allport_bound(l, n); throws if
/// the search fails (not observed for any l in [2,12], n in [1,6]).
AllPortSchedule build_allport_schedule(std::size_t l, std::size_t n,
                                       bool shared_inverse = true);

/// Checks resource exclusivity per row, chain ordering, completeness, and
/// the makespan; throws std::invalid_argument on any violation.
void verify_allport_schedule(const AllPortSchedule& s);

}  // namespace ipg::emulation
