#include "emulation/allport.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::emulation {

namespace {

// Resource ids: 0..n-1 = N_k; n + (i-1) = S_i (levels i = 1..l-1);
// when inverses are separate, n + (l-1) + (i-1) = S_i^{-1}.
struct ResourceModel {
  std::size_t l, n;
  bool shared;
  std::size_t count() const { return n + (shared ? 1 : 2) * (l - 1); }
  std::size_t nucleus(std::size_t k) const { return k; }
  std::size_t bring(std::size_t level) const { return n + (level - 1); }
  std::size_t restore(std::size_t level) const {
    return shared ? n + (level - 1) : n + (l - 1) + (level - 1);
  }
};

/// One randomized greedy pass; returns true on success and fills `dims`.
bool greedy_attempt(const ResourceModel& rm, std::size_t target,
                    util::Xoshiro256& rng,
                    std::vector<AllPortSchedule::DimSchedule>& dims) {
  const std::size_t l = rm.l, n = rm.n;
  const std::size_t num_dims = l * n;
  dims.assign(num_dims, {});

  // stage[j]: 0 = needs bring, 1 = needs nucleus, 2 = needs restore, 3 done.
  std::vector<int> stage(num_dims);
  for (std::size_t j = 0; j < num_dims; ++j) stage[j] = j < n ? 1 : 0;
  // Row at which the previous stage of dim j completed (0 = ready now).
  std::vector<std::size_t> prev_row(num_dims, 0);
  // Remaining load per resource.
  std::vector<std::size_t> load(rm.count(), 0);
  for (std::size_t j = 0; j < num_dims; ++j) {
    const std::size_t level = j / n;
    ++load[rm.nucleus(j % n)];
    if (level > 0) {
      ++load[rm.bring(level)];
      ++load[rm.restore(level)];
    }
  }

  std::size_t remaining = 0;
  for (const auto x : load) remaining += x;

  for (std::size_t row = 1; row <= target && remaining > 0; ++row) {
    // Candidate tasks per resource for this row.
    std::vector<std::vector<std::size_t>> cand(rm.count());
    for (std::size_t j = 0; j < num_dims; ++j) {
      if (stage[j] == 3 || prev_row[j] >= row) continue;
      const std::size_t level = j / n;
      const std::size_t res = stage[j] == 0   ? rm.bring(level)
                              : stage[j] == 1 ? rm.nucleus(j % n)
                                              : rm.restore(level);
      cand[res].push_back(j);
    }
    std::vector<std::uint8_t> used(rm.count(), 0);
    // Work-conserving: every resource with a candidate runs one. Priority:
    // earlier pipeline stage first (fill the pipe), random tiebreak.
    for (std::size_t res = 0; res < rm.count(); ++res) {
      if (cand[res].empty()) continue;
      auto& c = cand[res];
      // Shuffle, then stable-sort by stage so ties are random.
      for (std::size_t i = c.size(); i > 1; --i) {
        std::swap(c[i - 1], c[rng.below(i)]);
      }
      std::stable_sort(c.begin(), c.end(), [&](std::size_t a, std::size_t b) {
        return stage[a] < stage[b];
      });
      // For a shared S resource a restore competes with brings; keep the
      // chosen one only if the other kind still has slack afterwards.
      const std::size_t j = c.front();
      used[res] = 1;
      switch (stage[j]) {
        case 0: dims[j].bring = row; break;
        case 1: dims[j].nucleus = row; break;
        default: dims[j].restore = row; break;
      }
      // Level-0 dimensions are complete after their single nucleus step.
      stage[j] = (j / n == 0) ? 3 : stage[j] + 1;
      prev_row[j] = row;
      --load[res];
      --remaining;
    }
    // Slack pruning: every resource must still fit its remaining load.
    for (std::size_t res = 0; res < rm.count(); ++res) {
      if (load[res] > target - row) return false;
    }
    // Chain pruning: an unfinished dim needs one row per remaining stage.
    for (std::size_t j = 0; j < num_dims; ++j) {
      if (stage[j] == 3) continue;
      const auto needed =
          j / n == 0 ? std::size_t{1} : static_cast<std::size_t>(3 - stage[j]);
      const std::size_t start = std::max(prev_row[j] + 1, row + 1);
      if (start + needed - 1 > target) return false;
    }
  }
  return remaining == 0;
}

}  // namespace

AllPortSchedule build_allport_schedule(std::size_t l, std::size_t n,
                                       bool shared_inverse) {
  IPG_CHECK(l >= 2 && n >= 1, "need l >= 2 levels and n >= 1 nucleus generators");
  const ResourceModel rm{l, n, shared_inverse};
  const std::size_t target = allport_bound(l, n);

  AllPortSchedule sched;
  sched.levels = l;
  sched.nucleus_gens = n;
  sched.shared_inverse = shared_inverse;
  sched.makespan = target;

  for (std::uint64_t seed = 1; seed <= 4000; ++seed) {
    util::Xoshiro256 rng(seed * 0x9e3779b9ull);
    if (greedy_attempt(rm, target, rng, sched.dims)) {
      verify_allport_schedule(sched);
      return sched;
    }
  }
  IPG_CHECK(false, "all-port schedule search failed to meet the Theorem 3.8 bound");
  return sched;
}

void verify_allport_schedule(const AllPortSchedule& s) {
  const std::size_t l = s.levels, n = s.nucleus_gens;
  const ResourceModel rm{l, n, s.shared_inverse};
  IPG_CHECK(s.dims.size() == l * n, "schedule has wrong dimension count");
  std::vector<std::vector<std::uint8_t>> busy(s.makespan + 1,
                                              std::vector<std::uint8_t>(rm.count(), 0));
  auto occupy = [&](std::size_t row, std::size_t res) {
    IPG_CHECK(row >= 1 && row <= s.makespan, "schedule row out of range");
    IPG_CHECK(!busy[row][res], "generator used twice in one row");
    busy[row][res] = 1;
  };
  for (std::size_t j = 0; j < s.dims.size(); ++j) {
    const auto& d = s.dims[j];
    const std::size_t level = j / n;
    IPG_CHECK(d.nucleus >= 1, "dimension missing its nucleus step");
    occupy(d.nucleus, rm.nucleus(j % n));
    if (level == 0) {
      IPG_CHECK(d.bring == 0 && d.restore == 0,
                "level-0 dimensions need no super-generator steps");
    } else {
      IPG_CHECK(d.bring >= 1 && d.restore >= 1, "dimension missing super steps");
      IPG_CHECK(d.bring < d.nucleus && d.nucleus < d.restore,
                "chain S -> N -> S^{-1} out of order");
      occupy(d.bring, rm.bring(level));
      occupy(d.restore, rm.restore(level));
    }
  }
}

double AllPortSchedule::utilization() const {
  const ResourceModel rm{levels, nucleus_gens, shared_inverse};
  std::size_t tasks = nucleus_gens;                          // level 0
  tasks += 3 * (levels - 1) * nucleus_gens;                  // chains
  return static_cast<double>(tasks) /
         (static_cast<double>(rm.count()) * static_cast<double>(makespan));
}

std::string AllPortSchedule::to_figure() const {
  const std::size_t n = nucleus_gens;
  std::ostringstream os;
  auto cell = [&](std::size_t row, std::size_t j) -> std::string {
    const auto& d = dims[j];
    if (d.nucleus == row) return "N" + std::to_string(j % n + 1);
    if (d.bring == row) return "S" + std::to_string(j / n + 1);
    if (d.restore == row) return "S" + std::to_string(j / n + 1) + "'";
    return "-";
  };
  os << "step |";
  for (std::size_t j = 0; j < dims.size(); ++j) {
    os << " d" << j + 1 << (j + 1 < 10 ? " " : "");
  }
  os << '\n';
  for (std::size_t row = 1; row <= makespan; ++row) {
    os << "  " << row << "  |";
    for (std::size_t j = 0; j < dims.size(); ++j) {
      std::string c = cell(row, j);
      c.resize(4, ' ');
      os << ' ' << c.substr(0, 3);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ipg::emulation
