// Conformance checks on the measured layer itself: the event simulator's
// latencies against routed-hop ground truth (plus kArena/kReference/
// kSharded engine equivalence), the LatencyHistogram percentile estimates
// against
// exact nearest-rank, and the sampled distance sweep against the exact
// all-pairs sweep on vertex-transitive instances.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conformance/families.hpp"
#include "conformance/internal.hpp"
#include "mcmp/capacity.hpp"
#include "metrics/distances.hpp"
#include "topology/named.hpp"
#include "sim/adaptive.hpp"
#include "sim/network.hpp"
#include "sim/observer.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace ipg::conformance::internal {

namespace {

using sim::NodeId;
using topology::Clustering;
using topology::Graph;

constexpr double kEps = 1e-9;

bool close(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) == std::isnan(b);
  return std::abs(a - b) <= kEps * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Per-packet trace: injection data, hop count, and delivery latency.
class PacketProbe final : public sim::SimObserver {
 public:
  struct Packet {
    NodeId src = 0;
    NodeId dst = 0;
    std::size_t hops = 0;
    double latency = -1;  ///< -1 until delivered
  };

  void on_inject(std::uint32_t packet, NodeId src, NodeId dst,
                 double /*time*/) override {
    if (packets_.size() <= packet) packets_.resize(packet + 1);
    packets_[packet].src = src;
    packets_[packet].dst = dst;
  }
  void on_hop(const sim::HopRecord& hop) override {
    ++packets_.at(hop.packet).hops;
  }
  void on_deliver(std::uint32_t packet, NodeId /*dst*/, double /*time*/,
                  double latency) override {
    packets_.at(packet).latency = latency;
  }

  const std::vector<Packet>& packets() const noexcept { return packets_; }

 private:
  std::vector<Packet> packets_;
};

/// Field-by-field SimResult comparison (engine-equivalence oracle).
std::string compare_results(const sim::SimResult& a, const sim::SimResult& b) {
  const std::map<std::string, std::pair<double, double>> fields = {
      {"packets_delivered",
       {static_cast<double>(a.packets_delivered),
        static_cast<double>(b.packets_delivered)}},
      {"makespan_cycles", {a.makespan_cycles, b.makespan_cycles}},
      {"avg_latency_cycles", {a.avg_latency_cycles, b.avg_latency_cycles}},
      {"p50_latency_cycles", {a.p50_latency_cycles, b.p50_latency_cycles}},
      {"p99_latency_cycles", {a.p99_latency_cycles, b.p99_latency_cycles}},
      {"max_latency_cycles", {a.max_latency_cycles, b.max_latency_cycles}},
      {"avg_hops", {a.avg_hops, b.avg_hops}},
      {"avg_offchip_hops", {a.avg_offchip_hops, b.avg_offchip_hops}},
      {"throughput",
       {a.throughput_flits_per_node_cycle, b.throughput_flits_per_node_cycle}},
      {"max_offchip_utilization",
       {a.max_offchip_utilization, b.max_offchip_utilization}},
      {"avg_offchip_utilization",
       {a.avg_offchip_utilization, b.avg_offchip_utilization}},
  };
  for (const auto& [name, pair] : fields) {
    if (pair.first != pair.second) {
      return detail("engines disagree on ", name, ": ", pair.first, " vs ",
                    pair.second);
    }
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// Simulator latency vs routed-hop ground truth
// ---------------------------------------------------------------------------

CheckSpec make_sim_latency_check() {
  CheckSpec spec;
  spec.id = "sim-latency";
  spec.claim =
      "every simulated packet takes at least its BFS-distance hops and at "
      "least the zero-load store-and-forward latency; SimResult aggregates "
      "match an independent per-packet observer, exact percentiles, and "
      "the reference and sharded engines bit for bit";
  spec.theorems = "§5 (simulation model), docs/OBSERVABILITY.md invariants";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;
    const double bw = 1.0;            // uniform link bandwidth (flits/cycle)
    const double length = 16;         // packet length (flits)
    const double link_lat = 1.0;

    auto sweep = plain_family_sweep(3, /*with_directed=*/false,
                                    /*with_two_level_classics=*/false);
    for (const auto& inst : sweep) {
      if (inst.ipg->num_nodes() > 96) continue;  // keep the batch runs quick
      const Graph g = inst.ipg->to_graph();
      const Clustering chips = chips_of(inst);
      const sim::SimNetwork net =
          sim::SimNetwork::with_uniform_bandwidth(g, chips, bw);
      const sim::Router route = sim::super_ipg_router(*inst.ipg);

      // BFS ground truth from every source (instances are small).
      std::vector<std::vector<std::uint32_t>> dist(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        dist[v] = metrics::bfs_distances(g, v);
      }

      for (std::uint64_t seed = 1; seed <= opts.seeds; ++seed) {
        ++r.instances;
        util::Xoshiro256 rng(0xc0ffee ^ (seed * 0x9e3779b97f4a7c15ull));
        const std::vector<NodeId> dst =
            sim::random_permutation(g.num_nodes(), rng);

        PacketProbe probe;
        sim::SimConfig cfg;
        cfg.packet_length_flits = length;
        cfg.link_latency_cycles = link_lat;
        cfg.seed = seed;
        cfg.observer = &probe;
        const sim::SimResult res = sim::run_batch(net, route, dst, cfg);

        // The observer never perturbs results: re-run unobserved.
        sim::SimConfig plain = cfg;
        plain.observer = nullptr;
        if (auto diff = compare_results(res, sim::run_batch(net, route, dst,
                                                            plain));
            !diff.empty()) {
          fail(r, inst.name, seed, "observed vs unobserved: " + diff);
        }
        // Engine equivalence: the reference engine is the oracle.
        sim::SimConfig ref = plain;
        ref.engine = sim::Engine::kReference;
        if (auto diff = compare_results(res, sim::run_batch(net, route, dst,
                                                            ref));
            !diff.empty()) {
          fail(r, inst.name, seed, "kArena vs kReference: " + diff);
        }
        // ... and so is the sharded parallel engine, at a domain count that
        // exercises real cross-domain traffic.
        sim::SimConfig sharded = plain;
        sharded.engine = sim::Engine::kSharded;
        sharded.shard_domains = 3;
        if (auto diff = compare_results(res, sim::run_batch(net, route, dst,
                                                            sharded));
            !diff.empty()) {
          fail(r, inst.name, seed, "kArena vs kSharded: " + diff);
        }

        std::size_t expected = 0;
        for (NodeId v = 0; v < g.num_nodes(); ++v) expected += dst[v] != v;
        if (res.packets_delivered != expected) {
          fail(r, inst.name, seed,
               detail("delivered ", res.packets_delivered, " of ", expected,
                      " packets"));
          continue;
        }

        // Per-packet invariants against the BFS ground truth. Store-and-
        // forward zero-load latency is hops * (serialization + link
        // latency); congestion only adds to it.
        double hop_sum = 0;
        double lat_sum = 0;
        std::vector<double> latencies;
        bool bad = false;
        for (const auto& p : probe.packets()) {
          const std::uint32_t d = dist[p.src][p.dst];
          if (p.latency < 0) {
            fail(r, inst.name, seed,
                 detail("packet ", p.src, "->", p.dst, " never delivered"));
            bad = true;
            break;
          }
          if (p.hops < d) {
            fail(r, inst.name, seed,
                 detail("packet ", p.src, "->", p.dst, " took ", p.hops,
                        " hops < BFS distance ", d));
            bad = true;
            break;
          }
          const double floor =
              static_cast<double>(p.hops) * (length / bw + link_lat);
          if (p.latency + kEps < floor) {
            fail(r, inst.name, seed,
                 detail("packet ", p.src, "->", p.dst, " latency ", p.latency,
                        " below the zero-load floor ", floor));
            bad = true;
            break;
          }
          hop_sum += static_cast<double>(p.hops);
          lat_sum += p.latency;
          latencies.push_back(p.latency);
        }
        if (bad) continue;

        const double n = static_cast<double>(latencies.size());
        if (!close(res.avg_hops, hop_sum / n)) {
          fail(r, inst.name, seed,
               detail("SimResult avg_hops ", res.avg_hops,
                      " != observer average ", hop_sum / n));
        }
        if (!close(res.avg_latency_cycles, lat_sum / n)) {
          fail(r, inst.name, seed,
               detail("SimResult avg_latency ", res.avg_latency_cycles,
                      " != observer average ", lat_sum / n));
        }
        const double max_lat =
            *std::max_element(latencies.begin(), latencies.end());
        if (!close(res.max_latency_cycles, max_lat)) {
          fail(r, inst.name, seed,
               detail("SimResult max_latency ", res.max_latency_cycles,
                      " != observer max ", max_lat));
        }
        // Batch runs stay under kExactCap samples, so the reported
        // percentiles must be exactly nearest-rank.
        for (const double pct : {50.0, 99.0}) {
          std::vector<double> copy = latencies;
          const double exact = sim::percentile_nearest_rank(copy, pct);
          const double reported =
              pct == 50.0 ? res.p50_latency_cycles : res.p99_latency_cycles;
          if (!close(reported, exact)) {
            fail(r, inst.name, seed,
                 detail("SimResult p", pct, " = ", reported,
                        " != exact nearest-rank ", exact));
          }
        }
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// LatencyHistogram percentiles at and beyond the exact/bucketed switchover
// ---------------------------------------------------------------------------

CheckSpec make_latency_histogram_check() {
  CheckSpec spec;
  spec.id = "latency-histogram";
  spec.claim =
      "LatencyHistogram percentiles are exactly nearest-rank up to 2^16 "
      "samples and within the documented 1/128 relative error bound at "
      "2^16 + 1 and beyond, across distribution shapes";
  spec.theorems = "docs/OBSERVABILITY.md (bounded-memory percentile bound)";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;
    constexpr std::size_t cap = sim::LatencyHistogram::kExactCap;
    const std::vector<std::pair<std::string, int>> shapes = {
        {"uniform", 0}, {"heavy-tail", 1}, {"bimodal", 2}};
    const std::vector<std::size_t> sizes = {cap - 1, cap, cap + 1, 4 * cap};

    for (const auto& [shape, mode] : shapes) {
      for (std::uint64_t seed = 1; seed <= opts.seeds; ++seed) {
        for (const std::size_t size : sizes) {
          ++r.instances;
          const std::string name =
              detail("histogram(", shape, ",n=", size, ")");
          const std::uint64_t gen_seed =
              seed * std::uint64_t{0x2545f4914f6cdd1d} +
              static_cast<std::uint64_t>(mode);
          util::Xoshiro256 gen(gen_seed);
          sim::LatencyHistogram hist;
          std::vector<double> values;
          values.reserve(size);
          for (std::size_t i = 0; i < size; ++i) {
            const double u = gen.uniform();
            double v = 0;
            switch (mode) {
              case 0: v = 1.0 + 1e4 * u; break;
              case 1: v = 1.0 / (1.0 - u * 0.999999); break;
              case 2: v = (i % 2 == 0) ? 10.0 + u : 1e6 + u * 1e5; break;
            }
            hist.record(v);
            values.push_back(v);
          }
          if (hist.count() != size) {
            fail(r, name, seed,
                 detail("count() = ", hist.count(), " != ", size));
            continue;
          }
          const bool want_exact = size <= cap;
          if (hist.exact() != want_exact) {
            fail(r, name, seed,
                 detail("exact() = ", hist.exact(), " at n = ", size,
                        " (cap ", cap, ")"));
            continue;
          }
          for (const double pct : {50.0, 90.0, 99.0, 99.9, 100.0}) {
            std::vector<double> copy = values;
            const double truth = sim::percentile_nearest_rank(copy, pct);
            const double est = hist.percentile(pct);
            if (want_exact) {
              if (est != truth) {
                fail(r, name, seed,
                     detail("exact-mode p", pct, " = ", est,
                            " != nearest-rank ", truth));
              }
            } else {
              const double rel = std::abs(est - truth) / truth;
              if (rel > sim::LatencyHistogram::relative_error_bound()) {
                fail(r, name, seed,
                     detail("bucketed p", pct, " = ", est, " vs exact ",
                            truth, ": relative error ", rel,
                            " exceeds the 1/128 bound"));
              }
            }
          }
        }
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Congestion-aware adaptive routing: determinism and the UGAL payoff
// ---------------------------------------------------------------------------

CheckSpec make_adaptive_routing_check() {
  CheckSpec spec;
  spec.id = "adaptive-routing";
  spec.claim =
      "the full adaptive pipeline (minimal warm-up observed by a "
      "CongestionMonitor, then a UGAL-planned run replayed via preset "
      "routes) is bit-identical across kArena, kReference, and kSharded at "
      "several domain counts; candidates = 0 reproduces pure minimal "
      "routing exactly; and UGAL strictly improves makespan over minimal "
      "routing on the dragonfly's neighbor-group adversary";
  spec.theorems = "§4 (adaptive vs oblivious comparison), "
                  "docs/ADAPTIVE_ROUTING.md invariants";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;

    struct Instance {
      std::string name;
      sim::SimNetwork net;
      sim::Router route;
      std::vector<NodeId> dst;
    };
    std::vector<Instance> instances;
    {
      const std::size_t n = 36;  // DF(4, 2)
      std::vector<NodeId> shift(n);
      for (NodeId v = 0; v < n; ++v) shift[v] = (v + 4) % n;
      instances.push_back(
          {"DF(4,2)/shift",
           mcmp::make_unit_chip_network(topology::dragonfly_graph(4, 2),
                                        topology::dragonfly_group_clustering(
                                            4, 2),
                                        1.0),
           sim::dragonfly_router(4, 2), std::move(shift)});
    }
    {
      const std::size_t n = 64;  // Q6
      std::vector<NodeId> tornado(n);
      for (NodeId v = 0; v < n; ++v) tornado[v] = (v + n / 2) % n;
      instances.push_back(
          {"Q6/tornado",
           mcmp::make_unit_chip_network(
               topology::hypercube_graph(6),
               topology::hypercube_subcube_clustering(6, 8), 1.0),
           sim::hypercube_router(6), std::move(tornado)});
    }

    for (const Instance& inst : instances) {
      for (std::uint64_t seed = 1; seed <= opts.seeds; ++seed) {
        ++r.instances;
        sim::UgalConfig ugal;
        ugal.seed = seed;
        ugal.planned_weight = 4.0;

        // The full pipeline per engine: fresh monitor, minimal warm-up,
        // then the adaptive run with the monitor attached.
        auto pipeline = [&](sim::Engine engine, std::uint32_t domains) {
          sim::SimConfig cfg;
          cfg.engine = engine;
          cfg.shard_domains = domains;
          cfg.seed = seed;
          sim::CongestionMonitor monitor;
          cfg.observer = &monitor;
          sim::run_batch(inst.net, inst.route, inst.dst, cfg);
          return sim::run_adaptive_batch(inst.net, inst.route, inst.dst,
                                         ugal, cfg, &monitor);
        };

        const sim::AdaptiveResult oracle =
            pipeline(sim::Engine::kReference, 0);
        const sim::AdaptiveResult arena = pipeline(sim::Engine::kArena, 0);
        if (auto diff = compare_results(arena.sim, oracle.sim);
            !diff.empty()) {
          fail(r, inst.name, seed, "kArena vs kReference: " + diff);
        }
        for (const std::uint32_t k : {1u, 3u, 8u}) {
          const sim::AdaptiveResult sharded =
              pipeline(sim::Engine::kSharded, k);
          if (auto diff = compare_results(sharded.sim, oracle.sim);
              !diff.empty()) {
            fail(r, inst.name, seed,
                 detail("kSharded(K=", k, ") vs kReference: ") + diff);
          }
          if (sharded.packets_nonminimal != oracle.packets_nonminimal) {
            fail(r, inst.name, seed,
                 detail("kSharded(K=", k, ") planned ",
                        sharded.packets_nonminimal,
                        " nonminimal packets, kReference ",
                        oracle.packets_nonminimal));
          }
        }

        // candidates = 0 must reproduce plain minimal routing exactly.
        sim::SimConfig plain;
        plain.seed = seed;
        const sim::SimResult minimal =
            sim::run_batch(inst.net, inst.route, inst.dst, plain);
        sim::UgalConfig degenerate;
        degenerate.seed = seed;
        degenerate.candidates = 0;
        const sim::AdaptiveResult as_minimal = sim::run_adaptive_batch(
            inst.net, inst.route, inst.dst, degenerate, plain, nullptr);
        if (as_minimal.packets_nonminimal != 0) {
          fail(r, inst.name, seed,
               "candidates = 0 still planned nonminimal routes");
        }
        if (auto diff = compare_results(as_minimal.sim, minimal);
            !diff.empty()) {
          fail(r, inst.name, seed, "candidates = 0 vs run_batch: " + diff);
        }

        // The payoff: on the dragonfly adversary UGAL must strictly beat
        // minimal routing's makespan.
        if (inst.name.substr(0, 2) == "DF") {
          const sim::AdaptiveResult adaptive = sim::run_adaptive_batch(
              inst.net, inst.route, inst.dst, ugal, plain, nullptr);
          if (!(adaptive.sim.makespan_cycles < minimal.makespan_cycles)) {
            fail(r, inst.name, seed,
                 detail("UGAL makespan ", adaptive.sim.makespan_cycles,
                        " does not beat minimal ", minimal.makespan_cycles));
          }
        }
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Sampled vs exact distance sweeps on vertex-transitive instances
// ---------------------------------------------------------------------------

CheckSpec make_distance_sampling_check() {
  CheckSpec spec;
  spec.id = "distance-sampling";
  spec.claim =
      "the sampled distance sweep shares the exact sweep's ordered-pairs-"
      "with-self convention: on vertex-transitive graphs (every source row "
      "sums alike) any sample count reproduces the exact average bit for "
      "bit; on super-IPGs (NOT vertex-transitive: super-generators fix "
      "equal-content nodes) a full-cover sample is exact and partial "
      "samples stay within the exact bounds";
  spec.theorems = "§4.1 measurement convention (distances.hpp contract)";
  spec.run = [](const RunOptions&) {
    CheckResult r;

    // Part A: vertex-transitive named graphs — sampling must be exact for
    // every sample count, including the clustered sweep on the hypercube
    // (subcube chips are cosets, so XOR automorphisms act transitively).
    struct Symmetric {
      std::string name;
      Graph g;
      bool clustered;
      Clustering chips;
    };
    std::vector<Symmetric> symmetric;
    symmetric.push_back({"Q6", topology::hypercube_graph(6), true,
                         topology::hypercube_subcube_clustering(6, 4)});
    symmetric.push_back({"FQ4", topology::folded_hypercube_graph(4), false,
                         Clustering::single(16)});
    symmetric.push_back({"4-ary 2-cube", topology::kary_ncube_graph(4, 2),
                         false, Clustering::single(16)});
    for (const Symmetric& s : symmetric) {
      const auto exact_all = metrics::distance_stats(s.g);
      const auto exact_ic =
          s.clustered ? metrics::intercluster_stats(s.g, s.chips)
                      : exact_all;
      for (const std::size_t sample :
           {std::size_t{1}, std::size_t{2}, std::size_t{5},
            s.g.num_nodes() / 2, s.g.num_nodes(), 10 * s.g.num_nodes()}) {
        ++r.instances;
        const auto sampled = metrics::distance_stats(s.g, sample);
        if (sampled.average != exact_all.average) {
          fail(r, s.name, 0,
               detail("distance_stats(sample=", sample, ").average = ",
                      sampled.average, " != exact ", exact_all.average));
        }
        if (sampled.diameter != exact_all.diameter) {
          fail(r, s.name, 0,
               detail("distance_stats(sample=", sample, ").diameter = ",
                      sampled.diameter, " != exact ", exact_all.diameter));
        }
        const std::size_t want_sources =
            sample >= s.g.num_nodes() ? s.g.num_nodes() : sample;
        if (sampled.sources_used != want_sources) {
          fail(r, s.name, 0,
               detail("sources_used = ", sampled.sources_used,
                      " for sample ", sample, ", expected ", want_sources));
        }
        if (s.clustered) {
          const auto sic = metrics::intercluster_stats(s.g, s.chips, sample);
          if (sic.average != exact_ic.average ||
              sic.diameter != exact_ic.diameter) {
            fail(r, s.name, 0,
                 detail("intercluster_stats(sample=", sample, ") = (",
                        sic.average, ", ", sic.diameter, ") != exact (",
                        exact_ic.average, ", ", exact_ic.diameter, ")"));
          }
        }
      }
    }

    // Part B: super-IPG sweep — full-cover samples reproduce the exact
    // sweep exactly; partial samples can only shrink the diameter and must
    // keep the average within [0, diameter].
    for (const auto& inst : plain_family_sweep(3, /*with_directed=*/true)) {
      const Graph g = inst.ipg->to_graph();
      const Clustering chips = chips_of(inst);
      const auto exact_all = metrics::distance_stats(g);
      const auto exact_ic = metrics::intercluster_stats(g, chips);
      for (const std::size_t sample :
           {std::size_t{1}, g.num_nodes() / 2, g.num_nodes(),
            10 * g.num_nodes()}) {
        if (sample == 0) continue;
        ++r.instances;
        const auto s_all = metrics::distance_stats(g, sample);
        const auto s_ic = metrics::intercluster_stats(g, chips, sample);
        if (sample >= g.num_nodes()) {
          if (s_all.average != exact_all.average ||
              s_all.diameter != exact_all.diameter ||
              s_ic.average != exact_ic.average ||
              s_ic.diameter != exact_ic.diameter) {
            fail(r, inst.name, 0,
                 detail("full-cover sample ", sample,
                        " does not reproduce the exact sweep"));
          }
        } else {
          if (s_all.diameter > exact_all.diameter ||
              s_ic.diameter > exact_ic.diameter) {
            fail(r, inst.name, 0,
                 detail("sampled diameter exceeds the exact diameter at "
                        "sample ",
                        sample));
          }
          if (s_all.average < 0 ||
              s_all.average >
                  static_cast<double>(exact_all.diameter) + kEps ||
              s_ic.average < 0 ||
              s_ic.average > static_cast<double>(exact_ic.diameter) + kEps) {
            fail(r, inst.name, 0,
                 detail("sampled average outside [0, diameter] at sample ",
                        sample));
          }
        }
      }
    }
    return r;
  };
  return spec;
}

}  // namespace ipg::conformance::internal
