#include "conformance/families.hpp"

#include <algorithm>

#include "topology/nucleus.hpp"

namespace ipg::conformance {

using topology::SuperFamily;
using topology::SuperIpg;

namespace {

FamilyInstance wrap(SuperIpg ipg, SuperFamily family, std::size_t levels,
                    std::size_t nucleus_m, std::size_t flat_levels,
                    std::size_t base_m, bool recursive) {
  FamilyInstance inst;
  inst.ipg = std::make_shared<SuperIpg>(std::move(ipg));
  inst.name = inst.ipg->name();
  inst.family = family;
  inst.levels = levels;
  inst.nucleus_m = nucleus_m;
  inst.flat_levels = flat_levels;
  inst.base_m = base_m;
  inst.recursive = recursive;
  return inst;
}

void sort_by_size(std::vector<FamilyInstance>& v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const FamilyInstance& a, const FamilyInstance& b) {
                     return a.ipg->num_nodes() < b.ipg->num_nodes();
                   });
}

}  // namespace

std::vector<FamilyInstance> plain_family_sweep(std::size_t max_levels,
                                               bool with_directed,
                                               bool with_two_level_classics) {
  using topology::HypercubeNucleus;
  std::vector<FamilyInstance> out;
  for (unsigned k = 1; k <= 2; ++k) {
    const auto q = std::make_shared<HypercubeNucleus>(k);
    const std::size_t m = q->num_nodes();
    for (std::size_t l = 2; l <= max_levels; ++l) {
      out.push_back(wrap(make_hsn(l, q), SuperFamily::kHSN, l, m, l, m, false));
      out.push_back(wrap(make_sfn(l, q), SuperFamily::kSFN, l, m, l, m, false));
      out.push_back(
          wrap(make_ring_cn(l, q), SuperFamily::kRingCN, l, m, l, m, false));
      out.push_back(wrap(make_complete_cn(l, q), SuperFamily::kCompleteCN, l, m,
                         l, m, false));
      if (with_directed) {
        out.push_back(wrap(make_directed_cn(l, q), SuperFamily::kDirectedRingCN,
                           l, m, l, m, false));
      }
    }
  }
  {
    // One l = 2 instance over a larger nucleus (the HCN(3,3) shape).
    const auto q3 = std::make_shared<HypercubeNucleus>(3);
    out.push_back(
        wrap(make_hsn(2, q3), SuperFamily::kHSN, 2, 8, 2, 8, false));
    out.push_back(wrap(make_complete_cn(3, q3), SuperFamily::kCompleteCN, 3, 8,
                       3, 8, false));
  }
  if (with_two_level_classics) {
    // HCN(2,2) = HSN(2,Q2) is already in the sweep; add HFN(2)/HFN(3),
    // whose folded-hypercube nucleus exercises a non-plain-cube chip.
    for (unsigned n : {2u, 3u}) {
      SuperIpg hfn = topology::make_hfn(n);
      const std::size_t m = hfn.nucleus_size();
      out.push_back(
          wrap(std::move(hfn), SuperFamily::kHSN, 2, m, 2, m, false));
    }
  }
  sort_by_size(out);
  return out;
}

std::vector<FamilyInstance> recursive_family_sweep() {
  using topology::HypercubeNucleus;
  std::vector<FamilyInstance> out;
  const auto q1 = std::make_shared<HypercubeNucleus>(1);
  const auto q2 = std::make_shared<HypercubeNucleus>(2);
  // RCC(1,G) = HSN(2,G); RCC(2,G) = HSN(2, RCC(1,G)) with 4 base copies.
  out.push_back(
      wrap(topology::make_rcc(1, q2), SuperFamily::kHSN, 2, 4, 2, 4, true));
  out.push_back(
      wrap(topology::make_rcc(2, q1), SuperFamily::kHSN, 2, 4, 4, 2, true));
  out.push_back(
      wrap(topology::make_rcc(2, q2), SuperFamily::kHSN, 2, 16, 4, 4, true));
  sort_by_size(out);
  return out;
}

topology::Clustering chips_of(const FamilyInstance& inst) {
  return inst.recursive ? topology::base_nucleus_clustering(*inst.ipg)
                        : inst.ipg->nucleus_clustering();
}

}  // namespace ipg::conformance
