// Conformance checks for the paper's static claims: intercluster metrics
// (Thm 4.1–4.6), bisection bandwidth (Thm 4.7, Cor 4.8–4.10), the all-port
// schedule (Thm 3.8), SDC embeddings (Thm 3.1, Cor 3.2/3.3), and
// ascend/descend step counts (Thm 3.5, Cor 3.6/3.7). Each check compares an
// analytic closed form, a constructive object, and measured ground truth on
// the same instance and reports any divergence.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "conformance/families.hpp"
#include "conformance/internal.hpp"
#include "emulation/allport.hpp"
#include "emulation/embedding.hpp"
#include "emulation/machine.hpp"
#include "emulation/sdc.hpp"
#include "algorithms/ascend_descend.hpp"
#include "mcmp/capacity.hpp"
#include "metrics/bisection.hpp"
#include "metrics/distances.hpp"
#include "metrics/supergen_words.hpp"
#include "topology/hpn.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"

namespace ipg::conformance::internal {

namespace {

using topology::Clustering;
using topology::Graph;
using topology::SuperFamily;

constexpr double kEps = 1e-9;

/// Closed-form symmetric intercluster diameter t_S (Thm 4.3 / Cor 4.4);
/// returns 0 when the paper gives only an upper bound for the family.
std::size_t symmetric_closed_form(SuperFamily f, std::size_t l) {
  if (l == 2) return 2;  // all two-level families are the single swap T_2
  switch (f) {
    case SuperFamily::kHSN:
      return 2 * l - 2;
    case SuperFamily::kCompleteCN:
      return l;
    case SuperFamily::kRingCN:
      return l == 3 ? 3 : (3 * l) / 2 - 2;
    default:
      return 0;  // SFN: 2l-2 is an upper bound only; directed CN: n/a
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Thm 4.1/4.3, Cor 4.2/4.4: intercluster diameter
// ---------------------------------------------------------------------------

CheckSpec make_intercluster_diameter_check() {
  CheckSpec spec;
  spec.id = "intercluster-diameter";
  spec.claim =
      "intercluster diameter of every super-IPG family equals the word-"
      "analysis t and the closed form log_M N - 1; symmetric variants "
      "match t_S";
  spec.theorems = "Thm 4.1, Thm 4.3, Cor 4.2, Cor 4.4";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;
    auto sweep = plain_family_sweep(4, /*with_directed=*/true);
    for (const auto& inst : recursive_family_sweep()) sweep.push_back(inst);
    for (const auto& inst : sweep) {
      ++r.instances;
      if (opts.verbose) {
        // Progress is one short line per instance on stderr (CLI contract).
        std::fputs((inst.name + "\n").c_str(), stderr);
      }
      const Graph g = inst.ipg->to_graph();
      const Clustering chips = chips_of(inst);
      const auto measured = metrics::intercluster_stats(g, chips);
      const std::size_t closed = inst.flat_levels - 1;
      if (measured.diameter != closed) {
        fail(r, inst.name, 0,
             detail("measured intercluster diameter ", measured.diameter,
                    " != closed form l-1 = ", closed));
        continue;
      }
      if (inst.recursive) continue;  // word analysis sees top-level gens only
      const auto words = metrics::analyze_supergen_words(*inst.ipg);
      if (words.t_visit_all != closed) {
        fail(r, inst.name, 0,
             detail("word-analysis t = ", words.t_visit_all,
                    " != closed form ", closed));
      }
      const std::size_t ts_closed =
          symmetric_closed_form(inst.family, inst.levels);
      if (ts_closed != 0 && words.t_symmetric != ts_closed) {
        fail(r, inst.name, 0,
             detail("word-analysis t_S = ", words.t_symmetric,
                    " != closed form ", ts_closed));
      }
      if (inst.family == SuperFamily::kSFN &&
          words.t_symmetric > 2 * inst.levels - 2) {
        fail(r, inst.name, 0,
             detail("SFN t_S = ", words.t_symmetric,
                    " exceeds the paper's upper bound ", 2 * inst.levels - 2));
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Thm 4.2/4.5/4.6: average intercluster distance
// ---------------------------------------------------------------------------

CheckSpec make_intercluster_average_check() {
  CheckSpec spec;
  spec.id = "intercluster-average";
  spec.claim =
      "average intercluster distance sits between the degree-based lower "
      "bound and the intercluster diameter; HSN matches the closed form "
      "(l-1)(M-1)/M exactly, SFN never exceeds it (flips shorten words), "
      "and the hypercube matches (log2 N - log2 M)/2 exactly";
  spec.theorems = "Thm 4.2, Thm 4.5, Thm 4.6";
  spec.run = [](const RunOptions&) {
    CheckResult r;
    auto sweep = plain_family_sweep(4);
    for (const auto& inst : recursive_family_sweep()) sweep.push_back(inst);
    for (const auto& inst : sweep) {
      ++r.instances;
      const Graph g = inst.ipg->to_graph();
      const Clustering chips = chips_of(inst);
      const auto census = topology::census_links(g, chips);
      const auto stats = metrics::intercluster_stats(g, chips);
      const double lb = metrics::avg_intercluster_distance_lower_bound(
          inst.ipg->num_nodes(), inst.base_m, census.avg_offchip_per_node);
      if (stats.average + kEps < lb) {
        fail(r, inst.name, 0,
             detail("measured average ", stats.average,
                    " below the degree lower bound ", lb));
      }
      if (stats.average > static_cast<double>(stats.diameter) + kEps) {
        fail(r, inst.name, 0,
             detail("measured average ", stats.average,
                    " exceeds the intercluster diameter ", stats.diameter));
      }
      if (!inst.recursive && (inst.family == SuperFamily::kHSN ||
                              inst.family == SuperFamily::kSFN)) {
        const double m = static_cast<double>(inst.nucleus_m);
        const double closed =
            static_cast<double>(inst.levels - 1) * (m - 1.0) / m;
        if (inst.family == SuperFamily::kHSN &&
            std::abs(stats.average - closed) > kEps) {
          fail(r, inst.name, 0,
               detail("measured average ", stats.average,
                      " != closed form (l-1)(M-1)/M = ", closed));
        }
        // SFN: a flip moves every prefix group at once, so intercluster
        // words can be shorter than HSN's one-transposition-per-group
        // words — measured SFN(4,Q1) averages 1.375 vs HSN's 1.5. The
        // closed form is only an upper bound for SFN (docs/CONFORMANCE.md).
        if (inst.family == SuperFamily::kSFN &&
            stats.average > closed + kEps) {
          fail(r, inst.name, 0,
               detail("measured SFN average ", stats.average,
                      " exceeds the HSN closed form ", closed));
        }
      }
    }
    // The §4.2 hypercube reference points (Thm 4.5's comparison side).
    struct CubeCase {
      unsigned n;
      std::size_t chip;
    };
    for (const CubeCase c : {CubeCase{6, 4}, CubeCase{8, 16}}) {
      ++r.instances;
      const Graph g = topology::hypercube_graph(c.n);
      const auto chips = topology::hypercube_subcube_clustering(c.n, c.chip);
      const auto stats = metrics::intercluster_stats(g, chips);
      const double offchip_dims =
          static_cast<double>(c.n) - std::log2(static_cast<double>(c.chip));
      const std::string name =
          detail("Q", c.n, "/chips", c.chip);
      if (std::abs(stats.average - offchip_dims / 2.0) > kEps) {
        fail(r, name, 0,
             detail("measured average ", stats.average,
                    " != (log2 N - log2 M)/2 = ", offchip_dims / 2.0));
      }
      if (static_cast<double>(stats.diameter) != offchip_dims) {
        fail(r, name, 0,
             detail("measured intercluster diameter ", stats.diameter,
                    " != log2 N - log2 M = ", offchip_dims));
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Thm 4.7, Cor 4.8–4.10: bisection bandwidth sandwich
// ---------------------------------------------------------------------------

CheckSpec make_bisection_bandwidth_check() {
  CheckSpec spec;
  spec.id = "bisection-bandwidth";
  spec.claim =
      "the Thm 4.7 lower bound w N / (4a), the per-family closed form, and "
      "the cluster-respecting heuristic upper bound sandwich: LB <= closed "
      "<= heuristic";
  spec.theorems = "Thm 4.7, Cor 4.8, Cor 4.9, Cor 4.10";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;
    const double w = 1.0;

    struct Case {
      std::string name;
      Graph g;
      Clustering chips;
      double closed;
    };
    std::vector<Case> cases;
    {
      using topology::HypercubeNucleus;
      for (unsigned k : {1u, 2u}) {
        const auto q = std::make_shared<HypercubeNucleus>(k);
        for (std::size_t l : {std::size_t{2}, std::size_t{3}}) {
          for (const bool sfn : {false, true}) {
            auto s = sfn ? topology::make_sfn(l, q) : topology::make_hsn(l, q);
            const double closed = mcmp::hsn_bisection_bandwidth(
                w, s.num_nodes(), s.nucleus_size(), l);
            cases.push_back({s.name(), s.to_graph(), s.nucleus_clustering(),
                             closed});
          }
        }
      }
      for (const auto& [n, chip] : {std::pair<unsigned, std::size_t>{6, 4},
                                    {8, 16}}) {
        Graph g = topology::hypercube_graph(n);
        auto chips = topology::hypercube_subcube_clustering(n, chip);
        const double closed =
            mcmp::hypercube_bisection_bandwidth(w, g.num_nodes(), chip);
        cases.push_back({detail("Q", n, "/chips", chip), std::move(g),
                         std::move(chips), closed});
      }
      for (const auto& [k, side] : {std::pair<std::size_t, std::size_t>{4, 2},
                                    {8, 2}}) {
        Graph g = topology::kary_ncube_graph(k, 2);
        auto chips = topology::kary2_block_clustering(k, side);
        const double closed = mcmp::kary2_bisection_bandwidth(
            w, g.num_nodes(), side * side);
        cases.push_back({detail(k, "-ary 2-cube/side", side), std::move(g),
                         std::move(chips), closed});
      }
    }

    for (const Case& c : cases) {
      const auto stats = metrics::intercluster_stats(c.g, c.chips);
      const double lb =
          mcmp::bb_lower_bound(w, c.g.num_nodes(), stats.average);
      double heuristic = -1;
      for (std::uint64_t seed = 1; seed <= opts.seeds; ++seed) {
        ++r.instances;
        const double measured = mcmp::measured_bisection_bandwidth(
            c.g, c.chips, w, /*restarts=*/12, /*seed=*/0x5eed + seed);
        heuristic = heuristic < 0 ? measured : std::min(heuristic, measured);
        if (measured + kEps < c.closed) {
          fail(r, c.name, seed,
               detail("heuristic bisection ", measured,
                      " undercuts the closed form ", c.closed,
                      " (formula overstates the true width)"));
        }
      }
      if (lb > c.closed + kEps) {
        fail(r, c.name, 0,
             detail("Thm 4.7 lower bound ", lb, " exceeds the closed form ",
                    c.closed));
      }
      // Tightness: on these small instances the heuristic should land on
      // the closed form (it is the true width); a 2x gap means the search
      // regressed badly enough to stop validating anything.
      if (heuristic > 2.0 * c.closed + kEps) {
        fail(r, c.name, 0,
             detail("heuristic bisection ", heuristic,
                    " is more than 2x the closed form ", c.closed,
                    " — the upper bound no longer brackets the claim"));
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Thm 3.8: all-port emulation schedule
// ---------------------------------------------------------------------------

CheckSpec make_allport_schedule_check() {
  CheckSpec spec;
  spec.id = "allport-schedule";
  spec.claim =
      "an all-port schedule of makespan exactly max(2n, l+1) exists for "
      "every (l, n), verifies, and the (l=5, n=3) schedule reports the "
      "paper's 39/42 utilization";
  spec.theorems = "Thm 3.8, Fig. 1";
  spec.run = [](const RunOptions&) {
    CheckResult r;
    for (std::size_t l = 2; l <= 8; ++l) {
      for (std::size_t n = 1; n <= 4; ++n) {
        for (const bool shared : {true, false}) {
          ++r.instances;
          const std::string name =
              detail("allport(l=", l, ",n=", n, shared ? ",shared" : ",split",
                     ")");
          try {
            const auto s = emulation::build_allport_schedule(l, n, shared);
            emulation::verify_allport_schedule(s);
            if (s.makespan != emulation::allport_bound(l, n)) {
              fail(r, name, 0,
                   detail("makespan ", s.makespan, " != max(2n, l+1) = ",
                          emulation::allport_bound(l, n)));
            }
            const double u = s.utilization();
            if (!(u > 0.0) || u > 1.0 + kEps) {
              fail(r, name, 0, detail("utilization ", u, " outside (0, 1]"));
            }
          } catch (const std::exception& e) {
            fail(r, name, 0, detail("schedule construction failed: ", e.what()));
          }
        }
      }
    }
    ++r.instances;
    const auto fig1b = emulation::build_allport_schedule(5, 3, true);
    if (fig1b.utilization() != 39.0 / 42.0) {
      fail(r, "allport(l=5,n=3,shared)", 0,
           detail("utilization ", fig1b.utilization(),
                  " != the paper's 39/42"));
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Thm 3.1, Cor 3.2/3.3: SDC emulation words and embedding dilation
// ---------------------------------------------------------------------------

CheckSpec make_embedding_dilation_check() {
  CheckSpec spec;
  spec.id = "embedding-dilation";
  spec.claim =
      "HSN / complete-CN / SFN emulate HPN(l,G) with slowdown 3 (t = 2); "
      "the induced embedding has dilation 3 and per-dimension undirected "
      "link congestion at most 2";
  spec.theorems = "Thm 3.1, Cor 3.2, Cor 3.3";
  spec.run = [](const RunOptions&) {
    CheckResult r;
    using topology::HypercubeNucleus;
    for (unsigned k : {1u, 2u}) {
      const auto q = std::make_shared<HypercubeNucleus>(k);
      for (std::size_t l = 2; l <= 4; ++l) {
        for (int fam = 0; fam < 3; ++fam) {
          ++r.instances;
          const topology::SuperIpg s =
              fam == 0   ? topology::make_hsn(l, q)
              : fam == 1 ? topology::make_complete_cn(l, q)
                         : topology::make_sfn(l, q);
          try {
            const emulation::SdcEmulation emu(s);
            emu.verify();
            if (s.t_single_dimension() != 2) {
              fail(r, s.name(), 0,
                   detail("t = ", s.t_single_dimension(), " != 2"));
            }
            if (emu.slowdown() != 3) {
              fail(r, s.name(), 0,
                   detail("slowdown ", emu.slowdown(), " != t + 1 = 3"));
            }
            const auto em = emulation::measure_embedding(emu);
            if (em.dilation > 3) {
              fail(r, s.name(), 0,
                   detail("embedding dilation ", em.dilation, " > 3"));
            }
            if (em.per_dim_link_congestion > 2) {
              fail(r, s.name(), 0,
                   detail("per-dimension link congestion ",
                          em.per_dim_link_congestion, " > 2"));
            }
          } catch (const std::exception& e) {
            fail(r, s.name(), 0, detail("emulation failed: ", e.what()));
          }
        }
      }
    }
    return r;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Thm 3.5, Cor 3.6/3.7: ascend/descend plans
// ---------------------------------------------------------------------------

namespace {

/// Order-sensitive combine used by the plan-execution differential: every
/// item of the group is replaced by a hash of the whole (orig, value)
/// sequence plus its slot, so any divergence in visiting order or data
/// placement between machines changes the final values.
void hash_combine(std::span<const std::size_t> origs,
                  std::span<std::uint64_t> values) {
  std::uint64_t acc = 0xcbf29ce484222325ull;
  for (std::size_t j = 0; j < origs.size(); ++j) {
    acc ^= values[j] + 0x9e3779b97f4a7c15ull * (origs[j] + 1);
    acc *= 0x100000001b3ull;
  }
  for (std::size_t j = 0; j < values.size(); ++j) values[j] = acc + j;
}

}  // namespace

CheckSpec make_ascend_descend_check() {
  CheckSpec spec;
  spec.id = "ascend-descend-steps";
  spec.claim =
      "ascend/descend plans use exactly l(k+1) communication steps on CN "
      "and l(k+2)-2 = (1+2/k) log2 N - 2 on HSN/SFN, and executing the "
      "plan matches a direct HPN pass item for item";
  spec.theorems = "Thm 3.5, Cor 3.6, Cor 3.7";
  spec.run = [](const RunOptions&) {
    CheckResult r;
    using topology::HypercubeNucleus;

    auto check_counts = [&r](const topology::SuperIpg& s, std::size_t k,
                             std::size_t l, bool two_step_family) {
      const auto plan = algorithms::build_ascend_plan(s);
      const std::size_t expect =
          two_step_family ? l * (k + 2) - 2 : l * (k + 1);
      if (plan.comm_steps() != expect) {
        fail(r, s.name(), 0,
             detail("plan uses ", plan.comm_steps(),
                    " comm steps, closed form says ", expect));
        return;
      }
      // The Cor 3.6 phrasing (1 + 2/k) log2 N - 2 must agree with the
      // structural count l(k+2) - 2 (log2 N = l k).
      if (two_step_family) {
        const double log2n = static_cast<double>(l * k);
        const double phrased =
            (1.0 + 2.0 / static_cast<double>(k)) * log2n - 2.0;
        if (std::abs(phrased - static_cast<double>(plan.comm_steps())) >
            kEps) {
          fail(r, s.name(), 0,
               detail("(1+2/k) log2 N - 2 = ", phrased,
                      " disagrees with the structural count ",
                      plan.comm_steps()));
        }
      }
      if (plan.super_steps() + plan.base_dim_steps() != plan.comm_steps()) {
        fail(r, s.name(), 0,
             detail("super (", plan.super_steps(), ") + base (",
                    plan.base_dim_steps(),
                    ") steps do not add up to ", plan.comm_steps()));
      }
    };

    for (std::size_t k : {std::size_t{1}, std::size_t{2}}) {
      const auto q = std::make_shared<HypercubeNucleus>(static_cast<unsigned>(k));
      for (std::size_t l = 2; l <= 4; ++l) {
        ++r.instances;
        check_counts(topology::make_ring_cn(l, q), k, l, false);
        ++r.instances;
        check_counts(topology::make_complete_cn(l, q), k, l, false);
        ++r.instances;
        check_counts(topology::make_hsn(l, q), k, l, true);
        ++r.instances;
        check_counts(topology::make_sfn(l, q), k, l, true);
      }
    }

    // Cor 3.7 on a generalized hypercube nucleus: l(n+1) comm steps and
    // l * sum(m_i - 1) compute steps.
    {
      ++r.instances;
      const auto ghc = std::make_shared<topology::GeneralizedHypercubeNucleus>(
          std::vector<std::size_t>{4, 2});
      const topology::SuperIpg cn = topology::make_complete_cn(3, ghc);
      const auto plan = algorithms::build_ascend_plan(cn);
      const std::size_t dims = ghc->num_dimensions();
      if (plan.comm_steps() != 3 * (dims + 1)) {
        fail(r, cn.name(), 0,
             detail("GHC plan uses ", plan.comm_steps(),
                    " comm steps, Cor 3.7 says l(n+1) = ", 3 * (dims + 1)));
      }
      emulation::SuperIpgMachine<std::uint64_t> machine(
          cn, std::vector<std::uint64_t>(cn.num_nodes(), 1));
      algorithms::run_plan(machine, plan, hash_combine);
      const std::size_t compute = 3 * ((4 - 1) + (2 - 1));
      if (machine.counts().compute_steps != compute) {
        fail(r, cn.name(), 0,
             detail("GHC execution used ", machine.counts().compute_steps,
                    " compute steps, Cor 3.7 says l*sum(m_i-1) = ", compute));
      }
    }

    // Differential execution: the plan on the super-IPG machine must land
    // item-for-item on the direct HPN pass, return items home, and split
    // its steps exactly into super vs base-dimension counts.
    struct ExecCase {
      topology::SuperIpg s;
      unsigned k;
      std::size_t l;
    };
    std::vector<ExecCase> execs;
    {
      const auto q1 = std::make_shared<HypercubeNucleus>(1);
      const auto q2 = std::make_shared<HypercubeNucleus>(2);
      execs.push_back({topology::make_hsn(3, q1), 1, 3});
      execs.push_back({topology::make_complete_cn(2, q2), 2, 2});
      execs.push_back({topology::make_sfn(3, q2), 2, 3});
    }
    for (const ExecCase& e : execs) {
      ++r.instances;
      const auto plan = algorithms::build_ascend_plan(e.s);
      std::vector<std::uint64_t> init(e.s.num_nodes());
      for (std::size_t v = 0; v < init.size(); ++v) {
        init[v] = 0x517cc1b727220a95ull * (v + 1);
      }
      emulation::SuperIpgMachine<std::uint64_t> machine(e.s, init);
      algorithms::run_plan(machine, plan, hash_combine);
      if (!machine.is_home()) {
        fail(r, e.s.name(), 0,
             "items not restored to their home nodes after a full ascend");
        continue;
      }
      if (machine.counts().offchip_steps != plan.super_steps() ||
          machine.counts().onchip_steps != plan.base_dim_steps()) {
        fail(r, e.s.name(), 0,
             detail("machine counted ", machine.counts().offchip_steps, "+",
                    machine.counts().onchip_steps,
                    " off/on-chip steps; plan says ", plan.super_steps(), "+",
                    plan.base_dim_steps()));
      }
      const auto factor = std::make_shared<HypercubeNucleus>(e.k);
      const topology::Hpn hpn(factor, e.l);
      emulation::HpnMachine<std::uint64_t> baseline(
          hpn, Clustering::blocks(hpn.num_nodes(), factor->num_nodes()), init);
      algorithms::run_hpn_pass(baseline, hpn, /*descend=*/false, hash_combine);
      if (machine.values_by_origin() != baseline.values_by_origin()) {
        fail(r, e.s.name(), 0,
             "emulated ascend results diverge from the direct HPN pass");
      }
    }
    return r;
  };
  return spec;
}

}  // namespace ipg::conformance::internal
