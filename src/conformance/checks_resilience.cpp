// Conformance check for the resilience layer (docs/ROBUSTNESS.md): the
// Monte Carlo percolation engine's measured disconnection probabilities
// must bracket the analytic connectivity bounds that Menger's theorem
// yields from the exact edge-disjoint-path count lambda:
//
//   p^lambda  <=  P[s-t disconnected under Bernoulli(p) link faults]
//             <=  (1 - (1-p)^(n-1))^lambda.
//
// Lower bound: a minimum edge cut has exactly lambda links (Menger), and
// all of them dying (probability p^lambda) disconnects s from t. Upper
// bound: lambda edge-disjoint simple s-t paths exist, each with at most
// n-1 links; disjointness makes their survival events independent, each
// path survives with probability >= (1-p)^(n-1), and s-t disconnection
// requires every one of them broken. The Monte Carlo estimate, within a
// Hoeffding confidence margin, must land inside the bracket — and must be
// monotone non-decreasing in p. A violation means a bug in the failure
// sampling, the survivor union-find, or the disjoint-path max-flow.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "conformance/families.hpp"
#include "conformance/internal.hpp"
#include "resilience/percolation.hpp"
#include "topology/faults.hpp"
#include "topology/named.hpp"
#include "util/rng.hpp"

namespace ipg::conformance::internal {

namespace {

using resilience::FailureMode;
using resilience::FailureSample;
using resilience::SurvivorComponents;
using topology::Graph;
using topology::NodeId;

struct PercolationInstance {
  std::string name;
  Graph graph;
};

/// Small connected instances: the three smallest plain super-IPG families
/// plus the hypercube and torus baselines. Sizes stay <= 64 nodes so the
/// per-trial union-find keeps the whole check under a second per seed.
std::vector<PercolationInstance> percolation_instances() {
  std::vector<PercolationInstance> out;
  std::size_t supers = 0;
  for (const auto& inst : plain_family_sweep(3, /*with_directed=*/false,
                                             /*with_two_level_classics=*/false)) {
    if (inst.ipg->num_nodes() > 64 || supers >= 3) continue;
    out.push_back({inst.name, inst.ipg->to_graph()});
    ++supers;
  }
  out.push_back({"Q4", topology::hypercube_graph(4)});
  out.push_back({"4-ary 2-cube", topology::kary_ncube_graph(4, 2)});
  return out;
}

}  // namespace

CheckSpec make_percolation_threshold_check() {
  CheckSpec spec;
  spec.id = "percolation-threshold";
  spec.claim =
      "Monte Carlo s-t disconnection probability under Bernoulli(p) link "
      "faults is bracketed by the Menger bounds p^lambda and "
      "(1-(1-p)^(n-1))^lambda, and is monotone in p";
  spec.theorems = "§5 (reliability); Menger / edge-disjoint paths";
  spec.run = [](const RunOptions& opts) {
    CheckResult r;
    constexpr std::size_t kTrials = 500;
    // Two-sided Hoeffding margin at confidence 1 - 1e-9 per estimate:
    // eps = sqrt(ln(2/delta) / (2T)). A true probability inside the
    // bracket then lands outside [lower - eps, upper + eps] with
    // probability < 1e-9 — failures are bugs, not noise.
    const double eps = std::sqrt(std::log(2.0 / 1e-9) / (2.0 * kTrials));
    const std::vector<double> probabilities{0.15, 0.35};

    for (const auto& inst : percolation_instances()) {
      const Graph& g = inst.graph;
      const std::size_t n = g.num_nodes();
      const NodeId s = 0;
      const NodeId t = static_cast<NodeId>(n - 1);
      const std::size_t lambda = topology::edge_disjoint_paths(g, s, t);
      if (lambda == 0) {
        fail(r, inst.name, 0, detail("instance is s-t disconnected healthy"));
        continue;
      }
      for (std::uint64_t seed = 1; seed <= opts.seeds; ++seed) {
        ++r.instances;
        if (opts.verbose) {
          std::fputs((inst.name + " seed " + std::to_string(seed) + "\n").c_str(),
                     stderr);
        }
        double prev_estimate = -1.0;
        for (std::size_t pi = 0; pi < probabilities.size(); ++pi) {
          const double p = probabilities[pi];
          std::size_t disconnected = 0;
          for (std::size_t trial = 0; trial < kTrials; ++trial) {
            const std::uint64_t trial_seed = util::derive_seed(
                util::derive_seed(seed, 101 + pi), trial + 1);
            const FailureSample sample = resilience::sample_bernoulli_failures(
                g, nullptr, false, FailureMode::kLinks, p, trial_seed);
            const SurvivorComponents comps(g, sample);
            if (!comps.same_component(s, t)) ++disconnected;
          }
          const double estimate =
              static_cast<double>(disconnected) / static_cast<double>(kTrials);
          const double lower = std::pow(p, static_cast<double>(lambda));
          const double upper =
              std::pow(1.0 - std::pow(1.0 - p, static_cast<double>(n - 1)),
                       static_cast<double>(lambda));
          if (estimate < lower - eps || estimate > upper + eps) {
            fail(r, inst.name, seed,
                 detail("p=", p, ": measured s-t disconnection ", estimate,
                        " outside bracket [", lower, ", ", upper,
                        "] (lambda=", lambda, ", eps=", eps, ")"));
          }
          if (prev_estimate >= 0 && estimate < prev_estimate - 2 * eps) {
            fail(r, inst.name, seed,
                 detail("disconnection probability fell from ", prev_estimate,
                        " at p=", probabilities[pi - 1], " to ", estimate,
                        " at p=", p, " — not monotone"));
          }
          prev_estimate = estimate;
        }
      }
    }
    return r;
  };
  return spec;
}

}  // namespace ipg::conformance::internal
