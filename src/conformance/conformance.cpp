#include "conformance/conformance.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "conformance/internal.hpp"
#include "util/check.hpp"

namespace ipg::conformance {

const std::vector<CheckSpec>& registry() {
  static const std::vector<CheckSpec> specs = [] {
    using namespace internal;
    std::vector<CheckSpec> v;
    v.push_back(make_intercluster_diameter_check());
    v.push_back(make_intercluster_average_check());
    v.push_back(make_bisection_bandwidth_check());
    v.push_back(make_allport_schedule_check());
    v.push_back(make_embedding_dilation_check());
    v.push_back(make_ascend_descend_check());
    v.push_back(make_sim_latency_check());
    v.push_back(make_latency_histogram_check());
    v.push_back(make_adaptive_routing_check());
    v.push_back(make_distance_sampling_check());
    v.push_back(make_percolation_threshold_check());
    return v;
  }();
  return specs;
}

std::vector<CheckResult> run_all(const RunOptions& opts) {
  IPG_CHECK(opts.seeds >= 1, "at least one seed replicate is required");
  std::vector<CheckResult> out;
  for (const CheckSpec& spec : registry()) {
    CheckResult r = spec.run(opts);
    r.id = spec.id;
    r.claim = spec.claim;
    r.theorems = spec.theorems;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<CheckResult> run_selected(const std::vector<std::string>& ids,
                                      const RunOptions& opts) {
  IPG_CHECK(opts.seeds >= 1, "at least one seed replicate is required");
  std::vector<CheckResult> out;
  for (const std::string& id : ids) {
    const CheckSpec* found = nullptr;
    for (const CheckSpec& spec : registry()) {
      if (spec.id == id) {
        found = &spec;
        break;
      }
    }
    if (found == nullptr) {
      throw std::invalid_argument("unknown conformance check id: " + id);
    }
    CheckResult r = found->run(opts);
    r.id = found->id;
    r.claim = found->claim;
    r.theorems = found->theorems;
    out.push_back(std::move(r));
  }
  return out;
}

bool print_report(std::ostream& os, const std::vector<CheckResult>& results) {
  bool all_passed = true;
  std::size_t instances = 0;
  for (const CheckResult& r : results) {
    instances += r.instances;
    os << (r.passed() ? "PASS" : "FAIL") << "  " << r.id << "  ("
       << r.theorems << "; " << r.instances << " instances)\n";
    if (!r.passed()) {
      all_passed = false;
      const CheckFailure& minimal = r.failures.front();
      os << "      minimal failing instance: " << minimal.instance;
      if (minimal.seed != 0) os << " [seed " << minimal.seed << "]";
      os << "\n      " << minimal.detail << "\n";
      if (r.failures.size() > 1) {
        os << "      (+" << r.failures.size() - 1 << " more failures)\n";
      }
    }
  }
  os << (all_passed ? "OK" : "FAILED") << ": " << results.size()
     << " checks, " << instances << " instances\n";
  return all_passed;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_json(std::ostream& os, const std::vector<CheckResult>& results,
                const RunOptions& opts) {
  bool all_passed = true;
  for (const CheckResult& r : results) all_passed &= r.passed();
  os << "{\n  \"schema\": \"ipg-conformance-v1\",\n  \"seeds\": "
     << opts.seeds << ",\n  \"passed\": " << (all_passed ? "true" : "false")
     << ",\n  \"checks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CheckResult& r = results[i];
    os << "    {\n      \"id\": ";
    json_escape(os, r.id);
    os << ",\n      \"claim\": ";
    json_escape(os, r.claim);
    os << ",\n      \"theorems\": ";
    json_escape(os, r.theorems);
    os << ",\n      \"instances\": " << r.instances
       << ",\n      \"passed\": " << (r.passed() ? "true" : "false")
       << ",\n      \"failures\": [";
    for (std::size_t j = 0; j < r.failures.size(); ++j) {
      const CheckFailure& f = r.failures[j];
      os << (j == 0 ? "\n" : ",\n") << "        {\"instance\": ";
      json_escape(os, f.instance);
      os << ", \"seed\": " << f.seed << ", \"detail\": ";
      json_escape(os, f.detail);
      os << "}";
    }
    os << (r.failures.empty() ? "]" : "\n      ]") << "\n    }"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace ipg::conformance
