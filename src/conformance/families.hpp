#pragma once
// The seeded family sweep shared by the conformance checks: small super-IPG
// instances of every family the paper analyzes, ordered by node count so a
// check's first failure is its minimal failing instance.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "topology/graph.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::conformance {

/// One super-IPG instance of the sweep, with the chip partition the paper
/// uses for it (one chip per base-nucleus copy).
struct FamilyInstance {
  std::shared_ptr<const topology::SuperIpg> ipg;
  std::string name;          ///< e.g. "HSN(3,Q2)"
  topology::SuperFamily family;
  std::size_t levels = 0;    ///< l of the top-level construction
  std::size_t nucleus_m = 0; ///< M of the top-level nucleus
  /// Flattened level count over the *base* nucleus: equals `levels` for
  /// plain families, 2^r for RCC(r,G) — the l of the Thm 4.x closed forms.
  std::size_t flat_levels = 0;
  std::size_t base_m = 0;    ///< base-nucleus size (chip size M)
  bool recursive = false;    ///< RCC-style (super-generators are nested)
};

/// Plain (non-recursive) families over hypercube nuclei: HSN, SFN,
/// ring-CN, complete-CN (+ the directed ring-CN when @p with_directed),
/// l in [2, max_levels], nuclei Q1/Q2 (and Q3 at l = 2). HCN(n) = HSN(2,Qn)
/// and HFN(n) appear through @p with_two_level_classics. Sorted by node
/// count ascending; everything is small enough for all-pairs BFS.
std::vector<FamilyInstance> plain_family_sweep(std::size_t max_levels = 4,
                                               bool with_directed = false,
                                               bool with_two_level_classics = true);

/// Recursive instances: RCC(1,Q2), RCC(2,Q2), RCC(2,Q1) — clustered by
/// their base nucleus (base_nucleus_clustering).
std::vector<FamilyInstance> recursive_family_sweep();

/// The chip partition of an instance (nucleus clustering for plain
/// families, base-nucleus clustering for recursive ones).
topology::Clustering chips_of(const FamilyInstance& inst);

}  // namespace ipg::conformance
