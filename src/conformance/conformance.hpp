#pragma once
// Paper-conformance differential checker (docs/CONFORMANCE.md).
//
// The reproduction states the same quantities in three independent layers:
// analytic closed forms (Thm 4.1–4.7, Cor 3.2/3.3/3.6/3.7, Cor 4.8–4.10),
// constructive schedules/embeddings/plans (Thm 3.1/3.5/3.8), and measured
// ground truth (BFS sweeps, bisection heuristics, the event-driven
// simulator). Each conformance check cross-validates one claim across
// those layers over a seeded family sweep (HSN, SFN, ring-/complete-CN,
// RCC, HCN/HFN, plus the hypercube / k-ary 2-cube comparison networks) and
// reports PASS/FAIL with the minimal failing instance. `tools/ipg_check`
// drives the registry and emits machine-readable CONFORMANCE.json; CI runs
// it with --seeds 4 and fails the build on any FAIL. There is no waiver
// list: a failing check means a bug in the tree, fixed at the root.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace ipg::conformance {

struct RunOptions {
  /// Seed replicates for the randomized pieces (bisection restarts, batch
  /// permutations, synthetic latency distributions). Seeds are 1..seeds.
  std::uint64_t seeds = 2;
  /// Stream per-instance progress lines to stderr.
  bool verbose = false;
};

/// One divergence between layers, pinned to the instance that showed it.
struct CheckFailure {
  std::string instance;  ///< family + parameters, e.g. "HSN(3,Q2)"
  std::uint64_t seed = 0;  ///< seed replicate (0 = deterministic check)
  std::string detail;      ///< which quantities diverged, with values
};

struct CheckResult {
  std::string id;        ///< stable kebab-case check id
  std::string claim;     ///< the paper claim being validated
  std::string theorems;  ///< "Thm 4.1, Cor 4.2", for the report
  std::size_t instances = 0;  ///< (instance, seed) combinations swept
  /// All divergences found; the sweep runs smallest instance first, so
  /// failures.front() is the minimal failing instance.
  std::vector<CheckFailure> failures;

  bool passed() const noexcept { return failures.empty(); }
};

/// A registered check: sweeps its instances under @p opts and returns the
/// filled result. Checks never throw for conformance failures (those go in
/// `failures`); they only throw on internal misuse.
struct CheckSpec {
  std::string id;
  std::string claim;
  std::string theorems;
  std::function<CheckResult(const RunOptions&)> run;
};

/// The full registry, in documentation order (docs/CONFORMANCE.md mirrors
/// it). Stable ids:
///   intercluster-diameter, intercluster-average, bisection-bandwidth,
///   allport-schedule, embedding-dilation, ascend-descend-steps,
///   sim-latency, latency-histogram, adaptive-routing, distance-sampling,
///   percolation-threshold.
const std::vector<CheckSpec>& registry();

/// Runs every registered check. Results come back in registry order.
std::vector<CheckResult> run_all(const RunOptions& opts);

/// Runs the named checks (ids as in registry()); throws
/// std::invalid_argument for an unknown id.
std::vector<CheckResult> run_selected(const std::vector<std::string>& ids,
                                      const RunOptions& opts);

/// Human-readable PASS/FAIL table; returns true when everything passed.
bool print_report(std::ostream& os, const std::vector<CheckResult>& results);

/// Machine-readable report (the CONFORMANCE.json schema, see
/// docs/CONFORMANCE.md).
void write_json(std::ostream& os, const std::vector<CheckResult>& results,
                const RunOptions& opts);

}  // namespace ipg::conformance
