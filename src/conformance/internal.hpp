#pragma once
// Internal glue shared by the conformance check translation units.

#include <sstream>
#include <string>

#include "conformance/conformance.hpp"

namespace ipg::conformance::internal {

/// Streams any mix of values into one failure-detail string.
template <typename... Parts>
std::string detail(const Parts&... parts) {
  std::ostringstream os;
  os.precision(12);
  (os << ... << parts);
  return os.str();
}

/// Records a failure (minimal instance first: callers sweep smallest-first).
inline void fail(CheckResult& r, const std::string& instance,
                 std::uint64_t seed, std::string what) {
  r.failures.push_back({instance, seed, std::move(what)});
}

// Check constructors, one per translation unit group.
CheckSpec make_intercluster_diameter_check();
CheckSpec make_intercluster_average_check();
CheckSpec make_bisection_bandwidth_check();
CheckSpec make_allport_schedule_check();
CheckSpec make_embedding_dilation_check();
CheckSpec make_ascend_descend_check();
CheckSpec make_sim_latency_check();
CheckSpec make_latency_histogram_check();
CheckSpec make_adaptive_routing_check();
CheckSpec make_distance_sampling_check();
CheckSpec make_percolation_threshold_check();

}  // namespace ipg::conformance::internal
