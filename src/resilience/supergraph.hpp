#pragma once
// k-fault-tolerant supergraph augmentation (docs/ROBUSTNESS.md).
//
// Percolation measures how a fabric degrades; augmentation buys the
// tolerance back constructively. Following Ganesan's fault-tolerant
// supergraphs with automorphisms (PAPERS.md), a k-fault-tolerant
// supergraph of a graph Y on n nodes is a graph Y* on n + k nodes such
// that deleting *any* k nodes of Y* leaves a graph that still contains Y
// as a subgraph — the surviving hardware can always be relabelled to run
// Y's workload.
//
// Two constructions:
//   k_fault_circulant — the automorphism-exploiting construction for
//     circulant nuclei Cay(Z_n, S) (rings, complete graphs, chordal
//     rings): Y* = Cay(Z_{n+k}, S') with S' = {s + j : s in S, 0 <= j <= k}
//     (offsets canonicalized mod n + k). Proof sketch: delete any k nodes
//     of Z_{n+k} and list the n survivors in cyclic order z_0 < ... <
//     z_{n-1}; map vertex i of Y to z_i. A Y-edge (i, i + s) maps to
//     (z_i, z_{i+s}), whose cyclic offset is s plus the number of deleted
//     nodes in between — between s and s + k, all of which S' covers. The
//     cyclic rotation automorphism of Y* is what makes one connection-set
//     widening cover every failure pattern.
//   k_fault_universal — Hayes' classic fallback for arbitrary graphs:
//     k spare nodes adjacent to everything. Always valid (map each deleted
//     node to a spare, keep the rest in place) but costs k*n + C(k,2)
//     extra links; the measured gap to the circulant construction is the
//     point of the cost comparison in tools/ipg_resilience.
//
// verify_k_containment re-checks the property from scratch — backtracking
// subgraph isomorphism per k-deletion, independent of either
// construction's embedding argument — exhaustively when C(n+k, k) is
// small, by seeded sampling beyond.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace ipg::resilience {

using topology::NodeId;

/// Circulant presentation of a graph under its given labelling:
/// Cay(Z_n, ±offsets), offsets in 1..n/2 ascending.
struct CirculantSpec {
  std::size_t n = 0;
  std::vector<std::size_t> offsets;
};

/// Detects whether @p g is circulant *under its given node labelling*
/// (node v adjacent to exactly v ± o mod n for a fixed offset set): true
/// for ring_graph, complete_graph, and the ring/complete nucleus graphs.
/// This is deliberately not full circulant-graph recognition (that would
/// need graph isomorphism); a nullopt just routes the caller to the
/// universal-spares fallback.
std::optional<CirculantSpec> circulant_spec(const topology::Graph& g);

struct Supergraph {
  topology::Graph graph;  ///< n + k nodes; originals keep ids 0..n-1
  std::size_t original_nodes = 0;
  std::size_t spares = 0;           ///< k
  std::size_t original_edges = 0;   ///< undirected edges of the original
  std::size_t extra_edges = 0;      ///< edges beyond the original's
  std::size_t max_degree = 0;       ///< of the supergraph
  std::string method;               ///< "circulant" or "universal-spares"
};

/// Ganesan-style circulant widening (see file comment). @p k >= 1.
Supergraph k_fault_circulant(const CirculantSpec& spec, std::size_t k);

/// Universal-spares fallback: @p k spares adjacent to every other node
/// (spares included). Valid for any graph; the cost baseline.
Supergraph k_fault_universal(const topology::Graph& g, std::size_t k);

/// The best construction available for @p g: circulant when the labelling
/// admits it, universal spares otherwise.
Supergraph k_fault_supergraph(const topology::Graph& g, std::size_t k);

struct ContainmentReport {
  std::size_t subsets_checked = 0;
  bool exhaustive = false;  ///< every k-subset checked (not sampled)
  std::size_t failures = 0;
  std::string first_failure;  ///< deleted set of the first failure, if any

  bool passed() const noexcept { return failures == 0; }
};

/// Verifies the k-fault-tolerance property of @p sg against @p original:
/// for each k-subset F of supergraph nodes (every subset when C(n+k, k)
/// <= max_subsets, else max_subsets seeded random subsets), checks that
/// the supergraph minus F contains @p original as a subgraph via
/// backtracking subgraph isomorphism (degree + adjacency pruning).
/// Supergraphs are capped at 64 nodes — the check is exponential in the
/// worst case and meant for small nuclei.
ContainmentReport verify_k_containment(const topology::Graph& original,
                                       const Supergraph& sg, std::size_t k,
                                       std::size_t max_subsets = 4096,
                                       std::uint64_t seed = 1);

}  // namespace ipg::resilience
