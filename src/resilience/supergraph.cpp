#include "resilience/supergraph.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::resilience {
namespace {

using topology::Graph;
using topology::GraphBuilder;

/// Sorted, deduplicated neighbor list of @p v (parallel arcs collapse).
std::vector<NodeId> neighbor_set(const Graph& g, NodeId v) {
  std::vector<NodeId> out;
  for (const topology::Arc& a : g.arcs_of(v)) out.push_back(a.to);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Undirected edge count of Cay(Z_n, ±offsets): each offset o contributes
/// n edges, except the diameter chord o == n/2 which contributes n/2.
std::size_t circulant_edges(std::size_t n, const std::vector<std::size_t>& offsets) {
  std::size_t edges = 0;
  for (const std::size_t o : offsets) edges += (2 * o == n) ? n / 2 : n;
  return edges;
}

Graph build_circulant(const std::string& name, std::size_t n,
                      const std::vector<std::size_t>& offsets) {
  GraphBuilder b(name, n, offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const std::size_t o = offsets[i];
    for (NodeId v = 0; v < n; ++v) {
      b.add_arc(v, static_cast<NodeId>((v + o) % n), static_cast<std::uint16_t>(i));
      if (2 * o != n) {
        b.add_arc(v, static_cast<NodeId>((v + n - o) % n),
                  static_cast<std::uint16_t>(i));
      }
    }
  }
  return std::move(b).build();
}

}  // namespace

std::optional<CirculantSpec> circulant_spec(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n < 3) return std::nullopt;
  // Difference set of node 0; must be self-loop-free and negation-closed.
  std::vector<std::size_t> diffs;
  for (const NodeId u : neighbor_set(g, 0)) diffs.push_back(u % n);
  if (diffs.empty()) return std::nullopt;
  for (const std::size_t d : diffs) {
    if (d == 0) return std::nullopt;
    if (!std::binary_search(diffs.begin(), diffs.end(), (n - d) % n)) {
      return std::nullopt;
    }
  }
  // Every node's neighborhood must be exactly v + diffs (mod n).
  for (NodeId v = 1; v < n; ++v) {
    std::vector<NodeId> expected;
    expected.reserve(diffs.size());
    for (const std::size_t d : diffs) {
      expected.push_back(static_cast<NodeId>((v + d) % n));
    }
    std::sort(expected.begin(), expected.end());
    if (neighbor_set(g, v) != expected) return std::nullopt;
  }
  CirculantSpec spec;
  spec.n = n;
  for (const std::size_t d : diffs) spec.offsets.push_back(std::min(d, n - d));
  std::sort(spec.offsets.begin(), spec.offsets.end());
  spec.offsets.erase(std::unique(spec.offsets.begin(), spec.offsets.end()),
                     spec.offsets.end());
  return spec;
}

Supergraph k_fault_circulant(const CirculantSpec& spec, std::size_t k) {
  IPG_CHECK(spec.n >= 3 && !spec.offsets.empty(), "degenerate circulant spec");
  IPG_CHECK(k >= 1, "k-fault augmentation needs k >= 1");
  const std::size_t n2 = spec.n + k;
  // Widen each offset s to the band s..s+k; canonicalize mod n2. Every
  // widened offset stays in 1..n2-1 (s <= n/2, so s + k < n + k).
  std::vector<std::size_t> widened;
  for (const std::size_t s : spec.offsets) {
    for (std::size_t j = 0; j <= k; ++j) {
      const std::size_t o = s + j;
      widened.push_back(std::min(o, n2 - o));
    }
  }
  std::sort(widened.begin(), widened.end());
  widened.erase(std::unique(widened.begin(), widened.end()), widened.end());

  std::string name = "C" + std::to_string(n2) + "(";
  for (std::size_t i = 0; i < widened.size(); ++i) {
    name += (i > 0 ? "," : "") + std::to_string(widened[i]);
  }
  name += ")";

  Supergraph sg;
  sg.graph = build_circulant(name, n2, widened);
  sg.original_nodes = spec.n;
  sg.spares = k;
  sg.original_edges = circulant_edges(spec.n, spec.offsets);
  sg.extra_edges = sg.graph.num_edges() - sg.original_edges;
  sg.max_degree = sg.graph.max_degree();
  sg.method = "circulant";
  return sg;
}

Supergraph k_fault_universal(const Graph& g, std::size_t k) {
  IPG_CHECK(k >= 1, "k-fault augmentation needs k >= 1");
  const std::size_t n = g.num_nodes();
  IPG_CHECK(n >= 1, "cannot augment an empty graph");
  const std::size_t n2 = n + k;
  const auto spare_dim = static_cast<std::uint16_t>(g.num_dims());
  GraphBuilder b(g.name() + "+" + std::to_string(k) + "spares", n2,
                 g.num_dims() + 1);
  for (NodeId v = 0; v < n; ++v) {
    for (const topology::Arc& a : g.arcs_of(v)) b.add_arc(v, a.to, a.dim);
  }
  for (NodeId s = static_cast<NodeId>(n); s < n2; ++s) {
    for (NodeId u = 0; u < s; ++u) b.add_edge(u, s, spare_dim);
  }
  Supergraph sg;
  sg.graph = std::move(b).build();
  sg.original_nodes = n;
  sg.spares = k;
  sg.original_edges = g.num_edges();
  sg.extra_edges = k * n + k * (k - 1) / 2;
  sg.max_degree = sg.graph.max_degree();
  sg.method = "universal-spares";
  return sg;
}

Supergraph k_fault_supergraph(const Graph& g, std::size_t k) {
  if (const auto spec = circulant_spec(g)) return k_fault_circulant(*spec, k);
  return k_fault_universal(g, k);
}

namespace {

/// Backtracking subgraph-isomorphism over <= 64-node bitmask adjacency:
/// does @p survivors (a node mask of the supergraph) induce a subgraph
/// containing the original? Vertices are placed in @p order (connected
/// expansion); a candidate must be a surviving unused node whose surviving
/// degree covers the original degree and which is adjacent to the images
/// of all previously placed original-neighbors.
struct Embedder {
  const std::vector<std::uint64_t>& oadj;      // original adjacency masks
  const std::vector<std::uint64_t>& sadj;      // supergraph adjacency masks
  const std::vector<std::uint8_t>& order;      // placement order
  const std::vector<std::uint8_t>& order_pos;  // vertex -> placement index
  std::uint64_t survivors;
  std::vector<std::uint8_t> image;  // original vertex -> supergraph node

  bool place(std::size_t idx, std::uint64_t used) {
    if (idx == order.size()) return true;
    const std::uint8_t v = order[idx];
    std::uint64_t candidates = survivors & ~used;
    // Adjacency to already-placed neighbors of v.
    std::uint64_t nb = oadj[v];
    while (nb != 0) {
      const auto w = static_cast<std::uint8_t>(std::countr_zero(nb));
      nb &= nb - 1;
      if (order_pos[w] < idx) candidates &= sadj[image[w]];
    }
    const int needed = std::popcount(oadj[v]);
    while (candidates != 0) {
      const auto u = static_cast<std::uint8_t>(std::countr_zero(candidates));
      candidates &= candidates - 1;
      if (std::popcount(sadj[u] & survivors) < needed) continue;
      image[v] = u;
      if (place(idx + 1, used | (1ull << u))) return true;
    }
    return false;
  }
};

std::vector<std::uint64_t> adjacency_masks(const Graph& g) {
  std::vector<std::uint64_t> adj(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const topology::Arc& a : g.arcs_of(v)) {
      if (a.to != v) adj[v] |= 1ull << a.to;
    }
  }
  return adj;
}

/// Connected-expansion placement order: highest degree first, then always
/// the vertex with the most already-placed neighbors (ties: degree, id).
std::vector<std::uint8_t> placement_order(const std::vector<std::uint64_t>& oadj) {
  const std::size_t n = oadj.size();
  std::vector<std::uint8_t> order;
  std::vector<bool> placed(n, false);
  std::uint64_t placed_mask = 0;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    int best_placed_nb = -1, best_deg = -1;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      const int pn = std::popcount(oadj[v] & placed_mask);
      const int dg = std::popcount(oadj[v]);
      if (pn > best_placed_nb || (pn == best_placed_nb && dg > best_deg)) {
        best = v;
        best_placed_nb = pn;
        best_deg = dg;
      }
    }
    placed[best] = true;
    placed_mask |= 1ull << best;
    order.push_back(static_cast<std::uint8_t>(best));
  }
  return order;
}

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) {
    // Stays exact for the tiny (n, k) this file handles.
    r = r * (n - i) / (i + 1);
  }
  return r;
}

}  // namespace

ContainmentReport verify_k_containment(const Graph& original,
                                       const Supergraph& sg, std::size_t k,
                                       std::size_t max_subsets,
                                       std::uint64_t seed) {
  const std::size_t n = original.num_nodes();
  const std::size_t n2 = sg.graph.num_nodes();
  IPG_CHECK(n2 <= 64, "containment verification is capped at 64 nodes");
  IPG_CHECK(n + k <= n2, "deleting k nodes must leave room for the original");
  IPG_CHECK(max_subsets >= 1, "need at least one subset to check");

  const std::vector<std::uint64_t> oadj = adjacency_masks(original);
  const std::vector<std::uint64_t> sadj = adjacency_masks(sg.graph);
  const std::vector<std::uint8_t> order = placement_order(oadj);
  std::vector<std::uint8_t> order_pos(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) order_pos[order[i]] = static_cast<std::uint8_t>(i);

  const std::uint64_t all =
      n2 == 64 ? ~0ull : ((1ull << n2) - 1);

  ContainmentReport report;
  const auto check_subset = [&](std::uint64_t deleted) {
    ++report.subsets_checked;
    Embedder e{oadj, sadj, order, order_pos, all & ~deleted,
               std::vector<std::uint8_t>(n, 0)};
    if (!e.place(0, 0)) {
      if (report.failures == 0) {
        std::string desc = "deleted {";
        std::uint64_t d = deleted;
        bool first = true;
        while (d != 0) {
          const int v = std::countr_zero(d);
          d &= d - 1;
          desc += (first ? "" : ", ") + std::to_string(v);
          first = false;
        }
        report.first_failure = desc + "}";
      }
      ++report.failures;
    }
  };

  const std::size_t total = binomial(n2, k);
  if (total <= max_subsets) {
    report.exhaustive = true;
    // Lexicographic k-combinations of {0..n2-1}.
    std::vector<std::size_t> idx(k);
    std::iota(idx.begin(), idx.end(), 0);
    for (;;) {
      std::uint64_t mask = 0;
      for (const std::size_t i : idx) mask |= 1ull << i;
      check_subset(mask);
      // Advance to the next combination.
      std::size_t i = k;
      while (i > 0 && idx[i - 1] == n2 - k + (i - 1)) --i;
      if (i == 0) break;
      ++idx[i - 1];
      for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
    }
  } else {
    report.exhaustive = false;
    util::Xoshiro256 rng(seed);
    std::vector<std::size_t> nodes(n2);
    std::iota(nodes.begin(), nodes.end(), 0);
    for (std::size_t s = 0; s < max_subsets; ++s) {
      // Partial Fisher–Yates: the first k entries become the subset.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + rng.below(n2 - i);
        std::swap(nodes[i], nodes[j]);
      }
      std::uint64_t mask = 0;
      for (std::size_t i = 0; i < k; ++i) mask |= 1ull << nodes[i];
      check_subset(mask);
    }
  }
  return report;
}

}  // namespace ipg::resilience
