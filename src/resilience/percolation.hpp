#pragma once
// Monte Carlo percolation availability studies (docs/ROBUSTNESS.md).
//
// The fault drills of PR 2 exercise *scripted* failure scenarios; this
// engine answers the production question instead: what availability does an
// MCMP fabric deliver when every link (or node) fails independently with
// probability p? Following Jin & Reidys' random induced subgraphs of
// transposition Cayley graphs (PAPERS.md), each trial samples a
// Bernoulli(p) failure set, measures the surviving structure (largest
// component, s–t reachability), and — through the existing engines via the
// parallel sweep driver (sim/sweep) — the surviving service (delivered
// fraction, latency inflation, reroute-hop overhead) under fault-aware
// rerouting and retries.
//
// Determinism contract: every trial's failure set and simulation seed are
// pure functions of (config seed, p index, trial index) via
// util::derive_seed, and aggregation runs in trial order, so a sweep's
// curve is bit-identical for any thread count and identical to running
// each trial alone. test_resilience pins this.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/traffic.hpp"
#include "topology/graph.hpp"
#include "util/thread_pool.hpp"

namespace ipg::resilience {

using topology::NodeId;

enum class FailureMode : std::uint8_t {
  kLinks,  ///< every undirected link fails independently with probability p
  kNodes,  ///< every node fails independently (taking its links with it)
};

/// One sampled failure set: the unordered link pairs (sorted ascending, so
/// membership tests can binary-search) and/or the dead nodes. A pure
/// function of (graph, mode, p, seed) — see sample_bernoulli_failures.
struct FailureSample {
  std::vector<std::pair<NodeId, NodeId>> dead_links;  ///< (min, max) pairs
  std::vector<NodeId> dead_nodes;                     ///< ascending
};

/// Draws a Bernoulli(p) failure set over @p g's undirected links (kLinks;
/// restricted to off-chip links when @p offchip_only and @p chips is
/// non-null) or nodes (kNodes). Deterministic: one bernoulli draw per
/// eligible element, in ascending element order, from Xoshiro256(@p seed).
FailureSample sample_bernoulli_failures(const topology::Graph& g,
                                        const topology::Clustering* chips,
                                        bool offchip_only, FailureMode mode,
                                        double p, std::uint64_t seed);

/// Converts a failure sample into a FaultPlan failing everything at
/// @p time (links first, then nodes, each in ascending order).
sim::FaultPlan to_fault_plan(const FailureSample& sample, double time = 0.0);

/// Union-find view of the graph that survives a failure sample: a node is
/// alive unless in dead_nodes; a link survives when it is not in
/// dead_links and both endpoints are alive. Answers the static percolation
/// questions (connectivity, component sizes, s–t reachability) without
/// materializing a degraded Graph.
class SurvivorComponents {
 public:
  SurvivorComponents(const topology::Graph& g, const FailureSample& sample);

  bool alive(NodeId v) const noexcept { return alive_[v] != 0; }
  std::size_t num_alive() const noexcept { return num_alive_; }

  /// False when either endpoint is dead.
  bool same_component(NodeId a, NodeId b) const noexcept;

  /// Size of the largest surviving component (0 when nothing is alive).
  std::size_t largest_component() const noexcept { return largest_; }

  /// True when every alive node is in one component (an alive-but-isolated
  /// node disconnects the survivors; false when nothing is alive).
  bool all_alive_connected() const noexcept;

 private:
  NodeId find(NodeId v) const noexcept;

  std::vector<std::uint8_t> alive_;
  mutable std::vector<NodeId> parent_;  ///< path-halving find
  std::size_t num_alive_ = 0;
  std::size_t largest_ = 0;
  std::size_t num_components_ = 0;  ///< among alive nodes
};

struct PercolationConfig {
  /// Failure probabilities, one output point per entry (include 0.0 for an
  /// explicit healthy reference point).
  std::vector<double> probabilities;
  std::size_t trials = 16;  ///< Monte Carlo replicates per probability
  std::uint64_t seed = 1;
  FailureMode mode = FailureMode::kLinks;
  /// kLinks only: restrict failures to off-chip links (chip-internal wiring
  /// assumed reliable, the usual MCMP failure model).
  bool offchip_only = false;
  /// Node pairs sampled per trial for the s–t reachability estimate.
  std::size_t st_samples = 16;

  // -- dynamic (simulated-service) half. Skipped when with_simulation is
  // false: the curve then carries structure metrics only.
  bool with_simulation = true;
  double rate = 0.05;               ///< open-loop injection probability
  std::size_t inject_cycles = 200;  ///< injection window length
  /// Base simulator knobs (engine, retries, switching, ...). fault_plan and
  /// seed are overwritten per trial; when max_cycles is 0 the sweep caps
  /// degraded runs at 50x the injection window so blackout trials with
  /// deep retry ladders still terminate promptly.
  sim::SimConfig sim;

  // -- optional cross-run result cache (src/store). Every trial's failure
  // set — and so its FaultPlan — is a pure function of (seed, p index,
  // trial index), and the plan is part of the key, so a warm cache replays
  // an identical sweep with zero simulator (and zero router) invocations.
  sim::ResultCache* cache = nullptr;
  /// Names the Router passed to percolation_sweep. Routers are opaque
  /// callables, so caching is keyed on this tag: REQUIRED non-empty for
  /// caching to engage, and the caller must change it whenever the routing
  /// function changes ("canonical" for the stock per-topology routers).
  std::string router_tag;
  /// Same contract for the TrafficPattern ("uniform" for uniform_traffic).
  std::string pattern_tag;
};

struct PercolationPoint {
  double p = 0;
  std::size_t trials = 0;
  // Structure (static percolation over the sampled failure sets).
  double connected_fraction = 0;          ///< trials with all alive nodes connected
  double largest_component_fraction = 0;  ///< mean |LCC| / N
  double st_reachability = 0;             ///< mean fraction of sampled pairs connected
  // Service (fault-aware simulation; NaN/0 when with_simulation is false).
  double delivered_fraction = 0;  ///< mean over trials
  /// Mean delivered-trial avg latency over the healthy baseline's avg
  /// latency; NaN when no trial delivered anything (total blackout).
  double latency_inflation = 0;
  double reroute_hops_per_delivered = 0;  ///< detour overhead per delivered packet
  double retransmits_per_injected = 0;    ///< retry pressure
};

struct PercolationCurve {
  std::string name;
  /// Healthy-baseline average latency (cycles) the inflation is relative
  /// to; NaN when with_simulation is false.
  double healthy_avg_latency = 0;
  std::vector<PercolationPoint> points;  ///< one per probability, in order
};

/// Runs the full availability study for one network: for each probability
/// and trial, samples a failure set, measures the surviving structure, and
/// (when enabled) runs the open-loop workload with the corresponding
/// FaultPlan through run_sweep on @p pool. Bit-identical for every thread
/// count. @p pattern draws each injected packet's destination.
PercolationCurve percolation_sweep(
    const sim::SimNetwork& net, const sim::Router& route,
    const sim::TrafficPattern& pattern, const PercolationConfig& cfg,
    util::ThreadPool& pool = util::ThreadPool::global());

}  // namespace ipg::resilience
