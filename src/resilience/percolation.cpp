#include "resilience/percolation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "sim/sweep.hpp"
#include "store/fingerprint.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::resilience {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Distinct undirected links of @p g as sorted (min, max) pairs, optionally
/// off-chip only. Sorted order makes the Bernoulli draw sequence — and so
/// the whole sample — a pure function of (graph, filter, seed).
std::vector<std::pair<NodeId, NodeId>> eligible_links(
    const topology::Graph& g, const topology::Clustering* chips,
    bool offchip_only) {
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const topology::Arc& a : g.arcs_of(v)) {
      if (a.to <= v) continue;  // one entry per unordered pair
      if (offchip_only && chips != nullptr && !chips->is_intercluster(v, a.to)) {
        continue;
      }
      links.emplace_back(v, a.to);
    }
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

}  // namespace

FailureSample sample_bernoulli_failures(const topology::Graph& g,
                                        const topology::Clustering* chips,
                                        bool offchip_only, FailureMode mode,
                                        double p, std::uint64_t seed) {
  IPG_CHECK(std::isfinite(p) && p >= 0 && p <= 1,
            "failure probability must be in [0, 1]");
  FailureSample sample;
  util::Xoshiro256 rng(seed);
  if (mode == FailureMode::kLinks) {
    for (const auto& link : eligible_links(g, chips, offchip_only)) {
      if (rng.bernoulli(p)) sample.dead_links.push_back(link);
    }
  } else {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.bernoulli(p)) sample.dead_nodes.push_back(v);
    }
  }
  return sample;
}

sim::FaultPlan to_fault_plan(const FailureSample& sample, double time) {
  sim::FaultPlan plan;
  for (const auto& [a, b] : sample.dead_links) plan.fail_link(time, a, b);
  for (const NodeId v : sample.dead_nodes) plan.fail_node(time, v);
  return plan;
}

SurvivorComponents::SurvivorComponents(const topology::Graph& g,
                                       const FailureSample& sample)
    : alive_(g.num_nodes(), 1), parent_(g.num_nodes()) {
  for (const NodeId v : sample.dead_nodes) {
    IPG_CHECK(v < g.num_nodes(), "dead node out of range");
    alive_[v] = 0;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) parent_[v] = v;
  num_alive_ = static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), std::uint8_t{1}));

  const auto link_dead = [&sample](NodeId a, NodeId b) {
    const auto key = std::minmax(a, b);
    return std::binary_search(sample.dead_links.begin(),
                              sample.dead_links.end(),
                              std::pair<NodeId, NodeId>(key.first, key.second));
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive_[v] == 0) continue;
    for (const topology::Arc& a : g.arcs_of(v)) {
      if (a.to <= v || alive_[a.to] == 0 || link_dead(v, a.to)) continue;
      const NodeId ra = find(v);
      const NodeId rb = find(a.to);
      if (ra != rb) parent_[ra] = rb;
    }
  }
  std::vector<std::size_t> size(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive_[v] == 0) continue;
    const NodeId r = find(v);
    if (size[r]++ == 0) ++num_components_;
    largest_ = std::max(largest_, size[r]);
  }
}

NodeId SurvivorComponents::find(NodeId v) const noexcept {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool SurvivorComponents::same_component(NodeId a, NodeId b) const noexcept {
  if (alive_[a] == 0 || alive_[b] == 0) return false;
  return find(a) == find(b);
}

bool SurvivorComponents::all_alive_connected() const noexcept {
  return num_alive_ > 0 && num_components_ == 1;
}

PercolationCurve percolation_sweep(const sim::SimNetwork& net,
                                   const sim::Router& route,
                                   const sim::TrafficPattern& pattern,
                                   const PercolationConfig& cfg,
                                   util::ThreadPool& pool) {
  IPG_CHECK(cfg.trials >= 1, "at least one trial per probability");
  for (const double p : cfg.probabilities) {
    IPG_CHECK(std::isfinite(p) && p >= 0 && p <= 1,
              "failure probability must be in [0, 1]");
  }
  const topology::Graph& g = net.graph();
  const std::size_t n = g.num_nodes();

  PercolationCurve curve;
  curve.name = g.name();
  curve.healthy_avg_latency = kNaN;

  // Per-trial failure samples, their static metrics, and the sweep jobs.
  // Trial seeds are derived from (config seed, p index, trial index) alone,
  // so the curve is independent of thread count and of which other points
  // are in the sweep.
  sim::SimConfig base = cfg.sim;
  base.observer = nullptr;  // sweep jobs must not share an observer
  if (base.max_cycles == 0) {
    base.max_cycles =
        50.0 * static_cast<double>(std::max<std::size_t>(cfg.inject_cycles, 1));
  }

  struct TrialStatics {
    bool connected = false;
    double lcc_fraction = 0;
    double st_reach = 0;
  };
  std::vector<std::vector<TrialStatics>> statics(cfg.probabilities.size());
  std::vector<sim::SweepJob> jobs;
  // Each job copies its Router and TrafficPattern (the sweep contract:
  // stateful route caches must never be shared across worker threads).
  const double rate = cfg.rate;
  const std::size_t inject_cycles = cfg.inject_cycles;
  // Caching engages only when the caller both supplied a cache and tagged
  // the opaque Router/TrafficPattern callables — an untagged callable can't
  // be keyed soundly. The per-trial FaultPlan is covered by the SimConfig
  // fingerprint, so every trial keys distinctly.
  const bool keyed = cfg.cache != nullptr && !cfg.router_tag.empty() &&
                     !cfg.pattern_tag.empty();
  const std::string workload =
      keyed ? store::workload_open(rate, inject_cycles, cfg.pattern_tag)
            : std::string();
  const auto job_key = [&](const sim::SimConfig& job_cfg) {
    return keyed ? store::sim_cache_key(net, cfg.router_tag, workload, job_cfg)
                 : std::string();
  };
  if (cfg.with_simulation) {
    sim::SimConfig healthy = base;
    healthy.fault_plan = nullptr;
    healthy.seed = util::derive_seed(cfg.seed, 0);
    jobs.push_back({"healthy",
                    [&net, route, pattern, rate, inject_cycles, healthy] {
                      return sim::run_open(net, route, pattern, rate,
                                           inject_cycles, healthy);
                    },
                    job_key(healthy)});
  }
  for (std::size_t pi = 0; pi < cfg.probabilities.size(); ++pi) {
    const double p = cfg.probabilities[pi];
    const std::uint64_t pseed = util::derive_seed(cfg.seed, pi + 1);
    statics[pi].resize(cfg.trials);
    for (std::size_t t = 0; t < cfg.trials; ++t) {
      const std::uint64_t trial_seed = util::derive_seed(pseed, t + 1);
      const FailureSample sample = sample_bernoulli_failures(
          g, &net.chips(), cfg.offchip_only, cfg.mode, p, trial_seed);

      const SurvivorComponents comps(g, sample);
      TrialStatics& st = statics[pi][t];
      st.connected = comps.all_alive_connected();
      st.lcc_fraction = n == 0 ? 0
                               : static_cast<double>(comps.largest_component()) /
                                     static_cast<double>(n);
      if (cfg.st_samples > 0 && n >= 2) {
        util::Xoshiro256 pairs(util::derive_seed(trial_seed, 2));
        std::size_t reachable = 0;
        for (std::size_t i = 0; i < cfg.st_samples; ++i) {
          const NodeId s = static_cast<NodeId>(pairs.below(n));
          NodeId d = static_cast<NodeId>(pairs.below(n - 1));
          if (d >= s) ++d;
          if (comps.same_component(s, d)) ++reachable;
        }
        st.st_reach = static_cast<double>(reachable) /
                      static_cast<double>(cfg.st_samples);
      } else {
        st.st_reach = kNaN;
      }

      if (cfg.with_simulation) {
        auto plan = std::make_shared<const sim::FaultPlan>(to_fault_plan(sample));
        sim::SimConfig job_cfg = base;
        job_cfg.fault_plan = std::move(plan);
        job_cfg.seed = trial_seed;
        jobs.push_back({"p=" + std::to_string(p) + " trial " + std::to_string(t),
                        [&net, route, pattern, rate, inject_cycles, job_cfg] {
                          return sim::run_open(net, route, pattern, rate,
                                               inject_cycles, job_cfg);
                        },
                        job_key(job_cfg)});
      }
    }
  }

  std::vector<sim::SweepOutcome> outcomes;
  if (cfg.with_simulation) outcomes = sim::run_sweep(jobs, pool, nullptr, cfg.cache);
  std::size_t next_outcome = 0;
  if (cfg.with_simulation) {
    curve.healthy_avg_latency = outcomes[next_outcome++].result.avg_latency_cycles;
  }

  for (std::size_t pi = 0; pi < cfg.probabilities.size(); ++pi) {
    PercolationPoint pt;
    pt.p = cfg.probabilities[pi];
    pt.trials = cfg.trials;
    double connected = 0, lcc = 0, st_sum = 0;
    std::size_t st_count = 0;
    for (const TrialStatics& st : statics[pi]) {
      connected += st.connected ? 1.0 : 0.0;
      lcc += st.lcc_fraction;
      if (!std::isnan(st.st_reach)) {
        st_sum += st.st_reach;
        ++st_count;
      }
    }
    const auto trials_d = static_cast<double>(cfg.trials);
    pt.connected_fraction = connected / trials_d;
    pt.largest_component_fraction = lcc / trials_d;
    pt.st_reachability = st_count > 0 ? st_sum / static_cast<double>(st_count)
                                      : kNaN;

    if (cfg.with_simulation) {
      double delivered_fraction = 0, latency_sum = 0;
      std::size_t delivered_trials = 0, delivered = 0, reroutes = 0,
                  injected = 0, retransmitted = 0;
      for (std::size_t t = 0; t < cfg.trials; ++t) {
        const sim::SimResult& r = outcomes[next_outcome++].result;
        delivered_fraction += r.delivered_fraction;
        delivered += r.packets_delivered;
        reroutes += r.reroute_hops;
        injected += r.packets_injected;
        retransmitted += r.packets_retransmitted;
        if (r.packets_delivered > 0) {
          latency_sum += r.avg_latency_cycles;
          ++delivered_trials;
        }
      }
      pt.delivered_fraction = delivered_fraction / trials_d;
      pt.latency_inflation =
          delivered_trials > 0
              ? (latency_sum / static_cast<double>(delivered_trials)) /
                    curve.healthy_avg_latency
              : kNaN;
      pt.reroute_hops_per_delivered =
          delivered > 0 ? static_cast<double>(reroutes) /
                              static_cast<double>(delivered)
                        : kNaN;
      pt.retransmits_per_injected =
          injected > 0 ? static_cast<double>(retransmitted) /
                             static_cast<double>(injected)
                       : 0.0;
    } else {
      pt.delivered_fraction = kNaN;
      pt.latency_inflation = kNaN;
      pt.reroute_hops_per_delivered = kNaN;
      pt.retransmits_per_injected = kNaN;
    }
    curve.points.push_back(pt);
  }
  return curve;
}

}  // namespace ipg::resilience
