#include "sim/mnb.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/check.hpp"

namespace ipg::sim {

namespace {

/// BFS broadcast tree from @p root: children[v] = ports to forward on.
/// Deterministic (ports scanned in order).
std::vector<std::vector<std::uint16_t>> bfs_tree(const SimNetwork& net,
                                                 NodeId root) {
  const auto& g = net.graph();
  std::vector<std::vector<std::uint16_t>> children(g.num_nodes());
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<NodeId> q{root};
  seen[root] = true;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    const auto arcs = g.arcs_of(v);
    for (std::uint16_t p = 0; p < arcs.size(); ++p) {
      const NodeId u = arcs[p].to;
      if (seen[u]) continue;
      seen[u] = true;
      children[v].push_back(p);
      q.push_back(u);
    }
  }
  return children;
}

struct Send {
  NodeId from;
  std::uint16_t port;
  NodeId message;  ///< message id = its source node
};

struct Completion {
  double time;
  std::size_t index;  ///< into in-flight sends
  bool operator>(const Completion& o) const noexcept { return time > o.time; }
};

}  // namespace

MnbResult run_mnb(const SimNetwork& net, double message_length_flits) {
  const std::size_t n = net.num_nodes();
  IPG_CHECK(n >= 2 && n <= 1024, "MNB execution supports 2..1024 nodes");

  // Trees for every source.
  std::vector<std::vector<std::vector<std::uint16_t>>> tree(n);
  for (NodeId src = 0; src < n; ++src) tree[src] = bfs_tree(net, src);

  // Per-link FIFO queue of pending sends and busy-until time.
  std::vector<std::deque<Send>> queue(net.num_links());
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<std::size_t> peak_queue(net.num_links(), 0);

  std::vector<Send> in_flight;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> events;

  MnbResult res;

  auto start_if_idle = [&](LinkId link, double now) {
    if (busy_until[link] > now || queue[link].empty()) return;
    const Send s = queue[link].front();
    queue[link].pop_front();
    const double done = now + message_length_flits / net.bandwidth(link);
    busy_until[link] = done;
    in_flight.push_back(s);
    events.push({done, in_flight.size() - 1});
  };

  auto enqueue_children = [&](NodeId at, NodeId message, double now) {
    for (const std::uint16_t port : tree[message][at]) {
      const LinkId link = net.link_of(at, port);
      queue[link].push_back({at, port, message});
      peak_queue[link] = std::max(peak_queue[link], queue[link].size());
      start_if_idle(link, now);
    }
  };

  for (NodeId src = 0; src < n; ++src) enqueue_children(src, src, 0.0);

  while (!events.empty()) {
    const Completion ev = events.top();
    events.pop();
    const Send s = in_flight[ev.index];
    const LinkId link = net.link_of(s.from, s.port);
    const NodeId to = net.arc(s.from, s.port).to;
    ++res.deliveries;
    res.makespan_cycles = std::max(res.makespan_cycles, ev.time);
    enqueue_children(to, s.message, ev.time);
    start_if_idle(link, ev.time);  // next queued message on this link
  }

  IPG_CHECK(res.deliveries == n * (n - 1), "MNB did not reach every node");
  double sum = 0;
  for (const auto p : peak_queue) sum += static_cast<double>(p);
  res.avg_link_queue_max = sum / static_cast<double>(net.num_links());
  return res;
}

}  // namespace ipg::sim
