#pragma once
// Parallel experiment sweep driver.
//
// Every MCMP experiment is a pile of independent simulations — rate points
// for a latency-vs-load curve, seed replicates for a batch average,
// switching modes for the insensitivity check. Each point is a closed
// deterministic function of its own config (run_* seed their own RNG from
// SimConfig::seed, and every job copies its Router/TrafficPattern so
// stateful route caches are never shared), so fanning the points across
// util::ThreadPool changes wall-clock time and nothing else: results are
// identical for any thread count, and identical to running each point
// alone. The sweep-determinism test pins this.

#include <chrono>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {

/// One independent simulation: a label for reporting plus a closure that
/// runs it. The closure must be self-contained and thread-safe (capture
/// shared state by value or const reference only).
///
/// cache_key (optional, empty = never cached) is the job's canonical
/// content address (store/fingerprint.hpp builds them). When run_sweep is
/// handed a ResultCache, keyed jobs are looked up before computing and
/// persisted after; the engines' bit-identity guarantee makes the two paths
/// indistinguishable — provided the key really covers every input the job
/// reads, which is the key producer's contract.
struct SweepJob {
  std::string label;
  std::function<SimResult()> run;
  std::string cache_key;
};

struct SweepOutcome {
  std::string label;
  SimResult result;
  bool from_cache = false;  ///< satisfied by a ResultCache hit, not computed
};

/// Lookup-before-compute / persist-after-compute hook for run_sweep.
/// Implementations must be thread-safe (worker threads share one cache) and
/// must only return results that are bit-identical to recomputation —
/// src/store's content-addressed ResultStore is the shipped implementation.
/// Defined here (not in src/store) so the sim layer stays free of any
/// storage dependency; in-memory test doubles implement it directly.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// True and fills @p out when @p key is present. A failed or corrupt
  /// entry must read as absent, never throw into the sweep.
  virtual bool lookup(const std::string& key, SimResult& out) = 0;

  /// Persists a freshly computed result under @p key. Must not throw;
  /// best-effort persistence (a full disk degrades to pass-through).
  virtual void store(const std::string& key, const SimResult& result) = 0;
};

/// Job-level progress hook for run_sweep. This observes sweep *jobs*, not
/// packet events (SimObserver does that, docs/OBSERVABILITY.md): jobs run
/// on pool worker threads, so on_job_done may be called concurrently —
/// implementations must be thread-safe. Progress never changes outcomes;
/// run_sweep stays deterministic for any thread count with or without one.
class SweepProgress {
 public:
  virtual ~SweepProgress() = default;

  /// Before any job runs (on the calling thread).
  virtual void on_sweep_begin(std::size_t /*total_jobs*/) {}
  /// After each job completes. @p done is the running completion count
  /// (1-based, in completion — not job — order); @p total the job count.
  virtual void on_job_done(const SweepOutcome& /*outcome*/,
                           std::size_t /*done*/, std::size_t /*total*/) {}
  /// After every job completed (on the calling thread).
  virtual void on_sweep_end() {}
};

/// Shipped SweepProgress: one line per completed job — counter, label,
/// delivered packets, elapsed wall time, and cumulative delivered-packet
/// throughput; cache hits are marked "[cached]" and totalled at the end.
/// The benches hand it std::cerr so stdout stays pure JSON.
class StreamSweepProgress final : public SweepProgress {
 public:
  explicit StreamSweepProgress(std::ostream& os) : os_(os) {}

  void on_sweep_begin(std::size_t total_jobs) override;
  void on_job_done(const SweepOutcome& outcome, std::size_t done,
                   std::size_t total) override;
  void on_sweep_end() override;

 private:
  std::ostream& os_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_{};
  std::size_t packets_ = 0;  ///< delivered, cumulative over finished jobs
  std::size_t cache_hits_ = 0;
};

/// Runs all jobs across @p pool; outcomes come back in job order.
/// @p progress (may be null) hears each completion as it happens.
/// @p cache (may be null) serves keyed jobs before compute and persists
/// fresh results after; because cached results are bit-identical to
/// recomputes, the sweep's outcomes are unchanged by any cache state —
/// only wall-clock time and SweepOutcome::from_cache differ.
std::vector<SweepOutcome> run_sweep(
    const std::vector<SweepJob>& jobs,
    util::ThreadPool& pool = util::ThreadPool::global(),
    SweepProgress* progress = nullptr, ResultCache* cache = nullptr);

/// Open-loop latency-vs-load curve: one job per rate point, all with the
/// same seed and pattern. @p net must outlive the jobs.
std::vector<SweepJob> open_rate_sweep(const SimNetwork& net,
                                      const Router& route,
                                      const TrafficPattern& pattern,
                                      std::span<const double> rates,
                                      std::size_t inject_cycles,
                                      const SimConfig& base);

/// Batch random-permutation replicates: job i draws its permutation from
/// Xoshiro256(seeds[i]) and runs with SimConfig::seed = seeds[i].
std::vector<SweepJob> batch_replicate_sweep(const SimNetwork& net,
                                            const Router& route,
                                            std::span<const std::uint64_t> seeds,
                                            const SimConfig& base);

/// Switching-insensitivity panel: the same batch snapshot under each mode.
std::vector<SweepJob> switching_sweep(const SimNetwork& net,
                                      const Router& route,
                                      const std::vector<NodeId>& dst,
                                      std::span<const Switching> modes,
                                      const SimConfig& base);

/// Degraded-mode axis: the same open-loop run under each fault plan (null
/// or empty entries are healthy baselines). Plans are shared pointers so
/// jobs stay cheap to copy and one plan can serve many sweep points;
/// job i runs with SimConfig::fault_plan = plans[i] and label "plan i".
std::vector<SweepJob> fault_plan_sweep(
    const SimNetwork& net, const Router& route, const TrafficPattern& pattern,
    double rate, std::size_t inject_cycles,
    std::span<const std::shared_ptr<const FaultPlan>> plans,
    const SimConfig& base);

/// Mean of one SimResult field over all outcomes (replicate averaging).
double mean_of(const std::vector<SweepOutcome>& outcomes,
               double SimResult::*field);

}  // namespace ipg::sim
