#pragma once
// Flat route storage with per-(src, dst) memoization.
//
// The seed engine gave every packet its own std::vector<uint16_t> source
// route — two heap allocations per packet (the router's dimension word plus
// the port vector), N(N-1) times for a total exchange. The arena replaces
// that with one shared, append-only port buffer: a packet carries a 6-byte
// (offset, length) reference, and each distinct (src, dst) pair is routed
// exactly once per run no matter how many packets travel it (open-loop runs
// revisit pairs constantly). One arena serves one simulation run, so there
// is no cross-run invalidation problem and no locking: concurrent sweep
// jobs each build their own.
//
// Thread-safety contract (sharded engine): every const member — lookup(),
// ports(), data(), the counters — is safe to call from any number of
// threads concurrently, PROVIDED no thread is mutating. The sharded engine
// exploits this in two ways: the healthy path builds one arena up front and
// all domains read it concurrently through data(); the faulty path gives
// each domain its own private arena (a memo shard keyed by route source, so
// shards never contend) and restricts mutation — put()/adopt()/eviction —
// to the domain's owner thread, with eviction additionally fenced to the
// serial sync barriers (see FaultRoutes::evict).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/network.hpp"
#include "sim/routers.hpp"

namespace ipg::sim {

/// Reference into a RouteArena's port buffer.
struct RouteRef {
  std::uint32_t offset = 0;
  std::uint16_t length = 0;
};

class RouteArena {
 public:
  /// @p net and @p route must outlive the arena.
  RouteArena(const SimNetwork& net, const Router& route)
      : net_(net), route_(route) {}

  void reserve(std::size_t routes, std::size_t total_hops) {
    memo_.reserve(routes);
    ports_.reserve(total_hops);
  }

  /// The route for (src, dst), computing and storing it on first request.
  RouteRef get(NodeId src, NodeId dst);

  /// Unmemoized variant: always routes and appends. For callers that visit
  /// each (src, dst) pair at most once — a total exchange walks all N(N-1)
  /// distinct pairs, so the memo's hash insert per pair is pure overhead.
  RouteRef append(NodeId src, NodeId dst);

  /// Memo lookup without computing: null if (src, dst) has no entry. The
  /// fault-aware data plane routes around the dead set itself and stores
  /// the result with put(), so it never wants get()'s blind router call.
  const RouteRef* lookup(NodeId src, NodeId dst) const {
    const auto it = memo_.find(key_of(src, dst));
    return it == memo_.end() ? nullptr : &it->second;
  }

  /// Appends an externally computed port route and (re)memoizes the pair.
  RouteRef put(NodeId src, NodeId dst, std::span<const std::uint16_t> ports);

  /// Appends a raw port sequence without touching the memo. Used to copy a
  /// migrating packet's remaining route from another domain's arena shard
  /// into this one at a sync barrier, so in-flight refs always resolve
  /// against the shard owned by the packet's current domain.
  RouteRef adopt(std::span<const std::uint16_t> ports);

  /// Drops every memo entry for which @p pred(src, dst, ref) returns true.
  /// The port storage is append-only, so refs already held by in-flight
  /// packets stay valid; only future lookups are affected. Used to
  /// invalidate routes that cross a newly failed link.
  template <typename Pred>
  void erase_memo_if(Pred pred) {
    for (auto it = memo_.begin(); it != memo_.end();) {
      const NodeId src = static_cast<NodeId>(it->first >> 32);
      const NodeId dst = static_cast<NodeId>(it->first & 0xffffffffu);
      if (pred(src, dst, it->second)) {
        it = memo_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Forgets every memoized pair (repairs may restore shorter routes, so
  /// stale-but-live entries must not shadow them).
  void clear_memo() { memo_.clear(); }

  std::span<const std::uint16_t> ports(RouteRef r) const noexcept {
    return {ports_.data() + r.offset, r.length};
  }
  /// Base pointer for offset-indexed access in the engine hot loop. Only
  /// valid until the next get() (the buffer may reallocate).
  const std::uint16_t* data() const noexcept { return ports_.data(); }

  std::size_t num_routes() const noexcept { return memo_.size(); }
  std::size_t num_hops_stored() const noexcept { return ports_.size(); }

 private:
  static std::uint64_t key_of(NodeId src, NodeId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  const SimNetwork& net_;
  const Router& route_;
  std::vector<std::uint16_t> ports_;
  std::unordered_map<std::uint64_t, RouteRef> memo_;
};

}  // namespace ipg::sim
