#include "sim/observer.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace ipg::sim {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kNumOctaves =
    static_cast<std::size_t>(LatencyHistogram::kMaxExp -
                             LatencyHistogram::kMinExp + 1);
// Bucket 0 holds zero (and negative, which latencies never are) values;
// octave buckets follow.
constexpr std::size_t kNumBuckets =
    1 + kNumOctaves * LatencyHistogram::kSubBuckets;

}  // namespace

void LatencyHistogram::reserve(std::size_t n) {
  if (buckets_.empty()) exact_.reserve(std::min(n, kExactCap));
}

std::size_t LatencyHistogram::bucket_of(double v) noexcept {
  if (!(v > 0)) return 0;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // frexp reports the exponent of the *upper* power of two; an octave here
  // is [2^(exp-1), 2^exp), indexed by exp clamped into the covered range.
  const int octave = std::clamp(exp, kMinExp, kMaxExp);
  std::size_t sub = 0;
  if (exp >= kMinExp && exp <= kMaxExp) {
    sub = static_cast<std::size_t>((m - 0.5) *
                                   static_cast<double>(2 * kSubBuckets));
    sub = std::min(sub, kSubBuckets - 1);
  } else if (exp > kMaxExp) {
    sub = kSubBuckets - 1;  // clamp overflow to the topmost bucket
  }
  return 1 + static_cast<std::size_t>(octave - kMinExp) * kSubBuckets + sub;
}

double LatencyHistogram::bucket_mid(std::size_t idx) noexcept {
  if (idx == 0) return 0.0;
  const std::size_t off = idx - 1;
  const int octave = static_cast<int>(off / kSubBuckets) + kMinExp;
  const auto sub = static_cast<double>(off % kSubBuckets);
  const double lower_m = 0.5 + sub / static_cast<double>(2 * kSubBuckets);
  const double width_m = 0.5 / static_cast<double>(kSubBuckets);
  return std::ldexp(lower_m + width_m / 2.0, octave);
}

void LatencyHistogram::fold_into_buckets() {
  buckets_.assign(kNumBuckets, 0);
  for (const double v : exact_) ++buckets_[bucket_of(v)];
  exact_.clear();
  exact_.shrink_to_fit();
}

void LatencyHistogram::record(double v) {
  sum_ += v;
  max_ = std::max(max_, v);
  ++count_;
  if (buckets_.empty()) {
    exact_.push_back(v);
    if (exact_.size() > kExactCap) fold_into_buckets();
    return;
  }
  ++buckets_[bucket_of(v)];
}

double LatencyHistogram::percentile(double pct) {
  IPG_CHECK(count_ > 0, "percentile of an empty latency sample");
  if (buckets_.empty()) return percentile_nearest_rank(exact_, pct);
  IPG_CHECK(pct > 0 && pct <= 100, "percentile must be in (0, 100]");
  const auto n = static_cast<double>(count_);
  std::size_t rank = static_cast<std::size_t>(std::ceil(n * pct / 100.0));
  rank = std::clamp<std::size_t>(rank, 1, count_);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_mid(i);
  }
  return bucket_mid(buckets_.size() - 1);  // unreachable: counts sum to n
}

// ---------------------------------------------------------------------------
// MetricsObserver
// ---------------------------------------------------------------------------

void MetricsObserver::on_run_begin(const SimNetwork& net) {
  ++counters_.runs;
  if (link_busy_.size() < net.num_links()) {
    link_busy_.resize(net.num_links(), 0.0);
  }
}

void MetricsObserver::on_inject(std::uint32_t /*packet*/, NodeId /*src*/,
                                NodeId /*dst*/, double /*time*/) {
  ++counters_.injected;
}

void MetricsObserver::on_hop(const HopRecord& hop) {
  ++counters_.hops;
  counters_.offchip_hops += hop.offchip ? 1 : 0;
  link_busy_[hop.link] += hop.tail_departure - hop.start;
}

void MetricsObserver::on_detour(std::uint32_t /*packet*/, NodeId /*at*/,
                                double /*time*/, std::uint16_t /*route_hops*/) {
  ++counters_.detours;
}

void MetricsObserver::on_retry(std::uint32_t /*packet*/,
                               std::uint32_t /*attempt*/, NodeId /*src*/,
                               double /*time*/, double /*resume_time*/) {
  ++counters_.retries;
}

void MetricsObserver::on_drop(std::uint32_t /*packet*/, NodeId /*at*/,
                              double /*time*/) {
  ++counters_.dropped;
}

void MetricsObserver::on_deliver(std::uint32_t /*packet*/, NodeId /*dst*/,
                                 double /*time*/, double latency) {
  ++counters_.delivered;
  latencies_.record(latency);
}

void MetricsObserver::on_fault(const FaultEvent& /*event*/) {
  ++counters_.faults_applied;
}

// ---------------------------------------------------------------------------
// ChromeTraceObserver
// ---------------------------------------------------------------------------

void ChromeTraceObserver::on_run_begin(const SimNetwork& net) {
  num_nodes_ = net.num_nodes();
  links_.resize(net.num_links());
  for (LinkId l = 0; l < net.num_links(); ++l) {
    links_[l] = {net.link_from(l), net.link_to(l), net.is_offchip(l)};
  }
}

bool ChromeTraceObserver::add(const Rec& rec) {
  if (recs_.size() >= max_events_) {
    truncated_ = true;
    return false;
  }
  recs_.push_back(rec);
  return true;
}

void ChromeTraceObserver::on_inject(std::uint32_t packet, NodeId src,
                                    NodeId /*dst*/, double time) {
  add({time, 0, src, packet, Kind::kInject});
}

void ChromeTraceObserver::on_hop(const HopRecord& hop) {
  add({hop.start, hop.tail_departure - hop.start,
       static_cast<std::uint32_t>(hop.link), hop.packet, Kind::kHop});
}

void ChromeTraceObserver::on_detour(std::uint32_t packet, NodeId at,
                                    double time, std::uint16_t /*route_hops*/) {
  add({time, 0, at, packet, Kind::kDetour});
}

void ChromeTraceObserver::on_retry(std::uint32_t packet,
                                   std::uint32_t /*attempt*/, NodeId src,
                                   double time, double /*resume_time*/) {
  add({time, 0, src, packet, Kind::kRetry});
}

void ChromeTraceObserver::on_drop(std::uint32_t packet, NodeId at,
                                  double time) {
  add({time, 0, at, packet, Kind::kDrop});
}

void ChromeTraceObserver::on_deliver(std::uint32_t packet, NodeId dst,
                                     double time, double /*latency*/) {
  add({time, 0, dst, packet, Kind::kDeliver});
}

void ChromeTraceObserver::on_fault(const FaultEvent& event) {
  if (add({event.time, 0, event.a,
           static_cast<std::uint32_t>(faults_.size()), Kind::kFault})) {
    faults_.push_back(event);
  }
}

namespace {

constexpr std::uint32_t kNodesPid = 1;
constexpr std::uint32_t kLinksPid = 2;

void write_instant(std::ostream& os, std::uint32_t tid, double ts,
                   const char* cat, const std::string& name) {
  os << "{\"ph\":\"i\",\"pid\":" << kNodesPid << ",\"tid\":" << tid
     << ",\"ts\":" << ts << ",\"s\":\"t\",\"cat\":\"" << cat
     << "\",\"name\":\"" << name << "\"}";
}

std::string fault_name(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
      return "link " + std::to_string(e.a) + "-" + std::to_string(e.b) +
             " down";
    case FaultKind::kLinkUp:
      return "link " + std::to_string(e.a) + "-" + std::to_string(e.b) +
             " up";
    case FaultKind::kNodeDown:
      return "node " + std::to_string(e.a) + " down";
    case FaultKind::kNodeUp:
      return "node " + std::to_string(e.a) + " up";
  }
  return "fault";
}

}  // namespace

void ChromeTraceObserver::write_json(std::ostream& os) const {
  const auto old_precision = os.precision(15);

  // Metadata: name the two processes, plus every node/link thread that
  // actually carries an event (idle tracks would only add noise).
  std::vector<std::uint8_t> node_used(num_nodes_, 0);
  std::vector<std::uint8_t> link_used(links_.size(), 0);
  for (const Rec& r : recs_) {
    if (r.kind == Kind::kHop) {
      if (r.tid < link_used.size()) link_used[r.tid] = 1;
    } else if (r.tid < node_used.size()) {
      node_used[r.tid] = 1;
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":" << kNodesPid
     << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"nodes\"}}";
  os << ",\n{\"ph\":\"M\",\"pid\":" << kLinksPid
     << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"links\"}}";
  for (std::size_t v = 0; v < node_used.size(); ++v) {
    if (!node_used[v]) continue;
    os << ",\n{\"ph\":\"M\",\"pid\":" << kNodesPid << ",\"tid\":" << v
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"node " << v
       << "\"}}";
  }
  for (std::size_t l = 0; l < link_used.size(); ++l) {
    if (!link_used[l]) continue;
    os << ",\n{\"ph\":\"M\",\"pid\":" << kLinksPid << ",\"tid\":" << l
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"link "
       << links_[l].from << "->" << links_[l].to
       << (links_[l].offchip ? " (off-chip)" : "") << "\"}}";
  }

  for (const Rec& r : recs_) {
    os << ",\n";
    // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
    // positive on `"p" + std::to_string(...)`.
    std::string pkt = "p";
    pkt += std::to_string(r.a);
    switch (r.kind) {
      case Kind::kHop:
        os << "{\"ph\":\"X\",\"pid\":" << kLinksPid << ",\"tid\":" << r.tid
           << ",\"ts\":" << r.ts << ",\"dur\":" << r.dur
           << ",\"cat\":\"hop\",\"name\":\"" << pkt
           << "\",\"args\":{\"packet\":" << r.a << "}}";
        break;
      case Kind::kInject:
        write_instant(os, r.tid, r.ts, "packet", "inject " + pkt);
        break;
      case Kind::kDeliver:
        write_instant(os, r.tid, r.ts, "packet", "deliver " + pkt);
        break;
      case Kind::kDrop:
        write_instant(os, r.tid, r.ts, "loss", "drop " + pkt);
        break;
      case Kind::kRetry:
        write_instant(os, r.tid, r.ts, "loss", "retry " + pkt);
        break;
      case Kind::kDetour:
        write_instant(os, r.tid, r.ts, "loss", "detour " + pkt);
        break;
      case Kind::kFault:
        write_instant(os, r.tid, r.ts, "fault", fault_name(faults_[r.a]));
        break;
    }
  }
  os << "\n]}\n";
  os.precision(old_precision);
}

}  // namespace ipg::sim
