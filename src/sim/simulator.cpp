#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace ipg::sim {

namespace {

struct Packet {
  NodeId src, dst;
  double inject_time;
  std::vector<std::uint16_t> ports;  ///< source route
  std::size_t next_hop = 0;
  NodeId at;  ///< current node
};

struct Event {
  enum class Kind : std::uint8_t { kReady, kFreeBuffer };
  double time;
  std::uint32_t id;  ///< packet (kReady) or node (kFreeBuffer)
  Kind kind;
  bool operator>(const Event& o) const noexcept { return time > o.time; }
};

struct EngineStats {
  double last_delivery = 0;
  double latency_sum = 0;
  double latency_max = 0;
  std::vector<double> latencies;
  std::size_t delivered = 0;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
};

/// Core event loop: packets are "ready at node" events; serving a hop
/// reserves the link FIFO (busy-until time) in global time order.
EngineStats run_engine(const SimNetwork& net, std::vector<Packet>& packets,
                       const SimConfig& cfg, std::vector<double>& link_busy_until,
                       std::vector<double>& link_busy_time) {
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    events.push({packets[i].inject_time, i, Event::Kind::kReady});
  }

  // Bounded-buffer backpressure state (cfg.node_buffer_packets > 0).
  const std::size_t cap = cfg.node_buffer_packets;
  std::vector<std::size_t> occupancy;
  std::vector<std::deque<std::uint32_t>> waiting;
  if (cap > 0) {
    occupancy.assign(net.num_nodes(), 0);
    waiting.assign(net.num_nodes(), {});
  }

  EngineStats stats;
  const double len = cfg.packet_length_flits;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.kind == Event::Kind::kFreeBuffer) {
      const NodeId node = ev.id;
      --occupancy[node];
      if (!waiting[node].empty()) {
        const std::uint32_t pid = waiting[node].front();
        waiting[node].pop_front();
        events.push({ev.time, pid, Event::Kind::kReady});
      }
      continue;
    }
    Packet& p = packets[ev.id];
    if (p.next_hop == p.ports.size()) {
      // Delivered. For cut-through the tail may still be in flight; the
      // ready event time already accounts for the last link's tail arrival
      // (see below: delivery events are pushed at tail time).
      const double latency = ev.time - p.inject_time;
      stats.latency_sum += latency;
      stats.latency_max = std::max(stats.latency_max, latency);
      stats.latencies.push_back(latency);
      stats.last_delivery = std::max(stats.last_delivery, ev.time);
      ++stats.delivered;
      continue;
    }
    const std::uint16_t port = p.ports[p.next_hop];
    const LinkId link = net.link_of(p.at, port);
    const NodeId to = net.arc(p.at, port).to;
    const bool last_hop = p.next_hop + 1 == p.ports.size();

    if (cap > 0 && !last_hop) {
      // Intermediate node: need buffer space downstream (ejection at the
      // destination is always possible).
      if (occupancy[to] >= cap) {
        waiting[to].push_back(ev.id);
        continue;
      }
      ++occupancy[to];
    }

    const double start = std::max(ev.time, link_busy_until[link]);
    const double transfer = len / net.bandwidth(link);
    const double tail_arrival = start + transfer + cfg.link_latency_cycles;
    link_busy_until[link] = start + transfer;
    link_busy_time[link] += transfer;

    // The packet's tail leaves the upstream node at start + transfer,
    // freeing the buffer slot it held there (if it was an intermediate).
    if (cap > 0 && p.next_hop > 0) {
      events.push({start + transfer, p.at, Event::Kind::kFreeBuffer});
    }

    ++stats.hops;
    if (net.is_offchip(link)) ++stats.offchip_hops;

    p.at = to;
    ++p.next_hop;
    double ready_next;
    if (cfg.switching == Switching::kStoreAndForward) {
      ready_next = tail_arrival;
    } else {
      // Cut-through: the head is available after one flit time + latency;
      // final delivery still waits for the tail.
      const double head_arrival =
          start + 1.0 / net.bandwidth(link) + cfg.link_latency_cycles;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    events.push({ready_next, ev.id, Event::Kind::kReady});
  }
  std::size_t expected = packets.size();
  IPG_CHECK(stats.delivered == expected,
            "simulation ended with undelivered packets — routing deadlock "
            "under bounded buffers");
  return stats;
}

SimResult summarize(const SimNetwork& net, const EngineStats& stats,
                    const SimConfig& cfg, const std::vector<double>& link_busy_time) {
  SimResult r;
  r.packets_delivered = stats.delivered;
  r.makespan_cycles = stats.last_delivery;
  if (stats.delivered > 0) {
    r.avg_latency_cycles = stats.latency_sum / static_cast<double>(stats.delivered);
    r.max_latency_cycles = stats.latency_max;
    std::vector<double> sorted = stats.latencies;
    std::sort(sorted.begin(), sorted.end());
    r.p50_latency_cycles = sorted[sorted.size() / 2];
    r.p99_latency_cycles = sorted[(sorted.size() * 99) / 100];
    r.avg_hops = static_cast<double>(stats.hops) / static_cast<double>(stats.delivered);
    r.avg_offchip_hops =
        static_cast<double>(stats.offchip_hops) / static_cast<double>(stats.delivered);
  }
  if (stats.last_delivery > 0) {
    r.throughput_flits_per_node_cycle =
        static_cast<double>(stats.delivered) * cfg.packet_length_flits /
        (static_cast<double>(net.num_nodes()) * stats.last_delivery);
    double max_util = 0, sum_util = 0;
    std::size_t offchip_count = 0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      if (!net.is_offchip(l)) continue;
      const double util = link_busy_time[l] / stats.last_delivery;
      max_util = std::max(max_util, util);
      sum_util += util;
      ++offchip_count;
    }
    r.max_offchip_utilization = max_util;
    r.avg_offchip_utilization =
        offchip_count == 0 ? 0 : sum_util / static_cast<double>(offchip_count);
  }
  return r;
}

}  // namespace

SimResult run_batch(const SimNetwork& net, const Router& route,
                    const std::vector<NodeId>& dst, const SimConfig& cfg) {
  IPG_CHECK(dst.size() == net.num_nodes(), "one destination per node");
  std::vector<Packet> packets;
  packets.reserve(dst.size());
  for (NodeId v = 0; v < dst.size(); ++v) {
    if (dst[v] == v) continue;
    Packet p;
    p.src = v;
    p.dst = dst[v];
    p.at = v;
    p.inject_time = 0;
    p.ports = net.ports_from_dims(v, route(v, dst[v]));
    packets.push_back(std::move(p));
  }
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const EngineStats stats = run_engine(net, packets, cfg, busy_until, busy_time);
  return summarize(net, stats, cfg, busy_time);
}

SimResult run_total_exchange(const SimNetwork& net, const Router& route,
                             const SimConfig& cfg) {
  const std::size_t n = net.num_nodes();
  IPG_CHECK(n <= 1024, "total exchange is quadratic; keep N <= 1024");
  std::vector<Packet> packets;
  packets.reserve(n * (n - 1));
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      Packet p;
      p.src = src;
      p.dst = dst;
      p.at = src;
      p.inject_time = 0;
      p.ports = net.ports_from_dims(src, route(src, dst));
      packets.push_back(std::move(p));
    }
  }
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const EngineStats stats = run_engine(net, packets, cfg, busy_until, busy_time);
  return summarize(net, stats, cfg, busy_time);
}

SimResult run_open(const SimNetwork& net, const Router& route,
                   const TrafficPattern& pattern, double rate,
                   std::size_t inject_cycles, const SimConfig& cfg) {
  IPG_CHECK(rate > 0 && rate <= 1.0, "injection rate must be in (0, 1]");
  util::Xoshiro256 rng(cfg.seed);
  std::vector<Packet> packets;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    for (std::size_t cycle = 0; cycle < inject_cycles; ++cycle) {
      if (!rng.bernoulli(rate)) continue;
      const NodeId d = pattern(v, rng);
      if (d == v) continue;
      Packet p;
      p.src = v;
      p.dst = d;
      p.at = v;
      p.inject_time = static_cast<double>(cycle);
      p.ports = net.ports_from_dims(v, route(v, d));
      packets.push_back(std::move(p));
    }
  }
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const EngineStats stats = run_engine(net, packets, cfg, busy_until, busy_time);
  return summarize(net, stats, cfg, busy_time);
}

}  // namespace ipg::sim
