#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>

#include "sim/engine_internal.hpp"
#include "sim/event_heap.hpp"
#include "sim/fault_plan.hpp"
#include "sim/observer.hpp"
#include "sim/route_arena.hpp"
#include "sim/sharded.hpp"
#include "util/check.hpp"

namespace ipg::sim {

namespace detail {

std::vector<LinkHot> make_link_table(const SimNetwork& net,
                                     const SimConfig& cfg) {
  std::vector<LinkHot> links(net.num_links());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const auto arcs = net.graph().arcs_of(v);
    for (std::size_t port = 0; port < arcs.size(); ++port) {
      LinkHot& l = links[net.link_of(v, port)];
      const LinkId id = net.link_of(v, port);
      l.transfer = cfg.packet_length_flits / net.bandwidth(id);
      l.inv_bandwidth = 1.0 / net.bandwidth(id);
      l.to = arcs[port].to;
      l.offchip = net.is_offchip(id) ? 1 : 0;
    }
  }
  return links;
}

}  // namespace detail

namespace {

using namespace detail;

// ---------------------------------------------------------------------------
// Arena engine (Engine::kArena): compact packets referencing the shared
// route arena, radix-banded 4-ary event queue, injections streamed from a
// sorted schedule so the queue only ever holds in-flight events. The
// shared pieces (EngineStats, FlatPacket, LinkHot, grid detection, ...)
// live in sim/engine_internal.hpp, where the sharded engine reuses them.
// ---------------------------------------------------------------------------

/// Core event loop, shared by both arena queues. @p order lists packet ids
/// sorted by (inject_time, id); pending injections take part in the
/// canonical (time, seq) event order with the identity-derived seqs of
/// Event::kPacketSeqBase — matching the reference engine, which pushes all
/// injections upfront with exactly those sequence numbers.
template <typename Queue>
EngineStats run_arena_loop(Queue& events, const SimNetwork& net,
                           std::vector<FlatPacket>& packets,
                           const std::vector<std::uint32_t>& order,
                           const std::uint16_t* route_ports,
                           std::vector<LinkHot>& links, const SimConfig& cfg,
                           std::vector<double>& link_busy_until,
                           std::vector<double>& link_busy_time) {
  std::size_t next_inject = 0;

  // Bounded-buffer backpressure state (cfg.node_buffer_packets > 0).
  const std::size_t cap = cfg.node_buffer_packets;
  std::vector<std::size_t> occupancy;
  std::vector<std::deque<std::uint32_t>> waiting;
  if (cap > 0) {
    occupancy.assign(net.num_nodes(), 0);
    waiting.assign(net.num_nodes(), {});
  }

  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward =
      cfg.switching == Switching::kStoreAndForward;
  SimObserver* const obs = cfg.observer;

  EngineStats stats;
  stats.latency.reserve(packets.size());
  for (;;) {
    Event ev;
    if (next_inject < order.size()) {
      const std::uint32_t pid = order[next_inject];
      const FlatPacket& p = packets[pid];
      const Event inject{Event::key_of(p.inject_time),
                         Event::kPacketSeqBase + pid,
                         pid,
                         p.at,
                         p.cursor,
                         p.hops_left,
                         p.route_len};
      if (events.empty() || inject < events.top()) {
        ev = inject;
        ++next_inject;
      } else {
        ev = events.top();
        events.pop();
      }
    } else if (!events.empty()) {
      ev = events.top();
      events.pop();
    } else {
      break;
    }

    const double now = ev.time();
    if (ev.is_free_buffer()) {
      const NodeId node = ev.id();
      --occupancy[node];
      if (!waiting[node].empty()) {
        const std::uint32_t pid = waiting[node].front();
        waiting[node].pop_front();
        const FlatPacket& p = packets[pid];
        events.push({ev.key, Event::kPacketSeqBase + pid, pid, p.at, p.cursor,
                     p.hops_left, p.route_len});
      }
      continue;
    }
    if (ev.hops_left == 0) {
      // Delivered. For cut-through the tail may still be in flight; the
      // ready event time already accounts for the last link's tail arrival
      // (delivery events are pushed at tail time below).
      record_delivery(stats, obs, ev.id(), ev.at, now,
                      packets[ev.id()].inject_time);
      continue;
    }
    const std::uint16_t port = route_ports[ev.cursor];
    const LinkId link_id = static_cast<LinkId>(first_link[ev.at] + port);
    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = ev.hops_left == 1;

    if (cap > 0 && !last_hop) {
      // Intermediate node: need buffer space downstream (ejection at the
      // destination is always possible).
      if (occupancy[to] >= cap) {
        FlatPacket& p = packets[ev.id()];
        p.at = ev.at;
        p.cursor = ev.cursor;
        p.hops_left = ev.hops_left;
        waiting[to].push_back(ev.id());
        continue;
      }
      ++occupancy[to];
    }

    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    // The packet's tail leaves the upstream node at start + transfer,
    // freeing the buffer slot it held there (if it was an intermediate).
    if (cap > 0 && ev.hops_left < ev.route_len) {
      events.push({Event::key_of(tail_departure), ev.at,
                   ev.at | Event::kFreeBufferBit});
    }

    ++stats.hops;
    stats.offchip_hops += link.offchip;
    if (obs != nullptr) {
      obs->on_hop({ev.id(), ev.at, to, link_id, start, tail_departure,
                   tail_arrival, link.offchip != 0});
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      // Cut-through: the head is available after one flit time + latency;
      // final delivery still waits for the tail.
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    events.push({Event::key_of(ready_next), Event::kPacketSeqBase + ev.id(),
                 ev.id(), to, ev.cursor + 1,
                 static_cast<std::uint16_t>(ev.hops_left - 1), ev.route_len});
  }
  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  if (stats.delivered != packets.size()) {
    fail_with_deadlock_cycle(
        waiting, [&](std::uint32_t pid) { return packets[pid].at; });
  }
  return stats;
}

/// Arena engine entry point: picks the tick calendar when the run's timing
/// quantizes to a power-of-two grid (every stock network and test config
/// does), the radix-banded queue otherwise. Both pop the same canonical
/// (time, seq) order, so the choice never changes results.
EngineStats run_engine_arena(const SimNetwork& net,
                             std::vector<FlatPacket>& packets,
                             const std::vector<std::uint32_t>& order,
                             const std::uint16_t* route_ports,
                             const SimConfig& cfg,
                             std::vector<double>& link_busy_until,
                             std::vector<double>& link_busy_time) {
  IPG_CHECK(packets.size() < Event::kFreeBufferBit &&
                net.num_nodes() < Event::kFreeBufferBit,
            "packet/node ids must fit in 31 bits");
  std::vector<LinkHot> links = make_link_table(net, cfg);
  const int grid_bits = quantized_grid_bits(links, cfg, packets);
  if (grid_bits >= 0) {
    TickQueue events(grid_bits);
    return run_arena_loop(events, net, packets, order, route_ports, links,
                          cfg, link_busy_until, link_busy_time);
  }
  EventQueue events;
  return run_arena_loop(events, net, packets, order, route_ports, links, cfg,
                        link_busy_until, link_busy_time);
}

// ---------------------------------------------------------------------------
// Reference engine (Engine::kReference): the pre-overhaul data plane — one
// heap-allocated route vector per packet, std::priority_queue, all events
// pushed upfront. Kept as the oracle for the equivalence tests; shares the
// canonical (time, seq) event order with the arena engine.
// ---------------------------------------------------------------------------

struct RefPacket {
  NodeId src, dst;
  double inject_time;
  std::vector<std::uint16_t> ports;  ///< source route
  std::size_t next_hop = 0;
  NodeId at;  ///< current node
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return b < a;
  }
};

EngineStats run_engine_reference(const SimNetwork& net,
                                 std::vector<RefPacket>& packets,
                                 const SimConfig& cfg,
                                 std::vector<double>& link_busy_until,
                                 std::vector<double>& link_busy_time) {
  IPG_CHECK(packets.size() < Event::kFreeBufferBit &&
                net.num_nodes() < Event::kFreeBufferBit,
            "packet/node ids must fit in 31 bits");
  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    events.push({Event::key_of(packets[i].inject_time),
                 Event::kPacketSeqBase + i, i});
  }

  const std::size_t cap = cfg.node_buffer_packets;
  std::vector<std::size_t> occupancy;
  std::vector<std::deque<std::uint32_t>> waiting;
  if (cap > 0) {
    occupancy.assign(net.num_nodes(), 0);
    waiting.assign(net.num_nodes(), {});
  }

  SimObserver* const obs = cfg.observer;
  EngineStats stats;
  stats.latency.reserve(packets.size());
  const double len = cfg.packet_length_flits;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const double now = ev.time();
    if (ev.is_free_buffer()) {
      const NodeId node = ev.id();
      --occupancy[node];
      if (!waiting[node].empty()) {
        const std::uint32_t pid = waiting[node].front();
        waiting[node].pop_front();
        events.push({ev.key, Event::kPacketSeqBase + pid, pid});
      }
      continue;
    }
    RefPacket& p = packets[ev.id()];
    if (p.next_hop == p.ports.size()) {
      record_delivery(stats, obs, ev.id(), p.at, now, p.inject_time);
      continue;
    }
    const std::uint16_t port = p.ports[p.next_hop];
    const LinkId link = net.link_of(p.at, port);
    const NodeId to = net.arc(p.at, port).to;
    const bool last_hop = p.next_hop + 1 == p.ports.size();

    if (cap > 0 && !last_hop) {
      if (occupancy[to] >= cap) {
        waiting[to].push_back(ev.id());
        continue;
      }
      ++occupancy[to];
    }

    const double start = std::max(now, link_busy_until[link]);
    const double transfer = len / net.bandwidth(link);
    const double tail_arrival = start + transfer + cfg.link_latency_cycles;
    link_busy_until[link] = start + transfer;
    link_busy_time[link] += transfer;

    if (cap > 0 && p.next_hop > 0) {
      events.push({Event::key_of(start + transfer), p.at,
                   p.at | Event::kFreeBufferBit});
    }

    ++stats.hops;
    if (net.is_offchip(link)) ++stats.offchip_hops;
    if (obs != nullptr) {
      obs->on_hop({ev.id(), p.at, to, link, start, start + transfer,
                   tail_arrival, net.is_offchip(link)});
    }

    p.at = to;
    ++p.next_hop;
    double ready_next;
    if (cfg.switching == Switching::kStoreAndForward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival =
          start + 1.0 / net.bandwidth(link) + cfg.link_latency_cycles;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    events.push({Event::key_of(ready_next), Event::kPacketSeqBase + ev.id(),
                 ev.id()});
  }
  stats.injected = packets.size();
  if (stats.delivered != packets.size()) {
    fail_with_deadlock_cycle(
        waiting, [&](std::uint32_t pid) { return packets[pid].at; });
  }
  return stats;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared summarization (detail:: so sharded.cpp reuses it verbatim).
// ---------------------------------------------------------------------------

namespace detail {

SimResult summarize(const SimNetwork& net, EngineStats& stats,
                    const SimConfig& cfg,
                    const std::vector<double>& link_busy_time,
                    const std::vector<double>& link_busy_until) {
  // One latency sample per *delivered packet* — retransmissions re-deliver
  // under the same packet id, so attempts must never double-record.
  IPG_CHECK(stats.latency.count() == stats.delivered,
            "latency sample count must equal packets delivered");
  SimResult r;
  r.packets_delivered = stats.delivered;
  r.makespan_cycles = stats.last_delivery;
  r.packets_injected = stats.injected;
  r.packets_dropped = stats.dropped;
  r.packets_retransmitted = stats.retransmitted;
  r.packets_in_flight = stats.in_flight;
  r.reroute_hops = stats.reroute_hops;
  r.delivered_fraction = stats.injected == 0
                             ? 1.0
                             : static_cast<double>(stats.delivered) /
                                   static_cast<double>(stats.injected);
  if (stats.delivered > 0) {
    r.avg_latency_cycles =
        stats.latency.sum() / static_cast<double>(stats.delivered);
    r.max_latency_cycles = stats.latency.max();
    r.p50_latency_cycles = stats.latency.percentile(50.0);
    r.p99_latency_cycles = stats.latency.percentile(99.0);
    r.avg_hops = static_cast<double>(stats.hops) / static_cast<double>(stats.delivered);
    r.avg_offchip_hops =
        static_cast<double>(stats.offchip_hops) / static_cast<double>(stats.delivered);
  } else {
    // Nothing delivered (total blackout): 0 here would read as perfect
    // latency on a degraded-run curve.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    r.avg_latency_cycles = nan;
    r.max_latency_cycles = nan;
    r.p50_latency_cycles = nan;
    r.p99_latency_cycles = nan;
  }

  // Reporting horizon: the last delivery, extended to the max_cycles cutoff
  // when one ended the run early (links can stay busy past the last
  // delivery on cutoff/degraded runs). Healthy complete runs always have
  // busy_until <= last_delivery, so the clamp is a no-op there and the
  // utilization stays bit-identical to the pre-observer engines.
  const double horizon = stats.cutoff_hit
                             ? std::max(stats.last_delivery, cfg.max_cycles)
                             : stats.last_delivery;
  if (stats.last_delivery > 0) {
    r.throughput_flits_per_node_cycle =
        static_cast<double>(stats.delivered) * cfg.packet_length_flits /
        (static_cast<double>(net.num_nodes()) * stats.last_delivery);
  }
  if (horizon > 0) {
    double max_util = 0, sum_util = 0;
    std::size_t offchip_count = 0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      if (!net.is_offchip(l)) continue;
      // Busy time beyond the horizon is one contiguous suffix ending at
      // busy_until (every transfer starts at an event time <= horizon or
      // back-to-back at the previous busy_until), so subtracting the
      // overhang yields the exact in-horizon busy time.
      const double busy =
          link_busy_time[l] -
          std::max(0.0, link_busy_until[l] - horizon);
      const double util = std::max(0.0, busy) / horizon;
      max_util = std::max(max_util, util);
      sum_util += util;
      ++offchip_count;
    }
    r.max_offchip_utilization = max_util;
    r.avg_offchip_utilization =
        offchip_count == 0 ? 0 : sum_util / static_cast<double>(offchip_count);
  }
  if (cfg.observer != nullptr) cfg.observer->on_run_end(horizon);
  return r;
}

}  // namespace detail

namespace {

/// Emits every open-loop injection as (src, dst, cycle) in the fixed
/// node-major order all engines share. Each node draws from its own RNG
/// stream (util::derive_seed), so the injected population at a node is a
/// pure function of (seed, node) — independent of the node count and of
/// what any other node draws, which lets the sharded engine reproduce it
/// per domain without serializing a global stream.
template <typename Emit>
void draw_open_injections(const SimNetwork& net, const TrafficPattern& pattern,
                          double rate, std::size_t inject_cycles,
                          std::uint64_t seed, Emit&& emit) {
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    util::Xoshiro256 rng(util::derive_seed(seed, v));
    for (std::size_t cycle = 0; cycle < inject_cycles; ++cycle) {
      if (!rng.bernoulli(rate)) continue;
      const NodeId d = pattern(v, rng);
      IPG_CHECK(d < net.num_nodes(),
                "traffic pattern produced an out-of-range destination");
      if (d == v) continue;
      emit(v, d, static_cast<double>(cycle));
    }
  }
}

FlatPacket make_flat_packet(RouteArena& arena, SimObserver* obs,
                            std::uint32_t pid, NodeId src, NodeId dst,
                            double inject_time) {
  if (obs != nullptr) obs->on_inject(pid, src, dst, inject_time);
  const RouteRef ref = arena.get(src, dst);
  FlatPacket p;
  p.at = src;
  p.cursor = ref.offset;
  p.hops_left = ref.length;
  p.route_len = ref.length;
  p.inject_time = inject_time;
  return p;
}

RefPacket make_ref_packet(const SimNetwork& net, const Router& route,
                          SimObserver* obs, std::uint32_t pid, NodeId src,
                          NodeId dst, double inject_time) {
  if (obs != nullptr) obs->on_inject(pid, src, dst, inject_time);
  RefPacket p;
  p.src = src;
  p.dst = dst;
  p.at = src;
  p.inject_time = inject_time;
  p.ports = net.ports_from_dims(src, route(src, dst));
  return p;
}

SimResult run_flat(const SimNetwork& net, std::vector<FlatPacket>& packets,
                   const RouteArena& arena, const SimConfig& cfg) {
  if (cfg.engine == Engine::kSharded) {
    return run_sharded_flat(net, packets, arena, cfg);
  }
  const std::vector<std::uint32_t> order = injection_order(packets);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  EngineStats stats = run_engine_arena(net, packets, order, arena.data(), cfg,
                                       busy_until, busy_time);
  return summarize(net, stats, cfg, busy_time, busy_until);
}

SimResult run_ref(const SimNetwork& net, std::vector<RefPacket>& packets,
                  const SimConfig& cfg) {
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  EngineStats stats =
      run_engine_reference(net, packets, cfg, busy_until, busy_time);
  return summarize(net, stats, cfg, busy_time, busy_until);
}

// ---------------------------------------------------------------------------
// Fault-aware data plane (degraded mode). One loop body serves both
// engines: the template parameters preserve their structural differences —
// kArena streams injections from a sorted schedule into a TickQueue /
// EventQueue, kReference pushes everything upfront into a
// std::priority_queue — while the packet array holds all mutable state, so
// the two engines follow byte-identical routes and pop the same canonical
// (time, seq) order. A packet that finds its next link dead detours from
// the node that discovered the failure (FaultState::route_from, bounded by
// SimConfig::misroute_budget); with no live route it is dropped, or
// retransmitted from its source under capped exponential backoff.
// ---------------------------------------------------------------------------

template <typename Queue, bool kStreamInjections>
EngineStats run_faulty_loop(Queue& events, const SimNetwork& net,
                            FaultState& faults,
                            std::vector<FaultPacket>& packets,
                            const std::vector<std::uint32_t>& order,
                            std::vector<LinkHot>& links, const SimConfig& cfg,
                            std::vector<double>& link_busy_until,
                            std::vector<double>& link_busy_time) {
  std::size_t next_inject = 0;
  if constexpr (!kStreamInjections) {
    for (std::uint32_t i = 0; i < packets.size(); ++i) {
      events.push(Event{Event::key_of(packets[i].inject_time),
                        Event::kPacketSeqBase + i, i});
    }
  }

  const std::size_t cap = cfg.node_buffer_packets;
  std::vector<std::size_t> occupancy;
  std::vector<std::deque<std::uint32_t>> waiting;
  if (cap > 0) {
    occupancy.assign(net.num_nodes(), 0);
    waiting.assign(net.num_nodes(), {});
  }

  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;
  const double cutoff = cfg.max_cycles;
  SimObserver* const obs = cfg.observer;

  EngineStats stats;
  stats.latency.reserve(packets.size());

  // Drop-or-retry at a fault: frees the buffer slot the packet holds, then
  // either schedules a fresh attempt from the source under capped
  // exponential backoff or drops the packet for good.
  const auto fail_packet = [&](std::uint32_t pid, std::uint64_t key,
                               double now) {
    FaultPacket& p = packets[pid];
    if (cap > 0 && p.moved) {
      events.push(Event{key, p.at, p.at | Event::kFreeBufferBit});
      p.moved = false;
    }
    if (p.attempt < cfg.max_retries) {
      ++p.attempt;
      ++stats.retransmitted;
      p.at = p.src;
      p.routed = false;
      p.reroutes = 0;
      const double delay =
          retry_backoff_delay(cfg.retry_backoff_cycles, p.attempt);
      events.push(
          Event{Event::key_of(now + delay), Event::kPacketSeqBase + pid, pid});
      if (obs != nullptr) {
        obs->on_retry(pid, p.attempt, p.src, now, now + delay);
      }
    } else {
      p.state = kDropped;
      ++stats.dropped;
      if (obs != nullptr) obs->on_drop(pid, p.at, now);
    }
  };

  bool cutoff_hit = false;
  for (;;) {
    Event ev;
    if constexpr (kStreamInjections) {
      if (next_inject < order.size()) {
        const std::uint32_t next_pid = order[next_inject];
        const Event inject{Event::key_of(packets[next_pid].inject_time),
                           Event::kPacketSeqBase + next_pid, next_pid};
        if (events.empty() || inject < events.top()) {
          ev = inject;
          ++next_inject;
        } else {
          ev = events.top();
          events.pop();
        }
      } else if (!events.empty()) {
        ev = events.top();
        events.pop();
      } else {
        break;
      }
    } else {
      if (events.empty()) break;
      ev = events.top();
      events.pop();
    }

    const double now = ev.time();
    if (cutoff > 0 && now > cutoff) {
      cutoff_hit = true;
      break;
    }
    faults.advance_to(now);

    if (ev.is_free_buffer()) {
      const NodeId node = ev.id();
      --occupancy[node];
      if (!waiting[node].empty()) {
        const std::uint32_t pid = waiting[node].front();
        waiting[node].pop_front();
        events.push(Event{ev.key, Event::kPacketSeqBase + pid, pid});
      }
      continue;
    }

    const std::uint32_t pid = ev.id();
    FaultPacket& p = packets[pid];
    if (!p.routed) {
      RouteRef ref;
      if (!faults.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev.key, now);
        continue;
      }
      p.routed = true;
      p.cursor = ref.offset;
      p.hops_left = ref.length;
    }
    if (p.hops_left == 0) {
      p.state = kDelivered;
      record_delivery(stats, obs, pid, p.at, now, p.inject_time);
      continue;
    }

    std::uint16_t port = faults.ports()[p.cursor];
    LinkId link_id = first_link[p.at] + port;
    if (!faults.link_usable(link_id)) {
      // Detour at the node that discovered the failure.
      RouteRef ref;
      if (p.reroutes >= cfg.misroute_budget ||
          !faults.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev.key, now);
        continue;
      }
      ++p.reroutes;
      if (ref.length > p.hops_left) {
        stats.reroute_hops += static_cast<std::size_t>(ref.length - p.hops_left);
      }
      p.cursor = ref.offset;
      p.hops_left = ref.length;
      port = faults.ports()[p.cursor];
      link_id = first_link[p.at] + port;  // first hop is live by construction
      if (obs != nullptr) obs->on_detour(pid, p.at, now, ref.length);
    }

    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = p.hops_left == 1;

    if (cap > 0 && !last_hop) {
      if (occupancy[to] >= cap) {
        waiting[to].push_back(pid);
        continue;
      }
      ++occupancy[to];
    }

    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    if (cap > 0 && p.moved) {
      events.push(Event{Event::key_of(tail_departure), p.at,
                        p.at | Event::kFreeBufferBit});
    }

    ++stats.hops;
    stats.offchip_hops += link.offchip;
    if (obs != nullptr) {
      obs->on_hop({pid, p.at, to, static_cast<LinkId>(link_id), start,
                   tail_departure, tail_arrival, link.offchip != 0});
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    p.at = to;
    ++p.cursor;
    --p.hops_left;
    p.moved = !last_hop;
    events.push(
        Event{Event::key_of(ready_next), Event::kPacketSeqBase + pid, pid});
  }

  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  for (const FaultPacket& p : packets) {
    if (p.state == kActive) ++stats.in_flight;
  }
  if (stats.in_flight > 0 && !cutoff_hit) {
    fail_with_deadlock_cycle(
        waiting, [&](std::uint32_t pid) { return packets[pid].at; });
  }
  IPG_CHECK(
      stats.delivered + stats.dropped + stats.in_flight == stats.injected,
      "packet conservation violated");
  stats.cutoff_hit = cutoff_hit;
  return stats;
}

SimResult run_faulty(const SimNetwork& net, const Router& route,
                     std::span<const Injection> injections,
                     const SimConfig& cfg,
                     std::span<const RoutedInjection> presets = {},
                     std::span<const std::uint16_t> preset_ports = {}) {
  static const FaultPlan kNoFaults;
  const FaultPlan& plan =
      cfg.fault_plan != nullptr ? *cfg.fault_plan : kNoFaults;
  FaultState faults(net, plan, route);
  faults.set_observer(cfg.observer);
  std::vector<FaultPacket> packets;
  packets.reserve(injections.size());
  for (const Injection& i : injections) {
    if (cfg.observer != nullptr) {
      cfg.observer->on_inject(static_cast<std::uint32_t>(packets.size()),
                              i.src, i.dst, i.time);
    }
    FaultPacket p;
    p.src = i.src;
    p.dst = i.dst;
    p.at = i.src;
    p.inject_time = i.time;
    packets.push_back(p);
  }
  IPG_CHECK(packets.size() < Event::kFreeBufferBit &&
                net.num_nodes() < Event::kFreeBufferBit,
            "packet/node ids must fit in 31 bits");
  if (cfg.engine == Engine::kSharded) {
    return run_sharded_faulty(net, route, plan, packets, cfg, presets,
                              preset_ports);
  }
  // Preset routes (run_routed) enter the sequential shard up front, marked
  // routed — the lazy `if (!p.routed)` path then never overrides them, but
  // dead-link detours and retransmissions re-route canonically as usual.
  for (std::uint32_t pid = 0; pid < presets.size(); ++pid) {
    if (presets[pid].route_length == 0) continue;
    const RouteRef ref = faults.adopt(
        {preset_ports.data() + presets[pid].route_offset,
         std::size_t{presets[pid].route_length}});
    packets[pid].cursor = ref.offset;
    packets[pid].hops_left = ref.length;
    packets[pid].routed = true;
  }
  std::vector<LinkHot> links = make_link_table(net, cfg);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  EngineStats stats;
  if (cfg.engine == Engine::kReference) {
    std::priority_queue<Event, std::vector<Event>, EventAfter> events;
    const std::vector<std::uint32_t> no_order;
    stats = run_faulty_loop<decltype(events), false>(
        events, net, faults, packets, no_order, links, cfg, busy_until,
        busy_time);
  } else {
    const std::vector<std::uint32_t> order = injection_order(packets);
    const int grid_bits = quantized_grid_bits(links, cfg, packets);
    if (grid_bits >= 0) {
      TickQueue events(grid_bits);
      stats = run_faulty_loop<TickQueue, true>(events, net, faults, packets,
                                               order, links, cfg, busy_until,
                                               busy_time);
    } else {
      EventQueue events;
      stats = run_faulty_loop<EventQueue, true>(events, net, faults, packets,
                                                order, links, cfg, busy_until,
                                                busy_time);
    }
  }
  return summarize(net, stats, cfg, busy_time, busy_until);
}

/// True when the run must take the fault-aware path. An empty or null plan
/// with no cutoff keeps the healthy fast path — and its bit-identical
/// results — untouched.
bool degraded_mode(const SimConfig& cfg) {
  return (cfg.fault_plan != nullptr && !cfg.fault_plan->empty()) ||
         cfg.max_cycles > 0;
}

/// Up-front validation shared by every run_* driver (satellite: clear
/// util::check errors instead of silent UB or hangs).
void validate_run_inputs(const SimNetwork& net, const SimConfig& cfg) {
  IPG_CHECK(net.num_nodes() > 0, "network has no nodes");
  IPG_CHECK(
      std::isfinite(cfg.packet_length_flits) && cfg.packet_length_flits > 0,
      "packet_length_flits must be positive and finite");
  IPG_CHECK(
      std::isfinite(cfg.link_latency_cycles) && cfg.link_latency_cycles >= 0,
      "link_latency_cycles must be non-negative and finite");
  IPG_CHECK(std::isfinite(cfg.max_cycles) && cfg.max_cycles >= 0,
            "max_cycles must be non-negative and finite");
  if (cfg.max_retries > 0) {
    IPG_CHECK(
        std::isfinite(cfg.retry_backoff_cycles) && cfg.retry_backoff_cycles > 0,
        "retry_backoff_cycles must be positive when retries are enabled");
  }
  if (cfg.fault_plan != nullptr) cfg.fault_plan->validate(net.num_nodes());
  // Every public run_* driver funnels through here exactly once, after its
  // inputs are known-good — the natural single site for run-begin hooks.
  if (cfg.observer != nullptr) cfg.observer->on_run_begin(net);
}

}  // namespace

double percentile_nearest_rank(std::vector<double>& values, double pct) {
  IPG_CHECK(!values.empty(), "percentile of an empty sample");
  IPG_CHECK(pct > 0 && pct <= 100, "percentile must be in (0, 100]");
  const auto n = static_cast<double>(values.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(n * pct / 100.0));
  rank = std::clamp<std::size_t>(rank, 1, values.size());
  const auto nth = values.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

SimResult run_batch(const SimNetwork& net, const Router& route,
                    const std::vector<NodeId>& dst, const SimConfig& cfg) {
  validate_run_inputs(net, cfg);
  IPG_CHECK(dst.size() == net.num_nodes(), "one destination per node");
  for (NodeId v = 0; v < dst.size(); ++v) {
    IPG_CHECK(dst[v] < net.num_nodes(), "destination out of range");
  }
  if (degraded_mode(cfg)) {
    std::vector<Injection> injections;
    injections.reserve(dst.size());
    for (NodeId v = 0; v < dst.size(); ++v) {
      if (dst[v] != v) injections.push_back({v, dst[v], 0.0});
    }
    return run_faulty(net, route, injections, cfg);
  }
  if (cfg.engine == Engine::kReference) {
    std::vector<RefPacket> packets;
    packets.reserve(dst.size());
    for (NodeId v = 0; v < dst.size(); ++v) {
      if (dst[v] == v) continue;
      packets.push_back(make_ref_packet(
          net, route, cfg.observer, static_cast<std::uint32_t>(packets.size()),
          v, dst[v], 0.0));
    }
    return run_ref(net, packets, cfg);
  }
  RouteArena arena(net, route);
  arena.reserve(dst.size(), 4 * dst.size());
  std::vector<FlatPacket> packets;
  packets.reserve(dst.size());
  for (NodeId v = 0; v < dst.size(); ++v) {
    if (dst[v] == v) continue;
    packets.push_back(make_flat_packet(
        arena, cfg.observer, static_cast<std::uint32_t>(packets.size()), v,
        dst[v], 0.0));
  }
  return run_flat(net, packets, arena, cfg);
}

SimResult run_total_exchange(const SimNetwork& net, const Router& route,
                             const SimConfig& cfg) {
  validate_run_inputs(net, cfg);
  const std::size_t n = net.num_nodes();
  IPG_CHECK(n <= 1024, "total exchange is quadratic; keep N <= 1024");
  if (degraded_mode(cfg)) {
    std::vector<Injection> injections;
    injections.reserve(n * (n - 1));
    for (NodeId src = 0; src < n; ++src) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (src != dst) injections.push_back({src, dst, 0.0});
      }
    }
    return run_faulty(net, route, injections, cfg);
  }
  if (cfg.engine == Engine::kReference) {
    std::vector<RefPacket> packets;
    packets.reserve(n * (n - 1));
    for (NodeId src = 0; src < n; ++src) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        packets.push_back(make_ref_packet(
            net, route, cfg.observer,
            static_cast<std::uint32_t>(packets.size()), src, dst, 0.0));
      }
    }
    return run_ref(net, packets, cfg);
  }
  RouteArena arena(net, route);
  arena.reserve(0, 0);
  std::vector<FlatPacket> packets;
  packets.reserve(n * (n - 1));
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      if (cfg.observer != nullptr) {
        cfg.observer->on_inject(static_cast<std::uint32_t>(packets.size()),
                                src, dst, 0.0);
      }
      // All pairs are distinct, so skip the arena's memo entirely.
      const RouteRef ref = arena.append(src, dst);
      packets.push_back({src, ref.offset, ref.length, ref.length, 0.0});
    }
  }
  return run_flat(net, packets, arena, cfg);
}

SimResult run_open(const SimNetwork& net, const Router& route,
                   const TrafficPattern& pattern, double rate,
                   std::size_t inject_cycles, const SimConfig& cfg) {
  validate_run_inputs(net, cfg);
  IPG_CHECK(std::isfinite(rate) && rate > 0 && rate <= 1.0,
            "injection rate must be in (0, 1]");
  if (degraded_mode(cfg)) {
    // Same RNG stream and node-major draw order as the healthy path, so the
    // injected population is independent of the fault plan.
    std::vector<Injection> injections;
    draw_open_injections(net, pattern, rate, inject_cycles, cfg.seed,
                         [&](NodeId v, NodeId d, double t) {
                           injections.push_back({v, d, t});
                         });
    return run_faulty(net, route, injections, cfg);
  }
  if (cfg.engine == Engine::kReference) {
    std::vector<RefPacket> packets;
    draw_open_injections(net, pattern, rate, inject_cycles, cfg.seed,
                         [&](NodeId v, NodeId d, double t) {
                           packets.push_back(make_ref_packet(
                               net, route, cfg.observer,
                               static_cast<std::uint32_t>(packets.size()), v,
                               d, t));
                         });
    return run_ref(net, packets, cfg);
  }
  RouteArena arena(net, route);
  arena.reserve(net.num_nodes(), 0);
  std::vector<FlatPacket> packets;
  draw_open_injections(net, pattern, rate, inject_cycles, cfg.seed,
                       [&](NodeId v, NodeId d, double t) {
                         packets.push_back(make_flat_packet(
                             arena, cfg.observer,
                             static_cast<std::uint32_t>(packets.size()), v, d,
                             t));
                       });
  return run_flat(net, packets, arena, cfg);
}

SimResult run_trace(const SimNetwork& net, const Router& route,
                    std::span<const Injection> injections,
                    const SimConfig& cfg) {
  validate_run_inputs(net, cfg);
  for (const Injection& i : injections) {
    IPG_CHECK(i.src < net.num_nodes() && i.dst < net.num_nodes(),
              "injection endpoints out of range");
    IPG_CHECK(i.src != i.dst, "injection with src == dst");
    IPG_CHECK(std::isfinite(i.time) && i.time >= 0,
              "injection time must be finite and non-negative");
  }
  if (degraded_mode(cfg)) return run_faulty(net, route, injections, cfg);
  if (cfg.engine == Engine::kReference) {
    std::vector<RefPacket> packets;
    packets.reserve(injections.size());
    for (const Injection& i : injections) {
      packets.push_back(make_ref_packet(
          net, route, cfg.observer, static_cast<std::uint32_t>(packets.size()),
          i.src, i.dst, i.time));
    }
    return run_ref(net, packets, cfg);
  }
  RouteArena arena(net, route);
  arena.reserve(injections.size(), 0);
  std::vector<FlatPacket> packets;
  packets.reserve(injections.size());
  for (const Injection& i : injections) {
    packets.push_back(make_flat_packet(
        arena, cfg.observer, static_cast<std::uint32_t>(packets.size()),
        i.src, i.dst, i.time));
  }
  return run_flat(net, packets, arena, cfg);
}

SimResult run_routed(const SimNetwork& net, const Router& fallback,
                     std::span<const RoutedInjection> injections,
                     std::span<const std::uint16_t> route_ports,
                     const SimConfig& cfg) {
  validate_run_inputs(net, cfg);
  for (const RoutedInjection& i : injections) {
    IPG_CHECK(i.src < net.num_nodes() && i.dst < net.num_nodes(),
              "injection endpoints out of range");
    IPG_CHECK(i.src != i.dst, "injection with src == dst");
    IPG_CHECK(std::isfinite(i.time) && i.time >= 0,
              "injection time must be finite and non-negative");
    if (i.route_length == 0) continue;
    IPG_CHECK(static_cast<std::size_t>(i.route_offset) + i.route_length <=
                  route_ports.size(),
              "preset route reaches past the port buffer");
    // Walk the preset so a planner bug fails loudly here, not as silent
    // misdelivery or an out-of-range port deep in an engine hot loop.
    NodeId cur = i.src;
    for (std::uint16_t h = 0; h < i.route_length; ++h) {
      const std::uint16_t port = route_ports[i.route_offset + h];
      IPG_CHECK(port < net.graph().arcs_of(cur).size(),
                "preset route uses a port its node does not have");
      cur = net.arc(cur, port).to;
    }
    IPG_CHECK(cur == i.dst, "preset route must end at the destination");
  }
  if (degraded_mode(cfg)) {
    std::vector<Injection> base;
    base.reserve(injections.size());
    for (const RoutedInjection& i : injections) {
      base.push_back({i.src, i.dst, i.time});
    }
    return run_faulty(net, fallback, base, cfg, injections, route_ports);
  }
  if (cfg.engine == Engine::kReference) {
    std::vector<RefPacket> packets;
    packets.reserve(injections.size());
    for (const RoutedInjection& i : injections) {
      if (i.route_length == 0) {
        packets.push_back(make_ref_packet(
            net, fallback, cfg.observer,
            static_cast<std::uint32_t>(packets.size()), i.src, i.dst, i.time));
        continue;
      }
      if (cfg.observer != nullptr) {
        cfg.observer->on_inject(static_cast<std::uint32_t>(packets.size()),
                                i.src, i.dst, i.time);
      }
      RefPacket p;
      p.src = i.src;
      p.dst = i.dst;
      p.at = i.src;
      p.inject_time = i.time;
      p.ports.assign(route_ports.begin() + i.route_offset,
                     route_ports.begin() + i.route_offset + i.route_length);
      packets.push_back(std::move(p));
    }
    return run_ref(net, packets, cfg);
  }
  RouteArena arena(net, fallback);
  arena.reserve(injections.size(), 0);
  std::vector<FlatPacket> packets;
  packets.reserve(injections.size());
  for (const RoutedInjection& i : injections) {
    if (i.route_length == 0) {
      packets.push_back(make_flat_packet(
          arena, cfg.observer, static_cast<std::uint32_t>(packets.size()),
          i.src, i.dst, i.time));
      continue;
    }
    if (cfg.observer != nullptr) {
      cfg.observer->on_inject(static_cast<std::uint32_t>(packets.size()),
                              i.src, i.dst, i.time);
    }
    const RouteRef ref = arena.adopt(
        {route_ports.data() + i.route_offset, std::size_t{i.route_length}});
    packets.push_back({i.src, ref.offset, ref.length, ref.length, i.time});
  }
  return run_flat(net, packets, arena, cfg);
}

std::vector<Injection> open_injection_schedule(const SimNetwork& net,
                                               const TrafficPattern& pattern,
                                               double rate,
                                               std::size_t inject_cycles,
                                               std::uint64_t seed) {
  IPG_CHECK(std::isfinite(rate) && rate > 0 && rate <= 1.0,
            "injection rate must be in (0, 1]");
  std::vector<Injection> injections;
  draw_open_injections(net, pattern, rate, inject_cycles, seed,
                       [&](NodeId v, NodeId d, double t) {
                         injections.push_back({v, d, t});
                       });
  return injections;
}

}  // namespace ipg::sim
