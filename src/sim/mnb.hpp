#pragma once
// Executed multinode broadcast (§3.3, Corollary 3.10).
//
// Every node broadcasts one message to all others along its own
// shortest-path (BFS) tree — on a hypercube these are the classic binomial
// trees. Messages queue FIFO per directed link; a link transmits one
// message every length/bandwidth cycles, so the same experiment runs under
// unit link capacity (all links equal — the Cor 3.10 setting, where the
// hypercube's higher degree wins) and under unit chip capacity (off-chip
// links share the chip budget — the §4 setting, where the super-IPG wins).

#include "sim/network.hpp"

namespace ipg::sim {

struct MnbResult {
  double makespan_cycles = 0;
  std::size_t deliveries = 0;    ///< should be N * (N - 1)
  double avg_link_queue_max = 0; ///< mean over links of peak queue length
};

/// Runs the full MNB; keep N <= ~1024 (N^2 deliveries).
MnbResult run_mnb(const SimNetwork& net, double message_length_flits = 1.0);

}  // namespace ipg::sim
