#pragma once
// Traffic patterns for the MCMP experiments (§1/§4: random routing, matrix
// transposition, and friends).

#include <cstdint>
#include <functional>
#include <vector>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace ipg::sim {

using topology::NodeId;

/// Maps a source node to a destination; stateful patterns carry their RNG.
using TrafficPattern = std::function<NodeId(NodeId, util::Xoshiro256&)>;

/// Uniformly random destination (excluding self).
TrafficPattern uniform_traffic(std::size_t num_nodes);

/// Bit-complement: dst = ~src over log2(N) bits.
TrafficPattern bit_complement_traffic(std::size_t num_nodes);

/// Matrix transposition: dst swaps the high and low halves of the address
/// bits (requires an even number of address bits).
TrafficPattern transpose_traffic(std::size_t num_nodes);

/// Bit-reversal permutation traffic.
TrafficPattern bit_reversal_traffic(std::size_t num_nodes);

/// Cyclic shift: dst = (src + shift) mod N, shift in [1, N). With shift =
/// the group/chip size this is the classic neighbor-group adversary (every
/// node targets the next group, concentrating load on one inter-group
/// link); works for any node count, unlike the bit-pattern permutations.
TrafficPattern shift_traffic(std::size_t num_nodes, std::size_t shift);

/// Tornado permutation: dst = (src + N/2) mod N — the canonical adversary
/// for minimal routing on rings/tori, valid for any N >= 2.
TrafficPattern tornado_traffic(std::size_t num_nodes);

/// Hot-spot: with probability @p hot_fraction the destination is @p hot,
/// otherwise uniform.
TrafficPattern hotspot_traffic(std::size_t num_nodes, NodeId hot,
                               double hot_fraction);

/// One packet per node with destinations forming a random permutation
/// (used by the batch/makespan experiments).
std::vector<NodeId> random_permutation(std::size_t num_nodes,
                                       util::Xoshiro256& rng);

}  // namespace ipg::sim
