#include "sim/route_arena.hpp"

#include <limits>

#include "util/check.hpp"

namespace ipg::sim {

RouteRef RouteArena::get(NodeId src, NodeId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  const auto [it, inserted] = memo_.try_emplace(key);
  if (!inserted) return it->second;
  return it->second = append(src, dst);
}

RouteRef RouteArena::append(NodeId src, NodeId dst) {
  const std::vector<std::size_t> dims = route_(src, dst);
  IPG_CHECK(dims.size() <= std::numeric_limits<std::uint16_t>::max(),
            "route longer than 65535 hops");
  IPG_CHECK(ports_.size() + dims.size() <=
                std::numeric_limits<std::uint32_t>::max(),
            "route arena exceeds 2^32 hops");
  RouteRef ref;
  ref.offset = static_cast<std::uint32_t>(ports_.size());
  ref.length = static_cast<std::uint16_t>(dims.size());
  net_.append_route(src, dims, ports_);
  return ref;
}

}  // namespace ipg::sim
