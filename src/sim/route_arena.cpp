#include "sim/route_arena.hpp"

#include <limits>

#include "util/check.hpp"

namespace ipg::sim {

RouteRef RouteArena::get(NodeId src, NodeId dst) {
  const auto [it, inserted] = memo_.try_emplace(key_of(src, dst));
  if (!inserted) return it->second;
  return it->second = append(src, dst);
}

RouteRef RouteArena::put(NodeId src, NodeId dst,
                         std::span<const std::uint16_t> ports) {
  IPG_CHECK(ports.size() <= std::numeric_limits<std::uint16_t>::max(),
            "route longer than 65535 hops");
  IPG_CHECK(ports_.size() + ports.size() <=
                std::numeric_limits<std::uint32_t>::max(),
            "route arena exceeds 2^32 hops");
  RouteRef ref;
  ref.offset = static_cast<std::uint32_t>(ports_.size());
  ref.length = static_cast<std::uint16_t>(ports.size());
  ports_.insert(ports_.end(), ports.begin(), ports.end());
  memo_.insert_or_assign(key_of(src, dst), ref);
  return ref;
}

RouteRef RouteArena::adopt(std::span<const std::uint16_t> ports) {
  IPG_CHECK(ports.size() <= std::numeric_limits<std::uint16_t>::max(),
            "route longer than 65535 hops");
  IPG_CHECK(ports_.size() + ports.size() <=
                std::numeric_limits<std::uint32_t>::max(),
            "route arena exceeds 2^32 hops");
  RouteRef ref;
  ref.offset = static_cast<std::uint32_t>(ports_.size());
  ref.length = static_cast<std::uint16_t>(ports.size());
  ports_.insert(ports_.end(), ports.begin(), ports.end());
  return ref;
}

RouteRef RouteArena::append(NodeId src, NodeId dst) {
  const std::vector<std::size_t> dims = route_(src, dst);
  IPG_CHECK(dims.size() <= std::numeric_limits<std::uint16_t>::max(),
            "route longer than 65535 hops");
  IPG_CHECK(ports_.size() + dims.size() <=
                std::numeric_limits<std::uint32_t>::max(),
            "route arena exceeds 2^32 hops");
  RouteRef ref;
  ref.offset = static_cast<std::uint32_t>(ports_.size());
  ref.length = static_cast<std::uint16_t>(dims.size());
  net_.append_route(src, dims, ports_);
  return ref;
}

}  // namespace ipg::sim
