#include "sim/sweep.hpp"

#include <atomic>
#include <ostream>

#include "sim/traffic.hpp"
#include "util/check.hpp"

namespace ipg::sim {

void StreamSweepProgress::on_sweep_begin(std::size_t total_jobs) {
  const std::lock_guard<std::mutex> lock(mu_);
  start_ = std::chrono::steady_clock::now();
  packets_ = 0;
  os_ << "[sweep] starting " << total_jobs << " jobs\n" << std::flush;
}

void StreamSweepProgress::on_job_done(const SweepOutcome& outcome,
                                      std::size_t done, std::size_t total) {
  const std::lock_guard<std::mutex> lock(mu_);
  packets_ += outcome.result.packets_delivered;
  if (outcome.from_cache) ++cache_hits_;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  os_ << "[sweep " << done << "/" << total << "] " << outcome.label << ": "
      << outcome.result.packets_delivered << " delivered";
  if (outcome.from_cache) os_ << " [cached]";
  if (secs > 0) {
    os_ << " | " << static_cast<double>(packets_) / secs << " pkt/s";
  }
  os_ << " | " << secs << "s elapsed\n" << std::flush;
}

void StreamSweepProgress::on_sweep_end() {
  const std::lock_guard<std::mutex> lock(mu_);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  os_ << "[sweep] done: " << packets_ << " packets delivered in " << secs
      << "s";
  if (cache_hits_ > 0) os_ << " (" << cache_hits_ << " jobs from cache)";
  os_ << "\n" << std::flush;
}

std::vector<SweepOutcome> run_sweep(const std::vector<SweepJob>& jobs,
                                    util::ThreadPool& pool,
                                    SweepProgress* progress,
                                    ResultCache* cache) {
  std::vector<SweepOutcome> outcomes(jobs.size());
  if (progress != nullptr) progress->on_sweep_begin(jobs.size());
  std::atomic<std::size_t> done{0};
  util::parallel_for(
      0, jobs.size(),
      [&](std::size_t i) {
        outcomes[i].label = jobs[i].label;
        const bool keyed = cache != nullptr && !jobs[i].cache_key.empty();
        if (keyed && cache->lookup(jobs[i].cache_key, outcomes[i].result)) {
          outcomes[i].from_cache = true;
        } else {
          outcomes[i].result = jobs[i].run();
          if (keyed) cache->store(jobs[i].cache_key, outcomes[i].result);
        }
        if (progress != nullptr) {
          progress->on_job_done(
              outcomes[i], done.fetch_add(1, std::memory_order_relaxed) + 1,
              jobs.size());
        }
      },
      pool);
  if (progress != nullptr) progress->on_sweep_end();
  return outcomes;
}

std::vector<SweepJob> open_rate_sweep(const SimNetwork& net,
                                      const Router& route,
                                      const TrafficPattern& pattern,
                                      std::span<const double> rates,
                                      std::size_t inject_cycles,
                                      const SimConfig& base) {
  std::vector<SweepJob> jobs;
  jobs.reserve(rates.size());
  for (const double rate : rates) {
    jobs.push_back({"rate " + std::to_string(rate),
                    [&net, route, pattern, rate, inject_cycles, base]() {
                      return run_open(net, route, pattern, rate,
                                      inject_cycles, base);
                    },
                    {}});
  }
  return jobs;
}

std::vector<SweepJob> batch_replicate_sweep(const SimNetwork& net,
                                            const Router& route,
                                            std::span<const std::uint64_t> seeds,
                                            const SimConfig& base) {
  std::vector<SweepJob> jobs;
  jobs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    jobs.push_back({"seed " + std::to_string(seed),
                    [&net, route, seed, base]() {
                      util::Xoshiro256 rng(seed);
                      const auto perm =
                          random_permutation(net.num_nodes(), rng);
                      SimConfig cfg = base;
                      cfg.seed = seed;
                      return run_batch(net, route, perm, cfg);
                    },
                    {}});
  }
  return jobs;
}

std::vector<SweepJob> switching_sweep(const SimNetwork& net,
                                      const Router& route,
                                      const std::vector<NodeId>& dst,
                                      std::span<const Switching> modes,
                                      const SimConfig& base) {
  std::vector<SweepJob> jobs;
  jobs.reserve(modes.size());
  for (const Switching mode : modes) {
    const char* name = mode == Switching::kStoreAndForward ? "SAF"
                       : mode == Switching::kVirtualCutThrough ? "VCT"
                                                               : "wormhole";
    jobs.push_back({name, [&net, route, dst, mode, base]() {
                      SimConfig cfg = base;
                      cfg.switching = mode;
                      return run_batch(net, route, dst, cfg);
                    },
                    {}});
  }
  return jobs;
}

std::vector<SweepJob> fault_plan_sweep(
    const SimNetwork& net, const Router& route, const TrafficPattern& pattern,
    double rate, std::size_t inject_cycles,
    std::span<const std::shared_ptr<const FaultPlan>> plans,
    const SimConfig& base) {
  std::vector<SweepJob> jobs;
  jobs.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const std::shared_ptr<const FaultPlan> plan = plans[i];
    jobs.push_back({"plan " + std::to_string(i),
                    [&net, route, pattern, rate, inject_cycles, plan, base]() {
                      SimConfig cfg = base;
                      cfg.fault_plan = plan;
                      return run_open(net, route, pattern, rate,
                                      inject_cycles, cfg);
                    },
                    {}});
  }
  return jobs;
}

double mean_of(const std::vector<SweepOutcome>& outcomes,
               double SimResult::*field) {
  IPG_CHECK(!outcomes.empty(), "mean over an empty sweep");
  double sum = 0;
  for (const SweepOutcome& o : outcomes) sum += o.result.*field;
  return sum / static_cast<double>(outcomes.size());
}

}  // namespace ipg::sim
