#include "sim/routers.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "util/check.hpp"

namespace ipg::sim {

using topology::Graph;
using topology::NodeId;
using topology::SuperIpg;

Router hypercube_router(unsigned n) {
  return [n](NodeId src, NodeId dst) {
    std::vector<std::size_t> dims;
    for (unsigned d = 0; d < n; ++d) {
      if (((src ^ dst) >> d) & 1u) dims.push_back(d);
    }
    return dims;
  };
}

Router kary_router(std::size_t k, std::size_t n) {
  return [k, n](NodeId src, NodeId dst) {
    std::vector<std::size_t> dims;
    std::size_t s = src, t = dst;
    for (std::size_t d = 0; d < n; ++d) {
      const std::size_t a = s % k, b = t % k;
      s /= k;
      t /= k;
      if (a == b) continue;
      const std::size_t up = (b + k - a) % k;    // hops in +1 direction
      const std::size_t down = k - up;           // hops in -1 direction
      if (k == 2) {
        dims.push_back(2 * d);
      } else if (up <= down) {
        dims.insert(dims.end(), up, 2 * d);
      } else {
        dims.insert(dims.end(), down, 2 * d + 1);
      }
    }
    return dims;
  };
}

Router super_ipg_router(const SuperIpg& ipg) {
  return [&ipg](NodeId src, NodeId dst) { return ipg.route(src, dst); };
}

Router dragonfly_router(std::size_t a, std::size_t h) {
  IPG_CHECK(a >= 2 && h >= 1, "dragonfly parameters out of range");
  const std::size_t g = a * h + 1;
  return [a, h, g](NodeId src, NodeId dst) {
    std::vector<std::size_t> dims;
    if (src == dst) return dims;
    // Local hop label: the complete-graph offset between two routers of
    // one group (see topology::dragonfly_graph).
    const auto local = [&](NodeId u, NodeId v) {
      const std::size_t off = (v % a + a - u % a) % a;
      dims.push_back(off - 1);
    };
    const std::size_t gs = src / a, gd = dst / a;
    if (gs == gd) {
      local(src, dst);
      return dims;
    }
    const std::size_t slot = (gd + g - gs - 1) % g;  // exit slot in gs
    const auto exit_router = static_cast<NodeId>(gs * a + slot / h);
    const std::size_t peer_slot = a * h - 1 - slot;
    const auto entry_router = static_cast<NodeId>(gd * a + peer_slot / h);
    if (src != exit_router) local(src, exit_router);
    dims.push_back(a - 1 + slot % h);
    if (entry_router != dst) local(entry_router, dst);
    return dims;
  };
}

Router fat_tree_router(std::size_t k) {
  IPG_CHECK(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >= 2");
  const std::size_t half = k / 2;
  const std::size_t hosts = k * k * k / 4;
  const std::size_t hosts_per_pod = half * half;
  return [half, hosts, hosts_per_pod](NodeId src, NodeId dst) {
    IPG_CHECK(src < hosts && dst < hosts,
              "fat-tree router routes host to host");
    std::vector<std::size_t> dims;
    if (src == dst) return dims;
    const std::size_t p1 = src / hosts_per_pod, p2 = dst / hosts_per_pod;
    const std::size_t e1 = (src % hosts_per_pod) / half;
    const std::size_t e2 = (dst % hosts_per_pod) / half;
    const std::size_t s2 = dst % half;
    dims.push_back(0);  // host -> edge
    if (p1 == p2 && e1 == e2) {
      dims.push_back(s2);  // edge -> host
      return dims;
    }
    dims.push_back(half + s2);  // edge -> agg, column spread by dst slot
    if (p1 != p2) {
      dims.push_back(half + e2);  // agg -> core, spread by dst edge index
      dims.push_back(p2);         // core -> agg in the destination pod
    }
    dims.push_back(e2);  // agg -> edge
    dims.push_back(s2);  // edge -> host
    return dims;
  };
}

Router table_router(std::shared_ptr<const Graph> graph) {
  IPG_CHECK(graph != nullptr, "table router needs a graph");
  // Per-destination predecessor-port tables, built on first use.
  struct Cache {
    std::mutex mutex;
    std::unordered_map<NodeId, std::vector<std::uint16_t>> toward;  // dst -> per-node out-dim
  };
  auto cache = std::make_shared<Cache>();
  return [graph, cache](NodeId src, NodeId dst) {
    constexpr std::uint16_t kNone = 0xffff;
    std::vector<std::uint16_t>* table = nullptr;
    {
      std::lock_guard lock(cache->mutex);
      auto it = cache->toward.find(dst);
      if (it == cache->toward.end()) {
        // Reverse BFS from dst: toward[v] = dimension of v's first hop on a
        // shortest path to dst. Requires an undirected graph (all ours are).
        std::vector<std::uint16_t> t(graph->num_nodes(), kNone);
        std::deque<NodeId> q{dst};
        std::vector<bool> seen(graph->num_nodes(), false);
        seen[dst] = true;
        while (!q.empty()) {
          const NodeId v = q.front();
          q.pop_front();
          for (const auto& arc : graph->arcs_of(v)) {
            if (seen[arc.to]) continue;
            seen[arc.to] = true;
            // arc.to's hop toward dst goes back over this link: find the
            // reverse arc's dimension at arc.to.
            for (const auto& back : graph->arcs_of(arc.to)) {
              if (back.to == v) {
                t[arc.to] = back.dim;
                break;
              }
            }
            q.push_back(arc.to);
          }
        }
        it = cache->toward.emplace(dst, std::move(t)).first;
      }
      table = &it->second;
    }
    std::vector<std::size_t> dims;
    NodeId cur = src;
    while (cur != dst) {
      const std::uint16_t d = (*table)[cur];
      IPG_CHECK(d != kNone, "graph is disconnected — no route to destination");
      dims.push_back(d);
      cur = graph->neighbor(cur, d);
    }
    return dims;
  };
}

Router cached_router(Router inner) {
  IPG_CHECK(inner != nullptr, "cached_router needs a router");
  struct Cache {
    std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> dims;
  };
  auto cache = std::make_shared<Cache>();
  return [inner = std::move(inner), cache](NodeId src, NodeId dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    {
      std::shared_lock lock(cache->mutex);
      const auto it = cache->dims.find(key);
      if (it != cache->dims.end()) return it->second;
    }
    std::vector<std::size_t> dims = inner(src, dst);
    std::unique_lock lock(cache->mutex);
    return cache->dims.try_emplace(key, std::move(dims)).first->second;
  };
}

bool append_live_route(const SimNetwork& net,
                       std::span<const std::uint8_t> usable, NodeId src,
                       NodeId dst, std::vector<std::uint16_t>& out) {
  IPG_CHECK(usable.size() == net.num_links(),
            "need one usability flag per directed link");
  if (src == dst) return true;
  const std::size_t n = net.num_nodes();
  std::vector<NodeId> pred_node(n, topology::kInvalidNode);
  std::vector<std::uint16_t> pred_port(n, 0);
  std::deque<NodeId> frontier{src};
  pred_node[src] = src;
  while (!frontier.empty() && pred_node[dst] == topology::kInvalidNode) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    const auto arcs = net.graph().arcs_of(v);
    for (std::size_t port = 0; port < arcs.size(); ++port) {
      if (usable[net.link_of(v, port)] == 0) continue;
      const NodeId w = arcs[port].to;
      if (pred_node[w] != topology::kInvalidNode) continue;
      pred_node[w] = v;
      pred_port[w] = static_cast<std::uint16_t>(port);
      frontier.push_back(w);
    }
  }
  if (pred_node[dst] == topology::kInvalidNode) return false;
  std::vector<std::uint16_t> reversed;
  for (NodeId v = dst; v != src; v = pred_node[v]) {
    reversed.push_back(pred_port[v]);
  }
  out.insert(out.end(), reversed.rbegin(), reversed.rend());
  return true;
}

}  // namespace ipg::sim
