#pragma once
// Event-driven network simulator for MCMP experiments (§4).
//
// Packets follow source routes (one hop per dimension word entry). Every
// directed link is a FIFO server with its own bandwidth (flits/cycle) and
// latency; a packet's transfer over a link takes length/bandwidth cycles.
// Switching modes differ in when the packet becomes available at the next
// node:
//   store-and-forward:   after the whole packet arrived (Thm 3.1 setting);
//   virtual cut-through / wormhole: after the head flit arrived — the link
//     stays busy until the tail passes. At this flow level VCT and
//     wormhole coincide (the paper's bandwidth arguments are
//     switching-independent, which the benches verify empirically).
//
// Two experiment shapes:
//   run_batch:  one packet per node from a permutation/pattern snapshot;
//     reports makespan, so saturation throughput = N * length / makespan.
//   run_open:   Bernoulli injection at a given rate over a window; reports
//     delivered throughput and average latency (latency-vs-load curves).
//
// Two engines implement identical semantics (docs/PERF.md):
//   kArena (default): packets reference a shared flat route arena with
//     per-(src, dst) route memoization, events live in an indexed 4-ary
//     min-heap, and open-loop injections are streamed into the event loop
//     from a sorted schedule instead of being pre-pushed into the heap.
//   kReference: the pre-overhaul data plane (per-packet route vectors,
//     std::priority_queue) kept as the oracle for equivalence tests.
//   kSharded: domain-decomposed parallel engine (sim/sharded.hpp) —
//     partitions the network into SimConfig::shard_domains chip-aligned
//     domains that advance in conservative time windows on the process
//     thread pool.
// All engines order events canonically by (time, identity-derived seq), so
// for a fixed seed every SimResult field is bit-identical across engines,
// domain counts, and runs.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/routers.hpp"
#include "sim/traffic.hpp"

namespace ipg::sim {

class SimObserver;  // sim/observer.hpp

/// Thrown when a SimConfig asks for a combination an engine recognizes but
/// cannot provide. Distinct from the std::invalid_argument raised by
/// util::check for malformed inputs: callers such as sweep drivers can
/// catch this type and fall back to a supported engine instead of
/// pattern-matching an error string. The message always names the
/// unsupported combination and the supported alternative. Currently every
/// documented config runs on every engine (bounded buffers under
/// Engine::kSharded, once the sole occupant of this category, are now
/// supported via the credit protocol in sim/sharded.cpp); the type remains
/// the contract for future engine-specific gaps.
class UnsupportedSimConfig : public std::invalid_argument {
 public:
  explicit UnsupportedSimConfig(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

enum class Switching : std::uint8_t {
  kStoreAndForward,
  kVirtualCutThrough,
  kWormhole,
};

enum class Engine : std::uint8_t {
  kArena,      ///< flat route arena + indexed 4-ary event heap (fast path)
  kReference,  ///< pre-overhaul engine, kept as the equivalence oracle
  kSharded,    ///< domain-decomposed parallel engine (sim/sharded.hpp)
};

struct SimConfig {
  Engine engine = Engine::kArena;
  Switching switching = Switching::kStoreAndForward;
  double packet_length_flits = 16;
  double link_latency_cycles = 1;
  /// Per-node buffer for in-transit packets; 0 = unbounded. With bounded
  /// buffers a packet may not start crossing a link until the downstream
  /// node has space (backpressure); ejection at the destination is always
  /// possible. Routes must be deadlock-free (dimension order and the
  /// hierarchical super-IPG routes are); a cyclic wait raises an error.
  std::size_t node_buffer_packets = 0;
  std::uint64_t seed = 1;

  /// Engine::kSharded only: number of simulation domains K. 0 picks the
  /// machine's core count (capped at the node count). Results are
  /// bit-identical for every K — the choice affects speed, not output.
  /// Bounded buffers work under kSharded too: cross-domain backpressure is
  /// synchronized by a credit protocol at the window barriers (see
  /// sim/sharded.cpp), still bit-identical to the sequential engines.
  std::uint32_t shard_domains = 0;

  /// Observability hook (sim/observer.hpp, docs/OBSERVABILITY.md). Null —
  /// the default — keeps the unobserved fast path; attaching an observer
  /// never changes any SimResult field (hooks are pure notifications). The
  /// observer must outlive the run and is not thread-safe: sweep base
  /// configs must leave it null and give each job its own observer if any.
  SimObserver* observer = nullptr;

  // -- Degraded-mode knobs (docs/ROBUSTNESS.md). With a null/empty plan and
  // max_cycles == 0 the healthy fast path runs and every SimResult field is
  // bit-identical to the pre-fault engines.

  /// Scheduled link/node failures and repairs, shared across sweep jobs.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Retransmissions a packet may attempt after being dropped at a fault
  /// (no live route, or misroute budget exhausted). 0 = drop immediately.
  std::uint32_t max_retries = 0;
  /// Delay before the first retransmission; doubles per attempt with the
  /// exponent capped at 2^16 (capped exponential backoff).
  double retry_backoff_cycles = 32;
  /// Detours a packet may adopt per source attempt before giving up.
  std::uint32_t misroute_budget = 8;
  /// Hard cutoff: events after this time are not processed and unfinished
  /// packets count as in flight. 0 = run until the event queue drains.
  double max_cycles = 0;
};

struct SimResult {
  std::size_t packets_delivered = 0;
  double makespan_cycles = 0;  ///< time until the last delivery
  // Latency statistics cover delivered packets only. When nothing was
  // delivered (total blackout plans) they are NaN, never 0 — a 0 here
  // would read as perfect latency on a degraded-run curve. p50/p99 are
  // nearest-rank, exact up to LatencyHistogram::kExactCap samples and a
  // log-bucket estimate (relative error < 1/128) beyond that.
  double avg_latency_cycles = 0;  ///< injection -> full delivery
  double p50_latency_cycles = 0;
  double p99_latency_cycles = 0;
  double max_latency_cycles = 0;
  double avg_hops = 0;
  double avg_offchip_hops = 0;
  /// Delivered flits per node per cycle over the makespan.
  double throughput_flits_per_node_cycle = 0;
  // Off-chip utilization is busy time within the reporting horizon
  // (max(last delivery, max_cycles cutoff when one ended the run)) divided
  // by that horizon — always in [0, 1], even on cutoff or degraded runs
  // where links stay busy past the last delivery.
  double max_offchip_utilization = 0;  ///< busiest off-chip link
  double avg_offchip_utilization = 0;

  // -- Degraded-mode accounting. The conservation invariant
  //    packets_injected == packets_delivered + packets_dropped +
  //    packets_in_flight
  // holds for every run (the engines check it); healthy runs have
  // dropped == in_flight == 0 and delivered_fraction == 1.
  std::size_t packets_injected = 0;       ///< distinct packets (not attempts)
  std::size_t packets_dropped = 0;
  std::size_t packets_retransmitted = 0;  ///< total retry attempts
  std::size_t packets_in_flight = 0;      ///< undelivered at the cutoff
  std::size_t reroute_hops = 0;  ///< extra hops adopted by mid-flight detours
  double delivered_fraction = 1;  ///< delivered / injected (1 if none)
};

/// One externally scheduled packet for run_trace.
struct Injection {
  NodeId src = 0;
  NodeId dst = 0;
  double time = 0;
};

/// One externally scheduled packet with an optional preset source route
/// (run_routed). route_offset / route_length reference a slice of the
/// caller's shared port buffer; route_length == 0 means "no preset" — the
/// packet follows the canonical router like a run_trace injection.
struct RoutedInjection {
  NodeId src = 0;
  NodeId dst = 0;
  double time = 0;
  std::uint32_t route_offset = 0;
  std::uint16_t route_length = 0;
};

/// One packet per source with the given destinations (dst[v] == v means no
/// packet); all injected at t = 0. Reports makespan-based throughput.
SimResult run_batch(const SimNetwork& net, const Router& route,
                    const std::vector<NodeId>& dst, const SimConfig& cfg);

/// Open-loop run: each node injects packets with probability @p rate per
/// cycle during @p inject_cycles, destinations drawn from @p pattern; the
/// simulation then drains. Latency statistics cover all packets.
SimResult run_open(const SimNetwork& net, const Router& route,
                   const TrafficPattern& pattern, double rate,
                   std::size_t inject_cycles, const SimConfig& cfg);

/// Total exchange, executed (§3.3): every node sends one personalized
/// packet to every other node — N(N-1) packets, all injected at t = 0.
/// Keep N modest (packet count is quadratic).
SimResult run_total_exchange(const SimNetwork& net, const Router& route,
                             const SimConfig& cfg);

/// Runs an explicit injection schedule — the primitive the batch / open /
/// total-exchange drivers reduce to, exposed for fault drills and
/// deterministic degraded-mode tests. Honors every SimConfig knob,
/// including the fault plan and retry policy.
SimResult run_trace(const SimNetwork& net, const Router& route,
                    std::span<const Injection> injections,
                    const SimConfig& cfg);

/// run_trace with per-packet preset port routes — the replay primitive the
/// adaptive routing layer (sim/adaptive.hpp) feeds: a planner chooses each
/// packet's route up front (minimal vs nonminimal), and every engine then
/// follows those exact port sequences, so adaptive runs inherit the
/// bit-identical-across-engines contract for free. Each preset route is
/// validated to walk from its packet's src to its dst over existing ports.
/// @p fallback serves packets with route_length == 0 and all degraded-mode
/// re-routing: a preset route that meets a dead link detours from the node
/// that discovered the failure, and a retransmission restarts on the
/// canonical fault-aware route (the preset covers the first attempt only —
/// identically on every engine).
SimResult run_routed(const SimNetwork& net, const Router& fallback,
                     std::span<const RoutedInjection> injections,
                     std::span<const std::uint16_t> route_ports,
                     const SimConfig& cfg);

/// Materializes the exact injection population run_open(net, ..., rate,
/// inject_cycles, cfg) would simulate: node-major (src, dst, cycle) tuples
/// drawn from the same per-node RNG streams (util::derive_seed(seed, node)).
/// Exposed so route planners can precompute per-packet routes for this
/// population and replay them through run_routed.
std::vector<Injection> open_injection_schedule(const SimNetwork& net,
                                               const TrafficPattern& pattern,
                                               double rate,
                                               std::size_t inject_cycles,
                                               std::uint64_t seed);

/// Nearest-rank percentile: the ceil(n * pct / 100)-th smallest sample
/// (pct in (0, 100]), found with nth_element — @p values is reordered, not
/// fully sorted. For one sample every percentile is that sample; for two,
/// p50 is the lower of the pair (rank ceil(1) = 1). Used by summarize() and
/// exposed for its unit tests.
double percentile_nearest_rank(std::vector<double>& values, double pct);

}  // namespace ipg::sim
